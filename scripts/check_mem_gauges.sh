#!/usr/bin/env bash
# Guards the memory-observability exposition against silent drift:
#   1. every cly_mem_* gauge family declared in cluster_metrics.h is
#      registered by the ClusterMetrics constructor in cluster_metrics.cc
#      (a declared family that is never registered would expose nothing);
#   2. every registered family has a per-node accessor that the engine's
#      MetricsPoller probe actually samples in engine.cc — a gauge nobody
#      Sets would read 0 forever;
#   3. the tracker naming helpers (NodeTrackerName / JobTrackerName in
#      mem_tracker.cc) are the ones used to create the trackers the gauges
#      sample (engine.cc / job_runner.cc) — renaming a tracker level
#      without renaming its gauge family must fail here, not in a dashboard.
# Registered as a ctest (tests/CMakeLists.txt) and runnable standalone:
#   scripts/check_mem_gauges.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
metrics_h="$root/src/mapreduce/cluster_metrics.h"
metrics_cc="$root/src/mapreduce/cluster_metrics.cc"
engine_cc="$root/src/mapreduce/engine.cc"
runner_cc="$root/src/mapreduce/job_runner.cc"
tracker_h="$root/src/obs/mem_tracker.h"
tracker_cc="$root/src/obs/mem_tracker.cc"

for f in "$metrics_h" "$metrics_cc" "$engine_cc" "$runner_cc" \
         "$tracker_h" "$tracker_cc"; do
  if [ ! -f "$f" ]; then
    echo "check_mem_gauges: missing $f" >&2
    exit 2
  fi
done

fail=0

# --- 1. declared kMetricMem* constants vs GaugeFamily registrations
mem_families=$(grep -o 'kMetricMem[A-Za-z0-9]*\[\]' "$metrics_h" \
  | sed 's/\[\]//' | sort -u)
if [ -z "$mem_families" ]; then
  echo "check_mem_gauges: no kMetricMem* families declared in" \
       "cluster_metrics.h" >&2
  fail=1
fi
registered=$(grep -o 'kMetricMem[A-Za-z0-9]*' "$metrics_cc" | sort -u)
for name in $mem_families; do
  if ! printf '%s\n' "$registered" | grep -qx "$name"; then
    echo "check_mem_gauges: $name declared in cluster_metrics.h but never" \
         "registered in cluster_metrics.cc" >&2
    fail=1
  fi
done

# --- 2. every family's accessor is sampled by the engine's poller probe.
# The accessor name is the snake_case of the constant: kMetricMemNodeBytes
# <-> mem_node_bytes(...). Derive it and require a ->Set( call in engine.cc.
for name in $mem_families; do
  accessor=$(printf '%s' "$name" | sed 's/^kMetric//' \
    | sed 's/\([A-Z]\)/_\L\1/g' | sed 's/^_//')
  if ! grep -q "${accessor}(.*)->Set(" "$engine_cc"; then
    echo "check_mem_gauges: gauge family $name has no ${accessor}(n)->Set()" \
         "sample in engine.cc's metrics poller" >&2
    fail=1
  fi
done

# --- 3. tracker levels are created through the canonical naming helpers,
# so the gauges sample trackers whose names match the exposition.
if ! grep -q 'NodeTrackerName' "$engine_cc"; then
  echo "check_mem_gauges: engine.cc does not create node trackers via" \
       "obs::NodeTrackerName()" >&2
  fail=1
fi
if ! grep -q 'JobTrackerName' "$runner_cc"; then
  echo "check_mem_gauges: job_runner.cc does not create job trackers via" \
       "obs::JobTrackerName()" >&2
  fail=1
fi
for helper in NodeTrackerName JobTrackerName; do
  if ! grep -q "std::string $helper" "$tracker_cc"; then
    echo "check_mem_gauges: $helper not defined in mem_tracker.cc" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_mem_gauges: memory gauge families, samplers and tracker names" \
     "are in sync"
