#!/usr/bin/env bash
# Guards the exposition contracts against silent drift:
#   1. every kCounter* name in counters.h is returned by either
#      StandardCounterNames() or SituationalCounterNames() in counters.cc;
#   2. every kMetric* family name in cluster_metrics.h is returned by
#      StandardMetricFamilyNames() in cluster_metrics.cc;
#   3. every kCounter* name in star_join_job.h is returned by
#      ClydesdaleCounterNames() in star_join_job.cc;
#   4. every kCounterCif* name in counters.h is actually flushed by
#      AddCifScanCounters() in counters.cc (so a scan-stat counter can
#      never be declared + listed yet silently never populated);
#   5. every kCounterProf* name in counters.h is actually surfaced by
#      AddQueryProfileCounters() in counters.cc (the only place the merged
#      query profile becomes headline counters);
#   6. every kCounterMem* name in counters.h is actually flushed by
#      AddMemTrackerCounters() in counters.cc (the only place the job's
#      memory-tracker peaks become MEM_* counters);
#   7. every kCounterCache* name in counters.h is actually flushed by
#      AddDimCacheCounters() in counters.cc (the only place the serving-mode
#      dim-cache activity becomes CACHE_* counters).
# Registered as a ctest (tests/CMakeLists.txt) and runnable standalone:
#   scripts/check_counters.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
counters_h="$root/src/mapreduce/counters.h"
counters_cc="$root/src/mapreduce/counters.cc"
metrics_h="$root/src/mapreduce/cluster_metrics.h"
metrics_cc="$root/src/mapreduce/cluster_metrics.cc"
star_h="$root/src/core/star_join_job.h"
star_cc="$root/src/core/star_join_job.cc"

for f in "$counters_h" "$counters_cc" "$metrics_h" "$metrics_cc" \
         "$star_h" "$star_cc"; do
  if [ ! -f "$f" ]; then
    echo "check_counters: missing $f" >&2
    exit 2
  fi
done

fail=0

# --- counters: header constants vs StandardCounterNames + SituationalCounterNames
header_counters=$(grep -o 'kCounter[A-Za-z0-9]*\[\]' "$counters_h" \
  | sed 's/\[\]//' | sort -u)
# The two list functions return the kCounter* constants; collect every
# constant referenced in the .cc list bodies.
cc_counters=$(sed -n '/StandardCounterNames\|SituationalCounterNames/,/^}/p' \
  "$counters_cc" | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $header_counters; do
  if ! printf '%s\n' "$cc_counters" | grep -qx "$name"; then
    echo "check_counters: $name declared in counters.h but returned by" \
         "neither StandardCounterNames() nor SituationalCounterNames()" >&2
    fail=1
  fi
done
for name in $cc_counters; do
  if ! printf '%s\n' "$header_counters" | grep -qx "$name"; then
    echo "check_counters: $name listed in counters.cc but not declared" \
         "in counters.h" >&2
    fail=1
  fi
done

# --- metric families: header constants vs StandardMetricFamilyNames
header_metrics=$(grep -o 'kMetric[A-Za-z0-9]*\[\]' "$metrics_h" \
  | sed 's/\[\]//' | sort -u)
cc_metrics=$(sed -n '/StandardMetricFamilyNames/,/^}/p' "$metrics_cc" \
  | grep -o 'kMetric[A-Za-z0-9]*' | sort -u)

for name in $header_metrics; do
  if ! printf '%s\n' "$cc_metrics" | grep -qx "$name"; then
    echo "check_counters: $name declared in cluster_metrics.h but missing" \
         "from StandardMetricFamilyNames()" >&2
    fail=1
  fi
done
for name in $cc_metrics; do
  if ! printf '%s\n' "$header_metrics" | grep -qx "$name"; then
    echo "check_counters: $name listed in StandardMetricFamilyNames() but" \
         "not declared in cluster_metrics.h" >&2
    fail=1
  fi
done

# --- star-join counters: header constants vs ClydesdaleCounterNames
star_header=$(grep -o 'kCounter[A-Za-z0-9]*\[\]' "$star_h" \
  | sed 's/\[\]//' | sort -u)
star_cc_names=$(sed -n '/ClydesdaleCounterNames/,/^}/p' "$star_cc" \
  | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $star_header; do
  if ! printf '%s\n' "$star_cc_names" | grep -qx "$name"; then
    echo "check_counters: $name declared in star_join_job.h but missing" \
         "from ClydesdaleCounterNames()" >&2
    fail=1
  fi
done
for name in $star_cc_names; do
  if ! printf '%s\n' "$star_header" | grep -qx "$name"; then
    echo "check_counters: $name listed in ClydesdaleCounterNames() but" \
         "not declared in star_join_job.h" >&2
    fail=1
  fi
done

# --- CIF scan counters: every declared kCounterCif* must be wired into the
# --- shared flush helper (the only place scan stats become counters)
cif_header=$(printf '%s\n' "$header_counters" | grep '^kCounterCif' || true)
cif_flush=$(sed -n '/^void AddCifScanCounters/,/^}/p' "$counters_cc" \
  | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $cif_header; do
  if ! printf '%s\n' "$cif_flush" | grep -qx "$name"; then
    echo "check_counters: $name declared in counters.h but never flushed" \
         "by AddCifScanCounters()" >&2
    fail=1
  fi
done

# --- query-profile counters: every declared kCounterProf* must be surfaced
# --- by the shared profile->counters helper
prof_header=$(printf '%s\n' "$header_counters" | grep '^kCounterProf' || true)
prof_flush=$(sed -n '/^void AddQueryProfileCounters/,/^}/p' "$counters_cc" \
  | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $prof_header; do
  if ! printf '%s\n' "$prof_flush" | grep -qx "$name"; then
    echo "check_counters: $name declared in counters.h but never surfaced" \
         "by AddQueryProfileCounters()" >&2
    fail=1
  fi
done

# --- memory counters: every declared kCounterMem* must be flushed by the
# --- tracker-peaks helper (the only place MEM_* counters are populated)
mem_header=$(printf '%s\n' "$header_counters" | grep '^kCounterMem' || true)
mem_flush=$(sed -n '/^void AddMemTrackerCounters/,/^}/p' "$counters_cc" \
  | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $mem_header; do
  if ! printf '%s\n' "$mem_flush" | grep -qx "$name"; then
    echo "check_counters: $name declared in counters.h but never flushed" \
         "by AddMemTrackerCounters()" >&2
    fail=1
  fi
done

# --- dim-cache counters: every declared kCounterCache* must be flushed by
# --- the serving-cache helper (the only place CACHE_* counters are populated)
cache_header=$(printf '%s\n' "$header_counters" | grep '^kCounterCache' || true)
cache_flush=$(sed -n '/^void AddDimCacheCounters/,/^}/p' "$counters_cc" \
  | grep -o 'kCounter[A-Za-z0-9]*' | sort -u)

for name in $cache_header; do
  if ! printf '%s\n' "$cache_flush" | grep -qx "$name"; then
    echo "check_counters: $name declared in counters.h but never flushed" \
         "by AddDimCacheCounters()" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_counters: counter and metric family names are in sync"
