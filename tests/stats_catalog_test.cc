// ANALYZE / statistics-catalog tests: HLL accuracy (the 2%-at-1M-distinct
// acceptance band), equi-depth histogram edge cases (all-equal, all-distinct,
// empty), deterministic reservoir sampling, exact AnalyzeTable row counts
// and min/max over CIF, the text persistence round trip, and the versioned
// catalog's load-time invalidation plus process-restart survival.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/sketch.h"
#include "common/strings.h"
#include "hdfs/dfs.h"
#include "storage/stats_catalog.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace {

TEST(HllSketchTest, EmptyEstimatesZero) {
  HllSketch sketch;
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 0.0);
}

TEST(HllSketchTest, SmallCardinalityIsNearExact) {
  HllSketch sketch;
  for (int64_t v = 0; v < 100; ++v) sketch.AddInt64(v);
  // Linear counting regime: tiny cardinalities come back almost exact.
  EXPECT_NEAR(sketch.Estimate(), 100.0, 2.0);
  // Duplicates don't move the estimate.
  for (int64_t v = 0; v < 100; ++v) sketch.AddInt64(v);
  EXPECT_NEAR(sketch.Estimate(), 100.0, 2.0);
}

TEST(HllSketchTest, OneMillionDistinctWithinTwoPercent) {
  HllSketch sketch;
  constexpr int64_t kDistinct = 1'000'000;
  for (int64_t v = 0; v < kDistinct; ++v) sketch.AddInt64(v);
  const double estimate = sketch.Estimate();
  const double relative_error =
      std::abs(estimate - static_cast<double>(kDistinct)) / kDistinct;
  EXPECT_LT(relative_error, 0.02)
      << "estimate " << estimate << " off by " << relative_error * 100 << "%";
}

TEST(HllSketchTest, MergeOfDisjointStreamsEstimatesUnion) {
  HllSketch a, b;
  for (int64_t v = 0; v < 50'000; ++v) a.AddInt64(v);
  for (int64_t v = 50'000; v < 100'000; ++v) b.AddInt64(v);
  a.Merge(b);
  const double estimate = a.Estimate();
  EXPECT_LT(std::abs(estimate - 100'000.0) / 100'000.0, 0.02);
}

TEST(HllSketchTest, HexSerializationRoundTrips) {
  HllSketch sketch;
  for (int64_t v = 0; v < 12'345; ++v) sketch.AddInt64(v);
  const std::string hex = sketch.SerializeHex();
  EXPECT_EQ(hex.size(), 2 * HllSketch::kNumRegisters);
  auto back = HllSketch::DeserializeHex(hex);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->registers(), sketch.registers());
  EXPECT_DOUBLE_EQ(back->Estimate(), sketch.Estimate());

  EXPECT_FALSE(HllSketch::DeserializeHex("abc").ok()) << "wrong length";
  std::string corrupt = hex;
  corrupt[3] = 'x';
  EXPECT_FALSE(HllSketch::DeserializeHex(corrupt).ok()) << "non-hex digit";
}

TEST(EquiDepthHistogramTest, EmptyInputYieldsEmptyHistogram) {
  const EquiDepthHistogram h = BuildEquiDepthHistogram({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_rows(), 0u);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEq(5.0), 0.0);
}

TEST(EquiDepthHistogramTest, AllEqualDegeneratesToOneBucket) {
  std::vector<double> values(1000, 42.0);
  const EquiDepthHistogram h = BuildEquiDepthHistogram(values, 8);
  ASSERT_EQ(h.counts.size(), 1u)
      << "equal values never straddle buckets; all-equal is one bucket";
  EXPECT_EQ(h.counts[0], 1000u);
  EXPECT_DOUBLE_EQ(h.bounds.front(), 42.0);
  EXPECT_DOUBLE_EQ(h.bounds.back(), 42.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEq(41.0), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEq(42.0), 1.0);
}

TEST(EquiDepthHistogramTest, AllDistinctBucketsAreBalanced) {
  std::vector<double> values;
  for (int i = 0; i < 1024; ++i) values.push_back(static_cast<double>(i));
  const EquiDepthHistogram h = BuildEquiDepthHistogram(values, 8);
  ASSERT_EQ(h.counts.size(), 8u);
  ASSERT_EQ(h.bounds.size(), 9u);
  uint64_t total = 0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    EXPECT_EQ(h.counts[i], 128u) << "equi-depth: equal bucket heights";
    EXPECT_LT(h.bounds[i], h.bounds[i + 1]) << "bounds strictly increase";
    total += h.counts[i];
  }
  EXPECT_EQ(total, 1024u);
  EXPECT_DOUBLE_EQ(h.bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(h.bounds.back(), 1023.0);
  // Selectivity is monotone and anchored at the extremes.
  EXPECT_DOUBLE_EQ(h.SelectivityLessEq(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEq(2000.0), 1.0);
  EXPECT_NEAR(h.SelectivityLessEq(511.0), 0.5, 0.05);
}

TEST(EquiDepthHistogramTest, HeavyHitterGetsOneOversizedBucket) {
  // 900 copies of 5 among 100 distinct others: the heavy value must land in
  // exactly one bucket (no boundary straddle -> no lying bucket counts).
  std::vector<double> values(900, 5.0);
  for (int i = 0; i < 100; ++i) values.push_back(1000.0 + i);
  const EquiDepthHistogram h = BuildEquiDepthHistogram(values, 8);
  uint64_t heavy_buckets = 0;
  for (uint64_t c : h.counts) heavy_buckets += c >= 900;
  EXPECT_EQ(heavy_buckets, 1u);
  EXPECT_EQ(h.total_rows(), 1000u);
}

TEST(ReservoirSampleTest, DeterministicAndCapacityBounded) {
  ReservoirSample a(64), b(64);
  for (int i = 0; i < 10'000; ++i) {
    a.Add(static_cast<double>(i));
    b.Add(static_cast<double>(i));
  }
  EXPECT_EQ(a.seen(), 10'000u);
  EXPECT_EQ(a.values().size(), 64u);
  EXPECT_EQ(a.values(), b.values()) << "fixed seed: ANALYZE is reproducible";
}

// ---------------------------------------------------------------------------
// AnalyzeTable + StatsCatalog over sim-HDFS
// ---------------------------------------------------------------------------

class StatsCatalogTest : public ::testing::Test {
 protected:
  StatsCatalogTest() : dfs_(MakeOptions()) {}

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 2;
    options.block_size = 64 * 1024;
    options.replication = 1;
    return options;
  }

  storage::TableDesc WriteFact(const std::string& path, int rows,
                               int cif_version = 3) {
    storage::TableDesc desc;
    desc.path = path;
    desc.format = storage::kFormatCif;
    desc.schema = Schema::Make({{"id", TypeKind::kInt32, 4},
                                {"qty", TypeKind::kInt32, 4},
                                {"price", TypeKind::kDouble, 8},
                                {"mode", TypeKind::kString, 6}});
    desc.rows_per_split = 256;
    desc.cif_version = cif_version;
    auto writer = storage::OpenTableWriter(&dfs_, desc);
    CLY_CHECK(writer.ok());
    const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
    for (int i = 0; i < rows; ++i) {
      CLY_CHECK_OK((*writer)->Append(Row({Value(i), Value(i % 10),
                                          Value(i * 0.5),
                                          Value(modes[i % 4])})));
    }
    CLY_CHECK_OK((*writer)->Close());
    auto loaded = storage::LoadTableDesc(dfs_, path);
    CLY_CHECK(loaded.ok());
    return *loaded;
  }

  hdfs::MiniDfs dfs_;
};

TEST_F(StatsCatalogTest, AnalyzeTableComputesExactShapeStats) {
  const storage::TableDesc desc = WriteFact("/fact", 2000);
  auto stats = storage::AnalyzeTable(dfs_, desc);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->table_path, "/fact");
  EXPECT_EQ(stats->cif_version, 3);
  EXPECT_EQ(stats->num_rows, 2000u) << "exact scan count, not metadata";
  ASSERT_EQ(stats->columns.size(), 4u);

  const storage::ColumnStats* id = stats->Column("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->row_count, 2000u);
  EXPECT_EQ(id->null_count, 0u);
  EXPECT_DOUBLE_EQ(id->null_fraction(), 0.0);
  EXPECT_EQ(id->min.i32(), 0);
  EXPECT_EQ(id->max.i32(), 1999);
  EXPECT_NEAR(id->ndv, 2000.0, 2000.0 * 0.02);
  EXPECT_FALSE(id->histogram.empty()) << "numeric column gets a histogram";

  const storage::ColumnStats* qty = stats->Column("qty");
  ASSERT_NE(qty, nullptr);
  EXPECT_NEAR(qty->ndv, 10.0, 1.0);

  const storage::ColumnStats* mode = stats->Column("mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_NEAR(mode->ndv, 4.0, 1.0);
  EXPECT_TRUE(mode->histogram.empty()) << "no histogram for strings";
  EXPECT_EQ(mode->min.str(), "AIR");
  EXPECT_EQ(mode->max.str(), "TRUCK");

  EXPECT_EQ(stats->Column("nope"), nullptr);
}

TEST_F(StatsCatalogTest, SerializationRoundTripsEveryField) {
  const storage::TableDesc desc = WriteFact("/rt", 500);
  auto stats = storage::AnalyzeTable(dfs_, desc);
  ASSERT_TRUE(stats.ok());
  const std::string text = storage::SerializeTableStats(*stats);
  auto back = storage::ParseTableStats(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // A parse -> serialize round trip is byte-identical: doubles are %.17g,
  // sketches hex — nothing is lossy.
  EXPECT_EQ(storage::SerializeTableStats(*back), text);
  EXPECT_EQ(back->num_rows, stats->num_rows);
  ASSERT_EQ(back->columns.size(), stats->columns.size());
  for (size_t i = 0; i < stats->columns.size(); ++i) {
    EXPECT_EQ(back->columns[i].name, stats->columns[i].name);
    EXPECT_EQ(back->columns[i].ndv, stats->columns[i].ndv) << "exact double";
    EXPECT_EQ(back->columns[i].sketch.registers(),
              stats->columns[i].sketch.registers());
    EXPECT_EQ(back->columns[i].histogram.bounds,
              stats->columns[i].histogram.bounds);
    EXPECT_EQ(back->columns[i].histogram.counts,
              stats->columns[i].histogram.counts);
  }
  EXPECT_FALSE(storage::ParseTableStats("garbage").ok());
}

TEST_F(StatsCatalogTest, CatalogPersistsAcrossRestartAndKeysOnVersion) {
  const storage::TableDesc desc = WriteFact("/sales", 1000);
  {
    storage::StatsCatalog catalog(&dfs_);
    EXPECT_FALSE(catalog.Has(desc));
    EXPECT_TRUE(catalog.Load(desc).status().IsNotFound());
    auto analyzed = catalog.Analyze(desc);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    EXPECT_TRUE(catalog.Has(desc));
  }
  // "Restart": a fresh catalog over the same DFS finds the entry — the
  // statistics live in sim-HDFS, not in catalog memory.
  storage::StatsCatalog reopened(&dfs_);
  auto loaded = reopened.Load(desc);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows, 1000u);
  const storage::ColumnStats* id = loaded->Column("id");
  ASSERT_NE(id, nullptr);
  EXPECT_NEAR(id->ndv, 1000.0, 1000.0 * 0.02);

  // Entries key on (table, cif_version): the same path at another version
  // reads as never-analyzed instead of aliasing stale statistics.
  storage::TableDesc v2 = desc;
  v2.cif_version = 2;
  EXPECT_FALSE(reopened.Has(v2));
  EXPECT_TRUE(reopened.Load(v2).status().IsNotFound());
  EXPECT_NE(reopened.EntryPath(desc), reopened.EntryPath(v2));
}

TEST_F(StatsCatalogTest, LoadInvalidatesOnRowCountDrift) {
  const storage::TableDesc desc = WriteFact("/drifting", 800);
  storage::StatsCatalog catalog(&dfs_);
  ASSERT_TRUE(catalog.Analyze(desc).ok());
  ASSERT_TRUE(catalog.Load(desc).ok());

  // A roll-in changed the row count: the stale entry must degrade to
  // NotFound (re-ANALYZE), never to wrong estimates.
  storage::TableDesc grown = desc;
  grown.num_rows = 1600;
  EXPECT_TRUE(catalog.Load(grown).status().IsNotFound());
  EXPECT_FALSE(catalog.Has(grown));

  // Explicit invalidation drops the entry for the original shape too.
  CLY_CHECK_OK(catalog.Invalidate(desc));
  EXPECT_FALSE(catalog.Has(desc));
  EXPECT_TRUE(catalog.Load(desc).status().IsNotFound());
  CLY_CHECK_OK(catalog.Invalidate(desc));  // idempotent
}

TEST_F(StatsCatalogTest, AnalyzeWorksOnEveryCifVersion) {
  for (int version : {1, 2, 3}) {
    SCOPED_TRACE(StrCat("cif v", version));
    const storage::TableDesc desc =
        WriteFact(StrCat("/v", version), 600, version);
    storage::StatsCatalog catalog(&dfs_);
    auto stats = catalog.Analyze(desc);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->num_rows, 600u);
    EXPECT_EQ(stats->cif_version, version);
    auto loaded = catalog.Load(desc);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->num_rows, 600u);
  }
}

}  // namespace
}  // namespace clydesdale
