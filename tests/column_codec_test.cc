// CIF v3 block-encoding tests: bit-packing kernels, writer-side encoding
// selection, encode/parse/decode round-trips across value distributions, and
// the payload validation that must turn every malformed input into an
// IoError (the asan preset runs this suite — rejection must involve no
// out-of-bounds access).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "storage/byte_io.h"
#include "storage/column_codec.h"

namespace clydesdale {
namespace storage {
namespace {

/// Deterministic 64-bit generator (xorshift*) so "random" distributions are
/// reproducible across runs and sanitizers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

 private:
  uint64_t state_;
};

ColumnVector MakeColumn(TypeKind type, const std::vector<int64_t>& vals) {
  ColumnVector col(type);
  for (int64_t v : vals) {
    if (type == TypeKind::kInt32) {
      col.AppendInt32(static_cast<int32_t>(v));
    } else {
      col.AppendInt64(v);
    }
  }
  return col;
}

std::vector<int64_t> ColumnValues(const ColumnVector& col) {
  std::vector<int64_t> out;
  if (col.type() == TypeKind::kInt32) {
    out.assign(col.i32().begin(), col.i32().end());
  } else {
    out.assign(col.i64().begin(), col.i64().end());
  }
  return out;
}

/// Encodes `vals`, re-parses the payload, fully decodes it, and checks the
/// decoded values are identical. Returns the chosen encoding tag.
uint8_t RoundTrip(TypeKind type, const std::vector<int64_t>& vals) {
  const ColumnVector col = MakeColumn(type, vals);
  ByteWriter out;
  IntBlockStats stats;
  const uint8_t tag = EncodeIntPayload(col, &out, &stats);
  EXPECT_EQ(stats.nrows, vals.size());

  IntBlockView view;
  const Status parsed = ParseIntPayload(out.bytes().data(), out.size(),
                                        static_cast<uint32_t>(vals.size()),
                                        type, tag, &view);
  EXPECT_TRUE(parsed.ok()) << parsed.ToString();
  ColumnVector decoded(type);
  DecodeIntView(view, type, &decoded);
  EXPECT_EQ(ColumnValues(decoded), vals) << "tag=" << EncodingName(tag);
  return tag;
}

TEST(BitWidthTest, Basics) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(std::numeric_limits<uint64_t>::max()), 64);
}

TEST(BitPackTest, RoundTripEveryWidth) {
  // Exactly-sized word buffers: the tail value of every width must decode
  // without reading past the allocation (asan enforces it).
  Rng rng(0xC1F3);
  for (int width = 1; width <= 63; ++width) {
    const uint32_t n = 257;  // odd count: tail never lands on a word edge
    const uint64_t mask = (uint64_t{1} << width) - 1;
    std::vector<uint64_t> vals(n);
    for (auto& v : vals) v = rng.Next() & mask;
    vals[0] = 0;
    vals[n - 1] = mask;  // extremes at both ends

    std::vector<uint64_t> words(PackedWordCount(n, width), 0);
    BitPack(vals.data(), n, width, words.data());

    std::vector<uint64_t> all(n);
    BitUnpackAll(words.data(), n, width, all.data());
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(BitUnpackOne(words.data(), i, width), vals[i])
          << "width=" << width << " i=" << i;
      ASSERT_EQ(all[i], vals[i]) << "width=" << width << " i=" << i;
    }
  }
}

// --- Writer-side selection ---------------------------------------------------

uint8_t ChosenEncoding(TypeKind type, const std::vector<int64_t>& vals) {
  ByteWriter out;
  IntBlockStats stats;
  return EncodeIntPayload(MakeColumn(type, vals), &out, &stats);
}

TEST(EncodingSelectionTest, ConstantBlockPicksRle) {
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt32, std::vector<int64_t>(4096, 7)),
            kEncRle);
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt64, std::vector<int64_t>(4096, -3)),
            kEncRle);
}

TEST(EncodingSelectionTest, LongRunsPickRle) {
  std::vector<int64_t> vals;
  for (int run = 0; run < 8; ++run) {
    vals.insert(vals.end(), 512, run * 1000);
  }
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt64, vals), kEncRle);
}

TEST(EncodingSelectionTest, AlternatingSmallValuesPickBitPack) {
  // Run count equals row count, so RLE loses; values fit one bit.
  std::vector<int64_t> vals(4096);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = i % 2;
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt32, vals), kEncBitPack);
}

TEST(EncodingSelectionTest, NarrowRangeOnLargeBasePicksFor) {
  // Bit-pack would need 31 bits for the absolute values; FoR needs 7 for
  // the deltas.
  Rng rng(7);
  std::vector<int64_t> vals(4096);
  for (auto& v : vals) v = 19920101 + static_cast<int64_t>(rng.Next() % 100);
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt32, vals), kEncFor);
}

TEST(EncodingSelectionTest, NegativeBaseUsesForNotBitPack) {
  Rng rng(11);
  std::vector<int64_t> vals(1024);
  for (auto& v : vals) v = -50 + static_cast<int64_t>(rng.Next() % 100);
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt64, vals), kEncFor);
}

TEST(EncodingSelectionTest, IncompressibleBlockStaysPlain) {
  // Full-range values: packing can't strictly beat plain and negatives rule
  // out bit-pack, so the writer must degrade to the v2 byte cost.
  Rng rng(23);
  std::vector<int64_t> w32(1024), w64(1024);
  for (auto& v : w32) v = static_cast<int32_t>(rng.Next());
  for (auto& v : w64) v = static_cast<int64_t>(rng.Next());
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt32, w32), kEncPlain);
  EXPECT_EQ(ChosenEncoding(TypeKind::kInt64, w64), kEncPlain);
}

// --- Round-trip properties ---------------------------------------------------

TEST(IntPayloadRoundTripTest, DistributionsBothTypes) {
  Rng rng(0xD15C0);
  for (const TypeKind type : {TypeKind::kInt32, TypeKind::kInt64}) {
    // Empty block and single row.
    RoundTrip(type, {});
    RoundTrip(type, {42});
    RoundTrip(type, {-1});
    // Constant, long runs, alternating, sorted, random small, random wide.
    RoundTrip(type, std::vector<int64_t>(1000, 123456));
    std::vector<int64_t> runs;
    for (int r = 0; r < 10; ++r) runs.insert(runs.end(), 100, r * 7 - 20);
    RoundTrip(type, runs);
    std::vector<int64_t> alt(1001);
    for (size_t i = 0; i < alt.size(); ++i) alt[i] = i % 3;
    RoundTrip(type, alt);
    std::vector<int64_t> sorted(1000);
    for (size_t i = 0; i < sorted.size(); ++i) {
      sorted[i] = 1000000 + static_cast<int64_t>(i);
    }
    RoundTrip(type, sorted);
    std::vector<int64_t> small(1000), wide(1000);
    for (auto& v : small) v = static_cast<int64_t>(rng.Next() % 50);
    RoundTrip(type, small);
    for (auto& v : wide) {
      v = type == TypeKind::kInt32 ? static_cast<int32_t>(rng.Next())
                                   : static_cast<int64_t>(rng.Next());
    }
    RoundTrip(type, wide);
  }
}

TEST(IntPayloadRoundTripTest, TypeBoundaryValues) {
  RoundTrip(TypeKind::kInt32, {std::numeric_limits<int32_t>::min(),
                               std::numeric_limits<int32_t>::max(), 0, -1, 1});
  RoundTrip(TypeKind::kInt64, {std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(), 0, -1, 1});
  // Narrow band hugging int32 min: FoR with a negative base must still
  // round-trip exactly.
  std::vector<int64_t> low(256);
  for (size_t i = 0; i < low.size(); ++i) {
    low[i] = std::numeric_limits<int32_t>::min() + static_cast<int64_t>(i % 16);
  }
  EXPECT_EQ(RoundTrip(TypeKind::kInt32, low), kEncFor);
}

TEST(IntPayloadRoundTripTest, RleViewExposesRunStructure) {
  std::vector<int64_t> vals;
  vals.insert(vals.end(), 300, 5);
  vals.insert(vals.end(), 200, -9);
  vals.insert(vals.end(), 500, 5);
  const ColumnVector col = MakeColumn(TypeKind::kInt64, vals);
  ByteWriter out;
  IntBlockStats stats;
  const uint8_t tag = EncodeIntPayload(col, &out, &stats);
  ASSERT_EQ(tag, kEncRle);
  EXPECT_EQ(stats.nruns, 3u);
  EXPECT_EQ(stats.min, -9);
  EXPECT_EQ(stats.max, 5);

  IntBlockView view;
  ASSERT_TRUE(ParseIntPayload(out.bytes().data(), out.size(), 1000,
                              TypeKind::kInt64, tag, &view)
                  .ok());
  ASSERT_EQ(view.nruns, 3u);
  EXPECT_EQ(view.run_values[0], 5);
  EXPECT_EQ(view.run_values[1], -9);
  EXPECT_EQ(view.run_values[2], 5);
  EXPECT_EQ(view.run_lengths[0], 300u);
  EXPECT_EQ(view.run_lengths[1], 200u);
  EXPECT_EQ(view.run_lengths[2], 500u);
}

// --- Payload validation ------------------------------------------------------

Status ParseRaw(const ByteWriter& out, uint32_t nrows, TypeKind type,
                uint8_t tag) {
  IntBlockView view;
  return ParseIntPayload(out.bytes().data(), out.size(), nrows, type, tag,
                         &view);
}

TEST(IntPayloadValidationTest, UnknownEncodingTagIsRejected) {
  ByteWriter out;
  out.PutI64(1);
  for (const uint8_t tag : {kEncDict, kEncDictRle, kEncCount, uint8_t{200}}) {
    const Status s = ParseRaw(out, 1, TypeKind::kInt64, tag);
    ASSERT_FALSE(s.ok()) << "tag=" << int{tag};
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
}

TEST(IntPayloadValidationTest, TruncatedPayloadsAreRejected) {
  // Plain lane shorter than nrows, RLE header cut mid-u32, packed words
  // missing the final word.
  ByteWriter plain;
  plain.PutI64(1);
  EXPECT_EQ(ParseRaw(plain, 3, TypeKind::kInt64, kEncPlain).code(),
            StatusCode::kIoError);

  ByteWriter rle;
  rle.PutU32(1);  // no pad, no runs
  EXPECT_EQ(ParseRaw(rle, 1, TypeKind::kInt64, kEncRle).code(),
            StatusCode::kIoError);

  ByteWriter packed;
  packed.PutU8(13);
  for (int p = 0; p < 7; ++p) packed.PutU8(0);
  packed.PutU64(0);  // 64 rows at width 13 need 14 words, not 1
  EXPECT_EQ(ParseRaw(packed, 64, TypeKind::kInt64, kEncBitPack).code(),
            StatusCode::kIoError);
}

TEST(IntPayloadValidationTest, RleRunAccountingIsEnforced) {
  // More runs than rows.
  ByteWriter overcount;
  overcount.PutU32(9);
  overcount.PutU32(0);
  EXPECT_EQ(ParseRaw(overcount, 4, TypeKind::kInt64, kEncRle).code(),
            StatusCode::kIoError);

  // A zero-length run.
  ByteWriter zero;
  zero.PutU32(1);
  zero.PutU32(0);
  zero.PutI64(7);
  zero.PutU32(0);
  EXPECT_EQ(ParseRaw(zero, 1, TypeKind::kInt64, kEncRle).code(),
            StatusCode::kIoError);

  // Lengths summing past the block's row count.
  ByteWriter oversum;
  oversum.PutU32(2);
  oversum.PutU32(0);
  oversum.PutI64(7);
  oversum.PutI64(8);
  oversum.PutU32(600);
  oversum.PutU32(600);
  EXPECT_EQ(ParseRaw(oversum, 1000, TypeKind::kInt64, kEncRle).code(),
            StatusCode::kIoError);
}

TEST(IntPayloadValidationTest, RleValueOutsideInt32IsRejected) {
  ByteWriter out;
  out.PutU32(1);
  out.PutU32(0);
  out.PutI64(int64_t{1} << 40);
  out.PutU32(8);
  EXPECT_EQ(ParseRaw(out, 8, TypeKind::kInt32, kEncRle).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(ParseRaw(out, 8, TypeKind::kInt64, kEncRle).ok());
}

TEST(IntPayloadValidationTest, PackedWidthOutOfRangeIsRejected) {
  for (const int width : {0, 64, 255}) {
    ByteWriter out;
    out.PutU8(static_cast<uint8_t>(width));
    for (int p = 0; p < 7; ++p) out.PutU8(0);
    out.PutU64(0);
    EXPECT_EQ(ParseRaw(out, 1, TypeKind::kInt64, kEncBitPack).code(),
              StatusCode::kIoError)
        << "width=" << width;
  }
}

TEST(IntPayloadValidationTest, ForDeltaRangeEscapingTypeIsRejected) {
  // base + 2^width - 1 would exceed int32 max: a corrupt FoR block must
  // never materialize an out-of-range value into an int32 column.
  ByteWriter out;
  out.PutI64(std::numeric_limits<int32_t>::max() - 100);
  out.PutU8(40);
  for (int p = 0; p < 7; ++p) out.PutU8(0);
  out.PutU64(0);
  EXPECT_EQ(ParseRaw(out, 1, TypeKind::kInt32, kEncFor).code(),
            StatusCode::kIoError);
  // The identical payload is fine for an int64 column.
  EXPECT_TRUE(ParseRaw(out, 1, TypeKind::kInt64, kEncFor).ok());
}

TEST(IntPayloadValidationTest, ForBaseOverflowingInt64IsRejected) {
  ByteWriter out;
  out.PutI64(std::numeric_limits<int64_t>::max() - 2);
  out.PutU8(8);
  for (int p = 0; p < 7; ++p) out.PutU8(0);
  out.PutU64(0);
  EXPECT_EQ(ParseRaw(out, 1, TypeKind::kInt64, kEncFor).code(),
            StatusCode::kIoError);
}

TEST(EncodingNameTest, CoversAllTags) {
  EXPECT_STREQ(EncodingName(kEncPlain), "plain");
  EXPECT_STREQ(EncodingName(kEncRle), "rle");
  EXPECT_STREQ(EncodingName(kEncBitPack), "bitpack");
  EXPECT_STREQ(EncodingName(kEncFor), "for");
  EXPECT_STREQ(EncodingName(kEncDict), "dict");
  EXPECT_STREQ(EncodingName(kEncDictRle), "dict_rle");
  EXPECT_STREQ(EncodingName(kEncCount), "unknown");
}

}  // namespace
}  // namespace storage
}  // namespace clydesdale
