#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"

namespace clydesdale {
namespace sql {
namespace {

// The 13 SSB queries as SQL text (the paper quotes Q3.1 and Q2.1 verbatim).
const std::pair<const char*, const char*> kSsbSql[] = {
    {"Q1.1",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_year = 1993 "
     "AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25"},
    {"Q1.2",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401 "
     "AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35"},
    {"Q1.3",
     "SELECT SUM(lo_extendedprice * lo_discount) AS revenue "
     "FROM lineorder, date "
     "WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 "
     "AND d_year = 1994 "
     "AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35"},
    {"Q2.1",
     "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' "
     "AND s_region = 'AMERICA' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"},
    {"Q2.2",
     "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey "
     "AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228' "
     "AND s_region = 'ASIA' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"},
    {"Q2.3",
     "SELECT d_year, p_brand1, SUM(lo_revenue) AS revenue "
     "FROM lineorder, date, part, supplier "
     "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey "
     "AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2239' "
     "AND s_region = 'EUROPE' "
     "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"},
    {"Q3.1",
     "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue "
     "FROM lineorder, customer, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey "
     "AND lo_suppkey = s_suppkey AND c_region = 'ASIA' "
     "AND s_region = 'ASIA' AND d_year BETWEEN 1992 AND 1997 "
     "GROUP BY c_nation, s_nation, d_year "
     "ORDER BY d_year ASC, revenue DESC"},
    {"Q3.2",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM lineorder, customer, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey AND c_nation = 'UNITED STATES' "
     "AND s_nation = 'UNITED STATES' AND d_year BETWEEN 1992 AND 1997 "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC"},
    {"Q3.3",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM lineorder, customer, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey "
     "AND c_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND s_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND d_year BETWEEN 1992 AND 1997 "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC"},
    {"Q3.4",
     "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue "
     "FROM lineorder, customer, supplier, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_orderdate = d_datekey "
     "AND c_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND s_city IN ('UNITED KI1', 'UNITED KI5') "
     "AND d_yearmonth = 'Dec1997' "
     "GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC"},
    {"Q4.1",
     "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM lineorder, customer, supplier, part, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
     "AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') "
     "GROUP BY d_year, c_nation ORDER BY d_year, c_nation"},
    {"Q4.2",
     "SELECT d_year, s_nation, p_category, "
     "SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM lineorder, customer, supplier, part, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
     "AND (d_year = 1997 OR d_year = 1998) "
     "AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') "
     "GROUP BY d_year, s_nation, p_category "
     "ORDER BY d_year, s_nation, p_category"},
    {"Q4.3",
     "SELECT d_year, s_city, p_brand1, "
     "SUM(lo_revenue - lo_supplycost) AS profit "
     "FROM lineorder, customer, supplier, part, date "
     "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
     "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
     "AND c_region = 'AMERICA' AND s_nation = 'UNITED STATES' "
     "AND (d_year = 1997 OR d_year = 1998) AND p_category = 'MFGR#14' "
     "GROUP BY d_year, s_city, p_brand1 "
     "ORDER BY d_year, s_city, p_brand1"},
};

class SqlTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);
    ssb::SsbLoadOptions load;
    load.scale_factor = 0.005;
    auto dataset = ssb::LoadSsb(cluster_, load);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* SqlTest::cluster_ = nullptr;
ssb::SsbDataset* SqlTest::dataset_ = nullptr;

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x, 42 FROM t WHERE s = 'A''B' AND y >= 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].raw, "x");
  EXPECT_EQ((*tokens)[3].number, 42);
  // 'A''B' unescapes to A'B.
  bool found = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.raw, "A'B");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ((*tokens).back().kind, TokenKind::kEnd);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("a != b <> c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> symbols;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kSymbol) symbols.push_back(t.text);
  }
  EXPECT_EQ(symbols, (std::vector<std::string>{"!=", "<>", "<=", ">="}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("x = 'unterminated").ok());
  EXPECT_FALSE(Tokenize("x ? y").ok());
}

TEST_F(SqlTest, AllSsbQueriesParseAndMatchTheCatalogue) {
  // The parsed query must produce exactly the same rows as the hand-built
  // catalogue spec, through the same reference executor.
  for (const auto& [id, text] : kSsbSql) {
    auto parsed = ParseStarQuery(text, dataset_->star);
    ASSERT_TRUE(parsed.ok()) << id << ": " << parsed.status().ToString();
    auto catalogue = ssb::QueryById(id);
    ASSERT_TRUE(catalogue.ok());

    auto parsed_rows =
        ssb::ExecuteReference(cluster_, dataset_->star, *parsed);
    auto catalogue_rows =
        ssb::ExecuteReference(cluster_, dataset_->star, *catalogue);
    ASSERT_TRUE(parsed_rows.ok()) << id;
    ASSERT_TRUE(catalogue_rows.ok()) << id;
    ASSERT_EQ(parsed_rows->size(), catalogue_rows->size()) << id;
    for (size_t i = 0; i < parsed_rows->size(); ++i) {
      EXPECT_EQ((*parsed_rows)[i], (*catalogue_rows)[i])
          << id << " row " << i;
    }
  }
}

TEST_F(SqlTest, ParsedSpecShape) {
  auto spec = ParseStarQuery(kSsbSql[3].second, dataset_->star);  // Q2.1
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->dims.size(), 3u);
  EXPECT_EQ(spec->dims[0].dimension, "date");
  EXPECT_EQ(spec->dims[0].fact_fk, "lo_orderdate");
  EXPECT_EQ(spec->dims[0].aux_columns,
            (std::vector<std::string>{"d_year"}));
  EXPECT_EQ(spec->group_by, (std::vector<std::string>{"d_year", "p_brand1"}));
  EXPECT_EQ(spec->aggregates[0].name, "revenue");
  EXPECT_EQ(spec->order_by.size(), 2u);
  EXPECT_TRUE(spec->order_by[0].ascending);
}

TEST_F(SqlTest, CaseInsensitiveIdentifiersAndKeywords) {
  auto spec = ParseStarQuery(
      "select SUM(LO_REVENUE) as R from LINEORDER, DATE "
      "where LO_ORDERDATE = D_DATEKEY and D_YEAR = 1995",
      dataset_->star);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->aggregates[0].name, "r");
}

TEST_F(SqlTest, DefaultAggregateName) {
  auto spec = ParseStarQuery(
      "SELECT SUM(lo_revenue) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey",
      dataset_->star);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->aggregates[0].name, "sum1");
}

TEST_F(SqlTest, RejectsBadQueries) {
  const char* bad[] = {
      // unknown table
      "SELECT SUM(lo_revenue) FROM lineorder, nope "
      "WHERE lo_orderdate = d_datekey",
      // unknown column
      "SELECT SUM(lo_nope) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey",
      // no aggregate
      "SELECT d_year FROM lineorder, date WHERE lo_orderdate = d_datekey "
      "GROUP BY d_year",
      // dimension without a join condition
      "SELECT SUM(lo_revenue) FROM lineorder, date WHERE d_year = 1993",
      // group by mismatch with select
      "SELECT d_year, SUM(lo_revenue) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey GROUP BY d_yearmonth",
      // ORDER BY something not in the output
      "SELECT SUM(lo_revenue) AS r FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey ORDER BY d_year",
      // OR across two different tables
      "SELECT SUM(lo_revenue) FROM lineorder, date, supplier "
      "WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey "
      "AND (d_year = 1997 OR s_region = 'ASIA')",
      // string literal against an int column
      "SELECT SUM(lo_revenue) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey AND d_year = 'NOPE'",
      // aggregate over a dimension column
      "SELECT SUM(d_year) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey",
      // non-aggregate select without GROUP BY
      "SELECT d_year, SUM(lo_revenue) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey",
      // trailing garbage
      "SELECT SUM(lo_revenue) FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey LIMIT 5",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseStarQuery(sql, dataset_->star).ok()) << sql;
  }
}

TEST_F(SqlTest, QualifiedColumnNames) {
  auto spec = ParseStarQuery(
      "SELECT SUM(lineorder.lo_revenue) AS revenue FROM lineorder, date "
      "WHERE lineorder.lo_orderdate = date.d_datekey AND date.d_year = 1994",
      dataset_->star);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->dims[0].fact_fk, "lo_orderdate");
}

}  // namespace
}  // namespace sql
}  // namespace clydesdale
