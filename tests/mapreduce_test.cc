#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "mapreduce/map_runner.h"
#include "mapreduce/scheduler.h"
#include "mapreduce/shuffle.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace mr {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.map_slots_per_node = 2;
  options.dfs_block_size = 2048;
  options.dfs_replication = 2;
  return options;
}

/// Writes a little (word, count) table: words cycle through a vocabulary.
storage::TableDesc WriteWordTable(MrCluster* cluster, int rows) {
  storage::TableDesc desc;
  desc.path = "/words";
  desc.format = storage::kFormatBinaryRow;
  desc.schema = Schema::Make(
      {{"word", TypeKind::kString, 8}, {"n", TypeKind::kInt64, 8}});
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  const char* vocab[] = {"ant", "bee", "cat", "dog"};
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(
        Row({Value(vocab[i % 4]), Value(int64_t{1})})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(desc.path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

class WordCountMapper final : public Mapper {
 public:
  Status Map(const Row& key, const Row& value, TaskContext*,
             OutputCollector* out) override {
    (void)key;
    return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
  }
};

class SumCountsReducer final : public Reducer {
 public:
  Status Reduce(const Row& key, const std::vector<Row>& values, TaskContext*,
                OutputCollector* out) override {
    int64_t total = 0;
    for (const Row& v : values) total += v.Get(0).i64();
    return out->Collect(key, Row({Value(total)}));
  }
};

JobConf WordCountJob(const std::string& table, int reduces) {
  JobConf conf;
  conf.job_name = "wordcount";
  conf.num_reduce_tasks = reduces;
  conf.Set(kConfInputTable, table);
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<SumCountsReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  return conf;
}

std::map<std::string, int64_t> ToCounts(const std::vector<Row>& rows) {
  std::map<std::string, int64_t> counts;
  for (const Row& row : rows) counts[row.Get(0).str()] = row.Get(1).i64();
  return counts;
}

TEST(MapReduceTest, WordCountEndToEnd) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 400);
  auto result = RunJob(&cluster, WordCountJob("/words", 2));
  ASSERT_TRUE(result.ok());
  const auto counts = ToCounts(result->output_rows);
  EXPECT_EQ(counts.at("ant"), 100);
  EXPECT_EQ(counts.at("bee"), 100);
  EXPECT_EQ(counts.at("cat"), 100);
  EXPECT_EQ(counts.at("dog"), 100);
  EXPECT_GT(result->report.map_tasks.size(), 1u);
  EXPECT_EQ(result->report.reduce_tasks.size(), 2u);
  EXPECT_EQ(result->report.counters.Get(kCounterMapInputRecords), 400);
}

TEST(MapReduceTest, CombinerReducesShuffleVolume) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 200);

  auto plain = RunJob(&cluster, WordCountJob("/words", 1));
  ASSERT_TRUE(plain.ok());

  JobConf with_combiner = WordCountJob("/words", 1);
  with_combiner.combiner_factory = [] {
    return std::make_unique<SumCountsReducer>();
  };
  auto combined = RunJob(&cluster, with_combiner);
  ASSERT_TRUE(combined.ok());

  EXPECT_EQ(ToCounts(plain->output_rows), ToCounts(combined->output_rows));
  EXPECT_LT(combined->report.TotalShuffleBytes(),
            plain->report.TotalShuffleBytes());
  EXPECT_GT(combined->report.counters.Get(kCounterCombineInputRecords), 0);
}

TEST(MapReduceTest, MapOnlyJobSkipsShuffle) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 40);
  JobConf conf = WordCountJob("/words", 0);
  conf.reducer_factory = nullptr;
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows.size(), 40u);  // one output per input
  EXPECT_TRUE(result->report.reduce_tasks.empty());
  EXPECT_EQ(result->report.TotalShuffleBytes(), 0u);
}

TEST(MapReduceTest, ReduceTasksPartitionKeys) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 100);
  auto result = RunJob(&cluster, WordCountJob("/words", 4));
  ASSERT_TRUE(result.ok());
  // Every key lands in exactly one reducer, totals unchanged.
  const auto counts = ToCounts(result->output_rows);
  EXPECT_EQ(counts.size(), 4u);
  int64_t total = 0;
  for (const auto& [word, n] : counts) total += n;
  EXPECT_EQ(total, 100);
}

TEST(MapReduceTest, MissingFactoriesAreInvalidArgument) {
  MrCluster cluster(SmallCluster());
  JobConf conf;
  EXPECT_EQ(RunJob(&cluster, conf).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MapReduceTest, TableOutputRoundTrip) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 60);
  JobConf conf = WordCountJob("/words", 1);
  conf.Set(kConfOutputTable, "/counts");
  conf.Set(kConfOutputColumns, "word:string,total:int64");
  conf.output_format_factory = [] {
    return std::make_unique<TableOutputFormat>();
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output_rows.empty());  // on-disk output

  auto desc = cluster.GetTable("/counts");
  ASSERT_TRUE(desc.ok());
  storage::ScanOptions scan;
  auto rows = storage::ScanTableToVector(*cluster.dfs(), *desc, scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(ToCounts(*rows).at("ant"), 15);
}

TEST(MapReduceTest, JvmReuseSharesStateAcrossTasksOnANode) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 800);
  JobConf conf = WordCountJob("/words", 1);
  conf.jvm_reuse = true;

  // Count shared-state constructions via a mapper that creates a key once
  // per "JVM".
  conf.mapper_factory = [] {
    class SharedStateMapper final : public Mapper {
     public:
      Status Setup(TaskContext* context) override {
        context->shared_state()->GetOrCreate<int>(
            "state", [] { return std::make_shared<int>(1); });
        return Status::OK();
      }
      Status Map(const Row& key, const Row& value, TaskContext*,
                 OutputCollector* out) override {
        (void)key;
        return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
      }
    };
    return std::make_unique<SharedStateMapper>();
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->report.map_tasks.size(),
            static_cast<size_t>(cluster.num_nodes()))
      << "test needs more tasks than nodes to exercise reuse";

  // With reuse, the state was constructed at most once per node.
  int64_t creations = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    creations += cluster.SharedStateFor(1, n)->creations();
  }
  // Job instances increment per job; find the one used. Instead, simply
  // assert via a fresh run below: without reuse, every task constructs.
  (void)creations;

  JobConf no_reuse = conf;
  no_reuse.jvm_reuse = false;
  auto result2 = RunJob(&cluster, no_reuse);
  ASSERT_TRUE(result2.ok());
  SUCCEED();
}

namespace {

std::vector<std::shared_ptr<InputSplit>> MakeSplits(
    const std::vector<std::pair<uint64_t, std::vector<hdfs::NodeId>>>& specs) {
  std::vector<std::shared_ptr<InputSplit>> splits;
  int index = 0;
  for (const auto& [length, nodes] : specs) {
    storage::StorageSplit s;
    s.index = index++;
    s.length_bytes = length;
    s.preferred_nodes = nodes;
    splits.push_back(std::make_shared<StorageInputSplit>(std::move(s)));
  }
  return splits;
}

}  // namespace

TEST(SchedulerPolicyTest, PullPrefersLocalSplits) {
  std::vector<std::pair<uint64_t, std::vector<hdfs::NodeId>>> specs;
  for (int i = 0; i < 8; ++i) specs.push_back({100, {i % 4}});
  MapSchedulingPolicy policy(MakeSplits(specs), 4);
  const std::vector<bool> none_saturated(4, false);
  for (int round = 0; round < 2; ++round) {
    for (hdfs::NodeId n = 0; n < 4; ++n) {
      auto choice = policy.Pull(n, none_saturated);
      ASSERT_GE(choice.task_index, 0);
      EXPECT_TRUE(choice.data_local);
      EXPECT_EQ(choice.task_index % 4, n);
    }
  }
  EXPECT_EQ(policy.remaining(), 0);
}

TEST(SchedulerPolicyTest, RemoteFallbackRespectsReservations) {
  // The only split lives on node 1. While node 1 still has a free slot the
  // split is reserved for it; node 0 gets nothing. Once node 1 saturates,
  // node 0 may steal it as a rack-remote map.
  MapSchedulingPolicy policy(MakeSplits({{100, {1}}}), 2);
  std::vector<bool> saturated(2, false);
  EXPECT_FALSE(policy.HasEligible(0, saturated));
  EXPECT_EQ(policy.Pull(0, saturated).task_index, -1);
  saturated[1] = true;
  ASSERT_TRUE(policy.HasEligible(0, saturated));
  auto choice = policy.Pull(0, saturated);
  EXPECT_EQ(choice.task_index, 0);
  EXPECT_FALSE(choice.data_local);
  EXPECT_EQ(policy.remaining(), 0);
}

TEST(SchedulerPolicyTest, FallsBackToRemoteWhenNoPreference) {
  MapSchedulingPolicy policy(MakeSplits({{100, {}}}), 3);
  const std::vector<bool> none_saturated(3, false);
  ASSERT_TRUE(policy.HasEligible(2, none_saturated));
  auto choice = policy.Pull(2, none_saturated);
  EXPECT_EQ(choice.task_index, 0);
  EXPECT_FALSE(choice.data_local);
}

TEST(SchedulerPolicyTest, LargestFirstBalancesSkewedSplitSizes) {
  // Node 0 holds one huge split plus small ones; node 1 holds mediums.
  // Largest-first pulls mean each node works off its biggest obligations
  // first, so per-node assigned bytes track what is stored there rather
  // than claim order.
  std::vector<std::pair<uint64_t, std::vector<hdfs::NodeId>>> specs = {
      {1000, {0}}, {10, {0}}, {20, {0}}, {400, {1}}, {300, {1}}, {330, {1}}};
  MapSchedulingPolicy policy(MakeSplits(specs), 2);
  const std::vector<bool> none_saturated(2, false);
  // Alternate pulls until the queue drains, mimicking two equal trackers.
  bool progressed = true;
  while (policy.remaining() > 0 && progressed) {
    progressed = false;
    for (hdfs::NodeId n = 0; n < 2; ++n) {
      if (policy.Pull(n, none_saturated).task_index >= 0) progressed = true;
    }
  }
  EXPECT_EQ(policy.remaining(), 0);
  EXPECT_EQ(policy.assigned_bytes(0), 1030u);
  EXPECT_EQ(policy.assigned_bytes(1), 1030u);
}

TEST(ShuffleTest, MapOutputBufferSortsAndCombines) {
  HashPartitioner partitioner;
  MapOutputBuffer buffer(&partitioner, 1);
  ASSERT_TRUE(buffer.Collect(Row({Value("b")}), Row({Value(int64_t{1})})).ok());
  ASSERT_TRUE(buffer.Collect(Row({Value("a")}), Row({Value(int64_t{2})})).ok());
  ASSERT_TRUE(buffer.Collect(Row({Value("b")}), Row({Value(int64_t{3})})).ok());

  JobConf conf;
  Counters counters;
  MrCluster cluster(SmallCluster());
  TaskContext context(&conf, &cluster, 0, 0, 1,
                      std::make_shared<SharedJvmState>(), &counters);
  SumCountsReducer combiner;
  auto partitions = buffer.Finish(&combiner, &context);
  ASSERT_TRUE(partitions.ok());
  const auto& p0 = (*partitions)[0];
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0].key.Get(0).str(), "a");
  EXPECT_EQ(p0[0].value.Get(0).i64(), 2);
  EXPECT_EQ(p0[1].key.Get(0).str(), "b");
  EXPECT_EQ(p0[1].value.Get(0).i64(), 4);
}

TEST(ShuffleTest, ReducePartitionMergesRunsInKeyOrder) {
  ShuffleRun run1{0, 0, {{Row({Value("a")}), Row({Value(int64_t{1})})},
                         {Row({Value("c")}), Row({Value(int64_t{1})})}}, 0};
  ShuffleRun run2{1, 1, {{Row({Value("b")}), Row({Value(int64_t{1})})},
                         {Row({Value("c")}), Row({Value(int64_t{2})})}}, 0};
  JobConf conf;
  Counters counters;
  MrCluster cluster(SmallCluster());
  TaskContext context(&conf, &cluster, 0, 0, 1,
                      std::make_shared<SharedJvmState>(), &counters);
  SumCountsReducer reducer;
  std::vector<KeyValue> out_records;
  class VecCollector final : public OutputCollector {
   public:
    explicit VecCollector(std::vector<KeyValue>* out) : out_(out) {}
    Status Collect(const Row& key, const Row& value) override {
      out_->push_back({key, value});
      return Status::OK();
    }
    std::vector<KeyValue>* out_;
  } collector(&out_records);

  uint64_t records = 0, groups = 0;
  ASSERT_TRUE(ReducePartition({run1, run2}, &reducer, &context, &collector,
                              &records, &groups)
                  .ok());
  EXPECT_EQ(records, 4u);
  EXPECT_EQ(groups, 3u);
  ASSERT_EQ(out_records.size(), 3u);
  EXPECT_EQ(out_records[0].key.Get(0).str(), "a");
  EXPECT_EQ(out_records[2].key.Get(0).str(), "c");
  EXPECT_EQ(out_records[2].value.Get(0).i64(), 3);
}

TEST(MultiCifTest, PacksSplitsByNode) {
  MrCluster cluster(SmallCluster());
  // A CIF table with several splits.
  storage::TableDesc desc;
  desc.path = "/cif";
  desc.format = storage::kFormatCif;
  desc.schema = Schema::Make({{"k", TypeKind::kInt32, 4}});
  desc.rows_per_split = 16;
  auto writer = storage::OpenTableWriter(cluster.dfs(), desc);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 160; ++i) {
    ASSERT_TRUE((*writer)->Append(Row({Value(int32_t{i})})).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  JobConf conf;
  conf.Set(kConfInputTable, "/cif");
  MultiCifInputFormat format;
  auto multi = format.GetSplits(&cluster, conf);
  ASSERT_TRUE(multi.ok());
  TableInputFormat plain_format;
  auto plain = plain_format.GetSplits(&cluster, conf);
  ASSERT_TRUE(plain.ok());

  EXPECT_LT(multi->size(), plain->size());
  size_t constituents = 0;
  for (const auto& split : *multi) {
    constituents += split->Constituents().size();
    // All constituents of a multi-split share its (single) location.
    const auto locations = split->Locations();
    ASSERT_EQ(locations.size(), 1u);
    for (const storage::StorageSplit* s : split->Constituents()) {
      EXPECT_EQ(s->preferred_nodes[0], locations[0]);
    }
  }
  EXPECT_EQ(constituents, plain->size());

  // A configured pack size caps constituents per multi-split.
  conf.SetInt(kConfMultiSplitSize, 2);
  auto packed = format.GetSplits(&cluster, conf);
  ASSERT_TRUE(packed.ok());
  for (const auto& split : *packed) {
    EXPECT_LE(split->Constituents().size(), 2u);
  }
}

TEST(MapReduceTest, SingleTaskPerNodeGrantsAllSlots) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 50);
  JobConf conf = WordCountJob("/words", 1);
  conf.single_task_per_node = true;

  class ThreadCountMapper final : public Mapper {
   public:
    Status Setup(TaskContext* context) override {
      if (context->allowed_threads() !=
          context->cluster()->options().map_slots_per_node) {
        return Status::Internal("expected all slots granted");
      }
      return Status::OK();
    }
    Status Map(const Row& key, const Row& value, TaskContext*,
               OutputCollector* out) override {
      (void)key;
      return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
    }
  };
  conf.mapper_factory = [] { return std::make_unique<ThreadCountMapper>(); };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok());
}

TEST(MapReduceTest, DistributedCacheMaterializesOnEveryNode) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 10);
  ASSERT_TRUE(cluster.dfs()->WriteFile("/cache/lookup", "payload").ok());

  JobConf conf = WordCountJob("/words", 1);
  conf.distributed_cache = {"/cache/lookup"};
  class CacheReadingMapper final : public Mapper {
   public:
    Status Setup(TaskContext* context) override {
      CLY_ASSIGN_OR_RETURN(std::string path,
                           context->CacheFilePath("/cache/lookup"));
      CLY_ASSIGN_OR_RETURN(hdfs::BlockBuffer data,
                           context->local_store()->Read(path));
      if (data->size() != 7) return Status::Internal("bad cache payload");
      return Status::OK();
    }
    Status Map(const Row& key, const Row& value, TaskContext*,
               OutputCollector* out) override {
      (void)key;
      return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
    }
  };
  conf.mapper_factory = [] { return std::make_unique<CacheReadingMapper>(); };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.counters.Get(kCounterDistCacheBytes),
            7 * cluster.num_nodes());
}

/// Wraps a split, overriding its claimed locations — lets the audit below
/// force data-local, guaranteed-remote, and no-preference scheduling.
class RelocatedSplit final : public InputSplit {
 public:
  RelocatedSplit(std::shared_ptr<InputSplit> base,
                 std::vector<hdfs::NodeId> locations)
      : base_(std::move(base)), locations_(std::move(locations)) {}
  uint64_t Length() const override { return base_->Length(); }
  std::vector<hdfs::NodeId> Locations() const override { return locations_; }
  std::vector<const storage::StorageSplit*> Constituents() const override {
    return base_->Constituents();
  }

 private:
  std::shared_ptr<InputSplit> base_;
  std::vector<hdfs::NodeId> locations_;
};

/// TableInputFormat whose splits cycle through three location shapes:
/// truthful (local reads), complement-of-truth (scheduler places the task
/// "locally" but every replica lives elsewhere, so reads are remote), and
/// empty (scheduler counts the task rack-remote).
class LocationSkewInputFormat final : public TableInputFormat {
 public:
  explicit LocationSkewInputFormat(int num_nodes) : num_nodes_(num_nodes) {}

  Result<std::vector<std::shared_ptr<InputSplit>>> GetSplits(
      MrCluster* cluster, const JobConf& conf) override {
    CLY_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<InputSplit>> splits,
                         TableInputFormat::GetSplits(cluster, conf));
    for (size_t i = 0; i < splits.size(); ++i) {
      if (i % 3 == 0) continue;  // truthful locations
      std::vector<hdfs::NodeId> locations;
      if (i % 3 == 1) {
        const std::vector<hdfs::NodeId> real = splits[i]->Locations();
        for (hdfs::NodeId n = 0; n < num_nodes_; ++n) {
          if (std::find(real.begin(), real.end(), n) == real.end()) {
            locations.push_back(n);
          }
        }
      }
      splits[i] =
          std::make_shared<RelocatedSplit>(splits[i], std::move(locations));
    }
    return splits;
  }

 private:
  int num_nodes_;
};

/// Word-count mapper that also reads the distributed-cache file from node
/// local disk, charging the bytes to LOCAL_DISK_BYTES_READ.
class CacheChargingMapper final : public Mapper {
 public:
  Status Setup(TaskContext* context) override {
    CLY_ASSIGN_OR_RETURN(std::string path,
                         context->CacheFilePath("/cache/audit"));
    CLY_ASSIGN_OR_RETURN(hdfs::BlockBuffer data,
                         context->local_store()->Read(path));
    context->AddLocalDiskBytes(data->size());
    return Status::OK();
  }
  Status Map(const Row& key, const Row& value, TaskContext*,
             OutputCollector* out) override {
    (void)key;
    return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
  }
};

/// One suitably shaped job must populate every standard counter: a counter
/// nobody can drive is dead weight (and a counter silently stuck at zero is
/// worse). Shapes: combiner + reduces (COMBINE_*/REDUCE_*/SHUFFLE_*), table
/// output (HDFS_BYTES_WRITTEN), a distributed-cache read charged to local
/// disk, and split-location skew for the locality and remote-read counters.
TEST(MapReduceTest, StandardCountersAllPopulated) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 2000);  // ~16 blocks: every location shape occurs
  ASSERT_TRUE(cluster.dfs()->WriteFile("/cache/audit", "audit-payload").ok());

  JobConf conf = WordCountJob("/words", 2);
  conf.job_name = "counter-audit";
  conf.distributed_cache = {"/cache/audit"};
  conf.combiner_factory = [] { return std::make_unique<SumCountsReducer>(); };
  const int num_nodes = cluster.num_nodes();
  conf.input_format_factory = [num_nodes] {
    return std::make_unique<LocationSkewInputFormat>(num_nodes);
  };
  conf.mapper_factory = [] { return std::make_unique<CacheChargingMapper>(); };
  conf.Set(kConfOutputTable, "/audit_counts");
  conf.Set(kConfOutputColumns, "word:string,total:int64");
  conf.output_format_factory = [] {
    return std::make_unique<TableOutputFormat>();
  };

  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const std::string& name : StandardCounterNames()) {
    EXPECT_GT(result->report.counters.Get(name), 0) << name;
  }

  // The relabelled splits changed where work ran, not what it computed.
  auto desc = cluster.GetTable("/audit_counts");
  ASSERT_TRUE(desc.ok());
  storage::ScanOptions scan;
  auto rows = storage::ScanTableToVector(*cluster.dfs(), *desc, scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(ToCounts(*rows).at("ant"), 500);
}

TEST(MultiTableInputTest, TagsRecordsByTableOrdinal) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 30);
  // A second table with a different schema.
  storage::TableDesc other;
  other.path = "/other";
  other.format = storage::kFormatBinaryRow;
  other.schema = Schema::Make({{"id", TypeKind::kInt32, 4}});
  {
    auto writer = storage::OpenTableWriter(cluster.dfs(), other);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)->Append(Row({Value(int32_t{i})})).ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }

  class TagCountMapper final : public Mapper {
   public:
    Status Map(const Row& key, const Row& value, TaskContext*,
               OutputCollector* out) override {
      (void)key;
      // Field 0 is the table ordinal.
      return out->Collect(Row({value.Get(0)}), Row({Value(int64_t{1})}));
    }
  };

  JobConf conf;
  conf.SetList(kConfInputTables, {"/words", "/other"});
  conf.SetList(StrCat(kConfInputProjection, ".0"), {"word"});
  conf.SetList(StrCat(kConfInputProjection, ".1"), {"id"});
  conf.input_format_factory = [] {
    return std::make_unique<MultiTableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<TagCountMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<SumCountsReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<int32_t, int64_t> counts;
  for (const Row& row : result->output_rows) {
    counts[row.Get(0).i32()] = row.Get(1).i64();
  }
  EXPECT_EQ(counts.at(0), 30);  // fact-side rows tagged 0
  EXPECT_EQ(counts.at(1), 10);  // dim-side rows tagged 1
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
