#include <gtest/gtest.h>

#include "schema/row.h"
#include "schema/row_batch.h"
#include "schema/schema.h"
#include "schema/value.h"

namespace clydesdale {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value(int32_t{7}).i32(), 7);
  EXPECT_EQ(Value(int64_t{1} << 40).i64(), int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(Value(2.5).f64(), 2.5);
  EXPECT_EQ(Value("asia").str(), "asia");
}

TEST(ValueTest, NumericWidening) {
  EXPECT_EQ(Value(int32_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(int32_t{7}).AsDouble(), 7.0);
  EXPECT_EQ(Value(7.9).AsInt64(), 7);
}

TEST(ValueTest, CompareWithinAndAcrossNumericKinds) {
  EXPECT_LT(Value(int32_t{1}).Compare(Value(int32_t{2})), 0);
  EXPECT_EQ(Value(int32_t{5}).Compare(Value(int64_t{5})), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int32_t{2})), 0);
  EXPECT_LT(Value("ASIA").Compare(Value("EUROPE")), 0);
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int32_t{42}).Hash(), Value(int32_t{42}).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int32_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, EncodedSize) {
  EXPECT_EQ(Value(int32_t{1}).EncodedSize(), 4u);
  EXPECT_EQ(Value(int64_t{1}).EncodedSize(), 8u);
  EXPECT_EQ(Value(1.0).EncodedSize(), 8u);
  EXPECT_EQ(Value("abcd").EncodedSize(), 6u);
}

TEST(SchemaTest, LookupByName) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 0},
                              {"b", TypeKind::kString, 0},
                              {"c", TypeKind::kInt64, 0}});
  EXPECT_EQ(schema->num_fields(), 3);
  EXPECT_EQ(schema->IndexOf("b"), 1);
  EXPECT_EQ(schema->IndexOf("missing"), -1);
  ASSERT_TRUE(schema->Require("c").ok());
  EXPECT_EQ(*schema->Require("c"), 2);
  EXPECT_FALSE(schema->Require("zzz").ok());
}

TEST(SchemaTest, DefaultWidths) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 0},
                              {"b", TypeKind::kString, 15},
                              {"c", TypeKind::kDouble, 0}});
  EXPECT_DOUBLE_EQ(schema->field(0).avg_width, 4);
  EXPECT_DOUBLE_EQ(schema->field(1).avg_width, 15);
  EXPECT_DOUBLE_EQ(schema->field(2).avg_width, 8);
  EXPECT_DOUBLE_EQ(schema->AvgRowWidth(), 27);
}

TEST(SchemaTest, Project) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 0},
                              {"b", TypeKind::kString, 0},
                              {"c", TypeKind::kInt64, 0}});
  auto projected = schema->Project({2, 0});
  EXPECT_EQ(projected->num_fields(), 2);
  EXPECT_EQ(projected->field(0).name, "c");
  EXPECT_EQ(projected->field(1).name, "a");
}

TEST(RowTest, ProjectAndExtend) {
  Row row({Value(int32_t{1}), Value("x"), Value(int32_t{3})});
  Row p = row.Project({2, 0});
  EXPECT_EQ(p.size(), 2);
  EXPECT_EQ(p.Get(0).i32(), 3);
  p.Extend(Row({Value("y")}));
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.Get(2).str(), "y");
}

TEST(RowTest, CompareLexicographic) {
  Row a({Value(int32_t{1}), Value("b")});
  Row b({Value(int32_t{1}), Value("c")});
  Row c({Value(int32_t{1})});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_LT(c.Compare(a), 0);  // shorter sorts first on tie
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(RowTest, HashMatchesEquality) {
  Row a({Value(int32_t{1}), Value("b")});
  Row b({Value(int32_t{1}), Value("b")});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
}

TEST(RowTest, ToStringPipeSeparated) {
  Row row({Value(int32_t{1}), Value("x")});
  EXPECT_EQ(row.ToString(), "1|x");
}

TEST(RowBatchTest, AppendAndGetRow) {
  auto schema = Schema::Make({{"k", TypeKind::kInt32, 0},
                              {"s", TypeKind::kString, 0}});
  RowBatch batch(schema);
  batch.AppendRow(Row({Value(int32_t{1}), Value("a")}));
  batch.AppendRow(Row({Value(int32_t{2}), Value("b")}));
  EXPECT_EQ(batch.num_rows(), 2);
  EXPECT_EQ(batch.GetRow(1).Get(1).str(), "b");
  EXPECT_EQ(batch.column(0).i32()[0], 1);
}

TEST(RowBatchTest, SealRowCountDetectsRaggedColumns) {
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 0},
                              {"b", TypeKind::kInt32, 0}});
  RowBatch batch(schema);
  batch.mutable_column(0)->AppendInt32(1);
  batch.mutable_column(0)->AppendInt32(2);
  batch.mutable_column(1)->AppendInt32(1);
  EXPECT_FALSE(batch.SealRowCount().ok());
  batch.mutable_column(1)->AppendInt32(2);
  ASSERT_TRUE(batch.SealRowCount().ok());
  EXPECT_EQ(batch.num_rows(), 2);
}

TEST(RowBatchTest, KeyAtWidensIntegers) {
  auto schema = Schema::Make({{"k32", TypeKind::kInt32, 0},
                              {"k64", TypeKind::kInt64, 0}});
  RowBatch batch(schema);
  batch.AppendRow(Row({Value(int32_t{7}), Value(int64_t{1} << 40)}));
  EXPECT_EQ(batch.column(0).KeyAt(0), 7);
  EXPECT_EQ(batch.column(1).KeyAt(0), int64_t{1} << 40);
}

}  // namespace
}  // namespace clydesdale
