#include <gtest/gtest.h>

#include <algorithm>

#include "core/aggregation.h"
#include "core/clydesdale.h"
#include "core/staged_join.h"
#include "hive/hive_engine.h"
#include "sql/parser.h"
#include "ssb/reference_executor.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace core {
namespace {

// --- AggLayout unit tests -----------------------------------------------------

TEST(AggLayoutTest, SumOnlyLayout) {
  const AggLayout layout =
      AggLayout::For({{"a", Expr::Col("x"), AggKind::kSum}});
  EXPECT_EQ(layout.num_accumulators(), 1);
  EXPECT_EQ(layout.accs()[0], AccKind::kSum);
  EXPECT_EQ(layout.expr_index()[0], 0);
  EXPECT_EQ(layout.AccumulatorNames(), (std::vector<std::string>{"a"}));
}

TEST(AggLayoutTest, AvgDecomposesIntoSumAndCount) {
  const AggLayout layout =
      AggLayout::For({{"m", Expr::Col("x"), AggKind::kAvg},
                      {"n", nullptr, AggKind::kCount}});
  EXPECT_EQ(layout.num_accumulators(), 3);
  EXPECT_EQ(layout.accs()[0], AccKind::kSum);
  EXPECT_EQ(layout.accs()[1], AccKind::kCount);
  EXPECT_EQ(layout.accs()[2], AccKind::kCount);
  EXPECT_EQ(layout.expr_index()[1], -1);
  EXPECT_EQ(layout.AccumulatorNames(),
            (std::vector<std::string>{"m_sum", "m_count", "n"}));
}

TEST(AggLayoutTest, MergeOpsAreCorrect) {
  const AggLayout layout =
      AggLayout::For({{"s", Expr::Col("x"), AggKind::kSum},
                      {"lo", Expr::Col("x"), AggKind::kMin},
                      {"hi", Expr::Col("x"), AggKind::kMax},
                      {"n", nullptr, AggKind::kCount}});
  int64_t acc[4] = {AggLayout::InitValue(AccKind::kSum),
                    AggLayout::InitValue(AccKind::kMin),
                    AggLayout::InitValue(AccKind::kMax),
                    AggLayout::InitValue(AccKind::kCount)};
  const int64_t in1[4] = {5, 5, 5, 1};
  const int64_t in2[4] = {3, 3, 3, 1};
  layout.Merge(acc, in1);
  layout.Merge(acc, in2);
  EXPECT_EQ(acc[0], 8);
  EXPECT_EQ(acc[1], 3);
  EXPECT_EQ(acc[2], 5);
  EXPECT_EQ(acc[3], 2);
}

TEST(AggLayoutTest, MergeIsAssociative) {
  // Partial merges (map-side + combiner + reducer) must equal a single
  // pass: merge(merge(a,b),c) == merge(a, merge(b,c)) for all ops.
  const AggLayout layout =
      AggLayout::For({{"s", Expr::Col("x"), AggKind::kSum},
                      {"lo", Expr::Col("x"), AggKind::kMin},
                      {"hi", Expr::Col("x"), AggKind::kMax}});
  auto fresh = [&] {
    return std::vector<int64_t>{AggLayout::InitValue(AccKind::kSum),
                                AggLayout::InitValue(AccKind::kMin),
                                AggLayout::InitValue(AccKind::kMax)};
  };
  const int64_t inputs[3][3] = {{4, 4, 4}, {-7, -7, -7}, {2, 2, 2}};
  auto left = fresh();
  for (const auto& in : inputs) layout.Merge(left.data(), in);

  auto right_tail = fresh();
  layout.Merge(right_tail.data(), inputs[1]);
  layout.Merge(right_tail.data(), inputs[2]);
  auto right = fresh();
  layout.Merge(right.data(), inputs[0]);
  layout.Merge(right.data(), right_tail.data());
  EXPECT_EQ(left, right);
}

TEST(AggLayoutTest, FinalizeComputesAverage) {
  const AggLayout layout =
      AggLayout::For({{"m", Expr::Col("x"), AggKind::kAvg}});
  // group col "g" + (sum=10, count=4).
  const Row row({Value("g"), Value(int64_t{10}), Value(int64_t{4})});
  const Row out = layout.Finalize(row, 1);
  ASSERT_EQ(out.size(), 2);
  EXPECT_EQ(out.Get(0).str(), "g");
  EXPECT_DOUBLE_EQ(out.Get(1).f64(), 2.5);
}

// --- HashAggregator unit tests ------------------------------------------------

/// Captures Emit output so tests can compare aggregator contents.
class VectorCollector final : public mr::OutputCollector {
 public:
  Status Collect(const Row& key, const Row& value) override {
    pairs_.emplace_back(key, value);
    return Status::OK();
  }
  /// Pairs in deterministic (key) order — emit order follows slot order,
  /// which differs between aggregators that saw inserts in different order.
  std::vector<std::pair<Row, Row>> Sorted() const {
    auto sorted = pairs_;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.first.Compare(b.first) < 0;
              });
    return sorted;
  }

 private:
  std::vector<std::pair<Row, Row>> pairs_;
};

AggLayout FourAccLayout() {
  return AggLayout::For({{"s", Expr::Col("x"), AggKind::kSum},
                         {"lo", Expr::Col("x"), AggKind::kMin},
                         {"hi", Expr::Col("x"), AggKind::kMax},
                         {"n", nullptr, AggKind::kCount}});
}

TEST(HashAggregatorTest, MergeFromMatchesSingleAggregator) {
  const AggLayout layout = FourAccLayout();
  HashAggregator single(layout);
  // HashAggregator owns a memory-tracker charge and is move-only.
  std::vector<HashAggregator> partials;
  for (int i = 0; i < 3; ++i) partials.emplace_back(layout);

  // Deterministic mixed-type keys (string city + int32 bucket); enough
  // distinct groups to force rehashing in every aggregator.
  uint64_t state = 42;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int i = 0; i < 500; ++i) {
    const Row key({Value(std::string("city") + std::to_string(next() % 37)),
                   Value(static_cast<int32_t>(next() % 11))});
    const int64_t x = static_cast<int64_t>(next() % 2000) - 1000;
    const int64_t inputs[4] = {x, x, x, 1};
    single.Add(key, inputs);
    partials[i % 3].Add(key, inputs);
  }

  HashAggregator merged(layout);
  for (const auto& partial : partials) merged.MergeFrom(partial);
  EXPECT_EQ(merged.num_groups(), single.num_groups());

  VectorCollector from_single, from_merged;
  ASSERT_TRUE(single.Emit(&from_single).ok());
  ASSERT_TRUE(merged.Emit(&from_merged).ok());
  const auto expected = from_single.Sorted();
  const auto actual = from_merged.Sorted();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].first.Compare(expected[i].first), 0) << "group " << i;
    EXPECT_EQ(actual[i].second.Compare(expected[i].second), 0)
        << "accumulators for group " << i;
  }
}

TEST(HashAggregatorTest, MergeFromEmptyIsANoOp) {
  const AggLayout layout = FourAccLayout();
  HashAggregator agg(layout);
  const int64_t inputs[4] = {5, 5, 5, 1};
  agg.Add(Row({Value("g")}), inputs);

  HashAggregator empty(layout);
  agg.MergeFrom(empty);        // empty -> populated: no change
  EXPECT_EQ(agg.num_groups(), 1u);

  HashAggregator target(layout);
  target.MergeFrom(agg);       // populated -> empty: full copy
  EXPECT_EQ(target.num_groups(), 1u);
  VectorCollector out;
  ASSERT_TRUE(target.Emit(&out).ok());
  const auto pairs = out.Sorted();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first.Get(0).str(), "g");
  EXPECT_EQ(pairs[0].second.Get(0).i64(), 5);
  EXPECT_EQ(pairs[0].second.Get(3).i64(), 1);
}

TEST(HashAggregatorTest, AddEncodedMatchesRowAdd) {
  const AggLayout layout = FourAccLayout();
  HashAggregator via_row(layout);
  HashAggregator via_encoded(layout);
  std::vector<uint8_t> key_bytes;
  for (int i = 0; i < 50; ++i) {
    const Row key({Value(static_cast<int32_t>(i % 7))});
    const int64_t inputs[4] = {i, i, i, 1};
    via_row.Add(key, inputs);
    key_bytes.clear();
    group_key::AppendRow(key, &key_bytes);
    via_encoded.AddEncoded(key_bytes.data(), key_bytes.size(), inputs);
  }
  EXPECT_EQ(via_encoded.num_groups(), via_row.num_groups());
  VectorCollector a, b;
  ASSERT_TRUE(via_row.Emit(&a).ok());
  ASSERT_TRUE(via_encoded.Emit(&b).ok());
  const auto ea = a.Sorted();
  const auto eb = b.Sorted();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first.Compare(eb[i].first), 0);
    EXPECT_EQ(ea[i].second.Compare(eb[i].second), 0);
  }
}

TEST(AggLayoutTest, MergeWeightedEqualsRepeatedMerge) {
  // The compressed-domain contract: adding a run of `w` identical rows in
  // one weighted step must equal merging the row w times — sums and counts
  // scale linearly, min/max ignore the weight.
  const AggLayout layout =
      AggLayout::For({{"s", Expr::Col("x"), AggKind::kSum},
                      {"lo", Expr::Col("x"), AggKind::kMin},
                      {"hi", Expr::Col("x"), AggKind::kMax},
                      {"n", nullptr, AggKind::kCount}});
  auto fresh = [&] {
    return std::vector<int64_t>{AggLayout::InitValue(AccKind::kSum),
                                AggLayout::InitValue(AccKind::kMin),
                                AggLayout::InitValue(AccKind::kMax),
                                AggLayout::InitValue(AccKind::kCount)};
  };
  const int64_t inputs[2][4] = {{-5, -5, -5, 1}, {9, 9, 9, 1}};
  for (const int64_t weight : {1, 2, 17}) {
    auto repeated = fresh();
    auto weighted = fresh();
    for (const auto& in : inputs) {
      for (int64_t w = 0; w < weight; ++w) layout.Merge(repeated.data(), in);
      layout.MergeWeighted(weighted.data(), in, weight);
    }
    EXPECT_EQ(weighted, repeated) << "weight=" << weight;
  }
}

TEST(HashAggregatorTest, AddEncodedWeightedMatchesRepeatedAdds) {
  const AggLayout layout = FourAccLayout();
  HashAggregator repeated(layout);
  HashAggregator weighted(layout);
  std::vector<uint8_t> key_bytes;
  // Runs of equal fact rows per group, interleaved so both tables see the
  // same groups in the same first-touch order.
  for (int run = 0; run < 20; ++run) {
    const Row key({Value(static_cast<int32_t>(run % 4))});
    const int64_t inputs[4] = {run, run, run, 1};
    const int64_t weight = 1 + run % 5;
    key_bytes.clear();
    group_key::AppendRow(key, &key_bytes);
    for (int64_t w = 0; w < weight; ++w) {
      repeated.AddEncoded(key_bytes.data(), key_bytes.size(), inputs);
    }
    weighted.AddEncodedWeighted(key_bytes.data(), key_bytes.size(), inputs,
                                weight);
  }
  EXPECT_EQ(weighted.num_groups(), repeated.num_groups());
  VectorCollector a, b;
  ASSERT_TRUE(repeated.Emit(&a).ok());
  ASSERT_TRUE(weighted.Emit(&b).ok());
  const auto ea = a.Sorted();
  const auto eb = b.Sorted();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first.Compare(eb[i].first), 0);
    EXPECT_EQ(ea[i].second.Compare(eb[i].second), 0);
  }
}

// --- end-to-end across every engine ---------------------------------------------

class MixedAggTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 3;
    copts.map_slots_per_node = 2;
    copts.dfs_block_size = 128 * 1024;
    cluster_ = new mr::MrCluster(copts);

    // A tiny hand-checkable star: fact(sale) with store dimension.
    core::DimTableInfo store;
    store.name = "store";
    store.pk = "st_id";
    store.local_path = "/dimcache/mini/store";
    store.desc.path = "/mini/store";
    store.desc.format = storage::kFormatBinaryRow;
    store.desc.schema = Schema::Make({{"st_id", TypeKind::kInt32, 4},
                                      {"st_city", TypeKind::kString, 6}});
    {
      auto writer = storage::OpenTableWriter(cluster_->dfs(), store.desc);
      CLY_CHECK(writer.ok());
      CLY_CHECK_OK((*writer)->Append(Row({Value(int32_t{1}), Value("east")})));
      CLY_CHECK_OK((*writer)->Append(Row({Value(int32_t{2}), Value("east")})));
      CLY_CHECK_OK((*writer)->Append(Row({Value(int32_t{3}), Value("west")})));
      CLY_CHECK_OK((*writer)->Close());
    }
    auto loaded_store = cluster_->GetTable(store.desc.path);
    CLY_CHECK(loaded_store.ok());
    store.desc = *loaded_store;
    CLY_CHECK_OK(core::ReplicateDimensionToAllNodes(cluster_, store));

    storage::TableDesc fact;
    fact.path = "/mini/sales";
    fact.format = storage::kFormatCif;
    fact.schema = Schema::Make({{"sa_store", TypeKind::kInt32, 4},
                                {"sa_amount", TypeKind::kInt32, 4}});
    fact.rows_per_split = 4;
    {
      auto writer = storage::OpenTableWriter(cluster_->dfs(), fact);
      CLY_CHECK(writer.ok());
      // east: store 1 -> 10, 20; store 2 -> 5. west: store 3 -> 7, 3.
      const int32_t rows[][2] = {{1, 10}, {1, 20}, {2, 5}, {3, 7}, {3, 3}};
      for (const auto& r : rows) {
        CLY_CHECK_OK((*writer)->Append(Row({Value(r[0]), Value(r[1])})));
      }
      CLY_CHECK_OK((*writer)->Close());
    }
    auto loaded_fact = cluster_->GetTable(fact.path);
    CLY_CHECK(loaded_fact.ok());
    star_ = new core::StarSchema(*loaded_fact, {store});
  }
  static void TearDownTestSuite() {
    delete star_;
    delete cluster_;
  }

  static StarQuerySpec MixedQuery() {
    StarQuerySpec spec;
    spec.id = "mixed";
    spec.dims = {{"store", "sa_store", "st_id", Predicate::True(),
                  {"st_city"}}};
    spec.aggregates = {
        {"total", Expr::Col("sa_amount"), AggKind::kSum},
        {"n", nullptr, AggKind::kCount},
        {"smallest", Expr::Col("sa_amount"), AggKind::kMin},
        {"largest", Expr::Col("sa_amount"), AggKind::kMax},
        {"mean", Expr::Col("sa_amount"), AggKind::kAvg},
    };
    spec.group_by = {"st_city"};
    spec.order_by = {{"st_city", true}};
    return spec;
  }

  static void CheckRows(const std::vector<Row>& rows, const char* label) {
    // east: total 35, n 3, min 5, max 20, avg 35/3. west: 10, 2, 3, 7, 5.0.
    ASSERT_EQ(rows.size(), 2u) << label;
    EXPECT_EQ(rows[0].Get(0).str(), "east") << label;
    EXPECT_EQ(rows[0].Get(1).i64(), 35) << label;
    EXPECT_EQ(rows[0].Get(2).i64(), 3) << label;
    EXPECT_EQ(rows[0].Get(3).i64(), 5) << label;
    EXPECT_EQ(rows[0].Get(4).i64(), 20) << label;
    EXPECT_DOUBLE_EQ(rows[0].Get(5).f64(), 35.0 / 3.0) << label;
    EXPECT_EQ(rows[1].Get(0).str(), "west") << label;
    EXPECT_EQ(rows[1].Get(1).i64(), 10) << label;
    EXPECT_EQ(rows[1].Get(2).i64(), 2) << label;
    EXPECT_EQ(rows[1].Get(3).i64(), 3) << label;
    EXPECT_EQ(rows[1].Get(4).i64(), 7) << label;
    EXPECT_DOUBLE_EQ(rows[1].Get(5).f64(), 5.0) << label;
  }

  static mr::MrCluster* cluster_;
  static core::StarSchema* star_;
};

mr::MrCluster* MixedAggTest::cluster_ = nullptr;
core::StarSchema* MixedAggTest::star_ = nullptr;

TEST_F(MixedAggTest, ReferenceExecutor) {
  auto rows = ssb::ExecuteReference(cluster_, *star_, MixedQuery());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  CheckRows(*rows, "reference");
}

TEST_F(MixedAggTest, ClydesdaleAllModes) {
  for (int mode = 0; mode < 3; ++mode) {
    ClydesdaleOptions options;
    if (mode == 1) options.multithreaded = false;
    if (mode == 2) options.map_side_agg = false;  // per-row emit + combiner
    ClydesdaleEngine engine(cluster_, *star_, options);
    auto result = engine.Execute(MixedQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckRows(result->rows, "clydesdale");
  }
}

TEST_F(MixedAggTest, HiveBothStrategies) {
  for (auto strategy :
       {hive::JoinStrategy::kRepartition, hive::JoinStrategy::kMapJoin}) {
    hive::HiveOptions options;
    options.strategy = strategy;
    hive::HiveEngine engine(cluster_, *star_, options);
    auto result = engine.Execute(MixedQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckRows(result->rows, hive::JoinStrategyName(strategy));
  }
}

TEST_F(MixedAggTest, StagedJoin) {
  auto star = std::make_shared<const core::StarSchema>(*star_);
  // Budget of 1 forces the repartition path + final aggregation stage.
  auto result =
      ExecuteStagedStarJoin(cluster_, star, MixedQuery(), {}, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckRows(result->rows, "staged");
}

TEST_F(MixedAggTest, SqlFrontEnd) {
  auto spec = sql::ParseStarQuery(
      "SELECT st_city, SUM(sa_amount) AS total, COUNT(*) AS n, "
      "MIN(sa_amount) AS smallest, MAX(sa_amount) AS largest, "
      "AVG(sa_amount) AS mean "
      "FROM sales, store WHERE sa_store = st_id "
      "GROUP BY st_city ORDER BY st_city",
      *star_);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->aggregates.size(), 5u);
  EXPECT_EQ(spec->aggregates[1].kind, AggKind::kCount);
  EXPECT_EQ(spec->aggregates[4].kind, AggKind::kAvg);

  ClydesdaleEngine engine(cluster_, *star_, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckRows(result->rows, "sql");
}

TEST_F(MixedAggTest, OrderByAverage) {
  // ORDER BY a finalized double column.
  auto spec = sql::ParseStarQuery(
      "SELECT st_city, AVG(sa_amount) AS mean FROM sales, store "
      "WHERE sa_store = st_id GROUP BY st_city ORDER BY mean DESC",
      *star_);
  ASSERT_TRUE(spec.ok());
  ClydesdaleEngine engine(cluster_, *star_, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].Get(0).str(), "east");  // 11.67 > 5.0
}

}  // namespace
}  // namespace core
}  // namespace clydesdale
