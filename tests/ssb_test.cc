#include <gtest/gtest.h>

#include <set>

#include "ssb/dbgen.h"
#include "ssb/loader.h"
#include "storage/stats_catalog.h"
#include "ssb/queries.h"
#include "ssb/ssb_schema.h"

namespace clydesdale {
namespace ssb {
namespace {

TEST(SsbSchemaTest, TableShapes) {
  EXPECT_EQ(LineorderSchema()->num_fields(), 17);
  EXPECT_EQ(CustomerSchema()->num_fields(), 8);
  EXPECT_EQ(SupplierSchema()->num_fields(), 7);
  EXPECT_EQ(PartSchema()->num_fields(), 9);
  EXPECT_EQ(DateSchema()->num_fields(), 17);
}

TEST(SsbSchemaTest, CardinalitiesScale) {
  const auto sf1 = CardinalitiesFor(1.0);
  EXPECT_EQ(sf1.orders, 1'500'000u);
  EXPECT_EQ(sf1.customers, 30'000u);
  EXPECT_EQ(sf1.suppliers, 2'000u);
  EXPECT_EQ(sf1.parts, 200'000u);
  EXPECT_EQ(sf1.dates, 2557u);
  // SSB's log2 growth for parts at high SF.
  EXPECT_EQ(CardinalitiesFor(1000.0).parts, 2'000'000u);
  // Dates never scale.
  EXPECT_EQ(CardinalitiesFor(0.01).dates, 2'557u);
}

TEST(SsbSchemaTest, NationRegionVocabulary) {
  std::set<std::string> regions;
  for (int n = 0; n < kNumNations; ++n) {
    regions.insert(RegionOfNation(n));
  }
  EXPECT_EQ(regions.size(), 5u);
  EXPECT_EQ(CityName(23, 1), "UNITED KI1");  // UNITED KINGDOM, city 1
  EXPECT_EQ(CityName(23, 5), "UNITED KI5");
  EXPECT_EQ(CityName(24, 0), "UNITED ST0");  // UNITED STATES
}

TEST(DbgenTest, DeterministicAcrossInstances) {
  SsbGenerator a(0.01), b(0.01);
  EXPECT_EQ(a.CustomerRow(17), b.CustomerRow(17));
  EXPECT_EQ(a.PartRow(5), b.PartRow(5));
  auto sa = a.Lineorders();
  auto sb = b.Lineorders();
  Row ra, rb;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(sa.Next(&ra));
    ASSERT_TRUE(sb.Next(&rb));
    ASSERT_EQ(ra, rb) << "row " << i;
  }
}

TEST(DbgenTest, SeedChangesData) {
  SsbGenerator a(0.01, 1), b(0.01, 2);
  EXPECT_NE(a.CustomerRow(17), b.CustomerRow(17));
}

TEST(DbgenTest, RowsMatchSchemas) {
  SsbGenerator gen(0.01);
  EXPECT_EQ(gen.CustomerRow(1).size(), CustomerSchema()->num_fields());
  EXPECT_EQ(gen.SupplierRow(1).size(), SupplierSchema()->num_fields());
  EXPECT_EQ(gen.PartRow(1).size(), PartSchema()->num_fields());
  EXPECT_EQ(gen.DateRow(0).size(), DateSchema()->num_fields());
  auto stream = gen.Lineorders();
  Row row;
  ASSERT_TRUE(stream.Next(&row));
  EXPECT_EQ(row.size(), LineorderSchema()->num_fields());
}

TEST(DbgenTest, CalendarIsCorrect) {
  SsbGenerator gen(0.01);
  EXPECT_EQ(gen.num_dates(), 2557);
  EXPECT_EQ(gen.DateKeyForIndex(0), 19920101);
  EXPECT_EQ(gen.DateKeyForIndex(2556), 19981231);
  // 1992 is a leap year: Feb 29 exists.
  EXPECT_EQ(gen.DateKeyForIndex(31 + 28), 19920229);

  const auto schema = DateSchema();
  const Row jan1 = gen.DateRow(0);
  EXPECT_EQ(jan1.Get(schema->IndexOf("d_year")).i32(), 1992);
  EXPECT_EQ(jan1.Get(schema->IndexOf("d_yearmonthnum")).i32(), 199201);
  EXPECT_EQ(jan1.Get(schema->IndexOf("d_yearmonth")).str(), "Jan1992");
  EXPECT_EQ(jan1.Get(schema->IndexOf("d_dayofweek")).str(), "Wednesday");
  EXPECT_EQ(jan1.Get(schema->IndexOf("d_weeknuminyear")).i32(), 1);
}

TEST(DbgenTest, LineorderValueRanges) {
  SsbGenerator gen(0.02);
  const auto schema = LineorderSchema();
  const int quantity = schema->IndexOf("lo_quantity");
  const int discount = schema->IndexOf("lo_discount");
  const int orderdate = schema->IndexOf("lo_orderdate");
  const int custkey = schema->IndexOf("lo_custkey");
  const int suppkey = schema->IndexOf("lo_suppkey");
  const int partkey = schema->IndexOf("lo_partkey");
  const int revenue = schema->IndexOf("lo_revenue");
  const int extended = schema->IndexOf("lo_extendedprice");
  const auto cards = gen.cardinalities();

  auto stream = gen.Lineorders();
  Row row;
  uint64_t rows = 0;
  while (stream.Next(&row)) {
    ++rows;
    EXPECT_GE(row.Get(quantity).i32(), 1);
    EXPECT_LE(row.Get(quantity).i32(), 50);
    EXPECT_GE(row.Get(discount).i32(), 0);
    EXPECT_LE(row.Get(discount).i32(), 10);
    EXPECT_GE(row.Get(orderdate).i32(), 19920101);
    EXPECT_LE(row.Get(orderdate).i32(), 19980802);
    EXPECT_GE(row.Get(custkey).i32(), 1);
    EXPECT_LE(row.Get(custkey).i32(), static_cast<int32_t>(cards.customers));
    EXPECT_GE(row.Get(suppkey).i32(), 1);
    EXPECT_LE(row.Get(suppkey).i32(), static_cast<int32_t>(cards.suppliers));
    EXPECT_GE(row.Get(partkey).i32(), 1);
    EXPECT_LE(row.Get(partkey).i32(), static_cast<int32_t>(cards.parts));
    EXPECT_LE(row.Get(revenue).i32(), row.Get(extended).i32());
  }
  // 1..7 lines per order, mean 4.
  EXPECT_GT(rows, cards.orders * 3);
  EXPECT_LT(rows, cards.orders * 5);
}

TEST(DbgenTest, LinesShareOrderAttributes) {
  SsbGenerator gen(0.01);
  const auto schema = LineorderSchema();
  const int orderkey = schema->IndexOf("lo_orderkey");
  const int custkey = schema->IndexOf("lo_custkey");
  const int orderdate = schema->IndexOf("lo_orderdate");
  const int linenumber = schema->IndexOf("lo_linenumber");

  auto stream = gen.Lineorders();
  Row row;
  int32_t prev_order = -1, prev_cust = 0, prev_date = 0, prev_line = 0;
  for (int i = 0; i < 2000 && stream.Next(&row); ++i) {
    if (row.Get(orderkey).i32() == prev_order) {
      EXPECT_EQ(row.Get(custkey).i32(), prev_cust);
      EXPECT_EQ(row.Get(orderdate).i32(), prev_date);
      EXPECT_EQ(row.Get(linenumber).i32(), prev_line + 1);
    } else {
      EXPECT_EQ(row.Get(linenumber).i32(), 1);
    }
    prev_order = row.Get(orderkey).i32();
    prev_cust = row.Get(custkey).i32();
    prev_date = row.Get(orderdate).i32();
    prev_line = row.Get(linenumber).i32();
  }
}

TEST(DbgenTest, RangeGenerationMatchesFullStream) {
  SsbGenerator gen(0.01);
  // Generate orders [1, N] in one stream vs two ranges; rows must agree.
  std::vector<Row> full;
  {
    auto stream = gen.Lineorders();
    Row row;
    while (stream.Next(&row)) full.push_back(row);
  }
  std::vector<Row> split;
  const uint64_t mid = gen.cardinalities().orders / 2;
  for (auto range : {gen.LineorderRange(1, mid),
                     gen.LineorderRange(mid + 1, gen.cardinalities().orders)}) {
    Row row;
    while (range.Next(&row)) split.push_back(row);
  }
  ASSERT_EQ(full.size(), split.size());
  for (size_t i = 0; i < full.size(); ++i) EXPECT_EQ(full[i], split[i]);
}

TEST(DbgenTest, DimensionValueDistributions) {
  SsbGenerator gen(0.1);
  const auto cschema = CustomerSchema();
  const int region = cschema->IndexOf("c_region");
  int asia = 0;
  const int n = 3000;
  for (int i = 1; i <= n; ++i) {
    if (gen.CustomerRow(i).Get(region).str() == "ASIA") ++asia;
  }
  // Nations are uniform over 25 with 5 per region: expect ~1/5.
  EXPECT_NEAR(static_cast<double>(asia) / n, 0.2, 0.04);

  const auto pschema = PartSchema();
  const int category = pschema->IndexOf("p_category");
  std::set<std::string> categories;
  for (int i = 1; i <= 2000; ++i) {
    categories.insert(gen.PartRow(i).Get(category).str());
  }
  EXPECT_EQ(categories.size(), 25u);  // MFGR#11 .. MFGR#55
}

TEST(QueriesTest, CatalogueHasThirteen) {
  const auto queries = AllQueries();
  ASSERT_EQ(queries.size(), 13u);
  std::set<std::string> ids;
  for (const auto& q : queries) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 13u);
  EXPECT_TRUE(ids.count("Q1.1"));
  EXPECT_TRUE(ids.count("Q3.4"));
  EXPECT_TRUE(ids.count("Q4.3"));
}

TEST(QueriesTest, FlightShapesMatchThePaper) {
  // Flight 1: Date only; flight 2: Date+Part+Supplier; flight 3:
  // Customer+Supplier+Date; flight 4: all four dimensions (paper §6.2).
  for (const auto& q : AllQueries()) {
    switch (FlightOf(q.id)) {
      case 1:
        EXPECT_EQ(q.dims.size(), 1u) << q.id;
        EXPECT_FALSE(q.fact_predicate->IsTrue()) << q.id;
        EXPECT_TRUE(q.group_by.empty()) << q.id;
        break;
      case 2:
        EXPECT_EQ(q.dims.size(), 3u) << q.id;
        break;
      case 3:
        EXPECT_EQ(q.dims.size(), 3u) << q.id;
        break;
      case 4:
        EXPECT_EQ(q.dims.size(), 4u) << q.id;
        break;
      default:
        FAIL() << "unknown flight for " << q.id;
    }
  }
}

TEST(QueriesTest, FactColumnsAreMinimal) {
  auto q21 = QueryById("Q2.1");
  ASSERT_TRUE(q21.ok());
  const auto cols = core::FactColumnsFor(*q21);
  EXPECT_EQ(cols, (std::vector<std::string>{"lo_orderdate", "lo_partkey",
                                            "lo_suppkey", "lo_revenue"}));
  auto q11 = QueryById("Q1.1");
  ASSERT_TRUE(q11.ok());
  const auto cols11 = core::FactColumnsFor(*q11);
  EXPECT_EQ(cols11.size(), 4u);  // orderdate, discount, quantity, extendedprice
}

TEST(QueriesTest, LookupFailsForUnknownId) {
  EXPECT_TRUE(QueryById("Q9.9").status().IsNotFound());
}

TEST(LoaderTest, LoadsAllTablesAndReplicas) {
  mr::ClusterOptions copts;
  copts.num_nodes = 3;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  SsbLoadOptions options;
  options.scale_factor = 0.002;
  options.with_rcfile = true;
  options.with_text = true;
  auto dataset = LoadSsb(&cluster, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  EXPECT_GT(dataset->lineorder_rows, 0u);
  EXPECT_EQ(dataset->star.fact().format, storage::kFormatCif);
  EXPECT_EQ(dataset->fact_rcfile.format, storage::kFormatRcFile);
  EXPECT_EQ(dataset->star.dims().size(), 4u);

  // Every node holds a local replica of every dimension.
  for (const auto& [name, dim] : dataset->star.dims()) {
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      EXPECT_TRUE(cluster.local_store(n)->Exists(dim.local_path))
          << name << " on node " << n;
    }
  }

  // Row counts agree across the CIF and RCFile fact copies.
  auto cif = cluster.GetTable(dataset->star.fact().path);
  auto rc = cluster.GetTable(dataset->fact_rcfile.path);
  ASSERT_TRUE(cif.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(cif->num_rows, dataset->lineorder_rows);
  EXPECT_EQ(rc->num_rows, dataset->lineorder_rows);

  // The binary CIF copy is smaller than the text copy (paper: 334 GB vs
  // 600 GB at SF1000).
  uint64_t cif_bytes = 0, text_bytes = 0;
  for (const std::string& path :
       cluster.dfs()->List(dataset->star.fact().path + "/")) {
    auto info = cluster.dfs()->Stat(path);
    ASSERT_TRUE(info.ok());
    cif_bytes += info->length;
  }
  {
    auto info = cluster.dfs()->Stat(dataset->fact_text.path + "/data.txt");
    ASSERT_TRUE(info.ok());
    text_bytes = info->length;
  }
  EXPECT_LT(cif_bytes, text_bytes);
}

TEST(LoaderTest, AnalyzeOptionPersistsCatalogStats) {
  mr::ClusterOptions copts;
  copts.num_nodes = 2;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  SsbLoadOptions options;
  options.scale_factor = 0.002;
  options.with_rcfile = false;
  options.analyze = true;
  auto dataset = LoadSsb(&cluster, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  // A catalog constructed later (fresh process state) sees the persisted
  // entries for the fact and every dimension.
  storage::StatsCatalog catalog(cluster.dfs(), options.stats_root);
  auto fact_stats = catalog.Load(dataset->star.fact());
  ASSERT_TRUE(fact_stats.ok()) << fact_stats.status().ToString();
  EXPECT_EQ(fact_stats->num_rows, dataset->lineorder_rows);

  // lo_orderkey repeats per line within an order; ANALYZE's NDV should land
  // within the sketch's 2% acceptance bound of the true order count.
  const storage::ColumnStats* orderkey = fact_stats->Column("lo_orderkey");
  ASSERT_NE(orderkey, nullptr);
  EXPECT_EQ(orderkey->row_count, dataset->lineorder_rows);
  const double truth = static_cast<double>(dataset->cards.orders);
  EXPECT_NEAR(orderkey->ndv, truth, 0.02 * truth);

  for (const auto& [name, dim] : dataset->star.dims()) {
    EXPECT_TRUE(catalog.Has(dim.desc)) << name;
  }
}

}  // namespace
}  // namespace ssb
}  // namespace clydesdale
