// CIF v3 compressed-scan tests: per-block encoding selection end to end,
// predicate/key-filter pushdown evaluated in the compressed domain,
// compression accounting, run-metadata exposure, the async block prefetcher
// (byte-identical results; arena lifetime under the tsan preset), version
// cross-checks, and the corruption cases the v3 reader must reject with
// IoError (never undefined behaviour — the asan preset runs this suite).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hdfs/dfs.h"
#include "storage/cif.h"
#include "storage/column_codec.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace storage {
namespace {

// Column shapes chosen so every block encoding appears: "id" is sequential
// (bit-pack / FoR), "date" is a large base plus a small cyclic offset (FoR),
// "qty" has long runs (RLE), "price" is incompressible doubles (plain), and
// "mode" is low-cardinality strings in runs (dictionary + RLE of codes).
SchemaPtr FactSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"date", TypeKind::kInt64, 8},
                       {"qty", TypeKind::kInt32, 4},
                       {"price", TypeKind::kDouble, 8},
                       {"mode", TypeKind::kString, 6}});
}

Row MakeRow(int32_t i) {
  const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  return Row({Value(i), Value(int64_t{19920101} + i % 97),
              Value(static_cast<int32_t>((i / 64) % 5)), Value(i * 0.25),
              Value(modes[(i / 50) % 4])});
}

class CifV3Test : public ::testing::Test {
 protected:
  CifV3Test() : dfs_(MakeOptions()) {}

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 2;
    options.block_size = 64 * 1024;
    options.replication = 1;
    return options;
  }

  TableDesc WriteTable(const std::string& path, int n, int64_t rows_per_split,
                       int cif_version = 3) {
    TableDesc desc;
    desc.path = path;
    desc.format = kFormatCif;
    desc.schema = FactSchema();
    desc.rows_per_split = rows_per_split;
    desc.cif_version = cif_version;
    auto writer = OpenTableWriter(&dfs_, desc);
    CLY_CHECK(writer.ok());
    for (int i = 0; i < n; ++i) CLY_CHECK_OK((*writer)->Append(MakeRow(i)));
    CLY_CHECK_OK((*writer)->Close());
    auto loaded = LoadTableDesc(dfs_, path);
    CLY_CHECK(loaded.ok());
    return *loaded;
  }

  Result<std::vector<Row>> Scan(const TableDesc& desc, ScanOptions scan) {
    return ScanTableToVector(dfs_, desc, scan);
  }

  hdfs::MiniDfs dfs_;
};

std::shared_ptr<const ScanSpec> SpecWith(Predicate::Ptr leaf) {
  auto spec = std::make_shared<ScanSpec>();
  spec->conjuncts.push_back(std::move(leaf));
  return spec;
}

TEST_F(CifV3Test, NewTablesDefaultToV3AndRoundTrip) {
  const TableDesc desc = WriteTable("/v3", 1024, 256);
  EXPECT_EQ(desc.cif_version, 3);
  auto rows = Scan(desc, ScanOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1024u);
  for (size_t i = 0; i < rows->size(); ++i) {
    ASSERT_EQ((*rows)[i], MakeRow(static_cast<int32_t>(i)));
  }
}

TEST_F(CifV3Test, WriterPicksEveryEncodingAndCompresses) {
  const TableDesc desc = WriteTable("/enc", 1024, 256);
  ScanStats stats;
  ScanOptions scan;
  scan.scan_stats = &stats;
  ASSERT_TRUE(Scan(desc, scan).ok());

  // 4 splits x 5 columns: every loaded block is tagged exactly once, and
  // each column shape lands on its intended encoding family.
  uint64_t total = 0;
  for (int e = 0; e < 6; ++e) total += stats.blocks_by_encoding[e];
  EXPECT_EQ(total, 20u);
  EXPECT_GT(stats.blocks_by_encoding[kEncPlain], 0u);    // price
  EXPECT_GT(stats.blocks_by_encoding[kEncRle], 0u);      // qty
  EXPECT_GT(stats.blocks_by_encoding[kEncBitPack], 0u);  // id, first block
  EXPECT_GT(stats.blocks_by_encoding[kEncFor], 0u);      // date
  EXPECT_GT(stats.blocks_by_encoding[kEncDictRle], 0u);  // mode

  // The acceptance bar: low-cardinality columns compress the table well
  // past 1.5x even though the double column stays plain.
  ASSERT_GT(stats.bytes_encoded, 0u);
  EXPECT_GT(stats.bytes_raw, stats.bytes_encoded * 3 / 2)
      << "raw=" << stats.bytes_raw << " encoded=" << stats.bytes_encoded;
}

TEST_F(CifV3Test, PushdownOnEncodedBlocksMatchesEngineSideFilterExactly) {
  const TableDesc desc = WriteTable("/pushdown", 1024, 256);
  // One leaf per encoding family: bit-pack/FoR id, FoR date, RLE qty,
  // plain-double price, dict-RLE mode.
  const auto leaves = {
      Predicate::Between("id", Value(int32_t{100}), Value(int32_t{700})),
      Predicate::Gt("date", Value(int64_t{19920150})),
      Predicate::Eq("qty", Value(int32_t{3})),
      Predicate::Ne("qty", Value(int32_t{0})),
      Predicate::Le("price", Value(100.0)),
      Predicate::Eq("mode", Value("SHIP")),
      Predicate::Ne("mode", Value("AIR")),
      Predicate::In("id", {Value(int32_t{3}), Value(int32_t{511}),
                           Value(int32_t{1023})}),
  };
  auto all = Scan(desc, ScanOptions{});
  ASSERT_TRUE(all.ok());
  for (const Predicate::Ptr& leaf : leaves) {
    ScanOptions pushed;
    pushed.scan_spec = SpecWith(leaf);
    auto got = Scan(desc, pushed);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    auto bound = leaf->Bind(*desc.schema);
    ASSERT_TRUE(bound.ok());
    std::vector<Row> expected;
    for (const Row& row : *all) {
      if ((*bound)->Eval(row)) expected.push_back(row);
    }
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ((*got)[i], expected[i]);
    }
  }
}

TEST_F(CifV3Test, PackedZoneSkipsDisjointBlocks) {
  // Sequential ids in packed blocks: the synthetic [base, base+2^width-1]
  // zone derived from the packing parameters must refute blocks 2..4 even
  // before their explicit zone maps are consulted.
  const TableDesc desc = WriteTable("/zones", 1024, 256);
  ScanStats stats;
  ScanOptions scan;
  scan.scan_spec = SpecWith(Predicate::Le("id", Value(int32_t{50})));
  scan.scan_stats = &stats;
  auto rows = Scan(desc, scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 51u);
  EXPECT_EQ(stats.blocks_skipped, 3u);
  EXPECT_EQ(stats.rows_pruned, 1024u - 51u);
}

/// Set-membership filter standing in for a dimension hash table.
class SetKeyFilter final : public ScanKeyFilter {
 public:
  explicit SetKeyFilter(std::set<int64_t> keys) : keys_(std::move(keys)) {}
  bool Contains(int64_t key) const override { return keys_.count(key) > 0; }
  bool RangeMightMatch(int64_t lo, int64_t hi) const override {
    return !keys_.empty() && !(hi < *keys_.begin() || lo > *keys_.rbegin());
  }

 private:
  std::set<int64_t> keys_;
};

TEST_F(CifV3Test, KeyFiltersProbeCompressedBlocks) {
  const TableDesc desc = WriteTable("/keys", 1024, 256);
  // One filter on a packed column (per-code probing + packed-range zone
  // skip) and one on an RLE column (one probe per touched run).
  {
    auto spec = std::make_shared<ScanSpec>();
    spec->key_filters.push_back(
        {"id", std::make_shared<SetKeyFilter>(std::set<int64_t>{5, 60, 61})});
    ScanStats stats;
    ScanOptions scan;
    scan.scan_spec = spec;
    scan.scan_stats = &stats;
    auto rows = Scan(desc, scan);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 3u);
    EXPECT_EQ((*rows)[0], MakeRow(5));
    EXPECT_EQ((*rows)[1], MakeRow(60));
    EXPECT_EQ((*rows)[2], MakeRow(61));
    EXPECT_EQ(stats.blocks_skipped, 3u);
  }
  {
    auto spec = std::make_shared<ScanSpec>();
    spec->key_filters.push_back(
        {"qty", std::make_shared<SetKeyFilter>(std::set<int64_t>{2})});
    ScanOptions scan;
    scan.scan_spec = spec;
    auto rows = Scan(desc, scan);
    ASSERT_TRUE(rows.ok());
    // qty == 2 holds for i in [128,192) of every 320-row cycle.
    size_t expected = 0;
    for (int i = 0; i < 1024; ++i) expected += (i / 64) % 5 == 2;
    ASSERT_EQ(rows->size(), expected);
    for (const Row& row : *rows) {
      EXPECT_EQ(row.values()[2], Value(int32_t{2}));
    }
  }
}

TEST_F(CifV3Test, EveryKnobCombinationIsByteIdentical) {
  const TableDesc desc = WriteTable("/knobs", 1024, 256);
  ScanOptions base;
  base.scan_spec = SpecWith(
      Predicate::Between("id", Value(int32_t{30}), Value(int32_t{900})));
  auto reference = Scan(desc, base);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());

  for (const bool prefetch : {false, true}) {
    for (const bool expose_runs : {false, true}) {
      ScanOptions scan = base;
      scan.prefetch = prefetch;
      scan.expose_runs = expose_runs;
      auto rows = Scan(desc, scan);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      ASSERT_EQ(rows->size(), reference->size())
          << "prefetch=" << prefetch << " expose_runs=" << expose_runs;
      for (size_t i = 0; i < rows->size(); ++i) {
        ASSERT_EQ((*rows)[i], (*reference)[i]);
      }
    }
  }

  // Late vs eager (spec must be dropped for the comparison: the eager path
  // ignores it by contract).
  auto late = Scan(desc, ScanOptions{});
  ScanOptions eager;
  eager.late_materialize = false;
  auto eager_rows = Scan(desc, eager);
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(eager_rows.ok());
  ASSERT_EQ(late->size(), eager_rows->size());
  for (size_t i = 0; i < late->size(); ++i) {
    ASSERT_EQ((*late)[i], (*eager_rows)[i]);
  }
}

TEST_F(CifV3Test, ExposedRunsSurviveBatchSlicing) {
  const TableDesc desc = WriteTable("/runs", 512, 512);
  auto splits = ListTableSplits(dfs_, desc);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  ScanOptions scan;
  scan.projection = {"qty", "id"};
  scan.expose_runs = true;
  auto reader = OpenSplitBatchReader(dfs_, desc, (*splits)[0], scan);
  ASSERT_TRUE(reader.ok());
  RowBatch batch((*reader)->output_schema());
  int32_t next = 0;
  bool saw_runs = false;
  while (true) {
    auto more = (*reader)->NextBatch(&batch, 33);  // uneven slice boundaries
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    const ColumnVector& qty = batch.column(0);
    if (qty.has_runs()) {
      saw_runs = true;
      // The overlay must describe exactly the materialized values: run k
      // covers [starts[k], starts[k+1]) and all rows in it equal values[k].
      const auto& starts = qty.run_starts();
      const auto& values = qty.run_values();
      ASSERT_EQ(starts.front(), 0);
      ASSERT_EQ(starts.back(), qty.size());
      for (size_t k = 0; k + 1 < starts.size(); ++k) {
        ASSERT_LT(starts[k], starts[k + 1]);
        for (int32_t r = starts[k]; r < starts[k + 1]; ++r) {
          ASSERT_EQ(qty.i32()[static_cast<size_t>(r)], values[k]);
        }
      }
    }
    for (int64_t i = 0; i < batch.num_rows(); ++i, ++next) {
      ASSERT_EQ(qty.i32()[static_cast<size_t>(i)], (next / 64) % 5);
    }
  }
  EXPECT_EQ(next, 512);
  EXPECT_TRUE(saw_runs) << "RLE qty blocks should surface run metadata";
}

TEST_F(CifV3Test, PrefetchedArenasOutliveHandedOutStringViews) {
  // The prefetcher's worker thread fetches block k+1 while block k decodes;
  // the string views a batch hands out must stay valid for as long as the
  // consumer holds the batch's arena — exactly what an aggregator does with
  // group keys. Collect every view plus its pinning arena across the whole
  // scan, then read them all back after the reader (and its worker) is
  // gone. The tsan preset checks the handoff, asan the lifetime.
  const TableDesc desc = WriteTable("/arena", 1024, 128);
  std::vector<std::pair<std::shared_ptr<const std::vector<uint8_t>>,
                        std::vector<std::string_view>>>
      held;
  {
    auto splits = ListTableSplits(dfs_, desc);
    ASSERT_TRUE(splits.ok());
    ScanOptions scan;
    scan.projection = {"mode", "qty"};
    scan.prefetch = true;
    for (const StorageSplit& split : *splits) {
      auto reader = OpenSplitBatchReader(dfs_, desc, split, scan);
      ASSERT_TRUE(reader.ok()) << reader.status().ToString();
      RowBatch batch((*reader)->output_schema());
      while (true) {
        auto more = (*reader)->NextBatch(&batch, 57);
        ASSERT_TRUE(more.ok()) << more.status().ToString();
        if (!*more) break;
        const ColumnVector& mode = batch.column(0);
        ASSERT_TRUE(mode.is_string_view());
        ASSERT_NE(mode.string_arena(), nullptr);
        held.push_back({mode.string_arena(), mode.str_views()});
      }
    }
  }  // readers and their prefetch threads destroyed here
  int32_t i = 0;
  const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  for (const auto& [arena, views] : held) {
    for (std::string_view v : views) {
      ASSERT_EQ(v, modes[(i / 50) % 4]) << "row " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, 1024);
}

TEST_F(CifV3Test, PrefetchReportsIoStats) {
  const TableDesc desc = WriteTable("/iostats", 512, 128);
  hdfs::IoStats with, without;
  ScanOptions scan;
  scan.stats = &without;
  ASSERT_TRUE(Scan(desc, scan).ok());
  scan.stats = &with;
  scan.prefetch = true;
  ASSERT_TRUE(Scan(desc, scan).ok());
  // The worker's reads are merged back after join; both modes must account
  // the same bytes.
  EXPECT_EQ(with.TotalRead(), without.TotalRead());
}

TEST_F(CifV3Test, V2TablesStillWriteAndReadAsV2) {
  const TableDesc desc = WriteTable("/v2compat", 512, 256, /*cif_version=*/2);
  ASSERT_EQ(desc.cif_version, 2);
  ScanStats stats;
  ScanOptions scan;
  scan.scan_stats = &stats;
  auto rows = Scan(desc, scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 512u);
  // v2 blocks carry no encoding tags: everything loads as plain except
  // dictionary strings, which are classified from their sub-format byte so
  // compression accounting stays meaningful.
  EXPECT_EQ(stats.blocks_by_encoding[kEncRle], 0u);
  EXPECT_EQ(stats.blocks_by_encoding[kEncBitPack], 0u);
  EXPECT_EQ(stats.blocks_by_encoding[kEncFor], 0u);
  EXPECT_EQ(stats.blocks_by_encoding[kEncDictRle], 0u);
  EXPECT_GT(stats.blocks_by_encoding[kEncPlain], 0u);
  EXPECT_GT(stats.blocks_by_encoding[kEncDict], 0u);
}

// --- corruption --------------------------------------------------------------

/// Byte-level corruption of v3 blocks: one split, one DFS block per column
/// file, so rewriting a file preserves the reader's block math. The "date"
/// column encodes as FoR, "id" as bit-pack at this size.
class CifV3CorruptionTest : public CifV3Test {
 protected:
  TableDesc WriteSmall(const std::string& path) {
    return WriteTable(path, 64, 64);
  }

  std::string ColumnFile(const std::string& table, const std::string& col) {
    return table + "/" + col + ".col";
  }

  std::string ReadFile(const std::string& file) {
    auto bytes = dfs_.ReadFileToString(file);
    CLY_CHECK(bytes.ok());
    return *bytes;
  }

  void Rewrite(const std::string& file, std::string contents) {
    CLY_CHECK_OK(dfs_.Delete(file));
    CLY_CHECK_OK(dfs_.WriteFile(file, std::move(contents)));
  }

  /// Footer layout: [..][u32 zone_len][u32 "FOOT"]; the zone region starts
  /// with the v3 encoding-tag byte at size - 8 - zone_len.
  static size_t EncTagOffset(const std::string& block) {
    CLY_CHECK(block.size() >= 16);
    uint32_t zone_len = 0;
    std::memcpy(&zone_len, block.data() + block.size() - 8, sizeof(zone_len));
    CLY_CHECK(zone_len + 8 < block.size());
    return block.size() - 8 - zone_len;
  }

  /// Both decode paths must reject the table with IoError (asan verifies
  /// the rejection involves no out-of-bounds access).
  void ExpectIoErrorBothPaths(const TableDesc& desc) {
    for (const bool late : {true, false}) {
      ScanOptions scan;
      scan.late_materialize = late;
      auto rows = Scan(desc, scan);
      ASSERT_FALSE(rows.ok()) << "late_materialize=" << late;
      EXPECT_EQ(rows.status().code(), StatusCode::kIoError)
          << "late_materialize=" << late << ": " << rows.status().ToString();
    }
  }
};

TEST_F(CifV3CorruptionTest, UnknownEncodingTagIsRejected) {
  const TableDesc desc = WriteSmall("/badtag");
  const std::string file = ColumnFile("/badtag", "id");
  std::string block = ReadFile(file);
  block[EncTagOffset(block)] = static_cast<char>(0xC8);
  Rewrite(file, std::move(block));
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifV3CorruptionTest, IntegerTagOnStringColumnIsRejected) {
  const TableDesc desc = WriteSmall("/crosstag");
  const std::string file = ColumnFile("/crosstag", "mode");
  std::string block = ReadFile(file);
  block[EncTagOffset(block)] = static_cast<char>(kEncRle);
  Rewrite(file, std::move(block));
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifV3CorruptionTest, TruncatedPackedWordsAreRejected) {
  const TableDesc desc = WriteSmall("/truncwords");
  const std::string file = ColumnFile("/truncwords", "date");
  std::string block = ReadFile(file);
  // Drop the last packed word of the payload: header and footer stay
  // intact, but the word count no longer covers nrows at the tagged width.
  const size_t payload_end = EncTagOffset(block);
  ASSERT_GE(payload_end, 8u + 8u);
  block.erase(payload_end - 8, 8);
  Rewrite(file, std::move(block));
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifV3CorruptionTest, OutOfRangeForDeltasAreRejected) {
  const TableDesc desc = WriteSmall("/forbase");
  const std::string file = ColumnFile("/forbase", "date");
  std::string block = ReadFile(file);
  // The FoR payload leads with the i64 base at offset 8. Maxing it out
  // makes base + any delta overflow int64; the reader must refuse to
  // fabricate values rather than wrap around.
  ASSERT_GE(block.size(), 16u);
  for (size_t i = 8; i < 15; ++i) block[i] = static_cast<char>(0xFF);
  block[15] = 0x7F;
  Rewrite(file, std::move(block));
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifV3CorruptionTest, VersionCrossReadsAreRejected) {
  TableDesc v3 = WriteSmall("/v3file");
  v3.cif_version = 2;  // a stale v2 reader's view of a v3 file
  ExpectIoErrorBothPaths(v3);

  TableDesc v2 = WriteTable("/v2file", 64, 64, /*cif_version=*/2);
  v2.cif_version = 3;  // metadata claims v3, files are v2
  ExpectIoErrorBothPaths(v2);
}

}  // namespace
}  // namespace storage
}  // namespace clydesdale
