// Per-operator query-profiler tests: tree merge semantics (additive
// counters, wall maxima, children matched by name), the EXPLAIN ANALYZE
// text/JSON renderers, the flatten/rebuild round trip job history relies
// on, ScanStats folding, and end-to-end profiles of map-only CIF scan jobs
// at every on-disk version (v1/v2/v3) proving the scan counters survive the
// per-task -> job merge loss-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "obs/query_profile.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace obs {
namespace {

OperatorProfile Node(const char* name, const char* kind, uint64_t rows_in,
                     uint64_t rows_out) {
  OperatorProfile node;
  node.name = name;
  node.kind = kind;
  node.rows_in = rows_in;
  node.rows_out = rows_out;
  node.tasks = 1;
  return node;
}

TEST(OperatorProfileTest, SelectivityDefinition) {
  OperatorProfile node = Node("probe", "probe", 100, 25);
  EXPECT_DOUBLE_EQ(node.selectivity(), 0.25);
  OperatorProfile source = Node("scan", "scan", 0, 100);
  EXPECT_DOUBLE_EQ(source.selectivity(), -1.0) << "sources have no input";
}

TEST(OperatorProfileTest, MergeAddsCountersAndTracksWallMax) {
  OperatorProfile a = Node("scan", "scan", 0, 100);
  a.wall_ns = 50;
  a.wall_max_ns = 50;
  a.cpu_ns = 40;
  a.batches = 2;
  a.bytes_decoded = 1000;
  a.bytes_raw = 4000;
  a.blocks_skipped = 3;
  a.rows_pruned = 17;
  a.blocks_by_encoding[1] = 5;
  a.prefetch_hits = 7;
  a.prefetch_misses = 2;
  a.prefetch_wait_ns = 11;

  OperatorProfile b = Node("scan", "scan", 0, 200);
  b.wall_ns = 80;
  b.wall_max_ns = 80;
  b.cpu_ns = 60;
  b.batches = 3;
  b.bytes_decoded = 500;
  b.bytes_raw = 2000;
  b.blocks_skipped = 1;
  b.rows_pruned = 3;
  b.blocks_by_encoding[1] = 2;
  b.blocks_by_encoding[4] = 9;
  b.prefetch_hits = 1;
  b.prefetch_misses = 4;
  b.prefetch_wait_ns = 6;

  a.MergeFrom(b);
  EXPECT_EQ(a.rows_out, 300u);
  EXPECT_EQ(a.wall_ns, 130u) << "wall sums (total work)";
  EXPECT_EQ(a.wall_max_ns, 80u) << "wall max tracks slowest attempt";
  EXPECT_EQ(a.cpu_ns, 100u);
  EXPECT_EQ(a.batches, 5u);
  EXPECT_EQ(a.bytes_decoded, 1500u);
  EXPECT_EQ(a.bytes_raw, 6000u);
  EXPECT_EQ(a.blocks_skipped, 4u);
  EXPECT_EQ(a.rows_pruned, 20u);
  EXPECT_EQ(a.blocks_by_encoding[1], 7u);
  EXPECT_EQ(a.blocks_by_encoding[4], 9u);
  EXPECT_EQ(a.prefetch_hits, 8u);
  EXPECT_EQ(a.prefetch_misses, 6u);
  EXPECT_EQ(a.prefetch_wait_ns, 17u);
  EXPECT_EQ(a.tasks, 2u);
}

TEST(OperatorProfileTest, MergeMatchesChildrenByNameAndAppendsNew) {
  OperatorProfile a = Node("map", "task", 0, 10);
  a.children.push_back(Node("probe", "probe", 10, 4));

  OperatorProfile b = Node("map", "task", 0, 20);
  b.children.push_back(Node("probe", "probe", 20, 6));
  b.children.push_back(Node("combine", "aggregate", 6, 2));

  a.MergeFrom(b);
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0].name, "probe");
  EXPECT_EQ(a.children[0].rows_in, 30u);
  EXPECT_EQ(a.children[0].rows_out, 10u);
  EXPECT_EQ(a.children[1].name, "combine") << "unmatched child appended";
  EXPECT_EQ(a.children[1].rows_in, 6u);
}

TEST(QueryProfileTest, MergeAttemptCollapsesDuplicateChildrenAndWidensSpan) {
  QueryProfile profile;
  // A multi-split attempt can push two scan nodes with the same name; the
  // job merge must collapse them into one.
  OperatorProfile attempt = Node("map", "task", 0, 7);
  attempt.children.push_back(Node("scan:/t", "scan", 0, 3));
  attempt.children.push_back(Node("scan:/t", "scan", 0, 4));
  profile.MergeAttempt(attempt, /*start_us=*/100, /*end_us=*/200);

  OperatorProfile second = Node("map", "task", 0, 5);
  second.children.push_back(Node("scan:/t", "scan", 0, 5));
  profile.MergeAttempt(second, /*start_us=*/150, /*end_us=*/400);

  ASSERT_EQ(profile.roots.size(), 1u);
  ASSERT_EQ(profile.roots[0].children.size(), 1u);
  EXPECT_EQ(profile.roots[0].children[0].rows_out, 12u);
  EXPECT_EQ(profile.roots[0].tasks, 2u);
  EXPECT_EQ(profile.first_start_us, 100);
  EXPECT_EQ(profile.last_end_us, 400);
  EXPECT_DOUBLE_EQ(profile.ProfiledSpanSeconds(), 300e-6);
  EXPECT_EQ(NumProfileOperators(profile), 2u);
}

TEST(QueryProfileTest, FirstAttemptSetsEnvelopeEvenAtTimeZero) {
  QueryProfile profile;
  profile.MergeAttempt(Node("map", "task", 0, 1), /*start_us=*/0,
                       /*end_us=*/10);
  profile.MergeAttempt(Node("map", "task", 0, 1), /*start_us=*/5,
                       /*end_us=*/8);
  EXPECT_EQ(profile.first_start_us, 0);
  EXPECT_EQ(profile.last_end_us, 10);
}

QueryProfile SampleProfile() {
  QueryProfile profile;
  profile.wall_seconds = 0.5;
  OperatorProfile map = Node("map", "task", 0, 40);
  OperatorProfile agg = Node("aggregate", "aggregate", 120, 40);
  OperatorProfile probe = Node("probe", "probe", 1000, 120);
  OperatorProfile scan = Node("scan:/ssb/lineorder", "scan", 0, 1000);
  scan.bytes_decoded = 2048;
  scan.bytes_raw = 8192;
  scan.blocks_skipped = 2;
  scan.rows_pruned = 99;
  scan.blocks_by_encoding[0] = 1;
  scan.blocks_by_encoding[3] = 4;
  scan.prefetch_hits = 3;
  scan.prefetch_misses = 1;
  probe.children.push_back(std::move(scan));
  agg.children.push_back(std::move(probe));
  map.children.push_back(std::move(agg));
  profile.MergeAttempt(map, 10, 490'000);

  OperatorProfile reduce = Node("reduce", "task", 40, 4);
  reduce.children.push_back(Node("shuffle", "shuffle", 40, 40));
  profile.MergeAttempt(reduce, 200'000, 500'000);
  return profile;
}

TEST(ExplainAnalyzeTest, TextRendersTreeWithInvariants) {
  const QueryProfile profile = SampleProfile();
  const std::string text = ExplainAnalyzeText(profile);
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_NE(text.find("operators=6"), std::string::npos) << text;
  EXPECT_NE(text.find("scan:/ssb/lineorder"), std::string::npos) << text;
  EXPECT_NE(text.find("shuffle"), std::string::npos) << text;
  // The probe line carries its selectivity (120/1000).
  EXPECT_NE(text.find("0.12"), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, JsonIsBalancedAndMarksSourcesNullSelectivity) {
  const QueryProfile profile = SampleProfile();
  const std::string json = ExplainAnalyzeJson(profile);
  EXPECT_NE(json.find("\"selectivity\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"scan:/ssb/lineorder\""), std::string::npos);
  EXPECT_NE(json.find("\"prefetch_hits\":3"), std::string::npos) << json;
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(FlattenProfileTest, RebuildFromFlattenedPathsIsLossless) {
  const QueryProfile original = SampleProfile();
  const std::vector<FlatProfileNode> flat = FlattenProfile(original);
  ASSERT_EQ(flat.size(), NumProfileOperators(original));
  EXPECT_EQ(flat[0].path, "map");
  // Paths are '>'-joined root-to-node, pre-order.
  EXPECT_EQ(flat[1].path, "map>aggregate");
  EXPECT_EQ(flat[3].path, "map>aggregate>probe>scan:/ssb/lineorder");

  QueryProfile rebuilt;
  rebuilt.wall_seconds = original.wall_seconds;
  rebuilt.first_start_us = original.first_start_us;
  rebuilt.last_end_us = original.last_end_us;
  for (const FlatProfileNode& entry : flat) {
    OperatorProfile* node = EnsureProfilePath(&rebuilt, entry.path);
    ASSERT_NE(node, nullptr);
    const std::string name = node->name;  // path-derived; keep it
    *node = *entry.node;
    node->name = name;
    node->children.clear();  // children arrive via their own paths
  }
  EXPECT_EQ(ExplainAnalyzeJson(rebuilt), ExplainAnalyzeJson(original))
      << "flatten -> EnsureProfilePath round trip must be byte-lossless";
}

TEST(ThreadCpuNanosTest, AdvancesWithWork) {
  const int64_t before = ThreadCpuNanos();
  uint64_t sink = 0;
  volatile uint64_t i = 0;
  while (true) {
    const uint64_t v = i;  // volatile read defeats closed-form elimination
    if (v >= 2'000'000) break;
    sink += v * v;
    i = v + 1;
  }
  ASSERT_GT(sink, 0u);
  EXPECT_GT(ThreadCpuNanos(), before);
}

}  // namespace
}  // namespace obs

namespace storage {
namespace {

TEST(ScanStatsTest, MergeFromFoldsEveryCounter) {
  ScanStats a;
  a.rows_read = 100;
  a.blocks_skipped = 2;
  a.rows_pruned = 20;
  a.bytes_encoded = 30;
  a.bytes_raw = 120;
  a.blocks_by_encoding[2] = 4;
  a.prefetch_hits = 5;
  a.prefetch_misses = 6;
  a.prefetch_wait_ns = 7;

  ScanStats b = a;
  b.blocks_by_encoding[5] = 9;
  a.MergeFrom(b);

  EXPECT_EQ(a.rows_read, 200u);
  EXPECT_EQ(a.blocks_skipped, 4u);
  EXPECT_EQ(a.rows_pruned, 40u);
  EXPECT_EQ(a.bytes_encoded, 60u);
  EXPECT_EQ(a.bytes_raw, 240u);
  EXPECT_EQ(a.blocks_by_encoding[2], 8u);
  EXPECT_EQ(a.blocks_by_encoding[5], 9u);
  EXPECT_EQ(a.prefetch_hits, 10u);
  EXPECT_EQ(a.prefetch_misses, 12u);
  EXPECT_EQ(a.prefetch_wait_ns, 14u);
}

}  // namespace
}  // namespace storage

namespace mr {
namespace {

ClusterOptions ScanCluster() {
  ClusterOptions options;
  options.num_nodes = 2;
  options.map_slots_per_node = 2;
  return options;
}

SchemaPtr ScanSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"qty", TypeKind::kInt32, 4},
                       {"mode", TypeKind::kString, 6}});
}

storage::TableDesc WriteCifTable(MrCluster* cluster, const std::string& path,
                                 int rows, int cif_version) {
  storage::TableDesc desc;
  desc.path = path;
  desc.format = storage::kFormatCif;
  desc.schema = ScanSchema();
  desc.rows_per_split = 256;
  desc.cif_version = cif_version;
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  const char* modes[] = {"AIR", "RAIL", "SHIP"};
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(Row({Value(i), Value((i / 64) % 5),
                                        Value(modes[(i / 50) % 3])})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

class CountRowsMapper final : public Mapper {
 public:
  Status Map(const Row&, const Row&, TaskContext*, OutputCollector*) override {
    return Status::OK();
  }
};

/// Map-only scan of `table` with profiling on; returns the merged profile.
obs::QueryProfile ProfiledScan(MrCluster* cluster, const std::string& table) {
  JobConf conf;
  conf.job_name = "profiled-scan";
  conf.num_reduce_tasks = 0;
  conf.Set(kConfInputTable, table);
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<CountRowsMapper>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  conf.SetBool(kConfProfileEnabled, true);
  auto result = RunJob(cluster, conf);
  CLY_CHECK(result.ok());
  return result->report.profile;
}

/// The scan counters of every CIF generation must survive the per-task ->
/// job merge loss-free: rows add up exactly, decoded bytes are non-zero,
/// and (v3) per-encoding block tags are preserved.
TEST(ProfiledScanTest, CifV1V2V3ScanStatsMergeLossFree) {
  for (int version : {1, 2, 3}) {
    SCOPED_TRACE(StrCat("cif v", version));
    MrCluster cluster(ScanCluster());
    const std::string table = StrCat("/scan_v", version);
    const storage::TableDesc desc =
        WriteCifTable(&cluster, table, 1000, version);
    ASSERT_EQ(desc.cif_version, version);

    const obs::QueryProfile profile = ProfiledScan(&cluster, table);
    ASSERT_FALSE(profile.empty());
    ASSERT_EQ(profile.roots.size(), 1u);
    const obs::OperatorProfile& map = profile.roots[0];
    EXPECT_EQ(map.name, "map");
    // Several splits, each a task attempt whose scan node merges into one
    // per-table node.
    EXPECT_GE(map.tasks, 2u);
    ASSERT_EQ(map.children.size(), 1u);
    const obs::OperatorProfile& scan = map.children[0];
    EXPECT_EQ(scan.name, StrCat("scan:", table));
    EXPECT_EQ(scan.kind, "scan");
    EXPECT_EQ(scan.rows_out, 1000u) << "merged rows must add up exactly";
    EXPECT_GT(scan.bytes_decoded, 0u);
    EXPECT_GT(scan.wall_ns, 0u);
    EXPECT_GE(scan.wall_ns, scan.wall_max_ns);
    if (version == 3) {
      uint64_t tagged = 0;
      for (uint64_t n : scan.blocks_by_encoding) tagged += n;
      EXPECT_GT(tagged, 0u) << "v3 blocks carry encoding tags";
      EXPECT_GE(scan.bytes_raw, scan.bytes_decoded)
          << "v3 raw >= encoded bytes";
    }
    // Job-level derived counters agree with the tree.
    EXPECT_EQ(profile.ProfiledSpanSeconds() > 0, true);
  }
}

TEST(ProfiledScanTest, ProfileOffLeavesReportEmpty) {
  MrCluster cluster(ScanCluster());
  WriteCifTable(&cluster, "/scan_off", 300, 3);
  JobConf conf;
  conf.job_name = "unprofiled-scan";
  conf.num_reduce_tasks = 0;
  conf.Set(kConfInputTable, "/scan_off");
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<CountRowsMapper>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.profile.empty())
      << "no kConfProfileEnabled -> zero profile state";
  EXPECT_EQ(result->report.counters.Get(kCounterProfOperators), 0);
}

TEST(ProfiledScanTest, ProfileCountersMatchTree) {
  MrCluster cluster(ScanCluster());
  WriteCifTable(&cluster, "/scan_counts", 512, 3);
  JobConf conf;
  conf.job_name = "counted-scan";
  conf.num_reduce_tasks = 0;
  conf.Set(kConfInputTable, "/scan_counts");
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<CountRowsMapper>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  conf.SetBool(kConfProfileEnabled, true);
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JobReport& report = result->report;
  ASSERT_FALSE(report.profile.empty());
  EXPECT_EQ(report.counters.Get(kCounterProfOperators),
            static_cast<int64_t>(obs::NumProfileOperators(report.profile)));
  EXPECT_EQ(report.counters.Get(kCounterProfTasksProfiled),
            static_cast<int64_t>(report.profile.roots[0].tasks));
  EXPECT_EQ(report.profile.wall_seconds, report.wall_seconds)
      << "profile stamped with the job wall clock at commit";
  EXPECT_LE(report.profile.ProfiledSpanSeconds(), report.wall_seconds + 0.01)
      << "profiled attempts fit inside the job envelope";
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
