#include <gtest/gtest.h>

#include "common/random.h"
#include "hdfs/dfs.h"
#include "storage/binary_row_format.h"
#include "storage/byte_io.h"
#include "storage/row_codec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace storage {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"big", TypeKind::kInt64, 8},
                       {"ratio", TypeKind::kDouble, 8},
                       {"name", TypeKind::kString, 10}});
}

Row MakeRow(int32_t id) {
  return Row({Value(id), Value(static_cast<int64_t>(id) * 1000000007),
              Value(id * 0.5), Value(std::string("name-") + std::to_string(id))});
}

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) rows.push_back(MakeRow(i));
  return rows;
}

class StorageFormatTest : public ::testing::TestWithParam<const char*> {
 protected:
  StorageFormatTest() : dfs_(MakeOptions()) {}

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 4;
    options.block_size = 4096;
    options.replication = 2;
    return options;
  }

  TableDesc WriteTable(const std::vector<Row>& rows) {
    TableDesc desc;
    desc.path = "/tbl";
    desc.format = GetParam();
    desc.schema = TestSchema();
    desc.rows_per_split = 32;
    auto writer = OpenTableWriter(&dfs_, desc);
    CLY_CHECK(writer.ok());
    for (const Row& row : rows) CLY_CHECK_OK((*writer)->Append(row));
    CLY_CHECK_OK((*writer)->Close());
    auto loaded = LoadTableDesc(dfs_, desc.path);
    CLY_CHECK(loaded.ok());
    return *loaded;
  }

  hdfs::MiniDfs dfs_;
};

TEST_P(StorageFormatTest, RoundTripsAllRows) {
  const std::vector<Row> rows = MakeRows(100);
  const TableDesc desc = WriteTable(rows);
  EXPECT_EQ(desc.num_rows, 100u);
  EXPECT_EQ(desc.format, GetParam());
  ASSERT_NE(desc.schema, nullptr);
  EXPECT_EQ(desc.schema->num_fields(), 4);

  ScanOptions scan;
  auto read = ScanTableToVector(dfs_, desc, scan);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*read)[i], rows[i]) << "row " << i;
  }
}

TEST_P(StorageFormatTest, ProjectionSelectsAndOrders) {
  const TableDesc desc = WriteTable(MakeRows(10));
  ScanOptions scan;
  scan.projection = {"name", "id"};
  auto read = ScanTableToVector(dfs_, desc, scan);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 10u);
  EXPECT_EQ((*read)[3].size(), 2);
  EXPECT_EQ((*read)[3].Get(0).str(), "name-3");
  EXPECT_EQ((*read)[3].Get(1).i32(), 3);
}

TEST_P(StorageFormatTest, UnknownProjectionColumnFails) {
  const TableDesc desc = WriteTable(MakeRows(5));
  auto splits = ListTableSplits(dfs_, desc);
  ASSERT_TRUE(splits.ok());
  ScanOptions scan;
  scan.projection = {"nope"};
  EXPECT_FALSE(OpenSplitRowReader(dfs_, desc, (*splits)[0], scan).ok());
}

TEST_P(StorageFormatTest, SplitsCoverDisjointRowRanges) {
  const std::vector<Row> rows = MakeRows(600);
  const TableDesc desc = WriteTable(rows);
  auto splits = ListTableSplits(dfs_, desc);
  ASSERT_TRUE(splits.ok());
  EXPECT_GT(splits->size(), 1u);

  ScanOptions scan;
  std::vector<Row> all;
  for (const StorageSplit& split : *splits) {
    EXPECT_FALSE(split.preferred_nodes.empty());
    auto reader = OpenSplitRowReader(dfs_, desc, split, scan);
    ASSERT_TRUE(reader.ok());
    Row row;
    while (true) {
      auto more = (*reader)->Next(&row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      all.push_back(row);
    }
  }
  ASSERT_EQ(all.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(all[i], rows[i]);
}

TEST_P(StorageFormatTest, BatchReaderMatchesRowReader) {
  const TableDesc desc = WriteTable(MakeRows(300));
  auto splits = ListTableSplits(dfs_, desc);
  ASSERT_TRUE(splits.ok());
  ScanOptions scan;
  scan.projection = {"id", "name"};
  for (const StorageSplit& split : *splits) {
    auto batch_reader = OpenSplitBatchReader(dfs_, desc, split, scan);
    ASSERT_TRUE(batch_reader.ok());
    RowBatch batch((*batch_reader)->output_schema());
    std::vector<Row> from_batches;
    while (true) {
      auto more = (*batch_reader)->NextBatch(&batch, 7);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      EXPECT_LE(batch.num_rows(), 7);
      for (int64_t i = 0; i < batch.num_rows(); ++i) {
        from_batches.push_back(batch.GetRow(i));
      }
    }
    auto row_reader = OpenSplitRowReader(dfs_, desc, split, scan);
    ASSERT_TRUE(row_reader.ok());
    Row row;
    size_t i = 0;
    while (true) {
      auto more = (*row_reader)->Next(&row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      ASSERT_LT(i, from_batches.size());
      EXPECT_EQ(from_batches[i++], row);
    }
    EXPECT_EQ(i, from_batches.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, StorageFormatTest,
                         ::testing::Values(kFormatText, kFormatBinaryRow,
                                           kFormatCif, kFormatRcFile),
                         [](const auto& info) { return info.param; });

TEST(ByteIoTest, PrimitiveRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU16(65535);
  writer.PutU32(123456789);
  writer.PutI64(-42);
  writer.PutF64(3.25);
  writer.PutString("hey");

  ByteReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  std::string s;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU16(&u16).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetI64(&i64).ok());
  ASSERT_TRUE(reader.GetF64(&f64).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 123456789u);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.25);
  EXPECT_EQ(s, "hey");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteIoTest, TruncatedReadsFail) {
  ByteWriter writer;
  writer.PutU16(300);
  ByteReader reader(writer.bytes());
  uint32_t v;
  EXPECT_FALSE(reader.GetU32(&v).ok());
  std::string s;
  ByteReader reader2(writer.bytes());
  EXPECT_FALSE(reader2.GetString(&s).ok());  // length 300 > remaining
}

TEST(ByteIoTest, PatchU32) {
  ByteWriter writer;
  writer.PutU32(0);
  writer.PutString("xy");
  writer.PatchU32(0, static_cast<uint32_t>(writer.size() - 4));
  ByteReader reader(writer.bytes());
  uint32_t len;
  ASSERT_TRUE(reader.GetU32(&len).ok());
  EXPECT_EQ(len, reader.remaining());
}

TEST(RowCodecTest, BinaryRoundTrip) {
  auto schema = TestSchema();
  const Row row = MakeRow(17);
  ByteWriter writer;
  EncodeRow(row, &writer);
  EXPECT_EQ(writer.size(), EncodedRowSize(row));
  ByteReader reader(writer.bytes());
  Row decoded;
  ASSERT_TRUE(DecodeRow(*schema, &reader, &decoded).ok());
  EXPECT_EQ(decoded, row);
}

TEST(RowCodecTest, TextRoundTrip) {
  auto schema = TestSchema();
  const Row row = MakeRow(3);
  Row parsed;
  ASSERT_TRUE(ParseRowText(*schema, FormatRowText(row), &parsed).ok());
  EXPECT_EQ(parsed.Get(0).i32(), 3);
  EXPECT_EQ(parsed.Get(3).str(), "name-3");
}

TEST(RowCodecTest, TextParseRejectsBadFieldCount) {
  auto schema = TestSchema();
  Row parsed;
  EXPECT_FALSE(ParseRowText(*schema, "1|2", &parsed).ok());
}

TEST(RowCodecTest, TextParseRejectsBadInt) {
  Row parsed;
  auto schema = Schema::Make({{"n", TypeKind::kInt32, 0}});
  EXPECT_FALSE(ParseRowText(*schema, "abc", &parsed).ok());
}

TEST(RowStreamTest, EncodeDecodeRoundTrip) {
  auto schema = TestSchema();
  const std::vector<Row> rows = MakeRows(20);
  std::vector<uint8_t> bytes = EncodeRowStream(rows);
  auto decoded = DecodeRowStream(*schema, bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ((*decoded)[i], rows[i]);
}

TEST(CifTest, ColumnProjectionReadsFewerBytes) {
  hdfs::DfsOptions options;
  options.num_nodes = 4;
  options.block_size = 4096;
  hdfs::MiniDfs dfs(options);

  TableDesc desc;
  desc.path = "/cif";
  desc.format = kFormatCif;
  desc.schema = TestSchema();
  desc.rows_per_split = 64;
  auto writer = OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  for (const Row& row : MakeRows(256)) ASSERT_TRUE((*writer)->Append(row).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto loaded = LoadTableDesc(dfs, desc.path);
  ASSERT_TRUE(loaded.ok());

  auto splits = ListTableSplits(dfs, *loaded);
  ASSERT_TRUE(splits.ok());

  hdfs::IoStats narrow, wide;
  {
    ScanOptions scan;
    scan.projection = {"id"};
    scan.stats = &narrow;
    for (const auto& split : *splits) {
      ASSERT_TRUE(OpenSplitRowReader(dfs, *loaded, split, scan).ok());
    }
  }
  {
    ScanOptions scan;
    scan.stats = &wide;
    for (const auto& split : *splits) {
      ASSERT_TRUE(OpenSplitRowReader(dfs, *loaded, split, scan).ok());
    }
  }
  EXPECT_LT(narrow.TotalRead() * 3, wide.TotalRead())
      << "1 of 4 columns should read far fewer bytes";
}

TEST(CifTest, OversizedSplitIsRejected) {
  hdfs::DfsOptions options;
  options.num_nodes = 2;
  options.block_size = 64;  // tiny blocks
  hdfs::MiniDfs dfs(options);
  TableDesc desc;
  desc.path = "/cif2";
  desc.format = kFormatCif;
  desc.schema = TestSchema();
  desc.rows_per_split = 1000;  // 1000 int32s cannot fit a 64-byte block
  auto writer = OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  Status st;
  for (const Row& row : MakeRows(1000)) {
    st = (*writer)->Append(row);
    if (!st.ok()) break;
  }
  EXPECT_FALSE(st.ok());
}

TEST(CifDictionaryTest, LowCardinalityStringsRoundTripCompactly) {
  hdfs::DfsOptions options;
  options.num_nodes = 2;
  options.block_size = 64 * 1024;
  options.replication = 1;
  hdfs::MiniDfs dfs(options);

  // Two string columns: one with 4 distinct values (dictionary-encoded) and
  // one with unique values per row (plain encoding).
  TableDesc desc;
  desc.path = "/dict";
  desc.format = kFormatCif;
  desc.schema = Schema::Make({{"mode", TypeKind::kString, 8},
                              {"unique", TypeKind::kString, 12}});
  desc.rows_per_split = 512;
  const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  std::vector<Row> rows;
  auto writer = OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 2000; ++i) {
    Row row({Value(modes[i % 4]),
             Value(std::string("unique-value-") + std::to_string(i))});
    ASSERT_TRUE((*writer)->Append(row).ok());
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto loaded = LoadTableDesc(dfs, "/dict");
  ASSERT_TRUE(loaded.ok());
  ScanOptions scan;
  auto read = ScanTableToVector(dfs, *loaded, scan);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ((*read)[i], rows[i]);

  // The dictionary column stores ~1 byte/row; the unique column cannot.
  auto mode_info = dfs.Stat("/dict/mode.col");
  auto unique_info = dfs.Stat("/dict/unique.col");
  ASSERT_TRUE(mode_info.ok());
  ASSERT_TRUE(unique_info.ok());
  EXPECT_LT(mode_info->length, 2000u * 2);
  EXPECT_GT(unique_info->length, 2000u * 15);
}

TEST(CifDictionaryTest, MoreThan256DistinctFallsBackToPlain) {
  hdfs::DfsOptions options;
  options.num_nodes = 2;
  options.block_size = 128 * 1024;
  options.replication = 1;
  hdfs::MiniDfs dfs(options);
  TableDesc desc;
  desc.path = "/many";
  desc.format = kFormatCif;
  desc.schema = Schema::Make({{"s", TypeKind::kString, 8}});
  desc.rows_per_split = 1024;
  auto writer = OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 1024; ++i) {  // 512 distinct values > 256
    Row row({Value(std::string("v") + std::to_string(i % 512))});
    ASSERT_TRUE((*writer)->Append(row).ok());
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE((*writer)->Close().ok());
  auto loaded = LoadTableDesc(dfs, "/many");
  ASSERT_TRUE(loaded.ok());
  ScanOptions scan;
  auto read = ScanTableToVector(dfs, *loaded, scan);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ((*read)[i], rows[i]);
}

TEST(TableMetaTest, MissingMetaIsNotFound) {
  hdfs::MiniDfs dfs(hdfs::DfsOptions{});
  EXPECT_TRUE(LoadTableDesc(dfs, "/missing").status().IsNotFound());
}

TEST(TableMetaTest, UnknownFormatRejected) {
  hdfs::MiniDfs dfs(hdfs::DfsOptions{});
  TableDesc desc;
  desc.path = "/t";
  desc.format = "parquet";
  desc.schema = TestSchema();
  EXPECT_FALSE(OpenTableWriter(&dfs, desc).ok());
}

}  // namespace
}  // namespace storage
}  // namespace clydesdale
