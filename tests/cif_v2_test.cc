// CIF v2 scan tests: zone-map block skipping, predicate and key-filter
// pushdown, zero-copy string decode, v1 compatibility, and the corruption
// cases the reader must reject with IoError (never undefined behaviour —
// the asan preset runs this suite).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hdfs/dfs.h"
#include "storage/cif.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace storage {
namespace {

SchemaPtr FactSchema() {
  return Schema::Make({{"id", TypeKind::kInt32, 4},
                       {"big", TypeKind::kInt64, 8},
                       {"ratio", TypeKind::kDouble, 8},
                       {"mode", TypeKind::kString, 6}});
}

Row MakeRow(int32_t id) {
  const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  return Row({Value(id), Value(static_cast<int64_t>(id) * 1000),
              Value(id * 0.25), Value(modes[id % 4])});
}

class CifV2Test : public ::testing::Test {
 protected:
  CifV2Test() : dfs_(MakeOptions()) {}

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 2;
    options.block_size = 64 * 1024;
    options.replication = 1;
    return options;
  }

  /// Writes `n` sequential rows with `rows_per_split`, returns the reloaded
  /// desc (so cif_version reflects what the metadata round-trips).
  TableDesc WriteTable(const std::string& path, int n, int64_t rows_per_split,
                       int cif_version = 2) {
    TableDesc desc;
    desc.path = path;
    desc.format = kFormatCif;
    desc.schema = FactSchema();
    desc.rows_per_split = rows_per_split;
    desc.cif_version = cif_version;
    auto writer = OpenTableWriter(&dfs_, desc);
    CLY_CHECK(writer.ok());
    for (int i = 0; i < n; ++i) CLY_CHECK_OK((*writer)->Append(MakeRow(i)));
    CLY_CHECK_OK((*writer)->Close());
    auto loaded = LoadTableDesc(dfs_, path);
    CLY_CHECK(loaded.ok());
    return *loaded;
  }

  Result<std::vector<Row>> Scan(const TableDesc& desc, ScanOptions scan) {
    return ScanTableToVector(dfs_, desc, scan);
  }

  hdfs::MiniDfs dfs_;
};

std::shared_ptr<const ScanSpec> SpecWith(Predicate::Ptr leaf) {
  auto spec = std::make_shared<ScanSpec>();
  spec->conjuncts.push_back(std::move(leaf));
  return spec;
}

TEST_F(CifV2Test, MetadataRoundTripsVersion) {
  const TableDesc v2 = WriteTable("/v2meta", 16, 16);
  EXPECT_EQ(v2.cif_version, 2);
  const TableDesc v1 = WriteTable("/v1meta", 16, 16, /*cif_version=*/1);
  EXPECT_EQ(v1.cif_version, 1);
}

TEST_F(CifV2Test, ZoneMapsSkipDisjointBlocks) {
  // 256 sequential ids over 4 splits of 64: ids >= 64 never match, so three
  // of the four blocks must be refuted by their zone maps alone.
  const TableDesc desc = WriteTable("/zones", 256, 64);
  ScanStats stats;
  ScanOptions scan;
  scan.scan_spec = SpecWith(Predicate::Le("id", Value(int32_t{50})));
  scan.scan_stats = &stats;
  auto rows = Scan(desc, scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 51u);
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i], MakeRow(static_cast<int32_t>(i)));
  }
  EXPECT_EQ(stats.blocks_skipped, 3u);
  // 3 skipped blocks (192 rows) + 13 rows pruned inside the first block.
  EXPECT_EQ(stats.rows_pruned, 205u);
}

TEST_F(CifV2Test, PushdownMatchesEngineSideFilterExactly) {
  const TableDesc desc = WriteTable("/pushdown", 300, 64);
  const auto leaves = {
      Predicate::Between("id", Value(int32_t{40}), Value(int32_t{200})),
      Predicate::Gt("big", Value(int64_t{150000})),
      Predicate::Le("ratio", Value(12.5)),
      Predicate::Eq("mode", Value("SHIP")),
      Predicate::In("id", {Value(int32_t{3}), Value(int32_t{77}),
                           Value(int32_t{290})}),
      Predicate::Ne("mode", Value("AIR")),
  };
  for (const Predicate::Ptr& leaf : leaves) {
    ScanOptions pushed;
    pushed.scan_spec = SpecWith(leaf);
    auto got = Scan(desc, pushed);
    ASSERT_TRUE(got.ok());

    // Reference: full scan, filter row-by-row with the bound predicate.
    auto all = Scan(desc, ScanOptions{});
    ASSERT_TRUE(all.ok());
    auto bound = leaf->Bind(*desc.schema);
    ASSERT_TRUE(bound.ok());
    std::vector<Row> expected;
    for (const Row& row : *all) {
      if ((*bound)->Eval(row)) expected.push_back(row);
    }
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i], expected[i]);
    }
  }
}

TEST_F(CifV2Test, DictionaryZoneRefutesAbsentString) {
  const TableDesc desc = WriteTable("/dictzone", 128, 64);
  ScanStats stats;
  ScanOptions scan;
  scan.scan_spec = SpecWith(Predicate::Eq("mode", Value("CANAL")));
  scan.scan_stats = &stats;
  auto rows = Scan(desc, scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(stats.rows_pruned, 128u);  // every row, by zone or by code test
}

/// Set-membership filter standing in for a dimension hash table.
class SetKeyFilter final : public ScanKeyFilter {
 public:
  explicit SetKeyFilter(std::set<int64_t> keys) : keys_(std::move(keys)) {}
  bool Contains(int64_t key) const override { return keys_.count(key) > 0; }
  bool RangeMightMatch(int64_t lo, int64_t hi) const override {
    return !keys_.empty() && !(hi < *keys_.begin() || lo > *keys_.rbegin());
  }

 private:
  std::set<int64_t> keys_;
};

TEST_F(CifV2Test, KeyFiltersPruneRowsAndSkipBlocks) {
  const TableDesc desc = WriteTable("/keys", 256, 64);
  auto spec = std::make_shared<ScanSpec>();
  spec->key_filters.push_back(
      {"id", std::make_shared<SetKeyFilter>(std::set<int64_t>{5, 60, 61})});
  ScanStats stats;
  ScanOptions scan;
  scan.scan_spec = spec;
  scan.scan_stats = &stats;
  auto rows = Scan(desc, scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], MakeRow(5));
  EXPECT_EQ((*rows)[1], MakeRow(60));
  EXPECT_EQ((*rows)[2], MakeRow(61));
  // Splits [64,128), [128,192), [192,256) are outside [5, 61].
  EXPECT_EQ(stats.blocks_skipped, 3u);
}

TEST_F(CifV2Test, LateAndEagerScansAgree) {
  const TableDesc desc = WriteTable("/ab", 300, 64);
  ScanOptions late;
  auto late_rows = Scan(desc, late);
  ASSERT_TRUE(late_rows.ok());

  ScanOptions eager;
  eager.late_materialize = false;
  auto eager_rows = Scan(desc, eager);
  ASSERT_TRUE(eager_rows.ok());

  ASSERT_EQ(late_rows->size(), eager_rows->size());
  for (size_t i = 0; i < late_rows->size(); ++i) {
    EXPECT_EQ((*late_rows)[i], (*eager_rows)[i]);
  }
}

TEST_F(CifV2Test, BatchReaderSlicesStringViews) {
  const TableDesc desc = WriteTable("/views", 200, 200);
  auto splits = ListTableSplits(dfs_, desc);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  ScanOptions scan;
  auto reader = OpenSplitBatchReader(dfs_, desc, (*splits)[0], scan);
  ASSERT_TRUE(reader.ok());
  RowBatch batch((*reader)->output_schema());
  int32_t next_id = 0;
  while (true) {
    auto more = (*reader)->NextBatch(&batch, 33);  // uneven slice boundaries
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    // The string column must arrive as arena-backed views (zero-copy), and
    // every accessor must agree with the written values.
    EXPECT_TRUE(batch.column(3).is_string_view());
    for (int64_t i = 0; i < batch.num_rows(); ++i, ++next_id) {
      EXPECT_EQ(batch.GetRow(i), MakeRow(next_id));
    }
  }
  EXPECT_EQ(next_id, 200);
}

TEST_F(CifV2Test, AppendedSegmentKeepsVersionAndScans) {
  TableDesc desc = WriteTable("/seg", 100, 64);
  auto appender = AppendCifSegment(&dfs_, desc);
  ASSERT_TRUE(appender.ok());
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE((*appender)->Append(MakeRow(i)).ok());
  }
  ASSERT_TRUE((*appender)->Close().ok());
  auto reloaded = LoadTableDesc(dfs_, "/seg");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->cif_version, 2);
  auto rows = Scan(*reloaded, ScanOptions{});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 150u);
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i], MakeRow(static_cast<int32_t>(i)));
  }
}

// --- v1 compatibility --------------------------------------------------------

TEST_F(CifV2Test, V1TablesStillReadThroughEitherKnobSetting) {
  const TableDesc desc = WriteTable("/v1", 200, 64, /*cif_version=*/1);
  ASSERT_EQ(desc.cif_version, 1);
  for (const bool late : {true, false}) {
    ScanOptions scan;
    scan.late_materialize = late;
    // A scan spec against a v1 table must be ignored, not half-applied.
    scan.scan_spec = SpecWith(Predicate::Le("id", Value(int32_t{50})));
    auto rows = Scan(desc, scan);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), 200u);
  }
}

// --- corruption --------------------------------------------------------------

/// Fixture for byte-level corruption: one split, one DFS block per column
/// file, so rewriting the file preserves the reader's block math.
class CifCorruptionTest : public CifV2Test {
 protected:
  TableDesc WriteSmall(const std::string& path, int cif_version = 2) {
    return WriteTable(path, 32, 64, cif_version);
  }

  std::string ColumnFile(const std::string& table, const std::string& col) {
    return table + "/" + col + ".col";
  }

  void Rewrite(const std::string& file, std::string contents) {
    CLY_CHECK_OK(dfs_.Delete(file));
    CLY_CHECK_OK(dfs_.WriteFile(file, contents));
  }

  /// Both decode paths must reject the table with IoError (asan verifies
  /// the rejection involves no out-of-bounds access).
  void ExpectIoErrorBothPaths(const TableDesc& desc) {
    for (const bool late : {true, false}) {
      ScanOptions scan;
      scan.late_materialize = late;
      auto rows = Scan(desc, scan);
      ASSERT_FALSE(rows.ok()) << "late_materialize=" << late;
      EXPECT_EQ(rows.status().code(), StatusCode::kIoError)
          << "late_materialize=" << late << ": "
          << rows.status().ToString();
    }
  }
};

TEST_F(CifCorruptionTest, TruncatedZoneMapFooterIsRejected) {
  const TableDesc desc = WriteSmall("/trunc");
  const std::string file = ColumnFile("/trunc", "id");
  auto bytes = dfs_.ReadFileToString(file);
  ASSERT_TRUE(bytes.ok());
  Rewrite(file, bytes->substr(0, bytes->size() - 5));
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifCorruptionTest, OversizedZoneLengthIsRejected) {
  const TableDesc desc = WriteSmall("/zlen");
  const std::string file = ColumnFile("/zlen", "big");
  auto bytes = dfs_.ReadFileToString(file);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  // The u32 before the trailing footer magic is the zone-map length; claim
  // it covers more bytes than the whole block.
  ASSERT_GE(mutated.size(), 8u);
  for (size_t i = mutated.size() - 8; i < mutated.size() - 4; ++i) {
    mutated[i] = static_cast<char>(0xFF);
  }
  Rewrite(file, mutated);
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifCorruptionTest, OutOfRangeDictionaryCodeIsRejected) {
  const TableDesc desc = WriteSmall("/dictcode");
  const std::string file = ColumnFile("/dictcode", "mode");
  auto bytes = dfs_.ReadFileToString(file);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  ASSERT_GE(mutated.size(), 8u);
  // Recover the zone-map length from the footer, then flip the last
  // dictionary code (the byte just before the zone map) far out of range
  // of the 4-entry dictionary.
  uint32_t zone_len = 0;
  for (int i = 3; i >= 0; --i) {
    zone_len = (zone_len << 8) |
               static_cast<uint8_t>(mutated[mutated.size() - 8 + i]);
  }
  ASSERT_LT(zone_len, mutated.size() - 8u);
  mutated[mutated.size() - 8 - zone_len - 1] = static_cast<char>(0xFB);
  Rewrite(file, mutated);
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifCorruptionTest, V1ReaderOnV2FileIsRejected) {
  TableDesc desc = WriteSmall("/v2file");
  ASSERT_EQ(desc.cif_version, 2);
  desc.cif_version = 1;  // a stale v1 reader's view of a v2 file
  ExpectIoErrorBothPaths(desc);
}

TEST_F(CifCorruptionTest, V2ReaderOnV1FileIsRejected) {
  TableDesc desc = WriteSmall("/v1file", /*cif_version=*/1);
  ASSERT_EQ(desc.cif_version, 1);
  desc.cif_version = 2;  // metadata claims v2, files are v1
  ExpectIoErrorBothPaths(desc);
}

}  // namespace
}  // namespace storage
}  // namespace clydesdale
