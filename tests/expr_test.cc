#include <gtest/gtest.h>

#include "schema/expr.h"

namespace clydesdale {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"qty", TypeKind::kInt32, 0},
                       {"price", TypeKind::kInt32, 0},
                       {"region", TypeKind::kString, 0},
                       {"rate", TypeKind::kDouble, 0}});
}

Row TestRow(int32_t qty, int32_t price, const char* region, double rate) {
  return Row({Value(qty), Value(price), Value(region), Value(rate)});
}

TEST(ExprTest, ColumnAndLiteral) {
  auto schema = TestSchema();
  auto col = Expr::Col("price")->Bind(*schema);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Eval(TestRow(1, 99, "ASIA", 0.5)).i32(), 99);

  auto lit = Expr::Lit(Value(int32_t{5}))->Bind(*schema);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ((*lit)->Eval(TestRow(0, 0, "", 0)).i32(), 5);
}

TEST(ExprTest, IntegerArithmeticStaysIntegral) {
  auto schema = TestSchema();
  auto expr = Expr::Mul(Expr::Col("qty"), Expr::Col("price"))->Bind(*schema);
  ASSERT_TRUE(expr.ok());
  const Value v = (*expr)->Eval(TestRow(3, 100, "", 0));
  EXPECT_EQ(v.kind(), TypeKind::kInt64);
  EXPECT_EQ(v.i64(), 300);
}

TEST(ExprTest, SubAndAdd) {
  auto schema = TestSchema();
  auto sub = Expr::Sub(Expr::Col("price"), Expr::Col("qty"))->Bind(*schema);
  auto add = Expr::Add(Expr::Col("price"), Expr::Lit(Value(int32_t{1})))
                 ->Bind(*schema);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(add.ok());
  EXPECT_EQ((*sub)->Eval(TestRow(3, 10, "", 0)).AsInt64(), 7);
  EXPECT_EQ((*add)->Eval(TestRow(3, 10, "", 0)).AsInt64(), 11);
}

TEST(ExprTest, DoubleArithmetic) {
  auto schema = TestSchema();
  auto expr = Expr::Mul(Expr::Col("rate"), Expr::Col("qty"))->Bind(*schema);
  ASSERT_TRUE(expr.ok());
  EXPECT_DOUBLE_EQ((*expr)->Eval(TestRow(4, 0, "", 0.25)).f64(), 1.0);
}

TEST(ExprTest, BindFailsOnUnknownColumn) {
  auto schema = TestSchema();
  EXPECT_FALSE(Expr::Col("nope")->Bind(*schema).ok());
}

TEST(ExprTest, CollectColumns) {
  std::vector<std::string> cols;
  Expr::Mul(Expr::Col("a"), Expr::Sub(Expr::Col("b"), Expr::Lit(Value(1.0))))
      ->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
}

TEST(PredicateTest, Comparisons) {
  auto schema = TestSchema();
  const Row row = TestRow(25, 100, "ASIA", 0.5);
  auto check = [&](Predicate::Ptr p, bool expected) {
    auto bound = p->Bind(*schema);
    ASSERT_TRUE(bound.ok()) << p->ToString();
    EXPECT_EQ((*bound)->Eval(row), expected) << p->ToString();
  };
  check(Predicate::Eq("qty", Value(int32_t{25})), true);
  check(Predicate::Eq("qty", Value(int32_t{24})), false);
  check(Predicate::Ne("qty", Value(int32_t{24})), true);
  check(Predicate::Lt("qty", Value(int32_t{26})), true);
  check(Predicate::Le("qty", Value(int32_t{25})), true);
  check(Predicate::Gt("qty", Value(int32_t{25})), false);
  check(Predicate::Ge("qty", Value(int32_t{25})), true);
  check(Predicate::Between("qty", Value(int32_t{20}), Value(int32_t{30})), true);
  check(Predicate::Between("qty", Value(int32_t{26}), Value(int32_t{30})),
        false);
  check(Predicate::Eq("region", Value("ASIA")), true);
  check(Predicate::In("region", {Value("EUROPE"), Value("ASIA")}), true);
  check(Predicate::In("region", {Value("EUROPE")}), false);
}

TEST(PredicateTest, BooleanCombinators) {
  auto schema = TestSchema();
  const Row row = TestRow(25, 100, "ASIA", 0.5);
  auto t = Predicate::Eq("qty", Value(int32_t{25}));
  auto f = Predicate::Eq("qty", Value(int32_t{0}));
  auto eval = [&](Predicate::Ptr p) {
    return (*p->Bind(*schema))->Eval(row);
  };
  EXPECT_TRUE(eval(Predicate::And({t, t})));
  EXPECT_FALSE(eval(Predicate::And({t, f})));
  EXPECT_TRUE(eval(Predicate::Or({f, t})));
  EXPECT_FALSE(eval(Predicate::Or({f, f})));
  EXPECT_TRUE(eval(Predicate::Not(f)));
  EXPECT_TRUE(eval(Predicate::True()));
}

TEST(PredicateTest, EvalBatchMatchesRowEval) {
  auto schema = TestSchema();
  RowBatch batch(schema);
  batch.AppendRow(TestRow(10, 5, "ASIA", 0.1));
  batch.AppendRow(TestRow(25, 6, "EUROPE", 0.2));
  batch.AppendRow(TestRow(30, 7, "ASIA", 0.3));
  batch.AppendRow(TestRow(40, 8, "AFRICA", 0.4));

  auto pred = Predicate::And({Predicate::Between("qty", Value(int32_t{20}),
                                                 Value(int32_t{35})),
                              Predicate::Eq("region", Value("ASIA"))});
  auto bound = pred->Bind(*schema);
  ASSERT_TRUE(bound.ok());

  std::vector<uint8_t> sel(4, 1);
  (*bound)->EvalBatch(batch, &sel);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sel[static_cast<size_t>(i)] != 0,
              (*bound)->Eval(batch.GetRow(i)))
        << "row " << i;
  }
  EXPECT_EQ(sel, (std::vector<uint8_t>{0, 0, 1, 0}));
}

TEST(PredicateTest, EvalBatchRespectsExistingSelection) {
  auto schema = TestSchema();
  RowBatch batch(schema);
  batch.AppendRow(TestRow(25, 5, "ASIA", 0.1));
  batch.AppendRow(TestRow(25, 5, "ASIA", 0.1));
  auto bound = Predicate::Eq("qty", Value(int32_t{25}))->Bind(*schema);
  ASSERT_TRUE(bound.ok());
  std::vector<uint8_t> sel = {0, 1};
  (*bound)->EvalBatch(batch, &sel);
  EXPECT_EQ(sel, (std::vector<uint8_t>{0, 1}));
}

TEST(PredicateTest, ToStringReadable) {
  auto p = Predicate::And({Predicate::Eq("region", Value("ASIA")),
                           Predicate::Between("qty", Value(int32_t{1}),
                                              Value(int32_t{3}))});
  EXPECT_EQ(p->ToString(), "(region = ASIA and qty between 1 and 3)");
}

TEST(PredicateTest, CollectColumns) {
  std::vector<std::string> cols;
  Predicate::And({Predicate::Eq("a", Value(int32_t{1})),
                  Predicate::Not(Predicate::In("b", {Value(int32_t{2})}))})
      ->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace clydesdale
