#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/clydesdale.h"
#include "core/staged_join.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"

namespace clydesdale {
namespace core {
namespace {

class StagedJoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 3;
    copts.map_slots_per_node = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);
    ssb::SsbLoadOptions load;
    load.scale_factor = 0.002;
    auto dataset = ssb::LoadSsb(cluster_, load);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
  }

  static std::vector<Row> Reference(const StarQuerySpec& spec) {
    auto rows = ssb::ExecuteReference(cluster_, dataset_->star, spec);
    CLY_CHECK(rows.ok());
    return std::move(*rows);
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* StagedJoinTest::cluster_ = nullptr;
ssb::SsbDataset* StagedJoinTest::dataset_ = nullptr;

TEST_F(StagedJoinTest, EstimateGrowsWithRowsAndAux) {
  auto dim = dataset_->star.dim("customer");
  ASSERT_TRUE(dim.ok());
  DimJoinSpec no_aux{"customer", "lo_custkey", "c_custkey",
                     Predicate::True(), {}};
  DimJoinSpec two_aux{"customer", "lo_custkey", "c_custkey",
                      Predicate::True(), {"c_nation", "c_city"}};
  EXPECT_GT(EstimateDimHashBytes(**dim, two_aux),
            EstimateDimHashBytes(**dim, no_aux));
  auto date_dim = dataset_->star.dim("date");
  ASSERT_TRUE(date_dim.ok());
  // Customer has more rows than date at this scale? At sf 0.002 the floors
  // make date (2557) the larger table; just check both are positive.
  EXPECT_GT(EstimateDimHashBytes(**dim, no_aux), 0u);
  EXPECT_GT(EstimateDimHashBytes(**date_dim, no_aux), 0u);
}

TEST_F(StagedJoinTest, PlanPacksGreedilyWithinBudget) {
  auto spec = ssb::QueryById("Q4.1");
  ASSERT_TRUE(spec.ok());
  // A generous budget keeps everything in one stage.
  auto one = PlanDimGroups(dataset_->star, *spec, uint64_t{1} << 40);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].dims.size(), 4u);
  EXPECT_FALSE((*one)[0].repartition);

  // A tiny-but-feasible budget forces one dimension per stage.
  uint64_t max_single = 0;
  for (const DimJoinSpec& join : spec->dims) {
    auto dim = dataset_->star.dim(join.dimension);
    ASSERT_TRUE(dim.ok());
    max_single = std::max(max_single, EstimateDimHashBytes(**dim, join));
  }
  auto four = PlanDimGroups(dataset_->star, *spec, max_single);
  ASSERT_TRUE(four.ok());
  EXPECT_GE(four->size(), 2u);
  size_t dims = 0;
  for (const auto& g : *four) {
    dims += g.dims.size();
    EXPECT_FALSE(g.repartition);
  }
  EXPECT_EQ(dims, 4u);
}

TEST_F(StagedJoinTest, OversizedDimensionsBecomeRepartitionGroups) {
  auto spec = ssb::QueryById("Q3.1");
  ASSERT_TRUE(spec.ok());
  // A budget below any single hash table: every dimension must fall back to
  // a repartition join (paper §5.1's "single large dimension" case).
  auto plan = PlanDimGroups(dataset_->star, *spec, 1024);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 3u);
  for (const auto& g : *plan) {
    EXPECT_TRUE(g.repartition);
    EXPECT_EQ(g.dims.size(), 1u);
  }
}

TEST_F(StagedJoinTest, RepartitionFallbackMatchesReference) {
  // Mixed plan: a budget just above the smallest dimension's hash estimate,
  // so the larger dimensions must fall back to repartition joins.
  auto spec = ssb::QueryById("Q3.1");
  ASSERT_TRUE(spec.ok());
  uint64_t min_single = ~uint64_t{0};
  for (const DimJoinSpec& join : spec->dims) {
    auto dim = dataset_->star.dim(join.dimension);
    ASSERT_TRUE(dim.ok());
    min_single = std::min(min_single, EstimateDimHashBytes(**dim, join));
  }
  const uint64_t budget = min_single + 16;
  auto plan = PlanDimGroups(dataset_->star, *spec, budget);
  ASSERT_TRUE(plan.ok());
  bool any_repartition = false;
  for (const auto& g : *plan) any_repartition |= g.repartition;
  ASSERT_TRUE(any_repartition) << "test needs an oversized dimension";

  auto star = std::make_shared<const StarSchema>(dataset_->star);
  auto result = ExecuteStagedStarJoin(cluster_, star, *spec, {}, budget);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, Reference(*spec));
}

TEST_F(StagedJoinTest, AllRepartitionPlanMatchesReference) {
  // Budget of 1: every join is a repartition stage, then a final
  // aggregation-only job over the joined intermediate.
  auto spec = ssb::QueryById("Q4.1");
  ASSERT_TRUE(spec.ok());
  auto star = std::make_shared<const StarSchema>(dataset_->star);
  auto result = ExecuteStagedStarJoin(cluster_, star, *spec, {}, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, Reference(*spec));
  // 4 repartition joins + 1 aggregation job.
  EXPECT_EQ(result->stage_reports.size(), 5u);
}

class StagedQueriesTest : public StagedJoinTest,
                          public ::testing::WithParamInterface<std::string> {};

TEST_P(StagedQueriesTest, MatchesReferenceWithOneDimPerStage) {
  auto spec = ssb::QueryById(GetParam());
  ASSERT_TRUE(spec.ok());
  uint64_t max_single = 0;
  for (const DimJoinSpec& join : spec->dims) {
    auto dim = dataset_->star.dim(join.dimension);
    ASSERT_TRUE(dim.ok());
    max_single = std::max(max_single, EstimateDimHashBytes(**dim, join));
  }
  auto star = std::make_shared<const StarSchema>(dataset_->star);
  auto result = ExecuteStagedStarJoin(cluster_, star, *spec, {}, max_single);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<Row> expected = Reference(*spec);
  ASSERT_EQ(result->rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result->rows[i], expected[i]) << "row " << i;
  }
  // One MR job per dimension group (Q1.x has a single dimension, so one).
  auto groups = PlanDimGroups(dataset_->star, *spec, max_single);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(result->stage_reports.size(), groups->size());
  if (spec->dims.size() > 1) EXPECT_GE(result->stage_reports.size(), 2u);
  // Intermediates were cleaned up.
  EXPECT_TRUE(cluster_->dfs()
                  ->List(StrCat("/tmp/clydesdale/", spec->id, "/"))
                  .empty());
}

INSTANTIATE_TEST_SUITE_P(Ssb, StagedQueriesTest,
                         ::testing::Values("Q1.1", "Q2.1", "Q3.1", "Q3.4",
                                           "Q4.1", "Q4.3"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name.erase(
                               std::remove(name.begin(), name.end(), '.'),
                               name.end());
                           return name;
                         });

TEST_F(StagedJoinTest, EngineFallsBackAutomatically) {
  auto spec = ssb::QueryById("Q4.2");
  ASSERT_TRUE(spec.ok());

  ClydesdaleOptions options;

  // With a budget that fits each dimension but not all four, the engine
  // stages automatically and still matches the reference.
  uint64_t max_single = 0, total = 0;
  for (const DimJoinSpec& join : spec->dims) {
    auto dim = dataset_->star.dim(join.dimension);
    ASSERT_TRUE(dim.ok());
    const uint64_t b = EstimateDimHashBytes(**dim, join);
    max_single = std::max(max_single, b);
    total += b;
  }
  ASSERT_LT(max_single, total);
  options.max_hash_memory_bytes = max_single;
  ClydesdaleEngine staged(cluster_, dataset_->star, options);
  auto result = staged.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->stage_reports.size(), 2u);
  EXPECT_EQ(result->rows, Reference(*spec));

  // And with an ample budget the engine runs the single-job plan.
  options.max_hash_memory_bytes = uint64_t{1} << 40;
  ClydesdaleEngine single(cluster_, dataset_->star, options);
  auto single_result = single.Execute(*spec);
  ASSERT_TRUE(single_result.ok());
  EXPECT_EQ(single_result->stage_reports.size(), 1u);
  EXPECT_EQ(single_result->rows, Reference(*spec));
}

TEST_F(StagedJoinTest, StagedWorksWithAblationsToo) {
  auto spec = ssb::QueryById("Q3.2");
  ASSERT_TRUE(spec.ok());
  uint64_t max_single = 0;
  for (const DimJoinSpec& join : spec->dims) {
    auto dim = dataset_->star.dim(join.dimension);
    ASSERT_TRUE(dim.ok());
    max_single = std::max(max_single, EstimateDimHashBytes(**dim, join));
  }
  ClydesdaleOptions options;
  options.multithreaded = false;
  options.block_iteration = false;
  auto star = std::make_shared<const StarSchema>(dataset_->star);
  auto result =
      ExecuteStagedStarJoin(cluster_, star, *spec, options, max_single);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows, Reference(*spec));
}

}  // namespace
}  // namespace core
}  // namespace clydesdale
