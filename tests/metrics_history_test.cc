#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_history.h"
#include "mapreduce/job_trace.h"
#include "mapreduce/straggler.h"
#include "mapreduce/task_attempt.h"
#include "obs/metrics.h"
#include "obs/metrics_poller.h"
#include "obs/query_profile.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry / MetricFamily
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GaugePrometheusExposition) {
  MetricsRegistry registry;
  MetricFamily* family = registry.GaugeFamily("up", "Is the server up");
  family->GaugeAt()->Set(3);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP up Is the server up\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE up gauge\n"), std::string::npos) << text;
  EXPECT_NE(text.find("up 3\n"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, LabeledCounterChildren) {
  MetricsRegistry registry;
  MetricFamily* family =
      registry.CounterFamily("requests_total", "Requests", {"kind"});
  family->CounterAt({"map"})->Add(2);
  family->CounterAt({"reduce"})->Inc();
  // Children are stable: a second lookup hits the same atomic cell.
  EXPECT_EQ(family->CounterAt({"map"}), family->CounterAt({"map"}));
  EXPECT_EQ(family->CounterAt({"map"})->Value(), 2);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{kind=\"map\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("requests_total{kind=\"reduce\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, HistogramExposesSummaryQuantiles) {
  MetricsRegistry registry;
  MetricFamily* family =
      registry.HistogramFamily("latency_micros", "Latency", {"kind"});
  Histogram* h = family->HistogramAt({"map"});
  for (int64_t v = 1; v <= 20; ++v) h->Record(v);

  const std::string text = registry.PrometheusText();
  // Quantile exposition uses the Prometheus "summary" TYPE, not "histogram".
  EXPECT_NE(text.find("# TYPE latency_micros summary\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_micros{kind=\"map\",quantile=\"0.5\"} 10\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_micros_count{kind=\"map\"} 20\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_micros_sum{kind=\"map\"} 210\n"),
            std::string::npos)
      << text;

  // The flattened poller rows expand to _count and _sum only.
  std::vector<MetricSampleRow> rows = registry.Samples();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "latency_micros_count{kind=\"map\"}");
  EXPECT_EQ(rows[0].value, 20);
  EXPECT_EQ(rows[1].key, "latency_micros_sum{kind=\"map\"}");
  EXPECT_EQ(rows[1].value, 210);
}

TEST(MetricsRegistryTest, PrometheusLabelValuesAreEscaped) {
  MetricsRegistry registry;
  MetricFamily* family = registry.GaugeFamily("g", "Help", {"path"});
  family->GaugeAt({"we\"ird\\table\n"})->Set(1);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("g{path=\"we\\\"ird\\\\table\\n\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry registry;
  registry.GaugeFamily("b_gauge", "B")->GaugeAt()->Set(7);
  registry.CounterFamily("a_counter", "A", {"kind"})
      ->CounterAt({"map"})
      ->Add(4);
  const std::string json = registry.JsonText();
  EXPECT_NE(json.find("{\"families\":["), std::string::npos) << json;
  // Families render in name order: a_counter before b_gauge.
  const size_t a_pos = json.find("\"name\":\"a_counter\"");
  const size_t b_pos = json.find("\"name\":\"b_gauge\"");
  ASSERT_NE(a_pos, std::string::npos) << json;
  ASSERT_NE(b_pos, std::string::npos) << json;
  EXPECT_LT(a_pos, b_pos);
  EXPECT_NE(json.find("\"labels\":{\"kind\":\"map\"},\"value\":4"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos) << json;
  // Structural sanity: braces and brackets balance.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistryTest, ReRegistrationReturnsExistingFamily) {
  MetricsRegistry registry;
  MetricFamily* first = registry.GaugeFamily("g", "Help", {"node"});
  MetricFamily* second = registry.GaugeFamily("g", "ignored on re-register");
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->help(), "Help");
  EXPECT_EQ(registry.Find("g"), first);
  EXPECT_EQ(registry.Find("absent"), nullptr);
  const std::vector<std::string> names = registry.FamilyNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "g");
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAllLand) {
  MetricsRegistry registry;
  MetricFamily* gauges = registry.GaugeFamily("g", "G", {"node"});
  MetricFamily* counters = registry.CounterFamily("c", "C");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Gauge* gauge = gauges->GaugeAt({StrCat(t)});
      Counter* counter = counters->CounterAt();
      for (int i = 0; i < kPerThread; ++i) {
        gauge->Add(1);
        counter->Inc();
        // Concurrent exposition must never block or tear an update.
        if (i % 2500 == 0) registry.PrometheusText();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counters->CounterAt()->Value(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(gauges->GaugeAt({StrCat(t)})->Value(), kPerThread);
  }
}

// ---------------------------------------------------------------------------
// MetricsPoller / dashboard
// ---------------------------------------------------------------------------

TEST(MetricsPollerTest, SamplesRegistryAndRunsProbes) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GaugeFamily("g", "G")->GaugeAt();
  gauge->Set(5);
  std::atomic<int> probe_runs{0};
  MetricsPoller poller(&registry, /*interval_ms=*/1);
  poller.AddProbe([&probe_runs] { probe_runs.fetch_add(1); });
  poller.Start();
  while (poller.num_samples() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gauge->Set(9);
  const MetricsTimeSeries series = poller.Stop();

  EXPECT_EQ(series.interval_ms, 1);
  ASSERT_GE(series.samples.size(), 3u);
  // Probes run before every snapshot plus once at Stop.
  EXPECT_GE(probe_runs.load(), static_cast<int>(series.samples.size()));
  // Stop takes a final sample, so the series covers the end state.
  EXPECT_EQ(series.samples.back().Value("g"), 9);
  EXPECT_EQ(series.MaxValue("g"), 9);
  EXPECT_EQ(series.MaxValue("absent"), 0);
  // Timestamps are monotone non-decreasing.
  for (size_t i = 1; i < series.samples.size(); ++i) {
    EXPECT_LE(series.samples[i - 1].t_ms, series.samples[i].t_ms);
  }
  // Stop is idempotent: a second call returns an empty series.
  EXPECT_TRUE(poller.Stop().samples.empty());
}

TEST(MetricsPollerTest, SeriesToJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GaugeFamily("g", "G", {"node"})->GaugeAt({"0"})->Set(2);
  MetricsPoller poller(&registry, 1);
  poller.Start();
  const MetricsTimeSeries series = poller.Stop();
  const std::string json = series.ToJson();
  EXPECT_NE(json.find("\"interval_ms\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"g{node=\\\"0\\\"}\":2"), std::string::npos) << json;
}

TEST(MetricsPollerTest, RenderDashboardBucketsValues) {
  MetricsTimeSeries series;
  series.interval_ms = 10;
  for (int i = 0; i < 6; ++i) {
    MetricsSample sample;
    sample.t_ms = i * 10;
    // 0, 0, 3, 3, 12, 12: exercises '.', a digit, and the '+' overflow.
    const int64_t v = i < 2 ? 0 : (i < 4 ? 3 : 12);
    sample.rows.push_back({"busy", v});
    series.samples.push_back(std::move(sample));
  }
  const std::string text =
      RenderDashboard(series, {{"busy slots", "busy"}}, /*width=*/6);
  EXPECT_NE(text.find("cluster dashboard: 6 samples"), std::string::npos)
      << text;
  EXPECT_NE(text.find("busy slots [..33++] max=12"), std::string::npos)
      << text;

  const MetricsTimeSeries empty;
  EXPECT_EQ(RenderDashboard(empty, {{"r", "k"}}),
            "cluster dashboard: no samples\n");
}

}  // namespace
}  // namespace obs

namespace mr {
namespace {

// ---------------------------------------------------------------------------
// StragglerDetector
// ---------------------------------------------------------------------------

TEST(StragglerTest, MedianNeedsMinCompleted) {
  StragglerDetector detector;  // defaults: threshold 2.0, min_completed 3
  EXPECT_EQ(detector.RunningMedianMicros(/*is_map=*/true), -1);
  detector.RecordCompletion(true, 100'000);
  detector.RecordCompletion(true, 200'000);
  EXPECT_EQ(detector.RunningMedianMicros(true), -1)
      << "below min_completed: no median yet";
  // No map/reduce cross-talk: reduce completions don't unlock the map median.
  detector.RecordCompletion(false, 1);
  EXPECT_EQ(detector.RunningMedianMicros(true), -1);
  detector.RecordCompletion(true, 300'000);
  EXPECT_EQ(detector.RunningMedianMicros(true), 200'000);
}

TEST(StragglerTest, MedianOddAndEvenCounts) {
  StragglerDetector detector;
  // Out-of-order insertion: the detector keeps durations sorted.
  for (int64_t v : {50'000, 10'000, 30'000}) detector.RecordCompletion(true, v);
  EXPECT_EQ(detector.RunningMedianMicros(true), 30'000);
  detector.RecordCompletion(true, 40'000);
  // Even count: average of the middle two (30'000, 40'000).
  EXPECT_EQ(detector.RunningMedianMicros(true), 35'000);
}

TEST(StragglerTest, IsStragglerThresholdAndFloor) {
  StragglerPolicy policy;
  policy.threshold = 2.0;
  policy.min_completed = 3;
  policy.min_elapsed_us = 10'000;
  StragglerDetector detector(policy);
  EXPECT_FALSE(detector.IsStraggler(true, 1'000'000))
      << "no median yet: nothing can be flagged";
  for (int64_t v : {20'000, 30'000, 40'000}) detector.RecordCompletion(true, v);
  // Median 30'000: the boundary 60'000 is not a straggler, just past it is.
  EXPECT_FALSE(detector.IsStraggler(true, 60'000));
  EXPECT_TRUE(detector.IsStraggler(true, 60'001));
  EXPECT_FALSE(detector.IsStraggler(false, 60'001))
      << "reduce phase has its own (empty) history";

  // Sub-floor elapsed never trips the rule, whatever the median says.
  StragglerDetector tiny(policy);
  for (int64_t v : {1, 2, 3}) tiny.RecordCompletion(true, v);
  EXPECT_FALSE(tiny.IsStraggler(true, 9'999));
  EXPECT_TRUE(tiny.IsStraggler(true, 10'001));
}

// ---------------------------------------------------------------------------
// Counter / metric name audits (mirrors scripts/check_counters.sh)
// ---------------------------------------------------------------------------

TEST(MetricNamesTest, SituationalCountersDisjointFromStandard) {
  const std::vector<std::string> standard = StandardCounterNames();
  const std::vector<std::string> situational = SituationalCounterNames();
  ASSERT_FALSE(situational.empty());
  EXPECT_NE(std::find(situational.begin(), situational.end(),
                      kCounterStragglerAttempts),
            situational.end());
  for (const std::string& name : situational) {
    EXPECT_EQ(std::find(standard.begin(), standard.end(), name),
              standard.end())
        << name << " is both standard and situational";
  }
}

TEST(MetricNamesTest, StandardFamiliesRegisteredOnClusterStartup) {
  ClusterOptions options;
  options.num_nodes = 2;
  MrCluster cluster(options);
  const std::vector<std::string> registered =
      cluster.metrics_registry()->FamilyNames();
  for (const std::string& name : StandardMetricFamilyNames()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), name),
              registered.end())
        << "family " << name << " not registered";
  }
  // Per-node children resolve for every node the cluster actually has.
  ASSERT_EQ(cluster.metrics()->num_nodes(), 2);
  EXPECT_EQ(cluster.metrics()->running_maps(1)->Value(), 0);
}

// ---------------------------------------------------------------------------
// Job fixtures (same shape as task_tracker_test.cc)
// ---------------------------------------------------------------------------

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.map_slots_per_node = 2;
  options.dfs_block_size = 1024;
  options.dfs_replication = 2;
  return options;
}

storage::TableDesc WriteWordTable(MrCluster* cluster, int rows) {
  storage::TableDesc desc;
  desc.path = "/words";
  desc.format = storage::kFormatBinaryRow;
  desc.schema = Schema::Make(
      {{"word", TypeKind::kString, 8}, {"n", TypeKind::kInt64, 8}});
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  const char* vocab[] = {"ant", "bee", "cat", "dog", "eel", "fox"};
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(
        Row({Value(vocab[i % 6]), Value(int64_t{1})})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(desc.path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

class WordCountMapper final : public Mapper {
 public:
  Status Map(const Row& key, const Row& value, TaskContext*,
             OutputCollector* out) override {
    (void)key;
    return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
  }
};

/// Word count whose task 0 dawdles in Setup: every other map finishes in
/// milliseconds, so the running median is tiny and task 0 blows through the
/// straggler threshold while the poller is watching.
class SlowFirstMapper final : public Mapper {
 public:
  Status Setup(TaskContext* context) override {
    if (context->task_index() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    return Status::OK();
  }
  Status Map(const Row& key, const Row& value, TaskContext*,
             OutputCollector* out) override {
    (void)key;
    return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
  }
};

class FailingMapper final : public Mapper {
 public:
  Status Map(const Row&, const Row&, TaskContext* context,
             OutputCollector*) override {
    if (context->task_index() == 0) return Status::IoError("synthetic fault");
    return Status::OK();
  }
};

class SumCountsReducer final : public Reducer {
 public:
  Status Reduce(const Row& key, const std::vector<Row>& values, TaskContext*,
                OutputCollector* out) override {
    int64_t total = 0;
    for (const Row& v : values) total += v.Get(0).i64();
    return out->Collect(key, Row({Value(total)}));
  }
};

JobConf WordCountJob(const std::string& table, int reduces) {
  JobConf conf;
  conf.job_name = "wordcount";
  conf.num_reduce_tasks = reduces;
  conf.Set(kConfInputTable, table);
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<SumCountsReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  return conf;
}

/// Job-level phase/overlap spans of a live report — the subset the history
/// mirrors, in the same order the loader reconstructs (start_us ascending).
std::vector<obs::SpanRecord> PhaseSpans(const JobReport& report) {
  std::vector<obs::SpanRecord> spans;
  for (const obs::SpanRecord& span : report.spans) {
    if (span.task != -1) continue;
    const std::string category = span.category;
    if (category != "phase" && category != "overlap") continue;
    spans.push_back(span);
  }
  return spans;
}

// ---------------------------------------------------------------------------
// JobHistory: recorder, persistence, byte-equivalent reconstruction
// ---------------------------------------------------------------------------

TEST(JobHistoryTest, RecorderSerializesOneEventPerLine) {
  JobHistoryRecorder recorder("demo", /*instance=*/42);
  recorder.RecordJobSubmitted(3, 8, 2);
  recorder.RecordAttemptRunning(/*is_map=*/true, /*task=*/0, /*attempt=*/0,
                                /*node=*/1);
  TaskReport task;
  task.index = 0;
  task.node = 1;
  task.wall_seconds = 0.125;
  recorder.RecordAttemptFinished(task, "succeeded", "");
  StragglerFlag flag;
  flag.is_map = true;
  flag.task = 0;
  flag.node = 1;
  flag.elapsed_us = 90'000;
  flag.median_us = 30'000;
  recorder.RecordStraggler(flag);
  Counters counters;
  counters.Add("MAP_INPUT_RECORDS", 7);
  recorder.RecordCountersSnapshot("final", counters);
  recorder.RecordPhase("map-phase", "phase", 10, 20);
  JobReport report;
  report.job_name = "demo";
  report.num_nodes = 3;
  report.wall_seconds = 0.5;
  recorder.RecordJobFinished(Status::OK(), report);

  // RecordJobFinished emits the "final" counters snapshot plus the
  // job_finished event itself.
  EXPECT_EQ(recorder.num_events(), 8u);
  const std::string jsonl = recorder.Serialize();
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, recorder.num_events());
  EXPECT_NE(jsonl.find("\"event\":\"job_submitted\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"straggler\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"median_us\":30000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"job_finished\""), std::string::npos);
}

TEST(JobHistoryTest, ReconstructRejectsGarbage) {
  EXPECT_FALSE(ReconstructJobReport("not json\n").ok());
  EXPECT_FALSE(ReconstructJobReport("").ok());
  // Parseable events but no job-level event: still an error.
  EXPECT_FALSE(
      ReconstructJobReport("{\"event\":\"straggler\",\"task\":1}\n").ok());
}

TEST(JobHistoryTest, HistoryRoundTripsByteEquivalentReport) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);
  JobConf conf = WordCountJob("/words", 2);
  conf.SetBool(kConfTraceEnabled, true);
  conf.SetBool(kConfHistoryEnabled, true);

  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JobReport& live = result->report;

  // First job on the cluster: instance 1, history on node 0's local store.
  auto jsonl = ReadJobHistory(cluster.local_store(0), 1);
  ASSERT_TRUE(jsonl.ok()) << jsonl.status().ToString();
  auto rebuilt_or = ReconstructJobReport(*jsonl);
  ASSERT_TRUE(rebuilt_or.ok()) << rebuilt_or.status().ToString();
  const JobReport& rebuilt = *rebuilt_or;

  EXPECT_EQ(rebuilt.job_name, live.job_name);
  EXPECT_EQ(rebuilt.num_nodes, live.num_nodes);
  // Counters round-trip byte-equivalent (same names, same totals).
  EXPECT_EQ(rebuilt.counters.ToString(), live.counters.ToString());
  // Wall clock is %.17g-encoded: the exact double comes back.
  EXPECT_EQ(rebuilt.wall_seconds, live.wall_seconds);

  // Per-task reports match field for field.
  ASSERT_EQ(rebuilt.map_tasks.size(), live.map_tasks.size());
  ASSERT_EQ(rebuilt.reduce_tasks.size(), live.reduce_tasks.size());
  auto expect_tasks_equal = [](const std::vector<TaskReport>& got,
                               const std::vector<TaskReport>& want) {
    for (size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE(StrCat("task ", i));
      EXPECT_EQ(got[i].index, want[i].index);
      EXPECT_EQ(got[i].attempt, want[i].attempt);
      EXPECT_EQ(got[i].is_map, want[i].is_map);
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].hdfs_local_bytes, want[i].hdfs_local_bytes);
      EXPECT_EQ(got[i].hdfs_remote_bytes, want[i].hdfs_remote_bytes);
      EXPECT_EQ(got[i].local_disk_bytes, want[i].local_disk_bytes);
      EXPECT_EQ(got[i].input_records, want[i].input_records);
      EXPECT_EQ(got[i].output_records, want[i].output_records);
      EXPECT_EQ(got[i].output_bytes, want[i].output_bytes);
      EXPECT_EQ(got[i].shuffle_bytes_total, want[i].shuffle_bytes_total);
      EXPECT_EQ(got[i].shuffle_bytes_remote, want[i].shuffle_bytes_remote);
      EXPECT_EQ(got[i].data_local, want[i].data_local);
      EXPECT_EQ(got[i].num_constituents, want[i].num_constituents);
      EXPECT_EQ(got[i].wall_seconds, want[i].wall_seconds) << "exact double";
    }
  };
  expect_tasks_equal(rebuilt.map_tasks, live.map_tasks);
  expect_tasks_equal(rebuilt.reduce_tasks, live.reduce_tasks);

  // Job-level phase spans come back with microsecond-exact timings, so the
  // reconstructed critical path renders byte-identically to the live one.
  const std::vector<obs::SpanRecord> live_phases = PhaseSpans(live);
  ASSERT_EQ(rebuilt.spans.size(), live_phases.size());
  ASSERT_FALSE(live_phases.empty()) << "traced run records phase spans";
  for (size_t i = 0; i < live_phases.size(); ++i) {
    EXPECT_EQ(rebuilt.spans[i].name, live_phases[i].name);
    EXPECT_STREQ(rebuilt.spans[i].category, live_phases[i].category);
    EXPECT_EQ(rebuilt.spans[i].start_us, live_phases[i].start_us);
    EXPECT_EQ(rebuilt.spans[i].dur_us, live_phases[i].dur_us);
  }
  EXPECT_EQ(CriticalPath(rebuilt).ToString(), CriticalPath(live).ToString());
}

TEST(JobHistoryTest, QueryProfileRoundTripsByteEquivalent) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);
  JobConf conf = WordCountJob("/words", 2);
  conf.SetBool(kConfHistoryEnabled, true);
  conf.SetBool(kConfProfileEnabled, true);

  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JobReport& live = result->report;
  ASSERT_FALSE(live.profile.empty()) << "profiled run must carry a profile";

  // The live tree has both task roots; the reduce root carries the shuffle
  // child with the fetched-batch accounting.
  ASSERT_EQ(live.profile.roots.size(), 2u);
  const obs::OperatorProfile* reduce = nullptr;
  for (const obs::OperatorProfile& root : live.profile.roots) {
    if (root.name == "reduce") reduce = &root;
  }
  ASSERT_NE(reduce, nullptr);
  ASSERT_FALSE(reduce->children.empty());
  EXPECT_EQ(reduce->children[0].name, "shuffle");
  EXPECT_GT(reduce->children[0].batches, 0u);

  // Derived counters flushed at commit.
  EXPECT_EQ(live.counters.Get(kCounterProfOperators),
            static_cast<int64_t>(obs::NumProfileOperators(live.profile)));
  EXPECT_GT(live.counters.Get(kCounterProfTasksProfiled), 0);

  auto jsonl = ReadJobHistory(cluster.local_store(0), 1);
  ASSERT_TRUE(jsonl.ok()) << jsonl.status().ToString();
  EXPECT_NE(jsonl->find("\"event\":\"profile\""), std::string::npos);
  EXPECT_NE(jsonl->find("\"event\":\"profile_span\""), std::string::npos);
  auto rebuilt = ReconstructJobReport(*jsonl);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  // Byte-equivalence: the reconstructed profile renders the identical
  // EXPLAIN ANALYZE report, text and JSON.
  EXPECT_EQ(rebuilt->profile.first_start_us, live.profile.first_start_us);
  EXPECT_EQ(rebuilt->profile.last_end_us, live.profile.last_end_us);
  EXPECT_EQ(obs::ExplainAnalyzeJson(rebuilt->profile),
            obs::ExplainAnalyzeJson(live.profile));
  EXPECT_EQ(obs::ExplainAnalyzeText(rebuilt->profile),
            obs::ExplainAnalyzeText(live.profile));
}

TEST(JobHistoryTest, UnprofiledRunLogsNoProfileEvents) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 300);
  JobConf conf = WordCountJob("/words", 1);
  conf.SetBool(kConfHistoryEnabled, true);

  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.profile.empty());

  auto jsonl = ReadJobHistory(cluster.local_store(0), 1);
  ASSERT_TRUE(jsonl.ok());
  EXPECT_EQ(jsonl->find("\"event\":\"profile\""), std::string::npos);
  auto rebuilt = ReconstructJobReport(*jsonl);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->profile.empty());
}

TEST(JobHistoryTest, FailedJobStillWritesParseableHistory) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);
  JobConf conf = WordCountJob("/words", 1);
  conf.job_name = "doomed";
  conf.mapper_factory = [] { return std::make_unique<FailingMapper>(); };
  conf.SetBool(kConfHistoryEnabled, true);

  auto result = RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok()) << "FailingMapper must sink the job";

  auto jsonl = ReadJobHistory(cluster.local_store(0), 1);
  ASSERT_TRUE(jsonl.ok()) << "history persists on the failure path too: "
                          << jsonl.status().ToString();
  EXPECT_NE(jsonl->find("\"ok\":false"), std::string::npos);
  EXPECT_NE(jsonl->find("synthetic fault"), std::string::npos);
  auto rebuilt = ReconstructJobReport(*jsonl);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt->job_name, "doomed");
}

// ---------------------------------------------------------------------------
// Live metrics + straggler detection, end to end
// ---------------------------------------------------------------------------

TEST(MetricsIntegrationTest, SlowMapIsFlaggedAndGaugesSettle) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);

  JobConf conf = WordCountJob("/words", 2);
  conf.mapper_factory = [] { return std::make_unique<SlowFirstMapper>(); };
  conf.SetBool(kConfMetricsEnabled, true);
  conf.SetInt(kConfMetricsIntervalMs, 2);
  conf.SetBool(kConfHistoryEnabled, true);
  conf.SetBool(kConfTraceEnabled, true);
  conf.SetDouble(kConfStragglerThreshold, 2.0);
  conf.SetInt(kConfStragglerMinCompleted, 3);

  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JobReport& report = result->report;

  // The output is still a correct word count.
  int64_t total = 0;
  for (const Row& row : result->output_rows) total += row.Get(1).i64();
  EXPECT_EQ(total, 600);

  // The 250ms map was flagged: job counter, live gauge trajectory, monotone
  // total, and a history event all agree.
  EXPECT_GE(report.counters.Get(kCounterStragglerAttempts), 1);
  ASSERT_FALSE(report.metrics_series.samples.empty());
  EXPECT_GE(report.metrics_series.MaxValue(kMetricStragglersRunning), 1)
      << "poller never saw the straggler gauge high";
  // The 250ms task pins one node's map slot high for ~100 samples; which
  // node is the scheduler's choice, so take the max across all of them.
  int64_t busiest_node = 0;
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    busiest_node = std::max(
        busiest_node, report.metrics_series.MaxValue(
                          StrCat(kMetricRunningMaps, "{node=\"", node, "\"}")));
  }
  EXPECT_GE(busiest_node, 1)
      << "per-node slot occupancy never sampled above zero";

  ASSERT_FALSE(report.metrics_prom.empty());
  EXPECT_NE(report.metrics_prom.find(kMetricStragglersTotal),
            std::string::npos);
  EXPECT_NE(report.metrics_prom.find(
                StrCat(kMetricRunningMaps, "{node=\"0\"}")),
            std::string::npos);

  // After the job, every live gauge settles back to zero — the final sample
  // (taken by Stop after Execute returned) proves the +/- accounting nets
  // out: no leaked slots, queue entries, stragglers, or in-flight bytes.
  const obs::MetricsSample& last = report.metrics_series.samples.back();
  EXPECT_EQ(last.Value(kMetricStragglersRunning), 0);
  EXPECT_EQ(last.Value(kMetricQueuedMaps), 0);
  EXPECT_EQ(last.Value(kMetricQueuedReduces), 0);
  EXPECT_EQ(last.Value(kMetricShuffleBytesInflight), 0);
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    EXPECT_EQ(last.Value(StrCat(kMetricRunningMaps, "{node=\"", node, "\"}")),
              0);
    EXPECT_EQ(
        last.Value(StrCat(kMetricRunningReduces, "{node=\"", node, "\"}")),
        0);
  }

  // Shuffle instrumentation: every published run was eventually fetched.
  const int64_t published =
      cluster.metrics()->shuffle_runs_published()->Value();
  EXPECT_GE(published, 1);
  EXPECT_EQ(cluster.metrics()->shuffle_runs_fetched()->Value(), published);

  // The history log carries the straggler event with its evidence.
  auto jsonl = ReadJobHistory(cluster.local_store(0), 1);
  ASSERT_TRUE(jsonl.ok()) << jsonl.status().ToString();
  EXPECT_NE(jsonl->find("\"event\":\"straggler\""), std::string::npos);
  EXPECT_NE(jsonl->find("\"elapsed_us\":"), std::string::npos);
}

TEST(MetricsIntegrationTest, MetricsOffKeepsRegistryQuiet) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 120);
  auto result = RunJob(&cluster, WordCountJob("/words", 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Without kConfMetricsEnabled nothing samples and nothing counts.
  EXPECT_TRUE(result->report.metrics_series.samples.empty());
  EXPECT_TRUE(result->report.metrics_prom.empty());
  EXPECT_EQ(cluster.metrics()->attempts_finished(true, "succeeded")->Value(),
            0);
  EXPECT_EQ(cluster.metrics()->shuffle_runs_published()->Value(), 0);
  // And without kConfHistoryEnabled no history file appears.
  EXPECT_FALSE(ReadJobHistory(cluster.local_store(0), 1).ok());
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
