#include <gtest/gtest.h>

#include "hive/hive_plan.h"
#include "ssb/loader.h"
#include "ssb/queries.h"

namespace clydesdale {
namespace hive {
namespace {

class HivePlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);
    ssb::SsbLoadOptions load;
    load.scale_factor = 0.002;
    auto dataset = ssb::LoadSsb(cluster_, load);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
  }

  static core::StarSchema HiveStar() {
    core::StarSchema star = dataset_->star;
    *star.mutable_fact() = dataset_->fact_rcfile;
    return star;
  }

  static HivePlan Compile(const std::string& id) {
    auto spec = ssb::QueryById(id);
    CLY_CHECK(spec.ok());
    auto plan = CompileHivePlan(HiveStar(), *spec, "/tmp/hive");
    CLY_CHECK(plan.ok());
    return std::move(*plan);
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* HivePlanTest::cluster_ = nullptr;
ssb::SsbDataset* HivePlanTest::dataset_ = nullptr;

TEST_F(HivePlanTest, OneJoinStagePerDimension) {
  EXPECT_EQ(Compile("Q1.1").joins.size(), 1u);
  EXPECT_EQ(Compile("Q2.1").joins.size(), 3u);
  EXPECT_EQ(Compile("Q4.1").joins.size(), 4u);
}

TEST_F(HivePlanTest, StagesChainThroughIntermediateTables) {
  const HivePlan plan = Compile("Q2.1");
  EXPECT_EQ(plan.joins[0].fact_table, dataset_->fact_rcfile.path);
  for (size_t i = 1; i < plan.joins.size(); ++i) {
    EXPECT_EQ(plan.joins[i].fact_table, plan.joins[i - 1].output_table);
  }
  EXPECT_EQ(plan.agg.input_table, plan.joins.back().output_table);
}

TEST_F(HivePlanTest, StageOneReadsOnlyNeededFactColumns) {
  const HivePlan plan = Compile("Q2.1");
  // FKs + lo_revenue; no predicate columns for Q2.1.
  EXPECT_EQ(plan.joins[0].fact_cols,
            (std::vector<std::string>{"lo_orderdate", "lo_partkey",
                                      "lo_suppkey", "lo_revenue"}));
}

TEST_F(HivePlanTest, ForeignKeysDropAfterTheirJoin) {
  const HivePlan plan = Compile("Q2.1");
  // After joining date on lo_orderdate, that key is gone from the output.
  for (const std::string& c : plan.joins[0].fact_out_cols) {
    EXPECT_NE(c, "lo_orderdate");
  }
  // But later keys survive until their own stage.
  EXPECT_NE(std::find(plan.joins[0].fact_out_cols.begin(),
                      plan.joins[0].fact_out_cols.end(), "lo_partkey"),
            plan.joins[0].fact_out_cols.end());
}

TEST_F(HivePlanTest, AuxColumnsAccumulateThroughStages) {
  const HivePlan plan = Compile("Q2.1");
  // d_year joins in stage 1 and must still be in the last stage's output.
  const SchemaPtr final_schema = plan.joins.back().output_schema;
  EXPECT_GE(final_schema->IndexOf("d_year"), 0);
  EXPECT_GE(final_schema->IndexOf("p_brand1"), 0);
  EXPECT_GE(final_schema->IndexOf("lo_revenue"), 0);
}

TEST_F(HivePlanTest, PredicateOnlyColumnsDropAfterStageOne) {
  const HivePlan plan = Compile("Q1.1");
  // lo_discount is both a predicate and an aggregate input: kept. But
  // lo_quantity is predicate-only: read in stage 1, dropped afterwards.
  const auto& stage = plan.joins[0];
  EXPECT_NE(std::find(stage.fact_cols.begin(), stage.fact_cols.end(),
                      "lo_quantity"),
            stage.fact_cols.end());
  EXPECT_EQ(std::find(stage.fact_out_cols.begin(), stage.fact_out_cols.end(),
                      "lo_quantity"),
            stage.fact_out_cols.end());
  EXPECT_NE(std::find(stage.fact_out_cols.begin(), stage.fact_out_cols.end(),
                      "lo_discount"),
            stage.fact_out_cols.end());
}

TEST_F(HivePlanTest, DimProjectionIncludesPkPredicateAndAux) {
  const HivePlan plan = Compile("Q3.1");
  const auto& customer_stage = plan.joins[0];
  EXPECT_EQ(customer_stage.dim_table, "/ssb/customer");
  EXPECT_NE(std::find(customer_stage.dim_cols.begin(),
                      customer_stage.dim_cols.end(), "c_custkey"),
            customer_stage.dim_cols.end());
  EXPECT_NE(std::find(customer_stage.dim_cols.begin(),
                      customer_stage.dim_cols.end(), "c_region"),
            customer_stage.dim_cols.end());
  EXPECT_NE(std::find(customer_stage.dim_cols.begin(),
                      customer_stage.dim_cols.end(), "c_nation"),
            customer_stage.dim_cols.end());
}

TEST_F(HivePlanTest, AggStageDeclaresGroupsAndAggregates) {
  const HivePlan plan = Compile("Q3.1");
  EXPECT_EQ(plan.agg.group_by,
            (std::vector<std::string>{"c_nation", "s_nation", "d_year"}));
  EXPECT_EQ(plan.agg.output_schema->num_fields(), 4);
  EXPECT_EQ(plan.agg.output_schema->field(3).name, "revenue");
  EXPECT_EQ(plan.agg.output_schema->field(3).type, TypeKind::kInt64);
}

TEST_F(HivePlanTest, FlightOneHasEmptyGroupBy) {
  const HivePlan plan = Compile("Q1.1");
  EXPECT_TRUE(plan.agg.group_by.empty());
  EXPECT_EQ(plan.agg.output_schema->num_fields(), 1);
}

TEST_F(HivePlanTest, JoinStrategyNames) {
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kRepartition), "repartition");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kMapJoin), "mapjoin");
}

}  // namespace
}  // namespace hive
}  // namespace clydesdale
