#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "mapreduce/job_trace.h"
#include "obs/chrome_trace.h"
#include "obs/histogram.h"
#include "obs/json_util.h"
#include "obs/trace.h"

namespace clydesdale {
namespace obs {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.ToString(), "count=0");
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 10);
  EXPECT_EQ(h.Sum(), 55);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  // Values < 32 land in unit buckets, so quantiles are exact.
  EXPECT_EQ(h.Percentile(0.5), 5);
  EXPECT_EQ(h.Percentile(1.0), 10);
  EXPECT_EQ(h.Percentile(0.0), 1);
}

TEST(HistogramTest, LargeValuesBoundedRelativeError) {
  Histogram h;
  for (int64_t v = 1000; v <= 100000; v += 1000) h.Record(v);
  // Sub-bucketing guarantees <= 1/32 relative error on quantile bounds.
  const int64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 46000);
  EXPECT_LE(p50, 52000);
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
  EXPECT_LE(h.Percentile(0.99), h.Max());
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  Histogram h;
  h.Record(1'000'000);  // single value: every quantile is that value
  EXPECT_EQ(h.Percentile(0.0), 1'000'000);
  EXPECT_EQ(h.Percentile(0.5), 1'000'000);
  EXPECT_EQ(h.Percentile(1.0), 1'000'000);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Min(), 0);
}

TEST(HistogramTest, MergeFromAccumulates) {
  Histogram a, b;
  a.Record(1);
  a.Record(100);
  b.Record(50);
  b.Record(7000);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 4);
  EXPECT_EQ(a.Sum(), 7151);
  EXPECT_EQ(a.Min(), 1);
  EXPECT_EQ(a.Max(), 7000);
  Histogram empty;
  a.MergeFrom(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.Count(), 4);
}

TEST(HistogramTest, ToStringShowsPercentiles) {
  Histogram h;
  for (int64_t v = 1; v <= 12; ++v) h.Record(v);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=12"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p95="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
  EXPECT_NE(s.find("max=12"), std::string::npos) << s;
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Max(), kPerThread - 1);
}

TEST(JsonUtilTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line1\nline2\ttab"), "\"line1\\nline2\\ttab\"");
  // Control characters without a short escape become \u00XX.
  EXPECT_EQ(JsonQuote(std::string("nul\x01", 4)), "\"nul\\u0001\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x1f')), "\"\\u001f\"");
  std::string out = "prefix:";
  AppendJsonEscaped(&out, "x\"y");
  EXPECT_EQ(out, "prefix:x\\\"y") << "append form adds no quotes";
}

TEST(JsonUtilTest, JsonDoubleRoundTripsExactly) {
  for (double v : {0.0, 0.1, 1.0 / 3.0, 123456.789, 2.5e-17}) {
    const std::string s = JsonDouble(v);
    EXPECT_EQ(strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(HistogramRegistryTest, GetCreatesFindDoesNot) {
  HistogramRegistry registry;
  EXPECT_EQ(registry.Find("absent"), nullptr);
  Histogram* h = registry.Get("map_micros");
  ASSERT_NE(h, nullptr);
  h->Record(42);
  EXPECT_EQ(registry.Get("map_micros"), h) << "stable pointer";
  ASSERT_NE(registry.Find("map_micros"), nullptr);
  EXPECT_EQ(registry.Find("map_micros")->Count(), 1);

  HistogramRegistry copy = registry;
  ASSERT_NE(copy.Find("map_micros"), nullptr);
  EXPECT_EQ(copy.Find("map_micros")->Count(), 1);
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.at("map_micros").Count(), 1);
}

/// Task-local histograms merging into one shared registry concurrently —
/// the hot-path pattern the Histogram doc comment prescribes. Run under
/// TSan via the tsan CMake preset.
TEST(HistogramRegistryTest, ConcurrentMergeFromDropsNothing) {
  HistogramRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kTasksPerThread = 25;
  constexpr int kRecordsPerTask = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int task = 0; task < kTasksPerThread; ++task) {
        Histogram local;
        for (int i = 0; i < kRecordsPerTask; ++i) local.Record(i);
        registry.Get("map_micros")->MergeFrom(local);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Histogram* merged = registry.Find("map_micros");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->Count(), kThreads * kTasksPerThread * kRecordsPerTask);
  EXPECT_EQ(merged->Max(), kRecordsPerTask - 1);
  EXPECT_EQ(merged->Sum(), static_cast<int64_t>(kThreads) * kTasksPerThread *
                               (kRecordsPerTask * (kRecordsPerTask - 1) / 2));
}

TEST(TraceTest, RecordsNestedSpans) {
  TraceRecorder recorder;
  {
    Span task(&recorder, "map-task", "task", /*task=*/3, /*node=*/1);
    {
      Span probe(&recorder, "probe", "stage", 3, 1);
    }
    {
      Span aggregate(&recorder, "aggregate", "stage", 3, 1);
    }
  }
  std::vector<SpanRecord> spans = recorder.Drain();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted parent-first: the enclosing task span leads.
  EXPECT_EQ(spans[0].name, "map-task");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "probe");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "aggregate");
  EXPECT_EQ(spans[2].depth, 1);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.task, 3);
    EXPECT_EQ(s.node, 1);
    EXPECT_GE(s.start_us, 0);
    EXPECT_GE(s.dur_us, 0);
    EXPECT_LE(s.end_us(), spans[0].end_us()) << "children fit in parent";
  }
}

TEST(TraceTest, NullRecorderIsInertAndEndIdempotent) {
  Span span(nullptr, "never-recorded", "stage");
  span.End();
  span.End();  // double-End must be harmless

  TraceRecorder recorder;
  {
    Span real(&recorder, "once", "stage");
    real.End();
    real.End();
  }
  EXPECT_EQ(recorder.num_spans(), 1u) << "End is idempotent";
}

TEST(TraceTest, DrainMovesSpansOut) {
  TraceRecorder recorder;
  { Span s(&recorder, "a", "stage"); }
  EXPECT_EQ(recorder.Drain().size(), 1u);
  EXPECT_TRUE(recorder.Drain().empty()) << "second drain is empty";
  { Span s(&recorder, "b", "stage"); }
  EXPECT_EQ(recorder.Drain().size(), 1u) << "recorder usable after drain";
}

/// Four concurrent producers (the shape of 4 map slots): every span must
/// land, tids must be distinct per thread, nesting depths must be
/// per-thread consistent. Run under TSan via the tsan CMake preset.
TEST(TraceTest, ConcurrentProducersDropNothing) {
  TraceRecorder recorder;
  constexpr int kSlots = 4;
  constexpr int kTasksPerSlot = 50;
  std::vector<std::thread> slots;
  for (int slot = 0; slot < kSlots; ++slot) {
    slots.emplace_back([&recorder, slot] {
      for (int i = 0; i < kTasksPerSlot; ++i) {
        Span task(&recorder, "map-task", "task", slot * kTasksPerSlot + i,
                  slot);
        Span stage(&recorder, "probe", "stage", slot * kTasksPerSlot + i,
                   slot);
      }
    });
  }
  for (std::thread& t : slots) t.join();

  std::vector<SpanRecord> spans = recorder.Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(2 * kSlots * kTasksPerSlot));
  std::set<int> tids;
  int tasks = 0, stages = 0;
  for (const SpanRecord& s : spans) {
    tids.insert(s.tid);
    if (s.name == "map-task") {
      ++tasks;
      EXPECT_EQ(s.depth, 0);
    } else {
      ++stages;
      EXPECT_EQ(s.depth, 1) << "stage nests inside its task span";
    }
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kSlots));
  EXPECT_EQ(tasks, kSlots * kTasksPerSlot);
  EXPECT_EQ(stages, kSlots * kTasksPerSlot);
}

TEST(TraceTest, SecondRecorderDoesNotInheritCachedBuffers) {
  // Threads cache their buffer in a thread_local keyed by recorder id; a
  // new recorder on the same thread must not see the old one's buffer.
  auto first = std::make_unique<TraceRecorder>();
  { Span s(first.get(), "old", "stage"); }
  EXPECT_EQ(first->num_spans(), 1u);
  first.reset();
  TraceRecorder second;
  { Span s(&second, "new", "stage"); }
  std::vector<SpanRecord> spans = second.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "new");
}

TEST(ChromeTraceTest, EmitsOneCompleteEventPerSpan) {
  TraceRecorder recorder;
  {
    Span task(&recorder, "map-task", "task", 7, 2);
    Span stage(&recorder, "hash-build", "stage", 7, 2);
  }
  const std::string json = ChromeTraceJson(recorder.Drain(), "wordcount");
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("wordcount"), std::string::npos);
  EXPECT_NE(json.find("\"map-task\""), std::string::npos);
  EXPECT_NE(json.find("\"hash-build\""), std::string::npos);
  // Structural sanity: braces and brackets balance.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Two "X" complete events (one per span).
  size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, 2u);
}

TEST(ChromeTraceTest, EscapesSpanNames) {
  TraceRecorder recorder;
  { Span s(&recorder, "weird \"name\"\\path", "stage"); }
  const std::string json = ChromeTraceJson(recorder.Drain(), "job");
  EXPECT_NE(json.find("weird \\\"name\\\"\\\\path"), std::string::npos)
      << json;
}

TEST(ChromeTraceTest, WriteCreatesReadableFile) {
  TraceRecorder recorder;
  { Span s(&recorder, "span", "stage"); }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(WriteChromeTrace(recorder.Drain(), "job", path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace obs

namespace mr {
namespace {

TaskReport MakeTask(int index, hdfs::NodeId node, double wall, bool is_map) {
  TaskReport t;
  t.index = index;
  t.node = node;
  t.is_map = is_map;
  t.wall_seconds = wall;
  return t;
}

JobReport SyntheticReport() {
  JobReport report;
  report.job_name = "synthetic";
  report.num_nodes = 3;
  report.map_tasks = {MakeTask(0, 0, 0.1, true), MakeTask(1, 2, 0.4, true),
                      MakeTask(2, 1, 0.1, true)};
  report.reduce_tasks = {MakeTask(0, 1, 0.2, false),
                         MakeTask(1, 0, 0.05, false)};
  report.wall_seconds = 0.9;
  return report;
}

TEST(CriticalPathTest, FallsBackToTaskWallsWithoutSpans) {
  const JobReport report = SyntheticReport();
  const CriticalPathReport path = CriticalPath(report);
  EXPECT_EQ(path.slowest_map, 1);
  EXPECT_EQ(path.slowest_map_node, 2);
  EXPECT_DOUBLE_EQ(path.slowest_map_seconds, 0.4);
  EXPECT_NEAR(path.map_skew, 0.4 / 0.2, 1e-9);
  EXPECT_EQ(path.slowest_reduce, 0);
  EXPECT_EQ(path.slowest_reduce_node, 1);
  EXPECT_NEAR(path.reduce_skew, 0.2 / 0.125, 1e-9);
  // No phase spans: phase durations fall back to the slowest task.
  EXPECT_DOUBLE_EQ(path.map_phase_seconds, 0.4);
  EXPECT_DOUBLE_EQ(path.reduce_phase_seconds, 0.2);

  const std::string s = path.ToString();
  EXPECT_NE(s.find("m-1@node2"), std::string::npos) << s;
  EXPECT_NE(s.find("shuffle barrier"), std::string::npos) << s;
  EXPECT_NE(s.find("r-0@node1"), std::string::npos) << s;
}

TEST(CriticalPathTest, PrefersPhaseSpans) {
  JobReport report = SyntheticReport();
  auto phase = [](const char* name, int64_t start_us, int64_t dur_us) {
    obs::SpanRecord s;
    s.name = name;
    s.category = "phase";
    s.start_us = start_us;
    s.dur_us = dur_us;
    return s;
  };
  report.spans = {phase("setup", 0, 50'000), phase("map-phase", 50'000, 450'000),
                  phase("reduce-phase", 500'000, 300'000),
                  phase("commit", 800'000, 100'000)};
  const CriticalPathReport path = CriticalPath(report);
  EXPECT_DOUBLE_EQ(path.setup_seconds, 0.05);
  EXPECT_DOUBLE_EQ(path.map_phase_seconds, 0.45);
  EXPECT_DOUBLE_EQ(path.reduce_phase_seconds, 0.3);
  EXPECT_DOUBLE_EQ(path.commit_seconds, 0.1);
}

TEST(CriticalPathTest, MapOnlyJobHasNoReduceLeg) {
  JobReport report = SyntheticReport();
  report.reduce_tasks.clear();
  const CriticalPathReport path = CriticalPath(report);
  EXPECT_EQ(path.slowest_reduce, -1);
  EXPECT_NE(path.ToString().find("map-only"), std::string::npos);
}

TEST(TimelineTest, ShowsBarsHistogramsAndCriticalPath) {
  JobReport report = SyntheticReport();
  obs::SpanRecord job;
  job.name = "synthetic";
  job.category = "job";
  job.dur_us = 900'000;
  obs::SpanRecord task;
  task.name = "map-task";
  task.category = "task";
  task.task = 1;
  task.node = 2;
  task.start_us = 50'000;
  task.dur_us = 400'000;
  task.depth = 1;
  obs::SpanRecord stage;
  stage.name = "probe";
  stage.category = "stage";
  stage.dur_us = 1000;
  report.spans = {job, task, stage};
  report.histograms.Get(kHistMapTaskMicros)->Record(400'000);

  const std::string text = TimelineText(report);
  EXPECT_NE(text.find("synthetic timeline"), std::string::npos) << text;
  EXPECT_NE(text.find("map-task #1 @node2"), std::string::npos) << text;
  EXPECT_EQ(text.find("probe"), std::string::npos)
      << "stage spans stay out of the timeline: " << text;
  EXPECT_NE(text.find(kHistMapTaskMicros), std::string::npos) << text;
  EXPECT_NE(text.find("critical path"), std::string::npos) << text;
  EXPECT_NE(text.find('#'), std::string::npos) << "proportional bars";
}

TEST(SummaryTest, ShowsPercentileTriples) {
  JobReport report = SyntheticReport();
  for (int64_t v : {1000, 2000, 3000}) {
    report.histograms.Get(kHistMapTaskMicros)->Record(v);
  }
  report.histograms.Get(kHistShuffleFetchBytes)->Record(4096);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("map p50/p95/p99="), std::string::npos) << summary;
  EXPECT_NE(summary.find("shuffle-fetch p50/p95/p99="), std::string::npos)
      << summary;
}

TEST(JobTraceFilesTest, WritesTraceAndTimeline) {
  JobReport report = SyntheticReport();
  obs::SpanRecord job;
  job.name = "synthetic";
  job.category = "job";
  job.dur_us = 900'000;
  report.spans = {job};
  ASSERT_TRUE(WriteJobTrace(report, ::testing::TempDir(), 7).ok());
  const std::string base = ::testing::TempDir() + "/synthetic-7";
  EXPECT_TRUE(std::ifstream(base + ".trace.json").good());
  EXPECT_TRUE(std::ifstream(base + ".timeline.txt").good());
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
