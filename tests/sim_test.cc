#include <gtest/gtest.h>

#include "sim/cluster_spec.h"
#include "sim/event_sim.h"
#include "sim/hadoop_cost_model.h"
#include "sim/workload.h"
#include "ssb/loader.h"
#include "ssb/queries.h"

namespace clydesdale {
namespace sim {
namespace {

ClusterSpec TinySpec() {
  ClusterSpec spec = ClusterSpec::ClusterA();
  spec.worker_nodes = 2;
  spec.map_slots = 2;
  spec.hdfs_scan_bw_per_node = 100e6;
  spec.local_disk_bw = 100e6;
  spec.net_bw = 100e6;
  spec.task_launch_s = 0;
  spec.job_startup_s = 0;
  return spec;
}

TaskProfile ScanTask(double bytes, int node = -1) {
  TaskProfile t;
  t.hdfs_read_bytes = bytes;
  t.node = node;
  return t;
}

TEST(EventSimTest, EmptyStageTakesOnlyStartup) {
  StageProfile stage;
  stage.name = "empty";
  stage.startup_s = 7;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->seconds, 7.0);
  EXPECT_EQ(result->num_tasks, 0);
}

TEST(EventSimTest, SingleScanTaskIsBandwidthBound) {
  StageProfile stage;
  stage.tasks = {ScanTask(500e6, 0)};  // 500 MB at 100 MB/s
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 5.0, 0.01);
}

TEST(EventSimTest, ScanBandwidthIsSharedOnANode) {
  // Two concurrent scanners on one node halve each other's rate: total time
  // equals one task reading both files.
  StageProfile stage;
  stage.tasks = {ScanTask(100e6, 0), ScanTask(100e6, 0)};
  stage.slots_per_node = 2;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 2.0, 0.01);
}

TEST(EventSimTest, SlotsLimitConcurrency) {
  // Four equal tasks, one slot: strictly serial.
  StageProfile stage;
  for (int i = 0; i < 4; ++i) stage.tasks.push_back(ScanTask(100e6, 0));
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 4.0, 0.01);
}

TEST(EventSimTest, CpuOverlapsWithScan) {
  TaskProfile t = ScanTask(100e6, 0);  // 1 s of I/O
  t.cpu_s = 3.0;                       // but 3 s of CPU
  StageProfile stage;
  stage.tasks = {t};
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 3.0, 0.01);  // max, not sum
}

TEST(EventSimTest, SetupSerializesBeforeWork) {
  TaskProfile t = ScanTask(100e6, 0);
  t.setup_s = 2.0;
  StageProfile stage;
  stage.tasks = {t};
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 3.0, 0.01);  // 2 s setup + 1 s scan
}

TEST(EventSimTest, UnpinnedTasksBalanceAcrossNodes) {
  // Four tasks, two nodes, one slot each: 2 waves, not 4.
  StageProfile stage;
  for (int i = 0; i < 4; ++i) stage.tasks.push_back(ScanTask(100e6));
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 2.0, 0.01);
}

TEST(EventSimTest, NetworkDirectionsAreIndependent) {
  TaskProfile sender;
  sender.net_out_bytes = 100e6;
  sender.node = 0;
  TaskProfile receiver;
  receiver.net_in_bytes = 100e6;
  receiver.node = 0;
  StageProfile stage;
  stage.tasks = {sender, receiver};
  stage.slots_per_node = 2;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  // Full duplex: in and out do not contend.
  EXPECT_NEAR(result->seconds, 1.0, 0.01);
}

TEST(EventSimTest, ZeroDemandTasksFinishImmediately) {
  StageProfile stage;
  stage.tasks.assign(5, TaskProfile{});
  stage.slots_per_node = 1;
  auto result = SimulateStage(TinySpec(), stage);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->seconds, 0.0, 1e-9);
}

TEST(EventSimTest, RejectsBadPinning) {
  StageProfile stage;
  stage.tasks = {ScanTask(1e6, 99)};
  EXPECT_FALSE(SimulateStage(TinySpec(), stage).ok());
}

TEST(EventSimTest, StagesRunSequentially) {
  StageProfile a;
  a.name = "a";
  a.tasks = {ScanTask(100e6, 0)};
  a.slots_per_node = 1;
  StageProfile b = a;
  b.name = "b";
  auto outcome = SimulateStages(TinySpec(), {a, b});
  ASSERT_TRUE(outcome.ok());
  EXPECT_NEAR(outcome->seconds, 2.0, 0.01);
  EXPECT_EQ(outcome->stages.size(), 2u);
}

TEST(ClusterSpecTest, PaperTopologies) {
  const ClusterSpec a = ClusterSpec::ClusterA();
  EXPECT_EQ(a.worker_nodes, 8);
  EXPECT_EQ(a.map_slots, 6);
  EXPECT_EQ(a.reduce_slots, 1);
  EXPECT_EQ(a.mem_bytes, 16ULL * 1000 * 1000 * 1000);
  EXPECT_EQ(a.disks_per_node, 8);
  const ClusterSpec b = ClusterSpec::ClusterB();
  EXPECT_EQ(b.worker_nodes, 40);
  EXPECT_EQ(b.mem_bytes, 32ULL * 1000 * 1000 * 1000);
  EXPECT_EQ(b.disks_per_node, 5);
  EXPECT_LT(b.hive_map_ns_per_row, a.hive_map_ns_per_row);
}

// ---------------------------------------------------------------------------
// Workload measurement + cost model, over a small loaded dataset.
// ---------------------------------------------------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 3;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);
    ssb::SsbLoadOptions load;
    load.scale_factor = 0.01;
    auto dataset = ssb::LoadSsb(cluster_, load);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
  }

  static QueryMeasurement Measure(const std::string& id) {
    auto spec = ssb::QueryById(id);
    CLY_CHECK(spec.ok());
    auto m = MeasureQuery(cluster_, *dataset_, *spec);
    CLY_CHECK(m.ok());
    return std::move(*m);
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* WorkloadTest::cluster_ = nullptr;
ssb::SsbDataset* WorkloadTest::dataset_ = nullptr;

TEST_F(WorkloadTest, WidthsAreSane) {
  const QueryMeasurement m = Measure("Q2.1");
  // Q2.1 projects 4 int32 columns -> at most ~16 B/row plain columnar; the
  // CIF v3 block encodings only ever shrink a block, so the stored width
  // lands somewhere in (0, 16] and the full row well under its ~60 B plain
  // footprint.
  EXPECT_GT(m.cif_projected_width, 1.0);
  EXPECT_LE(m.cif_projected_width, 17.0);
  EXPECT_GT(m.cif_full_width, 10.0);
  EXPECT_LT(m.cif_full_width, 75.0);
  EXPECT_GT(m.rcfile_full_width, m.cif_full_width);
}

TEST_F(WorkloadTest, SelectivitiesFollowTheSpec) {
  const QueryMeasurement m = Measure("Q2.1");
  ASSERT_EQ(m.dims.size(), 3u);
  // Date join has no predicate: every date qualifies.
  EXPECT_EQ(m.dims[0].name, "date");
  EXPECT_EQ(m.dims[0].entries, m.dims[0].rows);
  EXPECT_FALSE(m.dims[0].scales_with_sf);
  // p_category = MFGR#12 is 1 of 25 categories.
  EXPECT_EQ(m.dims[1].name, "part");
  EXPECT_NEAR(static_cast<double>(m.dims[1].entries) / m.dims[1].rows, 0.04,
              0.02);
  // s_region = AMERICA is 1 of 5 regions.
  EXPECT_EQ(m.dims[2].name, "supplier");
  EXPECT_NEAR(static_cast<double>(m.dims[2].entries) / m.dims[2].rows, 0.2,
              0.15);
}

TEST_F(WorkloadTest, SurvivorsShrinkMonotonically) {
  const QueryMeasurement m = Measure("Q3.1");
  ASSERT_EQ(m.survivors_after.size(), 3u);
  EXPECT_GE(m.predicate_survivors, m.survivors_after[0]);
  EXPECT_GE(m.survivors_after[0], m.survivors_after[1]);
  EXPECT_GE(m.survivors_after[1], m.survivors_after[2]);
  EXPECT_GT(m.groups, 0u);
}

TEST_F(WorkloadTest, DimScaleFollowsSsbGrowth) {
  const QueryMeasurement m = Measure("Q4.1");
  for (const DimStat& dim : m.dims) {
    const double k = DimScaleFactor(dim, 0.01, 1000.0);
    if (dim.name == "date") {
      EXPECT_DOUBLE_EQ(k, 1.0);
    } else if (dim.name == "part") {
      // Part grows with log2(sf), far slower than the 100,000x fact growth.
      EXPECT_LT(k, 5000.0);
      EXPECT_GT(k, 100.0);
    } else {
      // Linear growth, except that tiny scale factors hit the generator's
      // row-count floor (supplier has 25 rows at sf 0.01, not 20).
      const auto measured = ssb::CardinalitiesFor(0.01);
      const auto target = ssb::CardinalitiesFor(1000.0);
      const double expected =
          dim.name == "customer"
              ? static_cast<double>(target.customers) / measured.customers
              : static_cast<double>(target.suppliers) / measured.suppliers;
      EXPECT_DOUBLE_EQ(k, expected) << dim.name;
    }
  }
}

TEST_F(WorkloadTest, ClydesdaleModelMatchesPaperScale) {
  const QueryMeasurement m = Measure("Q2.1");
  ModelOptions options;
  auto outcome = ModelClydesdale(ClusterSpec::ClusterA(), m, options);
  ASSERT_TRUE(outcome.ok());
  // Paper §6.3: 215 s. Reproduce within a factor of 1.5.
  EXPECT_GT(outcome->seconds, 215.0 / 1.5);
  EXPECT_LT(outcome->seconds, 215.0 * 1.5);
}

TEST_F(WorkloadTest, HiveRepartitionModelMatchesPaperScale) {
  const QueryMeasurement m = Measure("Q2.1");
  ModelOptions options;
  auto outcome = ModelHive(ClusterSpec::ClusterA(), m,
                           hive::JoinStrategy::kRepartition, options);
  ASSERT_TRUE(outcome.ok());
  // Paper §6.3: 17,700 s. Reproduce within a factor of 1.5.
  EXPECT_GT(outcome->seconds, 17700.0 / 1.5);
  EXPECT_LT(outcome->seconds, 17700.0 * 1.5);
}

TEST_F(WorkloadTest, MapJoinOomPatternMatchesPaper) {
  // Paper §6.4: Q3.1, Q4.1-Q4.3 OOM on cluster A; everything runs on B.
  ModelOptions options;
  for (const char* id :
       {"Q1.1", "Q2.1", "Q2.3", "Q3.1", "Q3.2", "Q4.1", "Q4.2", "Q4.3"}) {
    const QueryMeasurement m = Measure(id);
    auto a = ModelHive(ClusterSpec::ClusterA(), m,
                       hive::JoinStrategy::kMapJoin, options);
    auto b = ModelHive(ClusterSpec::ClusterB(), m,
                       hive::JoinStrategy::kMapJoin, options);
    ASSERT_TRUE(a.ok()) << id;
    ASSERT_TRUE(b.ok()) << id;
    const std::string sid(id);
    const bool expect_oom_on_a =
        sid == "Q3.1" || sid == "Q4.1" || sid == "Q4.2" || sid == "Q4.3";
    EXPECT_EQ(a->oom, expect_oom_on_a) << id << ": " << a->oom_detail;
    EXPECT_FALSE(b->oom) << id << ": " << b->oom_detail;
  }
}

TEST_F(WorkloadTest, ClydesdaleBeatsHiveEverywhere) {
  ModelOptions options;
  for (const ClusterSpec& spec :
       {ClusterSpec::ClusterA(), ClusterSpec::ClusterB()}) {
    for (const core::StarQuerySpec& q : ssb::AllQueries()) {
      auto m = MeasureQuery(cluster_, *dataset_, q);
      ASSERT_TRUE(m.ok());
      auto cly = ModelClydesdale(spec, *m, options);
      auto rp =
          ModelHive(spec, *m, hive::JoinStrategy::kRepartition, options);
      ASSERT_TRUE(cly.ok());
      ASSERT_TRUE(rp.ok());
      EXPECT_GT(rp->seconds, cly->seconds * 3)
          << q.id << " on cluster " << spec.name;
    }
  }
}

TEST_F(WorkloadTest, AblationsAlwaysSlowDown) {
  ModelOptions full;
  for (const core::StarQuerySpec& q : ssb::AllQueries()) {
    auto m = MeasureQuery(cluster_, *dataset_, q);
    ASSERT_TRUE(m.ok());
    auto base = ModelClydesdale(ClusterSpec::ClusterA(), *m, full);
    ASSERT_TRUE(base.ok());
    for (int which = 0; which < 3; ++which) {
      ModelOptions ablated = full;
      if (which == 0) ablated.block_iteration = false;
      if (which == 1) ablated.columnar = false;
      if (which == 2) ablated.multithreaded = false;
      auto slower = ModelClydesdale(ClusterSpec::ClusterA(), *m, ablated);
      ASSERT_TRUE(slower.ok());
      EXPECT_GE(slower->seconds, base->seconds * 0.999)
          << q.id << " ablation " << which;
    }
  }
}

TEST_F(WorkloadTest, TestDfsIoShowsHdfsBelowRaw) {
  for (const ClusterSpec& spec :
       {ClusterSpec::ClusterA(), ClusterSpec::ClusterB()}) {
    const DfsIoModel model = ModelTestDfsIo(spec, 1000.0, 2);
    EXPECT_LT(model.read_mb_per_s, model.raw_disk_mb_per_s * 0.5)
        << spec.name;
    EXPECT_LE(model.write_mb_per_s, model.read_mb_per_s) << spec.name;
  }
}

}  // namespace
}  // namespace sim
}  // namespace clydesdale
