#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace clydesdale {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IoError("disk gone");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "disk gone");
  EXPECT_EQ(st.ToString(), "IOError: disk gone");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("x");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(copy.message(), "x");
  EXPECT_EQ(st.message(), "x");
}

TEST(StatusTest, WithContextPrefixes) {
  Status st = Status::Internal("boom").WithContext("stage 2");
  EXPECT_EQ(st.message(), "stage 2: boom");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::IoError("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Status UseAssignOrReturn(int v, int* out) {
  CLY_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status st = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Random a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(HashTest, Mix64SpreadsBits) {
  EXPECT_NE(Mix64(1), Mix64(2));
  // Mix64 is a bijective finalizer; 0 maps to 0 by construction.
  EXPECT_EQ(Mix64(0), 0u);
  EXPECT_NE(Mix64(1) >> 32, 0u);  // high bits populated
}

TEST(HashTest, HashStringStable) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a||c", '|'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", '|'), (std::vector<std::string>{""}));
}

TEST(StringsTest, StrJoinRoundTrips) {
  EXPECT_EQ(StrJoin({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("n=", 42, "!"), "n=42!");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(87), "87 B");
  EXPECT_EQ(HumanBytes(12000), "12 KB");
  EXPECT_EQ(HumanBytes(334000000000ULL), "334 GB");
  EXPECT_EQ(HumanBytes(1500), "1.5 KB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.5), "500 ms");
  EXPECT_EQ(HumanSeconds(95.0), "95.0 s");
  EXPECT_EQ(HumanSeconds(600.0), "10.0 min");
}

TEST(StringsTest, PadBothDirections) {
  EXPECT_EQ(Pad("ab", 4), "ab  ");
  EXPECT_EQ(Pad("ab", -4), "  ab");
  EXPECT_EQ(Pad("abcdef", 4), "abcdef");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/ssb/lineorder", "/ssb"));
  EXPECT_FALSE(StartsWith("/x", "/ssb"));
  EXPECT_TRUE(EndsWith("data.col", ".col"));
  EXPECT_FALSE(EndsWith("data.col", ".rc"));
}

TEST(LoggingTest, ScopedLogContextNestsAndRestores) {
  EXPECT_EQ(LogContext(), "");
  {
    ScopedLogContext job("q2.1");
    EXPECT_EQ(LogContext(), "q2.1");
    {
      ScopedLogContext task("q2.1/m-17@node3");
      EXPECT_EQ(LogContext(), "q2.1/m-17@node3");
    }
    EXPECT_EQ(LogContext(), "q2.1");
  }
  EXPECT_EQ(LogContext(), "");
}

TEST(LoggingTest, LogContextIsPerThread) {
  ScopedLogContext mine("main-thread");
  std::string seen_in_thread;
  std::thread other([&] {
    seen_in_thread = LogContext();  // must not inherit the main thread's
    ScopedLogContext theirs("worker");
    EXPECT_EQ(LogContext(), "worker");
  });
  other.join();
  EXPECT_EQ(seen_in_thread, "");
  EXPECT_EQ(LogContext(), "main-thread");
}

TEST(LoggingTest, ContextAppearsInEmittedLines) {
  ScopedLogContext context("job/m-17@node3");
  testing::internal::CaptureStderr();
  CLY_LOG(Warning) << "slow task";
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("[job/m-17@node3] "), std::string::npos) << line;
  EXPECT_NE(line.find("slow task"), std::string::npos) << line;
}

TEST(LoggingTest, NoContextMeansNoBracket) {
  testing::internal::CaptureStderr();
  CLY_LOG(Warning) << "plain line";
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("] plain line"), std::string::npos) << line;
  EXPECT_EQ(line.find("] [", line.find("common_test")), std::string::npos)
      << line;
}

}  // namespace
}  // namespace clydesdale
