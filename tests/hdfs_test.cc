#include <gtest/gtest.h>

#include <set>

#include "hdfs/dfs.h"
#include "hdfs/local_store.h"

namespace clydesdale {
namespace hdfs {
namespace {

DfsOptions SmallDfs(int nodes = 4, uint64_t block = 1024, int repl = 3) {
  DfsOptions options;
  options.num_nodes = nodes;
  options.block_size = block;
  options.replication = repl;
  return options;
}

std::string Bytes(size_t n, char fill = 'x') { return std::string(n, fill); }

TEST(DfsTest, WriteReadRoundTrip) {
  MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.WriteFile("/a/b.txt", "hello world").ok());
  auto contents = dfs.ReadFileToString("/a/b.txt");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
}

TEST(DfsTest, CreateRejectsDuplicateAndBadPaths) {
  MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.WriteFile("/f", "x").ok());
  EXPECT_EQ(dfs.WriteFile("/f", "y").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dfs.WriteFile("relative", "y").code(),
            StatusCode::kInvalidArgument);
}

TEST(DfsTest, OpenMissingFileFails) {
  MiniDfs dfs(SmallDfs());
  EXPECT_TRUE(dfs.Open("/nope").status().IsNotFound());
}

TEST(DfsTest, MultiBlockFileSplitsAtBlockSize) {
  MiniDfs dfs(SmallDfs(4, 1024));
  ASSERT_TRUE(dfs.WriteFile("/big", Bytes(2500)).ok());
  auto info = dfs.Stat("/big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->length, 2500u);
  ASSERT_EQ(info->blocks.size(), 3u);
  EXPECT_EQ(info->blocks[0].length, 1024u);
  EXPECT_EQ(info->blocks[2].length, 452u);
}

TEST(DfsTest, ReplicationFactorHonored) {
  MiniDfs dfs(SmallDfs(5, 1024, 3));
  ASSERT_TRUE(dfs.WriteFile("/r", Bytes(100)).ok());
  auto info = dfs.Stat("/r");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->blocks.size(), 1u);
  EXPECT_EQ(info->blocks[0].replicas.size(), 3u);
  std::set<NodeId> distinct(info->blocks[0].replicas.begin(),
                            info->blocks[0].replicas.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(DfsTest, ReplicationCappedByClusterSize) {
  MiniDfs dfs(SmallDfs(2, 1024, 3));
  ASSERT_TRUE(dfs.WriteFile("/r", Bytes(10)).ok());
  auto info = dfs.Stat("/r");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks[0].replicas.size(), 2u);
}

TEST(DfsTest, PReadAcrossBlockBoundary) {
  MiniDfs dfs(SmallDfs(4, 16));
  std::string data = "0123456789abcdefghijklmnop";
  ASSERT_TRUE(dfs.WriteFile("/d", data).ok());
  auto reader = dfs.Open("/d");
  ASSERT_TRUE(reader.ok());
  char buf[10];
  ASSERT_TRUE((*reader)->PRead(12, buf, 8).ok());
  EXPECT_EQ(std::string(buf, 8), data.substr(12, 8));
  EXPECT_FALSE((*reader)->PRead(20, buf, 10).ok());  // past EOF
}

TEST(DfsTest, SequentialReadAndSeek) {
  MiniDfs dfs(SmallDfs(4, 8));
  ASSERT_TRUE(dfs.WriteFile("/d", "abcdefghij").ok());
  auto reader = dfs.Open("/d");
  ASSERT_TRUE(reader.ok());
  char buf[4];
  auto n = (*reader)->Read(buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string(buf, 4), "abcd");
  ASSERT_TRUE((*reader)->Seek(8).ok());
  n = (*reader)->Read(buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);  // only 2 bytes left
  EXPECT_EQ(std::string(buf, 2), "ij");
  n = (*reader)->Read(buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // EOF
}

TEST(DfsTest, IoStatsAttributeLocality) {
  MiniDfs dfs(SmallDfs(4, 1024, 2));
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(100)).ok());
  auto info = dfs.Stat("/d");
  ASSERT_TRUE(info.ok());
  const NodeId holder = info->blocks[0].replicas[0];
  NodeId outsider = 0;
  while (std::find(info->blocks[0].replicas.begin(),
                   info->blocks[0].replicas.end(),
                   outsider) != info->blocks[0].replicas.end()) {
    ++outsider;
  }

  IoStats local_stats;
  auto local_reader = dfs.Open("/d", holder, &local_stats);
  ASSERT_TRUE(local_reader.ok());
  char buf[100];
  ASSERT_TRUE((*local_reader)->PRead(0, buf, 100).ok());
  EXPECT_EQ(local_stats.local_bytes_read, 100u);
  EXPECT_EQ(local_stats.remote_bytes_read, 0u);

  IoStats remote_stats;
  auto remote_reader = dfs.Open("/d", outsider, &remote_stats);
  ASSERT_TRUE(remote_reader.ok());
  ASSERT_TRUE((*remote_reader)->PRead(0, buf, 100).ok());
  EXPECT_EQ(remote_stats.local_bytes_read, 0u);
  EXPECT_EQ(remote_stats.remote_bytes_read, 100u);
}

TEST(DfsTest, WriteAccountingCountsReplicas) {
  MiniDfs dfs(SmallDfs(4, 1024, 3));
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(100)).ok());
  EXPECT_EQ(dfs.TotalIo().bytes_written, 300u);
}

TEST(DfsTest, DeleteRemovesReplicas) {
  MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(100)).ok());
  ASSERT_TRUE(dfs.Delete("/d").ok());
  EXPECT_FALSE(dfs.Exists("/d"));
  uint64_t stored = 0;
  for (int n = 0; n < dfs.num_nodes(); ++n) {
    stored += dfs.data_node(n)->StoredBytes();
  }
  EXPECT_EQ(stored, 0u);
}

TEST(DfsTest, ListByPrefix) {
  MiniDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.WriteFile("/t/a", "1").ok());
  ASSERT_TRUE(dfs.WriteFile("/t/b", "2").ok());
  ASSERT_TRUE(dfs.WriteFile("/u/c", "3").ok());
  EXPECT_EQ(dfs.List("/t/"), (std::vector<std::string>{"/t/a", "/t/b"}));
  auto removed = dfs.DeleteRecursive("/t/");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2);
  EXPECT_TRUE(dfs.List("/t/").empty());
}

TEST(DfsTest, KilledNodeFallsBackToSurvivingReplica) {
  MiniDfs dfs(SmallDfs(4, 1024, 2));
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(64, 'z')).ok());
  auto info = dfs.Stat("/d");
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(dfs.KillDataNode(info->blocks[0].replicas[0]).ok());
  auto contents = dfs.ReadFileToString("/d");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, Bytes(64, 'z'));
}

TEST(DfsTest, AllReplicasLostIsAnError) {
  MiniDfs dfs(SmallDfs(4, 1024, 2));
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(64)).ok());
  auto info = dfs.Stat("/d");
  ASSERT_TRUE(info.ok());
  for (NodeId n : info->blocks[0].replicas) {
    ASSERT_TRUE(dfs.KillDataNode(n).ok());
  }
  EXPECT_FALSE(dfs.ReadFileToString("/d").ok());
}

TEST(DfsTest, ReReplicateRestoresFactor) {
  MiniDfs dfs(SmallDfs(4, 1024, 3));
  ASSERT_TRUE(dfs.WriteFile("/d", Bytes(200)).ok());
  auto info = dfs.Stat("/d");
  ASSERT_TRUE(info.ok());
  const NodeId victim = info->blocks[0].replicas[0];
  ASSERT_TRUE(dfs.KillDataNode(victim).ok());
  ASSERT_TRUE(dfs.ReviveDataNode(victim).ok());  // comes back empty

  auto copied = dfs.ReReplicate();
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(*copied, 200u);
  auto info2 = dfs.Stat("/d");
  ASSERT_TRUE(info2.ok());
  int live = 0;
  for (NodeId n : info2->blocks[0].replicas) {
    if (dfs.data_node(n)->HasReplica(info2->blocks[0].id)) ++live;
  }
  EXPECT_EQ(live, 3);
}

TEST(PlacementTest, ColocationGroupsAlignAcrossFiles) {
  MiniDfs dfs(SmallDfs(6, 64, 3));
  // Two "column" files in one group, three blocks each.
  for (const char* path : {"/tbl/a.col", "/tbl/b.col"}) {
    auto writer = dfs.Create(path, "/tbl");
    ASSERT_TRUE(writer.ok());
    for (int split = 0; split < 3; ++split) {
      ASSERT_TRUE((*writer)->AppendString(Bytes(40)).ok());
      ASSERT_TRUE((*writer)->CloseBlock().ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  for (int split = 0; split < 3; ++split) {
    auto a = dfs.BlockLocations("/tbl/a.col", split);
    auto b = dfs.BlockLocations("/tbl/b.col", split);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "split " << split;
  }
}

TEST(PlacementTest, UngroupedFilesSpreadIndependently) {
  MiniDfs dfs(SmallDfs(8, 64, 1));
  for (const char* path : {"/x", "/y", "/z", "/w"}) {
    ASSERT_TRUE(dfs.WriteFile(path, Bytes(40)).ok());
  }
  std::set<NodeId> used;
  for (const char* path : {"/x", "/y", "/z", "/w"}) {
    auto locations = dfs.BlockLocations(path, 0);
    ASSERT_TRUE(locations.ok());
    used.insert((*locations)[0]);
  }
  EXPECT_GT(used.size(), 1u);  // random spread uses several nodes
}

TEST(LocalStoreTest, WriteReadDeleteWipe) {
  LocalStore store(3);
  ASSERT_TRUE(store.Write("/dim/customer", {1, 2, 3}).ok());
  EXPECT_TRUE(store.Exists("/dim/customer"));
  auto data = store.Read("/dim/customer");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->size(), 3u);
  EXPECT_EQ(store.bytes_read(), 3u);
  EXPECT_EQ(store.bytes_written(), 3u);
  ASSERT_TRUE(store.Delete("/dim/customer").ok());
  EXPECT_TRUE(store.Read("/dim/customer").status().IsNotFound());
  ASSERT_TRUE(store.Write("/a", {1}).ok());
  store.Wipe();
  EXPECT_FALSE(store.Exists("/a"));
}

}  // namespace
}  // namespace hdfs
}  // namespace clydesdale
