#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "common/strings.h"
#include "core/clydesdale.h"
#include "hive/hive_engine.h"
#include "mapreduce/counters.h"
#include "mapreduce/job_trace.h"
#include "obs/query_profile.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"

namespace clydesdale {
namespace {

/// Shared fixture: one loaded SSB cluster reused across all queries (loading
/// dominates test time).
class EngineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 4;
    copts.map_slots_per_node = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);

    ssb::SsbLoadOptions options;
    options.scale_factor = 0.002;
    auto dataset = ssb::LoadSsb(cluster_, options);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
    dataset_ = nullptr;
    cluster_ = nullptr;
  }

  static core::StarSchema HiveStar() {
    core::StarSchema star = dataset_->star;
    *star.mutable_fact() = dataset_->fact_rcfile;
    return star;
  }

  static std::vector<Row> Reference(const core::StarQuerySpec& spec) {
    auto rows = ssb::ExecuteReference(cluster_, dataset_->star, spec);
    CLY_CHECK(rows.ok());
    return std::move(*rows);
  }

  static void ExpectRowsEqual(const std::vector<Row>& expected,
                              const std::vector<Row>& actual,
                              const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i])
          << label << " row " << i << ": expected "
          << expected[i].ToString() << " got " << actual[i].ToString();
    }
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* EngineIntegrationTest::cluster_ = nullptr;
ssb::SsbDataset* EngineIntegrationTest::dataset_ = nullptr;

class AllQueriesTest : public EngineIntegrationTest,
                       public ::testing::WithParamInterface<std::string> {};

TEST_P(AllQueriesTest, ClydesdaleMatchesReference) {
  auto spec = ssb::QueryById(GetParam());
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "clydesdale " + GetParam());
  EXPECT_EQ(result->stage_reports.size(), 1u) << "one MR job per query";
}

TEST_P(AllQueriesTest, HiveRepartitionMatchesReference) {
  auto spec = ssb::QueryById(GetParam());
  ASSERT_TRUE(spec.ok());
  hive::HiveOptions options;
  options.strategy = hive::JoinStrategy::kRepartition;
  hive::HiveEngine engine(cluster_, HiveStar(), options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "hive-rp " + GetParam());
  // One MR job per dimension + group-by + order-by (paper §6.3).
  EXPECT_EQ(result->stage_reports.size(), spec->dims.size() + 2);
}

TEST_P(AllQueriesTest, HiveMapJoinMatchesReference) {
  auto spec = ssb::QueryById(GetParam());
  ASSERT_TRUE(spec.ok());
  hive::HiveOptions options;
  options.strategy = hive::JoinStrategy::kMapJoin;
  hive::HiveEngine engine(cluster_, HiveStar(), options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "hive-mj " + GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Ssb, AllQueriesTest,
    ::testing::Values("Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1",
                      "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"),
    [](const auto& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '.'), name.end());
      return name;
    });

TEST_F(EngineIntegrationTest, AblationTogglesPreserveResults) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  const std::vector<Row> expected = Reference(*spec);

  for (int mask = 0; mask < 16; ++mask) {
    core::ClydesdaleOptions options;
    options.block_iteration = (mask & 1) != 0;
    options.columnar = (mask & 2) != 0;
    options.multithreaded = (mask & 4) != 0;
    options.late_materialize = (mask & 8) != 0;
    core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
    auto result = engine.Execute(*spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " mask " << mask;
    ExpectRowsEqual(expected, result->rows,
                    "ablation mask " + std::to_string(mask));
  }
}

TEST_F(EngineIntegrationTest, LateMaterializationPrunesAndMatches) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());

  core::ClydesdaleOptions eager;
  eager.late_materialize = false;
  core::ClydesdaleEngine eager_engine(cluster_, dataset_->star, eager);
  auto eager_result = eager_engine.Execute(*spec);
  ASSERT_TRUE(eager_result.ok()) << eager_result.status().ToString();
  EXPECT_EQ(eager_result->Counter(mr::kCounterCifRowsPruned), 0);

  core::ClydesdaleEngine late_engine(cluster_, dataset_->star, {});
  auto late_result = late_engine.Execute(*spec);
  ASSERT_TRUE(late_result.ok()) << late_result.status().ToString();
  ExpectRowsEqual(eager_result->rows, late_result->rows, "late-mat A/B");

  // Q2.1 joins a filtered dimension (p_category = MFGR#12), so the pushed
  // key filter must prune fact rows before the probe ever sees them.
  EXPECT_GT(late_result->Counter(mr::kCounterCifRowsPruned), 0);
  EXPECT_LT(late_result->Counter(core::kCounterProbeRows),
            eager_result->Counter(core::kCounterProbeRows));
}

TEST_F(EngineIntegrationTest, NonColumnarReadsMoreBytes) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());

  core::ClydesdaleEngine columnar(cluster_, dataset_->star, {});
  core::ClydesdaleOptions wide_options;
  wide_options.columnar = false;
  core::ClydesdaleEngine wide(cluster_, dataset_->star, wide_options);

  auto narrow_result = columnar.Execute(*spec);
  auto wide_result = wide.Execute(*spec);
  ASSERT_TRUE(narrow_result.ok());
  ASSERT_TRUE(wide_result.ok());
  const auto bytes = [](const core::QueryResult& r) {
    uint64_t total = 0;
    for (const auto& report : r.stage_reports) {
      total += report.TotalMapInputBytes();
    }
    return total;
  };
  // Q2.1 touches 4 of 17 columns; reading everything must cost ~3-4x more.
  EXPECT_GT(bytes(*wide_result), bytes(*narrow_result) * 2);
}

TEST_F(EngineIntegrationTest, JvmReuseBuildsHashTablesOncePerNode) {
  auto spec = ssb::QueryById("Q3.1");
  ASSERT_TRUE(spec.ok());

  core::ClydesdaleOptions options;
  options.multisplit_size = 2;  // force several tasks per node
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());

  const int64_t builds = result->Counter(core::kCounterHashBuilds);
  const int64_t dims = static_cast<int64_t>(spec->dims.size());
  EXPECT_EQ(builds, dims * cluster_->num_nodes())
      << "hash tables must be built exactly once per node (paper §5.2)";
  EXPECT_GT(result->stage_reports[0].map_tasks.size(),
            static_cast<size_t>(cluster_->num_nodes()));
}

TEST_F(EngineIntegrationTest, WithoutJvmReuseEveryTaskBuilds) {
  auto spec = ssb::QueryById("Q3.1");
  ASSERT_TRUE(spec.ok());

  core::ClydesdaleOptions options;
  options.multithreaded = false;  // stock mappers
  options.jvm_reuse = false;
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());

  const int64_t builds = result->Counter(core::kCounterHashBuilds);
  const int64_t tasks =
      static_cast<int64_t>(result->stage_reports[0].map_tasks.size());
  EXPECT_EQ(builds, tasks * static_cast<int64_t>(spec->dims.size()))
      << "without reuse every map task rebuilds every table";
}

TEST_F(EngineIntegrationTest, MapSideAggOffStillCorrectViaCombiner) {
  auto spec = ssb::QueryById("Q3.2");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleOptions options;
  options.map_side_agg = false;
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());
  ExpectRowsEqual(Reference(*spec), result->rows, "combiner path");
  EXPECT_GT(result->Counter(mr::kCounterCombineInputRecords), 0);
}

TEST_F(EngineIntegrationTest, SurvivesDimensionReplicaLoss) {
  auto spec = ssb::QueryById("Q2.2");
  ASSERT_TRUE(spec.ok());
  // Wipe one node's local dimension cache: tasks there must re-fetch the
  // master copy from HDFS (paper §4) and still produce correct results.
  cluster_->local_store(1)->Wipe();
  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "replica loss");
  // The wiped node now has its replicas back.
  for (const auto& [name, dim] : dataset_->star.dims()) {
    if (name == "part" || name == "supplier" || name == "date") {
      EXPECT_TRUE(cluster_->local_store(1)->Exists(dim.local_path)) << name;
    }
  }
}

TEST_F(EngineIntegrationTest, SingleMapTaskPerNodeWhenMultithreaded) {
  auto spec = ssb::QueryById("Q2.3");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());
  // Default multisplit packing: one map task per node that holds data.
  EXPECT_LE(result->stage_reports[0].map_tasks.size(),
            static_cast<size_t>(cluster_->num_nodes()));
}

TEST_F(EngineIntegrationTest, ClydesdaleMapsAreDataLocal) {
  auto spec = ssb::QueryById("Q1.1");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());
  const auto& report = result->stage_reports[0];
  for (const auto& task : report.map_tasks) {
    EXPECT_TRUE(task.data_local) << "task " << task.index;
    EXPECT_EQ(task.hdfs_remote_bytes, 0u) << "task " << task.index;
  }
}

TEST_F(EngineIntegrationTest, TracedRunEmitsSpansTimelineAndCriticalPath) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  const std::string trace_dir =
      ::testing::TempDir() + "/cly_traced_q21";
  std::filesystem::remove_all(trace_dir);  // stale files from earlier runs
  std::filesystem::create_directories(trace_dir);

  core::ClydesdaleOptions options;
  options.trace = true;
  options.trace_dir = trace_dir;
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "traced Q2.1");

  ASSERT_EQ(result->stage_reports.size(), 1u);
  const mr::JobReport& report = result->stage_reports[0];
  ASSERT_FALSE(report.spans.empty());

  // The span taxonomy covers the job, its phases, tasks, and the
  // star-join stages (hash-table amortisation + probe).
  std::set<std::string> names;
  for (const obs::SpanRecord& span : report.spans) names.insert(span.name);
  for (const char* expected :
       {"setup", "map-phase", "map-task", "hash-tables", "probe"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  // Phase spans partition the job: their sum must account for the wall
  // time (small scheduling gaps allowed; the absolute slack covers one
  // stray scheduler timeslice landing between spans on a tiny run under
  // parallel test load). The derived shuffle-overlap span has category
  // "overlap", not "phase" — it deliberately double-counts map time.
  double phase_sum = 0;
  for (const obs::SpanRecord& span : report.spans) {
    if (std::string_view(span.category) == "phase") {
      phase_sum += static_cast<double>(span.dur_us) * 1e-6;
    }
  }
  EXPECT_NEAR(phase_sum, report.wall_seconds,
              0.05 * report.wall_seconds + 0.010);

  // Summary surfaces the latency/volume distributions.
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("map p50/p95/p99="), std::string::npos) << summary;

  // The critical path names the straggler chain out of this report.
  const mr::CriticalPathReport path = mr::CriticalPath(report);
  EXPECT_GE(path.slowest_map, 0);
  EXPECT_GT(path.map_phase_seconds, 0);
  EXPECT_GE(path.map_skew, 1.0);
  const std::string chain = path.ToString();
  EXPECT_NE(chain.find(StrCat("m-", path.slowest_map, "@node",
                              path.slowest_map_node)),
            std::string::npos)
      << chain;
  if (!report.reduce_tasks.empty()) {
    // Pipelined shuffle prints "shuffle overlap"; a run where no reducer
    // fetched before the last map finished keeps the barrier wording.
    const bool names_handoff =
        chain.find("shuffle barrier") != std::string::npos ||
        chain.find("shuffle overlap") != std::string::npos;
    EXPECT_TRUE(names_handoff) << chain;
  }

  // Trace + timeline files landed in the requested directory.
  bool saw_trace = false, saw_timeline = false;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".trace.json") != std::string::npos) {
      saw_trace = true;
      std::ifstream file(entry.path());
      std::string content((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
      EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
      EXPECT_NE(content.find("\"map-task\""), std::string::npos);
    }
    if (name.find(".timeline.txt") != std::string::npos) saw_timeline = true;
  }
  EXPECT_TRUE(saw_trace);
  EXPECT_TRUE(saw_timeline);

  // Standard counters flow through a traced star-join run too.
  EXPECT_GT(result->Counter(mr::kCounterMapInputRecords), 0);
  EXPECT_GT(result->Counter(mr::kCounterHdfsReadOps), 0);
}

TEST_F(EngineIntegrationTest, TracingOffRecordsNoSpans) {
  auto spec = ssb::QueryById("Q1.1");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok());
  for (const mr::JobReport& report : result->stage_reports) {
    EXPECT_TRUE(report.spans.empty());
    // Histograms stay on regardless: they feed Summary() percentiles.
    ASSERT_NE(report.histograms.Find(mr::kHistMapTaskMicros), nullptr);
    EXPECT_GT(report.histograms.Find(mr::kHistMapTaskMicros)->Count(), 0);
  }
}

TEST_F(EngineIntegrationTest, HiveStagesEachEmitTraces) {
  auto spec = ssb::QueryById("Q1.1");
  ASSERT_TRUE(spec.ok());
  const std::string trace_dir = ::testing::TempDir() + "/hive_traced_q11";
  std::filesystem::remove_all(trace_dir);  // stale files from earlier runs
  std::filesystem::create_directories(trace_dir);

  hive::HiveOptions options;
  options.strategy = hive::JoinStrategy::kMapJoin;
  options.trace = true;
  options.trace_dir = trace_dir;
  hive::HiveEngine engine(cluster_, HiveStar(), options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "traced hive Q1.1");

  // Every stage job recorded spans; the map-join stages show the per-task
  // hash reload Clydesdale's JVM reuse amortises away.
  ASSERT_EQ(result->stage_reports.size(), spec->dims.size() + 2);
  bool saw_hash_load = false;
  for (const mr::JobReport& report : result->stage_reports) {
    EXPECT_FALSE(report.spans.empty()) << report.job_name;
    for (const obs::SpanRecord& span : report.spans) {
      if (span.name == "hash-load") saw_hash_load = true;
    }
  }
  EXPECT_TRUE(saw_hash_load);
  size_t trace_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    if (entry.path().string().find(".trace.json") != std::string::npos) {
      ++trace_files;
    }
  }
  EXPECT_EQ(trace_files, result->stage_reports.size());
}

/// Depth-first lookup of the first operator whose name starts with `prefix`.
const obs::OperatorProfile* FindOperator(const obs::OperatorProfile& node,
                                         const std::string& prefix) {
  if (node.name.rfind(prefix, 0) == 0) return &node;
  for (const obs::OperatorProfile& child : node.children) {
    if (const obs::OperatorProfile* hit = FindOperator(child, prefix)) {
      return hit;
    }
  }
  return nullptr;
}

TEST_F(EngineIntegrationTest, ProfiledRunSurfacesPerOperatorMemory) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleOptions options;
  options.profile = true;
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsEqual(Reference(*spec), result->rows, "profiled Q2.1");

  ASSERT_EQ(result->stage_reports.size(), 1u);
  const obs::QueryProfile& profile = result->stage_reports[0].profile;
  ASSERT_FALSE(profile.empty());

  // Every memory-bearing operator reports a non-zero footprint: the scan's
  // arena-held blocks, the probe's resident dimension tables, the partial
  // aggregation table, and the reducer's fetched shuffle runs.
  for (const char* op : {"scan:", "probe", "aggregate", "shuffle"}) {
    const obs::OperatorProfile* found = nullptr;
    for (const obs::OperatorProfile& root : profile.roots) {
      if ((found = FindOperator(root, op)) != nullptr) break;
    }
    ASSERT_NE(found, nullptr) << "missing operator " << op;
    EXPECT_GT(found->mem_peak_bytes, 0u) << op << " peak";
    EXPECT_GT(found->mem_current_bytes, 0u) << op << " current";
    EXPECT_GE(found->mem_peak_bytes, found->mem_current_bytes) << op;
  }

  // The task roots carry the attempt trackers' totals, and the rendered
  // EXPLAIN ANALYZE surfaces the per-operator line.
  const std::string text = obs::ExplainAnalyzeText(profile);
  EXPECT_NE(text.find("mem cur/peak="), std::string::npos) << text;
  // Job counters recorded the budget-relevant peaks.
  EXPECT_GT(result->Counter(mr::kCounterMemJobPeakBytes), 0);
  // With the query done, nothing is left charged against the cluster.
  EXPECT_EQ(cluster_->mem_tracker()->consumed(), 0);
}

TEST_F(EngineIntegrationTest, MemBudgetRejectsOversizedQueryAtAdmission) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  core::ClydesdaleOptions options;
  options.mem_budget_bytes = 64;  // far below any dim-table estimate
  core::ClydesdaleEngine engine(cluster_, dataset_->star, options);
  auto result = engine.Execute(*spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("admission"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(cluster_->mem_tracker()->consumed(), 0)
      << "rejected queries never charge the cluster";

  // A generous budget admits and completes the same query, and drains.
  core::ClydesdaleOptions roomy;
  roomy.mem_budget_bytes = uint64_t{1} << 32;
  core::ClydesdaleEngine ok_engine(cluster_, dataset_->star, roomy);
  auto ok = ok_engine.Execute(*spec);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ExpectRowsEqual(Reference(*spec), ok->rows, "budgeted Q2.1");
  EXPECT_EQ(cluster_->mem_tracker()->consumed(), 0);
  EXPECT_EQ(ok->Counter(mr::kCounterMemBudgetBytes),
            static_cast<int64_t>(roomy.mem_budget_bytes));
}

TEST_F(EngineIntegrationTest, ConcurrentQueriesShareTheCluster) {
  // Two different queries run simultaneously against the same cluster;
  // both must be correct (exercises thread safety of the DFS, table cache,
  // shuffle, and shared-state registries under concurrent jobs).
  auto q1 = ssb::QueryById("Q2.1");
  auto q2 = ssb::QueryById("Q3.2");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  const std::vector<Row> expected1 = Reference(*q1);
  const std::vector<Row> expected2 = Reference(*q2);

  core::ClydesdaleEngine engine(cluster_, dataset_->star, {});
  Status st1, st2;
  std::vector<Row> rows1, rows2;
  std::thread t1([&] {
    for (int i = 0; i < 3; ++i) {
      auto r = engine.Execute(*q1);
      if (!r.ok()) {
        st1 = r.status();
        return;
      }
      rows1 = std::move(r->rows);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 3; ++i) {
      auto r = engine.Execute(*q2);
      if (!r.ok()) {
        st2 = r.status();
        return;
      }
      rows2 = std::move(r->rows);
    }
  });
  t1.join();
  t2.join();
  ASSERT_TRUE(st1.ok()) << st1.ToString();
  ASSERT_TRUE(st2.ok()) << st2.ToString();
  ExpectRowsEqual(expected1, rows1, "concurrent Q2.1");
  ExpectRowsEqual(expected2, rows2, "concurrent Q3.2");
}

}  // namespace
}  // namespace clydesdale
