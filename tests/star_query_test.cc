#include <gtest/gtest.h>

#include "core/star_query.h"
#include "ssb/queries.h"

namespace clydesdale {
namespace core {
namespace {

StarQuerySpec TwoDimSpec() {
  StarQuerySpec spec;
  spec.id = "T";
  spec.fact_predicate = Predicate::Lt("f_qty", Value(int32_t{10}));
  spec.dims = {
      {"d1", "f_k1", "d1_pk", Predicate::True(), {"d1_a", "d1_b"}},
      {"d2", "f_k2", "d2_pk", Predicate::True(), {}},
  };
  spec.aggregates = {{"total", Expr::Mul(Expr::Col("f_qty"),
                                         Expr::Col("f_price"))}};
  spec.group_by = {"d1_a"};
  spec.order_by = {{"total", false}};
  return spec;
}

TEST(StarQueryTest, FactColumnsCoverFksPredicatesAndAggregates) {
  const auto cols = FactColumnsFor(TwoDimSpec());
  EXPECT_EQ(cols, (std::vector<std::string>{"f_k1", "f_k2", "f_qty",
                                            "f_price"}));
}

TEST(StarQueryTest, FactColumnsDeduplicated) {
  StarQuerySpec spec = TwoDimSpec();
  spec.aggregates.push_back({"qty2", Expr::Col("f_qty")});
  const auto cols = FactColumnsFor(spec);
  EXPECT_EQ(std::count(cols.begin(), cols.end(), "f_qty"), 1);
}

TEST(StarQueryTest, OutputColumnsAreGroupsThenAggregates) {
  EXPECT_EQ(OutputColumnsOf(TwoDimSpec()),
            (std::vector<std::string>{"d1_a", "total"}));
}

TEST(StarQueryTest, ResolveGroupSourcesFindsAuxColumns) {
  auto fact_schema = Schema::Make({{"f_k1", TypeKind::kInt32, 0},
                                   {"f_k2", TypeKind::kInt32, 0},
                                   {"f_qty", TypeKind::kInt32, 0},
                                   {"f_price", TypeKind::kInt32, 0}});
  auto sources = ResolveGroupSources(TwoDimSpec(), *fact_schema);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources->size(), 1u);
  EXPECT_FALSE((*sources)[0].from_fact);
  EXPECT_EQ((*sources)[0].dim_index, 0);
  EXPECT_EQ((*sources)[0].aux_index, 0);
}

TEST(StarQueryTest, ResolveGroupSourcesFallsBackToFact) {
  StarQuerySpec spec = TwoDimSpec();
  spec.group_by = {"f_qty"};
  auto fact_schema = Schema::Make({{"f_qty", TypeKind::kInt32, 0}});
  auto sources = ResolveGroupSources(spec, *fact_schema);
  ASSERT_TRUE(sources.ok());
  EXPECT_TRUE((*sources)[0].from_fact);
  EXPECT_EQ((*sources)[0].fact_index, 0);
}

TEST(StarQueryTest, ResolveGroupSourcesRejectsUnknown) {
  StarQuerySpec spec = TwoDimSpec();
  spec.group_by = {"nowhere"};
  auto fact_schema = Schema::Make({{"f_qty", TypeKind::kInt32, 0}});
  EXPECT_FALSE(ResolveGroupSources(spec, *fact_schema).ok());
}

TEST(StarQueryTest, SortResultRowsHonorsDirectionAndTiebreak) {
  StarQuerySpec spec = TwoDimSpec();  // order by total desc
  std::vector<Row> rows = {
      Row({Value("b"), Value(int64_t{5})}),
      Row({Value("a"), Value(int64_t{9})}),
      Row({Value("c"), Value(int64_t{5})}),
  };
  ASSERT_TRUE(SortResultRows(spec, &rows).ok());
  EXPECT_EQ(rows[0].Get(1).i64(), 9);
  // Equal totals tie-break on the full row: "b" before "c".
  EXPECT_EQ(rows[1].Get(0).str(), "b");
  EXPECT_EQ(rows[2].Get(0).str(), "c");
}

TEST(StarQueryTest, SortResultRowsRejectsUnknownColumn) {
  StarQuerySpec spec = TwoDimSpec();
  spec.order_by = {{"missing", true}};
  std::vector<Row> rows;
  EXPECT_FALSE(SortResultRows(spec, &rows).ok());
}

TEST(StarQueryTest, EmptyOrderByIsCanonical) {
  StarQuerySpec spec = TwoDimSpec();
  spec.order_by.clear();
  std::vector<Row> rows = {
      Row({Value("b"), Value(int64_t{1})}),
      Row({Value("a"), Value(int64_t{2})}),
  };
  ASSERT_TRUE(SortResultRows(spec, &rows).ok());
  EXPECT_EQ(rows[0].Get(0).str(), "a");
}

TEST(StarQueryTest, SsbQ21ReferencesThePaperColumns) {
  auto q = ssb::QueryById("Q2.1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->dims[0].dimension, "date");
  EXPECT_EQ(q->dims[1].fact_fk, "lo_partkey");
  EXPECT_EQ(q->group_by,
            (std::vector<std::string>{"d_year", "p_brand1"}));
  EXPECT_EQ(OutputColumnsOf(*q),
            (std::vector<std::string>{"d_year", "p_brand1", "revenue"}));
}

}  // namespace
}  // namespace core
}  // namespace clydesdale
