#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/clydesdale.h"
#include "core/dim_table_cache.h"
#include "mapreduce/counters.h"
#include "serving/query_server.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace {

// ---------------------------------------------------------------------------
// DimTableCache unit tests (no cluster)
// ---------------------------------------------------------------------------

SchemaPtr CacheDimSchema() {
  return Schema::Make({{"pk", TypeKind::kInt32, 4},
                       {"nation", TypeKind::kString, 10}});
}

std::vector<uint8_t> CacheDimStream(int rows) {
  std::vector<Row> data;
  for (int i = 1; i <= rows; ++i) {
    data.push_back(Row(
        {Value(int32_t{i}), Value(std::string("n") + std::to_string(i % 7))}));
  }
  return storage::EncodeRowStream(data);
}

/// Builder over an in-memory stream that counts real invocations.
core::DimTableCache::Builder CountingBuilder(
    const std::vector<uint8_t>* stream, std::atomic<int>* builds,
    int sleep_ms = 0) {
  return [stream, builds, sleep_ms](
             const std::shared_ptr<obs::MemTracker>& tracker)
             -> Result<std::shared_ptr<const core::DimHashTable>> {
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    builds->fetch_add(1);
    return core::DimHashTable::Build(*CacheDimSchema(), stream->data(),
                                     stream->size(), *Predicate::True(), "pk",
                                     {"nation"}, tracker);
  };
}

core::DimCacheKey KeyFor(const std::string& path, int64_t version = 1,
                         uint64_t fingerprint = 42) {
  return core::DimCacheKey{path, version, fingerprint};
}

TEST(DimTableCacheTest, FingerprintSeparatesPredicatesKeysAndAux) {
  const auto base = core::FilterFingerprint(
      *Predicate::Eq("region", Value("ASIA")), "pk", {"nation"});
  EXPECT_EQ(base, core::FilterFingerprint(*Predicate::Eq("region",
                                                         Value("ASIA")),
                                          "pk", {"nation"}));
  EXPECT_NE(base, core::FilterFingerprint(*Predicate::Eq("region",
                                                         Value("EUROPE")),
                                          "pk", {"nation"}));
  EXPECT_NE(base, core::FilterFingerprint(*Predicate::Eq("region",
                                                         Value("ASIA")),
                                          "pk2", {"nation"}));
  EXPECT_NE(base, core::FilterFingerprint(*Predicate::Eq("region",
                                                         Value("ASIA")),
                                          "pk", {}));
}

TEST(DimTableCacheTest, SecondLookupIsAHit) {
  auto stream = CacheDimStream(50);
  std::atomic<int> builds{0};
  core::DimTableCache cache({});
  bool hit = true;
  auto first = cache.GetOrBuild(KeyFor("/d"), CountingBuilder(&stream, &builds),
                                &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  auto second = cache.GetOrBuild(KeyFor("/d"),
                                 CountingBuilder(&stream, &builds), &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), second->get()) << "one shared table";
  EXPECT_EQ(builds.load(), 1);
  const core::DimTableCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.resident_bytes,
            static_cast<int64_t>((*first)->stats().memory_bytes));
}

TEST(DimTableCacheTest, SingleFlightConcurrentLookupsBuildOnce) {
  auto stream = CacheDimStream(200);
  std::atomic<int> builds{0};
  core::DimTableCache cache({});
  const auto builder = CountingBuilder(&stream, &builds, /*sleep_ms=*/20);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::DimHashTable>> tables(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto table = cache.GetOrBuild(KeyFor("/d"), builder);
      ASSERT_TRUE(table.ok());
      tables[static_cast<size_t>(i)] = *table;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1) << "the build must be single-flighted";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(tables[0].get(), tables[static_cast<size_t>(i)].get());
  }
  const core::DimTableCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
}

TEST(DimTableCacheTest, EvictionFreesBytesOnlyAtLastRefDrop) {
  auto stream = CacheDimStream(100);
  // Measure one table's footprint, then size the cache so a single table
  // fits but two do not.
  auto probe = core::DimHashTable::Build(*CacheDimSchema(), stream.data(),
                                         stream.size(), *Predicate::True(),
                                         "pk", {"nation"});
  ASSERT_TRUE(probe.ok());
  const int64_t bytes = static_cast<int64_t>((*probe)->stats().memory_bytes);
  ASSERT_GT(bytes, 0);

  auto root = obs::MemTracker::Create("test-root");
  std::atomic<int> builds{0};
  core::DimTableCache cache(
      {.capacity_bytes = static_cast<uint64_t>(bytes) * 3 / 2}, root);

  auto a = cache.GetOrBuild(KeyFor("/a"), CountingBuilder(&stream, &builds));
  ASSERT_TRUE(a.ok());
  // Move the table out of the Result so `held` is the only live reference.
  std::shared_ptr<const core::DimHashTable> held = std::move(*a);
  auto b = cache.GetOrBuild(KeyFor("/b"), CountingBuilder(&stream, &builds));
  ASSERT_TRUE(b.ok());

  // Inserting B pushed the ledger over capacity: A (LRU tail) was evicted.
  const core::DimTableCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.resident_bytes, bytes);

  // But the real bytes stay charged while this query still holds the table.
  EXPECT_EQ(root->consumed(), 2 * bytes)
      << "eviction must not free memory a running query is probing";
  held.reset();  // last reference drops -> ScopedMemConsumer releases
  EXPECT_EQ(root->consumed(), bytes);

  // The evicted key rebuilds on next use.
  auto again = cache.GetOrBuild(KeyFor("/a"), CountingBuilder(&stream,
                                                              &builds));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(builds.load(), 3);
}

TEST(DimTableCacheTest, EvictionNeverDropsTheEntryBeingReturned) {
  auto stream = CacheDimStream(100);
  auto probe = core::DimHashTable::Build(*CacheDimSchema(), stream.data(),
                                         stream.size(), *Predicate::True(),
                                         "pk", {"nation"});
  ASSERT_TRUE(probe.ok());
  const uint64_t bytes = (*probe)->stats().memory_bytes;
  std::atomic<int> builds{0};
  // Capacity below a single table: the fresh entry must survive anyway so
  // the caller can probe it; it just stays the only (oversized) resident.
  core::DimTableCache cache({.capacity_bytes = bytes / 2});
  auto a = cache.GetOrBuild(KeyFor("/a"), CountingBuilder(&stream, &builds));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(cache.stats().entries, 1);
  auto b = cache.GetOrBuild(KeyFor("/b"), CountingBuilder(&stream, &builds));
  ASSERT_TRUE(b.ok());
  const core::DimTableCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1) << "A evicted, B kept";
  EXPECT_EQ(stats.evictions, 1);
}

TEST(DimTableCacheTest, InvalidateDropsEveryVersionOfThePath) {
  auto stream = CacheDimStream(30);
  std::atomic<int> builds{0};
  core::DimTableCache cache({});
  ASSERT_TRUE(
      cache.GetOrBuild(KeyFor("/p", 1, 1), CountingBuilder(&stream, &builds))
          .ok());
  ASSERT_TRUE(
      cache.GetOrBuild(KeyFor("/p", 1, 2), CountingBuilder(&stream, &builds))
          .ok());
  ASSERT_TRUE(
      cache.GetOrBuild(KeyFor("/q", 1, 1), CountingBuilder(&stream, &builds))
          .ok());
  EXPECT_EQ(cache.stats().entries, 3);

  cache.Invalidate("/p");
  EXPECT_EQ(cache.stats().entries, 1) << "/q survives";

  bool hit = true;
  ASSERT_TRUE(cache.GetOrBuild(KeyFor("/p", 1, 1),
                               CountingBuilder(&stream, &builds), &hit)
                  .ok());
  EXPECT_FALSE(hit) << "invalidated entries rebuild";
  EXPECT_EQ(builds.load(), 4);
}

TEST(DimTableCacheTest, InvalidateDuringBuildKeepsResultOutOfTheCache) {
  auto stream = CacheDimStream(30);
  std::atomic<int> builds{0};
  std::atomic<bool> building{false};
  std::atomic<bool> release{false};
  core::DimTableCache cache({});

  // Builder parks until the main thread has invalidated the path mid-build.
  const core::DimTableCache::Builder builder =
      [&](const std::shared_ptr<obs::MemTracker>& tracker)
      -> Result<std::shared_ptr<const core::DimHashTable>> {
    building = true;
    while (!release) std::this_thread::yield();
    builds.fetch_add(1);
    return core::DimHashTable::Build(*CacheDimSchema(), stream.data(),
                                     stream.size(), *Predicate::True(), "pk",
                                     {"nation"}, tracker);
  };

  std::thread leader([&] {
    auto table = cache.GetOrBuild(KeyFor("/p"), builder);
    ASSERT_TRUE(table.ok()) << "the leader still gets its table";
    EXPECT_GT((*table)->entries(), 0u);
  });
  while (!building) std::this_thread::yield();
  cache.Invalidate("/p");  // the table under construction is already stale
  release = true;
  leader.join();

  EXPECT_EQ(cache.stats().entries, 0)
      << "a build overtaken by invalidation must not become resident";
  bool hit = true;
  release = true;
  ASSERT_TRUE(
      cache.GetOrBuild(KeyFor("/p"), CountingBuilder(&stream, &builds), &hit)
          .ok());
  EXPECT_FALSE(hit);
}

TEST(DimTableCacheTest, FailedBuildPropagatesAndRetries) {
  auto stream = CacheDimStream(30);
  std::atomic<int> builds{0};
  core::DimTableCache cache({});
  const core::DimTableCache::Builder failing =
      [](const std::shared_ptr<obs::MemTracker>&)
      -> Result<std::shared_ptr<const core::DimHashTable>> {
    return Status::IoError("replica unreadable");
  };
  auto failed = cache.GetOrBuild(KeyFor("/p"), failing);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);

  // The failure is not cached: the next query retries and succeeds.
  bool hit = true;
  auto retried = cache.GetOrBuild(KeyFor("/p"),
                                  CountingBuilder(&stream, &builds), &hit);
  ASSERT_TRUE(retried.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(builds.load(), 1);
}

// ---------------------------------------------------------------------------
// QueryServer integration tests (shared loaded cluster)
// ---------------------------------------------------------------------------

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mr::ClusterOptions copts;
    copts.num_nodes = 4;
    copts.map_slots_per_node = 2;
    copts.dfs_block_size = 256 * 1024;
    cluster_ = new mr::MrCluster(copts);

    ssb::SsbLoadOptions options;
    options.scale_factor = 0.002;
    auto dataset = ssb::LoadSsb(cluster_, options);
    CLY_CHECK(dataset.ok());
    dataset_ = new ssb::SsbDataset(std::move(*dataset));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete cluster_;
    dataset_ = nullptr;
    cluster_ = nullptr;
  }

  static std::vector<Row> Reference(const core::StarQuerySpec& spec) {
    auto rows = ssb::ExecuteReference(cluster_, dataset_->star, spec);
    CLY_CHECK(rows.ok());
    return std::move(*rows);
  }

  static void ExpectRowsEqual(const std::vector<Row>& expected,
                              const std::vector<Row>& actual,
                              const std::string& label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i])
          << label << " row " << i << ": expected " << expected[i].ToString()
          << " got " << actual[i].ToString();
    }
  }

  static mr::MrCluster* cluster_;
  static ssb::SsbDataset* dataset_;
};

mr::MrCluster* ServingTest::cluster_ = nullptr;
ssb::SsbDataset* ServingTest::dataset_ = nullptr;

TEST_F(ServingTest, ColdCacheMatchesPerQueryEngineOnAllShapes) {
  serving::QueryServerOptions options;
  options.result_cache_entries = 0;  // isolate the dim cache
  serving::QueryServer server(cluster_, dataset_->star, options);
  core::ClydesdaleEngine direct(cluster_, dataset_->star, {});

  for (const core::StarQuerySpec& spec : ssb::AllQueries()) {
    server.InvalidateAll();  // every query runs cache-cold
    auto served = server.Execute(spec);
    ASSERT_TRUE(served.ok()) << spec.id << ": " << served.status().ToString();
    auto standalone = direct.Execute(spec);
    ASSERT_TRUE(standalone.ok()) << spec.id;
    ExpectRowsEqual(standalone->rows, served->rows, "cold " + spec.id);
    EXPECT_FALSE(served->from_result_cache);
    EXPECT_GT(served->Counter(mr::kCounterCacheDimMisses), 0) << spec.id;
  }
  EXPECT_EQ(server.stats().queries, 13);
}

TEST_F(ServingTest, WarmRepeatIsProbeOnly) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  serving::QueryServerOptions options;
  options.result_cache_entries = 0;  // force re-execution, not replay
  serving::QueryServer server(cluster_, dataset_->star, options);

  auto cold = server.Execute(*spec);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->Counter(core::kCounterHashBuilds), 0);
  EXPECT_GT(cold->Counter(mr::kCounterCacheDimMisses), 0);

  auto warm = server.Execute(*spec);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectRowsEqual(Reference(*spec), warm->rows, "warm Q2.1");
  EXPECT_EQ(warm->Counter(core::kCounterHashBuilds), 0)
      << "a cache-warm query must not rebuild any dimension table";
  EXPECT_EQ(warm->Counter(mr::kCounterCacheDimMisses), 0);
  EXPECT_GT(warm->Counter(mr::kCounterCacheDimHits), 0);
  EXPECT_GT(warm->Counter(mr::kCounterCacheBytes), 0);
  EXPECT_FALSE(warm->from_result_cache) << "the dim cache, not a replay";
}

TEST_F(ServingTest, ResultCacheServesExactRepeats) {
  auto spec = ssb::QueryById("Q3.2");
  ASSERT_TRUE(spec.ok());
  serving::QueryServer server(cluster_, dataset_->star, {});

  auto first = server.Execute(*spec);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_result_cache);
  auto repeat = server.Execute(*spec);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->from_result_cache) << "exact repeat, no job";
  ExpectRowsEqual(first->rows, repeat->rows, "result-cache Q3.2");

  const serving::QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.result_cache_hits, 1);
}

TEST_F(ServingTest, ExplicitInvalidateForcesRebuildAndBumpsVersion) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  serving::QueryServer server(cluster_, dataset_->star, {});
  ASSERT_TRUE(server.Execute(*spec).ok());

  const auto part = dataset_->star.dim("part");
  ASSERT_TRUE(part.ok());
  const std::string path = (*part)->desc.path;
  const int64_t version_before = cluster_->table_version(path);
  server.Invalidate(path);
  EXPECT_EQ(cluster_->table_version(path), version_before + 1);

  auto after = server.Execute(*spec);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->from_result_cache)
      << "invalidation empties the result cache";
  EXPECT_GT(after->Counter(mr::kCounterCacheDimMisses), 0)
      << "the invalidated dimension rebuilds under its new version";
  ExpectRowsEqual(Reference(*spec), after->rows, "post-invalidate Q2.1");
}

TEST_F(ServingTest, ConcurrentClientsShareOneCache) {
  serving::QueryServerOptions options;
  options.worker_threads = 4;
  options.result_cache_entries = 0;  // every query really executes
  serving::QueryServer server(cluster_, dataset_->star, options);

  const char* ids[] = {"Q1.1", "Q2.1", "Q3.1", "Q2.1", "Q1.1", "Q3.1",
                       "Q2.1", "Q3.1", "Q1.1", "Q2.1", "Q3.1", "Q1.1"};
  std::vector<std::future<Result<core::QueryResult>>> futures;
  for (const char* id : ids) {
    auto spec = ssb::QueryById(id);
    ASSERT_TRUE(spec.ok());
    futures.push_back(server.Submit(*spec));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << ids[i] << ": " << result.status().ToString();
    auto spec = ssb::QueryById(ids[i]);
    ExpectRowsEqual(Reference(*spec), result->rows,
                    std::string("concurrent ") + ids[i]);
  }

  const serving::QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, static_cast<int64_t>(std::size(ids)));
  EXPECT_GT(stats.dim_cache.hits, 0) << "repeats must share built tables";
  EXPECT_GT(stats.dim_cache.resident_bytes, 0);
}

TEST_F(ServingTest, PollerSamplesCacheGauges) {
  auto spec = ssb::QueryById("Q2.1");
  ASSERT_TRUE(spec.ok());
  serving::QueryServerOptions options;
  options.engine.metrics = true;
  options.engine.metrics_interval_ms = 1;
  serving::QueryServer server(cluster_, dataset_->star, options);
  ASSERT_TRUE(server.Execute(*spec).ok());
  ASSERT_TRUE(server.Execute(*spec).ok());  // gauges observed mid-query

  EXPECT_GT(cluster_->metrics()->cache_bytes()->Value(), 0);
  EXPECT_GT(cluster_->metrics()->cache_entries()->Value(), 0);
}

// ---------------------------------------------------------------------------
// Reload mid-stream (own cluster: the reload rewrites the shared tables)
// ---------------------------------------------------------------------------

TEST(ServingReloadTest, ReloadMidStreamNeverProbesStaleEntries) {
  mr::ClusterOptions copts;
  copts.num_nodes = 2;
  copts.map_slots_per_node = 2;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);

  ssb::SsbLoadOptions load;
  load.scale_factor = 0.002;
  load.seed = 7;
  auto first_load = ssb::LoadSsb(&cluster, load);
  ASSERT_TRUE(first_load.ok());

  auto spec = ssb::QueryById("Q3.2");
  ASSERT_TRUE(spec.ok());
  serving::QueryServer server(&cluster, first_load->star, {});
  auto warm = server.Execute(*spec);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(server.Execute(*spec).ok());  // result cache primed too

  // Reload the dataset in place with different contents (new seed): delete
  // every table, regenerate under the same paths. The loader's
  // InvalidateTable calls bump each path's catalog version.
  for (const auto& [name, dim] : first_load->star.dims()) {
    ASSERT_TRUE(cluster.dfs()->DeleteRecursive(dim.desc.path).ok()) << name;
  }
  ASSERT_TRUE(
      cluster.dfs()->DeleteRecursive(first_load->star.fact().path).ok());
  load.seed = 99;
  auto second_load = ssb::LoadSsb(&cluster, load);
  ASSERT_TRUE(second_load.ok());

  // The post-reload query must see only new data: byte-identical to a cold
  // per-query engine over the reloaded tables, never the stale cache.
  auto after = server.Execute(*spec);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->from_result_cache)
      << "versions in the result-cache key make stale replays unreachable";
  EXPECT_GT(after->Counter(mr::kCounterCacheDimMisses), 0)
      << "reloaded dimensions rebuild under their bumped versions";

  core::ClydesdaleEngine cold(&cluster, second_load->star, {});
  auto expected = cold.Execute(*spec);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->rows.size(), after->rows.size());
  for (size_t i = 0; i < expected->rows.size(); ++i) {
    ASSERT_EQ(expected->rows[i], after->rows[i]) << "row " << i;
  }

  auto reference = ssb::ExecuteReference(&cluster, second_load->star, *spec);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->size(), after->rows.size());
  for (size_t i = 0; i < reference->size(); ++i) {
    ASSERT_EQ((*reference)[i], after->rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace clydesdale
