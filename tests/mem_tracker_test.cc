// Hierarchical memory accounting tests: MemTracker tree semantics
// (consume/release/peak propagation, TryConsume all-or-nothing budget
// enforcement), the RAII consumer/charge adapters, exact-byte accounting
// for the big consumers (DimHashTable, HashAggregator, CIF scan arenas),
// budget-enforced job admission and mid-job breach, and concurrent
// consume/release (the tsan preset includes this file).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/mem.h"
#include "common/strings.h"
#include "core/aggregation.h"
#include "core/dim_hash_table.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "obs/mem_tracker.h"
#include "storage/binary_row_format.h"
#include "storage/scan_spec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace obs {
namespace {

TEST(MemTrackerTest, ConsumeReleasePropagateToAncestors) {
  auto root = MemTracker::Create("root");
  auto node = MemTracker::Create("node", root);
  auto job = MemTracker::Create("job", node);

  job->Consume(100);
  node->Consume(40);
  EXPECT_EQ(job->consumed(), 100);
  EXPECT_EQ(node->consumed(), 140);
  EXPECT_EQ(root->consumed(), 140);

  job->Release(100);
  node->Release(40);
  EXPECT_EQ(job->consumed(), 0);
  EXPECT_EQ(node->consumed(), 0);
  EXPECT_EQ(root->consumed(), 0);

  // Peaks survive the release at every level.
  EXPECT_EQ(job->peak(), 100);
  EXPECT_EQ(node->peak(), 140);
  EXPECT_EQ(root->peak(), 140);
}

TEST(MemTrackerTest, PeakIsHighWaterMarkNotLastValue) {
  auto t = MemTracker::Create("t");
  t->Consume(500);
  t->Release(400);
  t->Consume(100);  // 200 now, below the 500 peak
  EXPECT_EQ(t->consumed(), 200);
  EXPECT_EQ(t->peak(), 500);
}

TEST(MemTrackerTest, TryConsumeEnforcesLimitAllOrNothing) {
  auto root = MemTracker::Create("root");
  auto limited = MemTracker::Create("limited", root, /*limit=*/1000);
  auto child = MemTracker::Create("child", limited);

  ASSERT_TRUE(child->TryConsume(800).ok());
  Status breach = child->TryConsume(300);
  EXPECT_EQ(breach.code(), StatusCode::kResourceExhausted);
  // Rollback: the failed request left no residue anywhere in the chain.
  EXPECT_EQ(child->consumed(), 800);
  EXPECT_EQ(limited->consumed(), 800);
  EXPECT_EQ(root->consumed(), 800);
  // The breach names the limiting tracker, not the asking one.
  EXPECT_NE(breach.message().find("limited"), std::string::npos)
      << breach.ToString();

  // A request that still fits goes through after the rejection.
  EXPECT_TRUE(child->TryConsume(200).ok());
  EXPECT_EQ(limited->consumed(), 1000);
}

TEST(MemTrackerTest, UnlimitedTrackersNeverReject) {
  auto t = MemTracker::Create("t");  // limit 0 = unlimited
  EXPECT_TRUE(t->TryConsume(int64_t{1} << 60).ok());
  t->Release(int64_t{1} << 60);
}

TEST(ScopedMemConsumerTest, ReleasesExactlyWhatItConsumed) {
  auto t = MemTracker::Create("t");
  {
    ScopedMemConsumer consumer(t);
    consumer.Add(64);
    consumer.Add(36);
    EXPECT_EQ(consumer.consumed(), 100);
    EXPECT_EQ(t->consumed(), 100);
    consumer.SyncTo(250);  // delta-consume up to the target
    EXPECT_EQ(t->consumed(), 250);
    consumer.SyncTo(70);  // and back down
    EXPECT_EQ(t->consumed(), 70);
  }
  EXPECT_EQ(t->consumed(), 0) << "destructor releases the outstanding charge";
  EXPECT_EQ(t->peak(), 250);
}

TEST(ScopedMemConsumerTest, TryAddLeavesNothingOnRejection) {
  auto limited = MemTracker::Create("limited", nullptr, /*limit=*/100);
  ScopedMemConsumer consumer(limited);
  ASSERT_TRUE(consumer.TryAdd(90).ok());
  EXPECT_EQ(consumer.TryAdd(20).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(consumer.consumed(), 90);
  EXPECT_EQ(limited->consumed(), 90);
}

TEST(ScopedMemConsumerTest, NullTrackerIsANoOpEverywhere) {
  ScopedMemConsumer consumer;
  consumer.Add(100);
  consumer.SyncTo(50);
  EXPECT_TRUE(consumer.TryAdd(10).ok());
  EXPECT_EQ(consumer.consumed(), 0);
  EXPECT_EQ(consumer.peak(), 0);
}

TEST(ScopedMemChargeTest, WorksThroughTheAbstractReporter) {
  auto t = MemTracker::Create("t");
  std::shared_ptr<MemReporter> reporter = t;  // the storage-layer view
  {
    ScopedMemCharge charge(reporter);
    charge.Add(4096);
    EXPECT_EQ(t->consumed(), 4096);
  }
  EXPECT_EQ(t->consumed(), 0);
}

TEST(TrackSharedArenaTest, ChargeLivesExactlyAsLongAsTheLastReference) {
  auto t = MemTracker::Create("t");
  auto arena = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(1024, 0xAB));
  auto tracked = TrackSharedArena(arena, t);
  ASSERT_NE(tracked, nullptr);
  EXPECT_EQ(tracked->size(), 1024u);
  EXPECT_EQ(t->consumed(), 1024);

  // A second consumer (a RowBatch outliving the reader) keeps the charge.
  auto second = tracked;
  tracked.reset();
  EXPECT_EQ(t->consumed(), 1024);
  second.reset();
  EXPECT_EQ(t->consumed(), 0) << "last reference drop releases the bytes";
  // The original shared_ptr held by the wrapper does not double-release.
  arena.reset();
  EXPECT_EQ(t->consumed(), 0);
}

TEST(TrackingAllocatorTest, ChargesContainerChurnAllocationAccurate) {
  auto t = MemTracker::Create("t");
  {
    std::vector<int64_t, TrackingAllocator<int64_t>> v{
        TrackingAllocator<int64_t>(t.get())};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(t->consumed(),
              static_cast<int64_t>(v.capacity() * sizeof(int64_t)));
    EXPECT_GE(t->peak(), t->consumed());
  }
  EXPECT_EQ(t->consumed(), 0);
}

TEST(TrackerNamesTest, CanonicalLevelNames) {
  EXPECT_EQ(NodeTrackerName(3), "node3");
  EXPECT_EQ(JobTrackerName(7, 2), "job7@node2");
}

TEST(MemTrackerConcurrencyTest, ConcurrentConsumeReleaseIsExact) {
  auto root = MemTracker::Create("root");
  auto node = MemTracker::Create("node", root);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&node] {
      auto attempt = MemTracker::Create("attempt", node);
      for (int j = 0; j < kIters; ++j) {
        attempt->Consume(64);
        (void)attempt->TryConsume(32);
        attempt->Release(96);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(root->consumed(), 0);
  EXPECT_EQ(node->consumed(), 0);
  EXPECT_GE(root->peak(), 64);
}

TEST(MemTrackerConcurrencyTest, ConcurrentTryConsumeNeverOverCommits) {
  auto limited = MemTracker::Create("limited", nullptr, /*limit=*/1 << 20);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int64_t> granted(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&limited, &granted, i] {
      for (int j = 0; j < 2000; ++j) {
        if (limited->TryConsume(4096).ok()) granted[i] += 4096;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  int64_t total = 0;
  for (int64_t g : granted) total += g;
  EXPECT_LE(total, int64_t{1} << 20) << "grants never exceed the limit";
  EXPECT_EQ(limited->consumed(), total);
  limited->Release(total);
  EXPECT_EQ(limited->consumed(), 0);
}

}  // namespace
}  // namespace obs

namespace core {
namespace {

SchemaPtr DimSchema() {
  return Schema::Make({{"pk", TypeKind::kInt32, 4},
                       {"nation", TypeKind::kString, 10}});
}

std::vector<uint8_t> DimStream(int rows) {
  std::vector<Row> data;
  for (int i = 1; i <= rows; ++i) {
    data.push_back(Row({Value(int32_t{i}),
                        Value(std::string("nation") + std::to_string(i % 5))}));
  }
  return storage::EncodeRowStream(data);
}

TEST(DimHashTableMemTest, BuildChargesExactBytesAndReleasesOnDrop) {
  auto tracker = obs::MemTracker::Create("job");
  auto stream = DimStream(500);
  {
    auto table =
        DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                            *Predicate::True(), "pk", {"nation"}, tracker);
    ASSERT_TRUE(table.ok());
    EXPECT_GT((*table)->stats().memory_bytes, 0u);
    EXPECT_EQ(tracker->consumed(),
              static_cast<int64_t>((*table)->stats().memory_bytes))
        << "tracker charge equals the table's own estimate, byte for byte";
  }
  EXPECT_EQ(tracker->consumed(), 0) << "dropping the table drains the charge";
  EXPECT_GT(tracker->peak(), 0);
}

TEST(DimHashTableMemTest, BudgetBreachAbortsBuildWithNothingConsumed) {
  auto limited = obs::MemTracker::Create("job", nullptr, /*limit=*/64);
  auto stream = DimStream(500);
  auto table =
      DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                          *Predicate::True(), "pk", {"nation"}, limited);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kResourceExhausted)
      << table.status().ToString();
  EXPECT_EQ(limited->consumed(), 0) << "failed build leaves no residue";
}

TEST(HashAggregatorMemTest, GrowthIsTrackedAndReleasedExactly) {
  auto tracker = obs::MemTracker::Create("attempt");
  const AggLayout layout = AggLayout::For({{"s", Expr::Col("x"), AggKind::kSum},
                                           {"n", nullptr, AggKind::kCount}});
  {
    HashAggregator agg(layout);
    agg.AttachMemTracker(tracker);
    const int64_t empty_bytes = tracker->consumed();
    EXPECT_EQ(empty_bytes, static_cast<int64_t>(agg.memory_bytes()));

    // Enough distinct groups to force several rehashes and arena growth.
    for (int i = 0; i < 4000; ++i) {
      const Row key({Value(std::string("grp") + std::to_string(i))});
      const int64_t inputs[2] = {i, 1};
      agg.Add(key, inputs);
    }
    EXPECT_GT(agg.memory_bytes(), static_cast<uint64_t>(empty_bytes));
    // The synced charge is allowed to lag the arena's tail block but must
    // match exactly at every rehash; after this many inserts it is the
    // table-dominated footprint.
    EXPECT_GT(tracker->consumed(), empty_bytes);
    EXPECT_LE(tracker->consumed(), static_cast<int64_t>(agg.memory_bytes()));
  }
  EXPECT_EQ(tracker->consumed(), 0) << "aggregator drop releases everything";
}

}  // namespace
}  // namespace core

namespace mr {
namespace {

ClusterOptions TinyCluster() {
  ClusterOptions options;
  options.num_nodes = 2;
  options.map_slots_per_node = 2;
  return options;
}

storage::TableDesc WriteCifStrings(MrCluster* cluster, const std::string& path,
                                   int rows) {
  storage::TableDesc desc;
  desc.path = path;
  desc.format = storage::kFormatCif;
  desc.schema = Schema::Make(
      {{"id", TypeKind::kInt32, 4}, {"mode", TypeKind::kString, 6}});
  desc.rows_per_split = 256;
  desc.cif_version = 3;
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  const char* modes[] = {"AIR", "RAIL", "SHIP", "TRUCK"};
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(Row({Value(i), Value(modes[i % 4])})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

TEST(ScanArenaMemTest, TrackedBytesAgreeWithScanStatsArenaBytes) {
  MrCluster cluster(TinyCluster());
  const storage::TableDesc desc = WriteCifStrings(&cluster, "/arena", 1000);
  auto splits = storage::ListTableSplits(*cluster.dfs(), desc);
  ASSERT_TRUE(splits.ok());
  ASSERT_FALSE(splits->empty());

  auto tracker = obs::MemTracker::Create("attempt");
  storage::ScanStats stats;
  storage::ScanOptions options;
  // String-only projection: every loaded arena is retained by the batch
  // (zero-copy string views), so the live charge must equal arena_bytes
  // exactly. Numeric arenas are dropped once decoded and release early.
  options.projection = {"mode"};
  options.late_materialize = true;
  options.scan_stats = &stats;
  options.mem_reporter = tracker;
  {
    auto reader = storage::OpenSplitRowReader(*cluster.dfs(), desc,
                                              (*splits)[0], options);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_GT(stats.arena_bytes, 0u) << "string columns decode into arenas";
    EXPECT_EQ(tracker->consumed(), static_cast<int64_t>(stats.arena_bytes))
        << "EXPLAIN ANALYZE's arena_bytes and the tracker charge agree";
    Row row;
    int rows = 0;
    while (true) {
      auto more = (*reader)->Next(&row);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      ++rows;
    }
    EXPECT_GT(rows, 0);
    EXPECT_EQ(tracker->consumed(), static_cast<int64_t>(stats.arena_bytes))
        << "reading does not change the arena-held footprint";
  }
  EXPECT_EQ(tracker->consumed(), 0)
      << "dropping the reader (the last arena reference) drains the charge";
}

/// Mapper that builds a dimension hash table against the attempt's tracker —
/// the runtime-breach half of budget enforcement.
class HashBuildingMapper final : public Mapper {
 public:
  Status Setup(TaskContext* context) override {
    auto stream = core::DimStream(2000);
    auto table = core::DimHashTable::Build(
        *core::DimSchema(), stream.data(), stream.size(), *Predicate::True(),
        "pk", {"nation"}, context->mem_tracker());
    CLY_RETURN_IF_ERROR(table.status());
    table_ = std::move(*table);
    return Status::OK();
  }
  Status Map(const Row&, const Row&, TaskContext*, OutputCollector*) override {
    return Status::OK();
  }

 private:
  std::shared_ptr<const core::DimHashTable> table_;
};

storage::TableDesc WriteTinyFact(MrCluster* cluster) {
  storage::TableDesc desc;
  desc.path = "/fact";
  desc.format = storage::kFormatBinaryRow;
  desc.schema = Schema::Make({{"x", TypeKind::kInt64, 8}});
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  for (int i = 0; i < 64; ++i) {
    CLY_CHECK_OK((*writer)->Append(Row({Value(int64_t{i})})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(desc.path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

JobConf HashBuildJob() {
  JobConf conf;
  conf.job_name = "hash-build";
  conf.num_reduce_tasks = 0;
  conf.Set(kConfInputTable, "/fact");
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<HashBuildingMapper>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  return conf;
}

TEST(MemBudgetTest, AdmissionRejectsJobsWhoseEstimateExceedsBudget) {
  MrCluster cluster(TinyCluster());
  WriteTinyFact(&cluster);
  JobConf conf = HashBuildJob();
  conf.mem_budget_bytes = 1000;
  conf.SetInt(kConfMemEstimateBytes, 5000);
  auto result = RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("admission"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(cluster.mem_tracker()->consumed(), 0)
      << "a rejected job never touched cluster memory";
}

TEST(MemBudgetTest, MidJobBreachFailsCleanlyAndClusterRecovers) {
  MrCluster cluster(TinyCluster());
  WriteTinyFact(&cluster);

  // No estimate conf key, so admission passes; the build's TryConsume
  // against the 1 KiB job tracker is what trips.
  JobConf breach = HashBuildJob();
  breach.mem_budget_bytes = 1024;
  auto failed = RunJob(&cluster, breach);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
      << failed.status().ToString();
  EXPECT_EQ(cluster.mem_tracker()->consumed(), 0)
      << "the failed job's charges all drained";

  // The cluster is healthy: the same job without a budget runs to
  // completion and also drains to zero.
  auto ok = RunJob(&cluster, HashBuildJob());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(cluster.mem_tracker()->consumed(), 0);
  EXPECT_GT(cluster.mem_tracker()->peak(), 0);
  // Job counters surface the peaks the gauges sampled live.
  EXPECT_GT(ok->report.counters.Get(kCounterMemJobPeakBytes), 0);
  EXPECT_GT(ok->report.counters.Get(kCounterMemNodePeakBytes), 0);
}

TEST(MemBudgetTest, TrackingDisabledRunsWithoutTrackersOrCounters) {
  MrCluster cluster(TinyCluster());
  WriteTinyFact(&cluster);
  JobConf conf = HashBuildJob();
  conf.SetBool(kConfMemTrackingEnabled, false);
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(cluster.mem_tracker()->consumed(), 0);
  EXPECT_EQ(result->report.counters.Get(kCounterMemJobPeakBytes), 0);
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
