#include <gtest/gtest.h>

#include "core/clydesdale.h"
#include "ssb/dbgen.h"
#include "ssb/loader.h"
#include "ssb/queries.h"
#include "ssb/reference_executor.h"
#include "storage/cif.h"

namespace clydesdale {
namespace storage {
namespace {

SchemaPtr SmallSchema() {
  return Schema::Make({{"k", TypeKind::kInt32, 4},
                       {"tag", TypeKind::kString, 6}});
}

Row SmallRow(int32_t k, const char* tag) {
  return Row({Value(k), Value(tag)});
}

class RollInTest : public ::testing::Test {
 protected:
  RollInTest() : dfs_(MakeOptions()) {}

  static hdfs::DfsOptions MakeOptions() {
    hdfs::DfsOptions options;
    options.num_nodes = 3;
    options.block_size = 8192;
    options.replication = 2;
    return options;
  }

  TableDesc WriteBase(int rows) {
    TableDesc desc;
    desc.path = "/t";
    desc.format = kFormatCif;
    desc.schema = SmallSchema();
    desc.rows_per_split = 64;
    auto writer = OpenTableWriter(&dfs_, desc);
    CLY_CHECK(writer.ok());
    for (int i = 0; i < rows; ++i) {
      CLY_CHECK_OK((*writer)->Append(SmallRow(i, "base")));
    }
    CLY_CHECK_OK((*writer)->Close());
    return Reload();
  }

  TableDesc Reload() {
    auto desc = LoadTableDesc(dfs_, "/t");
    CLY_CHECK(desc.ok());
    return *desc;
  }

  void AppendSegment(const TableDesc& desc, int rows, const char* tag,
                     int base_k) {
    auto writer = AppendCifSegment(&dfs_, desc);
    CLY_CHECK(writer.ok());
    for (int i = 0; i < rows; ++i) {
      CLY_CHECK_OK((*writer)->Append(SmallRow(base_k + i, tag)));
    }
    CLY_CHECK_OK((*writer)->Close());
  }

  std::vector<Row> ScanAll(const TableDesc& desc) {
    ScanOptions scan;
    auto rows = ScanTableToVector(dfs_, desc, scan);
    CLY_CHECK(rows.ok());
    return std::move(*rows);
  }

  hdfs::MiniDfs dfs_;
};

TEST_F(RollInTest, AppendedSegmentIsVisible) {
  TableDesc base = WriteBase(100);
  EXPECT_EQ(base.num_segments(), 1);
  AppendSegment(base, 50, "new", 100);

  const TableDesc merged = Reload();
  EXPECT_EQ(merged.num_rows, 150u);
  EXPECT_EQ(merged.num_segments(), 2);
  EXPECT_EQ(merged.segment_rows, (std::vector<uint64_t>{100, 50}));

  const std::vector<Row> rows = ScanAll(merged);
  ASSERT_EQ(rows.size(), 150u);
  EXPECT_EQ(rows[0].Get(1).str(), "base");
  EXPECT_EQ(rows[149].Get(1).str(), "new");
  EXPECT_EQ(rows[149].Get(0).i32(), 149);
}

TEST_F(RollInTest, RollInDoesNotRewriteExistingData) {
  TableDesc base = WriteBase(200);
  const uint64_t written_before = dfs_.TotalIo().bytes_written;
  AppendSegment(base, 10, "new", 200);
  const uint64_t written = dfs_.TotalIo().bytes_written - written_before;
  // The paper's §2 point vs Llama: appending must not re-merge the fact
  // table. 10 appended rows cost a few hundred bytes, not a table rewrite.
  EXPECT_LT(written, 4096u);
}

TEST_F(RollInTest, MultipleRollIns) {
  TableDesc desc = WriteBase(64);
  for (int s = 0; s < 3; ++s) {
    AppendSegment(Reload(), 32, "seg", 1000 * (s + 1));
  }
  const TableDesc merged = Reload();
  EXPECT_EQ(merged.num_segments(), 4);
  EXPECT_EQ(merged.num_rows, 64u + 3 * 32u);
  EXPECT_EQ(ScanAll(merged).size(), merged.num_rows);
}

TEST_F(RollInTest, SplitsCoverAllSegmentsWithRowRanges) {
  TableDesc base = WriteBase(150);  // 3 splits of 64/64/22
  AppendSegment(base, 70, "new", 150);  // 2 splits of 64/6
  const TableDesc merged = Reload();
  auto splits = ListTableSplits(dfs_, merged);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 5u);
  uint64_t covered = 0;
  for (size_t i = 0; i < splits->size(); ++i) {
    const StorageSplit& split = (*splits)[i];
    EXPECT_EQ(split.index, static_cast<int>(i));
    EXPECT_EQ(split.row_begin, covered);
    covered = split.row_end;
  }
  EXPECT_EQ(covered, merged.num_rows);
  EXPECT_EQ((*splits)[3].segment, 1);
  EXPECT_EQ((*splits)[3].block_in_segment, 0);
}

TEST_F(RollInTest, RollOutRemovesASegment) {
  TableDesc base = WriteBase(100);
  AppendSegment(base, 50, "new", 100);
  TableDesc merged = Reload();

  // Roll out the ORIGINAL data, keep the new segment (month-window style).
  ASSERT_TRUE(RollOutCifSegment(&dfs_, merged, 0).ok());
  const TableDesc after = Reload();
  EXPECT_EQ(after.num_rows, 50u);
  const std::vector<Row> rows = ScanAll(after);
  ASSERT_EQ(rows.size(), 50u);
  for (const Row& row : rows) EXPECT_EQ(row.Get(1).str(), "new");

  // Double roll-out is an error; the segment files are gone from HDFS.
  EXPECT_EQ(RollOutCifSegment(&dfs_, after, 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(dfs_.Exists("/t/k.col"));
  EXPECT_TRUE(dfs_.Exists("/t/k.s1.col"));
}

TEST_F(RollInTest, RollOutValidatesSegment) {
  TableDesc base = WriteBase(10);
  EXPECT_FALSE(RollOutCifSegment(&dfs_, base, 5).ok());
  EXPECT_FALSE(RollOutCifSegment(&dfs_, base, -1).ok());
}

TEST_F(RollInTest, AppendRequiresCif) {
  TableDesc desc;
  desc.path = "/rc";
  desc.format = kFormatRcFile;
  desc.schema = SmallSchema();
  desc.rows_per_split = 64;
  auto writer = OpenTableWriter(&dfs_, desc);
  CLY_CHECK(writer.ok());
  CLY_CHECK_OK((*writer)->Append(SmallRow(1, "x")));
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = LoadTableDesc(dfs_, "/rc");
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(AppendCifSegment(&dfs_, *loaded).ok());
}

// End-to-end: roll new SSB fact data into a live deployment and re-query.
TEST(RollInQueryTest, QueriesSeeRolledInFactData) {
  mr::ClusterOptions copts;
  copts.num_nodes = 3;
  copts.dfs_block_size = 256 * 1024;
  mr::MrCluster cluster(copts);
  ssb::SsbLoadOptions load;
  load.scale_factor = 0.002;
  auto dataset = ssb::LoadSsb(&cluster, load);
  ASSERT_TRUE(dataset.ok());

  auto query = ssb::QueryById("Q2.1");
  ASSERT_TRUE(query.ok());
  core::ClydesdaleEngine engine(&cluster, dataset->star, {});
  auto before = engine.Execute(*query);
  ASSERT_TRUE(before.ok());

  // Roll in another month of orders: a fresh generator stream appended as a
  // CIF segment, no rewrite of the existing fact table.
  {
    auto desc = cluster.GetTable(dataset->star.fact().path);
    ASSERT_TRUE(desc.ok());
    auto writer = storage::AppendCifSegment(cluster.dfs(), *desc);
    ASSERT_TRUE(writer.ok());
    ssb::SsbGenerator gen(0.002, /*seed=*/777);
    auto stream = gen.Lineorders();
    Row row;
    int appended = 0;
    while (appended < 2000 && stream.Next(&row)) {
      ASSERT_TRUE((*writer)->Append(row).ok());
      ++appended;
    }
    ASSERT_TRUE((*writer)->Close().ok());
    cluster.InvalidateTable(dataset->star.fact().path);
  }

  // The engine (with a fresh star schema pointing at the reloaded desc)
  // must agree with the reference executor over the grown table.
  auto grown_desc = cluster.GetTable(dataset->star.fact().path);
  ASSERT_TRUE(grown_desc.ok());
  core::StarSchema grown_star = dataset->star;
  *grown_star.mutable_fact() = *grown_desc;

  auto expected = ssb::ExecuteReference(&cluster, grown_star, *query);
  ASSERT_TRUE(expected.ok());
  core::ClydesdaleEngine engine2(&cluster, grown_star, {});
  auto after = engine2.Execute(*query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows, *expected);
  EXPECT_NE(after->rows, before->rows) << "new data must change the answer";
  EXPECT_GT(grown_desc->num_rows, dataset->lineorder_rows);
}

}  // namespace
}  // namespace storage
}  // namespace clydesdale
