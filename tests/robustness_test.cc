#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "core/clydesdale.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "ssb/reference_executor.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace {

mr::ClusterOptions SmallCluster() {
  mr::ClusterOptions options;
  options.num_nodes = 3;
  options.map_slots_per_node = 2;
  options.dfs_block_size = 64 * 1024;
  return options;
}

storage::TableDesc WriteInts(mr::MrCluster* cluster, const std::string& path,
                             int rows) {
  storage::TableDesc desc;
  desc.path = path;
  desc.format = storage::kFormatBinaryRow;
  desc.schema = Schema::Make({{"k", TypeKind::kInt32, 4}});
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(Row({Value(int32_t{i})})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

// --- error propagation --------------------------------------------------------

class FailingMapper final : public mr::Mapper {
 public:
  explicit FailingMapper(int fail_at) : fail_at_(fail_at) {}
  Status Map(const Row& key, const Row& value, mr::TaskContext*,
             mr::OutputCollector* out) override {
    (void)key;
    if (value.Get(0).i32() == fail_at_) {
      return Status::Internal("mapper exploded on purpose");
    }
    return out->Collect(value, Row({Value(int64_t{1})}));
  }

 private:
  int fail_at_;
};

TEST(RobustnessTest, MapperFailureAbortsJobWithContext) {
  mr::MrCluster cluster(SmallCluster());
  WriteInts(&cluster, "/ints", 500);
  mr::JobConf conf;
  conf.job_name = "doomed";
  conf.Set(mr::kConfInputTable, "/ints");
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<FailingMapper>(250); };
  conf.num_reduce_tasks = 0;
  conf.output_format_factory = [] {
    return std::make_unique<mr::MemoryOutputFormat>();
  };
  auto result = mr::RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("doomed"), std::string::npos)
      << "error should name the job: " << result.status().ToString();
  EXPECT_NE(result.status().message().find("exploded"), std::string::npos);
}

TEST(RobustnessTest, ReducerFailurePropagates) {
  mr::MrCluster cluster(SmallCluster());
  WriteInts(&cluster, "/ints", 50);
  class FailingReducer final : public mr::Reducer {
   public:
    Status Reduce(const Row&, const std::vector<Row>&, mr::TaskContext*,
                  mr::OutputCollector*) override {
      return Status::ResourceExhausted("reduce heap exhausted");
    }
  };
  class IdentityMapper final : public mr::Mapper {
   public:
    Status Map(const Row& key, const Row& value, mr::TaskContext*,
               mr::OutputCollector* out) override {
      (void)key;
      return out->Collect(value, value);
    }
  };
  mr::JobConf conf;
  conf.Set(mr::kConfInputTable, "/ints");
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<FailingReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<mr::MemoryOutputFormat>();
  };
  auto result = mr::RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(RobustnessTest, OutputArityMismatchIsAnError) {
  mr::MrCluster cluster(SmallCluster());
  WriteInts(&cluster, "/ints", 20);
  class IdentityMapper final : public mr::Mapper {
   public:
    Status Map(const Row& key, const Row& value, mr::TaskContext*,
               mr::OutputCollector* out) override {
      (void)key;
      return out->Collect(value, value);  // 2 columns
    }
  };
  mr::JobConf conf;
  conf.Set(mr::kConfInputTable, "/ints");
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  conf.num_reduce_tasks = 0;
  conf.Set(mr::kConfOutputTable, "/out");
  conf.Set(mr::kConfOutputColumns, "k:int32");  // declares 1 column
  conf.output_format_factory = [] {
    return std::make_unique<mr::TableOutputFormat>();
  };
  EXPECT_FALSE(mr::RunJob(&cluster, conf).ok());
}

// --- corrupt on-disk data -------------------------------------------------------

TEST(RobustnessTest, GarbageMetaFileIsIoError) {
  hdfs::MiniDfs dfs(hdfs::DfsOptions{});
  ASSERT_TRUE(dfs.WriteFile("/t/_meta", "not=even\nclose").ok());
  EXPECT_EQ(storage::LoadTableDesc(dfs, "/t").status().code(),
            StatusCode::kIoError);
}

TEST(RobustnessTest, TruncatedCifColumnIsIoError) {
  hdfs::MiniDfs dfs(hdfs::DfsOptions{});
  storage::TableDesc desc;
  desc.path = "/t";
  desc.format = storage::kFormatCif;
  desc.schema = Schema::Make({{"k", TypeKind::kInt32, 4}});
  desc.rows_per_split = 16;
  auto writer = storage::OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE((*writer)->Append(Row({Value(int32_t{i})})).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  // Overwrite the column file with garbage claiming many rows.
  ASSERT_TRUE(dfs.Delete("/t/k.col").ok());
  std::string garbage;
  const uint32_t claimed = 1000;
  garbage.assign(reinterpret_cast<const char*>(&claimed), 4);
  garbage += "abc";
  ASSERT_TRUE(dfs.WriteFile("/t/k.col", garbage).ok());

  auto loaded = storage::LoadTableDesc(dfs, "/t");
  ASSERT_TRUE(loaded.ok());
  auto splits = storage::ListTableSplits(dfs, *loaded);
  ASSERT_TRUE(splits.ok());
  storage::ScanOptions scan;
  EXPECT_FALSE(
      storage::OpenSplitRowReader(dfs, *loaded, (*splits)[0], scan).ok());
}

TEST(RobustnessTest, CorruptRcFileMagicIsIoError) {
  hdfs::MiniDfs dfs(hdfs::DfsOptions{});
  storage::TableDesc desc;
  desc.path = "/t";
  desc.format = storage::kFormatRcFile;
  desc.schema = Schema::Make({{"k", TypeKind::kInt32, 4}});
  desc.rows_per_split = 8;
  auto writer = storage::OpenTableWriter(&dfs, desc);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*writer)->Append(Row({Value(int32_t{i})})).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  ASSERT_TRUE(dfs.Delete("/t/data.rc").ok());
  ASSERT_TRUE(dfs.WriteFile("/t/data.rc",
                            std::string(64, '\x42')).ok());
  auto loaded = storage::LoadTableDesc(dfs, "/t");
  ASSERT_TRUE(loaded.ok());
  auto splits = storage::ListTableSplits(dfs, *loaded);
  ASSERT_TRUE(splits.ok());
  storage::ScanOptions scan;
  EXPECT_FALSE(
      storage::OpenSplitRowReader(dfs, *loaded, (*splits)[0], scan).ok());
}

// --- randomized star-join consistency ---------------------------------------------
// Property: for ANY small star schema, data, and query, Clydesdale (in all
// ablation modes) agrees with the single-threaded reference executor.

struct RandomStar {
  core::StarSchema star;
  core::StarQuerySpec query;
};

RandomStar MakeRandomStar(mr::MrCluster* cluster, uint64_t seed) {
  Random rng(seed);
  const int num_dims = static_cast<int>(rng.Uniform(1, 3));
  const int fact_rows = static_cast<int>(rng.Uniform(200, 3000));

  std::vector<core::DimTableInfo> dims;
  core::StarQuerySpec query;
  query.id = StrCat("rand", seed);

  std::vector<Field> fact_fields;
  std::vector<int> dim_sizes;
  for (int d = 0; d < num_dims; ++d) {
    const int dim_rows = static_cast<int>(rng.Uniform(3, 120));
    dim_sizes.push_back(dim_rows);
    const std::string name = StrCat("dim", d);
    core::DimTableInfo dim;
    dim.name = name;
    dim.pk = StrCat("d", d, "_pk");
    dim.local_path = StrCat("/dimcache/rand", seed, "/", name);
    dim.desc.path = StrCat("/rand", seed, "/", name);
    dim.desc.format = storage::kFormatBinaryRow;
    dim.desc.schema = Schema::Make({{dim.pk, TypeKind::kInt32, 4},
                                    {StrCat("d", d, "_cat"), TypeKind::kInt32, 4},
                                    {StrCat("d", d, "_tag"), TypeKind::kString, 4}});
    auto writer = storage::OpenTableWriter(cluster->dfs(), dim.desc);
    CLY_CHECK(writer.ok());
    for (int i = 1; i <= dim_rows; ++i) {
      CLY_CHECK_OK((*writer)->Append(
          Row({Value(int32_t{i}), Value(static_cast<int32_t>(rng.Uniform(0, 4))),
               Value(StrCat("t", rng.Uniform(0, 2)))})));
    }
    CLY_CHECK_OK((*writer)->Close());
    auto loaded = cluster->GetTable(dim.desc.path);
    CLY_CHECK(loaded.ok());
    dim.desc = *loaded;
    CLY_CHECK_OK(core::ReplicateDimensionToAllNodes(cluster, dim));

    core::DimJoinSpec join;
    join.dimension = name;
    join.fact_fk = StrCat("f_fk", d);
    join.dim_pk = dim.pk;
    // Random dimension predicate (sometimes none).
    switch (rng.Uniform(0, 3)) {
      case 0:
        join.predicate = Predicate::Le(StrCat("d", d, "_cat"),
                                       Value(static_cast<int32_t>(rng.Uniform(0, 4))));
        break;
      case 1:
        join.predicate = Predicate::Eq(StrCat("d", d, "_tag"),
                                       Value(StrCat("t", rng.Uniform(0, 2))));
        break;
      default:
        break;  // no predicate
    }
    if (rng.Bernoulli(0.7)) {
      join.aux_columns.push_back(StrCat("d", d, "_cat"));
      query.group_by.push_back(StrCat("d", d, "_cat"));
    }
    query.dims.push_back(std::move(join));
    dims.push_back(std::move(dim));
    fact_fields.push_back({StrCat("f_fk", d), TypeKind::kInt32, 4});
  }
  fact_fields.push_back({"f_m1", TypeKind::kInt32, 4});
  fact_fields.push_back({"f_m2", TypeKind::kInt32, 4});

  storage::TableDesc fact;
  fact.path = StrCat("/rand", seed, "/fact");
  fact.format = storage::kFormatCif;
  fact.schema = Schema::Make(fact_fields);
  fact.rows_per_split = 256;
  auto writer = storage::OpenTableWriter(cluster->dfs(), fact);
  CLY_CHECK(writer.ok());
  for (int i = 0; i < fact_rows; ++i) {
    Row row;
    for (int d = 0; d < num_dims; ++d) {
      // Occasionally dangle outside the dimension (no match -> dropped).
      const int hi = dim_sizes[static_cast<size_t>(d)] + 2;
      row.Append(Value(static_cast<int32_t>(rng.Uniform(1, hi))));
    }
    row.Append(Value(static_cast<int32_t>(rng.Uniform(0, 1000))));
    row.Append(Value(static_cast<int32_t>(rng.Uniform(0, 50))));
    CLY_CHECK_OK((*writer)->Append(row));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(fact.path);
  CLY_CHECK(loaded.ok());

  // Random fact predicate and aggregate.
  if (rng.Bernoulli(0.5)) {
    query.fact_predicate = Predicate::Lt(
        "f_m2", Value(static_cast<int32_t>(rng.Uniform(5, 45))));
  }
  query.aggregates.push_back(
      {"agg", rng.Bernoulli(0.5)
                  ? Expr::Col("f_m1")
                  : Expr::Mul(Expr::Col("f_m1"), Expr::Col("f_m2"))});

  RandomStar out{core::StarSchema(*loaded, std::move(dims)), std::move(query)};
  return out;
}

class RandomStarJoinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomStarJoinTest, EnginesAgreeWithReference) {
  mr::MrCluster cluster(SmallCluster());
  const RandomStar rand = MakeRandomStar(&cluster, GetParam());

  auto expected = ssb::ExecuteReference(&cluster, rand.star, rand.query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (int mode = 0; mode < 3; ++mode) {
    core::ClydesdaleOptions options;
    if (mode == 1) options.multithreaded = false;
    if (mode == 2) {
      options.block_iteration = false;
      options.map_side_agg = false;
    }
    core::ClydesdaleEngine engine(&cluster, rand.star, options);
    auto result = engine.Execute(rand.query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->rows.size(), expected->size()) << "mode " << mode;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ(result->rows[i], (*expected)[i]) << "mode " << mode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStarJoinTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- randomized predicate property -------------------------------------------------

TEST(PredicatePropertyTest, BatchEvalAlwaysMatchesRowEval) {
  Random rng(4242);
  auto schema = Schema::Make({{"a", TypeKind::kInt32, 4},
                              {"b", TypeKind::kInt32, 4},
                              {"s", TypeKind::kString, 4}});
  for (int trial = 0; trial < 50; ++trial) {
    // Random conjunction/disjunction of comparisons.
    std::vector<Predicate::Ptr> parts;
    const int n = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      const char* col = rng.Bernoulli(0.5) ? "a" : "b";
      const auto v = Value(static_cast<int32_t>(rng.Uniform(0, 100)));
      switch (rng.Uniform(0, 4)) {
        case 0:
          parts.push_back(Predicate::Lt(col, v));
          break;
        case 1:
          parts.push_back(Predicate::Ge(col, v));
          break;
        case 2:
          parts.push_back(Predicate::Between(
              col, v, Value(static_cast<int32_t>(rng.Uniform(0, 100)))));
          break;
        case 3:
          parts.push_back(
              Predicate::Eq("s", Value(StrCat("s", rng.Uniform(0, 3)))));
          break;
        default:
          parts.push_back(Predicate::Ne(col, v));
      }
    }
    Predicate::Ptr pred = rng.Bernoulli(0.5) ? Predicate::And(parts)
                                             : Predicate::Or(parts);
    if (rng.Bernoulli(0.2)) pred = Predicate::Not(pred);
    auto bound = pred->Bind(*schema);
    ASSERT_TRUE(bound.ok());

    RowBatch batch(schema);
    for (int i = 0; i < 64; ++i) {
      batch.AppendRow(Row({Value(static_cast<int32_t>(rng.Uniform(0, 100))),
                           Value(static_cast<int32_t>(rng.Uniform(0, 100))),
                           Value(StrCat("s", rng.Uniform(0, 3)))}));
    }
    std::vector<uint8_t> sel(64, 1);
    (*bound)->EvalBatch(batch, &sel);
    for (int64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(sel[static_cast<size_t>(i)] != 0,
                (*bound)->Eval(batch.GetRow(i)))
          << "trial " << trial << " row " << i << " pred "
          << pred->ToString();
    }
  }
}

}  // namespace
}  // namespace clydesdale
