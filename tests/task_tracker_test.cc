#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "mapreduce/engine.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_trace.h"
#include "mapreduce/task_attempt.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace mr {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.map_slots_per_node = 2;
  options.dfs_block_size = 1024;
  options.dfs_replication = 2;
  return options;
}

storage::TableDesc WriteWordTable(MrCluster* cluster, int rows) {
  storage::TableDesc desc;
  desc.path = "/words";
  desc.format = storage::kFormatBinaryRow;
  desc.schema = Schema::Make(
      {{"word", TypeKind::kString, 8}, {"n", TypeKind::kInt64, 8}});
  auto writer = storage::OpenTableWriter(cluster->dfs(), desc);
  CLY_CHECK(writer.ok());
  const char* vocab[] = {"ant", "bee", "cat", "dog", "eel", "fox"};
  for (int i = 0; i < rows; ++i) {
    CLY_CHECK_OK((*writer)->Append(
        Row({Value(vocab[i % 6]), Value(int64_t{1})})));
  }
  CLY_CHECK_OK((*writer)->Close());
  auto loaded = cluster->GetTable(desc.path);
  CLY_CHECK(loaded.ok());
  return *loaded;
}

class WordCountMapper final : public Mapper {
 public:
  /// Optional per-task delay: stretches the map phase so pipelined reducers
  /// demonstrably fetch while maps are still running.
  explicit WordCountMapper(int setup_sleep_ms = 0)
      : setup_sleep_ms_(setup_sleep_ms) {}

  Status Setup(TaskContext*) override {
    if (setup_sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(setup_sleep_ms_));
    }
    return Status::OK();
  }
  Status Map(const Row& key, const Row& value, TaskContext*,
             OutputCollector* out) override {
    (void)key;
    return out->Collect(Row({value.Get(0)}), Row({value.Get(1)}));
  }

 private:
  int setup_sleep_ms_;
};

class SumCountsReducer final : public Reducer {
 public:
  Status Reduce(const Row& key, const std::vector<Row>& values, TaskContext*,
                OutputCollector* out) override {
    int64_t total = 0;
    for (const Row& v : values) total += v.Get(0).i64();
    return out->Collect(key, Row({Value(total)}));
  }
};

JobConf WordCountJob(const std::string& table, int reduces) {
  JobConf conf;
  conf.job_name = "wordcount";
  conf.num_reduce_tasks = reduces;
  conf.Set(kConfInputTable, table);
  conf.input_format_factory = [] {
    return std::make_unique<TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<SumCountsReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<MemoryOutputFormat>();
  };
  return conf;
}

// ---------------------------------------------------------------------------
// TaskAttempt state machine
// ---------------------------------------------------------------------------

TEST(TaskAttemptTest, HappyPathTransitions) {
  TaskAttempt attempt(3, 0, /*is_map=*/true);
  EXPECT_EQ(attempt.state(), AttemptState::kQueued);
  EXPECT_FALSE(attempt.terminal());
  EXPECT_EQ(attempt.Label(), "m-3.0");

  ASSERT_TRUE(attempt.Transition(AttemptState::kRunning).ok());
  EXPECT_EQ(attempt.state(), AttemptState::kRunning);
  ASSERT_TRUE(attempt.Transition(AttemptState::kSucceeded).ok());
  EXPECT_TRUE(attempt.terminal());
}

TEST(TaskAttemptTest, FailureEdges) {
  // running -> failed (task code errored).
  TaskAttempt ran(0, 0, /*is_map=*/true);
  ASSERT_TRUE(ran.Transition(AttemptState::kRunning).ok());
  ASSERT_TRUE(ran.Transition(AttemptState::kFailed).ok());
  EXPECT_TRUE(ran.terminal());

  // queued -> failed (killed before launch on job abort).
  TaskAttempt killed(1, 2, /*is_map=*/false);
  EXPECT_EQ(killed.Label(), "r-1.2");
  ASSERT_TRUE(killed.Transition(AttemptState::kFailed).ok());
  EXPECT_TRUE(killed.terminal());
}

TEST(TaskAttemptTest, InvalidTransitionsRejected) {
  TaskAttempt attempt(0, 0, /*is_map=*/true);
  // Can't succeed without running.
  EXPECT_EQ(attempt.Transition(AttemptState::kSucceeded).code(),
            StatusCode::kInternal);
  ASSERT_TRUE(attempt.Transition(AttemptState::kRunning).ok());
  // Can't go back to queued.
  EXPECT_EQ(attempt.Transition(AttemptState::kQueued).code(),
            StatusCode::kInternal);
  ASSERT_TRUE(attempt.Transition(AttemptState::kSucceeded).ok());
  // Terminal states accept nothing.
  for (AttemptState next :
       {AttemptState::kQueued, AttemptState::kRunning, AttemptState::kFailed,
        AttemptState::kSucceeded}) {
    EXPECT_EQ(attempt.Transition(next).code(), StatusCode::kInternal);
  }
}

// ---------------------------------------------------------------------------
// Pull-based executor end to end
// ---------------------------------------------------------------------------

TEST(TaskTrackerTest, PipelinedOutputIsByteIdenticalToBarrier) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);

  // One reducer: output order is fully determined by the merge order, so
  // equality here asserts byte-identical output, not just equal multisets.
  JobConf pipelined = WordCountJob("/words", 1);
  pipelined.pipelined_shuffle = true;
  JobConf barrier = WordCountJob("/words", 1);
  barrier.pipelined_shuffle = false;

  auto with = RunJob(&cluster, pipelined);
  auto without = RunJob(&cluster, barrier);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();

  ASSERT_EQ(with->output_rows.size(), without->output_rows.size());
  for (size_t i = 0; i < with->output_rows.size(); ++i) {
    EXPECT_TRUE(with->output_rows[i] == without->output_rows[i])
        << "row " << i << " differs between pipelined and barrier modes";
  }
  EXPECT_GT(with->report.map_tasks.size(), 1u);
}

TEST(TaskTrackerTest, SchedPullsAndLocalityCountersCoverEveryAttempt) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 400);
  auto result = RunJob(&cluster, WordCountJob("/words", 2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto maps = static_cast<int64_t>(result->report.map_tasks.size());
  const auto reduces = static_cast<int64_t>(result->report.reduce_tasks.size());
  const Counters& counters = result->report.counters;
  // One pull per launched attempt (no retries yet: attempts == tasks).
  EXPECT_EQ(counters.Get(kCounterSchedPulls), maps + reduces);
  // Every map was placed either data-local or rack-remote at pull time.
  EXPECT_EQ(counters.Get(kCounterDataLocalMaps) +
                counters.Get(kCounterRackRemoteMaps),
            maps);
  for (const TaskReport& t : result->report.map_tasks) {
    EXPECT_EQ(t.attempt, 0);
  }
}

TEST(TaskTrackerTest, ShuffleScratchIsGarbageCollectedAfterCommit) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 300);
  ASSERT_TRUE(cluster.dfs()->WriteFile("/cache/gc-probe", "payload").ok());
  JobConf conf = WordCountJob("/words", 3);
  conf.distributed_cache.push_back("/cache/gc-probe");
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Encoded shuffle runs and dcache copies were staged on local disks during
  // the job; commit-time GC must leave every node's LocalStore empty.
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_EQ(cluster.local_store(n)->file_count(), 0u) << "node " << n;
  }
}

TEST(TaskTrackerTest, FailingMapAbortsPipelinedJobWithoutHanging) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 300);
  JobConf conf = WordCountJob("/words", 2);
  conf.pipelined_shuffle = true;
  conf.mapper_factory = [] {
    class FailingMapper final : public Mapper {
     public:
      Status Map(const Row&, const Row&, TaskContext*,
                 OutputCollector*) override {
        return Status::Internal("injected map failure");
      }
    };
    return std::make_unique<FailingMapper>();
  };
  // Reducers are already blocked waiting for runs when the failure lands;
  // the abort must close the shuffle and unwind them (a hang here means the
  // producers were never closed).
  auto result = RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("injected map failure"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("map task"), std::string::npos)
      << result.status().ToString();
  // The failed job's scratch is GCed on the error path too.
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_EQ(cluster.local_store(n)->file_count(), 0u) << "node " << n;
  }
}

TEST(TaskTrackerTest, FailingReduceReportsReduceTaskContext) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 100);
  JobConf conf = WordCountJob("/words", 1);
  conf.reducer_factory = [] {
    class FailingReducer final : public Reducer {
     public:
      Status Reduce(const Row&, const std::vector<Row>&, TaskContext*,
                    OutputCollector*) override {
        return Status::Internal("injected reduce failure");
      }
    };
    return std::make_unique<FailingReducer>();
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("reduce task"), std::string::npos)
      << result.status().ToString();
}

TEST(TaskTrackerTest, PipelinedReducersFetchWhileMapsStillRun) {
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 600);
  JobConf conf = WordCountJob("/words", 2);
  conf.pipelined_shuffle = true;
  conf.SetBool(kConfTraceEnabled, true);
  // Slow maps in several waves: early runs are published (and fetched) while
  // later waves are still occupying the map slots.
  conf.mapper_factory = [] { return std::make_unique<WordCountMapper>(15); };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const int total_map_slots =
      cluster.num_nodes() * cluster.options().map_slots_per_node;
  ASSERT_GT(result->report.map_tasks.size(),
            static_cast<size_t>(total_map_slots))
      << "test needs multiple map waves to demonstrate overlap";

  int64_t last_map_end = 0;
  int64_t first_fetch = -1;
  bool saw_overlap_span = false;
  for (const obs::SpanRecord& span : result->report.spans) {
    if (span.name == "map-task") {
      last_map_end = std::max(last_map_end, span.end_us());
    } else if (span.name == "shuffle-fetch") {
      if (first_fetch < 0 || span.start_us < first_fetch) {
        first_fetch = span.start_us;
      }
    } else if (span.name == "shuffle-overlap") {
      saw_overlap_span = true;
    }
  }
  ASSERT_GE(first_fetch, 0) << "no shuffle-fetch spans recorded";
  EXPECT_LT(first_fetch, last_map_end)
      << "first reducer fetch should start before the last map task ends";
  EXPECT_TRUE(saw_overlap_span);
  EXPECT_GT(CriticalPath(result->report).shuffle_overlap_seconds, 0);
}

TEST(TaskTrackerTest, ReduceCodeRunsUnderTaskLogContext) {
  // Every reduce attempt (and its pipelined fetch loop) runs under the same
  // ambient ScopedLogContext trackers set for maps: "job/r-N@nodeM". User
  // reducer code observes it via LogContext(), so any CLY_LOG line inside a
  // reducer is attributable to its attempt without manual tagging.
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 300);
  JobConf conf = WordCountJob("/words", 2);
  conf.pipelined_shuffle = true;
  auto contexts = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  conf.reducer_factory = [contexts, mu] {
    class ContextCapturingReducer final : public Reducer {
     public:
      ContextCapturingReducer(std::shared_ptr<std::vector<std::string>> out,
                              std::shared_ptr<std::mutex> mu)
          : out_(std::move(out)), mu_(std::move(mu)) {}
      Status Reduce(const Row& key, const std::vector<Row>& values,
                    TaskContext*, OutputCollector* out) override {
        {
          std::lock_guard<std::mutex> lock(*mu_);
          out_->push_back(LogContext());
        }
        int64_t total = 0;
        for (const Row& v : values) total += v.Get(0).i64();
        return out->Collect(key, Row({Value(total)}));
      }

     private:
      std::shared_ptr<std::vector<std::string>> out_;
      std::shared_ptr<std::mutex> mu_;
    };
    return std::make_unique<ContextCapturingReducer>(contexts, mu);
  };
  auto result = RunJob(&cluster, conf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(contexts->empty());
  for (const std::string& context : *contexts) {
    EXPECT_EQ(context.find("wordcount/r-"), 0u) << context;
    EXPECT_NE(context.find("@node"), std::string::npos) << context;
  }
}

TEST(TaskTrackerTest, BackToBackJobsReuseThePersistentTrackers) {
  // The tracker pool is cluster-owned: many jobs against one cluster must
  // come and go without respawning workers or leaking queued state.
  MrCluster cluster(SmallCluster());
  WriteWordTable(&cluster, 200);
  std::map<std::string, int64_t> first;
  for (int run = 0; run < 4; ++run) {
    auto result = RunJob(&cluster, WordCountJob("/words", 2));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::map<std::string, int64_t> counts;
    for (const Row& row : result->output_rows) {
      counts[row.Get(0).str()] = row.Get(1).i64();
    }
    if (run == 0) {
      first = counts;
    } else {
      EXPECT_EQ(counts, first) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace mr
}  // namespace clydesdale
