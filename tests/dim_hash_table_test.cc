#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/dim_hash_table.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace core {
namespace {

SchemaPtr DimSchema() {
  return Schema::Make({{"pk", TypeKind::kInt32, 4},
                       {"nation", TypeKind::kString, 10},
                       {"region", TypeKind::kString, 8}});
}

std::vector<uint8_t> MakeStream(int rows) {
  std::vector<Row> data;
  const char* regions[] = {"ASIA", "EUROPE"};
  for (int i = 1; i <= rows; ++i) {
    data.push_back(Row({Value(int32_t{i}),
                        Value(std::string("nation") + std::to_string(i % 5)),
                        Value(regions[i % 2])}));
  }
  return storage::EncodeRowStream(data);
}

TEST(DimHashTableTest, BuildsAndProbes) {
  auto stream = MakeStream(100);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 100u);
  const Row* aux = (*table)->Probe(7);
  ASSERT_NE(aux, nullptr);
  EXPECT_EQ(aux->Get(0).str(), "nation2");
  EXPECT_EQ((*table)->Probe(101), nullptr);
  EXPECT_EQ((*table)->Probe(0), nullptr);
  EXPECT_EQ((*table)->Probe(-5), nullptr);
}

TEST(DimHashTableTest, PredicateFiltersEntries) {
  auto stream = MakeStream(100);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::Eq("region", Value("ASIA")),
                                   "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 50u);
  EXPECT_EQ((*table)->stats().input_rows, 100u);
  // Even pks have region ASIA (regions[i % 2]).
  EXPECT_EQ((*table)->Probe(3), nullptr);
  EXPECT_NE((*table)->Probe(4), nullptr);
}

TEST(DimHashTableTest, ZeroAuxColumnsYieldEmptyPayload) {
  auto stream = MakeStream(10);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {});
  ASSERT_TRUE(table.ok());
  const Row* aux = (*table)->Probe(1);
  ASSERT_NE(aux, nullptr);
  EXPECT_TRUE(aux->empty());
}

TEST(DimHashTableTest, EmptyQualifyingSetProbesCleanly) {
  auto stream = MakeStream(10);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::Eq("region", Value("MARS")),
                                   "pk", {});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 0u);
  EXPECT_EQ((*table)->Probe(1), nullptr);
}

TEST(DimHashTableTest, MemoryEstimateGrowsWithEntries) {
  auto small_stream = MakeStream(10);
  auto big_stream = MakeStream(1000);
  auto small = DimHashTable::Build(*DimSchema(), small_stream.data(),
                                   small_stream.size(), *Predicate::True(),
                                   "pk", {"nation"});
  auto big = DimHashTable::Build(*DimSchema(), big_stream.data(),
                                 big_stream.size(), *Predicate::True(), "pk",
                                 {"nation"});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT((*big)->stats().memory_bytes, (*small)->stats().memory_bytes * 10);
}

TEST(DimHashTableTest, UnknownColumnsFailCleanly) {
  auto stream = MakeStream(10);
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "nope", {})
                   .ok());
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nope"})
                   .ok());
}

TEST(DimHashTableTest, CorruptStreamFails) {
  auto stream = MakeStream(10);
  stream.resize(stream.size() - 3);  // truncate mid-row
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {})
                   .ok());
}

TEST(DimHashTableTest, NegativeKeysProbeBack) {
  std::vector<Row> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back(Row({Value(int32_t{-100 + i * 7}),
                        Value(std::string("n") + std::to_string(i)),
                        Value("ASIA")}));
  }
  auto stream = storage::EncodeRowStream(data);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 10u);
  for (int i = 0; i < 10; ++i) {
    const Row* aux = (*table)->Probe(-100 + i * 7);
    ASSERT_NE(aux, nullptr) << "key " << -100 + i * 7;
    EXPECT_EQ(aux->Get(0).str(), std::string("n") + std::to_string(i));
  }
  EXPECT_EQ((*table)->Probe(-101), nullptr);
  EXPECT_EQ((*table)->Probe(100), nullptr);
}

TEST(DimHashTableTest, DuplicatePrimaryKeysKeepFirstInScanOrder) {
  // Dimension streams with repeated pks are tolerated: both rows occupy a
  // slot, but probes resolve to the first row in scan order (the linear
  // probe stops at the first matching key).
  std::vector<Row> data = {
      Row({Value(int32_t{7}), Value("first"), Value("ASIA")}),
      Row({Value(int32_t{7}), Value("second"), Value("ASIA")}),
      Row({Value(int32_t{9}), Value("other"), Value("EUROPE")}),
  };
  auto stream = storage::EncodeRowStream(data);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 3u);
  const Row* aux = (*table)->Probe(7);
  ASSERT_NE(aux, nullptr);
  EXPECT_EQ(aux->Get(0).str(), "first");
}

TEST(DimHashTableTest, CollisionChainMissWalksToEmptySlot) {
  // Craft keys that all hash to the same home slot so probes must walk a
  // full linear chain. Build sizes the table at the smallest power of two
  // >= 2 * entries, so 8 colliding entries land in a capacity-16 table and
  // a 9th colliding absent key has to traverse all 8 before the empty slot.
  constexpr size_t kCapacity = 16;
  std::vector<int32_t> colliding;
  for (int32_t k = 1; colliding.size() < 9; ++k) {
    if ((Mix64(static_cast<uint64_t>(k)) & (kCapacity - 1)) == 0) {
      colliding.push_back(k);
    }
  }
  std::vector<Row> data;
  for (size_t i = 0; i < 8; ++i) {
    data.push_back(Row({Value(colliding[i]),
                        Value(std::string("n") + std::to_string(i)),
                        Value("ASIA")}));
  }
  auto stream = storage::EncodeRowStream(data);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->entries(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    const Row* aux = (*table)->Probe(colliding[i]);
    ASSERT_NE(aux, nullptr) << "key " << colliding[i];
    EXPECT_EQ(aux->Get(0).str(), std::string("n") + std::to_string(i));
  }
  // The 9th key shares the home slot but was never inserted: the chain walk
  // must pass every occupied slot and stop at the empty one with a miss.
  EXPECT_EQ((*table)->Probe(colliding[8]), nullptr);

  // The batch probe walks the same chains branchlessly.
  std::vector<int64_t> keys(colliding.begin(), colliding.end());
  std::vector<const Row*> out(keys.size());
  (*table)->ProbeBatch(keys.data(), static_cast<int64_t>(keys.size()),
                       out.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], (*table)->Probe(keys[i])) << "key " << keys[i];
  }
}

TEST(DimHashTableTest, ProbeBatchMatchesScalarProbe) {
  auto stream = MakeStream(500);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  // Mixed hits, misses, zero, and negative keys; more than one 256-key
  // stride so the batch loop crosses its internal boundary.
  std::vector<int64_t> keys;
  for (int i = 0; i < 700; ++i) {
    switch (i % 5) {
      case 0: keys.push_back(i % 500 + 1); break;        // hit
      case 1: keys.push_back(500 + i); break;            // miss (too large)
      case 2: keys.push_back(-i); break;                 // miss (negative)
      case 3: keys.push_back(0); break;                  // miss (zero)
      default: keys.push_back(499 - i % 499); break;     // hit
    }
  }
  std::vector<const Row*> out(keys.size(), nullptr);
  (*table)->ProbeBatch(keys.data(), static_cast<int64_t>(keys.size()),
                       out.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], (*table)->Probe(keys[i])) << "lane " << i << " key "
                                                << keys[i];
  }
}

TEST(DimHashTableTest, ProbeBatchOnEmptyTableReturnsAllNull) {
  auto stream = MakeStream(10);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::Eq("region", Value("MARS")),
                                   "pk", {});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->entries(), 0u);
  std::vector<int64_t> keys = {1, 2, 3, -4, 0};
  std::vector<const Row*> out(keys.size(),
                              reinterpret_cast<const Row*>(0x1));
  (*table)->ProbeBatch(keys.data(), static_cast<int64_t>(keys.size()),
                       out.data());
  for (const Row* r : out) EXPECT_EQ(r, nullptr);
}

// Property-style sweep: every inserted key must probe back to its payload,
// across a range of table sizes (resize boundaries, collisions).
class DimHashTableSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(DimHashTableSizeTest, AllKeysProbeBack) {
  const int n = GetParam();
  auto stream = MakeStream(n);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"region"});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->entries(), static_cast<uint64_t>(n));
  for (int i = 1; i <= n; ++i) {
    const Row* aux = (*table)->Probe(i);
    ASSERT_NE(aux, nullptr) << "key " << i;
    EXPECT_EQ(aux->Get(0).str(), i % 2 == 0 ? "ASIA" : "EUROPE");
  }
  for (int i = n + 1; i <= n + 100; ++i) {
    EXPECT_EQ((*table)->Probe(i), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DimHashTableSizeTest,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 255, 256, 257,
                                           1000, 4096));

}  // namespace
}  // namespace core
}  // namespace clydesdale
