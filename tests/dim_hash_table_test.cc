#include <gtest/gtest.h>

#include "core/dim_hash_table.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace core {
namespace {

SchemaPtr DimSchema() {
  return Schema::Make({{"pk", TypeKind::kInt32, 4},
                       {"nation", TypeKind::kString, 10},
                       {"region", TypeKind::kString, 8}});
}

std::vector<uint8_t> MakeStream(int rows) {
  std::vector<Row> data;
  const char* regions[] = {"ASIA", "EUROPE"};
  for (int i = 1; i <= rows; ++i) {
    data.push_back(Row({Value(int32_t{i}),
                        Value(std::string("nation") + std::to_string(i % 5)),
                        Value(regions[i % 2])}));
  }
  return storage::EncodeRowStream(data);
}

TEST(DimHashTableTest, BuildsAndProbes) {
  auto stream = MakeStream(100);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 100u);
  const Row* aux = (*table)->Probe(7);
  ASSERT_NE(aux, nullptr);
  EXPECT_EQ(aux->Get(0).str(), "nation2");
  EXPECT_EQ((*table)->Probe(101), nullptr);
  EXPECT_EQ((*table)->Probe(0), nullptr);
  EXPECT_EQ((*table)->Probe(-5), nullptr);
}

TEST(DimHashTableTest, PredicateFiltersEntries) {
  auto stream = MakeStream(100);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::Eq("region", Value("ASIA")),
                                   "pk", {"nation"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 50u);
  EXPECT_EQ((*table)->stats().input_rows, 100u);
  // Even pks have region ASIA (regions[i % 2]).
  EXPECT_EQ((*table)->Probe(3), nullptr);
  EXPECT_NE((*table)->Probe(4), nullptr);
}

TEST(DimHashTableTest, ZeroAuxColumnsYieldEmptyPayload) {
  auto stream = MakeStream(10);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {});
  ASSERT_TRUE(table.ok());
  const Row* aux = (*table)->Probe(1);
  ASSERT_NE(aux, nullptr);
  EXPECT_TRUE(aux->empty());
}

TEST(DimHashTableTest, EmptyQualifyingSetProbesCleanly) {
  auto stream = MakeStream(10);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::Eq("region", Value("MARS")),
                                   "pk", {});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->entries(), 0u);
  EXPECT_EQ((*table)->Probe(1), nullptr);
}

TEST(DimHashTableTest, MemoryEstimateGrowsWithEntries) {
  auto small_stream = MakeStream(10);
  auto big_stream = MakeStream(1000);
  auto small = DimHashTable::Build(*DimSchema(), small_stream.data(),
                                   small_stream.size(), *Predicate::True(),
                                   "pk", {"nation"});
  auto big = DimHashTable::Build(*DimSchema(), big_stream.data(),
                                 big_stream.size(), *Predicate::True(), "pk",
                                 {"nation"});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT((*big)->stats().memory_bytes, (*small)->stats().memory_bytes * 10);
}

TEST(DimHashTableTest, UnknownColumnsFailCleanly) {
  auto stream = MakeStream(10);
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "nope", {})
                   .ok());
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"nope"})
                   .ok());
}

TEST(DimHashTableTest, CorruptStreamFails) {
  auto stream = MakeStream(10);
  stream.resize(stream.size() - 3);  // truncate mid-row
  EXPECT_FALSE(DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {})
                   .ok());
}

// Property-style sweep: every inserted key must probe back to its payload,
// across a range of table sizes (resize boundaries, collisions).
class DimHashTableSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(DimHashTableSizeTest, AllKeysProbeBack) {
  const int n = GetParam();
  auto stream = MakeStream(n);
  auto table = DimHashTable::Build(*DimSchema(), stream.data(), stream.size(),
                                   *Predicate::True(), "pk", {"region"});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->entries(), static_cast<uint64_t>(n));
  for (int i = 1; i <= n; ++i) {
    const Row* aux = (*table)->Probe(i);
    ASSERT_NE(aux, nullptr) << "key " << i;
    EXPECT_EQ(aux->Get(0).str(), i % 2 == 0 ? "ASIA" : "EUROPE");
  }
  for (int i = n + 1; i <= n + 100; ++i) {
    EXPECT_EQ((*table)->Probe(i), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DimHashTableSizeTest,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 255, 256, 257,
                                           1000, 4096));

}  // namespace
}  // namespace core
}  // namespace clydesdale
