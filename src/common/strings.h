#ifndef CLYDESDALE_COMMON_STRINGS_H_
#define CLYDESDALE_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace clydesdale {

/// Splits `s` on `delim`; keeps empty fields ("a||b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view delim);

/// Variadic stream-based concatenation: StrCat("x=", 3, "b").
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// "1.5 GB", "334 MB", "12 KB", "87 B" — decimal units, 1 decimal place max.
std::string HumanBytes(uint64_t bytes);

/// "215.3 s" / "12.5 min" / "980 ms" for durations given in seconds.
std::string HumanSeconds(double seconds);

/// Left-pads (negative width) or right-pads `s` with spaces to |width| chars.
std::string Pad(std::string_view s, int width);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_STRINGS_H_
