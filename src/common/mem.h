#ifndef CLYDESDALE_COMMON_MEM_H_
#define CLYDESDALE_COMMON_MEM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace clydesdale {

/// Attribution half of memory accounting: anything that can be told "these
/// bytes now exist / no longer exist". The storage layer reports through this
/// interface so it never needs to see the obs tracker tree (common < storage
/// < obs consumers); obs::MemTracker is the real implementation.
///
/// Contract: every Consume must eventually be matched by a Release of the
/// same amount, and implementations must be safe to call from any thread.
class MemReporter {
 public:
  virtual ~MemReporter() = default;
  virtual void Consume(int64_t bytes) = 0;
  virtual void Release(int64_t bytes) = 0;
};

/// RAII charge against a reporter: releases exactly what it consumed when it
/// goes out of scope, so early returns can never leak tracked bytes. A
/// default-constructed (or null-reporter) charge is a no-op everywhere.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  explicit ScopedMemCharge(std::shared_ptr<MemReporter> reporter)
      : reporter_(std::move(reporter)) {}
  ~ScopedMemCharge() { ReleaseAll(); }

  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;
  ScopedMemCharge(ScopedMemCharge&& other) noexcept
      : reporter_(std::move(other.reporter_)), charged_(other.charged_) {
    other.reporter_ = nullptr;
    other.charged_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      reporter_ = std::move(other.reporter_);
      charged_ = other.charged_;
      other.reporter_ = nullptr;
      other.charged_ = 0;
    }
    return *this;
  }

  void Add(int64_t bytes) {
    if (reporter_ == nullptr || bytes == 0) return;
    reporter_->Consume(bytes);
    charged_ += bytes;
  }

  /// Consume or release whatever delta moves the charge to `target_bytes` —
  /// the natural call for consumers that only know their current footprint
  /// (container capacities) rather than individual allocations.
  void SyncTo(int64_t target_bytes) { Add(target_bytes - charged_); }

  void ReleaseAll() {
    if (reporter_ != nullptr && charged_ != 0) {
      reporter_->Release(charged_);
    }
    charged_ = 0;
  }

  int64_t charged() const { return charged_; }
  const std::shared_ptr<MemReporter>& reporter() const { return reporter_; }

 private:
  std::shared_ptr<MemReporter> reporter_;
  int64_t charged_ = 0;
};

/// Wraps a shared byte arena so its bytes stay attributed to `reporter` for
/// exactly as long as *any* reference to the arena lives. CIF scans hand
/// string arenas to RowBatches that outlive the reader; charging at wrap
/// time and releasing in the wrapper's deleter makes the tracked total equal
/// the bytes actually held, however long consumers keep the batch around.
inline std::shared_ptr<const std::vector<uint8_t>> TrackSharedArena(
    std::shared_ptr<const std::vector<uint8_t>> arena,
    std::shared_ptr<MemReporter> reporter) {
  if (arena == nullptr || reporter == nullptr || arena->empty()) return arena;
  const int64_t bytes = static_cast<int64_t>(arena->size());
  reporter->Consume(bytes);
  const std::vector<uint8_t>* raw = arena.get();
  return std::shared_ptr<const std::vector<uint8_t>>(
      raw, [arena = std::move(arena), reporter = std::move(reporter),
            bytes](const std::vector<uint8_t>*) { reporter->Release(bytes); });
}

/// Minimal std allocator adapter charging every allocation to a reporter —
/// for containers whose element churn should be tracked allocation-accurate
/// rather than via SyncTo snapshots. The reporter must outlive every
/// container using the allocator; a null reporter degrades to std::allocator.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() = default;
  explicit TrackingAllocator(MemReporter* reporter) : reporter_(reporter) {}
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>& other)  // NOLINT(runtime/explicit)
      : reporter_(other.reporter()) {}

  T* allocate(size_t n) {
    if (reporter_ != nullptr) {
      reporter_->Consume(static_cast<int64_t>(n * sizeof(T)));
    }
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, size_t n) {
    if (reporter_ != nullptr) {
      reporter_->Release(static_cast<int64_t>(n * sizeof(T)));
    }
    std::allocator<T>().deallocate(p, n);
  }

  MemReporter* reporter() const { return reporter_; }

  friend bool operator==(const TrackingAllocator& a,
                         const TrackingAllocator& b) {
    return a.reporter_ == b.reporter_;
  }
  friend bool operator!=(const TrackingAllocator& a,
                         const TrackingAllocator& b) {
    return !(a == b);
  }

 private:
  MemReporter* reporter_ = nullptr;
};

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_MEM_H_
