#ifndef CLYDESDALE_COMMON_UNITS_H_
#define CLYDESDALE_COMMON_UNITS_H_

#include <cstdint>

namespace clydesdale {

// Decimal units (used for bandwidths and dataset sizes, matching how the
// paper reports them) and binary units (used for memory sizes).
inline constexpr uint64_t kKB = 1000ULL;
inline constexpr uint64_t kMB = 1000ULL * kKB;
inline constexpr uint64_t kGB = 1000ULL * kMB;
inline constexpr uint64_t kTB = 1000ULL * kGB;

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_UNITS_H_
