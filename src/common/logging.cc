#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/status.h"

namespace clydesdale {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex* const kMutex = new std::mutex();
  return *kMutex;
}

std::string& ThreadLogContext() {
  thread_local std::string context;
  return context;
}
}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

const std::string& LogContext() { return ThreadLogContext(); }

ScopedLogContext::ScopedLogContext(std::string context) {
  std::string& slot = ThreadLogContext();
  saved_ = std::move(slot);
  slot = std::move(context);
}

ScopedLogContext::~ScopedLogContext() { ThreadLogContext() = std::move(saved_); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_threshold.load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
    const std::string& context = ThreadLogContext();
    if (!context.empty()) stream_ << "[" << context << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace clydesdale
