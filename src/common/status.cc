#include "common/status.h"

namespace clydesdale {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) state_ = std::make_unique<State>(*other.state_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::OutOfMemory(std::string msg) {
  return Status(StatusCode::kOutOfMemory, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

const std::string& Status::message() const {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->message);
}

}  // namespace clydesdale
