#ifndef CLYDESDALE_COMMON_STOPWATCH_H_
#define CLYDESDALE_COMMON_STOPWATCH_H_

#include <chrono>

namespace clydesdale {

/// Wall-clock stopwatch for the functional measurement layer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_STOPWATCH_H_
