#ifndef CLYDESDALE_COMMON_LOGGING_H_
#define CLYDESDALE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace clydesdale {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is actually emitted (default kInfo).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// The calling thread's ambient log context ("" when unset). Non-empty
/// context is prepended to every CLY_LOG line the thread emits, e.g.
/// "[I engine.cc:42] [q2.1/m-17@node3] ...", so interleaved multi-slot
/// task logs stay attributable.
const std::string& LogContext();

/// RAII setter for the calling thread's log context; restores the previous
/// context on destruction, so nested scopes (job > task) compose.
class ScopedLogContext {
 public:
  explicit ScopedLogContext(std::string context);
  ~ScopedLogContext();

  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  std::string saved_;
};

namespace internal {

/// Stream-style log sink. Emits on destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace clydesdale

#define CLY_LOG(severity)                                             \
  ::clydesdale::internal::LogMessage(::clydesdale::LogLevel::k##severity, \
                                     __FILE__, __LINE__)

/// Fatal unless `condition` holds; use for internal invariants only (API
/// errors are reported through Status).
#define CLY_CHECK(condition)                                            \
  if (!(condition))                                                     \
  CLY_LOG(Fatal) << "Check failed: " #condition " "

#define CLY_CHECK_OK(expr)                                   \
  if (::clydesdale::Status _cly_check_st = (expr); !_cly_check_st.ok()) \
  CLY_LOG(Fatal) << "Status not OK: " << _cly_check_st.ToString() << " "

#ifndef NDEBUG
#define CLY_DCHECK(condition) CLY_CHECK(condition)
#else
#define CLY_DCHECK(condition) \
  if (false) CLY_LOG(Fatal)
#endif

#endif  // CLYDESDALE_COMMON_LOGGING_H_
