#ifndef CLYDESDALE_COMMON_LOGGING_H_
#define CLYDESDALE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace clydesdale {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is actually emitted (default kInfo).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

/// Stream-style log sink. Emits on destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace clydesdale

#define CLY_LOG(severity)                                             \
  ::clydesdale::internal::LogMessage(::clydesdale::LogLevel::k##severity, \
                                     __FILE__, __LINE__)

/// Fatal unless `condition` holds; use for internal invariants only (API
/// errors are reported through Status).
#define CLY_CHECK(condition)                                            \
  if (!(condition))                                                     \
  CLY_LOG(Fatal) << "Check failed: " #condition " "

#define CLY_CHECK_OK(expr)                                   \
  if (::clydesdale::Status _cly_check_st = (expr); !_cly_check_st.ok()) \
  CLY_LOG(Fatal) << "Status not OK: " << _cly_check_st.ToString() << " "

#ifndef NDEBUG
#define CLY_DCHECK(condition) CLY_CHECK(condition)
#else
#define CLY_DCHECK(condition) \
  if (false) CLY_LOG(Fatal)
#endif

#endif  // CLYDESDALE_COMMON_LOGGING_H_
