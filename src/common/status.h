#ifndef CLYDESDALE_COMMON_STATUS_H_
#define CLYDESDALE_COMMON_STATUS_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace clydesdale {

/// Error categories used across the library. Mirrors the usual database-system
/// convention (Arrow/RocksDB style): functions that can fail return a Status or
/// a Result<T>; exceptions are not used in the public API.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIoError = 4,
  kOutOfMemory = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kResourceExhausted = 9,
};

/// Returns a short upper-camel name for a code ("IOError", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value. The OK state carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status IoError(std::string msg);
  static Status OutOfMemory(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status ResourceExhausted(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK.
  const std::string& message() const;
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prefixes the existing message with `context + ": "`; no-op on OK.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null for OK — keeps the common path allocation-free.
  std::unique_ptr<State> state_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse
  /// (`return 42;` / `return Status::IoError(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Moves the value out; must only be called when ok().
  T ValueOrDie() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Concatenates two tokens after macro expansion; used to build unique names.
#define CLY_CONCAT_IMPL(x, y) x##y
#define CLY_CONCAT(x, y) CLY_CONCAT_IMPL(x, y)
}  // namespace internal

/// Propagates a non-OK Status out of the enclosing function.
#define CLY_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::clydesdale::Status _st = (expr);            \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define CLY_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  CLY_ASSIGN_OR_RETURN_IMPL(CLY_CONCAT(_cly_result_, __LINE__), lhs, rexpr)

#define CLY_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).ValueOrDie()

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_STATUS_H_
