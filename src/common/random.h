#ifndef CLYDESDALE_COMMON_RANDOM_H_
#define CLYDESDALE_COMMON_RANDOM_H_

#include <cstdint>

namespace clydesdale {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64. Used by
/// the SSB generator and by tests; never by anything security-sensitive.
class Random {
 public:
  explicit Random(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_RANDOM_H_
