#ifndef CLYDESDALE_COMMON_SKETCH_H_
#define CLYDESDALE_COMMON_SKETCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace clydesdale {

/// HyperLogLog cardinality sketch (Flajolet et al. 2007) used by the ANALYZE
/// pass to estimate per-column NDV. Fixed precision p = 14 (16384 one-byte
/// registers, 16 KB): standard error 1.04/sqrt(2^14) ~= 0.81%, comfortably
/// inside the catalog's 2% acceptance band at 1M distinct values. Sketches
/// over the same stream merge losslessly (register-wise max), so ANALYZE can
/// sketch split-parallel and combine.
class HllSketch {
 public:
  static constexpr int kPrecision = 14;
  static constexpr size_t kNumRegisters = size_t{1} << kPrecision;

  HllSketch() : registers_(kNumRegisters, 0) {}

  /// Feeds one pre-hashed value. The hash must be well mixed over all 64
  /// bits (Mix64/HashBytes qualify; raw sequential ints do not).
  void AddHash(uint64_t hash);

  void AddInt64(int64_t v) { AddHash(Mix64(static_cast<uint64_t>(v))); }
  void AddDouble(double v);
  void AddString(std::string_view s) { AddHash(HashString(s)); }

  /// Estimated number of distinct values added, with the standard
  /// linear-counting correction in the small-cardinality regime.
  double Estimate() const;

  /// Register-wise max; `other` must use the same precision (always true —
  /// precision is a compile-time constant).
  void Merge(const HllSketch& other);

  /// Registers as 2*kNumRegisters lowercase hex chars, for the text
  /// StatsCatalog persistence format (newline- and space-free).
  std::string SerializeHex() const;
  static Result<HllSketch> DeserializeHex(std::string_view hex);

  const std::vector<uint8_t>& registers() const { return registers_; }

 private:
  std::vector<uint8_t> registers_;
};

/// Equal-height histogram over a numeric column: `counts[i]` rows fall in
/// (bounds[i], bounds[i+1]], bucket 0 additionally includes its lower bound.
/// bounds.size() == counts.size() + 1 and bounds[0] is the column min.
/// Equal values never straddle a bucket boundary, so a heavy hitter yields
/// one oversized bucket instead of several lying ones (the all-equal column
/// degenerates to a single bucket).
struct EquiDepthHistogram {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;

  bool empty() const { return counts.empty(); }
  uint64_t total_rows() const;

  /// Estimated fraction of rows with value <= v, interpolating linearly
  /// inside the containing bucket. Returns 0 for an empty histogram.
  double SelectivityLessEq(double v) const;
};

/// Builds an equi-depth histogram with at most `num_buckets` buckets from a
/// full or sampled set of column values (need not be sorted; sorted in
/// place). Fewer buckets come back when the data has fewer distinct values
/// than requested. An empty input yields an empty histogram.
EquiDepthHistogram BuildEquiDepthHistogram(std::vector<double> values,
                                           int num_buckets);

/// Fixed-size uniform reservoir sample (Vitter's algorithm R) with a
/// deterministic internal PRNG, so ANALYZE is reproducible run to run.
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity, uint64_t seed = 0x5eed5eed5eedULL)
      : capacity_(capacity), state_(Mix64(seed | 1)) {}

  void Add(double v);
  uint64_t seen() const { return seen_; }
  /// The sample so far (unordered). Moves out; the reservoir keeps working.
  const std::vector<double>& values() const { return values_; }

 private:
  uint64_t NextRandom();

  size_t capacity_;
  uint64_t state_;
  uint64_t seen_ = 0;
  std::vector<double> values_;
};

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_SKETCH_H_
