#ifndef CLYDESDALE_COMMON_HASH_H_
#define CLYDESDALE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace clydesdale {

/// Finalizer from MurmurHash3: a fast, well-mixed 64->64 bit hash. Used for
/// join keys and shuffle partitioning.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over arbitrary bytes; adequate for strings and encoded rows.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace clydesdale

#endif  // CLYDESDALE_COMMON_HASH_H_
