#include "common/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace clydesdale {

void HllSketch::AddHash(uint64_t hash) {
  const size_t index = static_cast<size_t>(hash >> (64 - kPrecision));
  const uint64_t suffix = hash << kPrecision;
  // Rank = leading-zero run of the suffix + 1; an all-zero suffix saturates
  // at the maximum observable rank for a 64-bit hash.
  const uint8_t rank =
      suffix == 0 ? static_cast<uint8_t>(64 - kPrecision + 1)
                  : static_cast<uint8_t>(__builtin_clzll(suffix) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

void HllSketch::AddDouble(double v) {
  // Canonicalize -0.0 so it counts as the same value as +0.0.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AddHash(Mix64(bits));
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(kNumRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    zero_registers += reg == 0;
  }
  const double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zero_registers > 0) {
    // Linear counting: far more accurate while most registers are empty.
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

void HllSketch::Merge(const HllSketch& other) {
  for (size_t i = 0; i < kNumRegisters; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

std::string HllSketch::SerializeHex() const {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * kNumRegisters);
  for (uint8_t reg : registers_) {
    out.push_back(kHex[reg >> 4]);
    out.push_back(kHex[reg & 0xf]);
  }
  return out;
}

Result<HllSketch> HllSketch::DeserializeHex(std::string_view hex) {
  if (hex.size() != 2 * kNumRegisters) {
    return Status::InvalidArgument("hll hex payload has wrong length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  HllSketch sketch;
  for (size_t i = 0; i < kNumRegisters; ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("hll hex payload has non-hex character");
    }
    sketch.registers_[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return sketch;
}

uint64_t EquiDepthHistogram::total_rows() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

double EquiDepthHistogram::SelectivityLessEq(double v) const {
  const uint64_t total = total_rows();
  if (total == 0) return 0.0;
  if (v < bounds.front()) return 0.0;
  uint64_t below = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double lo = bounds[i];
    const double hi = bounds[i + 1];
    if (v >= hi) {
      below += counts[i];
      continue;
    }
    const double width = hi - lo;
    const double fraction = width > 0 ? (v - lo) / width : 1.0;
    below += static_cast<uint64_t>(fraction * static_cast<double>(counts[i]));
    break;
  }
  return static_cast<double>(std::min(below, total)) /
         static_cast<double>(total);
}

EquiDepthHistogram BuildEquiDepthHistogram(std::vector<double> values,
                                           int num_buckets) {
  EquiDepthHistogram hist;
  if (values.empty() || num_buckets <= 0) return hist;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  const size_t depth =
      (n + static_cast<size_t>(num_buckets) - 1) / static_cast<size_t>(num_buckets);
  hist.bounds.push_back(values.front());
  size_t start = 0;
  while (start < n) {
    size_t end = std::min(n, start + depth);
    // Never split a run of equal values across buckets: extend until the
    // value changes (the all-equal input collapses to one bucket).
    while (end < n && values[end] == values[end - 1]) ++end;
    hist.counts.push_back(static_cast<uint64_t>(end - start));
    hist.bounds.push_back(values[end - 1]);
    start = end;
  }
  return hist;
}

void ReservoirSample::Add(double v) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(v);
    return;
  }
  const uint64_t j = NextRandom() % seen_;
  if (j < capacity_) values_[static_cast<size_t>(j)] = v;
}

uint64_t ReservoirSample::NextRandom() {
  // splitmix64 step: full-period, deterministic, and state fits one word.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace clydesdale
