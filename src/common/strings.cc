#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace clydesdale {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1000.0 && unit < 5) {
    v /= 1000.0;
    ++unit;
  }
  if (unit == 0) return StrCat(bytes, " B");
  // One decimal place, but drop ".0".
  std::string num = FormatDouble(v, 1);
  if (EndsWith(num, ".0")) num.resize(num.size() - 2);
  return StrCat(num, " ", kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1.0) return StrCat(FormatDouble(seconds * 1000.0, 0), " ms");
  if (seconds < 120.0) return StrCat(FormatDouble(seconds, 1), " s");
  if (seconds < 7200.0) return StrCat(FormatDouble(seconds / 60.0, 1), " min");
  return StrCat(FormatDouble(seconds / 3600.0, 2), " h");
}

std::string Pad(std::string_view s, int width) {
  const size_t w = static_cast<size_t>(width < 0 ? -width : width);
  if (s.size() >= w) return std::string(s);
  std::string pad(w - s.size(), ' ');
  return width < 0 ? pad + std::string(s) : std::string(s) + pad;
}

}  // namespace clydesdale
