#include "serving/query_server.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "mapreduce/counters.h"

namespace clydesdale {
namespace serving {

namespace {

core::ClydesdaleOptions WithCache(core::ClydesdaleOptions options,
                                  std::shared_ptr<core::DimTableCache> cache) {
  options.dim_cache = std::move(cache);
  return options;
}

}  // namespace

QueryServer::QueryServer(mr::MrCluster* cluster, core::StarSchema star,
                         QueryServerOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      dim_cache_(std::make_shared<core::DimTableCache>(
          core::DimTableCache::Options{options_.dim_cache_bytes},
          cluster->mem_tracker())),
      engine_(cluster, std::move(star),
              WithCache(options_.engine, dim_cache_)) {
  // Expose the cache footprint to every job's MetricsPoller (cly_cache_*
  // gauges) without the mapreduce layer knowing this layer exists.
  cluster_->SetCacheStatsProbe([cache = dim_cache_] {
    const core::DimTableCacheStats s = cache->stats();
    return std::make_pair(s.resident_bytes, s.entries);
  });
  const int threads = std::max(1, options_.worker_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  cluster_->SetCacheStatsProbe(nullptr);
}

uint64_t QueryServer::ResultCacheKey(const core::StarQuerySpec& spec) {
  uint64_t h = HashString(spec.id);
  h = HashCombine(h, HashString(spec.fact_predicate->ToString()));
  for (const core::DimJoinSpec& join : spec.dims) {
    h = HashCombine(h, HashString(join.dimension));
    h = HashCombine(h, HashString(join.fact_fk));
    h = HashCombine(
        h, core::FilterFingerprint(*join.predicate, join.dim_pk,
                                   join.aux_columns));
    // The dimension's catalog version: a reload makes every cached result
    // that read the old data unreachable.
    if (auto dim = engine_.star().dim(join.dimension); dim.ok()) {
      h = HashCombine(h, Mix64(static_cast<uint64_t>(
                             cluster_->table_version((*dim)->desc.path))));
    }
  }
  for (const core::AggSpec& agg : spec.aggregates) {
    h = HashCombine(h, HashString(agg.name));
    h = HashCombine(h, HashString(core::AggKindToString(agg.kind)));
    if (agg.expr != nullptr) {
      h = HashCombine(h, HashString(agg.expr->ToString()));
    }
  }
  for (const std::string& g : spec.group_by) h = HashCombine(h, HashString(g));
  for (const core::OrderBySpec& o : spec.order_by) {
    h = HashCombine(h, HashString(o.column));
    h = HashCombine(h, o.ascending ? 1 : 2);
  }
  const std::string& fact_path = engine_.star().fact().path;
  h = HashCombine(h, HashString(fact_path));
  h = HashCombine(
      h, Mix64(static_cast<uint64_t>(cluster_->table_version(fact_path))));
  return h;
}

Result<core::QueryResult> QueryServer::Execute(
    const core::StarQuerySpec& spec) {
  const uint64_t key = ResultCacheKey(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_;
    if (options_.result_cache_entries > 0) {
      auto it = result_index_.find(key);
      if (it != result_index_.end()) {
        result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
        ++result_cache_hits_;
        core::QueryResult result = it->second->result;
        result.from_result_cache = true;
        return result;
      }
    }
  }

  CLY_ASSIGN_OR_RETURN(core::QueryResult result, engine_.Execute(spec));

  const core::DimTableCacheStats cache_stats = dim_cache_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  // Surface the cache activity the build path can't see from inside a task:
  // evictions (which happen on *other* queries' inserts) as a once-each
  // delta, and the post-query resident footprint. Rides the standard flush
  // helper so check_counters.sh audit #7 covers it.
  const int64_t evict_delta = cache_stats.evictions - evictions_flushed_;
  evictions_flushed_ = cache_stats.evictions;
  if (!result.stage_reports.empty()) {
    mr::AddDimCacheCounters(/*hits=*/0, /*misses=*/0, evict_delta,
                            cache_stats.resident_bytes,
                            &result.stage_reports.back().counters);
  }
  if (options_.result_cache_entries > 0) {
    result_lru_.push_front({key, result});
    result_index_[key] = result_lru_.begin();
    while (result_lru_.size() > options_.result_cache_entries) {
      result_index_.erase(result_lru_.back().key);
      result_lru_.pop_back();
    }
  }
  return result;
}

std::future<Result<core::QueryResult>> QueryServer::Submit(
    core::StarQuerySpec spec) {
  auto pending = std::make_unique<PendingQuery>();
  pending->spec = std::move(spec);
  std::future<Result<core::QueryResult>> future =
      pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void QueryServer::WorkerLoop() {
  while (true) {
    std::unique_ptr<PendingQuery> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and the queue has drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job->promise.set_value(Execute(job->spec));
  }
}

void QueryServer::Invalidate(const std::string& table_path) {
  cluster_->InvalidateTable(table_path);  // version bump
  dim_cache_->Invalidate(table_path);
  // Result entries keyed with the old version can never hit again; drop
  // them eagerly anyway so their rows don't linger until LRU turnover.
  std::lock_guard<std::mutex> lock(mu_);
  result_index_.clear();
  result_lru_.clear();
}

void QueryServer::InvalidateAll() {
  dim_cache_->Clear();
  std::lock_guard<std::mutex> lock(mu_);
  result_index_.clear();
  result_lru_.clear();
}

QueryServerStats QueryServer::stats() const {
  QueryServerStats stats;
  stats.dim_cache = dim_cache_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  stats.queries = queries_;
  stats.result_cache_hits = result_cache_hits_;
  return stats;
}

}  // namespace serving
}  // namespace clydesdale
