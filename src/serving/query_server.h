#ifndef CLYDESDALE_SERVING_QUERY_SERVER_H_
#define CLYDESDALE_SERVING_QUERY_SERVER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/clydesdale.h"
#include "core/dim_table_cache.h"
#include "core/star_query.h"
#include "core/star_schema.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace serving {

struct QueryServerOptions {
  /// Per-query engine knobs; dim_cache is overwritten with the server's own
  /// cross-query cache.
  core::ClydesdaleOptions engine;
  /// LRU threshold of the cross-query DimHashTable cache; 0 = unbounded.
  uint64_t dim_cache_bytes = 256ull << 20;
  /// Exact-repeat result cache capacity (entries); 0 disables it.
  size_t result_cache_entries = 64;
  /// Executor threads draining Submit()'s queue. Execute() callers are
  /// additional concurrency on top — both paths are thread-safe.
  int worker_threads = 2;
};

struct QueryServerStats {
  int64_t queries = 0;
  int64_t result_cache_hits = 0;
  core::DimTableCacheStats dim_cache;
};

/// Resident query-serving mode (ROADMAP item 4, DESIGN.md §15): a
/// long-lived front end over one MrCluster that accepts a stream of star
/// queries and amortizes dimension work across them — the cross-query
/// extension of the paper's JVM-reuse insight (§5.2).
///
/// Layers, fastest first:
///   1. result cache — exact-repeat queries (same spec fingerprint AND same
///      table versions) return the previous rows without running a job;
///   2. dim-table cache — distinct queries sharing dimension filters probe
///      already-built DimHashTables, turning their map phase probe-only;
///   3. the engine — anything else pays the full build, priming both caches.
///
/// Invalidation: table reloads funnel through MrCluster::InvalidateTable,
/// which bumps the path's catalog version; both caches key on versions, so
/// stale entries are unreachable the moment the bump lands. Invalidate()
/// additionally drops them eagerly.
///
/// Concurrency: N clients may call Execute() (or Submit(), which queues onto
/// the worker pool) at once; concurrent jobs share the cluster's persistent
/// pull-based trackers, and concurrent builds of the same cache entry are
/// single-flighted. The dim cache's bytes live in a dedicated MemTracker
/// child of the cluster root, so cache + running jobs answer to one budget.
class QueryServer {
 public:
  QueryServer(mr::MrCluster* cluster, core::StarSchema star,
              QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Runs (or answers from cache) one query. Thread-safe; blocking.
  Result<core::QueryResult> Execute(const core::StarQuerySpec& spec);

  /// Queues the query onto the worker pool; the future resolves when a
  /// worker finishes it.
  std::future<Result<core::QueryResult>> Submit(core::StarQuerySpec spec);

  /// Explicit invalidation: bumps the table's catalog version (dropping the
  /// cluster's cached TableDesc) and eagerly evicts both caches' entries
  /// built from it.
  void Invalidate(const std::string& table_path);

  /// Drops everything from both caches (versions are untouched).
  void InvalidateAll();

  QueryServerStats stats() const;
  const std::shared_ptr<core::DimTableCache>& dim_cache() const {
    return dim_cache_;
  }
  const core::StarSchema& star() const { return engine_.star(); }

 private:
  struct ResultEntry {
    uint64_t key = 0;
    core::QueryResult result;
  };
  struct PendingQuery {
    core::StarQuerySpec spec;
    std::promise<Result<core::QueryResult>> promise;
  };

  /// Fingerprint of the full query spec plus the current catalog versions of
  /// every table it touches — equal keys imply byte-identical results.
  uint64_t ResultCacheKey(const core::StarQuerySpec& spec);
  void WorkerLoop();

  mr::MrCluster* const cluster_;
  QueryServerOptions options_;
  std::shared_ptr<core::DimTableCache> dim_cache_;
  core::ClydesdaleEngine engine_;

  mutable std::mutex mu_;
  std::list<ResultEntry> result_lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<ResultEntry>::iterator> result_index_;
  int64_t queries_ = 0;
  int64_t result_cache_hits_ = 0;
  /// Cache evictions already surfaced into some query's counters, so each
  /// eviction is reported exactly once across the stream.
  int64_t evictions_flushed_ = 0;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingQuery>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serving
}  // namespace clydesdale

#endif  // CLYDESDALE_SERVING_QUERY_SERVER_H_
