#ifndef CLYDESDALE_SQL_LEXER_H_
#define CLYDESDALE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace clydesdale {
namespace sql {

enum class TokenKind {
  kIdent,    // column / table names (also matches keywords; case-insensitive)
  kNumber,   // integer literal
  kString,   // 'single quoted'
  kSymbol,   // ( ) , = != <> < <= > >= + - *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier text lower-cased for keyword matching; original case kept in
  /// `raw` (SSB strings are case-sensitive, identifiers are not).
  std::string text;
  std::string raw;
  int64_t number = 0;
  size_t position = 0;  // byte offset, for error messages

  bool IsKeyword(const char* keyword) const {
    return kind == TokenKind::kIdent && text == keyword;
  }
  bool IsSymbol(const char* symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// Splits a SQL string into tokens. Comments are not supported; strings use
/// single quotes with '' as the escape.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace clydesdale

#endif  // CLYDESDALE_SQL_LEXER_H_
