#include "sql/parser.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "sql/lexer.h"

namespace clydesdale {
namespace sql {

namespace {

using core::DimJoinSpec;
using core::StarQuerySpec;
using core::StarSchema;

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

/// Last path segment ("/ssb/lineorder" -> "lineorder").
std::string TableBaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

struct ColumnRef {
  bool from_fact = false;
  std::string dimension;  // when !from_fact
  std::string column;     // canonical (schema) name
  TypeKind type = TypeKind::kInt32;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const StarSchema& star)
      : tokens_(std::move(tokens)), star_(star) {}

  Result<StarQuerySpec> Parse() {
    CLY_RETURN_IF_ERROR(ExpectKeyword("select"));
    CLY_RETURN_IF_ERROR(ParseSelectList());
    CLY_RETURN_IF_ERROR(ExpectKeyword("from"));
    CLY_RETURN_IF_ERROR(ParseFrom());
    if (Peek().IsKeyword("where")) {
      Advance();
      CLY_RETURN_IF_ERROR(ParseWhere());
    }
    if (Peek().IsKeyword("group")) {
      Advance();
      CLY_RETURN_IF_ERROR(ExpectKeyword("by"));
      CLY_RETURN_IF_ERROR(ParseGroupBy());
    } else if (!select_columns_.empty()) {
      return Error("non-aggregate select columns require GROUP BY");
    }
    if (Peek().IsKeyword("order")) {
      Advance();
      CLY_RETURN_IF_ERROR(ExpectKeyword("by"));
      CLY_RETURN_IF_ERROR(ParseOrderBy());
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error(StrCat("unexpected trailing input '", Peek().raw, "'"));
    }
    return Finish();
  }

 private:
  // --- token helpers ----------------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + static_cast<size_t>(ahead),
                              tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("SQL error at offset ", Peek().position, ": ", message));
  }

  Status ExpectKeyword(const char* keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error(StrCat("expected '", keyword, "', found '", Peek().raw, "'"));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Error(StrCat("expected '", symbol, "', found '", Peek().raw, "'"));
    }
    Advance();
    return Status::OK();
  }

  // --- name resolution -----------------------------------------------------------
  Result<ColumnRef> ResolveColumn(const std::string& name_in) {
    std::string name = Lower(name_in);
    // Strip an optional table qualifier.
    if (const size_t dot = name.find('.'); dot != std::string::npos) {
      name = name.substr(dot + 1);
    }
    ColumnRef ref;
    int matches = 0;
    if (const int i = star_.fact().schema->IndexOf(name); i >= 0) {
      ref.from_fact = true;
      ref.column = name;
      ref.type = star_.fact().schema->field(i).type;
      ++matches;
    }
    for (const auto& [dim_name, dim] : star_.dims()) {
      if (const int i = dim.desc.schema->IndexOf(name); i >= 0) {
        ref.from_fact = false;
        ref.dimension = dim_name;
        ref.column = name;
        ref.type = dim.desc.schema->field(i).type;
        ++matches;
      }
    }
    if (matches == 0) return Error(StrCat("unknown column '", name_in, "'"));
    if (matches > 1) {
      return Error(StrCat("ambiguous column '", name_in, "'"));
    }
    return ref;
  }

  Result<Value> LiteralFor(const ColumnRef& column) {
    const Token& token = Peek();
    if (token.kind == TokenKind::kString) {
      if (column.type != TypeKind::kString) {
        return Error(StrCat("string literal for non-string column '",
                            column.column, "'"));
      }
      Advance();
      return Value(token.raw);
    }
    if (token.kind == TokenKind::kNumber) {
      Advance();
      switch (column.type) {
        case TypeKind::kInt32:
          return Value(static_cast<int32_t>(token.number));
        case TypeKind::kInt64:
          return Value(static_cast<int64_t>(token.number));
        case TypeKind::kDouble:
          return Value(static_cast<double>(token.number));
        case TypeKind::kString:
          return Error(StrCat("numeric literal for string column '",
                              column.column, "'"));
      }
    }
    return Error(StrCat("expected a literal, found '", token.raw, "'"));
  }

  static bool IsAggKeyword(const Token& token, core::AggKind* kind) {
    if (token.IsKeyword("sum")) *kind = core::AggKind::kSum;
    else if (token.IsKeyword("count")) *kind = core::AggKind::kCount;
    else if (token.IsKeyword("min")) *kind = core::AggKind::kMin;
    else if (token.IsKeyword("max")) *kind = core::AggKind::kMax;
    else if (token.IsKeyword("avg")) *kind = core::AggKind::kAvg;
    else return false;
    return true;
  }

  // --- SELECT ----------------------------------------------------------------------
  Status ParseSelectList() {
    while (true) {
      core::AggKind kind;
      if (IsAggKeyword(Peek(), &kind) && Peek(1).IsSymbol("(")) {
        Advance();
        CLY_RETURN_IF_ERROR(ExpectSymbol("("));
        Expr::Ptr expr;
        if (kind == core::AggKind::kCount) {
          // COUNT(*) or COUNT(expr); rows have no NULLs, so both count rows.
          if (Peek().IsSymbol("*")) {
            Advance();
          } else {
            CLY_ASSIGN_OR_RETURN(Expr::Ptr ignored, ParseScalarExpr());
            (void)ignored;
          }
        } else {
          CLY_ASSIGN_OR_RETURN(expr, ParseScalarExpr());
        }
        CLY_RETURN_IF_ERROR(ExpectSymbol(")"));
        std::string name =
            StrCat(core::AggKindToString(kind), aggregates_.size() + 1);
        if (Peek().IsKeyword("as")) {
          Advance();
          if (Peek().kind != TokenKind::kIdent) {
            return Error("expected an alias after AS");
          }
          name = Lower(Advance().raw);
        }
        aggregates_.push_back({name, std::move(expr), kind});
      } else if (Peek().kind == TokenKind::kIdent) {
        CLY_ASSIGN_OR_RETURN(ColumnRef ref, ResolveColumn(Advance().raw));
        select_columns_.push_back(std::move(ref));
      } else {
        return Error("expected a column or SUM(...) in SELECT");
      }
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (aggregates_.empty()) {
      return Error("star queries need at least one aggregate "
                   "(SUM/COUNT/MIN/MAX/AVG)");
    }
    return Status::OK();
  }

  /// expr := term (('+'|'-') term)*; term := primary ('*' primary)*;
  /// primary := number | column | '(' expr ')'. Columns must be fact columns
  /// (aggregates run while scanning the fact table).
  Result<Expr::Ptr> ParseScalarExpr() {
    CLY_ASSIGN_OR_RETURN(Expr::Ptr left, ParseTerm());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const bool add = Peek().IsSymbol("+");
      Advance();
      CLY_ASSIGN_OR_RETURN(Expr::Ptr right, ParseTerm());
      left = add ? Expr::Add(left, right) : Expr::Sub(left, right);
    }
    return left;
  }

  Result<Expr::Ptr> ParseTerm() {
    CLY_ASSIGN_OR_RETURN(Expr::Ptr left, ParsePrimary());
    while (Peek().IsSymbol("*")) {
      Advance();
      CLY_ASSIGN_OR_RETURN(Expr::Ptr right, ParsePrimary());
      left = Expr::Mul(left, right);
    }
    return left;
  }

  Result<Expr::Ptr> ParsePrimary() {
    if (Peek().IsSymbol("(")) {
      Advance();
      CLY_ASSIGN_OR_RETURN(Expr::Ptr inner, ParseScalarExpr());
      CLY_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (Peek().kind == TokenKind::kNumber) {
      const int64_t n = Advance().number;
      return Expr::Lit(Value(n));
    }
    if (Peek().kind == TokenKind::kIdent) {
      CLY_ASSIGN_OR_RETURN(ColumnRef ref, ResolveColumn(Advance().raw));
      if (!ref.from_fact) {
        return Error(StrCat("aggregate input '", ref.column,
                            "' must be a fact-table column"));
      }
      return Expr::Col(ref.column);
    }
    return Error(StrCat("expected an expression, found '", Peek().raw, "'"));
  }

  // --- FROM ------------------------------------------------------------------------
  Status ParseFrom() {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a table name in FROM");
      }
      const std::string name = Lower(Advance().raw);
      if (name == TableBaseName(star_.fact().path)) {
        if (saw_fact_) return Error("fact table listed twice");
        saw_fact_ = true;
      } else if (star_.dims().count(name) > 0) {
        if (std::find(from_dims_.begin(), from_dims_.end(), name) !=
            from_dims_.end()) {
          return Error(StrCat("dimension '", name, "' listed twice"));
        }
        from_dims_.push_back(name);
      } else {
        return Error(StrCat("unknown table '", name, "'"));
      }
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (!saw_fact_) return Error("FROM must include the fact table");
    return Status::OK();
  }

  // --- WHERE -----------------------------------------------------------------------
  Status ParseWhere() {
    while (true) {
      CLY_RETURN_IF_ERROR(ParseCondition());
      if (!Peek().IsKeyword("and")) break;
      Advance();
    }
    return Status::OK();
  }

  /// condition := '(' simple (OR simple)* ')' | simple
  Status ParseCondition() {
    if (Peek().IsSymbol("(")) {
      Advance();
      std::vector<Predicate::Ptr> branches;
      std::string owner_dim;
      bool owner_fact = false;
      while (true) {
        CLY_ASSIGN_OR_RETURN(OwnedPredicate p, ParseSimple());
        if (branches.empty()) {
          owner_dim = p.dimension;
          owner_fact = p.from_fact;
        } else if (p.from_fact != owner_fact || p.dimension != owner_dim) {
          return Error("OR branches must all constrain the same table");
        }
        branches.push_back(std::move(p.predicate));
        if (Peek().IsKeyword("or")) {
          Advance();
          continue;
        }
        break;
      }
      CLY_RETURN_IF_ERROR(ExpectSymbol(")"));
      AttachPredicate(owner_fact, owner_dim,
                      branches.size() == 1 ? branches[0]
                                           : Predicate::Or(std::move(branches)));
      return Status::OK();
    }
    // A plain simple condition — or a join condition (column = column).
    if (Peek().kind == TokenKind::kIdent && Peek(1).IsSymbol("=") &&
        Peek(2).kind == TokenKind::kIdent && !Peek(2).IsKeyword("and")) {
      // column = column: a join.
      CLY_ASSIGN_OR_RETURN(ColumnRef left, ResolveColumn(Advance().raw));
      Advance();  // '='
      CLY_ASSIGN_OR_RETURN(ColumnRef right, ResolveColumn(Advance().raw));
      if (left.from_fact == right.from_fact) {
        return Error("join conditions must relate the fact table to a "
                     "dimension");
      }
      const ColumnRef& fact_side = left.from_fact ? left : right;
      const ColumnRef& dim_side = left.from_fact ? right : left;
      if (joins_.count(dim_side.dimension) > 0) {
        return Error(StrCat("dimension '", dim_side.dimension,
                            "' joined twice"));
      }
      joins_[dim_side.dimension] =
          std::make_pair(fact_side.column, dim_side.column);
      return Status::OK();
    }
    CLY_ASSIGN_OR_RETURN(OwnedPredicate p, ParseSimple());
    AttachPredicate(p.from_fact, p.dimension, std::move(p.predicate));
    return Status::OK();
  }

  struct OwnedPredicate {
    Predicate::Ptr predicate;
    bool from_fact = false;
    std::string dimension;
  };

  /// simple := col op literal | col BETWEEN lit AND lit | col IN '(' ... ')'
  Result<OwnedPredicate> ParseSimple() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected a column in WHERE");
    }
    CLY_ASSIGN_OR_RETURN(ColumnRef column, ResolveColumn(Advance().raw));
    OwnedPredicate out;
    out.from_fact = column.from_fact;
    out.dimension = column.dimension;

    if (Peek().IsKeyword("between")) {
      Advance();
      CLY_ASSIGN_OR_RETURN(Value lo, LiteralFor(column));
      CLY_RETURN_IF_ERROR(ExpectKeyword("and"));
      CLY_ASSIGN_OR_RETURN(Value hi, LiteralFor(column));
      out.predicate = Predicate::Between(column.column, std::move(lo),
                                         std::move(hi));
      return out;
    }
    if (Peek().IsKeyword("in")) {
      Advance();
      CLY_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> values;
      while (true) {
        CLY_ASSIGN_OR_RETURN(Value v, LiteralFor(column));
        values.push_back(std::move(v));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      CLY_RETURN_IF_ERROR(ExpectSymbol(")"));
      out.predicate = Predicate::In(column.column, std::move(values));
      return out;
    }
    if (Peek().kind != TokenKind::kSymbol) {
      return Error(StrCat("expected a comparison after '", column.column, "'"));
    }
    const std::string op = Advance().text;
    CLY_ASSIGN_OR_RETURN(Value literal, LiteralFor(column));
    if (op == "=") {
      out.predicate = Predicate::Eq(column.column, std::move(literal));
    } else if (op == "!=" || op == "<>") {
      out.predicate = Predicate::Ne(column.column, std::move(literal));
    } else if (op == "<") {
      out.predicate = Predicate::Lt(column.column, std::move(literal));
    } else if (op == "<=") {
      out.predicate = Predicate::Le(column.column, std::move(literal));
    } else if (op == ">") {
      out.predicate = Predicate::Gt(column.column, std::move(literal));
    } else if (op == ">=") {
      out.predicate = Predicate::Ge(column.column, std::move(literal));
    } else {
      return Error(StrCat("unsupported operator '", op, "'"));
    }
    return out;
  }

  void AttachPredicate(bool from_fact, const std::string& dimension,
                       Predicate::Ptr predicate) {
    if (from_fact) {
      fact_predicates_.push_back(std::move(predicate));
    } else {
      dim_predicates_[dimension].push_back(std::move(predicate));
    }
  }

  // --- GROUP BY / ORDER BY --------------------------------------------------------
  Status ParseGroupBy() {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a column in GROUP BY");
      }
      CLY_ASSIGN_OR_RETURN(ColumnRef ref, ResolveColumn(Advance().raw));
      group_by_.push_back(std::move(ref));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    // The non-aggregate select list must be exactly the GROUP BY set.
    auto names = [](const std::vector<ColumnRef>& refs) {
      std::vector<std::string> out;
      for (const ColumnRef& r : refs) out.push_back(r.column);
      std::sort(out.begin(), out.end());
      return out;
    };
    if (names(select_columns_) != names(group_by_)) {
      return Error("SELECT's non-aggregate columns must match GROUP BY");
    }
    return Status::OK();
  }

  Status ParseOrderBy() {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a column in ORDER BY");
      }
      core::OrderBySpec ob;
      ob.column = Lower(Advance().raw);
      if (Peek().IsKeyword("asc")) {
        Advance();
      } else if (Peek().IsKeyword("desc")) {
        ob.ascending = false;
        Advance();
      }
      order_by_.push_back(std::move(ob));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  // --- assembly ---------------------------------------------------------------------
  Result<StarQuerySpec> Finish() {
    StarQuerySpec spec;
    spec.id = "sql";
    spec.fact_predicate =
        fact_predicates_.empty()
            ? Predicate::True()
            : (fact_predicates_.size() == 1
                   ? fact_predicates_[0]
                   : Predicate::And(fact_predicates_));

    for (const std::string& dim_name : from_dims_) {
      auto join_it = joins_.find(dim_name);
      if (join_it == joins_.end()) {
        return Error(StrCat("dimension '", dim_name,
                            "' has no join condition in WHERE"));
      }
      DimJoinSpec join;
      join.dimension = dim_name;
      join.fact_fk = join_it->second.first;
      join.dim_pk = join_it->second.second;
      auto pred_it = dim_predicates_.find(dim_name);
      if (pred_it != dim_predicates_.end()) {
        join.predicate = pred_it->second.size() == 1
                             ? pred_it->second[0]
                             : Predicate::And(pred_it->second);
      }
      // Aux columns: this dimension's SELECT/GROUP BY columns, select order.
      for (const ColumnRef& ref : select_columns_) {
        if (!ref.from_fact && ref.dimension == dim_name) {
          join.aux_columns.push_back(ref.column);
        }
      }
      spec.dims.push_back(std::move(join));
    }
    // Every join must reference a dimension listed in FROM.
    for (const auto& [dim_name, join] : joins_) {
      if (std::find(from_dims_.begin(), from_dims_.end(), dim_name) ==
          from_dims_.end()) {
        return Error(StrCat("join references '", dim_name,
                            "', which is not in FROM"));
      }
    }
    // Predicates on dimensions that are never joined make no sense.
    for (const auto& [dim_name, preds] : dim_predicates_) {
      if (joins_.count(dim_name) == 0) {
        return Error(StrCat("predicate on '", dim_name,
                            "' without a join condition"));
      }
    }

    spec.aggregates = aggregates_;
    // Group-by order follows the SELECT list (the engine's output order).
    for (const ColumnRef& ref : select_columns_) {
      spec.group_by.push_back(ref.column);
    }
    // Validate ORDER BY against the output columns.
    const std::vector<std::string> output = core::OutputColumnsOf(spec);
    for (const core::OrderBySpec& ob : order_by_) {
      if (std::find(output.begin(), output.end(), ob.column) == output.end()) {
        return Error(StrCat("ORDER BY column '", ob.column,
                            "' is not in the output"));
      }
    }
    spec.order_by = order_by_;
    return spec;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const StarSchema& star_;

  std::vector<ColumnRef> select_columns_;
  std::vector<core::AggSpec> aggregates_;
  bool saw_fact_ = false;
  std::vector<std::string> from_dims_;
  /// dimension -> (fact fk, dim pk)
  std::map<std::string, std::pair<std::string, std::string>> joins_;
  std::vector<Predicate::Ptr> fact_predicates_;
  std::map<std::string, std::vector<Predicate::Ptr>> dim_predicates_;
  std::vector<ColumnRef> group_by_;
  std::vector<core::OrderBySpec> order_by_;
};

}  // namespace

Result<StarQuerySpec> ParseStarQuery(const std::string& sql,
                                     const StarSchema& star) {
  CLY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), star);
  return parser.Parse();
}

}  // namespace sql
}  // namespace clydesdale
