#ifndef CLYDESDALE_SQL_PARSER_H_
#define CLYDESDALE_SQL_PARSER_H_

#include <string>

#include "core/star_query.h"
#include "core/star_schema.h"

namespace clydesdale {
namespace sql {

/// Compiles a SQL star-join query against a registered star schema into a
/// StarQuerySpec — the declarative front end the paper leaves as future work
/// (§4: "queries are currently written as Java programs").
///
/// Supported shape (exactly the SSB family):
///
///   SELECT [group columns and] SUM(expr) [AS name], ...
///   FROM fact_table, dim_table, ...
///   WHERE fact.fk = dim.pk [AND ...]            -- join conditions
///     AND column <op> literal                   -- = != < <= > >= BETWEEN IN
///     AND (col = lit OR col = lit ...)          -- OR only over one column
///   [GROUP BY col, ...]
///   [ORDER BY col [ASC|DESC], ...]
///
/// Semantics follow the engine's model: every listed dimension must join the
/// fact table on exactly one fk = pk equality; non-join predicates attach to
/// whichever table owns the column; selected/grouped dimension columns
/// become that join's aux columns. Identifiers are case-insensitive; string
/// literals are not.
Result<core::StarQuerySpec> ParseStarQuery(const std::string& sql,
                                           const core::StarSchema& star);

}  // namespace sql
}  // namespace clydesdale

#endif  // CLYDESDALE_SQL_PARSER_H_
