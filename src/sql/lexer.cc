#include "sql/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace clydesdale {
namespace sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '.' || c == '#';
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      token.kind = TokenKind::kIdent;
      token.raw = sql.substr(i, j - i);
      token.text = token.raw;
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      token.kind = TokenKind::kNumber;
      token.raw = sql.substr(i, j - i);
      token.text = token.raw;
      token.number = std::stoll(token.raw);
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      while (true) {
        if (j >= n) {
          return Status::InvalidArgument(
              StrCat("unterminated string literal at offset ", i));
        }
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            value.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      token.kind = TokenKind::kString;
      token.text = value;
      token.raw = value;
      i = j + 1;
    } else {
      // Two-character operators first.
      static const char* kTwo[] = {"!=", "<>", "<=", ">="};
      std::string sym(1, c);
      if (i + 1 < n) {
        const std::string pair = sql.substr(i, 2);
        for (const char* two : kTwo) {
          if (pair == two) {
            sym = pair;
            break;
          }
        }
      }
      static const std::string kSingles = "(),=<>+-*";
      if (sym.size() == 1 && kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("unexpected character '", std::string(1, c),
                   "' at offset ", i));
      }
      token.kind = TokenKind::kSymbol;
      token.text = sym;
      token.raw = sym;
      i += sym.size();
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace clydesdale
