#include "hdfs/placement_policy.h"

#include <algorithm>

#include "common/strings.h"

namespace clydesdale {
namespace hdfs {

Result<std::vector<NodeId>> DefaultPlacementPolicy::ChooseReplicas(
    const PlacementRequest& req) {
  if (req.alive_nodes.empty()) {
    return Status::ResourceExhausted("no alive datanodes");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> candidates = req.alive_nodes;
  std::vector<NodeId> chosen;
  const int want = std::min<int>(req.replication,
                                 static_cast<int>(candidates.size()));
  chosen.reserve(static_cast<size_t>(want));

  // First replica: the writer node when it is an alive datanode.
  auto writer_it =
      std::find(candidates.begin(), candidates.end(), req.writer_node);
  if (writer_it != candidates.end()) {
    chosen.push_back(req.writer_node);
    candidates.erase(writer_it);
  }
  // Remaining replicas: uniform without replacement.
  while (static_cast<int>(chosen.size()) < want) {
    const size_t pick =
        static_cast<size_t>(rng_.Uniform(0, static_cast<int64_t>(candidates.size()) - 1));
    chosen.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<long>(pick));
  }
  return chosen;
}

Result<std::vector<NodeId>> ColocatingPlacementPolicy::ChooseReplicas(
    const PlacementRequest& req) {
  if (req.colocation_group.empty()) {
    return fallback_.ChooseReplicas(req);
  }
  const auto key = std::make_pair(req.colocation_group, req.block_index);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = assignments_.find(key);
    if (it != assignments_.end()) {
      // Reuse the anchor placement, but drop nodes that have since died; the
      // caller's re-replication pass will restore the count.
      std::vector<NodeId> live;
      for (NodeId n : it->second) {
        if (std::find(req.alive_nodes.begin(), req.alive_nodes.end(), n) !=
            req.alive_nodes.end()) {
          live.push_back(n);
        }
      }
      if (!live.empty()) return live;
      // Whole replica set died; fall through to choose afresh.
    }
  }
  CLY_ASSIGN_OR_RETURN(std::vector<NodeId> chosen,
                       fallback_.ChooseReplicas(req));
  {
    std::lock_guard<std::mutex> lock(mu_);
    assignments_[key] = chosen;
  }
  return chosen;
}

void ColocatingPlacementPolicy::ForgetGroup(const std::string& group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = assignments_.lower_bound({group, 0});
  while (it != assignments_.end() && it->first.first == group) {
    it = assignments_.erase(it);
  }
}

}  // namespace hdfs
}  // namespace clydesdale
