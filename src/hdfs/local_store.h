#ifndef CLYDESDALE_HDFS_LOCAL_STORE_H_
#define CLYDESDALE_HDFS_LOCAL_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "hdfs/block.h"

namespace clydesdale {
namespace hdfs {

/// Per-node local disk, as distinct from HDFS: Clydesdale caches dimension
/// tables here (paper §4), and Hadoop's distributed cache materializes
/// broadcast files here. Byte counters feed the cost model.
class LocalStore {
 public:
  explicit LocalStore(NodeId node) : node_(node) {}

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  NodeId node() const { return node_; }

  Status Write(const std::string& path, std::vector<uint8_t> bytes);
  Status WriteShared(const std::string& path, BlockBuffer bytes);
  Result<BlockBuffer> Read(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  /// Deletes every file whose path starts with `prefix` and returns how many
  /// were removed (job-scratch GC: "/shuffle/<instance>/", "/dcache/...").
  uint64_t DeleteWithPrefix(const std::string& prefix);
  /// Drops everything (simulates a local disk failure; paper §4: nodes that
  /// lost their dimension copy re-fetch from HDFS).
  void Wipe();

  /// Files currently stored (leak tests).
  size_t file_count() const;

  uint64_t bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  const NodeId node_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, BlockBuffer> files_;
  mutable std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_LOCAL_STORE_H_
