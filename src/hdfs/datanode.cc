#include "hdfs/datanode.h"

#include "common/strings.h"

namespace clydesdale {
namespace hdfs {

bool DataNode::alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_;
}

void DataNode::Kill() {
  std::lock_guard<std::mutex> lock(mu_);
  alive_ = false;
  replicas_.clear();
}

void DataNode::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  alive_ = true;
}

Status DataNode::StoreReplica(BlockId block, BlockBuffer data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_) {
    return Status::IoError(StrCat("datanode ", id_, " is down"));
  }
  replicas_[block] = std::move(data);
  return Status::OK();
}

Result<BlockBuffer> DataNode::ReadReplica(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!alive_) {
    return Status::IoError(StrCat("datanode ", id_, " is down"));
  }
  auto it = replicas_.find(block);
  if (it == replicas_.end()) {
    return Status::NotFound(
        StrCat("block ", block, " not on datanode ", id_));
  }
  return it->second;
}

bool DataNode::HasReplica(BlockId block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_ && replicas_.count(block) > 0;
}

void DataNode::DropReplica(BlockId block) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_.erase(block);
}

size_t DataNode::NumReplicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_.size();
}

uint64_t DataNode::StoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, data] : replicas_) total += data->size();
  return total;
}

}  // namespace hdfs
}  // namespace clydesdale
