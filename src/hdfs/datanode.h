#ifndef CLYDESDALE_HDFS_DATANODE_H_
#define CLYDESDALE_HDFS_DATANODE_H_

#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "hdfs/block.h"

namespace clydesdale {
namespace hdfs {

/// Holds block replicas for one simulated node. Thread-safe.
class DataNode {
 public:
  explicit DataNode(NodeId id) : id_(id) {}

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  NodeId id() const { return id_; }

  bool alive() const;
  /// Simulates a node crash: all hosted replicas become unavailable.
  void Kill();
  /// Brings the node back empty (fresh disk), as after a replacement.
  void Revive();

  Status StoreReplica(BlockId block, BlockBuffer data);
  Result<BlockBuffer> ReadReplica(BlockId block) const;
  bool HasReplica(BlockId block) const;
  void DropReplica(BlockId block);

  /// Number of replicas hosted.
  size_t NumReplicas() const;
  /// Total bytes of replica data hosted.
  uint64_t StoredBytes() const;

 private:
  const NodeId id_;
  mutable std::mutex mu_;
  bool alive_ = true;
  std::unordered_map<BlockId, BlockBuffer> replicas_;
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_DATANODE_H_
