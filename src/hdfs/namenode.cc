#include "hdfs/namenode.h"

#include "common/logging.h"
#include "common/strings.h"

namespace clydesdale {
namespace hdfs {

NameNode::NameNode(int num_nodes, std::shared_ptr<BlockPlacementPolicy> policy)
    : num_nodes_(num_nodes), policy_(std::move(policy)) {
  CLY_CHECK(num_nodes_ > 0);
  CLY_CHECK(policy_ != nullptr);
}

Status NameNode::CreateFile(const std::string& path, int replication,
                            const std::string& colocation_group) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument(StrCat("bad dfs path: '", path, "'"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path) > 0) {
    return Status::AlreadyExists(StrCat("dfs file exists: ", path));
  }
  FileState state;
  state.info.path = path;
  state.info.replication = replication;
  state.info.colocation_group = colocation_group;
  files_.emplace(path, std::move(state));
  return Status::OK();
}

Result<BlockInfo> NameNode::AllocateBlock(
    const std::string& path, uint64_t length,
    const std::vector<NodeId>& alive_nodes, NodeId writer_node) {
  PlacementRequest req;
  BlockId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound(StrCat("dfs file not found: ", path));
    }
    if (it->second.finalized) {
      return Status::FailedPrecondition(
          StrCat("dfs file already finalized: ", path));
    }
    req.path = path;
    req.colocation_group = it->second.info.colocation_group;
    req.block_index = static_cast<int>(it->second.info.blocks.size());
    req.replication = it->second.info.replication;
    id = next_block_id_++;
  }
  req.alive_nodes = alive_nodes;
  req.writer_node = writer_node;

  CLY_ASSIGN_OR_RETURN(std::vector<NodeId> replicas,
                       policy_->ChooseReplicas(req));

  BlockInfo info;
  info.id = id;
  info.length = length;
  info.replicas = std::move(replicas);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("dfs file deleted mid-write: ", path));
  }
  it->second.info.blocks.push_back(info);
  it->second.info.length += length;
  return info;
}

Status NameNode::FinalizeFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("dfs file not found: ", path));
  }
  it->second.finalized = true;
  return Status::OK();
}

Result<FileInfo> NameNode::Stat(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("dfs file not found: ", path));
  }
  return it->second.info;
}

bool NameNode::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status NameNode::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound(StrCat("dfs file not found: ", path));
  }
  return Status::OK();
}

std::vector<std::string> NameNode::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && StartsWith(it->first, prefix); ++it) {
    out.push_back(it->first);
  }
  return out;
}

Status NameNode::UpdateReplicas(const std::string& path, int block_index,
                                std::vector<NodeId> replicas) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(StrCat("dfs file not found: ", path));
  }
  auto& blocks = it->second.info.blocks;
  if (block_index < 0 || block_index >= static_cast<int>(blocks.size())) {
    return Status::InvalidArgument(StrCat("bad block index ", block_index));
  }
  blocks[static_cast<size_t>(block_index)].replicas = std::move(replicas);
  return Status::OK();
}

uint64_t NameNode::TotalBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [path, state] : files_) n += state.info.blocks.size();
  return n;
}

}  // namespace hdfs
}  // namespace clydesdale
