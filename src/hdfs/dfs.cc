#include "hdfs/dfs.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace clydesdale {
namespace hdfs {

MiniDfs::MiniDfs(DfsOptions options)
    : options_([&options] {
        if (options.placement == nullptr) {
          options.placement = std::make_shared<ColocatingPlacementPolicy>();
        }
        return options;
      }()),
      name_node_(options_.num_nodes, options_.placement) {
  CLY_CHECK(options_.num_nodes > 0);
  CLY_CHECK(options_.block_size > 0);
  nodes_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<DataNode>(i));
  }
}

Result<std::unique_ptr<DfsWriter>> MiniDfs::Create(
    const std::string& path, const std::string& colocation_group,
    NodeId writer_node) {
  CLY_RETURN_IF_ERROR(
      name_node_.CreateFile(path, options_.replication, colocation_group));
  return std::unique_ptr<DfsWriter>(new DfsWriter(this, path, writer_node));
}

Result<std::unique_ptr<DfsReader>> MiniDfs::Open(const std::string& path,
                                                 NodeId reader_node,
                                                 IoStats* stats) const {
  CLY_ASSIGN_OR_RETURN(FileInfo info, name_node_.Stat(path));
  return std::unique_ptr<DfsReader>(
      new DfsReader(this, std::move(info), reader_node, stats));
}

Result<FileInfo> MiniDfs::Stat(const std::string& path) const {
  return name_node_.Stat(path);
}

Status MiniDfs::Delete(const std::string& path) {
  CLY_ASSIGN_OR_RETURN(FileInfo info, name_node_.Stat(path));
  for (const BlockInfo& block : info.blocks) {
    for (NodeId n : block.replicas) {
      nodes_[static_cast<size_t>(n)]->DropReplica(block.id);
    }
  }
  return name_node_.Delete(path);
}

Result<int> MiniDfs::DeleteRecursive(const std::string& prefix) {
  int count = 0;
  for (const std::string& path : name_node_.List(prefix)) {
    CLY_RETURN_IF_ERROR(Delete(path));
    ++count;
  }
  return count;
}

Result<std::vector<NodeId>> MiniDfs::BlockLocations(const std::string& path,
                                                    int block_index) const {
  CLY_ASSIGN_OR_RETURN(FileInfo info, name_node_.Stat(path));
  if (block_index < 0 || block_index >= static_cast<int>(info.blocks.size())) {
    return Status::InvalidArgument(
        StrCat("bad block index ", block_index, " for ", path));
  }
  std::vector<NodeId> alive;
  for (NodeId n : info.blocks[static_cast<size_t>(block_index)].replicas) {
    if (nodes_[static_cast<size_t>(n)]->alive()) alive.push_back(n);
  }
  return alive;
}

Status MiniDfs::KillDataNode(NodeId node) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument(StrCat("no datanode ", node));
  }
  nodes_[static_cast<size_t>(node)]->Kill();
  return Status::OK();
}

Status MiniDfs::ReviveDataNode(NodeId node) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument(StrCat("no datanode ", node));
  }
  nodes_[static_cast<size_t>(node)]->Revive();
  return Status::OK();
}

std::vector<NodeId> MiniDfs::AliveNodes() const {
  std::vector<NodeId> alive;
  for (const auto& node : nodes_) {
    if (node->alive()) alive.push_back(node->id());
  }
  return alive;
}

Result<uint64_t> MiniDfs::ReReplicate() {
  uint64_t copied = 0;
  for (const std::string& path : name_node_.List("/")) {
    CLY_ASSIGN_OR_RETURN(FileInfo info, name_node_.Stat(path));
    for (size_t b = 0; b < info.blocks.size(); ++b) {
      const BlockInfo& block = info.blocks[b];
      std::vector<NodeId> live;
      for (NodeId n : block.replicas) {
        if (nodes_[static_cast<size_t>(n)]->HasReplica(block.id)) {
          live.push_back(n);
        }
      }
      if (live.empty()) {
        return Status::IoError(
            StrCat("block ", block.id, " of ", path, " lost all replicas"));
      }
      if (static_cast<int>(live.size()) >= info.replication) continue;

      // Copy from the first survivor to alive nodes not yet holding it.
      CLY_ASSIGN_OR_RETURN(
          BlockBuffer data,
          nodes_[static_cast<size_t>(live[0])]->ReadReplica(block.id));
      for (const auto& node : nodes_) {
        if (static_cast<int>(live.size()) >= info.replication) break;
        if (!node->alive()) continue;
        if (std::find(live.begin(), live.end(), node->id()) != live.end()) {
          continue;
        }
        CLY_RETURN_IF_ERROR(node->StoreReplica(block.id, data));
        live.push_back(node->id());
        copied += data->size();
      }
      CLY_RETURN_IF_ERROR(name_node_.UpdateReplicas(
          path, static_cast<int>(b), std::move(live)));
    }
  }
  AccountWrite(copied);
  return copied;
}

Status MiniDfs::WriteFile(const std::string& path, const std::string& contents,
                          const std::string& colocation_group) {
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<DfsWriter> writer,
                       Create(path, colocation_group));
  CLY_RETURN_IF_ERROR(writer->AppendString(contents));
  return writer->Close();
}

Result<std::string> MiniDfs::ReadFileToString(const std::string& path) const {
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<DfsReader> reader, Open(path));
  std::string out;
  out.resize(reader->Length());
  if (!out.empty()) CLY_RETURN_IF_ERROR(reader->PRead(0, out.data(), out.size()));
  return out;
}

IoStats MiniDfs::TotalIo() const {
  IoStats stats;
  stats.local_bytes_read = total_local_read_.load(std::memory_order_relaxed);
  stats.remote_bytes_read = total_remote_read_.load(std::memory_order_relaxed);
  stats.bytes_written = total_written_.load(std::memory_order_relaxed);
  return stats;
}

void MiniDfs::AccountRead(uint64_t local, uint64_t remote) const {
  total_local_read_.fetch_add(local, std::memory_order_relaxed);
  total_remote_read_.fetch_add(remote, std::memory_order_relaxed);
}

void MiniDfs::AccountWrite(uint64_t bytes) const {
  total_written_.fetch_add(bytes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// DfsWriter
// ---------------------------------------------------------------------------

DfsWriter::DfsWriter(MiniDfs* dfs, std::string path, NodeId writer_node)
    : dfs_(dfs), path_(std::move(path)), writer_node_(writer_node) {
  buffer_.reserve(dfs_->block_size());
}

DfsWriter::~DfsWriter() {
  if (!closed_) {
    CLY_LOG(Warning) << "DfsWriter for " << path_
                     << " destroyed without Close(); finalizing";
    Status st = Close();
    if (!st.ok()) CLY_LOG(Error) << "implicit Close failed: " << st.ToString();
  }
}

Status DfsWriter::Append(const void* data, size_t len) {
  if (closed_) return Status::FailedPrecondition("writer closed");
  const auto* p = static_cast<const uint8_t*>(data);
  const uint64_t block_size = dfs_->block_size();
  while (len > 0) {
    const size_t room = static_cast<size_t>(block_size) - buffer_.size();
    const size_t take = std::min(len, room);
    buffer_.insert(buffer_.end(), p, p + take);
    p += take;
    len -= take;
    if (buffer_.size() == block_size) CLY_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status DfsWriter::CloseBlock() {
  if (closed_) return Status::FailedPrecondition("writer closed");
  if (buffer_.empty()) return Status::OK();
  return FlushBlock();
}

Status DfsWriter::FlushBlock() {
  const uint64_t length = buffer_.size();
  CLY_ASSIGN_OR_RETURN(
      BlockInfo info,
      dfs_->name_node_.AllocateBlock(path_, length, dfs_->AliveNodes(),
                                     writer_node_));
  BlockBuffer data = MakeBlockBuffer(std::move(buffer_));
  buffer_ = {};
  buffer_.reserve(dfs_->block_size());
  for (NodeId n : info.replicas) {
    CLY_RETURN_IF_ERROR(dfs_->nodes_[static_cast<size_t>(n)]->StoreReplica(
        info.id, data));
  }
  bytes_written_ += length;
  // Accounting counts every replica (pipeline traffic).
  dfs_->AccountWrite(length * info.replicas.size());
  return Status::OK();
}

Status DfsWriter::Close() {
  if (closed_) return Status::OK();
  if (!buffer_.empty()) CLY_RETURN_IF_ERROR(FlushBlock());
  closed_ = true;
  return dfs_->name_node_.FinalizeFile(path_);
}

// ---------------------------------------------------------------------------
// DfsReader
// ---------------------------------------------------------------------------

DfsReader::DfsReader(const MiniDfs* dfs, FileInfo info, NodeId reader_node,
                     IoStats* stats)
    : dfs_(dfs), info_(std::move(info)), reader_node_(reader_node),
      stats_(stats) {
  block_offsets_.reserve(info_.blocks.size() + 1);
  uint64_t offset = 0;
  for (const BlockInfo& block : info_.blocks) {
    block_offsets_.push_back(offset);
    offset += block.length;
  }
  block_offsets_.push_back(offset);
}

Status DfsReader::FetchBlock(int block_index) {
  if (block_index == cached_block_) return Status::OK();
  const BlockInfo& block = info_.blocks[static_cast<size_t>(block_index)];

  // Prefer the local replica; otherwise the first alive one.
  NodeId source = kNoNode;
  for (NodeId n : block.replicas) {
    if (n == reader_node_ && dfs_->data_node(n)->HasReplica(block.id)) {
      source = n;
      break;
    }
  }
  if (source == kNoNode) {
    for (NodeId n : block.replicas) {
      if (dfs_->data_node(n)->HasReplica(block.id)) {
        source = n;
        break;
      }
    }
  }
  if (source == kNoNode) {
    return Status::IoError(StrCat("no alive replica for block ", block.id,
                                  " of ", info_.path));
  }
  Stopwatch fetch_timer;
  CLY_ASSIGN_OR_RETURN(cached_data_, dfs_->data_node(source)->ReadReplica(block.id));
  cached_block_ = block_index;
  cached_local_ = source == reader_node_;
  if (stats_ != nullptr) {
    stats_->read_ops += 1;
    stats_->read_nanos += static_cast<uint64_t>(fetch_timer.ElapsedNanos());
  }
  return Status::OK();
}

Result<size_t> DfsReader::Read(void* out, size_t len) {
  if (position_ >= info_.length) return size_t{0};
  const size_t want =
      std::min<uint64_t>(len, info_.length - position_);
  CLY_RETURN_IF_ERROR(PRead(position_, out, want));
  position_ += want;
  return want;
}

Status DfsReader::PRead(uint64_t offset, void* out, size_t len) {
  if (offset + len > info_.length) {
    return Status::InvalidArgument(
        StrCat("read past EOF: ", offset, "+", len, " > ", info_.length));
  }
  auto* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    // Locate the block containing `offset`.
    const auto it = std::upper_bound(block_offsets_.begin(),
                                     block_offsets_.end(), offset);
    const int block_index =
        static_cast<int>(it - block_offsets_.begin()) - 1;
    CLY_RETURN_IF_ERROR(FetchBlock(block_index));
    const uint64_t block_start = block_offsets_[static_cast<size_t>(block_index)];
    const uint64_t within = offset - block_start;
    const size_t avail = cached_data_->size() - static_cast<size_t>(within);
    const size_t take = std::min(len, avail);
    std::memcpy(dst, cached_data_->data() + within, take);
    // Charge the bytes actually transferred. This models column skipping
    // within PAX blocks (RCFile) and projection in CIF faithfully: only bytes
    // a reader touches count toward I/O.
    if (stats_ != nullptr) {
      (cached_local_ ? stats_->local_bytes_read : stats_->remote_bytes_read) +=
          take;
    }
    dfs_->AccountRead(cached_local_ ? take : 0, cached_local_ ? 0 : take);
    dst += take;
    offset += take;
    len -= take;
  }
  return Status::OK();
}

Status DfsReader::Seek(uint64_t offset) {
  if (offset > info_.length) {
    return Status::InvalidArgument(StrCat("seek past EOF: ", offset));
  }
  position_ = offset;
  return Status::OK();
}

}  // namespace hdfs
}  // namespace clydesdale
