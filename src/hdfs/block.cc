#include "hdfs/block.h"

namespace clydesdale {
namespace hdfs {

BlockBuffer MakeBlockBuffer(std::vector<uint8_t> bytes) {
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

}  // namespace hdfs
}  // namespace clydesdale
