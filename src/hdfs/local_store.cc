#include "hdfs/local_store.h"

#include "common/strings.h"

namespace clydesdale {
namespace hdfs {

Status LocalStore::Write(const std::string& path, std::vector<uint8_t> bytes) {
  return WriteShared(path, MakeBlockBuffer(std::move(bytes)));
}

Status LocalStore::WriteShared(const std::string& path, BlockBuffer bytes) {
  if (bytes == nullptr) return Status::InvalidArgument("null buffer");
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_.fetch_add(bytes->size(), std::memory_order_relaxed);
  files_[path] = std::move(bytes);
  return Status::OK();
}

Result<BlockBuffer> LocalStore::Read(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(
        StrCat("local file not found on node ", node_, ": ", path));
  }
  bytes_read_.fetch_add(it->second->size(), std::memory_order_relaxed);
  return it->second;
}

bool LocalStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status LocalStore::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound(
        StrCat("local file not found on node ", node_, ": ", path));
  }
  return Status::OK();
}

uint64_t LocalStore::DeleteWithPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void LocalStore::Wipe() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

size_t LocalStore::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace hdfs
}  // namespace clydesdale
