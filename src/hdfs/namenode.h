#ifndef CLYDESDALE_HDFS_NAMENODE_H_
#define CLYDESDALE_HDFS_NAMENODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdfs/block.h"
#include "hdfs/placement_policy.h"

namespace clydesdale {
namespace hdfs {

/// File-system metadata master: the path -> blocks -> replica-locations map,
/// block id allocation, and placement policy invocation. Thread-safe.
class NameNode {
 public:
  NameNode(int num_nodes, std::shared_ptr<BlockPlacementPolicy> policy);

  /// Registers a new, empty file. Fails with AlreadyExists on collision.
  Status CreateFile(const std::string& path, int replication,
                    const std::string& colocation_group);

  /// Allocates the next block for `path` and chooses its replica set.
  /// `alive_nodes` is supplied by the DFS facade (which owns the datanodes).
  Result<BlockInfo> AllocateBlock(const std::string& path, uint64_t length,
                                  const std::vector<NodeId>& alive_nodes,
                                  NodeId writer_node);

  /// Marks a file complete (no further blocks may be added).
  Status FinalizeFile(const std::string& path);

  Result<FileInfo> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  /// All finalized file paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Replaces the replica list of one block (used by re-replication).
  Status UpdateReplicas(const std::string& path, int block_index,
                        std::vector<NodeId> replicas);

  uint64_t TotalBlocks() const;

 private:
  struct FileState {
    FileInfo info;
    bool finalized = false;
  };

  const int num_nodes_;
  std::shared_ptr<BlockPlacementPolicy> policy_;
  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  BlockId next_block_id_ = 1;
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_NAMENODE_H_
