#ifndef CLYDESDALE_HDFS_BLOCK_H_
#define CLYDESDALE_HDFS_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace clydesdale {
namespace hdfs {

/// Datanode index within the cluster.
using NodeId = int;
/// Globally unique block number handed out by the namenode.
using BlockId = uint64_t;

inline constexpr NodeId kNoNode = -1;

/// Immutable block payload. Replicas share the same buffer — replication in
/// the simulator is a metadata and accounting concept, not a memory copy.
using BlockBuffer = std::shared_ptr<const std::vector<uint8_t>>;

BlockBuffer MakeBlockBuffer(std::vector<uint8_t> bytes);

/// Namenode-side description of one block of a file.
struct BlockInfo {
  BlockId id = 0;
  uint64_t length = 0;
  /// Datanodes holding a replica, in pipeline order.
  std::vector<NodeId> replicas;
};

/// Namenode-side description of a file.
struct FileInfo {
  std::string path;
  uint64_t length = 0;
  int replication = 0;
  /// Files sharing a non-empty group are co-placed block-by-block by the
  /// colocating placement policy (the CIF contract, paper §4.1).
  std::string colocation_group;
  std::vector<BlockInfo> blocks;
};

/// Byte-level I/O accounting attributed to one reader or writer. The
/// discrete-event cost model consumes these numbers.
struct IoStats {
  uint64_t local_bytes_read = 0;
  uint64_t remote_bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  /// Wall time spent fetching blocks from datanodes. Accumulated in
  /// nanoseconds so sub-microsecond fetches of small blocks still add up;
  /// consumers report microseconds via read_micros().
  uint64_t read_nanos = 0;

  uint64_t TotalRead() const { return local_bytes_read + remote_bytes_read; }

  /// Rounds up so a task that performed any fetch never reports 0us.
  uint64_t read_micros() const { return (read_nanos + 999) / 1000; }

  void Add(const IoStats& other) {
    local_bytes_read += other.local_bytes_read;
    remote_bytes_read += other.remote_bytes_read;
    bytes_written += other.bytes_written;
    read_ops += other.read_ops;
    read_nanos += other.read_nanos;
  }
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_BLOCK_H_
