#ifndef CLYDESDALE_HDFS_PLACEMENT_POLICY_H_
#define CLYDESDALE_HDFS_PLACEMENT_POLICY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "hdfs/block.h"

namespace clydesdale {
namespace hdfs {

/// Everything a policy may consider when placing one new block.
struct PlacementRequest {
  std::string path;
  std::string colocation_group;
  /// Ordinal of the block within its file.
  int block_index = 0;
  int replication = 3;
  /// Datanodes currently alive, in id order.
  std::vector<NodeId> alive_nodes;
  /// Node issuing the write, or kNoNode for an off-cluster client.
  NodeId writer_node = kNoNode;
};

/// The pluggable HDFS block placement extension point (paper §4.1: CIF
/// "leverages the support for pluggable placement policies in HDFS 21.0").
class BlockPlacementPolicy {
 public:
  virtual ~BlockPlacementPolicy() = default;

  /// Returns `replication` distinct nodes (fewer if the cluster is smaller).
  virtual Result<std::vector<NodeId>> ChooseReplicas(
      const PlacementRequest& req) = 0;
};

/// Stock HDFS behaviour: first replica on the writer node when it is a
/// datanode, remaining replicas on distinct random nodes.
class DefaultPlacementPolicy : public BlockPlacementPolicy {
 public:
  explicit DefaultPlacementPolicy(uint64_t seed = 42) : rng_(seed) {}

  Result<std::vector<NodeId>> ChooseReplicas(
      const PlacementRequest& req) override;

 private:
  std::mutex mu_;
  Random rng_;
};

/// Column-colocating policy used by CIF: the i-th block of every file in the
/// same colocation group lands on the same replica set, so a map task reading
/// a row range finds *all* its columns on the local disk. Files without a
/// group fall back to the default policy.
class ColocatingPlacementPolicy : public BlockPlacementPolicy {
 public:
  explicit ColocatingPlacementPolicy(uint64_t seed = 42) : fallback_(seed) {}

  Result<std::vector<NodeId>> ChooseReplicas(
      const PlacementRequest& req) override;

  /// Forgets remembered placements for a group (called when a table is
  /// dropped so a re-created table can be placed afresh).
  void ForgetGroup(const std::string& group);

 private:
  DefaultPlacementPolicy fallback_;
  std::mutex mu_;
  /// (group, block_index) -> replica set chosen for the group's anchor file.
  std::map<std::pair<std::string, int>, std::vector<NodeId>> assignments_;
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_PLACEMENT_POLICY_H_
