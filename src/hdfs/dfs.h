#ifndef CLYDESDALE_HDFS_DFS_H_
#define CLYDESDALE_HDFS_DFS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdfs/block.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "hdfs/placement_policy.h"

namespace clydesdale {
namespace hdfs {

class DfsWriter;
class DfsReader;

/// Options for a MiniDfs instance.
struct DfsOptions {
  int num_nodes = 4;
  uint64_t block_size = 8ULL * 1024 * 1024;
  int replication = 3;
  /// Defaults to ColocatingPlacementPolicy when null.
  std::shared_ptr<BlockPlacementPolicy> placement;
};

/// Simulated HDFS cluster: one namenode plus N datanodes, exposing the
/// create/open/stat/delete surface the storage formats and the MapReduce
/// engine need, with full byte accounting for the cost model.
class MiniDfs {
 public:
  explicit MiniDfs(DfsOptions options);

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  int num_nodes() const { return options_.num_nodes; }
  uint64_t block_size() const { return options_.block_size; }
  const DfsOptions& options() const { return options_; }
  NameNode* name_node() { return &name_node_; }

  /// Creates a file for writing. `colocation_group` non-empty requests CIF
  /// colocation; `writer_node` attributes the pipeline's first replica.
  Result<std::unique_ptr<DfsWriter>> Create(
      const std::string& path, const std::string& colocation_group = "",
      NodeId writer_node = kNoNode);

  /// Opens a finalized file for reading. Bytes are attributed to `stats`
  /// (optional) and classified local/remote relative to `reader_node`.
  Result<std::unique_ptr<DfsReader>> Open(const std::string& path,
                                          NodeId reader_node = kNoNode,
                                          IoStats* stats = nullptr) const;

  Result<FileInfo> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const { return name_node_.Exists(path); }
  std::vector<std::string> List(const std::string& prefix) const {
    return name_node_.List(prefix);
  }

  /// Deletes one file and its replicas.
  Status Delete(const std::string& path);
  /// Deletes every file under the prefix; returns the count removed.
  Result<int> DeleteRecursive(const std::string& prefix);

  /// Nodes hosting a replica of the given block of the file (alive only).
  Result<std::vector<NodeId>> BlockLocations(const std::string& path,
                                             int block_index) const;

  /// Fault injection: kills a datanode (its replicas vanish).
  Status KillDataNode(NodeId node);
  /// Restores a killed node with an empty disk.
  Status ReviveDataNode(NodeId node);
  std::vector<NodeId> AliveNodes() const;

  /// Restores the replication factor of every under-replicated block by
  /// copying from a surviving replica; returns bytes copied (network cost).
  Result<uint64_t> ReReplicate();

  /// Convenience helpers for small files (table metadata and the like).
  Status WriteFile(const std::string& path, const std::string& contents,
                   const std::string& colocation_group = "");
  Result<std::string> ReadFileToString(const std::string& path) const;

  /// Cumulative cluster-wide I/O (all readers and writers).
  IoStats TotalIo() const;

  DataNode* data_node(NodeId id) { return nodes_[static_cast<size_t>(id)].get(); }
  const DataNode* data_node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)].get();
  }

 private:
  friend class DfsWriter;
  friend class DfsReader;

  void AccountRead(uint64_t local, uint64_t remote) const;
  void AccountWrite(uint64_t bytes) const;

  DfsOptions options_;
  NameNode name_node_;
  std::vector<std::unique_ptr<DataNode>> nodes_;

  mutable std::atomic<uint64_t> total_local_read_{0};
  mutable std::atomic<uint64_t> total_remote_read_{0};
  mutable std::atomic<uint64_t> total_written_{0};
};

/// Buffered sequential writer: fills a block-sized buffer, then pushes the
/// block through the (simulated) replication pipeline.
class DfsWriter {
 public:
  ~DfsWriter();

  DfsWriter(const DfsWriter&) = delete;
  DfsWriter& operator=(const DfsWriter&) = delete;

  Status Append(const void* data, size_t len);
  Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }
  Status AppendString(const std::string& s) { return Append(s.data(), s.size()); }

  /// Ends the current block even if not full. CIF uses this to align split
  /// boundaries with block boundaries so colocation holds row-range-wise.
  Status CloseBlock();

  /// Flushes and finalizes the file. Must be called; the destructor checks.
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  /// Bytes accumulated toward the current (unflushed) block. Row-aligned
  /// formats consult this to end blocks at record boundaries.
  uint64_t buffered_bytes() const { return buffer_.size(); }

 private:
  friend class MiniDfs;
  DfsWriter(MiniDfs* dfs, std::string path, NodeId writer_node);

  Status FlushBlock();

  MiniDfs* dfs_;
  std::string path_;
  NodeId writer_node_;
  std::vector<uint8_t> buffer_;
  uint64_t bytes_written_ = 0;
  bool closed_ = false;
};

/// Positional + sequential reader over a finalized file.
class DfsReader {
 public:
  /// Reads up to `len` bytes from the current position; returns bytes read
  /// (0 at EOF).
  Result<size_t> Read(void* out, size_t len);

  /// Reads exactly [offset, offset+len) or fails.
  Status PRead(uint64_t offset, void* out, size_t len);

  Status Seek(uint64_t offset);
  uint64_t Tell() const { return position_; }
  uint64_t Length() const { return info_.length; }
  const FileInfo& file_info() const { return info_; }

 private:
  friend class MiniDfs;
  DfsReader(const MiniDfs* dfs, FileInfo info, NodeId reader_node,
            IoStats* stats);

  /// Fetches the block covering `offset`, preferring a local replica.
  Status FetchBlock(int block_index);

  const MiniDfs* dfs_;
  FileInfo info_;
  NodeId reader_node_;
  IoStats* stats_;
  uint64_t position_ = 0;

  /// Block index -> starting file offset (prefix sums).
  std::vector<uint64_t> block_offsets_;
  int cached_block_ = -1;
  bool cached_local_ = false;
  BlockBuffer cached_data_;
};

}  // namespace hdfs
}  // namespace clydesdale

#endif  // CLYDESDALE_HDFS_DFS_H_
