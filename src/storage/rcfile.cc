#include "storage/rcfile.h"

#include "common/strings.h"
#include "storage/byte_io.h"
#include "storage/row_codec.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

namespace {

constexpr const char kDataFile[] = "/data.rc";
constexpr uint32_t kMagic = 0x52434631;  // "RCF1"

class RcFileTableWriter final : public TableWriter {
 public:
  RcFileTableWriter(hdfs::MiniDfs* dfs, TableDesc desc,
                    std::unique_ptr<hdfs::DfsWriter> writer)
      : dfs_(dfs),
        desc_(std::move(desc)),
        writer_(std::move(writer)),
        chunks_(static_cast<size_t>(desc_.schema->num_fields())) {}

  Status Append(const Row& row) override {
    for (int c = 0; c < row.size(); ++c) {
      const std::string text = row.Get(c).ToString();
      if (text.size() > 255) {
        return Status::InvalidArgument(
            StrCat("rcfile value too long (", text.size(), " chars)"));
      }
      auto& chunk = chunks_[static_cast<size_t>(c)];
      chunk.push_back(static_cast<uint8_t>(text.size()));
      chunk.insert(chunk.end(), text.begin(), text.end());
    }
    ++buffered_;
    ++rows_;
    if (buffered_ == desc_.rows_per_split) return FlushGroup();
    return Status::OK();
  }

  Status Close() override {
    if (buffered_ > 0) CLY_RETURN_IF_ERROR(FlushGroup());
    CLY_RETURN_IF_ERROR(writer_->Close());
    desc_.num_rows = rows_;
    return SaveTableDesc(dfs_, desc_);
  }

  uint64_t rows_written() const override { return rows_; }

 private:
  Status FlushGroup() {
    ByteWriter group;
    group.PutU32(kMagic);
    group.PutU32(static_cast<uint32_t>(buffered_));
    group.PutU32(static_cast<uint32_t>(chunks_.size()));
    for (const auto& chunk : chunks_) {
      group.PutU32(static_cast<uint32_t>(chunk.size()));
    }
    for (const auto& chunk : chunks_) {
      group.PutBytes(chunk.data(), chunk.size());
    }
    if (group.size() > dfs_->block_size()) {
      return Status::InvalidArgument(
          StrCat("rcfile row group is ", group.size(),
                 " bytes but the HDFS block size is ", dfs_->block_size(),
                 "; lower rows_per_split"));
    }
    CLY_RETURN_IF_ERROR(writer_->Append(group.bytes()));
    CLY_RETURN_IF_ERROR(writer_->CloseBlock());
    for (auto& chunk : chunks_) chunk.clear();
    buffered_ = 0;
    return Status::OK();
  }

  hdfs::MiniDfs* dfs_;
  TableDesc desc_;
  std::unique_ptr<hdfs::DfsWriter> writer_;
  std::vector<std::vector<uint8_t>> chunks_;
  uint64_t buffered_ = 0;
  uint64_t rows_ = 0;
};

class RcFileSplitReader final : public RowReader {
 public:
  RcFileSplitReader(SchemaPtr out_schema, std::vector<ColumnVector> columns,
                    uint32_t nrows)
      : out_schema_(std::move(out_schema)),
        columns_(std::move(columns)),
        nrows_(nrows) {}

  Result<bool> Next(Row* out) override {
    if (next_ >= nrows_) return false;
    out->Clear();
    out->Reserve(static_cast<int>(columns_.size()));
    for (const ColumnVector& col : columns_) {
      out->Append(col.GetValue(next_));
    }
    ++next_;
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  SchemaPtr out_schema_;
  std::vector<ColumnVector> columns_;
  uint32_t nrows_;
  uint32_t next_ = 0;
};

Status DecodeTextChunk(const std::vector<uint8_t>& chunk, TypeKind type,
                       uint32_t nrows, ColumnVector* out) {
  size_t pos = 0;
  out->Reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    if (pos >= chunk.size()) return Status::IoError("truncated rcfile chunk");
    const uint8_t len = chunk[pos++];
    if (pos + len > chunk.size()) {
      return Status::IoError("truncated rcfile value");
    }
    const std::string_view text(
        reinterpret_cast<const char*>(chunk.data()) + pos, len);
    pos += len;
    Value v;
    CLY_RETURN_IF_ERROR(ParseValueText(type, text, &v));
    out->Append(v);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<TableWriter>> OpenRcFileTableWriter(
    hdfs::MiniDfs* dfs, const TableDesc& desc) {
  if (desc.rows_per_split == 0) {
    return Status::InvalidArgument("rcfile tables need rows_per_split > 0");
  }
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> writer,
                       dfs->Create(desc.path + kDataFile));
  return std::unique_ptr<TableWriter>(
      new RcFileTableWriter(dfs, desc, std::move(writer)));
}

Result<std::vector<StorageSplit>> ListRcFileSplits(const hdfs::MiniDfs& dfs,
                                                   const TableDesc& desc) {
  CLY_ASSIGN_OR_RETURN(std::vector<StorageSplit> splits,
                       internal::BuildBlockSplits(dfs, desc, desc.path + kDataFile));
  for (StorageSplit& split : splits) {
    split.row_begin = desc.rows_per_split * static_cast<uint64_t>(split.index);
    split.row_end = std::min<uint64_t>(
        desc.num_rows, desc.rows_per_split * (static_cast<uint64_t>(split.index) + 1));
  }
  return splits;
}

Result<std::unique_ptr<RowReader>> OpenRcFileSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  SchemaPtr out_schema = desc.schema->Project(projection);

  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<hdfs::DfsReader> reader,
      dfs.Open(desc.path + kDataFile, options.reader_node, options.stats));
  uint64_t begin = 0, end = 0;
  internal::BlockByteRange(reader->file_info(), split.index, &begin, &end);

  // Header first: magic, counts, chunk length table.
  const int ncols_expected = desc.schema->num_fields();
  const size_t header_size =
      12 + sizeof(uint32_t) * static_cast<size_t>(ncols_expected);
  if (end - begin < header_size) {
    return Status::IoError("rcfile row group shorter than its header");
  }
  std::vector<uint8_t> header(header_size);
  CLY_RETURN_IF_ERROR(reader->PRead(begin, header.data(), header.size()));
  ByteReader h(header);
  uint32_t magic = 0, nrows = 0, ncols = 0;
  CLY_RETURN_IF_ERROR(h.GetU32(&magic));
  CLY_RETURN_IF_ERROR(h.GetU32(&nrows));
  CLY_RETURN_IF_ERROR(h.GetU32(&ncols));
  if (magic != kMagic || ncols != static_cast<uint32_t>(ncols_expected)) {
    return Status::IoError(StrCat("bad rcfile row group in ", desc.path));
  }
  std::vector<uint32_t> chunk_len(ncols);
  std::vector<uint64_t> chunk_offset(ncols);
  uint64_t offset = begin + header_size;
  for (uint32_t c = 0; c < ncols; ++c) {
    CLY_RETURN_IF_ERROR(h.GetU32(&chunk_len[c]));
  }
  for (uint32_t c = 0; c < ncols; ++c) {
    chunk_offset[c] = offset;
    offset += chunk_len[c];
  }

  // Fetch and decode only the projected column chunks (lazy column skip).
  std::vector<ColumnVector> columns;
  columns.reserve(projection.size());
  for (int idx : projection) {
    const Field& field = desc.schema->field(idx);
    std::vector<uint8_t> chunk(chunk_len[static_cast<size_t>(idx)]);
    if (!chunk.empty()) {
      CLY_RETURN_IF_ERROR(reader->PRead(chunk_offset[static_cast<size_t>(idx)],
                                        chunk.data(), chunk.size()));
    }
    ColumnVector col(field.type);
    CLY_RETURN_IF_ERROR(DecodeTextChunk(chunk, field.type, nrows, &col));
    columns.push_back(std::move(col));
  }
  return std::unique_ptr<RowReader>(new RcFileSplitReader(
      std::move(out_schema), std::move(columns), nrows));
}

}  // namespace storage
}  // namespace clydesdale
