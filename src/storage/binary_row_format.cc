#include "storage/binary_row_format.h"

#include "common/strings.h"
#include "storage/row_codec.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

namespace {

constexpr const char kDataFile[] = "/data.bin";

class BinaryRowTableWriter final : public TableWriter {
 public:
  BinaryRowTableWriter(hdfs::MiniDfs* dfs, TableDesc desc,
                       std::unique_ptr<hdfs::DfsWriter> writer)
      : dfs_(dfs), desc_(std::move(desc)), writer_(std::move(writer)) {}

  Status Append(const Row& row) override {
    scratch_.Clear();
    scratch_.PutU32(0);  // placeholder for the length
    EncodeRow(row, &scratch_);
    scratch_.PatchU32(0, static_cast<uint32_t>(scratch_.size() - 4));

    const uint64_t block_size = dfs_->block_size();
    const uint64_t used = writer_->buffered_bytes();
    if (used != 0 && used + scratch_.size() > block_size) {
      CLY_RETURN_IF_ERROR(writer_->CloseBlock());
    }
    CLY_RETURN_IF_ERROR(writer_->Append(scratch_.bytes()));
    ++rows_;
    return Status::OK();
  }

  Status Close() override {
    CLY_RETURN_IF_ERROR(writer_->Close());
    desc_.num_rows = rows_;
    return SaveTableDesc(dfs_, desc_);
  }

  uint64_t rows_written() const override { return rows_; }

 private:
  hdfs::MiniDfs* dfs_;
  TableDesc desc_;
  std::unique_ptr<hdfs::DfsWriter> writer_;
  ByteWriter scratch_;
  uint64_t rows_ = 0;
};

class BinaryRowSplitReader final : public RowReader {
 public:
  BinaryRowSplitReader(SchemaPtr full_schema, SchemaPtr out_schema,
                       std::vector<int> projection, std::vector<uint8_t> data)
      : full_schema_(std::move(full_schema)),
        out_schema_(std::move(out_schema)),
        projection_(std::move(projection)),
        data_(std::move(data)),
        reader_(data_.data(), data_.size()) {}

  Result<bool> Next(Row* out) override {
    if (reader_.AtEnd()) return false;
    uint32_t len = 0;
    CLY_RETURN_IF_ERROR(reader_.GetU32(&len));
    if (reader_.remaining() < len) {
      return Status::IoError("truncated row in binary split");
    }
    ByteReader row_reader(data_.data() + reader_.position(), len);
    CLY_RETURN_IF_ERROR(DecodeRow(*full_schema_, &row_reader, &scratch_));
    CLY_RETURN_IF_ERROR(reader_.Skip(len));
    *out = scratch_.Project(projection_);
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  SchemaPtr full_schema_;
  SchemaPtr out_schema_;
  std::vector<int> projection_;
  std::vector<uint8_t> data_;
  ByteReader reader_;
  Row scratch_;
};

}  // namespace

Result<std::unique_ptr<TableWriter>> OpenBinaryRowTableWriter(
    hdfs::MiniDfs* dfs, const TableDesc& desc) {
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> writer,
                       dfs->Create(desc.path + kDataFile));
  return std::unique_ptr<TableWriter>(
      new BinaryRowTableWriter(dfs, desc, std::move(writer)));
}

Result<std::vector<StorageSplit>> ListBinaryRowSplits(const hdfs::MiniDfs& dfs,
                                                      const TableDesc& desc) {
  return internal::BuildBlockSplits(dfs, desc, desc.path + kDataFile);
}

Result<std::unique_ptr<RowReader>> OpenBinaryRowSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  const std::string data_path = desc.path + kDataFile;
  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<hdfs::DfsReader> reader,
      dfs.Open(data_path, options.reader_node, options.stats));
  uint64_t begin = 0, end = 0;
  internal::BlockByteRange(reader->file_info(), split.index, &begin, &end);
  std::vector<uint8_t> data(end - begin);
  if (!data.empty()) {
    CLY_RETURN_IF_ERROR(reader->PRead(begin, data.data(), data.size()));
  }
  SchemaPtr out_schema = desc.schema->Project(projection);
  return std::unique_ptr<RowReader>(
      new BinaryRowSplitReader(desc.schema, std::move(out_schema),
                               std::move(projection), std::move(data)));
}

std::vector<uint8_t> EncodeRowStream(const std::vector<Row>& rows) {
  ByteWriter out;
  for (const Row& row : rows) {
    const size_t at = out.size();
    out.PutU32(0);
    EncodeRow(row, &out);
    out.PatchU32(at, static_cast<uint32_t>(out.size() - at - 4));
  }
  return out.Release();
}

Result<std::vector<Row>> DecodeRowStream(const Schema& schema,
                                         const uint8_t* data, size_t len) {
  std::vector<Row> rows;
  ByteReader reader(data, len);
  while (!reader.AtEnd()) {
    uint32_t n = 0;
    CLY_RETURN_IF_ERROR(reader.GetU32(&n));
    if (reader.remaining() < n) {
      return Status::IoError("truncated row in stream");
    }
    ByteReader row_reader(data + reader.position(), n);
    Row row;
    CLY_RETURN_IF_ERROR(DecodeRow(schema, &row_reader, &row));
    CLY_RETURN_IF_ERROR(reader.Skip(n));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace storage
}  // namespace clydesdale
