#ifndef CLYDESDALE_STORAGE_BLOCK_PREFETCH_H_
#define CLYDESDALE_STORAGE_BLOCK_PREFETCH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "hdfs/dfs.h"

namespace clydesdale {
namespace storage {

/// Per-reader prefetch effectiveness counters: how often the scan found its
/// next block already fetched (hit) vs had to block on the worker (miss,
/// with the blocked nanoseconds). Consumed single-threaded by the scan after
/// its Take() calls; flushed into ScanStats by the CIF reader.
struct PrefetchStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t wait_ns = 0;
};

/// Double-buffered read-ahead for one CIF split (the `cif.scan.prefetch`
/// knob): a worker thread reads block `block_index` of each listed column
/// file in order while the scan decodes the previous one, overlapping DFS
/// fetch latency with decode CPU. The queue is bounded — the worker stays
/// at most `kQueueDepth` undelivered blocks ahead — so memory is two block
/// buffers beyond what the scan already holds.
///
/// Contract: Take(i) must be called in ascending order of i (the scan
/// consumes columns in its fixed load order); skipping the remaining takes
/// is allowed (zone-map block skip), in which case the destructor cancels
/// the worker. Each delivered buffer is an independent shared_ptr arena, so
/// string views handed to downstream operators keep it alive after both the
/// prefetcher and the scan are gone.
///
/// The worker accumulates its DFS accounting privately; Finish() joins the
/// thread and returns those stats for the caller to merge, keeping IoStats
/// single-threaded. The destructor also joins (without publishing stats) if
/// Finish was never called.
class BlockPrefetcher {
 public:
  BlockPrefetcher(const hdfs::MiniDfs* dfs, hdfs::NodeId reader_node,
                  std::vector<std::string> paths, int block_index);
  ~BlockPrefetcher();

  BlockPrefetcher(const BlockPrefetcher&) = delete;
  BlockPrefetcher& operator=(const BlockPrefetcher&) = delete;

  /// Bytes of block `block_index` of paths[i]; blocks until the worker has
  /// fetched them.
  Result<std::shared_ptr<const std::vector<uint8_t>>> Take(size_t i);

  /// Cancels any remaining read-ahead, joins the worker, and returns the
  /// I/O stats it accumulated. Idempotent.
  const hdfs::IoStats& Finish();

  /// Hit/miss/wait accounting of the Take() calls so far. Only the scan
  /// thread calls Take, so reading this between/after takes is race-free.
  const PrefetchStats& prefetch_stats() const { return prefetch_stats_; }

  static constexpr size_t kQueueDepth = 2;

 private:
  struct Slot {
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const std::vector<uint8_t>> bytes;
  };

  void WorkerLoop();
  void Join();

  const hdfs::MiniDfs* dfs_;
  const hdfs::NodeId reader_node_;
  const std::vector<std::string> paths_;
  const int block_index_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  size_t taken_ = 0;     // slots consumed (Take high-water mark)
  size_t produced_ = 0;  // slots filled by the worker
  bool cancel_ = false;
  bool joined_ = false;
  hdfs::IoStats io_;  // worker-private until Join
  PrefetchStats prefetch_stats_;  // scan-thread-private (updated in Take)
  /// Creator thread's ambient log context, re-installed on the worker so
  /// its CLY_LOG lines stay attributable to the owning task.
  const std::string log_context_;
  std::thread worker_;
};

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_BLOCK_PREFETCH_H_
