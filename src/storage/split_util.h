#ifndef CLYDESDALE_STORAGE_SPLIT_UTIL_H_
#define CLYDESDALE_STORAGE_SPLIT_UTIL_H_

#include <string>
#include <vector>

#include "storage/table_format.h"

namespace clydesdale {
namespace storage {
namespace internal {

/// Builds one StorageSplit per HDFS block of `data_path`. Row-aligned block
/// writing (writers call CloseBlock at row boundaries) makes this exact.
inline Result<std::vector<StorageSplit>> BuildBlockSplits(
    const hdfs::MiniDfs& dfs, const TableDesc& desc,
    const std::string& data_path) {
  CLY_ASSIGN_OR_RETURN(hdfs::FileInfo info, dfs.Stat(data_path));
  std::vector<StorageSplit> splits;
  splits.reserve(info.blocks.size());
  for (size_t b = 0; b < info.blocks.size(); ++b) {
    StorageSplit split;
    split.table_path = desc.path;
    split.format = desc.format;
    split.index = static_cast<int>(b);
    split.length_bytes = info.blocks[b].length;
    CLY_ASSIGN_OR_RETURN(split.preferred_nodes,
                         dfs.BlockLocations(data_path, static_cast<int>(b)));
    splits.push_back(std::move(split));
  }
  return splits;
}

/// Byte range [begin, end) of block `index` within `info`.
inline void BlockByteRange(const hdfs::FileInfo& info, int index,
                           uint64_t* begin, uint64_t* end) {
  uint64_t offset = 0;
  for (int b = 0; b < index; ++b) {
    offset += info.blocks[static_cast<size_t>(b)].length;
  }
  *begin = offset;
  *end = offset + info.blocks[static_cast<size_t>(index)].length;
}

}  // namespace internal
}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_SPLIT_UTIL_H_
