#ifndef CLYDESDALE_STORAGE_ROW_CODEC_H_
#define CLYDESDALE_STORAGE_ROW_CODEC_H_

#include <string>
#include <string_view>

#include "schema/row.h"
#include "schema/schema.h"
#include "storage/byte_io.h"

namespace clydesdale {
namespace storage {

/// Binary row encoding: fields in schema order; int32 -> 4B LE, int64/double
/// -> 8B LE, string -> u16 length + bytes. Used by the binary-row table
/// format, dimension replicas, intermediate MR files, and the shuffle.
void EncodeRow(const Row& row, ByteWriter* out);
Status DecodeRow(const Schema& schema, ByteReader* in, Row* out);

/// Encoded size without actually encoding.
size_t EncodedRowSize(const Row& row);

/// Text (dbgen-style) encoding: '|'-separated fields, no trailing delimiter.
std::string FormatRowText(const Row& row);
Status ParseRowText(const Schema& schema, std::string_view line, Row* out);

/// Parses a single textual field into a typed Value.
Status ParseValueText(TypeKind type, std::string_view field, Value* out);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_ROW_CODEC_H_
