#ifndef CLYDESDALE_STORAGE_CIF_H_
#define CLYDESDALE_STORAGE_CIF_H_

#include <memory>
#include <vector>

#include "storage/table_format.h"

namespace clydesdale {
namespace storage {

/// ColumnInputFormat (CIF, paper §4.1): each column lives in its own HDFS
/// file `<path>/<column>.col`. A table is written in *splits* of
/// `rows_per_split` rows; the bytes of split i of every column occupy exactly
/// HDFS block i of that column's file, and all column files share the
/// colocation group `<path>`, so the colocating placement policy puts block i
/// of every column on the same replica set. A map task scheduled where its
/// split is local therefore finds **all** columns locally.
///
/// Column block layout (v1): [u32 nrows][values]; fixed-width types store
/// raw little-endian arrays, strings store nrows u32 end-offsets then the
/// bytes (or a dictionary when <=256 distinct values fit).
///
/// v2 (TableDesc::cif_version >= 2, the default for new tables) wraps the
/// same payload as [u32 magic][u32 nrows][payload][zone map][u32 zone_len]
/// [u32 footer magic]. The zone map (per-block min/max for numeric columns,
/// a 64-bit dictionary fingerprint for dictionary-coded strings) lets the
/// reader skip whole blocks against a ScanOptions::scan_spec, and the
/// 8-byte header leaves fixed-width payloads aligned for in-place scanning.
/// v2 readers take a late-materialization path: filter columns are decoded
/// first, predicates and semi-join key filters run on encoded/raw data to
/// form a selection vector, and only surviving rows of the remaining
/// projection are materialized — strings as arena-backed views
/// (ColumnVector view mode), never per-row copies. v1 files keep decoding
/// through the original eager path; `ScanOptions::late_materialize = false`
/// forces it for v2 too (the `cif.scan.late_materialize` A/B knob).
///
/// v3 (the default for new tables) adds per-block lightweight encodings
/// under the same footer discipline: the layout becomes [u32 magic]
/// [u32 nrows][encoded payload][u8 encoding tag][zone map][u32 zone_len]
/// [u32 footer magic], where the tag (column_codec.h) selects plain, RLE,
/// bit-packing, or frame-of-reference for integer blocks and RLE-of-codes
/// for dictionary strings. The writer picks the smallest exact encoding
/// from single-pass block stats; the reader evaluates predicates and
/// semi-join key filters in the compressed domain (once per RLE run, via
/// code-set tests on packed codes) and can expose run structure to the
/// engine (`ScanOptions::expose_runs`) for run-weighted aggregation. A
/// double-buffered background prefetcher (`ScanOptions::prefetch`, the
/// `cif.scan.prefetch` knob, off by default) overlaps block fetch with
/// decode; prefetched arenas are shared_ptr-owned so handed-out string
/// views outlive the reader. Reading any version's file through another
/// version's desc is an IoError.
Result<std::unique_ptr<TableWriter>> OpenCifTableWriter(hdfs::MiniDfs* dfs,
                                                        const TableDesc& desc);
Result<std::vector<StorageSplit>> ListCifSplits(const hdfs::MiniDfs& dfs,
                                                const TableDesc& desc);

/// Row-at-a-time reader (plain CIF iteration; pays per-row materialization).
Result<std::unique_ptr<RowReader>> OpenCifSplitRowReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

/// Block-at-a-time reader (B-CIF, paper §5.3): returns columnar batches and
/// amortizes the per-record framework cost over a block of rows.
Result<std::unique_ptr<BatchReader>> OpenCifSplitBatchReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

// --- Roll-in / roll-out (paper §2) -------------------------------------------
// Unlike sorted-projection designs (Llama), CIF requires no fact order, so
// appending data is cheap: a roll-in writes a fresh *segment* — a complete
// set of column files — and a roll-out deletes one; neither touches the
// existing data.

/// Opens a writer that appends a new segment to an existing CIF table.
/// Close() merges the segment into the table's metadata (callers holding a
/// cached TableDesc must reload it).
Result<std::unique_ptr<TableWriter>> AppendCifSegment(hdfs::MiniDfs* dfs,
                                                      const TableDesc& desc);

/// Deletes one segment's column files and removes its rows from the
/// metadata. Rolling out segment 0 of a single-segment table empties it.
Status RollOutCifSegment(hdfs::MiniDfs* dfs, const TableDesc& desc,
                         int segment);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_CIF_H_
