#include "storage/column_codec.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace clydesdale {
namespace storage {

namespace {

/// Unsigned range of a block, safe across the full int64 span (max - min as
/// two's-complement subtraction is exact in uint64).
uint64_t RangeOf(int64_t min, int64_t max) {
  return static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
}

template <typename T>
IntBlockStats ComputeStats(const T* vals, uint32_t n) {
  IntBlockStats s;
  s.nrows = n;
  if (n == 0) return s;
  s.min = vals[0];
  s.max = vals[0];
  s.nruns = 1;
  for (uint32_t i = 1; i < n; ++i) {
    const int64_t v = vals[i];
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.nruns += static_cast<uint32_t>(vals[i] != vals[i - 1]);
  }
  return s;
}

template <typename T>
void EncodeRle(const T* vals, uint32_t n, uint32_t nruns, ByteWriter* out) {
  out->PutU32(nruns);
  out->PutU32(0);  // pad: the i64 value lane stays 8-aligned
  uint32_t i = 0;
  while (i < n) {
    out->PutI64(static_cast<int64_t>(vals[i]));
    uint32_t j = i + 1;
    while (j < n && vals[j] == vals[i]) ++j;
    i = j;
  }
  i = 0;
  while (i < n) {
    uint32_t j = i + 1;
    while (j < n && vals[j] == vals[i]) ++j;
    out->PutU32(j - i);
    i = j;
  }
}

template <typename T>
void EncodePacked(const T* vals, uint32_t n, int64_t base, int width,
                  ByteWriter* out) {
  std::vector<uint64_t> deltas(n);
  for (uint32_t i = 0; i < n; ++i) {
    deltas[i] = static_cast<uint64_t>(vals[i]) - static_cast<uint64_t>(base);
  }
  std::vector<uint64_t> words(PackedWordCount(n, width), 0);
  BitPack(deltas.data(), n, width, words.data());
  out->PutBytes(words.data(), words.size() * sizeof(uint64_t));
}

template <typename T>
uint8_t EncodeIntPayloadT(const T* vals, uint32_t n, const IntBlockStats& s,
                          ByteWriter* out) {
  const size_t plain_size = n * sizeof(T);
  const size_t rle_size = 8 + static_cast<size_t>(s.nruns) * 12;
  const uint64_t range = RangeOf(s.min, s.max);
  // Widths are clamped to [1, 63]: width 0 (a constant block) always loses
  // to RLE's two-entry cost, and 64-bit lanes never beat plain. Bit-pack
  // stores raw values so its width must cover max; FoR only covers the
  // delta range.
  const int bp_width = std::max(1, BitWidth(static_cast<uint64_t>(s.max)));
  const int for_width = std::max(1, BitWidth(range));
  size_t bitpack_size = std::numeric_limits<size_t>::max();
  if (s.min >= 0 && bp_width <= 63) {
    bitpack_size = 8 + PackedWordCount(n, bp_width) * 8;
  }
  size_t for_size = std::numeric_limits<size_t>::max();
  if (for_width <= 63) {
    for_size = 16 + PackedWordCount(n, for_width) * 8;
  }

  uint8_t best = kEncPlain;
  size_t best_size = plain_size;
  // Tie-break order favors RLE (it enables run-granular probing downstream)
  // over bit-pack over FoR; every alternative must strictly beat plain.
  if (for_size < best_size) {
    best = kEncFor;
    best_size = for_size;
  }
  if (bitpack_size <= best_size && bitpack_size < plain_size) {
    best = kEncBitPack;
    best_size = bitpack_size;
  }
  if (rle_size <= best_size && rle_size < plain_size) {
    best = kEncRle;
    best_size = rle_size;
  }

  switch (best) {
    case kEncRle:
      EncodeRle(vals, n, s.nruns, out);
      break;
    case kEncBitPack:
      out->PutU8(static_cast<uint8_t>(bp_width));
      for (int p = 0; p < 7; ++p) out->PutU8(0);
      EncodePacked(vals, n, /*base=*/0, bp_width, out);
      break;
    case kEncFor:
      out->PutI64(s.min);
      out->PutU8(static_cast<uint8_t>(for_width));
      for (int p = 0; p < 7; ++p) out->PutU8(0);
      EncodePacked(vals, n, s.min, for_width, out);
      break;
    default:
      out->PutBytes(vals, plain_size);
      break;
  }
  return best;
}

template <typename T>
Status CheckValueRange(int64_t lo, int64_t hi) {
  if (lo < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
      hi > static_cast<int64_t>(std::numeric_limits<T>::max())) {
    return Status::IoError("encoded value out of range for column type");
  }
  return Status::OK();
}

Status CheckTypeRange(TypeKind type, int64_t lo, int64_t hi) {
  if (type == TypeKind::kInt32) return CheckValueRange<int32_t>(lo, hi);
  return Status::OK();
}

}  // namespace

const char* EncodingName(uint8_t encoding) {
  switch (encoding) {
    case kEncPlain:
      return "plain";
    case kEncRle:
      return "rle";
    case kEncBitPack:
      return "bitpack";
    case kEncFor:
      return "for";
    case kEncDict:
      return "dict";
    case kEncDictRle:
      return "dict_rle";
    default:
      return "unknown";
  }
}

int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

void BitPack(const uint64_t* vals, uint32_t n, int width, uint64_t* words) {
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t bit = static_cast<uint64_t>(i) * width;
    const uint64_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    words[word] |= vals[i] << shift;
    if (shift + static_cast<unsigned>(width) > 64) {
      words[word + 1] |= vals[i] >> (64 - shift);
    }
  }
}

void BitUnpackAll(const uint64_t* words, uint32_t n, int width,
                  uint64_t* out) {
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  uint32_t i = 0;
  // Unrolled by 4: the bit/word/shift arithmetic is independent across
  // lanes, so the loads pipeline instead of serializing on one accumulator.
  for (; i + 4 <= n; i += 4) {
    out[i] = BitUnpackOne(words, i, width) & mask;
    out[i + 1] = BitUnpackOne(words, i + 1, width) & mask;
    out[i + 2] = BitUnpackOne(words, i + 2, width) & mask;
    out[i + 3] = BitUnpackOne(words, i + 3, width) & mask;
  }
  for (; i < n; ++i) out[i] = BitUnpackOne(words, i, width);
}

Status ParseIntPayload(const uint8_t* payload, size_t len, uint32_t nrows,
                       TypeKind type, uint8_t encoding, IntBlockView* view) {
  view->encoding = encoding;
  view->nrows = nrows;
  const size_t value_width = type == TypeKind::kInt32 ? 4 : 8;
  switch (encoding) {
    case kEncPlain:
      if (len < nrows * value_width) {
        return Status::IoError("truncated plain integer column block");
      }
      view->plain = payload;
      return Status::OK();
    case kEncRle: {
      if (len < 8) return Status::IoError("truncated RLE block header");
      uint32_t nruns = 0;
      std::memcpy(&nruns, payload, sizeof(nruns));
      if (nruns > nrows) {
        return Status::IoError("RLE run count exceeds block row count");
      }
      if (len < 8 + static_cast<size_t>(nruns) * 12) {
        return Status::IoError("truncated RLE runs");
      }
      view->nruns = nruns;
      view->run_values = reinterpret_cast<const int64_t*>(payload + 8);
      view->run_lengths = reinterpret_cast<const uint32_t*>(
          payload + 8 + static_cast<size_t>(nruns) * 8);
      uint64_t total = 0;
      int64_t lo = 0, hi = 0;
      for (uint32_t r = 0; r < nruns; ++r) {
        if (view->run_lengths[r] == 0) {
          return Status::IoError("empty RLE run");
        }
        total += view->run_lengths[r];
        lo = r == 0 ? view->run_values[r] : std::min(lo, view->run_values[r]);
        hi = r == 0 ? view->run_values[r] : std::max(hi, view->run_values[r]);
      }
      if (total != nrows) {
        return Status::IoError("RLE run lengths disagree with block row count");
      }
      if (nruns > 0) CLY_RETURN_IF_ERROR(CheckTypeRange(type, lo, hi));
      return Status::OK();
    }
    case kEncBitPack:
    case kEncFor: {
      const size_t header = encoding == kEncFor ? 16 : 8;
      if (len < header) return Status::IoError("truncated packed block header");
      if (encoding == kEncFor) {
        std::memcpy(&view->base, payload, sizeof(int64_t));
      }
      const int width = payload[header - 8];
      if (width < 1 || width > 63) {
        return Status::IoError("packed block bit width out of range");
      }
      view->width = width;
      const size_t words = PackedWordCount(nrows, width);
      if (len < header + words * 8) {
        return Status::IoError("truncated packed words in column block");
      }
      view->words = reinterpret_cast<const uint64_t*>(payload + header);
      // The whole decoded range must fit the column type: base + max delta
      // may not overflow int64 nor escape int32 for a 32-bit column. This
      // is what keeps a corrupt FoR base from fabricating wild values.
      const uint64_t max_delta = (uint64_t{1} << width) - 1;
      const int64_t base = view->base;
      if (base > 0 &&
          max_delta >
              static_cast<uint64_t>(std::numeric_limits<int64_t>::max() -
                                    base)) {
        return Status::IoError("FoR delta range overflows int64");
      }
      CLY_RETURN_IF_ERROR(CheckTypeRange(
          type, base, base + static_cast<int64_t>(max_delta)));
      return Status::OK();
    }
    default:
      return Status::IoError("unknown CIF v3 integer column encoding");
  }
}

void DecodeIntView(const IntBlockView& view, TypeKind type,
                   ColumnVector* out) {
  const uint32_t n = view.nrows;
  if (type == TypeKind::kInt32) {
    auto* v = out->mutable_i32();
    v->resize(n);
    switch (view.encoding) {
      case kEncPlain:
        std::memcpy(v->data(), view.plain, n * sizeof(int32_t));
        break;
      case kEncRle: {
        uint32_t i = 0;
        for (uint32_t r = 0; r < view.nruns; ++r) {
          const auto val = static_cast<int32_t>(view.run_values[r]);
          std::fill_n(v->data() + i, view.run_lengths[r], val);
          i += view.run_lengths[r];
        }
        break;
      }
      default:
        for (uint32_t i = 0; i < n; ++i) {
          (*v)[i] = static_cast<int32_t>(view.PackedAt(i));
        }
        break;
    }
    return;
  }
  auto* v = out->mutable_i64();
  v->resize(n);
  switch (view.encoding) {
    case kEncPlain:
      std::memcpy(v->data(), view.plain, n * sizeof(int64_t));
      break;
    case kEncRle: {
      uint32_t i = 0;
      for (uint32_t r = 0; r < view.nruns; ++r) {
        std::fill_n(v->data() + i, view.run_lengths[r], view.run_values[r]);
        i += view.run_lengths[r];
      }
      break;
    }
    default:
      if (view.base == 0 && n > 0) {
        // Straight unpack: the unrolled kernel writes u64 lanes that
        // reinterpret exactly as the non-negative int64 values.
        BitUnpackAll(view.words, n, view.width,
                     reinterpret_cast<uint64_t*>(v->data()));
      } else {
        for (uint32_t i = 0; i < n; ++i) (*v)[i] = view.PackedAt(i);
      }
      break;
  }
}

uint8_t EncodeIntPayload(const ColumnVector& col, ByteWriter* out,
                         IntBlockStats* stats) {
  if (col.type() == TypeKind::kInt32) {
    const auto n = static_cast<uint32_t>(col.i32().size());
    *stats = ComputeStats(col.i32().data(), n);
    return EncodeIntPayloadT(col.i32().data(), n, *stats, out);
  }
  const auto n = static_cast<uint32_t>(col.i64().size());
  *stats = ComputeStats(col.i64().data(), n);
  return EncodeIntPayloadT(col.i64().data(), n, *stats, out);
}

}  // namespace storage
}  // namespace clydesdale
