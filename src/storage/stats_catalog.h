#ifndef CLYDESDALE_STORAGE_STATS_CATALOG_H_
#define CLYDESDALE_STORAGE_STATS_CATALOG_H_

#include <string>
#include <vector>

#include "common/sketch.h"
#include "common/status.h"
#include "schema/value.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace storage {

/// Per-column statistics produced by ANALYZE: the input surface a cost-based
/// planner needs to choose between star-join, mapjoin, and repartition join
/// (ROADMAP item 3, the paper's §6.3 dissection automated).
struct ColumnStats {
  std::string name;
  TypeKind type = TypeKind::kInt32;
  /// Non-null values observed (CIF columns are never null today, so this
  /// equals the table row count; the split is kept so a nullable format can
  /// reuse the struct unchanged).
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  /// Valid only when row_count > 0.
  Value min;
  Value max;
  /// HLL estimate of the number of distinct non-null values.
  double ndv = 0;
  /// The sketch itself is persisted so a future segment roll-in can merge
  /// instead of rescanning history.
  HllSketch sketch;
  /// Numeric columns only (empty for strings).
  EquiDepthHistogram histogram;

  double null_fraction() const {
    const uint64_t total = row_count + null_count;
    return total == 0 ? 0.0
                      : static_cast<double>(null_count) /
                            static_cast<double>(total);
  }
};

/// ANALYZE output for one table at one CIF version.
struct TableStats {
  std::string table_path;
  int cif_version = 0;
  /// Exact row count observed by the scan (not the metadata claim).
  uint64_t num_rows = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* Column(const std::string& name) const;
};

struct AnalyzeOptions {
  int histogram_buckets = 32;
  /// Per-column reservoir feeding the equi-depth histogram.
  size_t sample_capacity = 8192;
  ScanStats* scan_stats = nullptr;
};

/// Streams every split of `desc` (any storage format; CIF streams
/// column-block-wise) and computes exact row counts / min / max plus
/// sketched NDV and a sampled equi-depth histogram per column.
Result<TableStats> AnalyzeTable(const hdfs::MiniDfs& dfs,
                                const TableDesc& desc,
                                const AnalyzeOptions& options = {});

/// Text round-trip used by the catalog's sim-HDFS persistence. One field per
/// line (`key<space>value`, values may contain spaces but not newlines).
std::string SerializeTableStats(const TableStats& stats);
Result<TableStats> ParseTableStats(std::string_view text);

/// Versioned persistent statistics store over sim-HDFS. Entries are keyed by
/// (table path, cif_version) — a rewrite of the table at a new CIF version
/// never aliases stale statistics — and invalidated at load time when the
/// live TableDesc disagrees with the recorded shape (row count drift from a
/// roll-in/roll-out, or a version bump), so a stale entry degrades to "not
/// analyzed yet" rather than to wrong estimates.
class StatsCatalog {
 public:
  explicit StatsCatalog(hdfs::MiniDfs* dfs, std::string root = "/stats");

  /// ANALYZE + persist; returns the fresh statistics.
  Result<TableStats> Analyze(const TableDesc& desc,
                             const AnalyzeOptions& options = {});

  /// Loads the entry for (desc.path, desc.cif_version). NotFound when the
  /// table was never analyzed at this version or the entry is invalidated
  /// by desc (num_rows mismatch).
  Result<TableStats> Load(const TableDesc& desc) const;

  bool Has(const TableDesc& desc) const;

  /// Drops the entry (no-op when absent).
  Status Invalidate(const TableDesc& desc);

  /// DFS path of the entry for (desc.path, desc.cif_version).
  std::string EntryPath(const TableDesc& desc) const;

 private:
  hdfs::MiniDfs* dfs_;
  std::string root_;
};

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_STATS_CATALOG_H_
