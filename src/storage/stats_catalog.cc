#include "storage/stats_catalog.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace clydesdale {
namespace storage {

namespace {

/// %.17g: the exact double round-trips through strtod (same discipline as
/// the job-history serializer).
std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* TypeToken(TypeKind type) {
  switch (type) {
    case TypeKind::kInt32: return "int32";
    case TypeKind::kInt64: return "int64";
    case TypeKind::kDouble: return "double";
    case TypeKind::kString: return "string";
  }
  return "int32";
}

Result<TypeKind> ParseTypeToken(std::string_view token) {
  if (token == "int32") return TypeKind::kInt32;
  if (token == "int64") return TypeKind::kInt64;
  if (token == "double") return TypeKind::kDouble;
  if (token == "string") return TypeKind::kString;
  return Status::InvalidArgument(StrCat("unknown stats type ", token));
}

Result<Value> ParseTypedValue(TypeKind type, const std::string& text) {
  switch (type) {
    case TypeKind::kInt32:
      return Value(static_cast<int32_t>(std::strtoll(text.c_str(), nullptr, 10)));
    case TypeKind::kInt64:
      return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
    case TypeKind::kDouble:
      return Value(std::strtod(text.c_str(), nullptr));
    case TypeKind::kString:
      return Value(text);
  }
  return Status::InvalidArgument("bad type");
}

/// Per-column accumulation state while streaming batches.
struct ColumnAccumulator {
  ColumnStats stats;
  ReservoirSample sample;
  bool has_bounds = false;
  int64_t min_i = 0, max_i = 0;
  double min_d = 0, max_d = 0;
  std::string min_s, max_s;

  explicit ColumnAccumulator(size_t sample_capacity)
      : sample(sample_capacity) {}
};

void AccumulateColumn(const ColumnVector& col, int64_t num_rows,
                      ColumnAccumulator* acc) {
  acc->stats.row_count += static_cast<uint64_t>(num_rows);
  switch (acc->stats.type) {
    case TypeKind::kInt32:
      for (int32_t v : col.i32()) {
        acc->stats.sketch.AddInt64(v);
        acc->sample.Add(static_cast<double>(v));
        if (!acc->has_bounds || v < acc->min_i) acc->min_i = v;
        if (!acc->has_bounds || v > acc->max_i) acc->max_i = v;
        acc->has_bounds = true;
      }
      break;
    case TypeKind::kInt64:
      for (int64_t v : col.i64()) {
        acc->stats.sketch.AddInt64(v);
        acc->sample.Add(static_cast<double>(v));
        if (!acc->has_bounds || v < acc->min_i) acc->min_i = v;
        if (!acc->has_bounds || v > acc->max_i) acc->max_i = v;
        acc->has_bounds = true;
      }
      break;
    case TypeKind::kDouble:
      for (double v : col.f64()) {
        acc->stats.sketch.AddDouble(v);
        acc->sample.Add(v);
        if (!acc->has_bounds || v < acc->min_d) acc->min_d = v;
        if (!acc->has_bounds || v > acc->max_d) acc->max_d = v;
        acc->has_bounds = true;
      }
      break;
    case TypeKind::kString:
      for (int64_t i = 0; i < num_rows; ++i) {
        const std::string_view v = col.StringViewAt(i);
        acc->stats.sketch.AddString(v);
        if (!acc->has_bounds || v < acc->min_s) acc->min_s = std::string(v);
        if (!acc->has_bounds || v > acc->max_s) acc->max_s = std::string(v);
        acc->has_bounds = true;
      }
      break;
  }
}

void FinalizeColumn(const AnalyzeOptions& options, ColumnAccumulator* acc) {
  ColumnStats* stats = &acc->stats;
  stats->ndv = stats->row_count == 0 ? 0.0 : stats->sketch.Estimate();
  if (acc->has_bounds) {
    switch (stats->type) {
      case TypeKind::kInt32:
        stats->min = Value(static_cast<int32_t>(acc->min_i));
        stats->max = Value(static_cast<int32_t>(acc->max_i));
        break;
      case TypeKind::kInt64:
        stats->min = Value(acc->min_i);
        stats->max = Value(acc->max_i);
        break;
      case TypeKind::kDouble:
        stats->min = Value(acc->min_d);
        stats->max = Value(acc->max_d);
        break;
      case TypeKind::kString:
        stats->min = Value(acc->min_s);
        stats->max = Value(acc->max_s);
        break;
    }
  }
  if (stats->type != TypeKind::kString) {
    stats->histogram = BuildEquiDepthHistogram(acc->sample.values(),
                                               options.histogram_buckets);
  }
}

}  // namespace

const ColumnStats* TableStats::Column(const std::string& name) const {
  for (const ColumnStats& column : columns) {
    if (column.name == name) return &column;
  }
  return nullptr;
}

Result<TableStats> AnalyzeTable(const hdfs::MiniDfs& dfs,
                                const TableDesc& desc,
                                const AnalyzeOptions& options) {
  if (desc.schema == nullptr) {
    return Status::InvalidArgument("AnalyzeTable: desc has no schema");
  }
  TableStats stats;
  stats.table_path = desc.path;
  stats.cif_version = desc.cif_version;

  const Schema& schema = *desc.schema;
  std::vector<ColumnAccumulator> accumulators;
  accumulators.reserve(static_cast<size_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    accumulators.emplace_back(options.sample_capacity);
    accumulators.back().stats.name = field.name;
    accumulators.back().stats.type = field.type;
  }

  CLY_ASSIGN_OR_RETURN(std::vector<StorageSplit> splits,
                       ListTableSplits(dfs, desc));
  ScanOptions scan;
  scan.scan_stats = options.scan_stats;
  for (const StorageSplit& split : splits) {
    CLY_ASSIGN_OR_RETURN(std::unique_ptr<BatchReader> reader,
                         OpenSplitBatchReader(dfs, desc, split, scan));
    RowBatch batch(reader->output_schema());
    while (true) {
      CLY_ASSIGN_OR_RETURN(bool more, reader->NextBatch(&batch, 16384));
      if (!more) break;
      const int64_t rows = batch.num_rows();
      stats.num_rows += static_cast<uint64_t>(rows);
      for (int c = 0; c < batch.num_columns(); ++c) {
        AccumulateColumn(batch.column(c), rows,
                         &accumulators[static_cast<size_t>(c)]);
      }
    }
  }

  for (ColumnAccumulator& acc : accumulators) {
    FinalizeColumn(options, &acc);
    stats.columns.push_back(std::move(acc.stats));
  }
  return stats;
}

std::string SerializeTableStats(const TableStats& stats) {
  std::string out = "statscatalog 1\n";
  out.append(StrCat("table ", stats.table_path, "\n"));
  out.append(StrCat("cif_version ", stats.cif_version, "\n"));
  out.append(StrCat("num_rows ", stats.num_rows, "\n"));
  out.append(StrCat("columns ", stats.columns.size(), "\n"));
  for (const ColumnStats& column : stats.columns) {
    out.append(StrCat("column ", column.name, "\n"));
    out.append(StrCat("type ", TypeToken(column.type), "\n"));
    out.append(StrCat("rows ", column.row_count, "\n"));
    out.append(StrCat("nulls ", column.null_count, "\n"));
    if (column.row_count > 0) {
      out.append(StrCat("min ", column.min.ToString(), "\n"));
      out.append(StrCat("max ", column.max.ToString(), "\n"));
    }
    out.append(StrCat("ndv ", FmtDouble(column.ndv), "\n"));
    out.append(StrCat("hll ", column.sketch.SerializeHex(), "\n"));
    if (!column.histogram.empty()) {
      std::vector<std::string> bounds, counts;
      for (double b : column.histogram.bounds) bounds.push_back(FmtDouble(b));
      for (uint64_t c : column.histogram.counts) counts.push_back(StrCat(c));
      out.append(StrCat("histbounds ", StrJoin(bounds, ","), "\n"));
      out.append(StrCat("histcounts ", StrJoin(counts, ","), "\n"));
    }
    out.append("endcolumn\n");
  }
  out.append("end\n");
  return out;
}

Result<TableStats> ParseTableStats(std::string_view text) {
  TableStats stats;
  ColumnStats* column = nullptr;
  bool saw_header = false;
  bool saw_end = false;
  std::string pending_min, pending_max;
  bool has_min = false, has_max = false;

  auto finish_column = [&]() -> Status {
    if (column == nullptr) return Status::OK();
    if (has_min) {
      CLY_ASSIGN_OR_RETURN(column->min,
                           ParseTypedValue(column->type, pending_min));
    }
    if (has_max) {
      CLY_ASSIGN_OR_RETURN(column->max,
                           ParseTypedValue(column->type, pending_max));
    }
    column = nullptr;
    has_min = has_max = false;
    return Status::OK();
  };

  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string rest =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "statscatalog") {
      if (rest != "1") {
        return Status::InvalidArgument(
            StrCat("unknown stats catalog version ", rest));
      }
      saw_header = true;
    } else if (key == "table") {
      stats.table_path = rest;
    } else if (key == "cif_version") {
      stats.cif_version = static_cast<int>(std::strtol(rest.c_str(), nullptr, 10));
    } else if (key == "num_rows") {
      stats.num_rows = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "columns") {
      stats.columns.reserve(std::strtoull(rest.c_str(), nullptr, 10));
    } else if (key == "column") {
      CLY_RETURN_IF_ERROR(finish_column());
      stats.columns.emplace_back();
      column = &stats.columns.back();
      column->name = rest;
    } else if (key == "endcolumn") {
      CLY_RETURN_IF_ERROR(finish_column());
    } else if (key == "end") {
      CLY_RETURN_IF_ERROR(finish_column());
      saw_end = true;
    } else if (column == nullptr) {
      return Status::InvalidArgument(
          StrCat("stats field outside a column block: ", key));
    } else if (key == "type") {
      CLY_ASSIGN_OR_RETURN(column->type, ParseTypeToken(rest));
    } else if (key == "rows") {
      column->row_count = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "nulls") {
      column->null_count = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "min") {
      pending_min = rest;
      has_min = true;
    } else if (key == "max") {
      pending_max = rest;
      has_max = true;
    } else if (key == "ndv") {
      column->ndv = std::strtod(rest.c_str(), nullptr);
    } else if (key == "hll") {
      CLY_ASSIGN_OR_RETURN(column->sketch, HllSketch::DeserializeHex(rest));
    } else if (key == "histbounds") {
      for (const std::string& b : StrSplit(rest, ',')) {
        column->histogram.bounds.push_back(std::strtod(b.c_str(), nullptr));
      }
    } else if (key == "histcounts") {
      for (const std::string& c : StrSplit(rest, ',')) {
        column->histogram.counts.push_back(std::strtoull(c.c_str(), nullptr, 10));
      }
    } else {
      // Unknown keys are skipped so a newer writer stays loadable.
    }
  }
  if (!saw_header || !saw_end) {
    return Status::InvalidArgument("truncated stats catalog entry");
  }
  return stats;
}

StatsCatalog::StatsCatalog(hdfs::MiniDfs* dfs, std::string root)
    : dfs_(dfs), root_(std::move(root)) {}

std::string StatsCatalog::EntryPath(const TableDesc& desc) const {
  std::string escaped = desc.path;
  for (char& c : escaped) {
    if (c == '/') c = '_';
  }
  return StrCat(root_, "/", escaped, ".v", desc.cif_version, ".stats");
}

Result<TableStats> StatsCatalog::Analyze(const TableDesc& desc,
                                         const AnalyzeOptions& options) {
  CLY_ASSIGN_OR_RETURN(TableStats stats, AnalyzeTable(*dfs_, desc, options));
  const std::string path = EntryPath(desc);
  if (dfs_->Exists(path)) CLY_RETURN_IF_ERROR(dfs_->Delete(path));
  CLY_RETURN_IF_ERROR(dfs_->WriteFile(path, SerializeTableStats(stats)));
  return stats;
}

Result<TableStats> StatsCatalog::Load(const TableDesc& desc) const {
  const std::string path = EntryPath(desc);
  if (!dfs_->Exists(path)) {
    return Status::NotFound(StrCat("no stats for ", desc.path, " at v",
                                   desc.cif_version));
  }
  CLY_ASSIGN_OR_RETURN(std::string text, dfs_->ReadFileToString(path));
  CLY_ASSIGN_OR_RETURN(TableStats stats, ParseTableStats(text));
  // Load-time invalidation: the entry must describe the table as it stands.
  // A roll-in/roll-out changes num_rows, a format migration changes the
  // version — either way stale statistics are worse than none.
  if (stats.cif_version != desc.cif_version ||
      stats.num_rows != desc.num_rows) {
    return Status::NotFound(
        StrCat("stats for ", desc.path, " are stale (recorded ",
               stats.num_rows, " rows at v", stats.cif_version, ", table has ",
               desc.num_rows, " at v", desc.cif_version, ")"));
  }
  return stats;
}

bool StatsCatalog::Has(const TableDesc& desc) const {
  return Load(desc).ok();
}

Status StatsCatalog::Invalidate(const TableDesc& desc) {
  const std::string path = EntryPath(desc);
  if (!dfs_->Exists(path)) return Status::OK();
  return dfs_->Delete(path);
}

}  // namespace storage
}  // namespace clydesdale
