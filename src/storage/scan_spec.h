#ifndef CLYDESDALE_STORAGE_SCAN_SPEC_H_
#define CLYDESDALE_STORAGE_SCAN_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "schema/expr.h"

namespace clydesdale {
namespace storage {

/// A membership filter over an integer key column, pushed into the scan by a
/// join layer (the star-join runner wraps its built DimHashTables in these so
/// the CIF reader can drop fact rows whose foreign key has no dimension
/// match — a semi-join below the scan). Implementations must be immutable
/// and thread-safe: one filter is shared by every scan thread.
class ScanKeyFilter {
 public:
  virtual ~ScanKeyFilter() = default;

  /// Exact membership test for one key.
  virtual bool Contains(int64_t key) const = 0;

  /// Conservative block-level test: may the inclusive range [lo, hi] contain
  /// any member? Used against zone maps; false skips the whole block, so
  /// implementations must only return false when certain.
  virtual bool RangeMightMatch(int64_t lo, int64_t hi) const = 0;
};

/// What a scan should evaluate below decode. Conjuncts are single-column
/// leaf predicates ANDed together (the scan may evaluate any subset it
/// understands — evaluating none is always correct since callers re-check);
/// key_filters are semi-join membership tests, exact per row. Both prune
/// rows *before* non-filter columns are materialized.
struct ScanSpec {
  std::vector<Predicate::Ptr> conjuncts;

  struct KeyFilterEntry {
    std::string column;
    std::shared_ptr<const ScanKeyFilter> filter;
  };
  std::vector<KeyFilterEntry> key_filters;

  bool empty() const { return conjuncts.empty() && key_filters.empty(); }
};

/// Pruning effectiveness of one scan, reported by the CIF v2+ reader.
/// blocks_skipped counts column-block row-groups eliminated by zone maps
/// alone; rows_pruned counts rows eliminated before materialization (both
/// zone-map skips and per-row predicate/key-filter drops).
///
/// The byte and per-encoding members describe compression on the v3 read
/// path: bytes_encoded is what the loaded column blocks occupy on disk,
/// bytes_raw their plain-encoding equivalent (so bytes_raw / bytes_encoded
/// is the observed compression ratio), and blocks_by_encoding[tag] counts
/// loaded blocks per encoding tag (storage/column_codec.h).
struct ScanStats {
  uint64_t blocks_skipped = 0;
  uint64_t rows_pruned = 0;
  uint64_t bytes_encoded = 0;
  uint64_t bytes_raw = 0;
  uint64_t blocks_by_encoding[6] = {0, 0, 0, 0, 0, 0};
  /// Rows actually materialized by the reader (post zone-skip, post
  /// pushdown selection). Every CIF version's read path fills this, so the
  /// per-operator profiler sees v1 eager scans too.
  uint64_t rows_read = 0;
  /// Block-prefetcher effectiveness (cif.scan.prefetch runs only): a hit is
  /// a Take() that found the block already fetched, a miss one that had to
  /// wait `prefetch_wait_ns` for the worker.
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  uint64_t prefetch_wait_ns = 0;
  /// Bytes of shared column-block arenas the late path delivered to this
  /// scan (prefetched or read inline). String columns keep these arenas
  /// alive past the reader via RowBatch::string_arena, so this — not
  /// bytes_encoded — is what the scan operator's memory attribution and the
  /// MemTracker charge (ScanOptions::mem_reporter) must agree on.
  uint64_t arena_bytes = 0;

  /// Adds every counter of `other` into this — the one fold point, so a new
  /// member can never silently go missing from per-thread/per-task merges.
  void MergeFrom(const ScanStats& other) {
    blocks_skipped += other.blocks_skipped;
    rows_pruned += other.rows_pruned;
    bytes_encoded += other.bytes_encoded;
    bytes_raw += other.bytes_raw;
    for (int i = 0; i < 6; ++i) {
      blocks_by_encoding[i] += other.blocks_by_encoding[i];
    }
    rows_read += other.rows_read;
    prefetch_hits += other.prefetch_hits;
    prefetch_misses += other.prefetch_misses;
    prefetch_wait_ns += other.prefetch_wait_ns;
    arena_bytes += other.arena_bytes;
  }
};

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_SCAN_SPEC_H_
