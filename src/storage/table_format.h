#ifndef CLYDESDALE_STORAGE_TABLE_FORMAT_H_
#define CLYDESDALE_STORAGE_TABLE_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mem.h"
#include "common/status.h"
#include "hdfs/dfs.h"
#include "schema/row.h"
#include "schema/row_batch.h"
#include "schema/schema.h"
#include "storage/scan_spec.h"

namespace clydesdale {
namespace storage {

/// Format identifiers accepted in TableDesc::format.
inline constexpr const char kFormatText[] = "text";
inline constexpr const char kFormatBinaryRow[] = "binrow";
inline constexpr const char kFormatCif[] = "cif";
inline constexpr const char kFormatRcFile[] = "rcfile";

/// Description of a stored table; persisted as `<path>/_meta` in DFS.
struct TableDesc {
  /// DFS directory, e.g. "/data/lineorder".
  std::string path;
  std::string format;
  SchemaPtr schema;
  uint64_t num_rows = 0;
  /// Rows per split / row group (cif and rcfile only).
  uint64_t rows_per_split = 0;
  /// CIF roll-in support (paper §2: appending fact data must be cheap):
  /// a CIF table is a list of segments, each a complete set of column
  /// files; rolling in appends a segment, rolling out drops one. Empty
  /// means a single segment of num_rows. segment_rows[k] == 0 marks a
  /// rolled-out segment.
  std::vector<uint64_t> segment_rows;
  /// On-disk CIF block layout version. New tables write v3 (per-block zone
  /// maps + footer + lightweight block encodings); LoadTableDesc defaults
  /// absent metadata to 1 so every pre-existing table keeps decoding
  /// through the v1 path, and explicitly versioned v2 tables keep the v2
  /// writer/reader pair.
  int cif_version = 3;

  int num_segments() const {
    return segment_rows.empty() ? 1 : static_cast<int>(segment_rows.size());
  }
};

/// One schedulable unit of a table scan, mirroring a Hadoop InputSplit.
struct StorageSplit {
  std::string table_path;
  std::string format;
  int index = 0;
  /// Which table segment the split belongs to (CIF roll-in).
  int segment = 0;
  /// Block ordinal within the segment's column files.
  int block_in_segment = 0;
  /// Scheduling weight: bytes of the split's anchor data.
  uint64_t length_bytes = 0;
  /// Row range covered, when the format tracks it (cif/rcfile).
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  /// Nodes holding the split's data locally (from block locations).
  std::vector<hdfs::NodeId> preferred_nodes;
};

/// Scan configuration shared by all formats.
struct ScanOptions {
  /// Columns to materialize, in output order. Empty selects all columns.
  /// Row-oriented formats still *read* every byte and project afterwards;
  /// columnar formats avoid the I/O (the paper's §4.1 point).
  std::vector<std::string> projection;
  hdfs::NodeId reader_node = hdfs::kNoNode;
  hdfs::IoStats* stats = nullptr;
  /// Predicates + semi-join key filters to evaluate below decode. Only the
  /// CIF v2 late-materialization path acts on it; all other paths ignore it
  /// (callers must re-check predicates, so ignoring is always correct).
  std::shared_ptr<const ScanSpec> scan_spec;
  /// A/B knob (`cif.scan.late_materialize`): when false, CIF v2 splits use
  /// the eager v1-style decode (scan_spec ignored) for apples-to-apples
  /// comparison. v1 files always decode eagerly regardless.
  bool late_materialize = true;
  /// Double-buffered async block read-ahead (`cif.scan.prefetch`): a worker
  /// thread fetches the next column block while the current one decodes.
  /// CIF v2+ late path only; off by default (results are byte-identical
  /// either way — the knob trades a thread for I/O/decode overlap).
  bool prefetch = false;
  /// Attach RLE run metadata to materialized integer columns (ColumnVector
  /// runs) so downstream operators can probe/aggregate per run instead of
  /// per row. CIF v3 late path only; off by default because consumers that
  /// mutate columns in place would not know to invalidate the runs.
  bool expose_runs = false;
  /// Optional pruning-effectiveness output (CIF v2+ late path only).
  ScanStats* scan_stats = nullptr;
  /// Memory attribution for column-block arenas (CIF v2+ late path only):
  /// every delivered arena is charged here and released when its last
  /// reference drops — which for string columns is when the consuming
  /// RowBatch dies, not when the reader does. Typically the task attempt's
  /// obs::MemTracker; null disables tracking.
  std::shared_ptr<MemReporter> mem_reporter;
};

/// Row-at-a-time reader over one split.
class RowReader {
 public:
  virtual ~RowReader() = default;
  /// Fills `out` and returns true, or returns false at end of split.
  virtual Result<bool> Next(Row* out) = 0;
  /// Schema of rows produced (projection applied).
  virtual const SchemaPtr& output_schema() const = 0;
};

/// Block-at-a-time reader (the B-CIF iteration model, paper §5.3).
class BatchReader {
 public:
  virtual ~BatchReader() = default;
  /// Clears and fills `out` with up to `max_rows` rows; returns false when
  /// the split is exhausted (out left empty).
  virtual Result<bool> NextBatch(RowBatch* out, int64_t max_rows) = 0;
  virtual const SchemaPtr& output_schema() const = 0;
};

/// Append-only table writer; Close() persists `_meta`.
class TableWriter {
 public:
  virtual ~TableWriter() = default;
  virtual Status Append(const Row& row) = 0;
  virtual Status Close() = 0;
  virtual uint64_t rows_written() const = 0;
};

// --- Metadata ---------------------------------------------------------------

Status SaveTableDesc(hdfs::MiniDfs* dfs, const TableDesc& desc);
Result<TableDesc> LoadTableDesc(const hdfs::MiniDfs& dfs,
                                const std::string& path);

// --- Format dispatch --------------------------------------------------------

/// Creates a writer for desc.format. The table directory must not exist yet.
Result<std::unique_ptr<TableWriter>> OpenTableWriter(hdfs::MiniDfs* dfs,
                                                     const TableDesc& desc);

/// Enumerates the splits of a stored table.
Result<std::vector<StorageSplit>> ListTableSplits(const hdfs::MiniDfs& dfs,
                                                  const TableDesc& desc);

/// Opens a row reader over one split.
Result<std::unique_ptr<RowReader>> OpenSplitRowReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

/// Opens a batch reader over one split. Native for CIF; other formats are
/// adapted from their row readers (and so gain no I/O or CPU benefit).
Result<std::unique_ptr<BatchReader>> OpenSplitBatchReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

/// Resolves `options.projection` against `schema`: returns the projected
/// field indexes (all fields when the projection is empty).
Result<std::vector<int>> ResolveProjection(const Schema& schema,
                                           const ScanOptions& options);

/// Reads an entire table into memory (tests, reference executor, dim loads).
Result<std::vector<Row>> ScanTableToVector(const hdfs::MiniDfs& dfs,
                                           const TableDesc& desc,
                                           const ScanOptions& options);

/// Wraps a RowReader as a BatchReader (used by non-columnar formats).
std::unique_ptr<BatchReader> AdaptRowReaderToBatch(
    std::unique_ptr<RowReader> reader);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_TABLE_FORMAT_H_
