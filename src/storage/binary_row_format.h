#ifndef CLYDESDALE_STORAGE_BINARY_ROW_FORMAT_H_
#define CLYDESDALE_STORAGE_BINARY_ROW_FORMAT_H_

#include <memory>
#include <vector>

#include "storage/table_format.h"

namespace clydesdale {
namespace storage {

/// Row-oriented binary tables: length-prefixed encoded rows in
/// `<path>/data.bin`, blocks ending at row boundaries (split == block).
/// This is the format dimension-table masters use in HDFS (paper §6.2:
/// "dimension tables were stored in HDFS in binary format").
Result<std::unique_ptr<TableWriter>> OpenBinaryRowTableWriter(
    hdfs::MiniDfs* dfs, const TableDesc& desc);
Result<std::vector<StorageSplit>> ListBinaryRowSplits(const hdfs::MiniDfs& dfs,
                                                      const TableDesc& desc);
Result<std::unique_ptr<RowReader>> OpenBinaryRowSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

/// Encodes rows into the same stream layout used by the data file (u32 length
/// + encoded row, repeated). Used for local dimension replicas and the
/// distributed cache.
std::vector<uint8_t> EncodeRowStream(const std::vector<Row>& rows);

/// Decodes a full row stream produced by EncodeRowStream (or a data block).
Result<std::vector<Row>> DecodeRowStream(const Schema& schema,
                                         const uint8_t* data, size_t len);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_BINARY_ROW_FORMAT_H_
