#ifndef CLYDESDALE_STORAGE_RCFILE_H_
#define CLYDESDALE_STORAGE_RCFILE_H_

#include <memory>
#include <vector>

#include "storage/table_format.h"

namespace clydesdale {
namespace storage {

/// RCFile-like PAX format (paper §6.2: Hive's storage): a single file
/// `<path>/data.rc` of row groups, one group per HDFS block. Within a group
/// every column is stored contiguously as a chunk of text-serialized values
/// (Hive's serde keeps fields textual), so a reader can skip the byte ranges
/// of unneeded columns — I/O elimination inside a block, but unlike CIF the
/// split granularity stays one block of *all* columns and the values pay
/// text parsing.
///
/// Group layout: [u32 magic][u32 nrows][u32 ncols][ncols x u32 chunk bytes]
/// then per column chunk: per value u8 length + text bytes.
Result<std::unique_ptr<TableWriter>> OpenRcFileTableWriter(
    hdfs::MiniDfs* dfs, const TableDesc& desc);
Result<std::vector<StorageSplit>> ListRcFileSplits(const hdfs::MiniDfs& dfs,
                                                   const TableDesc& desc);
Result<std::unique_ptr<RowReader>> OpenRcFileSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_RCFILE_H_
