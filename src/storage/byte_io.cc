#include "storage/byte_io.h"

// Header-only; this translation unit exists so the CMake target has a source
// and to anchor any future out-of-line additions.
