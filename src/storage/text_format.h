#ifndef CLYDESDALE_STORAGE_TEXT_FORMAT_H_
#define CLYDESDALE_STORAGE_TEXT_FORMAT_H_

#include <memory>
#include <vector>

#include "storage/table_format.h"

namespace clydesdale {
namespace storage {

/// dbgen-style text tables: one '|'-separated line per row in
/// `<path>/data.txt`. The writer ends HDFS blocks at line boundaries, so a
/// split is exactly one block. Readers always pay the full row's bytes; the
/// projection is applied after parsing.
Result<std::unique_ptr<TableWriter>> OpenTextTableWriter(hdfs::MiniDfs* dfs,
                                                         const TableDesc& desc);
Result<std::vector<StorageSplit>> ListTextSplits(const hdfs::MiniDfs& dfs,
                                                 const TableDesc& desc);
Result<std::unique_ptr<RowReader>> OpenTextSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_TEXT_FORMAT_H_
