#include "storage/row_codec.h"

#include <cstdlib>

#include "common/strings.h"

namespace clydesdale {
namespace storage {

void EncodeRow(const Row& row, ByteWriter* out) {
  for (const Value& v : row.values()) {
    switch (v.kind()) {
      case TypeKind::kInt32:
        out->PutI32(v.i32());
        break;
      case TypeKind::kInt64:
        out->PutI64(v.i64());
        break;
      case TypeKind::kDouble:
        out->PutF64(v.f64());
        break;
      case TypeKind::kString:
        out->PutString(v.str());
        break;
    }
  }
}

Status DecodeRow(const Schema& schema, ByteReader* in, Row* out) {
  out->Clear();
  out->Reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    switch (f.type) {
      case TypeKind::kInt32: {
        int32_t v = 0;
        CLY_RETURN_IF_ERROR(in->GetI32(&v));
        out->Append(Value(v));
        break;
      }
      case TypeKind::kInt64: {
        int64_t v = 0;
        CLY_RETURN_IF_ERROR(in->GetI64(&v));
        out->Append(Value(v));
        break;
      }
      case TypeKind::kDouble: {
        double v = 0;
        CLY_RETURN_IF_ERROR(in->GetF64(&v));
        out->Append(Value(v));
        break;
      }
      case TypeKind::kString: {
        std::string s;
        CLY_RETURN_IF_ERROR(in->GetString(&s));
        out->Append(Value(std::move(s)));
        break;
      }
    }
  }
  return Status::OK();
}

size_t EncodedRowSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row.values()) total += v.EncodedSize();
  return total;
}

std::string FormatRowText(const Row& row) { return row.ToString(); }

Status ParseValueText(TypeKind type, std::string_view field, Value* out) {
  // SSB data contains no embedded delimiters, so plain strtol/strtod is safe.
  const std::string buf(field);
  char* end = nullptr;
  switch (type) {
    case TypeKind::kInt32: {
      const long v = std::strtol(buf.c_str(), &end, 10);
      if (end == buf.c_str()) {
        return Status::IoError(StrCat("bad int32 field: '", buf, "'"));
      }
      *out = Value(static_cast<int32_t>(v));
      return Status::OK();
    }
    case TypeKind::kInt64: {
      const long long v = std::strtoll(buf.c_str(), &end, 10);
      if (end == buf.c_str()) {
        return Status::IoError(StrCat("bad int64 field: '", buf, "'"));
      }
      *out = Value(static_cast<int64_t>(v));
      return Status::OK();
    }
    case TypeKind::kDouble: {
      const double v = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str()) {
        return Status::IoError(StrCat("bad double field: '", buf, "'"));
      }
      *out = Value(v);
      return Status::OK();
    }
    case TypeKind::kString:
      *out = Value(buf);
      return Status::OK();
  }
  return Status::Internal("unreachable type kind");
}

Status ParseRowText(const Schema& schema, std::string_view line, Row* out) {
  out->Clear();
  out->Reserve(schema.num_fields());
  size_t start = 0;
  for (int i = 0; i < schema.num_fields(); ++i) {
    const bool last = i + 1 == schema.num_fields();
    size_t end = last ? line.size() : line.find('|', start);
    if (!last && end == std::string_view::npos) {
      return Status::IoError(
          StrCat("too few fields in line: '", std::string(line), "'"));
    }
    Value v;
    CLY_RETURN_IF_ERROR(
        ParseValueText(schema.field(i).type, line.substr(start, end - start), &v));
    out->Append(std::move(v));
    start = end + 1;
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace clydesdale
