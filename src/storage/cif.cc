#include "storage/cif.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"
#include "common/strings.h"
#include "storage/block_prefetch.h"
#include "storage/byte_io.h"
#include "storage/column_codec.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

namespace {

std::string ColumnFilePath(const TableDesc& desc, const std::string& column,
                           int segment = 0) {
  if (segment == 0) return StrCat(desc.path, "/", column, ".col");
  return StrCat(desc.path, "/", column, ".s", segment, ".col");
}

std::string ColocationGroup(const TableDesc& desc, int segment) {
  return segment == 0 ? desc.path : StrCat(desc.path, "#s", segment);
}

// String column block sub-formats: low-cardinality columns (order priority,
// ship mode, regions, ...) store a dictionary plus one byte per row, which
// is what brings the full fact row close to the paper's ~56 B binary width.
constexpr uint8_t kStringPlain = 0;
constexpr uint8_t kStringDictionary = 1;

// --- CIF v2 block framing ----------------------------------------------------
// v1: [u32 nrows][payload]
// v2: [u32 magic][u32 nrows][payload][zone map][u32 zone_len][u32 footer magic]
// The payload bytes are identical across versions; v2 adds a leading magic
// (so a v2 reader rejects v1 bytes instead of misparsing them) and a
// trailing zone-map footer the reader can use to skip the whole block. The
// payload starts at offset 8, so fixed-width value arrays are 8-byte aligned
// in the read buffer and can be scanned in place without a copy.
constexpr uint32_t kCifV2Magic = 0x32464943u;        // "CIF2"
constexpr uint32_t kCifV2FooterMagic = 0x544F4F46u;  // "FOOT"

// v3 keeps the v2 framing byte for byte but changes the magic and prepends
// one encoding-tag byte to the footer section:
//   [u32 "CIF3"][u32 nrows][payload][u8 enc][u8 zone kind][zone data]
//   [u32 zone_len]["FOOT"]
// The payload layout depends on the tag (storage/column_codec.h). A v2
// reader rejects v3 bytes on the magic (and vice versa), so cross-version
// reads stay IoError instead of misparsing.
constexpr uint32_t kCifV3Magic = 0x33464943u;  // "CIF3"

// Zone map kinds (first byte of the zone section).
constexpr uint8_t kZoneNone = 0;
constexpr uint8_t kZoneInt = 1;     // [i64 min][i64 max]
constexpr uint8_t kZoneDouble = 2;  // [f64 min][f64 max]
constexpr uint8_t kZoneDict = 3;    // [u64 fingerprint]

/// One bit per distinct dictionary entry; an equality probe whose bit is
/// absent cannot match any row of the block.
uint64_t DictFingerprintBit(std::string_view s) {
  return 1ull << (HashString(s) & 63);
}

struct ZoneMap {
  uint8_t kind = kZoneNone;
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_f64 = 0.0;
  double max_f64 = 0.0;
  uint64_t fingerprint = 0;
};

/// Serializes one column's buffered values (everything after the row count)
/// and computes the block's zone map as a by-product of the same pass.
void EncodeColumnPayload(const ColumnVector& col, ByteWriter* out,
                         ZoneMap* zone) {
  const auto nrows = static_cast<uint32_t>(col.size());
  switch (col.type()) {
    case TypeKind::kInt32: {
      out->PutBytes(col.i32().data(), col.i32().size() * sizeof(int32_t));
      if (nrows > 0) {
        const auto [mn, mx] =
            std::minmax_element(col.i32().begin(), col.i32().end());
        zone->kind = kZoneInt;
        zone->min_i64 = *mn;
        zone->max_i64 = *mx;
      }
      break;
    }
    case TypeKind::kInt64: {
      out->PutBytes(col.i64().data(), col.i64().size() * sizeof(int64_t));
      if (nrows > 0) {
        const auto [mn, mx] =
            std::minmax_element(col.i64().begin(), col.i64().end());
        zone->kind = kZoneInt;
        zone->min_i64 = *mn;
        zone->max_i64 = *mx;
      }
      break;
    }
    case TypeKind::kDouble: {
      out->PutBytes(col.f64().data(), col.f64().size() * sizeof(double));
      // NaNs poison ordered comparisons, so a block containing one gets no
      // zone map rather than an unsound one.
      bool has_nan = false;
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      for (double v : col.f64()) {
        if (std::isnan(v)) {
          has_nan = true;
          break;
        }
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      if (nrows > 0 && !has_nan) {
        zone->kind = kZoneDouble;
        zone->min_f64 = mn;
        zone->max_f64 = mx;
      }
      break;
    }
    case TypeKind::kString: {
      // Try dictionary encoding: pays off whenever <=256 distinct values.
      std::unordered_map<std::string_view, uint8_t> dict;
      std::vector<std::string_view> order;
      bool dictionary_ok = true;
      for (uint32_t i = 0; i < nrows; ++i) {
        const std::string_view s = col.StringViewAt(i);
        auto it = dict.find(s);
        if (it != dict.end()) continue;
        if (dict.size() == 256 || s.size() > 255) {
          dictionary_ok = false;
          break;
        }
        dict.emplace(s, static_cast<uint8_t>(dict.size()));
        order.push_back(s);
      }
      if (dictionary_ok && nrows > 0) {
        out->PutU8(kStringDictionary);
        out->PutU16(static_cast<uint16_t>(order.size()));
        for (std::string_view s : order) {
          out->PutU8(static_cast<uint8_t>(s.size()));
          out->PutBytes(s.data(), s.size());
        }
        for (uint32_t i = 0; i < nrows; ++i) {
          out->PutU8(dict.find(col.StringViewAt(i))->second);
        }
        zone->kind = kZoneDict;
        for (std::string_view s : order) {
          zone->fingerprint |= DictFingerprintBit(s);
        }
        break;
      }
      out->PutU8(kStringPlain);
      uint32_t offset = 0;
      for (uint32_t i = 0; i < nrows; ++i) {
        offset += static_cast<uint32_t>(col.StringViewAt(i).size());
        out->PutU32(offset);
      }
      for (uint32_t i = 0; i < nrows; ++i) {
        const std::string_view s = col.StringViewAt(i);
        out->PutBytes(s.data(), s.size());
      }
      break;
    }
  }
}

/// Serializes one column's values for a v3 block: integers go through the
/// codec's stats-driven encoding choice, strings additionally consider
/// RLE-of-codes on top of the dictionary, doubles stay plain. Returns the
/// encoding tag for the footer and fills the zone map from the same pass.
uint8_t EncodeColumnPayloadV3(const ColumnVector& col, ByteWriter* out,
                              ZoneMap* zone) {
  const auto nrows = static_cast<uint32_t>(col.size());
  switch (col.type()) {
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      IntBlockStats stats;
      const uint8_t tag = EncodeIntPayload(col, out, &stats);
      if (nrows > 0) {
        zone->kind = kZoneInt;
        zone->min_i64 = stats.min;
        zone->max_i64 = stats.max;
      }
      return tag;
    }
    case TypeKind::kDouble:
      EncodeColumnPayload(col, out, zone);
      return kEncPlain;
    case TypeKind::kString:
      break;
  }
  // Strings: try the dictionary exactly as v2 does, then let RLE-of-codes
  // compete with one-code-per-row on estimated size.
  std::unordered_map<std::string_view, uint8_t> dict;
  std::vector<std::string_view> order;
  bool dictionary_ok = nrows > 0;
  size_t dict_section = 2;  // u16 dict size + entries
  for (uint32_t i = 0; i < nrows && dictionary_ok; ++i) {
    const std::string_view s = col.StringViewAt(i);
    auto it = dict.find(s);
    if (it != dict.end()) continue;
    if (dict.size() == 256 || s.size() > 255) {
      dictionary_ok = false;
      break;
    }
    dict.emplace(s, static_cast<uint8_t>(dict.size()));
    order.push_back(s);
    dict_section += 1 + s.size();
  }
  if (!dictionary_ok) {
    // Plain payload, identical to v2 (including the sub-format byte, so the
    // v2 string parser reads it unchanged).
    out->PutU8(kStringPlain);
    uint32_t offset = 0;
    for (uint32_t i = 0; i < nrows; ++i) {
      offset += static_cast<uint32_t>(col.StringViewAt(i).size());
      out->PutU32(offset);
    }
    for (uint32_t i = 0; i < nrows; ++i) {
      const std::string_view s = col.StringViewAt(i);
      out->PutBytes(s.data(), s.size());
    }
    return kEncPlain;
  }
  zone->kind = kZoneDict;
  for (std::string_view s : order) zone->fingerprint |= DictFingerprintBit(s);
  std::vector<uint8_t> codes(nrows);
  uint32_t nruns = 0;
  for (uint32_t i = 0; i < nrows; ++i) {
    codes[i] = dict.find(col.StringViewAt(i))->second;
    nruns += static_cast<uint32_t>(i == 0 || codes[i] != codes[i - 1]);
  }
  const size_t dict_bytes = 1 + dict_section + nrows;
  const size_t dict_rle_bytes = dict_section + 4 + nruns * 5;
  if (dict_rle_bytes >= dict_bytes) {
    out->PutU8(kStringDictionary);
    out->PutU16(static_cast<uint16_t>(order.size()));
    for (std::string_view s : order) {
      out->PutU8(static_cast<uint8_t>(s.size()));
      out->PutBytes(s.data(), s.size());
    }
    out->PutBytes(codes.data(), codes.size());
    return kEncDict;
  }
  out->PutU16(static_cast<uint16_t>(order.size()));
  for (std::string_view s : order) {
    out->PutU8(static_cast<uint8_t>(s.size()));
    out->PutBytes(s.data(), s.size());
  }
  out->PutU32(nruns);
  for (uint32_t i = 0; i < nrows;) {
    uint32_t j = i + 1;
    while (j < nrows && codes[j] == codes[i]) ++j;
    out->PutU8(codes[i]);
    i = j;
  }
  for (uint32_t i = 0; i < nrows;) {
    uint32_t j = i + 1;
    while (j < nrows && codes[j] == codes[i]) ++j;
    out->PutU32(j - i);
    i = j;
  }
  return kEncDictRle;
}

/// Serializes one column's buffered values for a split, framed per the
/// table's on-disk version.
void EncodeColumnBlock(const ColumnVector& col, int cif_version,
                       ByteWriter* out) {
  const auto nrows = static_cast<uint32_t>(col.size());
  ZoneMap zone;
  if (cif_version < 2) {
    out->PutU32(nrows);
    EncodeColumnPayload(col, out, &zone);
    return;
  }
  uint8_t encoding = kEncPlain;
  if (cif_version >= 3) {
    out->PutU32(kCifV3Magic);
    out->PutU32(nrows);
    encoding = EncodeColumnPayloadV3(col, out, &zone);
  } else {
    out->PutU32(kCifV2Magic);
    out->PutU32(nrows);
    EncodeColumnPayload(col, out, &zone);
  }
  const size_t zone_begin = out->size();
  if (cif_version >= 3) out->PutU8(encoding);
  out->PutU8(zone.kind);
  switch (zone.kind) {
    case kZoneInt:
      out->PutI64(zone.min_i64);
      out->PutI64(zone.max_i64);
      break;
    case kZoneDouble:
      out->PutF64(zone.min_f64);
      out->PutF64(zone.max_f64);
      break;
    case kZoneDict:
      out->PutU64(zone.fingerprint);
      break;
    default:
      break;
  }
  out->PutU32(static_cast<uint32_t>(out->size() - zone_begin));
  out->PutU32(kCifV2FooterMagic);
}

/// A v2/v3 block's parts, borrowed from the raw block bytes.
struct BlockView {
  uint32_t nrows = 0;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
  /// v3 footer encoding tag; v2 blocks report kEncPlain here and string
  /// payloads carry their own sub-format byte instead.
  uint8_t encoding = kEncPlain;
  ZoneMap zone;
};

/// Parses the shared v2/v3 framing; `version` selects the expected magic
/// (so a v2 table desc reading v3 bytes — or vice versa — fails cleanly)
/// and whether the footer leads with an encoding tag.
Status ParseFramedBlock(const std::vector<uint8_t>& data, int version,
                        BlockView* out) {
  const bool v3 = version >= 3;
  // Minimum block: header (8) + footer (zone kind, plus the v3 encoding
  // tag, plus zone_len + magic).
  if (data.size() < (v3 ? 18u : 17u)) {
    return Status::IoError("truncated CIF column block");
  }
  uint32_t magic = 0;
  std::memcpy(&magic, data.data(), sizeof(magic));
  if (magic != (v3 ? kCifV3Magic : kCifV2Magic)) {
    return Status::IoError("CIF block magic mismatch (wrong format version)");
  }
  std::memcpy(&out->nrows, data.data() + 4, sizeof(uint32_t));
  uint32_t footer_magic = 0;
  uint32_t zone_len = 0;
  std::memcpy(&footer_magic, data.data() + data.size() - 4, sizeof(uint32_t));
  std::memcpy(&zone_len, data.data() + data.size() - 8, sizeof(uint32_t));
  if (footer_magic != kCifV2FooterMagic) {
    return Status::IoError("bad CIF footer magic");
  }
  if (zone_len < (v3 ? 2u : 1u) || zone_len > data.size() - 16) {
    return Status::IoError("truncated CIF zone-map footer");
  }
  const size_t zone_begin = data.size() - 8 - zone_len;
  out->payload = data.data() + 8;
  out->payload_len = zone_begin - 8;
  ByteReader zone(data.data() + zone_begin, zone_len);
  if (v3) {
    CLY_RETURN_IF_ERROR(zone.GetU8(&out->encoding));
    if (out->encoding >= kEncCount) {
      return Status::IoError("unknown CIF v3 block encoding tag");
    }
  }
  uint8_t kind = 0;
  CLY_RETURN_IF_ERROR(zone.GetU8(&kind));
  out->zone.kind = kind;
  switch (kind) {
    case kZoneNone:
      break;
    case kZoneInt:
      CLY_RETURN_IF_ERROR(zone.GetI64(&out->zone.min_i64));
      CLY_RETURN_IF_ERROR(zone.GetI64(&out->zone.max_i64));
      break;
    case kZoneDouble:
      CLY_RETURN_IF_ERROR(zone.GetF64(&out->zone.min_f64));
      CLY_RETURN_IF_ERROR(zone.GetF64(&out->zone.max_f64));
      break;
    case kZoneDict:
      CLY_RETURN_IF_ERROR(zone.GetU64(&out->zone.fingerprint));
      break;
    default:
      return Status::IoError("unknown CIF zone-map kind");
  }
  if (!zone.AtEnd()) {
    return Status::IoError("trailing bytes in CIF zone-map footer");
  }
  return Status::OK();
}

/// Eagerly decodes a column payload (the shared v1/v2 value bytes) into an
/// owned column.
Status DecodeColumnPayload(const uint8_t* payload, size_t len, uint32_t nrows,
                           TypeKind type, ColumnVector* out) {
  ByteReader reader(payload, len);
  out->Clear();
  out->Reserve(nrows);
  switch (type) {
    case TypeKind::kInt32: {
      auto* v = out->mutable_i32();
      if (reader.remaining() < nrows * sizeof(int32_t)) {
        return Status::IoError("truncated int32 column block");
      }
      v->resize(nrows);
      std::memcpy(v->data(), payload, nrows * sizeof(int32_t));
      break;
    }
    case TypeKind::kInt64: {
      auto* v = out->mutable_i64();
      if (reader.remaining() < nrows * sizeof(int64_t)) {
        return Status::IoError("truncated int64 column block");
      }
      v->resize(nrows);
      std::memcpy(v->data(), payload, nrows * sizeof(int64_t));
      break;
    }
    case TypeKind::kDouble: {
      auto* v = out->mutable_f64();
      if (reader.remaining() < nrows * sizeof(double)) {
        return Status::IoError("truncated double column block");
      }
      v->resize(nrows);
      std::memcpy(v->data(), payload, nrows * sizeof(double));
      break;
    }
    case TypeKind::kString: {
      if (nrows == 0) break;
      uint8_t encoding = 0;
      CLY_RETURN_IF_ERROR(reader.GetU8(&encoding));
      auto* v = out->mutable_str();
      v->reserve(nrows);
      if (encoding == kStringDictionary) {
        uint16_t dict_size = 0;
        CLY_RETURN_IF_ERROR(reader.GetU16(&dict_size));
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint16_t d = 0; d < dict_size; ++d) {
          uint8_t len8 = 0;
          CLY_RETURN_IF_ERROR(reader.GetU8(&len8));
          if (reader.remaining() < len8) {
            return Status::IoError("truncated dictionary entry");
          }
          dict.emplace_back(
              reinterpret_cast<const char*>(payload) + reader.position(),
              len8);
          CLY_RETURN_IF_ERROR(reader.Skip(len8));
        }
        if (reader.remaining() < nrows) {
          return Status::IoError("truncated dictionary codes");
        }
        for (uint32_t i = 0; i < nrows; ++i) {
          const uint8_t code = payload[reader.position() + i];
          if (code >= dict.size()) {
            return Status::IoError("dictionary code out of range");
          }
          v->push_back(dict[code]);
        }
        CLY_RETURN_IF_ERROR(reader.Skip(nrows));
        break;
      }
      if (encoding != kStringPlain) {
        return Status::IoError("unknown string column encoding");
      }
      if (reader.remaining() < nrows * sizeof(uint32_t)) {
        return Status::IoError("truncated string offsets");
      }
      std::vector<uint32_t> offsets(nrows);
      std::memcpy(offsets.data(), payload + reader.position(),
                  nrows * sizeof(uint32_t));
      CLY_RETURN_IF_ERROR(reader.Skip(nrows * sizeof(uint32_t)));
      const size_t base = reader.position();
      const uint32_t total = offsets.back();
      if (reader.remaining() < total) {
        return Status::IoError("truncated string bytes");
      }
      uint32_t prev = 0;
      for (uint32_t i = 0; i < nrows; ++i) {
        if (offsets[i] < prev || offsets[i] > total) {
          return Status::IoError("corrupt string offsets in column block");
        }
        v->emplace_back(
            reinterpret_cast<const char*>(payload) + base + prev,
            offsets[i] - prev);
        prev = offsets[i];
      }
      break;
    }
  }
  return Status::OK();
}

/// Parses a v3 dict-RLE string payload in place: dictionary entries as
/// views over the payload, then the run arrays. Validates codes and run
/// totals so every later access is in range.
Status ParseDictRlePayload(const uint8_t* payload, size_t len, uint32_t nrows,
                           std::vector<std::string_view>* dict,
                           const uint8_t** run_codes,
                           const uint32_t** run_lengths, uint32_t* nruns) {
  ByteReader reader(payload, len);
  uint16_t dict_size = 0;
  CLY_RETURN_IF_ERROR(reader.GetU16(&dict_size));
  dict->reserve(dict_size);
  for (uint16_t d = 0; d < dict_size; ++d) {
    uint8_t len8 = 0;
    CLY_RETURN_IF_ERROR(reader.GetU8(&len8));
    if (reader.remaining() < len8) {
      return Status::IoError("truncated dictionary entry");
    }
    dict->emplace_back(
        reinterpret_cast<const char*>(payload) + reader.position(), len8);
    CLY_RETURN_IF_ERROR(reader.Skip(len8));
  }
  CLY_RETURN_IF_ERROR(reader.GetU32(nruns));
  if (*nruns > nrows) {
    return Status::IoError("dict-RLE run count exceeds block row count");
  }
  if (reader.remaining() < static_cast<size_t>(*nruns) * 5) {
    return Status::IoError("truncated dict-RLE runs");
  }
  *run_codes = payload + reader.position();
  CLY_RETURN_IF_ERROR(reader.Skip(*nruns));
  *run_lengths =
      reinterpret_cast<const uint32_t*>(payload + reader.position());
  uint64_t total = 0;
  for (uint32_t r = 0; r < *nruns; ++r) {
    if ((*run_codes)[r] >= dict->size()) {
      return Status::IoError("dictionary code out of range");
    }
    if ((*run_lengths)[r] == 0) return Status::IoError("empty dict-RLE run");
    total += (*run_lengths)[r];
  }
  if (total != nrows) {
    return Status::IoError("dict-RLE run lengths disagree with row count");
  }
  return Status::OK();
}

/// v3 string payloads reuse the v2 layout for plain/dict (sub-format byte
/// included); the footer tag must agree with that byte or the block is
/// corrupt.
Status CheckStringSubFormat(const uint8_t* payload, size_t len, uint32_t nrows,
                            uint8_t encoding) {
  if (nrows == 0) return Status::OK();
  if (len < 1) return Status::IoError("truncated string column block");
  const uint8_t expected =
      encoding == kEncDict ? kStringDictionary : kStringPlain;
  if (payload[0] != expected) {
    return Status::IoError("string sub-format disagrees with encoding tag");
  }
  return Status::OK();
}

/// Eagerly decodes one v3 payload per its footer encoding tag.
Status DecodeColumnPayloadV3(const uint8_t* payload, size_t len,
                             uint32_t nrows, TypeKind type, uint8_t encoding,
                             ColumnVector* out) {
  switch (type) {
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      IntBlockView view;
      CLY_RETURN_IF_ERROR(
          ParseIntPayload(payload, len, nrows, type, encoding, &view));
      out->Clear();
      DecodeIntView(view, type, out);
      return Status::OK();
    }
    case TypeKind::kDouble:
      if (encoding != kEncPlain) {
        return Status::IoError("double column block with non-plain encoding");
      }
      return DecodeColumnPayload(payload, len, nrows, type, out);
    case TypeKind::kString:
      break;
  }
  if (encoding == kEncPlain || encoding == kEncDict) {
    CLY_RETURN_IF_ERROR(CheckStringSubFormat(payload, len, nrows, encoding));
    return DecodeColumnPayload(payload, len, nrows, type, out);
  }
  if (encoding != kEncDictRle) {
    return Status::IoError("unknown CIF v3 string column encoding");
  }
  out->Clear();
  if (nrows == 0) return Status::OK();
  std::vector<std::string_view> dict;
  const uint8_t* run_codes = nullptr;
  const uint32_t* run_lengths = nullptr;
  uint32_t nruns = 0;
  CLY_RETURN_IF_ERROR(ParseDictRlePayload(payload, len, nrows, &dict,
                                          &run_codes, &run_lengths, &nruns));
  auto* v = out->mutable_str();
  v->reserve(nrows);
  for (uint32_t r = 0; r < nruns; ++r) {
    const std::string_view s = dict[run_codes[r]];
    for (uint32_t k = 0; k < run_lengths[r]; ++k) v->emplace_back(s);
  }
  return Status::OK();
}

/// Eagerly decodes a whole column block per the table's on-disk version.
Status DecodeColumnBlock(const std::vector<uint8_t>& data, TypeKind type,
                         int cif_version, ColumnVector* out) {
  if (cif_version < 2) {
    ByteReader reader(data);
    uint32_t nrows = 0;
    CLY_RETURN_IF_ERROR(reader.GetU32(&nrows));
    return DecodeColumnPayload(data.data() + sizeof(uint32_t),
                               data.size() - sizeof(uint32_t), nrows, type,
                               out);
  }
  BlockView view;
  CLY_RETURN_IF_ERROR(ParseFramedBlock(data, cif_version, &view));
  if (cif_version >= 3) {
    return DecodeColumnPayloadV3(view.payload, view.payload_len, view.nrows,
                                 type, view.encoding, out);
  }
  return DecodeColumnPayload(view.payload, view.payload_len, view.nrows, type,
                             out);
}

// --- Predicate pushdown (CIF v2 late materialization) ------------------------
// The scan only understands single-column leaf comparisons from the query's
// top-level conjunction. Everything it prunes would also be pruned by the
// engine's own predicate, and anything it does not understand it leaves in
// place, so acting on a ScanSpec is always sound — provided each test is
// *exact*: a pushed leaf must never drop a row the full predicate would
// accept. That is why operand extraction below rejects literals whose kind
// cannot be compared exactly against the column's type.

bool Int64Operand(const Value& v, int64_t* out) {
  if (v.kind() == TypeKind::kInt32) {
    *out = v.i32();
    return true;
  }
  if (v.kind() == TypeKind::kInt64) {
    *out = v.i64();
    return true;
  }
  return false;
}

// Exact double view of a literal. int64 literals beyond 2^53 would round,
// so only int32 and double literals qualify against double columns.
bool DoubleOperand(const Value& v, double* out) {
  if (v.kind() == TypeKind::kDouble) {
    *out = v.f64();
    return true;
  }
  if (v.kind() == TypeKind::kInt32) {
    *out = static_cast<double>(v.i32());
    return true;
  }
  return false;
}

const std::string* StringOperand(const Value& v) {
  return v.kind() == TypeKind::kString ? &v.str() : nullptr;
}

bool IsScanLeaf(const Predicate& p) {
  switch (p.kind()) {
    case Predicate::Kind::kEq:
    case Predicate::Kind::kNe:
    case Predicate::Kind::kLt:
    case Predicate::Kind::kLe:
    case Predicate::Kind::kGt:
    case Predicate::Kind::kGe:
    case Predicate::Kind::kBetween:
    case Predicate::Kind::kIn:
      return true;
    default:
      return false;
  }
}

/// Expresses an integer range leaf as inclusive [lo, hi] bounds (an empty
/// range is lo > hi). kNe/kIn are handled separately. Returns false when the
/// operand kinds are not exactly integer-comparable, in which case the
/// caller must not prune with this leaf.
bool IntLeafBounds(const Predicate& p, int64_t* lo, int64_t* hi) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  int64_t v = 0;
  switch (p.kind()) {
    case Predicate::Kind::kEq:
      if (!Int64Operand(p.lo(), &v)) return false;
      *lo = *hi = v;
      return true;
    case Predicate::Kind::kLt:
      if (!Int64Operand(p.lo(), &v)) return false;
      *lo = kMin;
      if (v == kMin) {
        *lo = 0;
        *hi = -1;  // empty
      } else {
        *hi = v - 1;
      }
      return true;
    case Predicate::Kind::kLe:
      if (!Int64Operand(p.lo(), &v)) return false;
      *lo = kMin;
      *hi = v;
      return true;
    case Predicate::Kind::kGt:
      if (!Int64Operand(p.lo(), &v)) return false;
      *hi = kMax;
      if (v == kMax) {
        *lo = 0;
        *hi = -1;  // empty
      } else {
        *lo = v + 1;
      }
      return true;
    case Predicate::Kind::kGe:
      if (!Int64Operand(p.lo(), &v)) return false;
      *lo = v;
      *hi = kMax;
      return true;
    case Predicate::Kind::kBetween: {
      int64_t a = 0, b = 0;
      if (!Int64Operand(p.lo(), &a) || !Int64Operand(p.hi(), &b)) return false;
      *lo = a;
      *hi = b;
      return true;
    }
    default:
      return false;
  }
}

/// True when the zone map proves no row of the block can satisfy the leaf.
bool ZoneRefutesLeaf(const ZoneMap& zone, TypeKind type, const Predicate& p) {
  switch (zone.kind) {
    case kZoneInt: {
      if (type != TypeKind::kInt32 && type != TypeKind::kInt64) return false;
      int64_t v = 0;
      switch (p.kind()) {
        case Predicate::Kind::kNe:
          // Only refutable when the block is constant at the probed value.
          return Int64Operand(p.lo(), &v) && zone.min_i64 == v &&
                 zone.max_i64 == v;
        case Predicate::Kind::kIn: {
          for (const Value& cand : p.in_values()) {
            if (!Int64Operand(cand, &v)) return false;
            if (v >= zone.min_i64 && v <= zone.max_i64) return false;
          }
          return true;
        }
        default: {
          int64_t lo = 0, hi = 0;
          if (!IntLeafBounds(p, &lo, &hi)) return false;
          return hi < zone.min_i64 || lo > zone.max_i64;
        }
      }
    }
    case kZoneDouble: {
      if (type != TypeKind::kDouble) return false;
      double a = 0, b = 0;
      switch (p.kind()) {
        case Predicate::Kind::kEq:
          return DoubleOperand(p.lo(), &a) &&
                 (a < zone.min_f64 || a > zone.max_f64);
        case Predicate::Kind::kLt:
          return DoubleOperand(p.lo(), &a) && zone.min_f64 >= a;
        case Predicate::Kind::kLe:
          return DoubleOperand(p.lo(), &a) && zone.min_f64 > a;
        case Predicate::Kind::kGt:
          return DoubleOperand(p.lo(), &a) && zone.max_f64 <= a;
        case Predicate::Kind::kGe:
          return DoubleOperand(p.lo(), &a) && zone.max_f64 < a;
        case Predicate::Kind::kBetween:
          return DoubleOperand(p.lo(), &a) && DoubleOperand(p.hi(), &b) &&
                 (zone.max_f64 < a || zone.min_f64 > b);
        case Predicate::Kind::kIn: {
          for (const Value& cand : p.in_values()) {
            if (!DoubleOperand(cand, &a)) return false;
            if (a >= zone.min_f64 && a <= zone.max_f64) return false;
          }
          return true;
        }
        default:
          return false;
      }
    }
    case kZoneDict: {
      if (type != TypeKind::kString) return false;
      if (p.kind() == Predicate::Kind::kEq) {
        const std::string* s = StringOperand(p.lo());
        return s != nullptr &&
               (zone.fingerprint & DictFingerprintBit(*s)) == 0;
      }
      if (p.kind() == Predicate::Kind::kIn) {
        for (const Value& cand : p.in_values()) {
          const std::string* s = StringOperand(cand);
          if (s == nullptr) return false;
          if ((zone.fingerprint & DictFingerprintBit(*s)) != 0) return false;
        }
        return !p.in_values().empty();
      }
      return false;
    }
    default:
      return false;
  }
}

/// Branchless selection update over a raw integer value array.
template <typename T>
void ApplyIntegerLeaf(const Predicate& p, const T* vals, uint32_t n,
                      uint8_t* sel) {
  int64_t v = 0;
  switch (p.kind()) {
    case Predicate::Kind::kNe:
      if (!Int64Operand(p.lo(), &v)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(static_cast<int64_t>(vals[i]) != v);
      }
      return;
    case Predicate::Kind::kIn: {
      std::vector<int64_t> set;
      set.reserve(p.in_values().size());
      for (const Value& cand : p.in_values()) {
        if (!Int64Operand(cand, &v)) return;
        set.push_back(v);
      }
      for (uint32_t i = 0; i < n; ++i) {
        const int64_t x = vals[i];
        uint8_t hit = 0;
        for (int64_t s : set) hit |= static_cast<uint8_t>(x == s);
        sel[i] &= hit;
      }
      return;
    }
    default: {
      int64_t lo = 0, hi = 0;
      if (!IntLeafBounds(p, &lo, &hi)) return;
      for (uint32_t i = 0; i < n; ++i) {
        const int64_t x = vals[i];
        sel[i] &= static_cast<uint8_t>((x >= lo) & (x <= hi));
      }
      return;
    }
  }
}

void ApplyDoubleLeaf(const Predicate& p, const double* vals, uint32_t n,
                     uint8_t* sel) {
  double a = 0, b = 0;
  switch (p.kind()) {
    case Predicate::Kind::kEq:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] == a);
      }
      return;
    case Predicate::Kind::kNe:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] != a);
      }
      return;
    case Predicate::Kind::kLt:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] < a);
      }
      return;
    case Predicate::Kind::kLe:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] <= a);
      }
      return;
    case Predicate::Kind::kGt:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] > a);
      }
      return;
    case Predicate::Kind::kGe:
      if (!DoubleOperand(p.lo(), &a)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>(vals[i] >= a);
      }
      return;
    case Predicate::Kind::kBetween:
      if (!DoubleOperand(p.lo(), &a) || !DoubleOperand(p.hi(), &b)) return;
      for (uint32_t i = 0; i < n; ++i) {
        sel[i] &= static_cast<uint8_t>((vals[i] >= a) & (vals[i] <= b));
      }
      return;
    case Predicate::Kind::kIn: {
      std::vector<double> set;
      set.reserve(p.in_values().size());
      for (const Value& cand : p.in_values()) {
        if (!DoubleOperand(cand, &a)) return;
        set.push_back(a);
      }
      for (uint32_t i = 0; i < n; ++i) {
        uint8_t hit = 0;
        for (double s : set) hit |= static_cast<uint8_t>(vals[i] == s);
        sel[i] &= hit;
      }
      return;
    }
    default:
      return;
  }
}

/// Scalar string leaf test; `true` keeps the row (conservative on operand
/// kind mismatch, so pruning stays sound).
bool TestStringLeaf(std::string_view s, const Predicate& p) {
  const std::string* a = StringOperand(p.lo());
  switch (p.kind()) {
    case Predicate::Kind::kEq:
      return a == nullptr || s == *a;
    case Predicate::Kind::kNe:
      return a == nullptr || s != *a;
    case Predicate::Kind::kLt:
      return a == nullptr || s < *a;
    case Predicate::Kind::kLe:
      return a == nullptr || s <= *a;
    case Predicate::Kind::kGt:
      return a == nullptr || s > *a;
    case Predicate::Kind::kGe:
      return a == nullptr || s >= *a;
    case Predicate::Kind::kBetween: {
      const std::string* b = StringOperand(p.hi());
      if (a == nullptr || b == nullptr) return true;
      return s >= *a && s <= *b;
    }
    case Predicate::Kind::kIn: {
      for (const Value& cand : p.in_values()) {
        const std::string* t = StringOperand(cand);
        if (t == nullptr) return true;
        if (s == *t) return true;
      }
      return false;
    }
    default:
      return true;
  }
}

/// Scalar integer leaf test with the exact keep/drop semantics of
/// ApplyIntegerLeaf (operand-kind mismatch keeps the row), so code tables
/// built from it select the same rows the vector kernel would.
bool TestIntLeaf(int64_t x, const Predicate& p) {
  int64_t v = 0;
  switch (p.kind()) {
    case Predicate::Kind::kNe:
      return !Int64Operand(p.lo(), &v) || x != v;
    case Predicate::Kind::kIn: {
      for (const Value& cand : p.in_values()) {
        if (!Int64Operand(cand, &v)) return true;
        if (x == v) return true;
      }
      return false;
    }
    default: {
      int64_t lo = 0, hi = 0;
      if (!IntLeafBounds(p, &lo, &hi)) return true;
      return x >= lo && x <= hi;
    }
  }
}

/// Derives a zone map from a packed block's representable range: FoR bounds
/// values by [base, base + 2^width - 1], bit-packing by [0, 2^width - 1].
/// Conservative (the true max may be lower), so it only ever skips blocks a
/// real zone map over the same data would also skip.
bool PackedRangeZone(const IntBlockView& v, ZoneMap* zone) {
  if (v.encoding != kEncBitPack && v.encoding != kEncFor) return false;
  zone->kind = kZoneInt;
  zone->min_i64 = v.base;
  zone->max_i64 =
      v.base + static_cast<int64_t>((uint64_t{1} << v.width) - 1);
  return true;
}

// --- Late-materialization loader ---------------------------------------------

// LateColumn string representations (the int representations live in the
// codec's IntBlockView). Plain and dictionary are shared with v2; dict-RLE
// is v3-only.
constexpr uint8_t kStrRepPlain = 0;
constexpr uint8_t kStrRepDict = 1;
constexpr uint8_t kStrRepDictRle = 2;

/// One column of a v2/v3 split: raw block bytes plus borrowed typed views.
/// Fixed-width arrays are read in place (the payload starts 8-aligned);
/// strings and encoded integers stay compressed until gather time — the
/// selection phases below work per run / per packed code, so a filtered-out
/// row is never decoded at all.
struct LateColumn {
  bool loaded = false;
  const Field* field = nullptr;
  std::shared_ptr<const std::vector<uint8_t>> arena;
  BlockView view;
  /// Validated integer payload view; v2 int/double payloads parse as
  /// kEncPlain so every phase handles both versions uniformly.
  IntBlockView iview;
  std::vector<int32_t> run_starts;  // RLE row prefix: nruns + 1 entries
  /// Plain-encoding equivalent byte size (compression accounting).
  uint64_t raw_bytes = 0;
  // String sub-state.
  uint8_t str_rep = kStrRepPlain;
  std::vector<std::string_view> dict;  // dictionary entries, in code order
  const uint8_t* codes = nullptr;      // nrows codes (dictionary mode)
  const uint8_t* run_codes = nullptr;  // dict-RLE: one code per run
  const uint32_t* str_run_lengths = nullptr;
  uint32_t str_nruns = 0;
  std::vector<int32_t> str_run_starts;  // dict-RLE row prefix
  std::vector<uint32_t> offsets;        // end offsets (plain mode, realigned)
  const char* plain_base = nullptr;     // string bytes (plain mode)

  const int32_t* i32() const {
    return reinterpret_cast<const int32_t*>(iview.plain);
  }
  const int64_t* i64() const {
    return reinterpret_cast<const int64_t*>(iview.plain);
  }
  const double* f64() const {
    return reinterpret_cast<const double*>(view.payload);
  }
  std::string_view StringAt(uint32_t i) const {
    if (str_rep == kStrRepDict) return dict[codes[i]];
    const uint32_t begin = i == 0 ? 0 : offsets[i - 1];
    return std::string_view(plain_base + begin, offsets[i] - begin);
  }
  int64_t KeyAt(uint32_t i) const {
    return field->type == TypeKind::kInt32 ? i32()[i] : i64()[i];
  }
};

/// Builds the row-prefix array for a run list: starts[k] is the first row
/// of run k, with one trailing entry equal to nrows.
template <typename LenT>
void BuildRunStarts(const LenT* lengths, uint32_t nruns,
                    std::vector<int32_t>* starts) {
  starts->resize(nruns + 1);
  int32_t row = 0;
  for (uint32_t r = 0; r < nruns; ++r) {
    (*starts)[r] = row;
    row += static_cast<int32_t>(lengths[r]);
  }
  (*starts)[nruns] = row;
}

/// Selection update for an integer leaf over an encoded column, working in
/// the compressed domain wherever the encoding allows:
///   RLE       one leaf evaluation per run (all rows of a run share a value),
///             then a fill per refuted run — never per surviving row.
///   bit-pack/ small widths precompute a per-code verdict table and test
///   FoR       packed codes against it; the values never materialize. Wide
///             codes (> 12 bits, where the table stops paying) decode into a
///             reused scratch buffer and run the plain vector kernel.
void ApplyIntLeafEncoded(const Predicate& p, const LateColumn& c,
                         uint32_t nrows, uint8_t* sel,
                         std::vector<int64_t>* scratch) {
  const IntBlockView& v = c.iview;
  switch (v.encoding) {
    case kEncPlain:
      if (c.field->type == TypeKind::kInt32) {
        ApplyIntegerLeaf(p, c.i32(), nrows, sel);
      } else {
        ApplyIntegerLeaf(p, c.i64(), nrows, sel);
      }
      return;
    case kEncRle: {
      std::vector<uint8_t> run_sel(v.nruns, 1);
      ApplyIntegerLeaf(p, v.run_values, v.nruns, run_sel.data());
      for (uint32_t r = 0; r < v.nruns; ++r) {
        if (run_sel[r] == 0) {
          std::fill(sel + c.run_starts[r], sel + c.run_starts[r + 1],
                    uint8_t{0});
        }
      }
      return;
    }
    case kEncBitPack:
    case kEncFor: {
      if (v.width <= 12) {
        const uint32_t ncodes = 1u << v.width;
        std::vector<uint8_t> code_ok(ncodes);
        for (uint32_t code = 0; code < ncodes; ++code) {
          code_ok[code] = static_cast<uint8_t>(
              TestIntLeaf(v.base + static_cast<int64_t>(code), p));
        }
        for (uint32_t i = 0; i < nrows; ++i) {
          sel[i] &= code_ok[BitUnpackOne(v.words, i, v.width)];
        }
        return;
      }
      scratch->resize(nrows);
      BitUnpackAll(v.words, nrows, v.width,
                   reinterpret_cast<uint64_t*>(scratch->data()));
      if (v.base != 0) {
        for (uint32_t i = 0; i < nrows; ++i) (*scratch)[i] += v.base;
      }
      ApplyIntegerLeaf(p, scratch->data(), nrows, sel);
      return;
    }
    default:
      return;
  }
}

/// Gathers the selected rows of a non-plain integer column through `push`
/// (ascending sel_idx; values widened to int64). For RLE the run cursor
/// advances in tandem with the selection, and with `want_runs` it also
/// rebuilds run metadata over the gathered rows — one output run per touched
/// source run, which is valid (though not maximal) run coverage.
template <typename Push>
void GatherIntEncoded(const LateColumn& c, const std::vector<int32_t>& sel_idx,
                      bool want_runs, std::vector<int64_t>* run_values,
                      std::vector<int32_t>* run_starts, Push push) {
  const IntBlockView& v = c.iview;
  if (v.encoding == kEncRle) {
    uint32_t r = 0;
    int64_t last_run = -1;
    int32_t out_row = 0;
    for (int32_t idx : sel_idx) {
      while (c.run_starts[r + 1] <= idx) ++r;
      if (want_runs && static_cast<int64_t>(r) != last_run) {
        last_run = static_cast<int64_t>(r);
        run_values->push_back(v.run_values[r]);
        run_starts->push_back(out_row);
      }
      push(v.run_values[r]);
      ++out_row;
    }
    if (want_runs) run_starts->push_back(out_row);
    return;
  }
  for (int32_t idx : sel_idx) push(v.PackedAt(static_cast<uint64_t>(idx)));
}

/// Validates the payload framing for in-place access and, for strings,
/// parses the dictionary/offset/run structure (validating every code up
/// front so later gathers cannot index out of range). `version` selects
/// whether the footer encoding tag governs the payload (v3) or the legacy
/// v2 layouts apply.
Status ParseLatePayload(int version, LateColumn* c) {
  const uint8_t* payload = c->view.payload;
  const uint32_t nrows = c->view.nrows;
  const uint8_t block_enc = version >= 3 ? c->view.encoding : kEncPlain;
  ByteReader reader(payload, c->view.payload_len);
  switch (c->field->type) {
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      CLY_RETURN_IF_ERROR(ParseIntPayload(payload, c->view.payload_len, nrows,
                                          c->field->type, block_enc,
                                          &c->iview));
      c->raw_bytes =
          nrows * (c->field->type == TypeKind::kInt32 ? 4ull : 8ull);
      if (c->iview.encoding == kEncRle) {
        BuildRunStarts(c->iview.run_lengths, c->iview.nruns, &c->run_starts);
      }
      return Status::OK();
    }
    case TypeKind::kDouble:
      if (block_enc != kEncPlain) {
        return Status::IoError("double column block with non-plain encoding");
      }
      if (reader.remaining() < nrows * sizeof(double)) {
        return Status::IoError("truncated double column block");
      }
      c->raw_bytes = nrows * 8ull;
      return Status::OK();
    case TypeKind::kString:
      break;
  }
  if (nrows == 0) return Status::OK();
  if (block_enc == kEncDictRle) {
    c->str_rep = kStrRepDictRle;
    CLY_RETURN_IF_ERROR(ParseDictRlePayload(payload, c->view.payload_len,
                                            nrows, &c->dict, &c->run_codes,
                                            &c->str_run_lengths,
                                            &c->str_nruns));
    BuildRunStarts(c->str_run_lengths, c->str_nruns, &c->str_run_starts);
    c->raw_bytes = 1 + 4ull * nrows;
    for (uint32_t r = 0; r < c->str_nruns; ++r) {
      c->raw_bytes += static_cast<uint64_t>(c->str_run_lengths[r]) *
                      c->dict[c->run_codes[r]].size();
    }
    return Status::OK();
  }
  if (version >= 3) {
    CLY_RETURN_IF_ERROR(CheckStringSubFormat(payload, c->view.payload_len,
                                             nrows, block_enc));
  }
  uint8_t encoding = 0;
  CLY_RETURN_IF_ERROR(reader.GetU8(&encoding));
  if (encoding == kStringDictionary) {
    c->str_rep = kStrRepDict;
    uint16_t dict_size = 0;
    CLY_RETURN_IF_ERROR(reader.GetU16(&dict_size));
    c->dict.reserve(dict_size);
    for (uint16_t d = 0; d < dict_size; ++d) {
      uint8_t len8 = 0;
      CLY_RETURN_IF_ERROR(reader.GetU8(&len8));
      if (reader.remaining() < len8) {
        return Status::IoError("truncated dictionary entry");
      }
      c->dict.emplace_back(
          reinterpret_cast<const char*>(payload) + reader.position(), len8);
      CLY_RETURN_IF_ERROR(reader.Skip(len8));
    }
    if (reader.remaining() < nrows) {
      return Status::IoError("truncated dictionary codes");
    }
    c->codes = payload + reader.position();
    const size_t dsize = c->dict.size();
    c->raw_bytes = 1 + 4ull * nrows;
    for (uint32_t i = 0; i < nrows; ++i) {
      if (c->codes[i] >= dsize) {
        return Status::IoError("dictionary code out of range");
      }
      c->raw_bytes += c->dict[c->codes[i]].size();
    }
    return Status::OK();
  }
  if (encoding != kStringPlain) {
    return Status::IoError("unknown string column encoding");
  }
  c->str_rep = kStrRepPlain;
  c->raw_bytes = c->view.payload_len;
  if (reader.remaining() < nrows * sizeof(uint32_t)) {
    return Status::IoError("truncated string offsets");
  }
  c->offsets.resize(nrows);
  std::memcpy(c->offsets.data(), payload + reader.position(),
              nrows * sizeof(uint32_t));
  CLY_RETURN_IF_ERROR(reader.Skip(nrows * sizeof(uint32_t)));
  c->plain_base = reinterpret_cast<const char*>(payload) + reader.position();
  const uint32_t total = c->offsets.back();
  if (reader.remaining() < total) {
    return Status::IoError("truncated string bytes");
  }
  uint32_t prev = 0;
  for (uint32_t i = 0; i < nrows; ++i) {
    if (c->offsets[i] < prev || c->offsets[i] > total) {
      return Status::IoError("corrupt string offsets in column block");
    }
    prev = c->offsets[i];
  }
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<uint8_t>>> ReadColumnBlockBytes(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const std::string& column, const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsReader> reader,
                       dfs.Open(ColumnFilePath(desc, column, split.segment),
                                options.reader_node, options.stats));
  uint64_t begin = 0, end = 0;
  internal::BlockByteRange(reader->file_info(), split.block_in_segment, &begin,
                           &end);
  auto data = std::make_shared<std::vector<uint8_t>>(end - begin);
  if (!data->empty()) {
    CLY_RETURN_IF_ERROR(reader->PRead(begin, data->data(), data->size()));
  }
  return std::shared_ptr<const std::vector<uint8_t>>(std::move(data));
}

/// The CIF v2 scan: decodes the filter columns first, derives a selection
/// vector on encoded/raw data, and only then materializes the projection for
/// the surviving rows — strings as arena-backed views, never per-row copies.
Result<RowBatch> LoadCifSplitLate(const hdfs::MiniDfs& dfs,
                                  const TableDesc& desc,
                                  const StorageSplit& split,
                                  const std::vector<int>& projection,
                                  const SchemaPtr& out_schema,
                                  const ScanOptions& options) {
  const ScanSpec* spec = options.scan_spec.get();
  ScanStats local_stats;
  ScanStats* stats =
      options.scan_stats != nullptr ? options.scan_stats : &local_stats;

  // Resolve the spec against the table schema. Unknown columns and
  // non-leaf shapes are simply not pushed (the engine re-checks).
  struct BoundLeaf {
    const Predicate* pred;
    int field;
  };
  std::vector<BoundLeaf> leaves;
  struct BoundKeyFilter {
    const ScanKeyFilter* filter;
    int field;
  };
  std::vector<BoundKeyFilter> key_filters;
  if (spec != nullptr) {
    for (const Predicate::Ptr& p : spec->conjuncts) {
      if (p == nullptr || !IsScanLeaf(*p)) continue;
      const int idx = desc.schema->IndexOf(p->column_name());
      if (idx >= 0) leaves.push_back({p.get(), idx});
    }
    for (const ScanSpec::KeyFilterEntry& kf : spec->key_filters) {
      if (kf.filter == nullptr) continue;
      const int idx = desc.schema->IndexOf(kf.column);
      if (idx < 0) continue;
      const TypeKind t = desc.schema->field(idx).type;
      if (t == TypeKind::kInt32 || t == TypeKind::kInt64) {
        key_filters.push_back({kf.filter.get(), idx});
      }
    }
  }

  // The fixed column load order: filter columns first (phases 1-2, in field
  // order), then the remaining projected columns (phase 3). The prefetch
  // worker walks the same order, so Take() indexes line up with load calls.
  std::vector<int> filter_fields;
  for (const BoundLeaf& l : leaves) filter_fields.push_back(l.field);
  for (const BoundKeyFilter& kf : key_filters) {
    filter_fields.push_back(kf.field);
  }
  std::sort(filter_fields.begin(), filter_fields.end());
  filter_fields.erase(
      std::unique(filter_fields.begin(), filter_fields.end()),
      filter_fields.end());
  std::vector<int> fetch_order = filter_fields;
  for (int f : projection) {
    if (std::find(fetch_order.begin(), fetch_order.end(), f) ==
        fetch_order.end()) {
      fetch_order.push_back(f);
    }
  }

  std::vector<LateColumn> cols(static_cast<size_t>(desc.schema->num_fields()));
  std::vector<size_t> fetch_pos(cols.size(), 0);
  std::unique_ptr<BlockPrefetcher> prefetcher;
  if (options.prefetch && !fetch_order.empty()) {
    std::vector<std::string> paths;
    paths.reserve(fetch_order.size());
    for (size_t i = 0; i < fetch_order.size(); ++i) {
      const int f = fetch_order[i];
      fetch_pos[static_cast<size_t>(f)] = i;
      paths.push_back(
          ColumnFilePath(desc, desc.schema->field(f).name, split.segment));
    }
    prefetcher = std::make_unique<BlockPrefetcher>(
        &dfs, options.reader_node, std::move(paths), split.block_in_segment);
  }
  // The worker thread tracked its I/O privately; fold it into the caller's
  // accounting only after the join inside Finish(). Hit/miss/wait stats are
  // scan-thread-owned and safe to read once no more Take() calls follow.
  auto finish_prefetch = [&]() {
    if (prefetcher == nullptr) return;
    const hdfs::IoStats& worker_io = prefetcher->Finish();
    if (options.stats != nullptr) options.stats->Add(worker_io);
    const PrefetchStats& ps = prefetcher->prefetch_stats();
    stats->prefetch_hits += ps.hits;
    stats->prefetch_misses += ps.misses;
    stats->prefetch_wait_ns += ps.wait_ns;
  };

  uint32_t nrows = 0;
  bool nrows_known = false;
  auto load_column = [&](int field_index) -> Status {
    LateColumn& c = cols[static_cast<size_t>(field_index)];
    if (c.loaded) return Status::OK();
    c.field = &desc.schema->field(field_index);
    if (prefetcher != nullptr) {
      CLY_ASSIGN_OR_RETURN(
          c.arena,
          prefetcher->Take(fetch_pos[static_cast<size_t>(field_index)]));
    } else {
      CLY_ASSIGN_OR_RETURN(c.arena, ReadColumnBlockBytes(dfs, desc, split,
                                                         c.field->name,
                                                         options));
    }
    if (c.arena != nullptr) {
      stats->arena_bytes += c.arena->size();
      // Charge the arena to the scan's tracker for exactly as long as any
      // reference lives — string columns hand it to the output batch, which
      // outlives this reader (the bytes EXPLAIN ANALYZE must still account).
      c.arena = TrackSharedArena(std::move(c.arena), options.mem_reporter);
    }
    CLY_RETURN_IF_ERROR(ParseFramedBlock(*c.arena, desc.cif_version, &c.view));
    if (nrows_known && c.view.nrows != nrows) {
      return Status::IoError(
          StrCat("CIF split columns disagree on row count: ", c.view.nrows,
                 " vs ", nrows));
    }
    nrows = c.view.nrows;
    nrows_known = true;
    CLY_RETURN_IF_ERROR(ParseLatePayload(desc.cif_version, &c));
    c.loaded = true;
    stats->bytes_encoded += c.view.payload_len;
    stats->bytes_raw += c.raw_bytes;
    // v2 blocks carry no footer tag; classify dictionary strings by their
    // parsed representation so compression accounting works there too.
    uint8_t tag = c.view.encoding;
    if (desc.cif_version < 3 && c.str_rep == kStrRepDict) tag = kEncDict;
    stats->blocks_by_encoding[tag] += 1;
    return Status::OK();
  };

  // Phase 1: load only the filter columns and consult their zone maps. A
  // packed block's representable range [base, base + 2^width) acts as a
  // second, implicit zone map and composes with the explicit one.
  for (int f : filter_fields) CLY_RETURN_IF_ERROR(load_column(f));

  bool skip_block = false;
  for (const BoundLeaf& l : leaves) {
    const LateColumn& c = cols[static_cast<size_t>(l.field)];
    ZoneMap packed;
    if (ZoneRefutesLeaf(c.view.zone, c.field->type, *l.pred) ||
        (PackedRangeZone(c.iview, &packed) &&
         ZoneRefutesLeaf(packed, c.field->type, *l.pred))) {
      skip_block = true;
      break;
    }
  }
  if (!skip_block) {
    for (const BoundKeyFilter& kf : key_filters) {
      const LateColumn& c = cols[static_cast<size_t>(kf.field)];
      const ZoneMap& zone = c.view.zone;
      ZoneMap packed;
      if ((zone.kind == kZoneInt &&
           !kf.filter->RangeMightMatch(zone.min_i64, zone.max_i64)) ||
          (PackedRangeZone(c.iview, &packed) &&
           !kf.filter->RangeMightMatch(packed.min_i64, packed.max_i64))) {
        skip_block = true;
        break;
      }
    }
  }
  RowBatch batch(out_schema);
  if (skip_block) {
    stats->blocks_skipped += 1;
    stats->rows_pruned += nrows;
    finish_prefetch();
    CLY_RETURN_IF_ERROR(batch.SealRowCount());
    return batch;
  }

  // Phase 2: per-row selection over the filter columns alone, evaluated in
  // the compressed domain where the encoding allows it: numeric leaves run
  // per run / per packed code (ApplyIntLeafEncoded); dictionary and dict-RLE
  // leaves collapse to a code test; key filters probe only rows that
  // survived the cheaper predicate passes — and RLE key columns pay one
  // membership probe per touched run, not per row.
  const bool any_filter = !leaves.empty() || !key_filters.empty();
  std::vector<uint8_t> sel;
  std::vector<int32_t> sel_idx;
  std::vector<int64_t> scratch;
  if (any_filter) {
    sel.assign(nrows, 1);
    for (const BoundLeaf& l : leaves) {
      const LateColumn& c = cols[static_cast<size_t>(l.field)];
      switch (c.field->type) {
        case TypeKind::kInt32:
        case TypeKind::kInt64:
          ApplyIntLeafEncoded(*l.pred, c, nrows, sel.data(), &scratch);
          break;
        case TypeKind::kDouble:
          ApplyDoubleLeaf(*l.pred, c.f64(), nrows, sel.data());
          break;
        case TypeKind::kString:
          if (nrows == 0) break;
          if (c.str_rep == kStrRepDictRle) {
            uint8_t code_ok[256];
            const size_t dsize = c.dict.size();
            for (size_t d = 0; d < dsize; ++d) {
              code_ok[d] =
                  static_cast<uint8_t>(TestStringLeaf(c.dict[d], *l.pred));
            }
            for (uint32_t r = 0; r < c.str_nruns; ++r) {
              if (code_ok[c.run_codes[r]] == 0) {
                std::fill(sel.data() + c.str_run_starts[r],
                          sel.data() + c.str_run_starts[r + 1], uint8_t{0});
              }
            }
          } else if (c.str_rep == kStrRepDict) {
            uint8_t code_ok[256];
            const size_t dsize = c.dict.size();
            for (size_t d = 0; d < dsize; ++d) {
              code_ok[d] =
                  static_cast<uint8_t>(TestStringLeaf(c.dict[d], *l.pred));
            }
            for (uint32_t i = 0; i < nrows; ++i) {
              sel[i] &= code_ok[c.codes[i]];
            }
          } else {
            for (uint32_t i = 0; i < nrows; ++i) {
              if (sel[i] != 0 && !TestStringLeaf(c.StringAt(i), *l.pred)) {
                sel[i] = 0;
              }
            }
          }
          break;
      }
    }
    sel_idx.reserve(nrows);
    for (uint32_t i = 0; i < nrows; ++i) {
      if (sel[i] != 0) sel_idx.push_back(static_cast<int32_t>(i));
    }
    for (const BoundKeyFilter& kf : key_filters) {
      const LateColumn& c = cols[static_cast<size_t>(kf.field)];
      const IntBlockView& v = c.iview;
      size_t kept = 0;
      if (v.encoding == kEncRle) {
        uint32_t r = 0;
        int64_t probed_run = -1;
        bool run_ok = false;
        for (int32_t idx : sel_idx) {
          while (c.run_starts[r + 1] <= idx) ++r;
          if (static_cast<int64_t>(r) != probed_run) {
            probed_run = static_cast<int64_t>(r);
            run_ok = kf.filter->Contains(v.run_values[r]);
          }
          if (run_ok) sel_idx[kept++] = idx;
        }
      } else if (v.encoding == kEncBitPack || v.encoding == kEncFor) {
        for (int32_t idx : sel_idx) {
          if (kf.filter->Contains(v.PackedAt(static_cast<uint64_t>(idx)))) {
            sel_idx[kept++] = idx;
          }
        }
      } else {
        for (int32_t idx : sel_idx) {
          if (kf.filter->Contains(c.KeyAt(static_cast<uint32_t>(idx)))) {
            sel_idx[kept++] = idx;
          }
        }
      }
      sel_idx.resize(kept);
    }
    stats->rows_pruned += nrows - sel_idx.size();
  }

  // Phase 3: materialize the projection for the surviving rows. RLE columns
  // optionally carry their run structure into the batch (expose_runs) so the
  // probe/aggregate layer can keep working per run.
  for (size_t p = 0; p < projection.size(); ++p) {
    CLY_RETURN_IF_ERROR(load_column(projection[p]));
    const LateColumn& c = cols[static_cast<size_t>(projection[p])];
    const IntBlockView& iv = c.iview;
    ColumnVector* out = batch.mutable_column(static_cast<int>(p));
    const bool is_int = c.field->type == TypeKind::kInt32 ||
                       c.field->type == TypeKind::kInt64;
    if (!any_filter) {
      switch (c.field->type) {
        case TypeKind::kInt32:
        case TypeKind::kInt64:
          DecodeIntView(iv, c.field->type, out);
          if (options.expose_runs && iv.encoding == kEncRle) {
            out->SetRuns(
                std::vector<int64_t>(iv.run_values, iv.run_values + iv.nruns),
                c.run_starts);
          }
          break;
        case TypeKind::kDouble: {
          auto* v = out->mutable_f64();
          v->resize(nrows);
          std::memcpy(v->data(), c.f64(), nrows * sizeof(double));
          break;
        }
        case TypeKind::kString: {
          auto* views = out->mutable_str_views();
          views->reserve(nrows);
          if (c.str_rep == kStrRepDictRle) {
            for (uint32_t r = 0; r < c.str_nruns; ++r) {
              const std::string_view s = c.dict[c.run_codes[r]];
              for (uint32_t k = 0; k < c.str_run_lengths[r]; ++k) {
                views->push_back(s);
              }
            }
          } else {
            for (uint32_t i = 0; i < nrows; ++i) {
              views->push_back(c.StringAt(i));
            }
          }
          out->set_string_arena(c.arena);
          break;
        }
      }
      continue;
    }
    const size_t selected = sel_idx.size();
    if (is_int && iv.encoding != kEncPlain) {
      const bool want_runs = options.expose_runs && iv.encoding == kEncRle;
      std::vector<int64_t> run_values;
      std::vector<int32_t> run_starts;
      if (c.field->type == TypeKind::kInt32) {
        auto* v = out->mutable_i32();
        v->reserve(selected);
        GatherIntEncoded(c, sel_idx, want_runs, &run_values, &run_starts,
                         [&](int64_t x) {
                           v->push_back(static_cast<int32_t>(x));
                         });
      } else {
        auto* v = out->mutable_i64();
        v->reserve(selected);
        GatherIntEncoded(c, sel_idx, want_runs, &run_values, &run_starts,
                         [&](int64_t x) { v->push_back(x); });
      }
      if (want_runs) {
        out->SetRuns(std::move(run_values), std::move(run_starts));
      }
      continue;
    }
    switch (c.field->type) {
      case TypeKind::kInt32: {
        auto* v = out->mutable_i32();
        v->reserve(selected);
        const int32_t* vals = c.i32();
        for (int32_t idx : sel_idx) v->push_back(vals[idx]);
        break;
      }
      case TypeKind::kInt64: {
        auto* v = out->mutable_i64();
        v->reserve(selected);
        const int64_t* vals = c.i64();
        for (int32_t idx : sel_idx) v->push_back(vals[idx]);
        break;
      }
      case TypeKind::kDouble: {
        auto* v = out->mutable_f64();
        v->reserve(selected);
        const double* vals = c.f64();
        for (int32_t idx : sel_idx) v->push_back(vals[idx]);
        break;
      }
      case TypeKind::kString: {
        auto* views = out->mutable_str_views();
        views->reserve(selected);
        if (c.str_rep == kStrRepDictRle) {
          uint32_t r = 0;
          for (int32_t idx : sel_idx) {
            while (c.str_run_starts[r + 1] <= idx) ++r;
            views->push_back(c.dict[c.run_codes[r]]);
          }
        } else {
          for (int32_t idx : sel_idx) {
            views->push_back(c.StringAt(static_cast<uint32_t>(idx)));
          }
        }
        out->set_string_arena(c.arena);
        break;
      }
    }
  }
  finish_prefetch();
  CLY_RETURN_IF_ERROR(batch.SealRowCount());
  stats->rows_read += static_cast<uint64_t>(batch.num_rows());
  return batch;
}

class CifTableWriter final : public TableWriter {
 public:
  CifTableWriter(hdfs::MiniDfs* dfs, TableDesc desc, int segment,
                 std::vector<std::unique_ptr<hdfs::DfsWriter>> writers)
      : dfs_(dfs),
        desc_(std::move(desc)),
        segment_(segment),
        writers_(std::move(writers)),
        buffer_(desc_.schema) {}

  Status Append(const Row& row) override {
    buffer_.AppendRow(row);
    ++rows_;
    if (static_cast<uint64_t>(buffer_.num_rows()) == desc_.rows_per_split) {
      return FlushSplit();
    }
    return Status::OK();
  }

  Status Close() override {
    if (buffer_.num_rows() > 0) CLY_RETURN_IF_ERROR(FlushSplit());
    for (auto& w : writers_) CLY_RETURN_IF_ERROR(w->Close());
    if (segment_ == 0) {
      desc_.num_rows = rows_;
      if (!desc_.segment_rows.empty()) desc_.segment_rows = {rows_};
    } else {
      // Roll-in: merge this segment into the table's metadata.
      if (desc_.segment_rows.empty()) {
        desc_.segment_rows.push_back(desc_.num_rows);
      }
      desc_.segment_rows.resize(static_cast<size_t>(segment_), 0);
      desc_.segment_rows.push_back(rows_);
      desc_.num_rows += rows_;
    }
    return SaveTableDesc(dfs_, desc_);
  }

  uint64_t rows_written() const override { return rows_; }

 private:
  Status FlushSplit() {
    ByteWriter encoded;
    for (int c = 0; c < buffer_.num_columns(); ++c) {
      encoded.Clear();
      EncodeColumnBlock(buffer_.column(c), desc_.cif_version, &encoded);
      if (encoded.size() > dfs_->block_size()) {
        return Status::InvalidArgument(StrCat(
            "CIF split of column '", desc_.schema->field(c).name, "' is ",
            encoded.size(), " bytes but the HDFS block size is ",
            dfs_->block_size(), "; lower rows_per_split"));
      }
      auto& writer = writers_[static_cast<size_t>(c)];
      CLY_RETURN_IF_ERROR(writer->Append(encoded.bytes()));
      CLY_RETURN_IF_ERROR(writer->CloseBlock());
    }
    buffer_.Clear();
    return Status::OK();
  }

  hdfs::MiniDfs* dfs_;
  TableDesc desc_;
  const int segment_;
  std::vector<std::unique_ptr<hdfs::DfsWriter>> writers_;
  RowBatch buffer_;
  uint64_t rows_ = 0;
};

/// Loads the projected columns of one split into a columnar batch. v2 tables
/// take the late-materialization path unless the A/B knob turned it off.
Result<RowBatch> LoadCifSplit(const hdfs::MiniDfs& dfs, const TableDesc& desc,
                              const StorageSplit& split,
                              const std::vector<int>& projection,
                              const SchemaPtr& out_schema,
                              const ScanOptions& options) {
  if (desc.cif_version >= 2 && options.late_materialize) {
    return LoadCifSplitLate(dfs, desc, split, projection, out_schema, options);
  }
  // Decoded in-memory bytes of a column, the eager path's bytes_raw
  // equivalent (fixed widths plus string payload + offset array).
  auto raw_column_bytes = [](const ColumnVector& col) -> uint64_t {
    const uint64_t n = static_cast<uint64_t>(col.size());
    switch (col.type()) {
      case TypeKind::kInt32:
        return 4 * n;
      case TypeKind::kInt64:
      case TypeKind::kDouble:
        return 8 * n;
      case TypeKind::kString: {
        uint64_t bytes = 4 * n;
        for (int64_t i = 0; i < col.size(); ++i) {
          bytes += col.StringViewAt(i).size();
        }
        return bytes;
      }
    }
    return 0;
  };
  ScanStats* stats = options.scan_stats;
  RowBatch batch(out_schema);
  for (size_t p = 0; p < projection.size(); ++p) {
    const Field& field = desc.schema->field(projection[p]);
    CLY_ASSIGN_OR_RETURN(
        std::shared_ptr<const std::vector<uint8_t>> data,
        ReadColumnBlockBytes(dfs, desc, split, field.name, options));
    CLY_RETURN_IF_ERROR(
        DecodeColumnBlock(*data, field.type, desc.cif_version,
                          batch.mutable_column(static_cast<int>(p))));
    // The eager path (v1 files, or the late_materialize=false A/B arm)
    // still accounts what it read vs what it decoded, so per-operator
    // profiles cover every CIF version, not just the newest read path.
    if (stats != nullptr) {
      stats->bytes_encoded += data->size();
      stats->bytes_raw +=
          raw_column_bytes(batch.column(static_cast<int>(p)));
      if (desc.cif_version == 1) stats->blocks_by_encoding[0] += 1;
    }
  }
  CLY_RETURN_IF_ERROR(batch.SealRowCount());
  if (stats != nullptr) {
    stats->rows_read += static_cast<uint64_t>(batch.num_rows());
  }
  return batch;
}

class CifSplitRowReader final : public RowReader {
 public:
  CifSplitRowReader(RowBatch batch, SchemaPtr out_schema)
      : batch_(std::move(batch)), out_schema_(std::move(out_schema)) {}

  Result<bool> Next(Row* out) override {
    if (next_ >= batch_.num_rows()) return false;
    *out = batch_.GetRow(next_++);
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  RowBatch batch_;
  SchemaPtr out_schema_;
  int64_t next_ = 0;
};

/// Carries a column's run overlay into a row slice [begin, begin + take):
/// the overlapping runs, clamped to the slice and rebased to row 0.
void SliceRuns(const ColumnVector& src, int64_t begin, int64_t take,
               ColumnVector* dst) {
  if (!src.has_runs() || take <= 0) return;
  const std::vector<int64_t>& rv = src.run_values();
  const std::vector<int32_t>& rs = src.run_starts();
  std::vector<int64_t> nv;
  std::vector<int32_t> ns;
  size_t r = static_cast<size_t>(
                 std::upper_bound(rs.begin(), rs.end(),
                                  static_cast<int32_t>(begin)) -
                 rs.begin()) -
             1;
  const int64_t end = begin + take;
  for (; r + 1 < rs.size() && rs[r] < end; ++r) {
    nv.push_back(rv[r]);
    ns.push_back(
        static_cast<int32_t>(std::max<int64_t>(rs[r], begin) - begin));
  }
  ns.push_back(static_cast<int32_t>(take));
  dst->SetRuns(std::move(nv), std::move(ns));
}

class CifSplitBatchReader final : public BatchReader {
 public:
  CifSplitBatchReader(RowBatch batch, SchemaPtr out_schema)
      : batch_(std::move(batch)), out_schema_(std::move(out_schema)) {}

  Result<bool> NextBatch(RowBatch* out, int64_t max_rows) override {
    out->Clear();
    if (next_ >= batch_.num_rows()) return false;
    const int64_t take = std::min(max_rows, batch_.num_rows() - next_);
    // Columnar copy of the slice: one memcpy-ish loop per column instead of
    // per-row materialization. View-mode string columns stay zero-copy: the
    // slice shares the source's arena; run overlays are clamped to the slice.
    for (int c = 0; c < batch_.num_columns(); ++c) {
      const ColumnVector& src = batch_.column(c);
      ColumnVector* dst = out->mutable_column(c);
      dst->Reserve(take);
      switch (src.type()) {
        case TypeKind::kInt32:
          dst->mutable_i32()->assign(
              src.i32().begin() + next_, src.i32().begin() + next_ + take);
          SliceRuns(src, next_, take, dst);
          break;
        case TypeKind::kInt64:
          dst->mutable_i64()->assign(
              src.i64().begin() + next_, src.i64().begin() + next_ + take);
          SliceRuns(src, next_, take, dst);
          break;
        case TypeKind::kDouble:
          dst->mutable_f64()->assign(
              src.f64().begin() + next_, src.f64().begin() + next_ + take);
          break;
        case TypeKind::kString:
          if (src.is_string_view()) {
            dst->mutable_str_views()->assign(
                src.str_views().begin() + next_,
                src.str_views().begin() + next_ + take);
            dst->set_string_arena(src.string_arena());
          } else {
            dst->mutable_str()->assign(
                src.str().begin() + next_, src.str().begin() + next_ + take);
          }
          break;
      }
    }
    CLY_RETURN_IF_ERROR(out->SealRowCount());
    next_ += take;
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  RowBatch batch_;
  SchemaPtr out_schema_;
  int64_t next_ = 0;
};

}  // namespace

namespace {
Result<std::unique_ptr<TableWriter>> OpenCifSegmentWriter(hdfs::MiniDfs* dfs,
                                                          const TableDesc& desc,
                                                          int segment) {
  if (desc.rows_per_split == 0) {
    return Status::InvalidArgument("CIF tables need rows_per_split > 0");
  }
  std::vector<std::unique_ptr<hdfs::DfsWriter>> writers;
  writers.reserve(static_cast<size_t>(desc.schema->num_fields()));
  for (const Field& f : desc.schema->fields()) {
    // All column files of a segment join that segment's colocation group.
    CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> w,
                         dfs->Create(ColumnFilePath(desc, f.name, segment),
                                     ColocationGroup(desc, segment)));
    writers.push_back(std::move(w));
  }
  return std::unique_ptr<TableWriter>(
      new CifTableWriter(dfs, desc, segment, std::move(writers)));
}
}  // namespace

Result<std::unique_ptr<TableWriter>> OpenCifTableWriter(hdfs::MiniDfs* dfs,
                                                        const TableDesc& desc) {
  return OpenCifSegmentWriter(dfs, desc, /*segment=*/0);
}

Result<std::unique_ptr<TableWriter>> AppendCifSegment(hdfs::MiniDfs* dfs,
                                                      const TableDesc& desc) {
  if (desc.format != kFormatCif) {
    return Status::InvalidArgument("roll-in requires a CIF table");
  }
  return OpenCifSegmentWriter(dfs, desc, desc.num_segments());
}

Status RollOutCifSegment(hdfs::MiniDfs* dfs, const TableDesc& desc,
                         int segment) {
  if (segment < 0 || segment >= desc.num_segments()) {
    return Status::InvalidArgument(StrCat("no segment ", segment));
  }
  TableDesc updated = desc;
  if (updated.segment_rows.empty()) {
    updated.segment_rows = {updated.num_rows};
  }
  uint64_t& rows = updated.segment_rows[static_cast<size_t>(segment)];
  if (rows == 0) {
    return Status::FailedPrecondition(
        StrCat("segment ", segment, " was already rolled out"));
  }
  for (const Field& f : desc.schema->fields()) {
    CLY_RETURN_IF_ERROR(dfs->Delete(ColumnFilePath(desc, f.name, segment)));
  }
  updated.num_rows -= rows;
  rows = 0;
  return SaveTableDesc(dfs, updated);
}

Result<std::vector<StorageSplit>> ListCifSplits(const hdfs::MiniDfs& dfs,
                                                const TableDesc& desc) {
  std::vector<StorageSplit> splits;
  // Scheduling weight uses the whole row width (all columns), since that is
  // what a full scan would read.
  const double row_width = desc.schema->AvgRowWidth();
  std::vector<uint64_t> segment_rows = desc.segment_rows;
  if (segment_rows.empty()) segment_rows = {desc.num_rows};
  uint64_t row_base = 0;
  for (int seg = 0; seg < static_cast<int>(segment_rows.size()); ++seg) {
    const uint64_t rows_in_segment = segment_rows[static_cast<size_t>(seg)];
    if (rows_in_segment == 0) continue;  // rolled out
    // The anchor is the first column file; colocation makes every column's
    // block i live on the same nodes.
    const std::string anchor =
        ColumnFilePath(desc, desc.schema->field(0).name, seg);
    CLY_ASSIGN_OR_RETURN(hdfs::FileInfo info, dfs.Stat(anchor));
    for (size_t b = 0; b < info.blocks.size(); ++b) {
      StorageSplit split;
      split.table_path = desc.path;
      split.format = desc.format;
      split.index = static_cast<int>(splits.size());
      split.segment = seg;
      split.block_in_segment = static_cast<int>(b);
      split.row_begin = row_base + desc.rows_per_split * b;
      split.row_end = std::min<uint64_t>(row_base + rows_in_segment,
                                         row_base + desc.rows_per_split * (b + 1));
      split.length_bytes = static_cast<uint64_t>(
          static_cast<double>(split.row_end - split.row_begin) * row_width);
      CLY_ASSIGN_OR_RETURN(split.preferred_nodes,
                           dfs.BlockLocations(anchor, static_cast<int>(b)));
      splits.push_back(std::move(split));
    }
    row_base += rows_in_segment;
  }
  return splits;
}

Result<std::unique_ptr<RowReader>> OpenCifSplitRowReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  SchemaPtr out_schema = desc.schema->Project(projection);
  CLY_ASSIGN_OR_RETURN(
      RowBatch batch,
      LoadCifSplit(dfs, desc, split, projection, out_schema, options));
  return std::unique_ptr<RowReader>(
      new CifSplitRowReader(std::move(batch), std::move(out_schema)));
}

Result<std::unique_ptr<BatchReader>> OpenCifSplitBatchReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  SchemaPtr out_schema = desc.schema->Project(projection);
  CLY_ASSIGN_OR_RETURN(
      RowBatch batch,
      LoadCifSplit(dfs, desc, split, projection, out_schema, options));
  return std::unique_ptr<BatchReader>(
      new CifSplitBatchReader(std::move(batch), std::move(out_schema)));
}

}  // namespace storage
}  // namespace clydesdale
