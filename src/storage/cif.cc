#include "storage/cif.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "common/strings.h"
#include "storage/byte_io.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

namespace {

std::string ColumnFilePath(const TableDesc& desc, const std::string& column,
                           int segment = 0) {
  if (segment == 0) return StrCat(desc.path, "/", column, ".col");
  return StrCat(desc.path, "/", column, ".s", segment, ".col");
}

std::string ColocationGroup(const TableDesc& desc, int segment) {
  return segment == 0 ? desc.path : StrCat(desc.path, "#s", segment);
}

// String column block sub-formats: low-cardinality columns (order priority,
// ship mode, regions, ...) store a dictionary plus one byte per row, which
// is what brings the full fact row close to the paper's ~56 B binary width.
constexpr uint8_t kStringPlain = 0;
constexpr uint8_t kStringDictionary = 1;

/// Serializes one column's buffered values for a split.
void EncodeColumnBlock(const ColumnVector& col, ByteWriter* out) {
  const auto nrows = static_cast<uint32_t>(col.size());
  out->PutU32(nrows);
  switch (col.type()) {
    case TypeKind::kInt32:
      out->PutBytes(col.i32().data(), col.i32().size() * sizeof(int32_t));
      break;
    case TypeKind::kInt64:
      out->PutBytes(col.i64().data(), col.i64().size() * sizeof(int64_t));
      break;
    case TypeKind::kDouble:
      out->PutBytes(col.f64().data(), col.f64().size() * sizeof(double));
      break;
    case TypeKind::kString: {
      // Try dictionary encoding: pays off whenever <=256 distinct values.
      std::unordered_map<std::string_view, uint8_t> dict;
      std::vector<std::string_view> order;
      bool dictionary_ok = true;
      for (const std::string& s : col.str()) {
        auto it = dict.find(s);
        if (it != dict.end()) continue;
        if (dict.size() == 256 || s.size() > 255) {
          dictionary_ok = false;
          break;
        }
        dict.emplace(s, static_cast<uint8_t>(dict.size()));
        order.push_back(s);
      }
      if (dictionary_ok && nrows > 0) {
        out->PutU8(kStringDictionary);
        out->PutU16(static_cast<uint16_t>(order.size()));
        for (std::string_view s : order) {
          out->PutU8(static_cast<uint8_t>(s.size()));
          out->PutBytes(s.data(), s.size());
        }
        for (const std::string& s : col.str()) {
          out->PutU8(dict.find(s)->second);
        }
        break;
      }
      out->PutU8(kStringPlain);
      uint32_t offset = 0;
      for (const std::string& s : col.str()) {
        offset += static_cast<uint32_t>(s.size());
        out->PutU32(offset);
      }
      for (const std::string& s : col.str()) {
        out->PutBytes(s.data(), s.size());
      }
      break;
    }
  }
}

Status DecodeColumnBlock(const std::vector<uint8_t>& data, TypeKind type,
                         ColumnVector* out) {
  ByteReader reader(data);
  uint32_t nrows = 0;
  CLY_RETURN_IF_ERROR(reader.GetU32(&nrows));
  out->Clear();
  out->Reserve(nrows);
  switch (type) {
    case TypeKind::kInt32: {
      auto* v = out->mutable_i32();
      v->resize(nrows);
      if (reader.remaining() < nrows * sizeof(int32_t)) {
        return Status::IoError("truncated int32 column block");
      }
      std::memcpy(v->data(), data.data() + reader.position(),
                  nrows * sizeof(int32_t));
      break;
    }
    case TypeKind::kInt64: {
      auto* v = out->mutable_i64();
      v->resize(nrows);
      if (reader.remaining() < nrows * sizeof(int64_t)) {
        return Status::IoError("truncated int64 column block");
      }
      std::memcpy(v->data(), data.data() + reader.position(),
                  nrows * sizeof(int64_t));
      break;
    }
    case TypeKind::kDouble: {
      auto* v = out->mutable_f64();
      v->resize(nrows);
      if (reader.remaining() < nrows * sizeof(double)) {
        return Status::IoError("truncated double column block");
      }
      std::memcpy(v->data(), data.data() + reader.position(),
                  nrows * sizeof(double));
      break;
    }
    case TypeKind::kString: {
      if (nrows == 0) break;
      uint8_t encoding = 0;
      CLY_RETURN_IF_ERROR(reader.GetU8(&encoding));
      auto* v = out->mutable_str();
      v->reserve(nrows);
      if (encoding == kStringDictionary) {
        uint16_t dict_size = 0;
        CLY_RETURN_IF_ERROR(reader.GetU16(&dict_size));
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint16_t d = 0; d < dict_size; ++d) {
          uint8_t len = 0;
          CLY_RETURN_IF_ERROR(reader.GetU8(&len));
          if (reader.remaining() < len) {
            return Status::IoError("truncated dictionary entry");
          }
          dict.emplace_back(
              reinterpret_cast<const char*>(data.data()) + reader.position(),
              len);
          CLY_RETURN_IF_ERROR(reader.Skip(len));
        }
        if (reader.remaining() < nrows) {
          return Status::IoError("truncated dictionary codes");
        }
        for (uint32_t i = 0; i < nrows; ++i) {
          const uint8_t code = data[reader.position() + i];
          if (code >= dict.size()) {
            return Status::IoError("dictionary code out of range");
          }
          v->push_back(dict[code]);
        }
        CLY_RETURN_IF_ERROR(reader.Skip(nrows));
        break;
      }
      if (encoding != kStringPlain) {
        return Status::IoError("unknown string column encoding");
      }
      if (reader.remaining() < nrows * sizeof(uint32_t)) {
        return Status::IoError("truncated string offsets");
      }
      std::vector<uint32_t> offsets(nrows);
      std::memcpy(offsets.data(), data.data() + reader.position(),
                  nrows * sizeof(uint32_t));
      CLY_RETURN_IF_ERROR(reader.Skip(nrows * sizeof(uint32_t)));
      const size_t base = reader.position();
      const uint32_t total = offsets.back();
      if (reader.remaining() < total) {
        return Status::IoError("truncated string bytes");
      }
      uint32_t prev = 0;
      for (uint32_t i = 0; i < nrows; ++i) {
        v->emplace_back(reinterpret_cast<const char*>(data.data()) + base + prev,
                        offsets[i] - prev);
        prev = offsets[i];
      }
      break;
    }
  }
  return Status::OK();
}

class CifTableWriter final : public TableWriter {
 public:
  CifTableWriter(hdfs::MiniDfs* dfs, TableDesc desc, int segment,
                 std::vector<std::unique_ptr<hdfs::DfsWriter>> writers)
      : dfs_(dfs),
        desc_(std::move(desc)),
        segment_(segment),
        writers_(std::move(writers)),
        buffer_(desc_.schema) {}

  Status Append(const Row& row) override {
    buffer_.AppendRow(row);
    ++rows_;
    if (static_cast<uint64_t>(buffer_.num_rows()) == desc_.rows_per_split) {
      return FlushSplit();
    }
    return Status::OK();
  }

  Status Close() override {
    if (buffer_.num_rows() > 0) CLY_RETURN_IF_ERROR(FlushSplit());
    for (auto& w : writers_) CLY_RETURN_IF_ERROR(w->Close());
    if (segment_ == 0) {
      desc_.num_rows = rows_;
      if (!desc_.segment_rows.empty()) desc_.segment_rows = {rows_};
    } else {
      // Roll-in: merge this segment into the table's metadata.
      if (desc_.segment_rows.empty()) {
        desc_.segment_rows.push_back(desc_.num_rows);
      }
      desc_.segment_rows.resize(static_cast<size_t>(segment_), 0);
      desc_.segment_rows.push_back(rows_);
      desc_.num_rows += rows_;
    }
    return SaveTableDesc(dfs_, desc_);
  }

  uint64_t rows_written() const override { return rows_; }

 private:
  Status FlushSplit() {
    ByteWriter encoded;
    for (int c = 0; c < buffer_.num_columns(); ++c) {
      encoded.Clear();
      EncodeColumnBlock(buffer_.column(c), &encoded);
      if (encoded.size() > dfs_->block_size()) {
        return Status::InvalidArgument(StrCat(
            "CIF split of column '", desc_.schema->field(c).name, "' is ",
            encoded.size(), " bytes but the HDFS block size is ",
            dfs_->block_size(), "; lower rows_per_split"));
      }
      auto& writer = writers_[static_cast<size_t>(c)];
      CLY_RETURN_IF_ERROR(writer->Append(encoded.bytes()));
      CLY_RETURN_IF_ERROR(writer->CloseBlock());
    }
    buffer_.Clear();
    return Status::OK();
  }

  hdfs::MiniDfs* dfs_;
  TableDesc desc_;
  const int segment_;
  std::vector<std::unique_ptr<hdfs::DfsWriter>> writers_;
  RowBatch buffer_;
  uint64_t rows_ = 0;
};

/// Loads the projected columns of one split into a columnar batch.
Result<RowBatch> LoadCifSplit(const hdfs::MiniDfs& dfs, const TableDesc& desc,
                              const StorageSplit& split,
                              const std::vector<int>& projection,
                              const SchemaPtr& out_schema,
                              const ScanOptions& options) {
  RowBatch batch(out_schema);
  for (size_t p = 0; p < projection.size(); ++p) {
    const Field& field = desc.schema->field(projection[p]);
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<hdfs::DfsReader> reader,
        dfs.Open(ColumnFilePath(desc, field.name, split.segment),
                 options.reader_node, options.stats));
    uint64_t begin = 0, end = 0;
    internal::BlockByteRange(reader->file_info(), split.block_in_segment,
                             &begin, &end);
    std::vector<uint8_t> data(end - begin);
    if (!data.empty()) {
      CLY_RETURN_IF_ERROR(reader->PRead(begin, data.data(), data.size()));
    }
    CLY_RETURN_IF_ERROR(DecodeColumnBlock(
        data, field.type, batch.mutable_column(static_cast<int>(p))));
  }
  CLY_RETURN_IF_ERROR(batch.SealRowCount());
  return batch;
}

class CifSplitRowReader final : public RowReader {
 public:
  CifSplitRowReader(RowBatch batch, SchemaPtr out_schema)
      : batch_(std::move(batch)), out_schema_(std::move(out_schema)) {}

  Result<bool> Next(Row* out) override {
    if (next_ >= batch_.num_rows()) return false;
    *out = batch_.GetRow(next_++);
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  RowBatch batch_;
  SchemaPtr out_schema_;
  int64_t next_ = 0;
};

class CifSplitBatchReader final : public BatchReader {
 public:
  CifSplitBatchReader(RowBatch batch, SchemaPtr out_schema)
      : batch_(std::move(batch)), out_schema_(std::move(out_schema)) {}

  Result<bool> NextBatch(RowBatch* out, int64_t max_rows) override {
    out->Clear();
    if (next_ >= batch_.num_rows()) return false;
    const int64_t take = std::min(max_rows, batch_.num_rows() - next_);
    // Columnar copy of the slice: one memcpy-ish loop per column instead of
    // per-row materialization.
    for (int c = 0; c < batch_.num_columns(); ++c) {
      const ColumnVector& src = batch_.column(c);
      ColumnVector* dst = out->mutable_column(c);
      dst->Reserve(take);
      switch (src.type()) {
        case TypeKind::kInt32:
          dst->mutable_i32()->assign(
              src.i32().begin() + next_, src.i32().begin() + next_ + take);
          break;
        case TypeKind::kInt64:
          dst->mutable_i64()->assign(
              src.i64().begin() + next_, src.i64().begin() + next_ + take);
          break;
        case TypeKind::kDouble:
          dst->mutable_f64()->assign(
              src.f64().begin() + next_, src.f64().begin() + next_ + take);
          break;
        case TypeKind::kString:
          dst->mutable_str()->assign(
              src.str().begin() + next_, src.str().begin() + next_ + take);
          break;
      }
    }
    CLY_RETURN_IF_ERROR(out->SealRowCount());
    next_ += take;
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  RowBatch batch_;
  SchemaPtr out_schema_;
  int64_t next_ = 0;
};

}  // namespace

namespace {
Result<std::unique_ptr<TableWriter>> OpenCifSegmentWriter(hdfs::MiniDfs* dfs,
                                                          const TableDesc& desc,
                                                          int segment) {
  if (desc.rows_per_split == 0) {
    return Status::InvalidArgument("CIF tables need rows_per_split > 0");
  }
  std::vector<std::unique_ptr<hdfs::DfsWriter>> writers;
  writers.reserve(static_cast<size_t>(desc.schema->num_fields()));
  for (const Field& f : desc.schema->fields()) {
    // All column files of a segment join that segment's colocation group.
    CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> w,
                         dfs->Create(ColumnFilePath(desc, f.name, segment),
                                     ColocationGroup(desc, segment)));
    writers.push_back(std::move(w));
  }
  return std::unique_ptr<TableWriter>(
      new CifTableWriter(dfs, desc, segment, std::move(writers)));
}
}  // namespace

Result<std::unique_ptr<TableWriter>> OpenCifTableWriter(hdfs::MiniDfs* dfs,
                                                        const TableDesc& desc) {
  return OpenCifSegmentWriter(dfs, desc, /*segment=*/0);
}

Result<std::unique_ptr<TableWriter>> AppendCifSegment(hdfs::MiniDfs* dfs,
                                                      const TableDesc& desc) {
  if (desc.format != kFormatCif) {
    return Status::InvalidArgument("roll-in requires a CIF table");
  }
  return OpenCifSegmentWriter(dfs, desc, desc.num_segments());
}

Status RollOutCifSegment(hdfs::MiniDfs* dfs, const TableDesc& desc,
                         int segment) {
  if (segment < 0 || segment >= desc.num_segments()) {
    return Status::InvalidArgument(StrCat("no segment ", segment));
  }
  TableDesc updated = desc;
  if (updated.segment_rows.empty()) {
    updated.segment_rows = {updated.num_rows};
  }
  uint64_t& rows = updated.segment_rows[static_cast<size_t>(segment)];
  if (rows == 0) {
    return Status::FailedPrecondition(
        StrCat("segment ", segment, " was already rolled out"));
  }
  for (const Field& f : desc.schema->fields()) {
    CLY_RETURN_IF_ERROR(dfs->Delete(ColumnFilePath(desc, f.name, segment)));
  }
  updated.num_rows -= rows;
  rows = 0;
  return SaveTableDesc(dfs, updated);
}

Result<std::vector<StorageSplit>> ListCifSplits(const hdfs::MiniDfs& dfs,
                                                const TableDesc& desc) {
  std::vector<StorageSplit> splits;
  // Scheduling weight uses the whole row width (all columns), since that is
  // what a full scan would read.
  const double row_width = desc.schema->AvgRowWidth();
  std::vector<uint64_t> segment_rows = desc.segment_rows;
  if (segment_rows.empty()) segment_rows = {desc.num_rows};
  uint64_t row_base = 0;
  for (int seg = 0; seg < static_cast<int>(segment_rows.size()); ++seg) {
    const uint64_t rows_in_segment = segment_rows[static_cast<size_t>(seg)];
    if (rows_in_segment == 0) continue;  // rolled out
    // The anchor is the first column file; colocation makes every column's
    // block i live on the same nodes.
    const std::string anchor =
        ColumnFilePath(desc, desc.schema->field(0).name, seg);
    CLY_ASSIGN_OR_RETURN(hdfs::FileInfo info, dfs.Stat(anchor));
    for (size_t b = 0; b < info.blocks.size(); ++b) {
      StorageSplit split;
      split.table_path = desc.path;
      split.format = desc.format;
      split.index = static_cast<int>(splits.size());
      split.segment = seg;
      split.block_in_segment = static_cast<int>(b);
      split.row_begin = row_base + desc.rows_per_split * b;
      split.row_end = std::min<uint64_t>(row_base + rows_in_segment,
                                         row_base + desc.rows_per_split * (b + 1));
      split.length_bytes = static_cast<uint64_t>(
          static_cast<double>(split.row_end - split.row_begin) * row_width);
      CLY_ASSIGN_OR_RETURN(split.preferred_nodes,
                           dfs.BlockLocations(anchor, static_cast<int>(b)));
      splits.push_back(std::move(split));
    }
    row_base += rows_in_segment;
  }
  return splits;
}

Result<std::unique_ptr<RowReader>> OpenCifSplitRowReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  SchemaPtr out_schema = desc.schema->Project(projection);
  CLY_ASSIGN_OR_RETURN(
      RowBatch batch,
      LoadCifSplit(dfs, desc, split, projection, out_schema, options));
  return std::unique_ptr<RowReader>(
      new CifSplitRowReader(std::move(batch), std::move(out_schema)));
}

Result<std::unique_ptr<BatchReader>> OpenCifSplitBatchReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  SchemaPtr out_schema = desc.schema->Project(projection);
  CLY_ASSIGN_OR_RETURN(
      RowBatch batch,
      LoadCifSplit(dfs, desc, split, projection, out_schema, options));
  return std::unique_ptr<BatchReader>(
      new CifSplitBatchReader(std::move(batch), std::move(out_schema)));
}

}  // namespace storage
}  // namespace clydesdale
