#include "storage/table_format.h"

#include "common/strings.h"
#include "storage/binary_row_format.h"
#include "storage/cif.h"
#include "storage/rcfile.h"
#include "storage/text_format.h"

namespace clydesdale {
namespace storage {

namespace {
Result<TypeKind> ParseTypeKind(const std::string& s) {
  if (s == "int32") return TypeKind::kInt32;
  if (s == "int64") return TypeKind::kInt64;
  if (s == "double") return TypeKind::kDouble;
  if (s == "string") return TypeKind::kString;
  return Status::IoError(StrCat("bad type in meta: '", s, "'"));
}
}  // namespace

Status SaveTableDesc(hdfs::MiniDfs* dfs, const TableDesc& desc) {
  std::string meta;
  meta += StrCat("format=", desc.format, "\n");
  meta += StrCat("rows=", desc.num_rows, "\n");
  meta += StrCat("rows_per_split=", desc.rows_per_split, "\n");
  if (desc.format == kFormatCif) {
    meta += StrCat("cif_version=", desc.cif_version, "\n");
  }
  if (!desc.segment_rows.empty()) {
    std::vector<std::string> counts;
    for (uint64_t r : desc.segment_rows) counts.push_back(StrCat(r));
    meta += StrCat("segment_rows=", StrJoin(counts, ","), "\n");
  }
  std::vector<std::string> cols;
  for (const Field& f : desc.schema->fields()) {
    cols.push_back(StrCat(f.name, ":", TypeKindToString(f.type), ":",
                          FormatDouble(f.avg_width, 2)));
  }
  meta += StrCat("columns=", StrJoin(cols, ","), "\n");
  const std::string meta_path = desc.path + "/_meta";
  if (dfs->Exists(meta_path)) CLY_RETURN_IF_ERROR(dfs->Delete(meta_path));
  return dfs->WriteFile(meta_path, meta);
}

Result<TableDesc> LoadTableDesc(const hdfs::MiniDfs& dfs,
                                const std::string& path) {
  CLY_ASSIGN_OR_RETURN(std::string meta,
                       dfs.ReadFileToString(path + "/_meta"));
  TableDesc desc;
  desc.path = path;
  // Tables written before the version key existed are v1 on disk.
  desc.cif_version = 1;
  for (const std::string& line : StrSplit(meta, '\n')) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::IoError(StrCat("bad meta line: '", line, "'"));
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      desc.format = value;
    } else if (key == "rows") {
      desc.num_rows = static_cast<uint64_t>(std::stoull(value));
    } else if (key == "rows_per_split") {
      desc.rows_per_split = static_cast<uint64_t>(std::stoull(value));
    } else if (key == "cif_version") {
      desc.cif_version = static_cast<int>(std::stoul(value));
    } else if (key == "segment_rows") {
      for (const std::string& r : StrSplit(value, ',')) {
        desc.segment_rows.push_back(static_cast<uint64_t>(std::stoull(r)));
      }
    } else if (key == "columns") {
      std::vector<Field> fields;
      for (const std::string& col : StrSplit(value, ',')) {
        const std::vector<std::string> parts = StrSplit(col, ':');
        if (parts.size() != 3) {
          return Status::IoError(StrCat("bad column in meta: '", col, "'"));
        }
        CLY_ASSIGN_OR_RETURN(TypeKind type, ParseTypeKind(parts[1]));
        fields.push_back(Field{parts[0], type, std::stod(parts[2])});
      }
      desc.schema = Schema::Make(std::move(fields));
    }
  }
  if (desc.schema == nullptr || desc.format.empty()) {
    return Status::IoError(StrCat("incomplete meta for ", path));
  }
  return desc;
}

Result<std::unique_ptr<TableWriter>> OpenTableWriter(hdfs::MiniDfs* dfs,
                                                     const TableDesc& desc) {
  if (desc.schema == nullptr || desc.schema->num_fields() == 0) {
    return Status::InvalidArgument("table needs a non-empty schema");
  }
  if (desc.format == kFormatText) return OpenTextTableWriter(dfs, desc);
  if (desc.format == kFormatBinaryRow) {
    return OpenBinaryRowTableWriter(dfs, desc);
  }
  if (desc.format == kFormatCif) return OpenCifTableWriter(dfs, desc);
  if (desc.format == kFormatRcFile) return OpenRcFileTableWriter(dfs, desc);
  return Status::InvalidArgument(StrCat("unknown format '", desc.format, "'"));
}

Result<std::vector<StorageSplit>> ListTableSplits(const hdfs::MiniDfs& dfs,
                                                  const TableDesc& desc) {
  if (desc.format == kFormatText) return ListTextSplits(dfs, desc);
  if (desc.format == kFormatBinaryRow) return ListBinaryRowSplits(dfs, desc);
  if (desc.format == kFormatCif) return ListCifSplits(dfs, desc);
  if (desc.format == kFormatRcFile) return ListRcFileSplits(dfs, desc);
  return Status::InvalidArgument(StrCat("unknown format '", desc.format, "'"));
}

Result<std::unique_ptr<RowReader>> OpenSplitRowReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  if (desc.format == kFormatText) {
    return OpenTextSplitReader(dfs, desc, split, options);
  }
  if (desc.format == kFormatBinaryRow) {
    return OpenBinaryRowSplitReader(dfs, desc, split, options);
  }
  if (desc.format == kFormatCif) {
    return OpenCifSplitRowReader(dfs, desc, split, options);
  }
  if (desc.format == kFormatRcFile) {
    return OpenRcFileSplitReader(dfs, desc, split, options);
  }
  return Status::InvalidArgument(StrCat("unknown format '", desc.format, "'"));
}

Result<std::unique_ptr<BatchReader>> OpenSplitBatchReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  if (desc.format == kFormatCif) {
    return OpenCifSplitBatchReader(dfs, desc, split, options);
  }
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<RowReader> rows,
                       OpenSplitRowReader(dfs, desc, split, options));
  return AdaptRowReaderToBatch(std::move(rows));
}

Result<std::vector<int>> ResolveProjection(const Schema& schema,
                                           const ScanOptions& options) {
  std::vector<int> indexes;
  if (options.projection.empty()) {
    indexes.resize(static_cast<size_t>(schema.num_fields()));
    for (int i = 0; i < schema.num_fields(); ++i) {
      indexes[static_cast<size_t>(i)] = i;
    }
    return indexes;
  }
  indexes.reserve(options.projection.size());
  for (const std::string& name : options.projection) {
    CLY_ASSIGN_OR_RETURN(int idx, schema.Require(name));
    indexes.push_back(idx);
  }
  return indexes;
}

Result<std::vector<Row>> ScanTableToVector(const hdfs::MiniDfs& dfs,
                                           const TableDesc& desc,
                                           const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<StorageSplit> splits,
                       ListTableSplits(dfs, desc));
  std::vector<Row> rows;
  rows.reserve(desc.num_rows);
  for (const StorageSplit& split : splits) {
    CLY_ASSIGN_OR_RETURN(std::unique_ptr<RowReader> reader,
                         OpenSplitRowReader(dfs, desc, split, options));
    Row row;
    while (true) {
      CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      rows.push_back(row);
    }
  }
  return rows;
}

namespace {

class RowToBatchAdapter final : public BatchReader {
 public:
  explicit RowToBatchAdapter(std::unique_ptr<RowReader> reader)
      : reader_(std::move(reader)) {}

  Result<bool> NextBatch(RowBatch* out, int64_t max_rows) override {
    out->Clear();
    Row row;
    for (int64_t i = 0; i < max_rows; ++i) {
      CLY_ASSIGN_OR_RETURN(bool more, reader_->Next(&row));
      if (!more) break;
      out->AppendRow(row);
    }
    return out->num_rows() > 0;
  }

  const SchemaPtr& output_schema() const override {
    return reader_->output_schema();
  }

 private:
  std::unique_ptr<RowReader> reader_;
};

}  // namespace

std::unique_ptr<BatchReader> AdaptRowReaderToBatch(
    std::unique_ptr<RowReader> reader) {
  return std::make_unique<RowToBatchAdapter>(std::move(reader));
}

}  // namespace storage
}  // namespace clydesdale
