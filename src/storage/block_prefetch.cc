#include "storage/block_prefetch.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

BlockPrefetcher::BlockPrefetcher(const hdfs::MiniDfs* dfs,
                                 hdfs::NodeId reader_node,
                                 std::vector<std::string> paths,
                                 int block_index)
    : dfs_(dfs),
      reader_node_(reader_node),
      paths_(std::move(paths)),
      block_index_(block_index),
      slots_(paths_.size()),
      log_context_(LogContext().empty() ? "prefetch"
                                        : LogContext() + "/prefetch") {
  worker_ = std::thread([this] { WorkerLoop(); });
}

BlockPrefetcher::~BlockPrefetcher() { Join(); }

void BlockPrefetcher::WorkerLoop() {
  // Inherit the creating task's ambient context: a prefetch-thread log line
  // reads "[job/m-17@node3/prefetch] ..." instead of being unattributable.
  ScopedLogContext log_context(log_context_);
  for (size_t i = 0; i < paths_.size(); ++i) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [&] { return cancel_ || produced_ - taken_ < kQueueDepth; });
      if (cancel_) return;
    }
    // The read itself runs unlocked: this is the overlap the prefetcher
    // exists for. MiniDfs reads are thread-safe; stats go to the private
    // io_, which the consumer only touches after join.
    Slot slot;
    slot.done = true;
    auto reader = dfs_->Open(paths_[i], reader_node_, &io_);
    if (!reader.ok()) {
      slot.status = reader.status();
    } else {
      uint64_t begin = 0, end = 0;
      internal::BlockByteRange((*reader)->file_info(), block_index_, &begin,
                               &end);
      auto data = std::make_shared<std::vector<uint8_t>>(end - begin);
      if (!data->empty()) {
        slot.status = (*reader)->PRead(begin, data->data(), data->size());
      }
      if (slot.status.ok()) slot.bytes = std::move(data);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[i] = std::move(slot);
      ++produced_;
    }
    cv_.notify_all();
  }
}

Result<std::shared_ptr<const std::vector<uint8_t>>> BlockPrefetcher::Take(
    size_t i) {
  std::unique_lock<std::mutex> lock(mu_);
  if (slots_[i].done) {
    ++prefetch_stats_.hits;
  } else {
    ++prefetch_stats_.misses;
    Stopwatch wait_timer;
    cv_.wait(lock, [&] { return slots_[i].done; });
    prefetch_stats_.wait_ns +=
        static_cast<uint64_t>(wait_timer.ElapsedNanos());
  }
  taken_ = i + 1;
  cv_.notify_all();
  if (!slots_[i].status.ok()) return slots_[i].status;
  return std::move(slots_[i].bytes);
}

const hdfs::IoStats& BlockPrefetcher::Finish() {
  Join();
  return io_;
}

void BlockPrefetcher::Join() {
  if (joined_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  joined_ = true;
}

}  // namespace storage
}  // namespace clydesdale
