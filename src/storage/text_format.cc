#include "storage/text_format.h"

#include "common/strings.h"
#include "storage/row_codec.h"
#include "storage/split_util.h"

namespace clydesdale {
namespace storage {

namespace {

constexpr const char kDataFile[] = "/data.txt";

class TextTableWriter final : public TableWriter {
 public:
  TextTableWriter(hdfs::MiniDfs* dfs, TableDesc desc,
                  std::unique_ptr<hdfs::DfsWriter> writer)
      : dfs_(dfs), desc_(std::move(desc)), writer_(std::move(writer)) {}

  Status Append(const Row& row) override {
    std::string line = FormatRowText(row);
    line.push_back('\n');
    // Keep rows block-aligned: if this line would straddle the block
    // boundary, end the block first.
    const uint64_t block_size = dfs_->block_size();
    const uint64_t used = writer_->buffered_bytes();
    if (used != 0 && used + line.size() > block_size) {
      CLY_RETURN_IF_ERROR(writer_->CloseBlock());
    }
    CLY_RETURN_IF_ERROR(writer_->AppendString(line));
    ++rows_;
    return Status::OK();
  }

  Status Close() override {
    CLY_RETURN_IF_ERROR(writer_->Close());
    desc_.num_rows = rows_;
    return SaveTableDesc(dfs_, desc_);
  }

  uint64_t rows_written() const override { return rows_; }

 private:
  hdfs::MiniDfs* dfs_;
  TableDesc desc_;
  std::unique_ptr<hdfs::DfsWriter> writer_;
  uint64_t rows_ = 0;
};

class TextSplitReader final : public RowReader {
 public:
  TextSplitReader(SchemaPtr full_schema, SchemaPtr out_schema,
                  std::vector<int> projection, std::vector<uint8_t> data)
      : full_schema_(std::move(full_schema)),
        out_schema_(std::move(out_schema)),
        projection_(std::move(projection)),
        data_(std::move(data)) {}

  Result<bool> Next(Row* out) override {
    if (pos_ >= data_.size()) return false;
    size_t end = pos_;
    while (end < data_.size() && data_[end] != '\n') ++end;
    const std::string_view line(reinterpret_cast<const char*>(data_.data()) + pos_,
                                end - pos_);
    pos_ = end + 1;
    if (line.empty()) return Next(out);
    CLY_RETURN_IF_ERROR(ParseRowText(*full_schema_, line, &scratch_));
    *out = scratch_.Project(projection_);
    return true;
  }

  const SchemaPtr& output_schema() const override { return out_schema_; }

 private:
  SchemaPtr full_schema_;
  SchemaPtr out_schema_;
  std::vector<int> projection_;
  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  Row scratch_;
};

}  // namespace

Result<std::unique_ptr<TableWriter>> OpenTextTableWriter(
    hdfs::MiniDfs* dfs, const TableDesc& desc) {
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> writer,
                       dfs->Create(desc.path + kDataFile));
  return std::unique_ptr<TableWriter>(
      new TextTableWriter(dfs, desc, std::move(writer)));
}

Result<std::vector<StorageSplit>> ListTextSplits(const hdfs::MiniDfs& dfs,
                                                 const TableDesc& desc) {
  return internal::BuildBlockSplits(dfs, desc, desc.path + kDataFile);
}

Result<std::unique_ptr<RowReader>> OpenTextSplitReader(
    const hdfs::MiniDfs& dfs, const TableDesc& desc, const StorageSplit& split,
    const ScanOptions& options) {
  CLY_ASSIGN_OR_RETURN(std::vector<int> projection,
                       ResolveProjection(*desc.schema, options));
  const std::string data_path = desc.path + kDataFile;
  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<hdfs::DfsReader> reader,
      dfs.Open(data_path, options.reader_node, options.stats));
  uint64_t begin = 0, end = 0;
  internal::BlockByteRange(reader->file_info(), split.index, &begin, &end);
  std::vector<uint8_t> data(end - begin);
  if (!data.empty()) {
    CLY_RETURN_IF_ERROR(reader->PRead(begin, data.data(), data.size()));
  }
  SchemaPtr out_schema = desc.schema->Project(projection);
  return std::unique_ptr<RowReader>(
      new TextSplitReader(desc.schema, std::move(out_schema),
                          std::move(projection), std::move(data)));
}

}  // namespace storage
}  // namespace clydesdale
