#ifndef CLYDESDALE_STORAGE_BYTE_IO_H_
#define CLYDESDALE_STORAGE_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace clydesdale {
namespace storage {

/// Little-endian append-only encoder into a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t len) { PutRaw(data, len); }
  void PutString(std::string_view s) {
    PutU16(static_cast<uint16_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Patches a previously written u32 at `offset` (used for length headers).
  void PatchU32(size_t offset, uint32_t v) {
    std::memcpy(buf_.data() + offset, &v, sizeof(v));
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  void Clear() { buf_.clear(); }

 private:
  void PutRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU16(uint16_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI32(int32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetF64(double* v) { return GetRaw(v, sizeof(*v)); }

  Status GetString(std::string* out) {
    uint16_t n = 0;
    CLY_RETURN_IF_ERROR(GetU16(&n));
    if (remaining() < n) return Truncated();
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated();
    pos_ += n;
    return Status::OK();
  }

 private:
  Status GetRaw(void* out, size_t n) {
    if (remaining() < n) return Truncated();
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  static Status Truncated() {
    return Status::IoError("truncated buffer while decoding");
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_BYTE_IO_H_
