#ifndef CLYDESDALE_STORAGE_COLUMN_CODEC_H_
#define CLYDESDALE_STORAGE_COLUMN_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "schema/row_batch.h"
#include "storage/byte_io.h"

namespace clydesdale {
namespace storage {

// --- CIF v3 per-block encodings ----------------------------------------------
// A v3 column block records one encoding tag in its footer; the payload
// layout depends on the tag. Integer payloads keep 8-byte alignment of the
// packed-word / value lanes (the v3 header is 8 bytes, so payload offsets
// below are relative to an 8-aligned base):
//
//   kEncPlain    raw little-endian value array (identical to v1/v2)
//   kEncRle      [u32 nruns][u32 pad][nruns x i64 value][nruns x u32 length]
//   kEncBitPack  [u8 width][7 pad][ceil(n*width/64) x u64 words]
//                values are non-negative, LSB-first within each word
//   kEncFor      [i64 base][u8 width][7 pad][words]  (frame of reference:
//                value = base + packed delta)
//   kEncDict     v2 dictionary string payload, byte for byte (the leading
//                sub-format byte stays, so v2 string code reads it)
//   kEncDictRle  [u16 dict_size][entries: u8 len + bytes]
//                [u32 nruns][nruns x u8 code][nruns x u32 length]
//
// The writer picks the smallest estimated payload per block, and only ever
// prefers an encoding that is strictly smaller than plain, so pathological
// data degrades to exactly the v2 byte cost.
constexpr uint8_t kEncPlain = 0;
constexpr uint8_t kEncRle = 1;
constexpr uint8_t kEncBitPack = 2;
constexpr uint8_t kEncFor = 3;
constexpr uint8_t kEncDict = 4;
constexpr uint8_t kEncDictRle = 5;
constexpr uint8_t kEncCount = 6;

/// Human-readable tag name ("plain", "rle", ...) for reports and benches.
const char* EncodingName(uint8_t encoding);

// --- Bit-packing kernels -----------------------------------------------------

/// Bits needed to represent `v` (0 -> 0). Widths are clamped to [1, 63] by
/// the writer: width 0 means a constant block, which RLE always wins.
int BitWidth(uint64_t v);

/// Number of u64 words holding `n` values of `width` bits.
inline size_t PackedWordCount(uint64_t n, int width) {
  return static_cast<size_t>((n * static_cast<uint64_t>(width) + 63) / 64);
}

/// Packs n values (each < 2^width) LSB-first into zero-initialized words.
void BitPack(const uint64_t* vals, uint32_t n, int width, uint64_t* words);

/// Extracts value i from packed words. Branchless: a value spans at most
/// two words, and both lanes are always read through a 128-bit shift.
inline uint64_t BitUnpackOne(const uint64_t* words, uint64_t i, int width) {
  const uint64_t bit = i * static_cast<uint64_t>(width);
  const uint64_t word = bit >> 6;
  const unsigned shift = static_cast<unsigned>(bit & 63);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  uint64_t v = words[word] >> shift;
  // Pull in the spill bits from the next word only when the value actually
  // straddles it — a same-word value at the end of the array must not read
  // one word past the allocation.
  if (shift + static_cast<unsigned>(width) > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  return v & mask;
}

/// Unpacks all n values (unrolled inner loop; the decode hot path).
void BitUnpackAll(const uint64_t* words, uint32_t n, int width, uint64_t* out);

// --- Integer block views -----------------------------------------------------

/// A validated, in-place view of one encoded integer payload. Only the
/// members of the active encoding are meaningful. All pointers borrow from
/// the block arena passed to ParseIntPayload.
struct IntBlockView {
  uint8_t encoding = kEncPlain;
  uint32_t nrows = 0;
  // kEncPlain: the raw value array (width per the column type).
  const uint8_t* plain = nullptr;
  // kEncRle.
  uint32_t nruns = 0;
  const int64_t* run_values = nullptr;
  const uint32_t* run_lengths = nullptr;
  // kEncBitPack / kEncFor.
  const uint64_t* words = nullptr;
  int width = 0;
  int64_t base = 0;  // 0 for kEncBitPack

  int64_t PackedAt(uint64_t i) const {
    return base + static_cast<int64_t>(BitUnpackOne(words, i, width));
  }
};

/// Validates an encoded integer payload for in-place access: framing
/// lengths, run-length totals, packed-word counts, and the decoded value
/// range against the column type (so a corrupt FoR base/delta can never
/// materialize an out-of-range int32). Any violation is an IoError.
Status ParseIntPayload(const uint8_t* payload, size_t len, uint32_t nrows,
                       TypeKind type, uint8_t encoding, IntBlockView* view);

/// Fully decodes a validated view into `out` (values in block order).
/// Works for kEncPlain too, so eager readers have one entry point.
void DecodeIntView(const IntBlockView& view, TypeKind type, ColumnVector* out);

// --- Writer-side encoding selection ------------------------------------------

/// One-pass stats the writer derives per integer block.
struct IntBlockStats {
  uint32_t nrows = 0;
  uint32_t nruns = 0;
  int64_t min = 0;
  int64_t max = 0;
};

/// Appends the chosen encoding's payload for an integer column (kInt32 or
/// kInt64) and returns its tag. `stats` receives the min/max/nruns pass the
/// choice was made from (the caller reuses min/max for the zone map).
uint8_t EncodeIntPayload(const ColumnVector& col, ByteWriter* out,
                         IntBlockStats* stats);

}  // namespace storage
}  // namespace clydesdale

#endif  // CLYDESDALE_STORAGE_COLUMN_CODEC_H_
