#ifndef CLYDESDALE_CORE_STAGED_JOIN_H_
#define CLYDESDALE_CORE_STAGED_JOIN_H_

#include <memory>
#include <vector>

#include "core/clydesdale.h"
#include "core/star_query.h"
#include "core/star_schema.h"

namespace clydesdale {
namespace core {

/// The memory-constrained fallback of paper §5.1 ("Discussion"): when the
/// query's dimension hash tables do not all fit in a node's memory together,
/// join with a *group* of tables at a time — each group small enough for the
/// budget — passing the intermediate joined result through HDFS between
/// stages. The final stage also aggregates; earlier stages are map-only.
/// A dimension whose hash table does not fit by itself is joined with a
/// repartition (sort-merge) join instead — the paper's answer "for the case
/// of a single large dimension".

/// Rough per-node memory the hash table of `dim` filtered by `join` needs
/// (upper bound: assumes every row qualifies).
uint64_t EstimateDimHashBytes(const DimTableInfo& dim, const DimJoinSpec& join);

/// One stage of the staged plan: a set of dimensions joined together.
struct StagedGroup {
  /// Indexes into spec.dims, in spec order.
  std::vector<int> dims;
  /// True when the (single) dimension exceeds the budget by itself and must
  /// be joined with a repartition join instead of a hash join.
  bool repartition = false;
};

/// Partitions the query's dimensions (by spec order) into consecutive groups
/// whose estimated combined hash memory stays within `budget_bytes`; an
/// oversized dimension becomes its own repartition group.
Result<std::vector<StagedGroup>> PlanDimGroups(const StarSchema& star,
                                               const StarQuerySpec& spec,
                                               uint64_t budget_bytes);

/// Executes `spec` as a chain of star-join jobs, one per dimension group.
/// Produces exactly the same rows as the single-job plan.
Result<QueryResult> ExecuteStagedStarJoin(
    mr::MrCluster* cluster, std::shared_ptr<const StarSchema> star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options,
    uint64_t budget_bytes);

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_STAGED_JOIN_H_
