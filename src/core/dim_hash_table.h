#ifndef CLYDESDALE_CORE_DIM_HASH_TABLE_H_
#define CLYDESDALE_CORE_DIM_HASH_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/star_query.h"
#include "schema/row.h"
#include "schema/schema.h"

namespace clydesdale {
namespace core {

/// Read-only hash table from a dimension's integer primary key to its
/// auxiliary columns (paper §4.2). Built once per node per query and then
/// shared by all join threads and consecutive tasks; probes need no
/// synchronization because the table never changes after Build.
///
/// Open addressing with linear probing over power-of-two capacity; payloads
/// live out-of-line so slots stay small (key + payload index).
class DimHashTable {
 public:
  struct BuildStats {
    uint64_t input_rows = 0;
    uint64_t entries = 0;
    /// Estimated resident bytes (slots + payload values).
    uint64_t memory_bytes = 0;
  };

  /// Builds from an encoded row stream (the node-local dimension replica):
  /// applies `predicate`, keys by `pk_column`, stores `aux_columns`.
  static Result<std::shared_ptr<const DimHashTable>> Build(
      const Schema& dim_schema, const uint8_t* row_stream, size_t len,
      const Predicate& predicate, const std::string& pk_column,
      const std::vector<std::string>& aux_columns);

  /// The auxiliary row for `key`, or nullptr when the key does not qualify.
  const Row* Probe(int64_t key) const {
    if (capacity_ == 0) return nullptr;
    size_t slot = static_cast<size_t>(Mix64(static_cast<uint64_t>(key))) &
                  (capacity_ - 1);
    while (true) {
      const Slot& s = slots_[slot];
      if (s.payload_index < 0) return nullptr;
      if (s.key == key) return &payloads_[static_cast<size_t>(s.payload_index)];
      slot = (slot + 1) & (capacity_ - 1);
    }
  }

  /// Batch probe over a gathered key column: out[i] = Probe(keys[i]), but
  /// restructured for selection-vector joins. Per stride of keys it hashes
  /// and software-prefetches every home slot up front, then resolves all
  /// lanes with conditional moves, compacting the unresolved lanes and
  /// advancing them together round by round — the hit/miss/continue
  /// decisions never become branches, so random keys cost no branch
  /// mispredictions (the dominant cost of the scalar probe loop).
  void ProbeBatch(const int64_t* keys, int64_t n, const Row** out) const;

  uint64_t entries() const { return stats_.entries; }
  const BuildStats& stats() const { return stats_; }

 private:
  struct Slot {
    int64_t key = 0;
    int32_t payload_index = -1;
  };

  DimHashTable() = default;
  void Insert(int64_t key, Row payload);

  size_t capacity_ = 0;  // power of two
  std::vector<Slot> slots_;
  std::vector<Row> payloads_;
  BuildStats stats_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_DIM_HASH_TABLE_H_
