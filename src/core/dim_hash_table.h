#ifndef CLYDESDALE_CORE_DIM_HASH_TABLE_H_
#define CLYDESDALE_CORE_DIM_HASH_TABLE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "obs/mem_tracker.h"
#include "core/star_query.h"
#include "schema/row.h"
#include "schema/schema.h"

namespace clydesdale {
namespace core {

/// Read-only hash table from a dimension's integer primary key to its
/// auxiliary columns (paper §4.2). Built once per node per query and then
/// shared by all join threads and consecutive tasks; probes need no
/// synchronization because the table never changes after Build.
///
/// Open addressing with linear probing over power-of-two capacity. Keys and
/// payload indexes live in separate parallel arrays (structure of arrays):
/// a probe walks only the 8-byte key lane, so misses — half of all probes in
/// a selective star join — touch half the random-access footprint an
/// interleaved {key, index} slot would cost, and the payload-index lane is
/// read only on hits. Empty slots are marked in the key lane itself with
/// kEmptySlotKey; an entry whose key equals the sentinel is stored out of
/// line (sentinel_payload_index_).
class DimHashTable {
 public:
  struct BuildStats {
    uint64_t input_rows = 0;
    uint64_t entries = 0;
    /// Estimated resident bytes (slots + payload values).
    uint64_t memory_bytes = 0;
  };

  /// Builds from an encoded row stream (the node-local dimension replica):
  /// applies `predicate`, keys by `pk_column`, stores `aux_columns`.
  ///
  /// `tracker` (optional) charges the finished table's memory_bytes against
  /// the job's memory budget: a TryConsume failure aborts the build with
  /// ResourceExhausted (nothing stays consumed), otherwise the table holds
  /// the charge until it is destroyed — exact-byte, release-on-drop.
  static Result<std::shared_ptr<const DimHashTable>> Build(
      const Schema& dim_schema, const uint8_t* row_stream, size_t len,
      const Predicate& predicate, const std::string& pk_column,
      const std::vector<std::string>& aux_columns,
      std::shared_ptr<obs::MemTracker> tracker = nullptr);

  /// Key-lane value marking an empty slot.
  static constexpr int64_t kEmptySlotKey =
      std::numeric_limits<int64_t>::min();

  /// The auxiliary row for `key`, or nullptr when the key does not qualify.
  const Row* Probe(int64_t key) const {
    if (capacity_ == 0) return nullptr;
    if (key == kEmptySlotKey) {
      return sentinel_payload_index_ < 0
                 ? nullptr
                 : &payloads_[static_cast<size_t>(sentinel_payload_index_)];
    }
    size_t slot = HomeSlot(key);
    while (true) {
      const int64_t k = keys_[slot];
      if (k == key) {
        return &payloads_[static_cast<size_t>(payload_index_[slot])];
      }
      if (k == kEmptySlotKey) return nullptr;
      slot = (slot + 1) & (capacity_ - 1);
    }
  }

  /// Membership-only probe: walks the key lane alone, never touching
  /// payload indexes or rows (the storage scan's semi-join filter path).
  bool ContainsKey(int64_t key) const {
    if (capacity_ == 0) return false;
    if (key == kEmptySlotKey) return sentinel_payload_index_ >= 0;
    size_t slot = HomeSlot(key);
    while (true) {
      const int64_t k = keys_[slot];
      if (k == key) return true;
      if (k == kEmptySlotKey) return false;
      slot = (slot + 1) & (capacity_ - 1);
    }
  }

  /// Batch probe over a gathered key column: out[i] = Probe(keys[i]), but
  /// restructured for selection-vector joins. Per stride of keys it hashes
  /// and software-prefetches every home slot up front, then resolves all
  /// lanes with conditional moves, compacting the unresolved lanes and
  /// advancing them together round by round — the hit/miss/continue
  /// decisions never become branches, so random keys cost no branch
  /// mispredictions (the dominant cost of the scalar probe loop).
  void ProbeBatch(const int64_t* keys, int64_t n, const Row** out) const;

  uint64_t entries() const { return stats_.entries; }
  const BuildStats& stats() const { return stats_; }

  /// Smallest/largest stored key (only meaningful when entries() > 0);
  /// lets zone maps refute whole blocks against the key population.
  int64_t min_key() const { return min_key_; }
  int64_t max_key() const { return max_key_; }

 private:
  DimHashTable() = default;
  void Insert(int64_t key, Row payload);

  /// Fibonacci (multiply-shift) hashing: one multiply and a shift, taking
  /// the product's high bits. Half the dependent-latency of a full
  /// finalizer like Mix64, which is what the probe loop waits on when the
  /// table is cache-resident; the golden-ratio constant still disperses
  /// the dense sequential keys dimension PKs actually have.
  size_t HomeSlot(int64_t key) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(key) * UINT64_C(0x9E3779B97F4A7C15)) >>
        shift_);
  }

  size_t capacity_ = 0;  // power of two
  int shift_ = 63;       // 64 - log2(capacity_)
  std::vector<int64_t> keys_;          // kEmptySlotKey marks empties
  std::vector<int32_t> payload_index_;  // parallel to keys_, hits only
  int32_t sentinel_payload_index_ = -1;  // entry keyed kEmptySlotKey, if any
  std::vector<Row> payloads_;
  int64_t min_key_ = std::numeric_limits<int64_t>::max();
  int64_t max_key_ = std::numeric_limits<int64_t>::min();
  BuildStats stats_;
  /// Holds memory_bytes against the build tracker; releases on destruction.
  obs::ScopedMemConsumer mem_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_DIM_HASH_TABLE_H_
