#include "core/star_join_job.h"

#include "core/dim_table_cache.h"

#include <atomic>
#include <thread>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/aggregation.h"
#include "core/vector_probe.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/counters.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job_trace.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "storage/scan_spec.h"

namespace clydesdale {
namespace core {

namespace {

/// The query plan bound to the projected fact schema a task reads.
struct BoundPlan {
  SchemaPtr fact_schema;
  BoundPredicatePtr fact_pred;
  AggLayout agg_layout = AggLayout::For({});
  /// One evaluator per accumulator; null means the constant 1 (COUNT).
  std::vector<BoundScalarPtr> acc_exprs;
  std::vector<int> fk_index;  // per dimension, position in the projected row
  std::vector<GroupSource> group_sources;
  /// Staged-join emit mode (paper §5.1 "Discussion"): instead of
  /// aggregating, emit the joined row projected to these sources.
  bool emit_joined_rows = false;
  std::vector<GroupSource> emit_sources;
};

Result<BoundPlan> BindPlan(const StarQuerySpec& spec,
                           const SchemaPtr& fact_schema,
                           const std::vector<std::string>& emit_columns) {
  BoundPlan plan;
  plan.fact_schema = fact_schema;
  CLY_ASSIGN_OR_RETURN(plan.fact_pred, spec.fact_predicate->Bind(*fact_schema));
  plan.agg_layout = AggLayout::For(spec.aggregates);
  for (int expr_index : plan.agg_layout.expr_index()) {
    if (expr_index < 0) {
      plan.acc_exprs.push_back(nullptr);  // COUNT: input is 1
      continue;
    }
    const AggSpec& agg = spec.aggregates[static_cast<size_t>(expr_index)];
    CLY_ASSIGN_OR_RETURN(BoundScalarPtr e, agg.expr->Bind(*fact_schema));
    plan.acc_exprs.push_back(std::move(e));
  }
  for (const DimJoinSpec& dim : spec.dims) {
    CLY_ASSIGN_OR_RETURN(int fk, fact_schema->Require(dim.fact_fk));
    plan.fk_index.push_back(fk);
  }
  CLY_ASSIGN_OR_RETURN(plan.group_sources,
                       ResolveGroupSources(spec, *fact_schema));
  if (!emit_columns.empty()) {
    plan.emit_joined_rows = true;
    // Each output column is either a carried fact column or a freshly joined
    // dimension's aux column; GroupSource resolution covers both.
    StarQuerySpec emit_spec = spec;
    emit_spec.group_by = emit_columns;
    CLY_ASSIGN_OR_RETURN(plan.emit_sources,
                         ResolveGroupSources(emit_spec, *fact_schema));
  }
  return plan;
}

/// Builds one output row from resolved sources (fact row + matched aux).
Row GatherSources(const std::vector<GroupSource>& sources, const Row& row,
                  const std::vector<const Row*>& matched) {
  Row out;
  out.Reserve(static_cast<int>(sources.size()));
  for (const GroupSource& src : sources) {
    out.Append(src.from_fact
                   ? row.Get(src.fact_index)
                   : matched[static_cast<size_t>(src.dim_index)]->Get(
                         src.aux_index));
  }
  return out;
}

/// Probe/aggregate state of one thread (or one single-threaded task).
struct ProbeSink {
  explicit ProbeSink(AggLayout layout) : agg(std::move(layout)) {}
  HashAggregator agg;
  uint64_t probe_rows = 0;
  uint64_t join_output_rows = 0;
  uint64_t probe_batches = 0;
  /// Non-null when map-side aggregation is off: emit per joined row.
  mr::OutputCollector* direct_out = nullptr;
};

/// One thread's vectorized pipeline over the bound plan (scratch buffers are
/// per-instance, so per-thread).
std::unique_ptr<VectorizedProbe> MakeVectorizedProbe(
    const BoundPlan& plan, const QueryHashTables& tables) {
  std::vector<const DimHashTable*> dim_tables;
  dim_tables.reserve(tables.tables.size());
  for (const auto& t : tables.tables) dim_tables.push_back(t.get());
  std::vector<const BoundScalar*> acc_exprs;
  acc_exprs.reserve(plan.acc_exprs.size());
  for (const auto& e : plan.acc_exprs) acc_exprs.push_back(e.get());
  return std::make_unique<VectorizedProbe>(plan.fact_pred.get(),
                                           plan.fk_index, std::move(dim_tables),
                                           plan.group_sources,
                                           std::move(acc_exprs));
}

/// The inner join+aggregate step for one fact row that already passed the
/// fact predicate. `matched` is scratch of size dims.
Status JoinAndAggregateRow(const BoundPlan& plan, const QueryHashTables& tables,
                           const Row& row, std::vector<const Row*>* matched,
                           ProbeSink* sink) {
  for (size_t d = 0; d < tables.tables.size(); ++d) {
    const Row* aux =
        tables.tables[d]->Probe(row.Get(plan.fk_index[d]).AsInt64());
    if (aux == nullptr) return Status::OK();  // early-out (paper §4.2)
    (*matched)[d] = aux;
  }
  ++sink->join_output_rows;

  if (plan.emit_joined_rows) {
    Row empty_key;
    return sink->direct_out->Collect(
        empty_key, GatherSources(plan.emit_sources, row, *matched));
  }
  Row group_key;
  group_key.Reserve(static_cast<int>(plan.group_sources.size()));
  for (const GroupSource& src : plan.group_sources) {
    group_key.Append(src.from_fact
                         ? row.Get(src.fact_index)
                         : (*matched)[static_cast<size_t>(src.dim_index)]->Get(
                               src.aux_index));
  }
  if (sink->direct_out != nullptr) {
    Row value;
    value.Reserve(static_cast<int>(plan.acc_exprs.size()));
    for (const BoundScalarPtr& e : plan.acc_exprs) {
      value.Append(Value(e == nullptr ? int64_t{1} : e->Eval(row).AsInt64()));
    }
    return sink->direct_out->Collect(group_key, value);
  }
  // Small fixed-size stack buffer; queries have a handful of accumulators.
  int64_t values[16];
  CLY_CHECK(plan.acc_exprs.size() <= 16);
  for (size_t a = 0; a < plan.acc_exprs.size(); ++a) {
    values[a] = plan.acc_exprs[a] == nullptr
                    ? 1
                    : plan.acc_exprs[a]->Eval(row).AsInt64();
  }
  sink->agg.Add(group_key, values);
  return Status::OK();
}

/// Block-iteration probe (B-CIF): the whole filter→probe→aggregate pipeline
/// stays columnar inside VectorizedProbe; this loop just pulls batches and
/// routes them to the sink mode the plan asked for.
Status ProcessBatches(const BoundPlan& plan, storage::BatchReader* reader,
                      int64_t batch_rows, ProbeSink* sink,
                      VectorizedProbe* probe) {
  RowBatch batch(plan.fact_schema);
  while (true) {
    CLY_ASSIGN_OR_RETURN(bool more, reader->NextBatch(&batch, batch_rows));
    if (!more) break;
    if (plan.emit_joined_rows) {
      CLY_RETURN_IF_ERROR(probe->ProcessBatchEmitJoined(
          batch, plan.emit_sources, sink->direct_out));
    } else if (sink->direct_out != nullptr) {
      CLY_RETURN_IF_ERROR(probe->ProcessBatchCollect(batch, sink->direct_out));
    } else {
      CLY_RETURN_IF_ERROR(probe->ProcessBatchAgg(batch, &sink->agg));
    }
  }
  return Status::OK();
}

/// Row-at-a-time probe (plain CIF iteration).
Status ProcessRows(const BoundPlan& plan, const QueryHashTables& tables,
                   storage::RowReader* reader, ProbeSink* sink) {
  Row row;
  std::vector<const Row*> matched(tables.tables.size());
  while (true) {
    CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
    if (!more) break;
    ++sink->probe_rows;
    if (!plan.fact_pred->Eval(row)) continue;
    CLY_RETURN_IF_ERROR(
        JoinAndAggregateRow(plan, tables, row, &matched, sink));
  }
  return Status::OK();
}

/// Adapts a built dimension hash table to the storage scan's semi-join
/// filter interface: a fact row whose foreign key misses the table cannot
/// survive the inner join, so the scan may drop it (and zone maps may drop
/// whole blocks whose key range misses the table's [min_key, max_key]).
/// The table is immutable after Build, so Contains is safe from any thread.
class DimKeyFilter final : public storage::ScanKeyFilter {
 public:
  explicit DimKeyFilter(std::shared_ptr<const DimHashTable> table)
      : table_(std::move(table)) {}

  bool Contains(int64_t key) const override {
    return table_->ContainsKey(key);
  }
  bool RangeMightMatch(int64_t lo, int64_t hi) const override {
    return table_->entries() > 0 &&
           !(hi < table_->min_key() || lo > table_->max_key());
  }

 private:
  std::shared_ptr<const DimHashTable> table_;
};

/// The scan spec for one query given its built hash tables: the fact
/// predicate's pushable conjuncts plus a key filter per *filtered*
/// dimension. Unfiltered dimensions keep (nearly) every key, so testing
/// them per row at scan time is pure overhead — their misses are cheap to
/// drop in the probe instead. Returns nullptr when nothing is pushable.
std::shared_ptr<const storage::ScanSpec> BuildScanSpec(
    const StarQuerySpec& spec, const QueryHashTables& tables) {
  auto scan = std::make_shared<storage::ScanSpec>();
  scan->conjuncts = CollectScanConjuncts(spec.fact_predicate);
  for (size_t d = 0; d < spec.dims.size(); ++d) {
    if (spec.dims[d].predicate->IsTrue()) continue;
    scan->key_filters.push_back(
        {spec.dims[d].fact_fk,
         std::make_shared<DimKeyFilter>(tables.tables[d])});
  }
  if (scan->empty()) return nullptr;
  return scan;
}

Result<std::vector<std::string>> ProjectionFromConf(const mr::JobConf& conf) {
  std::vector<std::string> projection =
      conf.GetList(mr::kConfInputProjection);
  if (projection.empty()) {
    return Status::InvalidArgument(
        "clydesdale jobs must set input.projection");
  }
  return projection;
}

}  // namespace

std::vector<std::string> ClydesdaleCounterNames() {
  return {
      kCounterHashBuilds,  kCounterHashBuildRows, kCounterHashEntries,
      kCounterHashBytes,   kCounterProbeRows,     kCounterJoinOutputRows,
      kCounterProbeBatches, kCounterAggGroups,    kCounterAggBytes,
  };
}

void ApplyTraceConf(const ClydesdaleOptions& options, mr::JobConf* conf) {
  if (options.trace) conf->SetBool(mr::kConfTraceEnabled, true);
  if (!options.trace_dir.empty()) {
    conf->Set(mr::kConfTraceDir, options.trace_dir);
  }
  if (options.metrics) {
    conf->SetBool(mr::kConfMetricsEnabled, true);
    conf->SetInt(mr::kConfMetricsIntervalMs, options.metrics_interval_ms);
  }
  if (options.history) conf->SetBool(mr::kConfHistoryEnabled, true);
  if (options.profile) conf->SetBool(mr::kConfProfileEnabled, true);
  // Tracking defaults on; only an explicit off needs recording in the conf.
  if (!options.mem_tracking) conf->SetBool(mr::kConfMemTrackingEnabled, false);
  if (options.mem_budget_bytes > 0) {
    conf->mem_budget_bytes = options.mem_budget_bytes;
  }
  conf->pipelined_shuffle = options.pipelined_shuffle;
}

Result<std::shared_ptr<QueryHashTables>> BuildQueryHashTables(
    mr::TaskContext* context, const StarSchema& star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options) {
  obs::Span build_span(context->trace(), "hash-build", "stage",
                       context->task_index(), context->node());
  DimTableCache* cache = options.dim_cache.get();
  auto tables = std::make_shared<QueryHashTables>();
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  for (const DimJoinSpec& join : spec.dims) {
    CLY_ASSIGN_OR_RETURN(const DimTableInfo* dim, star.dim(join.dimension));
    std::shared_ptr<const DimHashTable> table;
    // One build closure either way; the CLY_HASH_* counters fire only on
    // builds that actually ran, so a cache-warm query carries none.
    auto build = [&](const std::shared_ptr<obs::MemTracker>& tracker)
        -> Result<std::shared_ptr<const DimHashTable>> {
      CLY_ASSIGN_OR_RETURN(hdfs::BlockBuffer bytes,
                           ReadDimensionReplica(context, *dim));
      CLY_ASSIGN_OR_RETURN(
          std::shared_ptr<const DimHashTable> built,
          DimHashTable::Build(*dim->desc.schema, bytes->data(), bytes->size(),
                              *join.predicate, join.dim_pk, join.aux_columns,
                              tracker));
      context->counters()->Add(kCounterHashBuilds, 1);
      context->counters()->Add(kCounterHashBuildRows,
                               static_cast<int64_t>(built->stats().input_rows));
      context->counters()->Add(kCounterHashEntries,
                               static_cast<int64_t>(built->stats().entries));
      context->counters()->Add(
          kCounterHashBytes, static_cast<int64_t>(built->stats().memory_bytes));
      return built;
    };
    if (cache != nullptr) {
      // Serving mode: the table lives (and is byte-charged) in the
      // cross-query cache. Keyed on the catalog version so a reload makes
      // every entry built from the old data unreachable.
      DimCacheKey key;
      key.table_path = dim->desc.path;
      key.version = context->cluster()->table_version(dim->desc.path);
      key.filter_fingerprint =
          FilterFingerprint(*join.predicate, join.dim_pk, join.aux_columns);
      bool hit = false;
      CLY_ASSIGN_OR_RETURN(table, cache->GetOrBuild(key, build, &hit));
      ++(hit ? cache_hits : cache_misses);
    } else {
      // Tables outlive this attempt (JVM reuse shares them across tasks), so
      // they charge the per-(job, node) tracker, not the attempt's. A budget
      // breach surfaces here as ResourceExhausted, failing the build cleanly.
      CLY_ASSIGN_OR_RETURN(table, build(context->job_mem_tracker()));
    }
    tables->total_memory_bytes += table->stats().memory_bytes;
    tables->tables.push_back(std::move(table));
  }
  if (cache != nullptr) {
    mr::AddDimCacheCounters(cache_hits, cache_misses, /*evictions=*/0,
                            cache->stats().resident_bytes,
                            context->counters());
  }
  return tables;
}

Result<std::shared_ptr<QueryHashTables>> GetOrBuildHashTables(
    mr::TaskContext* context, const StarSchema& star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options) {
  // The JVM-reuse amortisation, made visible: the first task on a node pays
  // a nested "hash-build"; later tasks' "hash-tables" spans are near-zero.
  obs::Span amortise_span(context->trace(), "hash-tables", "stage",
                          context->task_index(), context->node());
  Status build_status;
  std::shared_ptr<QueryHashTables> tables =
      context->shared_state()->GetOrCreate<QueryHashTables>(
          StrCat("clydesdale.hash.", spec.id),
          [&]() -> std::shared_ptr<QueryHashTables> {
            auto built = BuildQueryHashTables(context, star, spec, options);
            if (!built.ok()) {
              build_status = built.status();
              return nullptr;
            }
            return *built;
          });
  if (tables == nullptr) {
    return build_status.ok()
               ? Status::Internal("hash-table build failed on another task")
               : build_status;
  }
  return tables;
}

// ---------------------------------------------------------------------------
// StarJoinMapRunner (MTMapRunner)
// ---------------------------------------------------------------------------

Status StarJoinMapRunner::Run(const mr::InputSplit& split,
                              mr::InputFormat* input_format,
                              mr::TaskContext* context,
                              mr::OutputCollector* out) {
  (void)input_format;
  const mr::JobConf& conf = context->conf();
  // buildHashTables(conf) — once per node thanks to the shared state.
  CLY_ASSIGN_OR_RETURN(std::shared_ptr<QueryHashTables> tables,
                       GetOrBuildHashTables(context, *star_, spec_, options_));

  CLY_ASSIGN_OR_RETURN(storage::TableDesc fact_desc,
                       context->cluster()->GetTable(star_->fact().path));
  CLY_ASSIGN_OR_RETURN(std::vector<std::string> projection,
                       ProjectionFromConf(conf));
  std::vector<int> projection_idx;
  for (const std::string& c : projection) {
    CLY_ASSIGN_OR_RETURN(int i, fact_desc.schema->Require(c));
    projection_idx.push_back(i);
  }
  const std::vector<std::string> emit_columns =
      conf.GetList(kConfJoinEmitColumns);
  CLY_ASSIGN_OR_RETURN(
      BoundPlan plan,
      BindPlan(spec_, fact_desc.schema->Project(projection_idx), emit_columns));

  // input.getMultipleReaders(): every thread pulls constituents off a queue
  // and opens its own reader — no shared RecordReader bottleneck (§5.1).
  const std::vector<const storage::StorageSplit*> constituents =
      split.Constituents();
  const int num_threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(context->allowed_threads(), 1)),
      std::max<size_t>(constituents.size(), 1)));

  // Late materialization: hand the scan the fact conjuncts and the filtered
  // dimensions' key sets so v2 CIF blocks can be pruned before decode. The
  // probe re-evaluates the full predicate, so results don't depend on it.
  const std::shared_ptr<const storage::ScanSpec> scan_spec =
      options_.late_materialize ? BuildScanSpec(spec_, *tables) : nullptr;

  std::atomic<size_t> next{0};
  std::vector<Status> statuses(static_cast<size_t>(num_threads));
  std::vector<std::unique_ptr<ProbeSink>> sinks;
  std::vector<hdfs::IoStats> io(static_cast<size_t>(num_threads));
  std::vector<storage::ScanStats> scan_stats(static_cast<size_t>(num_threads));
  const AggLayout layout = AggLayout::For(spec_.aggregates);
  for (int t = 0; t < num_threads; ++t) {
    sinks.push_back(std::make_unique<ProbeSink>(layout));
    if (!options_.map_side_agg || plan.emit_joined_rows) {
      sinks.back()->direct_out = out;
    }
  }

  // Per-thread profiler cells (filled only when profiling is on): the CIF
  // open is the scan (eager load/decode), the Process* loop is the probe.
  const bool profiled = context->profile_enabled();
  struct ThreadProfile {
    uint64_t scan_wall_ns = 0, scan_cpu_ns = 0, scan_opens = 0;
    uint64_t probe_wall_ns = 0, probe_cpu_ns = 0;
  };
  std::vector<ThreadProfile> thread_profiles(static_cast<size_t>(num_threads));

  auto worker = [&](int t) {
    // One probe span per worker thread: the fused scan/filter/probe/agg
    // pipeline over this thread's share of the constituents.
    obs::Span probe_span(context->trace(), "probe", "stage",
                         context->task_index(), context->node());
    ProbeSink* sink = sinks[static_cast<size_t>(t)].get();
    // Partial-aggregate tables are attempt-scoped: charge this attempt's
    // tracker (synced on container growth, released at task end).
    if (context->mem_tracker() != nullptr) {
      sink->agg.AttachMemTracker(context->mem_tracker());
    }
    ThreadProfile* prof = &thread_profiles[static_cast<size_t>(t)];
    std::unique_ptr<VectorizedProbe> vec;
    if (options_.block_iteration) vec = MakeVectorizedProbe(plan, *tables);
    while (true) {
      const size_t mine = next.fetch_add(1, std::memory_order_relaxed);
      if (mine >= constituents.size()) break;
      storage::ScanOptions scan;
      scan.projection = projection;
      scan.reader_node = context->node();
      scan.stats = &io[static_cast<size_t>(t)];
      scan.scan_spec = scan_spec;
      scan.late_materialize = options_.late_materialize;
      scan.prefetch = options_.scan_prefetch;
      scan.expose_runs = options_.expose_runs;
      scan.scan_stats = &scan_stats[static_cast<size_t>(t)];
      scan.mem_reporter = context->mem_tracker();
      Status st;
      Stopwatch split_timer;
      int64_t cpu0 = profiled ? obs::ThreadCpuNanos() : 0;
      auto mark_scan_done = [&] {
        if (!profiled) return;
        const int64_t cpu1 = obs::ThreadCpuNanos();
        prof->scan_wall_ns += static_cast<uint64_t>(split_timer.ElapsedNanos());
        prof->scan_cpu_ns += static_cast<uint64_t>(cpu1 - cpu0);
        ++prof->scan_opens;
        split_timer.Restart();
        cpu0 = cpu1;
      };
      if (options_.block_iteration) {
        auto reader = storage::OpenSplitBatchReader(
            *context->cluster()->dfs(), fact_desc, *constituents[mine], scan);
        mark_scan_done();
        st = reader.ok() ? ProcessBatches(plan, reader->get(),
                                          options_.batch_rows, sink, vec.get())
                         : reader.status();
      } else {
        auto reader = storage::OpenSplitRowReader(
            *context->cluster()->dfs(), fact_desc, *constituents[mine], scan);
        mark_scan_done();
        st = reader.ok() ? ProcessRows(plan, *tables, reader->get(), sink)
                         : reader.status();
      }
      if (profiled) {
        prof->probe_wall_ns +=
            static_cast<uint64_t>(split_timer.ElapsedNanos());
        prof->probe_cpu_ns +=
            static_cast<uint64_t>(obs::ThreadCpuNanos() - cpu0);
      }
      if (!st.ok()) {
        statuses[static_cast<size_t>(t)] = st;
        break;
      }
    }
    if (vec != nullptr) {
      sink->probe_rows += vec->stats().rows_in;
      sink->join_output_rows += vec->stats().join_rows;
      sink->probe_batches += vec->stats().batches;
    }
  };

  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
    for (std::thread& th : threads) th.join();
  }

  uint64_t probe_rows = 0, join_rows = 0, probe_batches = 0;
  uint64_t agg_groups = 0, agg_bytes = 0;
  storage::ScanStats scan_totals;
  for (int t = 0; t < num_threads; ++t) {
    CLY_RETURN_IF_ERROR(statuses[static_cast<size_t>(t)]);
    context->MergeIoStats(io[static_cast<size_t>(t)]);
    scan_totals.MergeFrom(scan_stats[static_cast<size_t>(t)]);
    ProbeSink* sink = sinks[static_cast<size_t>(t)].get();
    probe_rows += sink->probe_rows;
    join_rows += sink->join_output_rows;
    probe_batches += sink->probe_batches;
    agg_groups += sink->agg.num_groups();
    agg_bytes += sink->agg.memory_bytes();
    if (context->histograms() != nullptr && sink->probe_rows > 0) {
      context->histograms()
          ->Get(kHistProbeHitPct)
          ->Record(static_cast<int64_t>(100 * sink->join_output_rows /
                                        sink->probe_rows));
    }
  }
  context->counters()->Add(kCounterProbeRows,
                           static_cast<int64_t>(probe_rows));
  context->counters()->Add(kCounterJoinOutputRows,
                           static_cast<int64_t>(join_rows));
  context->counters()->Add(mr::kCounterMapInputRecords,
                           static_cast<int64_t>(probe_rows));
  if (probe_batches > 0) {
    context->counters()->Add(kCounterProbeBatches,
                             static_cast<int64_t>(probe_batches));
  }
  mr::AddCifScanCounters(scan_totals, context->counters());
  if (options_.map_side_agg && !plan.emit_joined_rows) {
    context->counters()->Add(kCounterAggGroups,
                             static_cast<int64_t>(agg_groups));
    context->counters()->Add(kCounterAggBytes,
                             static_cast<int64_t>(agg_bytes));
  }

  uint64_t agg_wall_ns = 0, agg_cpu_ns = 0, merged_groups = 0;
  uint64_t merged_agg_bytes = 0;
  const bool aggregated = options_.map_side_agg && !plan.emit_joined_rows;
  if (aggregated) {
    // Merge the per-thread partial aggregates and emit once.
    obs::Span agg_span(context->trace(), "aggregate", "stage",
                       context->task_index(), context->node());
    Stopwatch agg_timer;
    const int64_t agg_cpu0 = profiled ? obs::ThreadCpuNanos() : 0;
    for (int t = 1; t < num_threads; ++t) {
      sinks[0]->agg.MergeFrom(sinks[static_cast<size_t>(t)]->agg);
    }
    merged_groups = static_cast<uint64_t>(sinks[0]->agg.num_groups());
    merged_agg_bytes = sinks[0]->agg.memory_bytes();
    CLY_RETURN_IF_ERROR(sinks[0]->agg.Emit(out));
    if (profiled) {
      agg_wall_ns = static_cast<uint64_t>(agg_timer.ElapsedNanos());
      agg_cpu_ns = static_cast<uint64_t>(obs::ThreadCpuNanos() - agg_cpu0);
    }
  }

  if (profiled) {
    // aggregate → probe → scan: the attempt's plan subtree. Wall sums over
    // worker threads (total work); wall_max keeps the slowest thread's
    // pipeline (critical path within the attempt).
    obs::OperatorProfile scan;
    obs::OperatorProfile probe;
    {
      uint64_t scan_wall = 0, scan_wall_max = 0, scan_cpu = 0, opens = 0;
      uint64_t probe_wall = 0, probe_wall_max = 0, probe_cpu = 0;
      for (const ThreadProfile& tp : thread_profiles) {
        scan_wall += tp.scan_wall_ns;
        scan_wall_max = std::max(scan_wall_max, tp.scan_wall_ns);
        scan_cpu += tp.scan_cpu_ns;
        opens += tp.scan_opens;
        probe_wall += tp.probe_wall_ns;
        probe_wall_max = std::max(probe_wall_max, tp.probe_wall_ns);
        probe_cpu += tp.probe_cpu_ns;
      }
      scan = mr::ScanProfileNode(StrCat("scan:", star_->fact().path),
                                 scan_totals, scan_wall, scan_cpu);
      scan.wall_max_ns = scan_wall_max;
      scan.batches = opens;
      probe.name = "probe";
      probe.kind = "probe";
      probe.rows_in = probe_rows;
      probe.rows_out = join_rows;
      probe.batches = probe_batches;
      probe.wall_ns = probe_wall;
      probe.wall_max_ns = probe_wall_max;
      probe.cpu_ns = probe_cpu;
      // The probe holds the node's dimension hash tables resident for the
      // whole task; shared across threads, so current == peak.
      probe.mem_current_bytes = tables->total_memory_bytes;
      probe.mem_peak_bytes = tables->total_memory_bytes;
      probe.tasks = 1;
    }
    probe.children.push_back(std::move(scan));
    if (aggregated) {
      obs::OperatorProfile aggregate;
      aggregate.name = "aggregate";
      aggregate.kind = "aggregate";
      aggregate.rows_in = join_rows;
      aggregate.rows_out = merged_groups;
      aggregate.wall_ns = agg_wall_ns;
      aggregate.wall_max_ns = agg_wall_ns;
      aggregate.cpu_ns = agg_cpu_ns;
      // Peak: every thread's partial table resident at once (pre-merge);
      // current: the single merged table that Emit walked.
      aggregate.mem_current_bytes = merged_agg_bytes;
      aggregate.mem_peak_bytes = std::max(agg_bytes, merged_agg_bytes);
      aggregate.tasks = 1;
      aggregate.children.push_back(std::move(probe));
      context->AddProfileOperator(std::move(aggregate));
    } else {
      context->AddProfileOperator(std::move(probe));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StarJoinMapper (single-threaded ablation path)
// ---------------------------------------------------------------------------

struct StarJoinMapper::TaskState {
  explicit TaskState(AggLayout layout) : sink(std::move(layout)) {}
  std::shared_ptr<QueryHashTables> tables;
  BoundPlan plan;
  ProbeSink sink;
  std::vector<const Row*> matched;
};

Status StarJoinMapper::Setup(mr::TaskContext* context) {
  state_ = std::make_shared<TaskState>(AggLayout::For(spec_.aggregates));
  if (context->mem_tracker() != nullptr) {
    state_->sink.agg.AttachMemTracker(context->mem_tracker());
  }
  CLY_ASSIGN_OR_RETURN(state_->tables,
                       GetOrBuildHashTables(context, *star_, spec_, options_));
  CLY_ASSIGN_OR_RETURN(storage::TableDesc fact_desc,
                       context->cluster()->GetTable(star_->fact().path));
  CLY_ASSIGN_OR_RETURN(std::vector<std::string> projection,
                       ProjectionFromConf(context->conf()));
  std::vector<int> projection_idx;
  for (const std::string& c : projection) {
    CLY_ASSIGN_OR_RETURN(int i, fact_desc.schema->Require(c));
    projection_idx.push_back(i);
  }
  CLY_ASSIGN_OR_RETURN(
      state_->plan,
      BindPlan(spec_, fact_desc.schema->Project(projection_idx),
               context->conf().GetList(kConfJoinEmitColumns)));
  state_->matched.resize(spec_.dims.size());
  return Status::OK();
}

Status StarJoinMapper::Map(const Row& key, const Row& value,
                           mr::TaskContext* context, mr::OutputCollector* out) {
  (void)key;
  (void)context;
  TaskState* s = state_.get();
  if (!options_.map_side_agg || s->plan.emit_joined_rows) {
    s->sink.direct_out = out;
  }
  ++s->sink.probe_rows;
  if (!s->plan.fact_pred->Eval(value)) return Status::OK();
  return JoinAndAggregateRow(s->plan, *s->tables, value, &s->matched,
                             &s->sink);
}

Status StarJoinMapper::Cleanup(mr::TaskContext* context,
                               mr::OutputCollector* out) {
  TaskState* s = state_.get();
  context->counters()->Add(kCounterProbeRows,
                           static_cast<int64_t>(s->sink.probe_rows));
  context->counters()->Add(kCounterJoinOutputRows,
                           static_cast<int64_t>(s->sink.join_output_rows));
  if (context->histograms() != nullptr && s->sink.probe_rows > 0) {
    context->histograms()
        ->Get(kHistProbeHitPct)
        ->Record(static_cast<int64_t>(100 * s->sink.join_output_rows /
                                      s->sink.probe_rows));
  }
  if (options_.map_side_agg && !s->plan.emit_joined_rows) {
    CLY_RETURN_IF_ERROR(s->sink.agg.Emit(out));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace clydesdale
