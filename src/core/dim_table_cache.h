#ifndef CLYDESDALE_CORE_DIM_TABLE_CACHE_H_
#define CLYDESDALE_CORE_DIM_TABLE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/dim_hash_table.h"
#include "obs/mem_tracker.h"

namespace clydesdale {
namespace core {

/// Identity of one built dimension hash table in the cross-query cache
/// (serving mode, DESIGN.md §15): the dimension's DFS path, the catalog
/// version of that path when the build started (MrCluster::table_version —
/// reloading the table bumps it, so an entry built from stale data can never
/// be probed again), and a fingerprint of everything that shapes the build
/// output.
struct DimCacheKey {
  std::string table_path;
  int64_t version = 0;
  uint64_t filter_fingerprint = 0;

  bool operator==(const DimCacheKey& other) const {
    return version == other.version &&
           filter_fingerprint == other.filter_fingerprint &&
           table_path == other.table_path;
  }
};

struct DimCacheKeyHash {
  size_t operator()(const DimCacheKey& key) const;
};

/// Fingerprint of the build-shaping parts of a dimension join: the predicate
/// tree (via its canonical ToString rendering), the key column, and the aux
/// column list. Two joins with equal fingerprints build byte-identical
/// tables from the same table version.
uint64_t FilterFingerprint(const Predicate& predicate,
                           const std::string& pk_column,
                           const std::vector<std::string>& aux_columns);

struct DimTableCacheStats {
  int64_t hits = 0;    ///< Lookups served without building (incl. in-flight).
  int64_t misses = 0;  ///< Lookups that became the building leader.
  /// Hits that joined another query's in-flight build instead of finding a
  /// finished entry (the single-flight path; also counted in `hits`).
  int64_t shared_builds = 0;
  int64_t evictions = 0;
  /// Sum of resident entries' memory_bytes — the LRU ledger. Evicted-but-
  /// still-referenced tables are *not* in this figure; their real bytes stay
  /// on the MemTracker until the last query drops its reference.
  int64_t resident_bytes = 0;
  int64_t entries = 0;
};

/// Cluster-wide, memory-budgeted LRU cache of built DimHashTables — the
/// serving-mode extension of the paper's JVM-reuse amortization (§5.2): where
/// JVM reuse shares one build across the tasks of a single job, this cache
/// shares it across *queries*, turning repeated star queries into probe-only
/// work.
///
/// Concurrency: GetOrBuild single-flights — the first query needing a key
/// becomes the build leader and runs `builder` outside the cache lock; any
/// concurrent query needing the same key blocks until the leader finishes
/// and shares the one table (one build, one MemTracker charge). Finished
/// tables are immutable and handed out as shared_ptr<const DimHashTable>, so
/// concurrent jobs probe them with no synchronization.
///
/// Memory: every build charges the cache's dedicated MemTracker (a child of
/// the parent passed in — typically the cluster root, so cache + running
/// jobs answer to one budget). Eviction drops the cache's reference when the
/// resident ledger exceeds capacity_bytes, but the bytes leave the tracker
/// only when the last in-flight query drops its shared_ptr: DimHashTable
/// holds its charge in a ScopedMemConsumer released on destruction.
///
/// A failed build propagates its Status to every waiter and removes the
/// slot, so a later query retries instead of caching the failure.
class DimTableCache {
 public:
  struct Options {
    /// Eviction threshold over the resident-bytes ledger; 0 = unbounded.
    uint64_t capacity_bytes = 0;
  };

  /// Builds the table for a key on miss; receives the cache's MemTracker to
  /// charge the build against (pass it to DimHashTable::Build).
  using Builder = std::function<Result<std::shared_ptr<const DimHashTable>>(
      const std::shared_ptr<obs::MemTracker>& tracker)>;

  explicit DimTableCache(Options options,
                         std::shared_ptr<obs::MemTracker> parent = nullptr);

  DimTableCache(const DimTableCache&) = delete;
  DimTableCache& operator=(const DimTableCache&) = delete;

  /// Returns the table for `key`, building it via `builder` at most once
  /// across all concurrent callers. `hit` (optional) reports whether this
  /// caller avoided a build — true for resident entries and for joining an
  /// in-flight build, false only for the leader.
  Result<std::shared_ptr<const DimHashTable>> GetOrBuild(
      const DimCacheKey& key, const Builder& builder, bool* hit = nullptr);

  /// Drops every entry (any version, any fingerprint) built from
  /// `table_path`, including in-flight builds (their result is handed to
  /// waiters but never becomes resident). Explicit invalidation; the version
  /// in the key already makes reloaded tables unreachable implicitly.
  void Invalidate(const std::string& table_path);

  /// Drops every entry.
  void Clear();

  DimTableCacheStats stats() const;

  const std::shared_ptr<obs::MemTracker>& mem_tracker() const {
    return tracker_;
  }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Slot {
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const DimHashTable> table;
    /// In lru_ + the resident-bytes ledger (done, mapped, not invalidated).
    bool resident = false;
    std::list<DimCacheKey>::iterator lru_it;
  };

  /// Evicts from the LRU tail until the ledger fits capacity, never evicting
  /// `keep` (the entry the current caller is about to use). Caller holds mu_.
  void EvictWhileOverLocked(const DimCacheKey& keep);
  /// Removes one resident entry from the LRU + ledger. Caller holds mu_.
  void DropResidencyLocked(Slot* slot);

  const Options options_;
  std::shared_ptr<obs::MemTracker> tracker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Signaled when any in-flight build ends.
  std::unordered_map<DimCacheKey, std::shared_ptr<Slot>, DimCacheKeyHash> map_;
  std::list<DimCacheKey> lru_;  ///< Front = most recently used.
  DimTableCacheStats stats_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_DIM_TABLE_CACHE_H_
