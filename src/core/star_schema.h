#ifndef CLYDESDALE_CORE_STAR_SCHEMA_H_
#define CLYDESDALE_CORE_STAR_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/engine.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace core {

/// One dimension table: the master copy in HDFS plus the path under which a
/// replica is cached on every node's local disk (paper §4, Figure 2).
struct DimTableInfo {
  std::string name;
  storage::TableDesc desc;
  /// LocalStore path of the per-node replica (EncodeRowStream bytes).
  std::string local_path;
  /// Primary key column name.
  std::string pk;
};

/// The fact table plus its dimensions — what a Clydesdale deployment
/// registers before running queries.
class StarSchema {
 public:
  StarSchema() = default;
  StarSchema(storage::TableDesc fact, std::vector<DimTableInfo> dims);

  const storage::TableDesc& fact() const { return fact_; }
  storage::TableDesc* mutable_fact() { return &fact_; }

  Result<const DimTableInfo*> dim(const std::string& name) const;
  const std::map<std::string, DimTableInfo>& dims() const { return dims_; }

  void AddDimension(DimTableInfo info);

 private:
  storage::TableDesc fact_;
  std::map<std::string, DimTableInfo> dims_;
};

/// Copies a dimension's master data from HDFS onto every node's local disk
/// (the install step in paper §4; new nodes or nodes with failed disks call
/// it again).
Status ReplicateDimensionToAllNodes(mr::MrCluster* cluster,
                                    const DimTableInfo& dim);

/// Task-side access to a dimension replica: reads the node-local copy, or —
/// if this node lost it — re-fetches from HDFS and restores the local copy.
/// Returns the raw row-stream bytes and accounts the local read to `context`.
Result<hdfs::BlockBuffer> ReadDimensionReplica(mr::TaskContext* context,
                                               const DimTableInfo& dim);

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_STAR_SCHEMA_H_
