#ifndef CLYDESDALE_CORE_CLYDESDALE_H_
#define CLYDESDALE_CORE_CLYDESDALE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/star_join_job.h"
#include "core/star_query.h"
#include "core/star_schema.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace core {

/// The result of executing a star query through an engine: ordered result
/// rows plus the per-MR-stage execution reports the cost model replays.
struct QueryResult {
  std::vector<Row> rows;
  std::vector<mr::JobReport> stage_reports;
  double wall_seconds = 0;
  /// Serving mode only: this result was an exact-repeat answer served from
  /// the query server's result cache — no MapReduce job ran.
  bool from_result_cache = false;

  /// Sum of a counter across stages.
  int64_t Counter(const std::string& name) const;
};

/// Clydesdale: the star-join engine of the paper. One star query executes as
/// a single MapReduce job — the map side builds per-node shared dimension
/// hash tables and probes them while scanning the fact table columnar; the
/// reduce side finishes the aggregation; the ORDER BY is a client-side sort
/// (paper §4.2, Figure 3).
class ClydesdaleEngine {
 public:
  ClydesdaleEngine(mr::MrCluster* cluster, StarSchema star,
                   ClydesdaleOptions options = {});

  const ClydesdaleOptions& options() const { return options_; }
  const StarSchema& star() const { return *star_; }

  Result<QueryResult> Execute(const StarQuerySpec& spec);

 private:
  mr::MrCluster* cluster_;
  std::shared_ptr<const StarSchema> star_;
  ClydesdaleOptions options_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_CLYDESDALE_H_
