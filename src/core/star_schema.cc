#include "core/star_schema.h"

#include "common/strings.h"
#include "storage/binary_row_format.h"

namespace clydesdale {
namespace core {

StarSchema::StarSchema(storage::TableDesc fact, std::vector<DimTableInfo> dims)
    : fact_(std::move(fact)) {
  for (DimTableInfo& dim : dims) AddDimension(std::move(dim));
}

Result<const DimTableInfo*> StarSchema::dim(const std::string& name) const {
  auto it = dims_.find(name);
  if (it == dims_.end()) {
    return Status::NotFound(StrCat("no dimension '", name, "' registered"));
  }
  return &it->second;
}

void StarSchema::AddDimension(DimTableInfo info) {
  dims_[info.name] = std::move(info);
}

namespace {
/// Reads the dimension master from HDFS into row-stream bytes.
Result<std::vector<uint8_t>> FetchDimensionMaster(mr::MrCluster* cluster,
                                                  const DimTableInfo& dim,
                                                  hdfs::IoStats* stats,
                                                  hdfs::NodeId reader_node) {
  storage::ScanOptions options;
  options.reader_node = reader_node;
  options.stats = stats;
  CLY_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      storage::ScanTableToVector(*cluster->dfs(), dim.desc, options));
  return storage::EncodeRowStream(rows);
}
}  // namespace

Status ReplicateDimensionToAllNodes(mr::MrCluster* cluster,
                                    const DimTableInfo& dim) {
  hdfs::IoStats stats;
  CLY_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      FetchDimensionMaster(cluster, dim, &stats, hdfs::kNoNode));
  const hdfs::BlockBuffer shared = hdfs::MakeBlockBuffer(std::move(bytes));
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    CLY_RETURN_IF_ERROR(
        cluster->local_store(n)->WriteShared(dim.local_path, shared));
  }
  return Status::OK();
}

Result<hdfs::BlockBuffer> ReadDimensionReplica(mr::TaskContext* context,
                                               const DimTableInfo& dim) {
  hdfs::LocalStore* store = context->local_store();
  Result<hdfs::BlockBuffer> local = store->Read(dim.local_path);
  if (local.ok()) {
    context->AddLocalDiskBytes((*local)->size());
    return local;
  }
  // Local copy lost (disk failure / fresh node): restore from the master
  // copy in HDFS (paper §4), then serve it.
  CLY_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      FetchDimensionMaster(context->cluster(), dim, context->io_stats(),
                           context->node()));
  const hdfs::BlockBuffer shared = hdfs::MakeBlockBuffer(std::move(bytes));
  CLY_RETURN_IF_ERROR(store->WriteShared(dim.local_path, shared));
  context->AddLocalDiskBytes(shared->size());
  return shared;
}

}  // namespace core
}  // namespace clydesdale
