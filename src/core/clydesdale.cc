#include "core/clydesdale.h"

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/aggregation.h"
#include "core/staged_join.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/input_format.h"
#include "storage/scan_spec.h"

namespace clydesdale {
namespace core {

int64_t QueryResult::Counter(const std::string& name) const {
  int64_t total = 0;
  for (const mr::JobReport& report : stage_reports) {
    total += report.counters.Get(name);
  }
  return total;
}

ClydesdaleEngine::ClydesdaleEngine(mr::MrCluster* cluster, StarSchema star,
                                   ClydesdaleOptions options)
    : cluster_(cluster),
      star_(std::make_shared<const StarSchema>(std::move(star))),
      options_(options) {}

Result<QueryResult> ClydesdaleEngine::Execute(const StarQuerySpec& spec) {
  // Memory-constrained fallback (paper §5.1): if the dimension hash tables
  // will not all fit the per-node budget, join in stages instead.
  if (options_.max_hash_memory_bytes > 0) {
    uint64_t estimate = 0;
    for (const DimJoinSpec& join : spec.dims) {
      CLY_ASSIGN_OR_RETURN(const DimTableInfo* dim, star_->dim(join.dimension));
      estimate += EstimateDimHashBytes(*dim, join);
    }
    if (estimate > options_.max_hash_memory_bytes) {
      return ExecuteStagedStarJoin(cluster_, star_, spec, options_,
                                   options_.max_hash_memory_bytes);
    }
  }

  Stopwatch timer;
  mr::JobConf conf;
  conf.job_name = StrCat("clydesdale-", spec.id);
  conf.num_reduce_tasks = options_.reduce_tasks;
  conf.jvm_reuse = options_.jvm_reuse;
  conf.single_task_per_node = options_.multithreaded;
  ApplyTraceConf(options_, &conf);
  if (options_.mem_budget_bytes > 0) {
    // Admission control: hand the engine the same dimension-table estimate
    // the staged fallback uses, so RunJob can reject the query up front
    // instead of failing mid-build on the job tracker's limit.
    uint64_t estimate = 0;
    for (const DimJoinSpec& join : spec.dims) {
      CLY_ASSIGN_OR_RETURN(const DimTableInfo* dim, star_->dim(join.dimension));
      estimate += EstimateDimHashBytes(*dim, join);
    }
    conf.SetInt(mr::kConfMemEstimateBytes, static_cast<int64_t>(estimate));
  }

  conf.Set(mr::kConfInputTable, star_->fact().path);
  // Columnar pushdown: only the query's fact columns; the §6.5 ablation
  // reads every column instead.
  std::vector<std::string> projection = FactColumnsFor(spec);
  if (!options_.columnar) {
    projection.clear();
    for (const Field& f : star_->fact().schema->fields()) {
      projection.push_back(f.name);
    }
  }
  conf.SetList(mr::kConfInputProjection, projection);
  conf.SetInt(mr::kConfMultiSplitSize, options_.multisplit_size);
  conf.SetBool(mr::kConfCifLateMaterialize, options_.late_materialize);
  conf.SetBool(mr::kConfCifPrefetch, options_.scan_prefetch);
  if (options_.late_materialize) {
    // Fact-predicate pushdown for the generic reader path (the
    // single-threaded ablation); the MT runner builds a richer spec with
    // dimension key filters once its hash tables exist.
    auto scan = std::make_shared<storage::ScanSpec>();
    scan->conjuncts = CollectScanConjuncts(spec.fact_predicate);
    if (!scan->empty()) conf.scan_spec = std::move(scan);
  }

  const std::shared_ptr<const StarSchema> star = star_;
  const ClydesdaleOptions options = options_;
  if (options_.multithreaded) {
    conf.input_format_factory = [] {
      return std::make_unique<mr::MultiCifInputFormat>();
    };
    conf.map_runner_factory = [star, spec, options] {
      return std::make_unique<StarJoinMapRunner>(star, spec, options);
    };
  } else {
    conf.input_format_factory = [] {
      return std::make_unique<mr::TableInputFormat>();
    };
    conf.mapper_factory = [star, spec, options] {
      return std::make_unique<StarJoinMapper>(star, spec, options);
    };
  }
  const AggLayout layout = AggLayout::For(spec.aggregates);
  conf.reducer_factory = [layout] {
    return std::make_unique<AggReducer>(layout);
  };
  if (!options_.map_side_agg) {
    // Per-row emission: combine before the shuffle instead (paper §4.2).
    conf.combiner_factory = [layout] {
      return std::make_unique<AggReducer>(layout, "combine");
    };
  }
  conf.output_format_factory = [] {
    return std::make_unique<mr::MemoryOutputFormat>();
  };

  CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster_, conf));

  QueryResult result;
  result.rows = std::move(job.output_rows);
  // Finalize accumulators (AVG -> sum/count), then sortResult(): the final
  // ORDER BY is a single-process sort (Figure 4, line 33).
  CLY_RETURN_IF_ERROR(FinalizeAggRows(spec, &result.rows));
  CLY_RETURN_IF_ERROR(SortResultRows(spec, &result.rows));
  result.stage_reports.push_back(std::move(job.report));
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace core
}  // namespace clydesdale
