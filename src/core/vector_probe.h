#ifndef CLYDESDALE_CORE_VECTOR_PROBE_H_
#define CLYDESDALE_CORE_VECTOR_PROBE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/aggregation.h"
#include "core/dim_hash_table.h"
#include "core/star_query.h"
#include "mapreduce/mr_types.h"
#include "schema/expr.h"
#include "schema/row_batch.h"

namespace clydesdale {
namespace core {

/// The columnar probe→aggregate inner loop of the star-join map task
/// (paper §4.2/§5.3, kept vectorized end to end): evaluate the fact
/// predicate over the block, compact the survivors into a selection vector,
/// probe each dimension table per-column with software prefetch, evaluate
/// accumulator expressions column-wise over the final selection, and feed
/// the flat hash aggregator with keys encoded straight from column data.
/// Rows materialize as `Row` objects only on the non-aggregating emit paths.
///
/// One instance per thread: it owns the scratch buffers (selection vector,
/// gathered keys, matched-payload vectors, accumulator columns), so batches
/// reuse allocations instead of re-growing them.
class VectorizedProbe {
 public:
  /// All pointers must outlive the instance. `acc_exprs` entries may be
  /// null, meaning the constant 1 (COUNT).
  VectorizedProbe(const BoundPredicate* fact_pred,
                  std::vector<int> fk_index,
                  std::vector<const DimHashTable*> tables,
                  std::vector<GroupSource> group_sources,
                  std::vector<const BoundScalar*> acc_exprs);

  /// Map-side aggregation path: survivors update `agg` in place.
  Status ProcessBatchAgg(const RowBatch& batch, HashAggregator* agg);

  /// map_side_agg-off path: per surviving row, collect
  /// (group key row, accumulator-input row).
  Status ProcessBatchCollect(const RowBatch& batch, mr::OutputCollector* out);

  /// Staged-join path: per surviving row, collect (empty key, row gathered
  /// from `emit_sources`).
  Status ProcessBatchEmitJoined(const RowBatch& batch,
                                const std::vector<GroupSource>& emit_sources,
                                mr::OutputCollector* out);

  struct Stats {
    uint64_t batches = 0;
    uint64_t rows_in = 0;
    /// Rows surviving the fact predicate (= probe attempts on dim 0).
    uint64_t rows_selected = 0;
    /// Rows surviving every dimension probe.
    uint64_t join_rows = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Front half shared by all sinks: fills sel_idx_ with the row indexes
  /// surviving predicate + all probes and matched_[d] with the payload row
  /// of dimension d, aligned with sel_idx_. Returns the survivor count.
  int64_t FilterAndProbe(const RowBatch& batch);

  /// Evaluates every accumulator expression over the current selection into
  /// acc_columns_ (one int64 column per accumulator).
  void EvalAccumulators(const RowBatch& batch, int64_t n);

  /// Appends the value of `src` for selection position j to `out`.
  void EncodeSource(const GroupSource& src, const RowBatch& batch, int64_t j,
                    std::vector<uint8_t>* out) const;
  Value SourceValue(const GroupSource& src, const RowBatch& batch,
                    int64_t j) const;

  const BoundPredicate* fact_pred_;
  std::vector<int> fk_index_;
  std::vector<const DimHashTable*> tables_;
  std::vector<GroupSource> group_sources_;
  std::vector<const BoundScalar*> acc_exprs_;

  Stats stats_;

  // Scratch, reused across batches.
  std::vector<uint8_t> sel_bytes_;
  std::vector<int32_t> sel_idx_;
  std::vector<int64_t> keys_;
  std::vector<std::vector<const Row*>> matched_;
  std::vector<std::vector<int64_t>> acc_columns_;
  std::vector<int64_t> acc_inputs_;
  std::vector<uint8_t> key_scratch_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_VECTOR_PROBE_H_
