#ifndef CLYDESDALE_CORE_AGGREGATION_H_
#define CLYDESDALE_CORE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/star_query.h"
#include "mapreduce/mr_types.h"
#include "obs/mem_tracker.h"
#include "schema/row.h"

namespace clydesdale {
namespace core {

/// Physical accumulator operations. Every aggregate maps to one or more
/// accumulators (AVG = SUM + COUNT); accumulators combine associatively, so
/// map-side partials, combiners, and reducers all run the same merge.
enum class AccKind : uint8_t { kSum, kCount, kMin, kMax };

/// How a query's aggregates decompose into accumulators and how finalized
/// output values derive from them. Schema-independent (expressions are bound
/// separately by whoever scans rows).
class AggLayout {
 public:
  static AggLayout For(const std::vector<AggSpec>& aggregates);

  int num_accumulators() const { return static_cast<int>(accs_.size()); }
  const std::vector<AccKind>& accs() const { return accs_; }

  /// Initial accumulator value (identity of the merge).
  static int64_t InitValue(AccKind kind);

  /// Merges one input vector into an accumulator vector, element-wise.
  void Merge(int64_t* acc, const int64_t* in) const;

  /// Merges `weight` identical input vectors in one step: sums and counts
  /// scale linearly (acc += in * weight), min/max are weight-invariant.
  /// This is what lets a run of rows with equal inputs and equal group key
  /// collapse to one aggregation-table update.
  void MergeWeighted(int64_t* acc, const int64_t* in, int64_t weight) const;

  /// Index of the expression to evaluate per accumulator, or -1 when the
  /// input is the constant 1 (COUNT). Expression index refers to the
  /// query's aggregate list (AVG shares its expression between both accs).
  const std::vector<int>& expr_index() const { return expr_index_; }

  /// Turns a (group columns ++ accumulators) row into the final output row
  /// (group columns ++ one value per aggregate; AVG becomes a double).
  Row Finalize(const Row& row, int num_group_columns) const;

  /// Per-accumulator output column suffixes for intermediate tables
  /// ("revenue" or "profit_sum"/"profit_count" for AVG).
  std::vector<std::string> AccumulatorNames() const;

 private:
  struct AggInfo {
    AggKind kind = AggKind::kSum;
    std::string name;
    int first_acc = 0;
    int num_accs = 1;
  };
  std::vector<AccKind> accs_;
  std::vector<int> expr_index_;
  std::vector<AggInfo> aggs_;
};

/// Finalizes engine result rows in place (group columns ++ accumulators ->
/// group columns ++ aggregate values) before the final ORDER BY.
Status FinalizeAggRows(const StarQuerySpec& spec, std::vector<Row>* rows);

/// Group-key wire codec: a Row of group columns flattened to bytes so the
/// aggregation table can hash and compare keys with memcmp and store them in
/// one arena. Fixed-width encoding for int/date columns (1 tag byte + the
/// scalar), length-prefixed bytes for strings. Values that compare equal and
/// share a kind encode identically, which is all aggregation needs: group
/// keys come from the same column sources on every row.
namespace group_key {

/// Appends the encoding of one value.
void AppendValue(const Value& v, std::vector<uint8_t>* out);

/// Appends every column of `row` (the full group key).
void AppendRow(const Row& row, std::vector<uint8_t>* out);

/// Decodes an encoded key back into a Row (Emit-time only).
Row DecodeRow(const uint8_t* data, size_t len);

inline uint64_t Hash(const uint8_t* data, size_t len) {
  return HashBytes(data, len);
}

}  // namespace group_key

/// Map-side partial aggregation: group key -> running accumulators. Each
/// join thread owns one; they merge at task end, so no synchronization
/// during the probe loop.
///
/// Open addressing with linear probing over a power-of-two slot array.
/// Encoded keys live in one append-only arena and accumulators in one flat
/// int64 array indexed by slot — no per-group heap allocations and no
/// Row::Hash dispatch on the add path. Keys decode back to Rows only when
/// Emit materializes the task output.
class HashAggregator {
 public:
  explicit HashAggregator(AggLayout layout)
      : layout_(std::move(layout)),
        num_accs_(static_cast<size_t>(layout_.num_accumulators())) {}

  /// Row-key convenience path (row readers, merges, tests).
  void Add(const Row& group_key, const int64_t* inputs) {
    key_scratch_.clear();
    group_key::AppendRow(group_key, &key_scratch_);
    AddEncoded(key_scratch_.data(), key_scratch_.size(), inputs);
  }

  /// Hot path: the caller already holds the encoded key (the vectorized
  /// probe loop encodes straight from column data).
  void AddEncoded(const uint8_t* key, size_t len, const int64_t* inputs) {
    int64_t* accs = FindOrCreate(key, len, group_key::Hash(key, len));
    layout_.Merge(accs, inputs);
  }

  /// Adds `weight` rows that share both the group key and the input vector
  /// with one table update (compressed-domain aggregation: a run of
  /// identical fact rows never expands).
  void AddEncodedWeighted(const uint8_t* key, size_t len,
                          const int64_t* inputs, int64_t weight) {
    int64_t* accs = FindOrCreate(key, len, group_key::Hash(key, len));
    layout_.MergeWeighted(accs, inputs, weight);
  }

  void MergeFrom(const HashAggregator& other);

  /// Emits each group as (key, row of accumulator values).
  Status Emit(mr::OutputCollector* out) const;

  size_t num_groups() const { return num_groups_; }
  const AggLayout& layout() const { return layout_; }
  /// Resident bytes of the slot array, accumulators, and key arena.
  uint64_t memory_bytes() const;

  /// Attributes this table's resident bytes to a tracker. Synced only when
  /// a container actually regrows (Rehash, arena reallocation) — amortized
  /// O(1), nothing on the per-row add path — and released on destruction.
  void AttachMemTracker(std::shared_ptr<obs::MemTracker> tracker) {
    mem_ = obs::ScopedMemConsumer(std::move(tracker));
    mem_.SyncTo(static_cast<int64_t>(memory_bytes()));
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t key_offset = 0;
    uint32_t key_len = kEmpty;
  };
  static constexpr uint32_t kEmpty = 0xffffffffu;

  /// Accumulators of the group with this encoded key, inserting (and
  /// initializing) on first sight.
  int64_t* FindOrCreate(const uint8_t* key, size_t len, uint64_t hash);
  void Rehash(size_t new_capacity);

  AggLayout layout_;
  size_t num_accs_;
  size_t capacity_ = 0;  // power of two (0 until first Add)
  size_t num_groups_ = 0;
  std::vector<Slot> slots_;
  std::vector<int64_t> accs_;       // capacity * num_accs_, slot-indexed
  std::vector<uint8_t> key_arena_;  // encoded keys, append-only
  std::vector<uint8_t> key_scratch_;
  obs::ScopedMemConsumer mem_;
  /// key_arena_ capacity at the last mem_ sync (regrowth detection).
  size_t synced_arena_capacity_ = 0;
};

/// Reducer (and combiner) that merges accumulator rows element-wise per key
/// using the layout's operations — the generalization of paper Figure 4's
/// sum() reduce function.
class AggReducer final : public mr::Reducer {
 public:
  /// `profile_name` labels this instance's operator node in the query
  /// profile — pass "combine" for combiner use so map-side folding stays
  /// distinct from the reduce-side merge in the merged tree.
  explicit AggReducer(AggLayout layout,
                      const char* profile_name = "aggregate")
      : layout_(std::move(layout)), profile_name_(profile_name) {}

  Status Setup(mr::TaskContext* context) override;
  Status Reduce(const Row& key, const std::vector<Row>& values,
                mr::TaskContext* context, mr::OutputCollector* out) override;
  Status Cleanup(mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  AggLayout layout_;
  // Per-operator profiler cells (obs.profile.enabled tasks only).
  const char* profile_name_;
  bool profiled_ = false;
  bool emitted_ = false;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_AGGREGATION_H_
