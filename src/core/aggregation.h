#ifndef CLYDESDALE_CORE_AGGREGATION_H_
#define CLYDESDALE_CORE_AGGREGATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/star_query.h"
#include "mapreduce/mr_types.h"
#include "schema/row.h"

namespace clydesdale {
namespace core {

/// Physical accumulator operations. Every aggregate maps to one or more
/// accumulators (AVG = SUM + COUNT); accumulators combine associatively, so
/// map-side partials, combiners, and reducers all run the same merge.
enum class AccKind : uint8_t { kSum, kCount, kMin, kMax };

/// How a query's aggregates decompose into accumulators and how finalized
/// output values derive from them. Schema-independent (expressions are bound
/// separately by whoever scans rows).
class AggLayout {
 public:
  static AggLayout For(const std::vector<AggSpec>& aggregates);

  int num_accumulators() const { return static_cast<int>(accs_.size()); }
  const std::vector<AccKind>& accs() const { return accs_; }

  /// Initial accumulator value (identity of the merge).
  static int64_t InitValue(AccKind kind);

  /// Merges one input vector into an accumulator vector, element-wise.
  void Merge(int64_t* acc, const int64_t* in) const;

  /// Index of the expression to evaluate per accumulator, or -1 when the
  /// input is the constant 1 (COUNT). Expression index refers to the
  /// query's aggregate list (AVG shares its expression between both accs).
  const std::vector<int>& expr_index() const { return expr_index_; }

  /// Turns a (group columns ++ accumulators) row into the final output row
  /// (group columns ++ one value per aggregate; AVG becomes a double).
  Row Finalize(const Row& row, int num_group_columns) const;

  /// Per-accumulator output column suffixes for intermediate tables
  /// ("revenue" or "profit_sum"/"profit_count" for AVG).
  std::vector<std::string> AccumulatorNames() const;

 private:
  struct AggInfo {
    AggKind kind = AggKind::kSum;
    std::string name;
    int first_acc = 0;
    int num_accs = 1;
  };
  std::vector<AccKind> accs_;
  std::vector<int> expr_index_;
  std::vector<AggInfo> aggs_;
};

/// Finalizes engine result rows in place (group columns ++ accumulators ->
/// group columns ++ aggregate values) before the final ORDER BY.
Status FinalizeAggRows(const StarQuerySpec& spec, std::vector<Row>* rows);

/// Map-side partial aggregation: group key -> running accumulators. Each
/// join thread owns one; they merge at task end, so no synchronization
/// during the probe loop.
class HashAggregator {
 public:
  explicit HashAggregator(AggLayout layout) : layout_(std::move(layout)) {}

  void Add(const Row& group_key, const int64_t* inputs) {
    auto [it, inserted] = groups_.try_emplace(group_key, InitAccs());
    layout_.Merge(it->second.data(), inputs);
  }

  void MergeFrom(const HashAggregator& other);

  /// Emits each group as (key, row of accumulator values).
  Status Emit(mr::OutputCollector* out) const;

  size_t num_groups() const { return groups_.size(); }
  const AggLayout& layout() const { return layout_; }

 private:
  std::vector<int64_t> InitAccs() const {
    std::vector<int64_t> accs(static_cast<size_t>(layout_.num_accumulators()));
    for (int a = 0; a < layout_.num_accumulators(); ++a) {
      accs[static_cast<size_t>(a)] =
          AggLayout::InitValue(layout_.accs()[static_cast<size_t>(a)]);
    }
    return accs;
  }

  AggLayout layout_;
  std::unordered_map<Row, std::vector<int64_t>, RowHasher> groups_;
};

/// Reducer (and combiner) that merges accumulator rows element-wise per key
/// using the layout's operations — the generalization of paper Figure 4's
/// sum() reduce function.
class AggReducer final : public mr::Reducer {
 public:
  explicit AggReducer(AggLayout layout) : layout_(std::move(layout)) {}

  Status Reduce(const Row& key, const std::vector<Row>& values,
                mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  AggLayout layout_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_AGGREGATION_H_
