#include "core/aggregation.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace clydesdale {
namespace core {

AggLayout AggLayout::For(const std::vector<AggSpec>& aggregates) {
  AggLayout layout;
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggSpec& agg = aggregates[i];
    AggInfo info;
    info.kind = agg.kind;
    info.name = agg.name;
    info.first_acc = static_cast<int>(layout.accs_.size());
    switch (agg.kind) {
      case AggKind::kSum:
        layout.accs_.push_back(AccKind::kSum);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kCount:
        layout.accs_.push_back(AccKind::kCount);
        layout.expr_index_.push_back(-1);
        break;
      case AggKind::kMin:
        layout.accs_.push_back(AccKind::kMin);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kMax:
        layout.accs_.push_back(AccKind::kMax);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kAvg:
        layout.accs_.push_back(AccKind::kSum);
        layout.expr_index_.push_back(static_cast<int>(i));
        layout.accs_.push_back(AccKind::kCount);
        layout.expr_index_.push_back(-1);
        info.num_accs = 2;
        break;
    }
    layout.aggs_.push_back(std::move(info));
  }
  return layout;
}

int64_t AggLayout::InitValue(AccKind kind) {
  switch (kind) {
    case AccKind::kSum:
    case AccKind::kCount:
      return 0;
    case AccKind::kMin:
      return std::numeric_limits<int64_t>::max();
    case AccKind::kMax:
      return std::numeric_limits<int64_t>::min();
  }
  return 0;
}

void AggLayout::Merge(int64_t* acc, const int64_t* in) const {
  for (size_t a = 0; a < accs_.size(); ++a) {
    switch (accs_[a]) {
      case AccKind::kSum:
      case AccKind::kCount:
        acc[a] += in[a];
        break;
      case AccKind::kMin:
        acc[a] = std::min(acc[a], in[a]);
        break;
      case AccKind::kMax:
        acc[a] = std::max(acc[a], in[a]);
        break;
    }
  }
}

Row AggLayout::Finalize(const Row& row, int num_group_columns) const {
  Row out;
  out.Reserve(num_group_columns + static_cast<int>(aggs_.size()));
  for (int g = 0; g < num_group_columns; ++g) out.Append(row.Get(g));
  for (const AggInfo& agg : aggs_) {
    const int base = num_group_columns + agg.first_acc;
    if (agg.kind == AggKind::kAvg) {
      const int64_t sum = row.Get(base).AsInt64();
      const int64_t count = row.Get(base + 1).AsInt64();
      out.Append(Value(count == 0 ? 0.0
                                  : static_cast<double>(sum) /
                                        static_cast<double>(count)));
    } else {
      out.Append(row.Get(base));
    }
  }
  return out;
}

std::vector<std::string> AggLayout::AccumulatorNames() const {
  std::vector<std::string> names;
  for (const AggInfo& agg : aggs_) {
    if (agg.kind == AggKind::kAvg) {
      names.push_back(StrCat(agg.name, "_sum"));
      names.push_back(StrCat(agg.name, "_count"));
    } else {
      names.push_back(agg.name);
    }
  }
  return names;
}

Status FinalizeAggRows(const StarQuerySpec& spec, std::vector<Row>* rows) {
  const AggLayout layout = AggLayout::For(spec.aggregates);
  const int group_columns = static_cast<int>(spec.group_by.size());
  const int expected =
      group_columns + layout.num_accumulators();
  for (Row& row : *rows) {
    if (row.size() != expected) {
      return Status::Internal(
          StrCat("aggregate row has ", row.size(), " columns, expected ",
                 expected));
    }
    row = layout.Finalize(row, group_columns);
  }
  return Status::OK();
}

void HashAggregator::MergeFrom(const HashAggregator& other) {
  for (const auto& [key, accs] : other.groups_) {
    Add(key, accs.data());
  }
}

Status HashAggregator::Emit(mr::OutputCollector* out) const {
  for (const auto& [key, accs] : groups_) {
    Row value;
    value.Reserve(static_cast<int>(accs.size()));
    for (int64_t a : accs) value.Append(Value(a));
    CLY_RETURN_IF_ERROR(out->Collect(key, value));
  }
  return Status::OK();
}

Status AggReducer::Reduce(const Row& key, const std::vector<Row>& values,
                          mr::TaskContext*, mr::OutputCollector* out) {
  if (values.empty()) return Status::OK();
  const int n = layout_.num_accumulators();
  std::vector<int64_t> accs(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    accs[static_cast<size_t>(a)] =
        AggLayout::InitValue(layout_.accs()[static_cast<size_t>(a)]);
  }
  std::vector<int64_t> in(static_cast<size_t>(n));
  for (const Row& v : values) {
    if (v.size() != n) {
      return Status::Internal(
          StrCat("accumulator row has ", v.size(), " columns, expected ", n));
    }
    for (int a = 0; a < n; ++a) {
      in[static_cast<size_t>(a)] = v.Get(a).AsInt64();
    }
    layout_.Merge(accs.data(), in.data());
  }
  Row out_value;
  out_value.Reserve(n);
  for (int64_t a : accs) out_value.Append(Value(a));
  return out->Collect(key, out_value);
}

}  // namespace core
}  // namespace clydesdale
