#include "core/aggregation.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"
#include "mapreduce/task_context.h"
#include "obs/query_profile.h"

namespace clydesdale {
namespace core {

AggLayout AggLayout::For(const std::vector<AggSpec>& aggregates) {
  AggLayout layout;
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggSpec& agg = aggregates[i];
    AggInfo info;
    info.kind = agg.kind;
    info.name = agg.name;
    info.first_acc = static_cast<int>(layout.accs_.size());
    switch (agg.kind) {
      case AggKind::kSum:
        layout.accs_.push_back(AccKind::kSum);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kCount:
        layout.accs_.push_back(AccKind::kCount);
        layout.expr_index_.push_back(-1);
        break;
      case AggKind::kMin:
        layout.accs_.push_back(AccKind::kMin);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kMax:
        layout.accs_.push_back(AccKind::kMax);
        layout.expr_index_.push_back(static_cast<int>(i));
        break;
      case AggKind::kAvg:
        layout.accs_.push_back(AccKind::kSum);
        layout.expr_index_.push_back(static_cast<int>(i));
        layout.accs_.push_back(AccKind::kCount);
        layout.expr_index_.push_back(-1);
        info.num_accs = 2;
        break;
    }
    layout.aggs_.push_back(std::move(info));
  }
  return layout;
}

int64_t AggLayout::InitValue(AccKind kind) {
  switch (kind) {
    case AccKind::kSum:
    case AccKind::kCount:
      return 0;
    case AccKind::kMin:
      return std::numeric_limits<int64_t>::max();
    case AccKind::kMax:
      return std::numeric_limits<int64_t>::min();
  }
  return 0;
}

void AggLayout::Merge(int64_t* acc, const int64_t* in) const {
  for (size_t a = 0; a < accs_.size(); ++a) {
    switch (accs_[a]) {
      case AccKind::kSum:
      case AccKind::kCount:
        acc[a] += in[a];
        break;
      case AccKind::kMin:
        acc[a] = std::min(acc[a], in[a]);
        break;
      case AccKind::kMax:
        acc[a] = std::max(acc[a], in[a]);
        break;
    }
  }
}

void AggLayout::MergeWeighted(int64_t* acc, const int64_t* in,
                              int64_t weight) const {
  for (size_t a = 0; a < accs_.size(); ++a) {
    switch (accs_[a]) {
      case AccKind::kSum:
      case AccKind::kCount:
        acc[a] += in[a] * weight;
        break;
      case AccKind::kMin:
        acc[a] = std::min(acc[a], in[a]);
        break;
      case AccKind::kMax:
        acc[a] = std::max(acc[a], in[a]);
        break;
    }
  }
}

Row AggLayout::Finalize(const Row& row, int num_group_columns) const {
  Row out;
  out.Reserve(num_group_columns + static_cast<int>(aggs_.size()));
  for (int g = 0; g < num_group_columns; ++g) out.Append(row.Get(g));
  for (const AggInfo& agg : aggs_) {
    const int base = num_group_columns + agg.first_acc;
    if (agg.kind == AggKind::kAvg) {
      const int64_t sum = row.Get(base).AsInt64();
      const int64_t count = row.Get(base + 1).AsInt64();
      out.Append(Value(count == 0 ? 0.0
                                  : static_cast<double>(sum) /
                                        static_cast<double>(count)));
    } else {
      out.Append(row.Get(base));
    }
  }
  return out;
}

std::vector<std::string> AggLayout::AccumulatorNames() const {
  std::vector<std::string> names;
  for (const AggInfo& agg : aggs_) {
    if (agg.kind == AggKind::kAvg) {
      names.push_back(StrCat(agg.name, "_sum"));
      names.push_back(StrCat(agg.name, "_count"));
    } else {
      names.push_back(agg.name);
    }
  }
  return names;
}

Status FinalizeAggRows(const StarQuerySpec& spec, std::vector<Row>* rows) {
  const AggLayout layout = AggLayout::For(spec.aggregates);
  const int group_columns = static_cast<int>(spec.group_by.size());
  const int expected =
      group_columns + layout.num_accumulators();
  for (Row& row : *rows) {
    if (row.size() != expected) {
      return Status::Internal(
          StrCat("aggregate row has ", row.size(), " columns, expected ",
                 expected));
    }
    row = layout.Finalize(row, group_columns);
  }
  return Status::OK();
}

// --- group-key codec ---------------------------------------------------------

namespace group_key {

namespace {

template <typename T>
void AppendScalar(T v, std::vector<uint8_t>* out) {
  uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

template <typename T>
T ReadScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

void AppendValue(const Value& v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kInt32:
      AppendScalar(v.i32(), out);
      return;
    case TypeKind::kInt64:
      AppendScalar(v.i64(), out);
      return;
    case TypeKind::kDouble:
      AppendScalar(v.f64(), out);
      return;
    case TypeKind::kString: {
      const std::string& s = v.str();
      AppendScalar(static_cast<uint32_t>(s.size()), out);
      out->insert(out->end(), s.begin(), s.end());
      return;
    }
  }
}

void AppendRow(const Row& row, std::vector<uint8_t>* out) {
  for (const Value& v : row.values()) AppendValue(v, out);
}

Row DecodeRow(const uint8_t* data, size_t len) {
  Row row;
  size_t pos = 0;
  while (pos < len) {
    const TypeKind kind = static_cast<TypeKind>(data[pos++]);
    switch (kind) {
      case TypeKind::kInt32:
        row.Append(Value(ReadScalar<int32_t>(data + pos)));
        pos += sizeof(int32_t);
        break;
      case TypeKind::kInt64:
        row.Append(Value(ReadScalar<int64_t>(data + pos)));
        pos += sizeof(int64_t);
        break;
      case TypeKind::kDouble:
        row.Append(Value(ReadScalar<double>(data + pos)));
        pos += sizeof(double);
        break;
      case TypeKind::kString: {
        const uint32_t n = ReadScalar<uint32_t>(data + pos);
        pos += sizeof(uint32_t);
        row.Append(Value(std::string(reinterpret_cast<const char*>(data + pos),
                                     n)));
        pos += n;
        break;
      }
    }
  }
  CLY_DCHECK(pos == len);
  return row;
}

}  // namespace group_key

// --- HashAggregator ----------------------------------------------------------

int64_t* HashAggregator::FindOrCreate(const uint8_t* key, size_t len,
                                      uint64_t hash) {
  // Grow at 70% load (checked before the probe so the loop below always
  // terminates on an empty slot).
  if ((num_groups_ + 1) * 10 > capacity_ * 7) {
    Rehash(capacity_ == 0 ? 16 : capacity_ * 2);
  }
  size_t slot = static_cast<size_t>(hash) & (capacity_ - 1);
  while (true) {
    Slot& s = slots_[slot];
    if (s.key_len == kEmpty) {
      s.hash = hash;
      s.key_offset = static_cast<uint32_t>(key_arena_.size());
      s.key_len = static_cast<uint32_t>(len);
      key_arena_.insert(key_arena_.end(), key, key + len);
      ++num_groups_;
      if (key_arena_.capacity() != synced_arena_capacity_) {
        synced_arena_capacity_ = key_arena_.capacity();
        mem_.SyncTo(static_cast<int64_t>(memory_bytes()));
      }
      int64_t* accs = accs_.data() + slot * num_accs_;
      for (size_t a = 0; a < num_accs_; ++a) {
        accs[a] = AggLayout::InitValue(layout_.accs()[a]);
      }
      return accs;
    }
    if (s.hash == hash && s.key_len == len &&
        std::memcmp(key_arena_.data() + s.key_offset, key, len) == 0) {
      return accs_.data() + slot * num_accs_;
    }
    slot = (slot + 1) & (capacity_ - 1);
  }
}

void HashAggregator::Rehash(size_t new_capacity) {
  std::vector<Slot> old_slots = std::move(slots_);
  std::vector<int64_t> old_accs = std::move(accs_);
  const size_t old_capacity = capacity_;
  capacity_ = new_capacity;
  slots_.assign(capacity_, Slot{});
  accs_.resize(capacity_ * num_accs_);
  for (size_t i = 0; i < old_capacity; ++i) {
    const Slot& s = old_slots[i];
    if (s.key_len == kEmpty) continue;
    size_t slot = static_cast<size_t>(s.hash) & (capacity_ - 1);
    while (slots_[slot].key_len != kEmpty) slot = (slot + 1) & (capacity_ - 1);
    slots_[slot] = s;
    std::memcpy(accs_.data() + slot * num_accs_,
                old_accs.data() + i * num_accs_, num_accs_ * sizeof(int64_t));
  }
  mem_.SyncTo(static_cast<int64_t>(memory_bytes()));
}

uint64_t HashAggregator::memory_bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         accs_.capacity() * sizeof(int64_t) + key_arena_.capacity();
}

void HashAggregator::MergeFrom(const HashAggregator& other) {
  for (size_t i = 0; i < other.capacity_; ++i) {
    const Slot& s = other.slots_[i];
    if (s.key_len == kEmpty) continue;
    int64_t* accs = FindOrCreate(other.key_arena_.data() + s.key_offset,
                                 s.key_len, s.hash);
    layout_.Merge(accs, other.accs_.data() + i * other.num_accs_);
  }
}

Status HashAggregator::Emit(mr::OutputCollector* out) const {
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    if (s.key_len == kEmpty) continue;
    const Row key =
        group_key::DecodeRow(key_arena_.data() + s.key_offset, s.key_len);
    Row value;
    value.Reserve(static_cast<int>(num_accs_));
    const int64_t* accs = accs_.data() + i * num_accs_;
    for (size_t a = 0; a < num_accs_; ++a) value.Append(Value(accs[a]));
    CLY_RETURN_IF_ERROR(out->Collect(key, value));
  }
  return Status::OK();
}

Status AggReducer::Setup(mr::TaskContext* context) {
  profiled_ = context->profile_enabled();
  return Status::OK();
}

Status AggReducer::Reduce(const Row& key, const std::vector<Row>& values,
                          mr::TaskContext*, mr::OutputCollector* out) {
  if (values.empty()) return Status::OK();
  if (profiled_) {
    rows_in_ += values.size();
    ++rows_out_;
  }
  const int n = layout_.num_accumulators();
  std::vector<int64_t> accs(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    accs[static_cast<size_t>(a)] =
        AggLayout::InitValue(layout_.accs()[static_cast<size_t>(a)]);
  }
  std::vector<int64_t> in(static_cast<size_t>(n));
  for (const Row& v : values) {
    if (v.size() != n) {
      return Status::Internal(
          StrCat("accumulator row has ", v.size(), " columns, expected ", n));
    }
    for (int a = 0; a < n; ++a) {
      in[static_cast<size_t>(a)] = v.Get(a).AsInt64();
    }
    layout_.Merge(accs.data(), in.data());
  }
  Row out_value;
  out_value.Reserve(n);
  for (int64_t a : accs) out_value.Append(Value(a));
  return out->Collect(key, out_value);
}

Status AggReducer::Cleanup(mr::TaskContext* context, mr::OutputCollector* out) {
  (void)out;
  // Combiner use runs a Setup/Cleanup pair per map-output partition on the
  // same instance, so emit the delta since the last flush (batches counts
  // the flushes; the task itself is counted once).
  if (profiled_ && (rows_in_ > 0 || !emitted_)) {
    obs::OperatorProfile node;
    node.name = profile_name_;
    node.kind = "aggregate";
    node.rows_in = rows_in_;
    node.rows_out = rows_out_;
    node.batches = 1;
    node.tasks = emitted_ ? 0 : 1;
    context->AddProfileOperator(std::move(node));
    rows_in_ = 0;
    rows_out_ = 0;
    emitted_ = true;
  }
  return Status::OK();
}

}  // namespace core
}  // namespace clydesdale
