#include "core/star_query.h"

#include <algorithm>

#include "common/strings.h"

namespace clydesdale {
namespace core {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

std::vector<std::string> FactColumnsFor(const StarQuerySpec& spec) {
  std::vector<std::string> columns;
  auto add = [&columns](const std::string& name) {
    if (std::find(columns.begin(), columns.end(), name) == columns.end()) {
      columns.push_back(name);
    }
  };
  for (const DimJoinSpec& dim : spec.dims) add(dim.fact_fk);
  std::vector<std::string> referenced;
  spec.fact_predicate->CollectColumns(&referenced);
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.expr != nullptr) agg.expr->CollectColumns(&referenced);
  }
  for (const std::string& name : referenced) add(name);
  return columns;
}

Result<std::vector<GroupSource>> ResolveGroupSources(
    const StarQuerySpec& spec, const Schema& fact_schema) {
  std::vector<GroupSource> sources;
  sources.reserve(spec.group_by.size());
  for (const std::string& g : spec.group_by) {
    GroupSource src;
    bool found = false;
    for (size_t d = 0; d < spec.dims.size() && !found; ++d) {
      const auto& aux = spec.dims[d].aux_columns;
      for (size_t a = 0; a < aux.size(); ++a) {
        if (aux[a] == g) {
          src.dim_index = static_cast<int>(d);
          src.aux_index = static_cast<int>(a);
          found = true;
          break;
        }
      }
    }
    if (!found) {
      const int i = fact_schema.IndexOf(g);
      if (i < 0) {
        return Status::InvalidArgument(
            StrCat("group-by column '", g, "' is neither a dimension aux ",
                   "column nor a fact column in ", spec.id));
      }
      src.from_fact = true;
      src.fact_index = i;
    }
    sources.push_back(src);
  }
  return sources;
}

std::vector<std::string> OutputColumnsOf(const StarQuerySpec& spec) {
  std::vector<std::string> out = spec.group_by;
  for (const AggSpec& agg : spec.aggregates) out.push_back(agg.name);
  return out;
}

namespace {
bool IsScanLeafKind(Predicate::Kind kind) {
  switch (kind) {
    case Predicate::Kind::kEq:
    case Predicate::Kind::kNe:
    case Predicate::Kind::kLt:
    case Predicate::Kind::kLe:
    case Predicate::Kind::kGt:
    case Predicate::Kind::kGe:
    case Predicate::Kind::kBetween:
    case Predicate::Kind::kIn:
      return true;
    default:
      return false;
  }
}

void CollectScanConjunctsInto(const Predicate::Ptr& pred,
                              std::vector<Predicate::Ptr>* out) {
  if (pred == nullptr) return;
  if (pred->kind() == Predicate::Kind::kAnd) {
    for (const Predicate::Ptr& child : pred->children()) {
      CollectScanConjunctsInto(child, out);
    }
    return;
  }
  if (IsScanLeafKind(pred->kind())) out->push_back(pred);
}
}  // namespace

std::vector<Predicate::Ptr> CollectScanConjuncts(const Predicate::Ptr& pred) {
  std::vector<Predicate::Ptr> out;
  CollectScanConjunctsInto(pred, &out);
  return out;
}

Status SortResultRows(const StarQuerySpec& spec, std::vector<Row>* rows) {
  const std::vector<std::string> output = OutputColumnsOf(spec);
  std::vector<std::pair<int, bool>> sort_keys;  // (column index, ascending)
  for (const OrderBySpec& ob : spec.order_by) {
    auto it = std::find(output.begin(), output.end(), ob.column);
    if (it == output.end()) {
      return Status::InvalidArgument(
          StrCat("order-by column '", ob.column, "' is not in the output of ",
                 spec.id));
    }
    sort_keys.emplace_back(static_cast<int>(it - output.begin()),
                           ob.ascending);
  }
  std::sort(rows->begin(), rows->end(), [&sort_keys](const Row& a, const Row& b) {
    for (const auto& [index, ascending] : sort_keys) {
      const int c = a.Get(index).Compare(b.Get(index));
      if (c != 0) return ascending ? c < 0 : c > 0;
    }
    return a.Compare(b) < 0;  // canonical tiebreak
  });
  return Status::OK();
}

}  // namespace core
}  // namespace clydesdale
