#ifndef CLYDESDALE_CORE_STAR_QUERY_H_
#define CLYDESDALE_CORE_STAR_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "schema/expr.h"
#include "schema/schema.h"

namespace clydesdale {
namespace core {

/// One dimension join of a star query: fact.fk = dim.pk, with an optional
/// predicate on the dimension and the dimension columns the query reads.
struct DimJoinSpec {
  /// Dimension name as registered in the StarSchema ("customer", ...).
  std::string dimension;
  /// Foreign key column in the fact table ("lo_custkey").
  std::string fact_fk;
  /// Primary key column in the dimension ("c_custkey").
  std::string dim_pk;
  /// Filter evaluated while building the dimension hash table.
  Predicate::Ptr predicate = Predicate::True();
  /// Dimension columns carried into the join output ("c_nation", ...). May
  /// be empty for filter-only joins (paper §4.2: "zero or more auxiliary
  /// columns").
  std::vector<std::string> aux_columns;
};

/// Aggregate functions. SSB only needs SUM; the rest make the engine usable
/// beyond the benchmark. AVG decomposes into SUM + COUNT accumulators and
/// finalizes to a double.
enum class AggKind : uint8_t { kSum, kCount, kMin, kMax, kAvg };

const char* AggKindToString(AggKind kind);

/// An aggregate over a scalar expression of fact columns. For kCount the
/// expression is ignored (may be null).
struct AggSpec {
  /// Output column name ("revenue", "profit").
  std::string name;
  Expr::Ptr expr;
  AggKind kind = AggKind::kSum;
};

struct OrderBySpec {
  /// References an output column (a group-by column or an aggregate name).
  std::string column;
  bool ascending = true;
};

/// A star-join query: filter dimensions, join them to the fact table,
/// aggregate fact measures grouped by dimension attributes, order the result.
/// This is the query model both Clydesdale and the Hive baseline execute.
struct StarQuerySpec {
  std::string id;
  /// Predicate over fact columns (SSB flight 1 filters lo_discount and
  /// lo_quantity directly).
  Predicate::Ptr fact_predicate = Predicate::True();
  std::vector<DimJoinSpec> dims;
  std::vector<AggSpec> aggregates;
  /// Group-by columns; each must appear among some dimension's aux_columns.
  std::vector<std::string> group_by;
  std::vector<OrderBySpec> order_by;
};

/// Where one group-by output column comes from: a joined dimension's aux
/// column, or (unusual for SSB, but allowed) the fact row itself.
struct GroupSource {
  bool from_fact = false;
  int dim_index = 0;   // which joined dimension (spec order)
  int aux_index = 0;   // which of that dimension's aux_columns
  int fact_index = 0;  // column in the projected fact row when from_fact
};

/// Resolves every group-by column of `spec` against the dimensions' aux
/// columns and the projected fact schema.
Result<std::vector<GroupSource>> ResolveGroupSources(const StarQuerySpec& spec,
                                                     const Schema& fact_schema);

/// Fact-table columns the query touches: foreign keys of every joined
/// dimension, fact-predicate columns, and aggregate inputs (deduplicated, in
/// first-use order). This is the projection Clydesdale pushes into CIF.
std::vector<std::string> FactColumnsFor(const StarQuerySpec& spec);

/// Output column names: group-by columns then aggregate names.
std::vector<std::string> OutputColumnsOf(const StarQuerySpec& spec);

/// Flattens the top-level AND of `pred` into the single-column leaf
/// comparisons (Eq/Ne/Lt/Le/Gt/Ge/Between/In) a storage scan can evaluate
/// on encoded data. OR/NOT subtrees and kTrue contribute nothing; dropping
/// a conjunct here is always sound because the engine re-evaluates the full
/// predicate on every row the scan returns.
std::vector<Predicate::Ptr> CollectScanConjuncts(const Predicate::Ptr& pred);

/// Sorts result rows by the query's ORDER BY (output-column references),
/// with the full row as tiebreak so results are canonical.
Status SortResultRows(const StarQuerySpec& spec, std::vector<Row>* rows);

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_STAR_QUERY_H_
