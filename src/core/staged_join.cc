#include "core/staged_join.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/aggregation.h"
#include "core/star_join_job.h"
#include "mapreduce/input_format.h"

namespace clydesdale {
namespace core {

namespace {

void AddUnique(std::vector<std::string>* list, const std::string& name) {
  if (std::find(list->begin(), list->end(), name) == list->end()) {
    list->push_back(name);
  }
}

/// Fact columns that must survive every stage: aggregate inputs plus
/// group-by columns that come from the fact table itself.
std::vector<std::string> KeptFactColumns(const StarSchema& star,
                                         const StarQuerySpec& spec) {
  std::vector<std::string> keep;
  std::vector<std::string> agg_cols;
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.expr != nullptr) agg.expr->CollectColumns(&agg_cols);
  }
  for (const std::string& c : agg_cols) AddUnique(&keep, c);
  for (const std::string& g : spec.group_by) {
    if (star.fact().schema->IndexOf(g) >= 0) AddUnique(&keep, g);
  }
  return keep;
}

/// True when `column` is an aux column of spec.dims[d].
bool IsAuxOf(const StarQuerySpec& spec, int d, const std::string& column) {
  const auto& aux = spec.dims[static_cast<size_t>(d)].aux_columns;
  return std::find(aux.begin(), aux.end(), column) != aux.end();
}

// ---------------------------------------------------------------------------
// Repartition join stage for one oversized dimension (paper §5.1: "For the
// case of a single large dimension, we expect to resort to a repartition
// join strategy"). A compact sort-merge join: the map side tags records from
// the working table and the dimension master, keys them by the join column,
// and the reducer joins per key group.
// ---------------------------------------------------------------------------

constexpr int32_t kFactTag = 0;
constexpr int32_t kDimTag = 1;

/// Everything one repartition stage needs, captured into the job factories.
struct RepartitionStage {
  DimJoinSpec join;
  Predicate::Ptr fact_predicate;       // residual filter (stage 1 only)
  SchemaPtr fact_schema;               // projected working-table rows
  std::vector<std::string> fact_out;   // carried into the output
  SchemaPtr dim_schema;                // projected dimension rows
  std::vector<std::string> dim_carry;  // this dimension's carried aux
};

class StagedRepartitionMapper final : public mr::Mapper {
 public:
  explicit StagedRepartitionMapper(RepartitionStage stage)
      : stage_(std::move(stage)) {}

  Status Setup(mr::TaskContext*) override {
    CLY_ASSIGN_OR_RETURN(fact_pred_,
                         stage_.fact_predicate->Bind(*stage_.fact_schema));
    CLY_ASSIGN_OR_RETURN(dim_pred_,
                         stage_.join.predicate->Bind(*stage_.dim_schema));
    CLY_ASSIGN_OR_RETURN(fk_index_,
                         stage_.fact_schema->Require(stage_.join.fact_fk));
    CLY_ASSIGN_OR_RETURN(pk_index_,
                         stage_.dim_schema->Require(stage_.join.dim_pk));
    for (const std::string& c : stage_.fact_out) {
      CLY_ASSIGN_OR_RETURN(int i, stage_.fact_schema->Require(c));
      fact_out_idx_.push_back(i);
    }
    for (const std::string& c : stage_.dim_carry) {
      CLY_ASSIGN_OR_RETURN(int i, stage_.dim_schema->Require(c));
      carry_idx_.push_back(i);
    }
    return Status::OK();
  }

  Status Map(const Row& key, const Row& value, mr::TaskContext*,
             mr::OutputCollector* out) override {
    (void)key;
    const int32_t tag = value.Get(0).i32();
    Row row;
    row.Reserve(value.size() - 1);
    for (int i = 1; i < value.size(); ++i) row.Append(value.Get(i));

    if (tag == kFactTag) {
      if (!fact_pred_->Eval(row)) return Status::OK();
      Row out_key({row.Get(fk_index_)});
      Row out_value;
      out_value.Reserve(1 + static_cast<int>(fact_out_idx_.size()));
      out_value.Append(Value(kFactTag));
      for (int i : fact_out_idx_) out_value.Append(row.Get(i));
      return out->Collect(out_key, out_value);
    }
    if (!dim_pred_->Eval(row)) return Status::OK();
    Row out_key({row.Get(pk_index_)});
    Row out_value;
    out_value.Reserve(1 + static_cast<int>(carry_idx_.size()));
    out_value.Append(Value(kDimTag));
    for (int i : carry_idx_) out_value.Append(row.Get(i));
    return out->Collect(out_key, out_value);
  }

 private:
  RepartitionStage stage_;
  BoundPredicatePtr fact_pred_;
  BoundPredicatePtr dim_pred_;
  int fk_index_ = -1;
  int pk_index_ = -1;
  std::vector<int> fact_out_idx_;
  std::vector<int> carry_idx_;
};

class StagedRepartitionReducer final : public mr::Reducer {
 public:
  Status Reduce(const Row& key, const std::vector<Row>& values,
                mr::TaskContext*, mr::OutputCollector* out) override {
    (void)key;
    const Row* dim_row = nullptr;
    for (const Row& v : values) {
      if (v.Get(0).i32() == kDimTag) {
        if (dim_row != nullptr) {
          return Status::Internal("duplicate dimension key in staged join");
        }
        dim_row = &v;
      }
    }
    if (dim_row == nullptr) return Status::OK();
    Row empty_key;
    for (const Row& v : values) {
      if (v.Get(0).i32() != kFactTag) continue;
      Row joined;
      joined.Reserve(v.size() - 1 + dim_row->size() - 1);
      for (int i = 1; i < v.size(); ++i) joined.Append(v.Get(i));
      for (int i = 1; i < dim_row->size(); ++i) joined.Append(dim_row->Get(i));
      CLY_RETURN_IF_ERROR(out->Collect(empty_key, joined));
    }
    return Status::OK();
  }
};

/// Configures the CIF intermediate output of a join-only stage and records
/// the table for cleanup. `decl` entries are "name:type".
void ConfigureIntermediateOutput(mr::JobConf* conf,
                                 const std::string& output_table,
                                 const std::vector<std::string>& decl,
                                 uint64_t rows_per_split) {
  conf->Set(mr::kConfOutputTable, output_table);
  conf->Set(mr::kConfOutputColumns, StrJoin(decl, ","));
  conf->Set(mr::kConfOutputFormat, storage::kFormatCif);
  conf->SetInt("output.rows_per_split",
               static_cast<int64_t>(std::max<uint64_t>(rows_per_split, 1024)));
  conf->output_format_factory = [] {
    return std::make_unique<mr::TableOutputFormat>();
  };
}

}  // namespace

uint64_t EstimateDimHashBytes(const DimTableInfo& dim,
                              const DimJoinSpec& join) {
  double payload = 0;
  for (const std::string& aux : join.aux_columns) {
    const int i = dim.desc.schema->IndexOf(aux);
    payload += i >= 0 ? dim.desc.schema->field(i).avg_width : 16.0;
  }
  // Slot (key + index) + Row header + value headers + payload bytes. Upper
  // bound: assumes every dimension row qualifies the predicate.
  const double per_entry = 16.0 + 24.0 +
                           32.0 * static_cast<double>(join.aux_columns.size()) +
                           payload * 1.5;
  return static_cast<uint64_t>(static_cast<double>(dim.desc.num_rows) *
                               per_entry);
}

Result<std::vector<StagedGroup>> PlanDimGroups(const StarSchema& star,
                                               const StarQuerySpec& spec,
                                               uint64_t budget_bytes) {
  std::vector<StagedGroup> groups;
  StagedGroup current;
  uint64_t current_bytes = 0;
  auto flush = [&] {
    if (!current.dims.empty()) {
      groups.push_back(std::move(current));
      current = {};
      current_bytes = 0;
    }
  };
  for (size_t d = 0; d < spec.dims.size(); ++d) {
    CLY_ASSIGN_OR_RETURN(const DimTableInfo* dim,
                         star.dim(spec.dims[d].dimension));
    const uint64_t bytes = EstimateDimHashBytes(*dim, spec.dims[d]);
    if (bytes > budget_bytes) {
      // Too big even alone: its own repartition stage (paper §5.1).
      flush();
      StagedGroup big;
      big.dims = {static_cast<int>(d)};
      big.repartition = true;
      groups.push_back(std::move(big));
      continue;
    }
    if (!current.dims.empty() && current_bytes + bytes > budget_bytes) flush();
    current.dims.push_back(static_cast<int>(d));
    current_bytes += bytes;
  }
  flush();
  return groups;
}

Result<QueryResult> ExecuteStagedStarJoin(
    mr::MrCluster* cluster, std::shared_ptr<const StarSchema> star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options,
    uint64_t budget_bytes) {
  Stopwatch timer;
  CLY_ASSIGN_OR_RETURN(std::vector<StagedGroup> groups,
                       PlanDimGroups(*star, spec, budget_bytes));
  const std::vector<std::string> keep = KeptFactColumns(*star, spec);

  // The final group aggregates in place only if it is a hash-join group;
  // after a trailing repartition group a dimension-less aggregation job runs.
  const bool needs_final_agg_stage = groups.empty() || groups.back().repartition;

  QueryResult result;
  std::string current_table = star->fact().path;
  std::vector<std::string> intermediates;

  // Columns every later stage still needs, given groups >= j are unjoined.
  auto projection_for = [&](size_t j, const Schema& input_schema) {
    std::vector<std::string> projection;
    for (size_t e = j; e < groups.size(); ++e) {
      for (int d : groups[e].dims) {
        AddUnique(&projection, spec.dims[static_cast<size_t>(d)].fact_fk);
      }
    }
    if (j == 0) {
      std::vector<std::string> pred_cols;
      spec.fact_predicate->CollectColumns(&pred_cols);
      for (const std::string& c : pred_cols) AddUnique(&projection, c);
    }
    for (const std::string& c : keep) AddUnique(&projection, c);
    for (const std::string& g : spec.group_by) {
      if (input_schema.IndexOf(g) >= 0 && star->fact().schema->IndexOf(g) < 0) {
        AddUnique(&projection, g);  // aux carried from an earlier stage
      }
    }
    return projection;
  };

  // Output columns of join-only stage j (group joined, nothing aggregated).
  auto emit_for = [&](size_t j) {
    std::vector<std::string> emit;
    for (size_t e = j + 1; e < groups.size(); ++e) {
      for (int d : groups[e].dims) {
        AddUnique(&emit, spec.dims[static_cast<size_t>(d)].fact_fk);
      }
    }
    for (const std::string& c : keep) AddUnique(&emit, c);
    for (const std::string& g : spec.group_by) {
      // Carried from earlier stages or joined by this one.
      if (star->fact().schema->IndexOf(g) < 0) {
        bool relevant = false;
        for (size_t e = 0; e <= j; ++e) {
          for (int d : groups[e].dims) {
            relevant = relevant || IsAuxOf(spec, d, g);
          }
        }
        if (relevant) AddUnique(&emit, g);
      }
    }
    return emit;
  };

  auto type_decl = [&](const std::vector<std::string>& columns,
                       const Schema& input_schema,
                       const std::vector<int>& group_dims)
      -> Result<std::vector<std::string>> {
    std::vector<std::string> decl;
    for (const std::string& c : columns) {
      const Field* field = nullptr;
      if (int i = input_schema.IndexOf(c); i >= 0) {
        field = &input_schema.field(i);
      } else {
        for (int d : group_dims) {
          CLY_ASSIGN_OR_RETURN(
              const DimTableInfo* dim,
              star->dim(spec.dims[static_cast<size_t>(d)].dimension));
          if (int i = dim->desc.schema->IndexOf(c); i >= 0) {
            field = &dim->desc.schema->field(i);
            break;
          }
        }
      }
      if (field == nullptr) {
        return Status::Internal(
            StrCat("staged join cannot type output column '", c, "'"));
      }
      decl.push_back(StrCat(c, ":", TypeKindToString(field->type)));
    }
    return decl;
  };

  auto next_intermediate = [&](size_t j) {
    const std::string table =
        StrCat("/tmp/clydesdale/", spec.id, "/stage", j + 1);
    intermediates.push_back(table);
    return table;
  };

  auto fresh_output = [&](const std::string& table) -> Status {
    if (cluster->dfs()->Exists(table + "/_meta")) {
      CLY_ASSIGN_OR_RETURN(int removed, cluster->dfs()->DeleteRecursive(table));
      (void)removed;
      cluster->InvalidateTable(table);
    }
    return Status::OK();
  };

  for (size_t j = 0; j < groups.size(); ++j) {
    const StagedGroup& group = groups[j];
    const bool aggregate_here = !needs_final_agg_stage && j + 1 == groups.size();

    CLY_ASSIGN_OR_RETURN(storage::TableDesc input_desc,
                         cluster->GetTable(current_table));
    const std::vector<std::string> projection =
        projection_for(j, *input_desc.schema);

    mr::JobConf conf;
    conf.job_name = StrCat("clydesdale-", spec.id, "#stage", j + 1);
    ApplyTraceConf(options, &conf);

    if (group.repartition) {
      // --- oversized dimension: sort-merge join stage --------------------------
      const int d = group.dims[0];
      const DimJoinSpec& dj = spec.dims[static_cast<size_t>(d)];
      CLY_ASSIGN_OR_RETURN(const DimTableInfo* dim, star->dim(dj.dimension));

      const std::vector<std::string> emit = emit_for(j);
      RepartitionStage stage;
      stage.join = dj;
      stage.fact_predicate =
          j == 0 ? spec.fact_predicate : Predicate::True();
      {
        std::vector<int> idx;
        for (const std::string& c : projection) {
          CLY_ASSIGN_OR_RETURN(int i, input_desc.schema->Require(c));
          idx.push_back(i);
        }
        stage.fact_schema = input_desc.schema->Project(idx);
      }
      std::vector<std::string> dim_cols;
      AddUnique(&dim_cols, dj.dim_pk);
      {
        std::vector<std::string> pred_cols;
        dj.predicate->CollectColumns(&pred_cols);
        for (const std::string& c : pred_cols) AddUnique(&dim_cols, c);
      }
      for (const std::string& c : emit) {
        if (IsAuxOf(spec, d, c)) {
          AddUnique(&dim_cols, c);
          stage.dim_carry.push_back(c);
        } else {
          stage.fact_out.push_back(c);
        }
      }
      {
        std::vector<int> idx;
        for (const std::string& c : dim_cols) {
          CLY_ASSIGN_OR_RETURN(int i, dim->desc.schema->Require(c));
          idx.push_back(i);
        }
        stage.dim_schema = dim->desc.schema->Project(idx);
      }

      conf.num_reduce_tasks = std::max(options.reduce_tasks,
                                       cluster->num_nodes());
      conf.SetList(mr::kConfInputTables, {current_table, dim->desc.path});
      conf.SetList(StrCat(mr::kConfInputProjection, ".0"), projection);
      conf.SetList(StrCat(mr::kConfInputProjection, ".1"), dim_cols);
      conf.input_format_factory = [] {
        return std::make_unique<mr::MultiTableInputFormat>();
      };
      const RepartitionStage captured = stage;
      conf.mapper_factory = [captured] {
        return std::make_unique<StagedRepartitionMapper>(captured);
      };
      conf.reducer_factory = [] {
        return std::make_unique<StagedRepartitionReducer>();
      };

      // Output order mirrors the reducer: fact_out then dim_carry.
      std::vector<std::string> ordered = stage.fact_out;
      for (const std::string& c : stage.dim_carry) ordered.push_back(c);
      CLY_ASSIGN_OR_RETURN(
          std::vector<std::string> decl,
          type_decl(ordered, *input_desc.schema, group.dims));
      const std::string output_table = next_intermediate(j);
      CLY_RETURN_IF_ERROR(fresh_output(output_table));
      ConfigureIntermediateOutput(&conf, output_table, decl,
                                  star->fact().rows_per_split);
      current_table = output_table;
    } else {
      // --- hash-join stage (possibly aggregating) ------------------------------
      StarQuerySpec sub;
      sub.id = StrCat(spec.id, "#stage", j + 1);
      sub.fact_predicate = j == 0 ? spec.fact_predicate : Predicate::True();
      for (int d : group.dims) {
        sub.dims.push_back(spec.dims[static_cast<size_t>(d)]);
      }
      if (aggregate_here) {
        sub.aggregates = spec.aggregates;
        sub.group_by = spec.group_by;
        sub.order_by = spec.order_by;
      }
      auto stage_star = std::make_shared<StarSchema>(*star);
      *stage_star->mutable_fact() = input_desc;

      conf.jvm_reuse = options.jvm_reuse;
      conf.single_task_per_node = options.multithreaded;
      conf.Set(mr::kConfInputTable, current_table);
      conf.SetList(mr::kConfInputProjection, projection);
      conf.SetInt(mr::kConfMultiSplitSize, options.multisplit_size);

      const ClydesdaleOptions stage_options = options;
      if (options.multithreaded &&
          input_desc.format == storage::kFormatCif) {
        conf.input_format_factory = [] {
          return std::make_unique<mr::MultiCifInputFormat>();
        };
        conf.map_runner_factory = [stage_star, sub, stage_options] {
          return std::make_unique<StarJoinMapRunner>(stage_star, sub,
                                                     stage_options);
        };
      } else {
        conf.input_format_factory = [] {
          return std::make_unique<mr::TableInputFormat>();
        };
        conf.mapper_factory = [stage_star, sub, stage_options] {
          return std::make_unique<StarJoinMapper>(stage_star, sub,
                                                  stage_options);
        };
        conf.single_task_per_node = false;
      }

      if (aggregate_here) {
        conf.num_reduce_tasks = options.reduce_tasks;
        const AggLayout layout = AggLayout::For(spec.aggregates);
        conf.reducer_factory = [layout] {
          return std::make_unique<AggReducer>(layout);
        };
        conf.output_format_factory = [] {
          return std::make_unique<mr::MemoryOutputFormat>();
        };
      } else {
        const std::vector<std::string> emit = emit_for(j);
        conf.SetList(kConfJoinEmitColumns, emit);
        conf.num_reduce_tasks = 0;
        CLY_ASSIGN_OR_RETURN(std::vector<std::string> decl,
                             type_decl(emit, *input_desc.schema, group.dims));
        const std::string output_table = next_intermediate(j);
        CLY_RETURN_IF_ERROR(fresh_output(output_table));
        ConfigureIntermediateOutput(&conf, output_table, decl,
                                    star->fact().rows_per_split);
        current_table = output_table;
      }
    }

    CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster, conf));
    if (aggregate_here) result.rows = std::move(job.output_rows);
    result.stage_reports.push_back(std::move(job.report));
  }

  if (needs_final_agg_stage) {
    // Aggregation-only job over the fully joined intermediate (no probes).
    CLY_ASSIGN_OR_RETURN(storage::TableDesc input_desc,
                         cluster->GetTable(current_table));
    StarQuerySpec sub;
    sub.id = StrCat(spec.id, "#agg");
    sub.aggregates = spec.aggregates;
    sub.group_by = spec.group_by;
    sub.order_by = spec.order_by;
    auto stage_star = std::make_shared<StarSchema>(*star);
    *stage_star->mutable_fact() = input_desc;

    std::vector<std::string> projection = keep;
    for (const std::string& g : spec.group_by) AddUnique(&projection, g);

    mr::JobConf conf;
    conf.job_name = StrCat("clydesdale-", spec.id, "#agg");
    ApplyTraceConf(options, &conf);
    conf.jvm_reuse = options.jvm_reuse;
    conf.single_task_per_node = options.multithreaded;
    conf.Set(mr::kConfInputTable, current_table);
    conf.SetList(mr::kConfInputProjection, projection);
    conf.SetInt(mr::kConfMultiSplitSize, options.multisplit_size);
    const ClydesdaleOptions stage_options = options;
    if (options.multithreaded && input_desc.format == storage::kFormatCif) {
      conf.input_format_factory = [] {
        return std::make_unique<mr::MultiCifInputFormat>();
      };
      conf.map_runner_factory = [stage_star, sub, stage_options] {
        return std::make_unique<StarJoinMapRunner>(stage_star, sub,
                                                   stage_options);
      };
    } else {
      conf.input_format_factory = [] {
        return std::make_unique<mr::TableInputFormat>();
      };
      conf.mapper_factory = [stage_star, sub, stage_options] {
        return std::make_unique<StarJoinMapper>(stage_star, sub,
                                                stage_options);
      };
      conf.single_task_per_node = false;
    }
    conf.num_reduce_tasks = options.reduce_tasks;
    const AggLayout layout = AggLayout::For(spec.aggregates);
    conf.reducer_factory = [layout] {
      return std::make_unique<AggReducer>(layout);
    };
    conf.output_format_factory = [] {
      return std::make_unique<mr::MemoryOutputFormat>();
    };
    CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster, conf));
    result.rows = std::move(job.output_rows);
    result.stage_reports.push_back(std::move(job.report));
  }

  CLY_RETURN_IF_ERROR(FinalizeAggRows(spec, &result.rows));
  CLY_RETURN_IF_ERROR(SortResultRows(spec, &result.rows));
  for (const std::string& table : intermediates) {
    CLY_ASSIGN_OR_RETURN(int removed, cluster->dfs()->DeleteRecursive(table));
    (void)removed;
    cluster->InvalidateTable(table);
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace core
}  // namespace clydesdale
