#include "core/vector_probe.h"

#include <algorithm>

namespace clydesdale {
namespace core {

VectorizedProbe::VectorizedProbe(const BoundPredicate* fact_pred,
                                 std::vector<int> fk_index,
                                 std::vector<const DimHashTable*> tables,
                                 std::vector<GroupSource> group_sources,
                                 std::vector<const BoundScalar*> acc_exprs)
    : fact_pred_(fact_pred),
      fk_index_(std::move(fk_index)),
      tables_(std::move(tables)),
      group_sources_(std::move(group_sources)),
      acc_exprs_(std::move(acc_exprs)) {
  matched_.resize(tables_.size());
  acc_columns_.resize(acc_exprs_.size());
  acc_inputs_.resize(acc_exprs_.size());
}

int64_t VectorizedProbe::FilterAndProbe(const RowBatch& batch) {
  const int64_t n = batch.num_rows();
  ++stats_.batches;
  stats_.rows_in += static_cast<uint64_t>(n);

  sel_bytes_.assign(static_cast<size_t>(n), 1);
  fact_pred_->EvalBatch(batch, &sel_bytes_);

  // Compact the byte mask into a selection vector of row indexes.
  sel_idx_.clear();
  sel_idx_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (sel_bytes_[static_cast<size_t>(i)] != 0) {
      sel_idx_.push_back(static_cast<int32_t>(i));
    }
  }
  int64_t m = static_cast<int64_t>(sel_idx_.size());
  stats_.rows_selected += static_cast<uint64_t>(m);

  // Per-dimension: gather the FK column over the selection, batch-probe with
  // prefetch, then compact away the misses (early-out, one dimension at a
  // time instead of one row at a time). An FK column carrying an RLE run
  // overlay (CIF v3 scan with expose_runs) pays one hash probe per touched
  // run instead: every row of a run shares its key, and the selection and
  // runs are both ascending, so a single cursor walks them in tandem.
  for (size_t d = 0; d < tables_.size() && m > 0; ++d) {
    const ColumnVector& col = batch.column(fk_index_[d]);
    std::vector<const Row*>& hits = matched_[d];
    hits.resize(static_cast<size_t>(m));
    if (col.has_runs()) {
      const std::vector<int64_t>& run_values = col.run_values();
      const std::vector<int32_t>& run_starts = col.run_starts();
      size_t r = 0;
      int64_t probed_run = -1;
      const Row* hit = nullptr;
      for (int64_t j = 0; j < m; ++j) {
        const int32_t idx = sel_idx_[static_cast<size_t>(j)];
        while (run_starts[r + 1] <= idx) ++r;
        if (static_cast<int64_t>(r) != probed_run) {
          probed_run = static_cast<int64_t>(r);
          hit = tables_[d]->Probe(run_values[r]);
        }
        hits[static_cast<size_t>(j)] = hit;
      }
    } else {
      keys_.resize(static_cast<size_t>(m));
      if (col.type() == TypeKind::kInt32) {
        const auto& data = col.i32();
        for (int64_t j = 0; j < m; ++j) {
          keys_[static_cast<size_t>(j)] =
              data[static_cast<size_t>(sel_idx_[static_cast<size_t>(j)])];
        }
      } else {
        for (int64_t j = 0; j < m; ++j) {
          keys_[static_cast<size_t>(j)] =
              col.KeyAt(sel_idx_[static_cast<size_t>(j)]);
        }
      }
      tables_[d]->ProbeBatch(keys_.data(), m, hits.data());
    }

    int64_t k = 0;
    for (int64_t j = 0; j < m; ++j) {
      if (hits[static_cast<size_t>(j)] == nullptr) continue;
      sel_idx_[static_cast<size_t>(k)] = sel_idx_[static_cast<size_t>(j)];
      for (size_t e = 0; e <= d; ++e) {
        matched_[e][static_cast<size_t>(k)] = matched_[e][static_cast<size_t>(j)];
      }
      ++k;
    }
    m = k;
  }
  stats_.join_rows += static_cast<uint64_t>(m);
  return m;
}

void VectorizedProbe::EvalAccumulators(const RowBatch& batch, int64_t n) {
  for (size_t a = 0; a < acc_exprs_.size(); ++a) {
    std::vector<int64_t>& out = acc_columns_[a];
    out.resize(static_cast<size_t>(n));
    if (acc_exprs_[a] == nullptr) {
      std::fill(out.begin(), out.end(), int64_t{1});
    } else {
      acc_exprs_[a]->EvalBatch(batch, sel_idx_.data(), n, out.data());
    }
  }
}

Value VectorizedProbe::SourceValue(const GroupSource& src,
                                   const RowBatch& batch, int64_t j) const {
  if (src.from_fact) {
    return batch.column(src.fact_index)
        .GetValue(sel_idx_[static_cast<size_t>(j)]);
  }
  return matched_[static_cast<size_t>(src.dim_index)][static_cast<size_t>(j)]
      ->Get(src.aux_index);
}

void VectorizedProbe::EncodeSource(const GroupSource& src,
                                   const RowBatch& batch, int64_t j,
                                   std::vector<uint8_t>* out) const {
  if (!src.from_fact) {
    // Dimension aux value: encode from the matched payload by reference.
    group_key::AppendValue(
        matched_[static_cast<size_t>(src.dim_index)][static_cast<size_t>(j)]
            ->Get(src.aux_index),
        out);
    return;
  }
  // Fact column: encode straight off the column vector — strings are
  // referenced in place, not copied into a temporary Value.
  const ColumnVector& col = batch.column(src.fact_index);
  const size_t i = static_cast<size_t>(sel_idx_[static_cast<size_t>(j)]);
  switch (col.type()) {
    case TypeKind::kInt32:
      group_key::AppendValue(Value(col.i32()[i]), out);
      return;
    case TypeKind::kInt64:
      group_key::AppendValue(Value(col.i64()[i]), out);
      return;
    case TypeKind::kDouble:
      group_key::AppendValue(Value(col.f64()[i]), out);
      return;
    case TypeKind::kString: {
      // StringViewAt covers both owned strings and the late-materialized
      // scan's arena-backed views without a copy in either case.
      const std::string_view s = col.StringViewAt(static_cast<int64_t>(i));
      out->push_back(static_cast<uint8_t>(TypeKind::kString));
      const uint32_t len = static_cast<uint32_t>(s.size());
      const uint8_t* p = reinterpret_cast<const uint8_t*>(&len);
      out->insert(out->end(), p, p + sizeof(uint32_t));
      out->insert(out->end(), s.begin(), s.end());
      return;
    }
  }
}

Status VectorizedProbe::ProcessBatchAgg(const RowBatch& batch,
                                        HashAggregator* agg) {
  const int64_t m = FilterAndProbe(batch);
  if (m == 0) return Status::OK();
  // Weighted fast path: when every accumulator input is the constant 1
  // (COUNT) and every group column comes from a dimension payload, a stretch
  // of consecutive selection positions with pointer-identical matched tuples
  // shares both key and inputs, so one weighted table update covers it. RLE
  // foreign-key columns produce exactly such stretches.
  bool weighted = true;
  for (const BoundScalar* e : acc_exprs_) {
    if (e != nullptr) weighted = false;
  }
  for (const GroupSource& src : group_sources_) {
    if (src.from_fact) weighted = false;
  }
  if (weighted) {
    std::fill(acc_inputs_.begin(), acc_inputs_.end(), int64_t{1});
    auto same_groups = [&](int64_t a, int64_t b) {
      for (const GroupSource& src : group_sources_) {
        const auto& hits = matched_[static_cast<size_t>(src.dim_index)];
        if (hits[static_cast<size_t>(a)] != hits[static_cast<size_t>(b)]) {
          return false;
        }
      }
      return true;
    };
    int64_t j = 0;
    while (j < m) {
      int64_t k = j + 1;
      while (k < m && same_groups(j, k)) ++k;
      key_scratch_.clear();
      for (const GroupSource& src : group_sources_) {
        EncodeSource(src, batch, j, &key_scratch_);
      }
      agg->AddEncodedWeighted(key_scratch_.data(), key_scratch_.size(),
                              acc_inputs_.data(), k - j);
      j = k;
    }
    return Status::OK();
  }
  EvalAccumulators(batch, m);
  for (int64_t j = 0; j < m; ++j) {
    key_scratch_.clear();
    for (const GroupSource& src : group_sources_) {
      EncodeSource(src, batch, j, &key_scratch_);
    }
    for (size_t a = 0; a < acc_columns_.size(); ++a) {
      acc_inputs_[a] = acc_columns_[a][static_cast<size_t>(j)];
    }
    agg->AddEncoded(key_scratch_.data(), key_scratch_.size(),
                    acc_inputs_.data());
  }
  return Status::OK();
}

Status VectorizedProbe::ProcessBatchCollect(const RowBatch& batch,
                                            mr::OutputCollector* out) {
  const int64_t m = FilterAndProbe(batch);
  if (m == 0) return Status::OK();
  EvalAccumulators(batch, m);
  for (int64_t j = 0; j < m; ++j) {
    Row group_key;
    group_key.Reserve(static_cast<int>(group_sources_.size()));
    for (const GroupSource& src : group_sources_) {
      group_key.Append(SourceValue(src, batch, j));
    }
    Row value;
    value.Reserve(static_cast<int>(acc_columns_.size()));
    for (const auto& col : acc_columns_) {
      value.Append(Value(col[static_cast<size_t>(j)]));
    }
    CLY_RETURN_IF_ERROR(out->Collect(group_key, value));
  }
  return Status::OK();
}

Status VectorizedProbe::ProcessBatchEmitJoined(
    const RowBatch& batch, const std::vector<GroupSource>& emit_sources,
    mr::OutputCollector* out) {
  const int64_t m = FilterAndProbe(batch);
  for (int64_t j = 0; j < m; ++j) {
    Row joined;
    joined.Reserve(static_cast<int>(emit_sources.size()));
    for (const GroupSource& src : emit_sources) {
      joined.Append(SourceValue(src, batch, j));
    }
    Row empty_key;
    CLY_RETURN_IF_ERROR(out->Collect(empty_key, joined));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace clydesdale
