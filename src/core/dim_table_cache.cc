#include "core/dim_table_cache.h"

#include "common/hash.h"

namespace clydesdale {
namespace core {

size_t DimCacheKeyHash::operator()(const DimCacheKey& key) const {
  uint64_t h = HashString(key.table_path);
  h = HashCombine(h, Mix64(static_cast<uint64_t>(key.version)));
  h = HashCombine(h, key.filter_fingerprint);
  return static_cast<size_t>(h);
}

uint64_t FilterFingerprint(const Predicate& predicate,
                           const std::string& pk_column,
                           const std::vector<std::string>& aux_columns) {
  uint64_t h = HashString(predicate.ToString());
  h = HashCombine(h, HashString(pk_column));
  for (const std::string& c : aux_columns) {
    h = HashCombine(h, HashString(c));
  }
  return h;
}

DimTableCache::DimTableCache(Options options,
                             std::shared_ptr<obs::MemTracker> parent)
    : options_(options),
      tracker_(obs::MemTracker::Create("dim-cache", std::move(parent))) {}

Result<std::shared_ptr<const DimHashTable>> DimTableCache::GetOrBuild(
    const DimCacheKey& key, const Builder& builder, bool* hit) {
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      slot = it->second;
      if (!slot->done) {
        // Single-flight: another query is building this exact entry; wait
        // for its result instead of racing a duplicate build (and a
        // duplicate MemTracker charge).
        ++stats_.shared_builds;
        cv_.wait(lock, [&] { return slot->done; });
      }
      if (!slot->status.ok()) return slot->status;
      ++stats_.hits;
      if (slot->resident) {
        lru_.splice(lru_.begin(), lru_, slot->lru_it);  // touch
      }
      if (hit != nullptr) *hit = true;
      return slot->table;
    }
    slot = std::make_shared<Slot>();
    map_.emplace(key, slot);
    ++stats_.misses;
  }
  if (hit != nullptr) *hit = false;

  // Leader path: build outside the lock so concurrent lookups of *other*
  // keys (and waiters parked on cv_) aren't serialized behind this build.
  Result<std::shared_ptr<const DimHashTable>> built = builder(tracker_);

  std::lock_guard<std::mutex> lock(mu_);
  slot->done = true;
  auto it = map_.find(key);
  const bool still_mapped = it != map_.end() && it->second == slot;
  if (!built.ok()) {
    slot->status = built.status();
    // Drop the failed slot so a later query retries the build.
    if (still_mapped) map_.erase(it);
  } else {
    slot->table = *built;
    // Invalidate(path) may have raced the build and unmapped the slot; the
    // table still goes to every waiter, it just never becomes resident (it
    // dies when the in-flight queries drop their references).
    if (still_mapped) {
      slot->resident = true;
      lru_.push_front(key);
      slot->lru_it = lru_.begin();
      stats_.resident_bytes +=
          static_cast<int64_t>(slot->table->stats().memory_bytes);
      EvictWhileOverLocked(key);
    }
  }
  cv_.notify_all();
  return built;
}

void DimTableCache::EvictWhileOverLocked(const DimCacheKey& keep) {
  if (options_.capacity_bytes == 0) return;
  while (stats_.resident_bytes >
             static_cast<int64_t>(options_.capacity_bytes) &&
         !lru_.empty()) {
    const DimCacheKey& victim = lru_.back();
    // Never evict the entry the current caller is about to probe — even if
    // it alone exceeds capacity, thrashing it in and out would rebuild it
    // on every query while freeing nothing (the caller holds a reference).
    if (victim == keep) break;
    auto it = map_.find(victim);
    DropResidencyLocked(it->second.get());
    ++stats_.evictions;
    map_.erase(it);
  }
}

void DimTableCache::DropResidencyLocked(Slot* slot) {
  if (!slot->resident) return;
  stats_.resident_bytes -=
      static_cast<int64_t>(slot->table->stats().memory_bytes);
  lru_.erase(slot->lru_it);
  slot->resident = false;
}

void DimTableCache::Invalidate(const std::string& table_path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.table_path != table_path) {
      ++it;
      continue;
    }
    DropResidencyLocked(it->second.get());
    it = map_.erase(it);
  }
}

void DimTableCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : map_) DropResidencyLocked(entry.second.get());
  map_.clear();
}

DimTableCacheStats DimTableCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DimTableCacheStats snapshot = stats_;
  snapshot.entries = static_cast<int64_t>(lru_.size());
  return snapshot;
}

}  // namespace core
}  // namespace clydesdale
