#include "core/dim_hash_table.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/byte_io.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace core {

namespace {
size_t CapacityFor(size_t entries) {
  size_t cap = 16;
  while (cap < entries * 2) cap <<= 1;
  return cap;
}
}  // namespace

void DimHashTable::ProbeBatch(const int64_t* keys, int64_t n,
                              const Row** out) const {
  if (capacity_ == 0) {
    for (int64_t i = 0; i < n; ++i) out[i] = nullptr;
    return;
  }
  const int64_t* const key_data = keys_.data();
  const int32_t* const index_data = payload_index_.data();
  const Row* const payload_data = payloads_.data();
  const size_t mask = capacity_ - 1;

  constexpr int kStride = 256;
  size_t slot[kStride];
  int32_t todo[kStride];
  int32_t hit[kStride];
  for (int64_t base = 0; base < n; base += kStride) {
    const int m = static_cast<int>(std::min<int64_t>(kStride, n - base));
    const int64_t* stride_keys = keys + base;
    const Row** stride_out = out + base;
    // Hash every lane and prefetch its home slot before touching any of
    // them: by resolve time the key loads are in flight or done.
    for (int i = 0; i < m; ++i) {
      slot[i] = HomeSlot(stride_keys[i]);
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(&key_data[slot[i]], /*rw=*/0, /*locality=*/1);
#endif
    }
    // Resolve every lane against the key lane only; hit/miss/keep-scanning
    // are computed as data (compaction counters), never as branches. Hits
    // are compacted into `hit` and their payload indexes fetched in a
    // second pass, so the payload-index lane is never loaded for misses —
    // that second random access per lane is exactly what the old
    // interleaved-slot layout paid. A probe key equal to kEmptySlotKey
    // cannot match here (empty slots hold that value); the rare table that
    // actually stores it is patched scalar at the end.
    int live = 0;
    int nhits = 0;
    for (int i = 0; i < m; ++i) {
      const int64_t k = key_data[slot[i]];
      const bool match = (k == stride_keys[i]) &
                         (stride_keys[i] != kEmptySlotKey);
      const bool empty = k == kEmptySlotKey;
      stride_out[i] = nullptr;
      hit[nhits] = i;
      nhits += static_cast<int>(match);
      todo[live] = i;
      live += static_cast<int>(!(empty | match));
    }
    while (live > 0) {
      int next_live = 0;
      for (int t = 0; t < live; ++t) {
        const int i = todo[t];
        const size_t advanced = (slot[i] + 1) & mask;
        slot[i] = advanced;
        const int64_t k = key_data[advanced];
        const bool match = (k == stride_keys[i]) &
                           (stride_keys[i] != kEmptySlotKey);
        const bool empty = k == kEmptySlotKey;
        hit[nhits] = i;
        nhits += static_cast<int>(match);
        todo[next_live] = i;
        next_live += static_cast<int>(!(empty | match));
      }
      live = next_live;
    }
    for (int t = 0; t < nhits; ++t) {
      const int i = hit[t];
      stride_out[i] = payload_data + index_data[slot[i]];
    }
    if (sentinel_payload_index_ >= 0) {
      for (int i = 0; i < m; ++i) {
        if (stride_keys[i] == kEmptySlotKey) {
          stride_out[i] =
              payload_data + static_cast<size_t>(sentinel_payload_index_);
        }
      }
    }
  }
}

void DimHashTable::Insert(int64_t key, Row payload) {
  const auto index = static_cast<int32_t>(payloads_.size());
  payloads_.push_back(std::move(payload));
  min_key_ = std::min(min_key_, key);
  max_key_ = std::max(max_key_, key);
  if (key == kEmptySlotKey) {
    sentinel_payload_index_ = index;
    return;
  }
  size_t slot = HomeSlot(key);
  while (keys_[slot] != kEmptySlotKey) {
    slot = (slot + 1) & (capacity_ - 1);
  }
  keys_[slot] = key;
  payload_index_[slot] = index;
}

Result<std::shared_ptr<const DimHashTable>> DimHashTable::Build(
    const Schema& dim_schema, const uint8_t* row_stream, size_t len,
    const Predicate& predicate, const std::string& pk_column,
    const std::vector<std::string>& aux_columns,
    std::shared_ptr<obs::MemTracker> tracker) {
  CLY_ASSIGN_OR_RETURN(BoundPredicatePtr pred, predicate.Bind(dim_schema));
  CLY_ASSIGN_OR_RETURN(int pk, dim_schema.Require(pk_column));
  std::vector<int> aux;
  aux.reserve(aux_columns.size());
  for (const std::string& name : aux_columns) {
    CLY_ASSIGN_OR_RETURN(int i, dim_schema.Require(name));
    aux.push_back(i);
  }

  // First pass: decode + filter into (key, payload) pairs.
  std::vector<std::pair<int64_t, Row>> qualifying;
  uint64_t input_rows = 0;
  uint64_t payload_bytes = 0;
  {
    storage::ByteReader reader(row_stream, len);
    Row row;
    while (!reader.AtEnd()) {
      uint32_t n = 0;
      CLY_RETURN_IF_ERROR(reader.GetU32(&n));
      if (reader.remaining() < n) {
        return Status::IoError("truncated dimension row stream");
      }
      storage::ByteReader row_reader(row_stream + reader.position(), n);
      CLY_RETURN_IF_ERROR(storage::DecodeRow(dim_schema, &row_reader, &row));
      CLY_RETURN_IF_ERROR(reader.Skip(n));
      ++input_rows;
      if (!pred->Eval(row)) continue;
      Row payload = row.Project(aux);
      payload_bytes += storage::EncodedRowSize(payload) +
                       sizeof(Row) + sizeof(Value) * payload.size();
      qualifying.emplace_back(row.Get(pk).AsInt64(), std::move(payload));
    }
  }

  auto table = std::shared_ptr<DimHashTable>(new DimHashTable());
  table->capacity_ = CapacityFor(std::max<size_t>(qualifying.size(), 1));
  table->shift_ = 64;
  for (size_t c = table->capacity_; c > 1; c >>= 1) --table->shift_;
  table->keys_.assign(table->capacity_, kEmptySlotKey);
  table->payload_index_.resize(table->capacity_);
  table->payloads_.reserve(qualifying.size());
  for (auto& [key, payload] : qualifying) {
    table->Insert(key, std::move(payload));
  }
  table->stats_.input_rows = input_rows;
  table->stats_.entries = table->payloads_.size();
  table->stats_.memory_bytes =
      table->capacity_ * (sizeof(int64_t) + sizeof(int32_t)) + payload_bytes;
  if (tracker != nullptr) {
    // The budget trip point: a table that would blow the job's
    // mem_budget_bytes fails here with ResourceExhausted before anyone
    // probes it, and the charge lives exactly as long as the table.
    table->mem_ = obs::ScopedMemConsumer(std::move(tracker));
    CLY_RETURN_IF_ERROR(table->mem_.TryAdd(
        static_cast<int64_t>(table->stats_.memory_bytes)));
  }
  return std::shared_ptr<const DimHashTable>(table);
}

}  // namespace core
}  // namespace clydesdale
