#include "core/dim_hash_table.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/byte_io.h"
#include "storage/row_codec.h"

namespace clydesdale {
namespace core {

namespace {
size_t CapacityFor(size_t entries) {
  size_t cap = 16;
  while (cap < entries * 2) cap <<= 1;
  return cap;
}
}  // namespace

void DimHashTable::Insert(int64_t key, Row payload) {
  size_t slot = static_cast<size_t>(Mix64(static_cast<uint64_t>(key))) &
                (capacity_ - 1);
  while (slots_[slot].payload_index >= 0) {
    slot = (slot + 1) & (capacity_ - 1);
  }
  slots_[slot].key = key;
  slots_[slot].payload_index = static_cast<int32_t>(payloads_.size());
  payloads_.push_back(std::move(payload));
}

Result<std::shared_ptr<const DimHashTable>> DimHashTable::Build(
    const Schema& dim_schema, const uint8_t* row_stream, size_t len,
    const Predicate& predicate, const std::string& pk_column,
    const std::vector<std::string>& aux_columns) {
  CLY_ASSIGN_OR_RETURN(BoundPredicatePtr pred, predicate.Bind(dim_schema));
  CLY_ASSIGN_OR_RETURN(int pk, dim_schema.Require(pk_column));
  std::vector<int> aux;
  aux.reserve(aux_columns.size());
  for (const std::string& name : aux_columns) {
    CLY_ASSIGN_OR_RETURN(int i, dim_schema.Require(name));
    aux.push_back(i);
  }

  // First pass: decode + filter into (key, payload) pairs.
  std::vector<std::pair<int64_t, Row>> qualifying;
  uint64_t input_rows = 0;
  uint64_t payload_bytes = 0;
  {
    storage::ByteReader reader(row_stream, len);
    Row row;
    while (!reader.AtEnd()) {
      uint32_t n = 0;
      CLY_RETURN_IF_ERROR(reader.GetU32(&n));
      if (reader.remaining() < n) {
        return Status::IoError("truncated dimension row stream");
      }
      storage::ByteReader row_reader(row_stream + reader.position(), n);
      CLY_RETURN_IF_ERROR(storage::DecodeRow(dim_schema, &row_reader, &row));
      CLY_RETURN_IF_ERROR(reader.Skip(n));
      ++input_rows;
      if (!pred->Eval(row)) continue;
      Row payload = row.Project(aux);
      payload_bytes += storage::EncodedRowSize(payload) +
                       sizeof(Row) + sizeof(Value) * payload.size();
      qualifying.emplace_back(row.Get(pk).AsInt64(), std::move(payload));
    }
  }

  auto table = std::shared_ptr<DimHashTable>(new DimHashTable());
  table->capacity_ = CapacityFor(std::max<size_t>(qualifying.size(), 1));
  table->slots_.resize(table->capacity_);
  table->payloads_.reserve(qualifying.size());
  for (auto& [key, payload] : qualifying) {
    table->Insert(key, std::move(payload));
  }
  table->stats_.input_rows = input_rows;
  table->stats_.entries = table->payloads_.size();
  table->stats_.memory_bytes =
      table->capacity_ * sizeof(Slot) + payload_bytes;
  return std::shared_ptr<const DimHashTable>(table);
}

}  // namespace core
}  // namespace clydesdale
