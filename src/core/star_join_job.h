#ifndef CLYDESDALE_CORE_STAR_JOIN_JOB_H_
#define CLYDESDALE_CORE_STAR_JOIN_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dim_hash_table.h"
#include "core/star_query.h"
#include "core/star_schema.h"
#include "mapreduce/engine.h"
#include "mapreduce/map_runner.h"

namespace clydesdale {
namespace core {

class DimTableCache;

/// Engine knobs; the three paper §6.5 ablation switches plus tuning.
struct ClydesdaleOptions {
  /// Multi-threaded map tasks sharing one hash-table copy per node
  /// (MTMapRunner, paper §5.1). Off = stock single-threaded mappers that
  /// each build their own tables.
  bool multithreaded = true;
  /// Block iteration (B-CIF, §5.3). Off = row-at-a-time record loop.
  bool block_iteration = true;
  /// Columnar projection pushdown (§4.1). Off = read every fact column.
  bool columnar = true;
  /// Share hash tables across consecutive tasks on a node (§5.2).
  bool jvm_reuse = true;
  /// Aggregate partially in the map task (the paper's combiner note, §4.2).
  /// Off = emit one record per joined row and combine before the shuffle.
  bool map_side_agg = true;
  int reduce_tasks = 1;
  /// Per-node memory budget for the dimension hash tables; 0 = unlimited.
  /// When the query's estimated tables exceed it, the engine falls back to
  /// the staged multi-pass join of paper §5.1 ("Discussion").
  uint64_t max_hash_memory_bytes = 0;
  /// Rows per B-CIF block handed to the probe loop.
  int64_t batch_rows = 4096;
  /// CIF splits packed per multi-split; 0 = all of a node's splits at once.
  int64_t multisplit_size = 0;
  /// Overlap reduce-side shuffle fetch with the map phase (JobConf::
  /// pipelined_shuffle). Off = classic map→reduce barrier; output is
  /// byte-identical either way, the knob exists for A/B measurement.
  bool pipelined_shuffle = true;
  /// Span tracing for every stage job (obs.trace.enabled). Counters and
  /// histograms are always maintained; only span recording is gated.
  bool trace = false;
  /// When tracing, write <job>-<instance>.trace.json/.timeline.txt into
  /// this directory (obs.trace.dir). Empty = keep spans in-memory only.
  std::string trace_dir;
  /// Live cluster metrics + online straggler detection for every stage job
  /// (obs.metrics.enabled): the MetricsPoller samples the registry on
  /// `metrics_interval_ms` and, when trace_dir is set, RunJob writes
  /// .prom/.metrics.json/.dashboard.txt artifacts next to the trace.
  bool metrics = false;
  int64_t metrics_interval_ms = 5;
  /// Structured JSONL job-history log (obs.history.enabled), persisted to
  /// node 0's LocalStore and (with trace_dir) as <job>-<n>.history.jsonl.
  bool history = false;
  /// Per-operator query profiler (obs.profile.enabled): scan/probe/aggregate
  /// nodes accumulated per task attempt, merged into JobReport::profile and
  /// rendered as EXPLAIN ANALYZE. Off = zero instrumentation overhead.
  bool profile = false;
  /// Late-materialization CIF scan (cif.scan.late_materialize): evaluate
  /// pushed-down predicates and dimension-key filters on encoded column
  /// blocks, consult zone maps to skip whole blocks, and decode strings
  /// zero-copy. Only affects v2+ CIF tables; results are byte-identical
  /// either way — the knob exists for A/B measurement.
  bool late_materialize = true;
  /// Double-buffered async block read-ahead in the CIF scan
  /// (cif.scan.prefetch): a worker thread fetches the next column block
  /// while the current one decodes. Off by default; byte-identical results.
  bool scan_prefetch = false;
  /// Carry RLE run metadata from CIF v3 blocks into the probe loop so
  /// foreign-key probes and COUNT-style aggregates work per run instead of
  /// per row. On by default (the vectorized probe is run-aware); the knob
  /// exists for A/B measurement — results are byte-identical either way.
  bool expose_runs = true;
  /// Hierarchical memory accounting (obs.mem.enabled): the MemTracker tree
  /// charges dim hash tables, scan arenas, aggregation tables and shuffle
  /// runs, surfacing per-operator bytes in EXPLAIN ANALYZE and MEM_*
  /// counters. On by default; off removes all tracking for A/B overhead
  /// measurement.
  bool mem_tracking = true;
  /// Per-job memory budget (JobConf::mem_budget_bytes): admission control
  /// rejects a query whose estimated dimension tables exceed it, and a
  /// runtime breach fails the attempt with ResourceExhausted. 0 = unlimited.
  /// Distinct from max_hash_memory_bytes, which *re-plans* (staged
  /// fallback) instead of rejecting.
  uint64_t mem_budget_bytes = 0;
  /// Cross-query dimension hash-table cache (serving mode, DESIGN.md §15).
  /// When set, the build path becomes a cluster-wide cache lookup keyed by
  /// (table path, table version, filter fingerprint): repeated queries probe
  /// tables built by earlier jobs, concurrent jobs single-flight the build,
  /// and the bytes charge the cache's MemTracker instead of the job's. Null
  /// (the default) keeps per-job builds — the paper's behaviour.
  std::shared_ptr<DimTableCache> dim_cache;
};

/// Forwards the options' engine knobs (trace, pipelined shuffle) into a
/// stage job's conf; every Clydesdale stage job (single-job, staged
/// fallback) goes through this so traces stay comparable across plans.
void ApplyTraceConf(const ClydesdaleOptions& options, mr::JobConf* conf);

/// Conf key: comma-separated output columns for staged-join stages. When
/// set, the star-join map emits joined rows projected to these columns (one
/// per surviving fact row) instead of aggregating — the building block of
/// the paper's §5.1 memory-constrained fallback.
inline constexpr const char kConfJoinEmitColumns[] = "clydesdale.join.emit.columns";

// Clydesdale-specific job counters.
inline constexpr const char kCounterHashBuilds[] = "CLY_HASH_TABLE_BUILDS";
inline constexpr const char kCounterHashBuildRows[] = "CLY_HASH_BUILD_INPUT_ROWS";
inline constexpr const char kCounterHashEntries[] = "CLY_HASH_ENTRIES";
inline constexpr const char kCounterHashBytes[] = "CLY_HASH_MEMORY_BYTES";
inline constexpr const char kCounterProbeRows[] = "CLY_PROBE_INPUT_ROWS";
inline constexpr const char kCounterJoinOutputRows[] = "CLY_JOIN_OUTPUT_ROWS";
// Vectorized-pipeline counters: blocks through the selection-vector probe
// loop, and the per-thread partial-aggregate table shape at task end.
inline constexpr const char kCounterProbeBatches[] = "CLY_PROBE_BATCHES";
inline constexpr const char kCounterAggGroups[] = "CLY_AGG_PARTIAL_GROUPS";
inline constexpr const char kCounterAggBytes[] = "CLY_AGG_MEMORY_BYTES";

/// Every Clydesdale-specific counter name above, for the same
/// scripts/check_counters.sh audit that covers the engine counters.
std::vector<std::string> ClydesdaleCounterNames();

/// Histogram (JobReport::histograms): per-probe-thread join hit rate as a
/// percentage (100 * join output rows / probed rows) — the paper's
/// predicate+join selectivity, distributionally.
inline constexpr const char kHistProbeHitPct[] = "CLY_PROBE_HIT_PCT";

/// The dimension hash tables of one query on one node.
struct QueryHashTables {
  std::vector<std::shared_ptr<const DimHashTable>> tables;
  uint64_t total_memory_bytes = 0;
};

/// Builds every dimension hash table of `spec` from the node-local replicas
/// (fetching from HDFS if a replica is missing). Updates the CLY_HASH_*
/// counters for tables actually built. With options.dim_cache set, each
/// table is a cross-query cache lookup instead: cache-warm dimensions skip
/// the replica read and build entirely (flushing CACHE_DIM_HITS/MISSES).
Result<std::shared_ptr<QueryHashTables>> BuildQueryHashTables(
    mr::TaskContext* context, const StarSchema& star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options);

/// Returns the node's shared tables, building on first use (JVM reuse: one
/// build per node per query when tasks share state).
Result<std::shared_ptr<QueryHashTables>> GetOrBuildHashTables(
    mr::TaskContext* context, const StarSchema& star,
    const StarQuerySpec& spec, const ClydesdaleOptions& options);

/// Clydesdale's MTMapRunner (paper Figure 5): builds the hash tables once,
/// then runs the probe over the multi-split's constituents with one thread
/// per granted slot, each with its own reader and partial aggregator.
class StarJoinMapRunner final : public mr::MapRunner {
 public:
  StarJoinMapRunner(std::shared_ptr<const StarSchema> star,
                    StarQuerySpec spec, ClydesdaleOptions options)
      : star_(std::move(star)), spec_(std::move(spec)), options_(options) {}

  Status Run(const mr::InputSplit& split, mr::InputFormat* input_format,
             mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  std::shared_ptr<const StarSchema> star_;
  StarQuerySpec spec_;
  ClydesdaleOptions options_;
};

/// Single-threaded mapper (paper Figure 4's QMapper); used when
/// options.multithreaded is off. Each task obtains (or, without JVM reuse,
/// builds) the hash tables in Setup.
class StarJoinMapper final : public mr::Mapper {
 public:
  StarJoinMapper(std::shared_ptr<const StarSchema> star, StarQuerySpec spec,
                 ClydesdaleOptions options)
      : star_(std::move(star)), spec_(std::move(spec)), options_(options) {}

  Status Setup(mr::TaskContext* context) override;
  Status Map(const Row& key, const Row& value, mr::TaskContext* context,
             mr::OutputCollector* out) override;
  Status Cleanup(mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  std::shared_ptr<const StarSchema> star_;
  StarQuerySpec spec_;
  ClydesdaleOptions options_;

  struct TaskState;
  std::shared_ptr<TaskState> state_;
};

}  // namespace core
}  // namespace clydesdale

#endif  // CLYDESDALE_CORE_STAR_JOIN_JOB_H_
