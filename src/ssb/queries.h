#ifndef CLYDESDALE_SSB_QUERIES_H_
#define CLYDESDALE_SSB_QUERIES_H_

#include <string>
#include <vector>

#include "core/star_query.h"

namespace clydesdale {
namespace ssb {

/// The 13 Star Schema Benchmark queries (flights 1-4), expressed as star
/// query specs. Flight 1 filters the fact table directly and joins only
/// Date; flight 4 joins all four dimensions (paper §6.2).
std::vector<core::StarQuerySpec> AllQueries();

/// Lookup by id ("Q1.1" .. "Q4.3").
Result<core::StarQuerySpec> QueryById(const std::string& id);

/// Query flight (1-4) of a query id.
int FlightOf(const std::string& id);

}  // namespace ssb
}  // namespace clydesdale

#endif  // CLYDESDALE_SSB_QUERIES_H_
