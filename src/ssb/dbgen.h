#ifndef CLYDESDALE_SSB_DBGEN_H_
#define CLYDESDALE_SSB_DBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "schema/row.h"
#include "ssb/ssb_schema.h"

namespace clydesdale {
namespace ssb {

/// Deterministic SSB data generator (the stand-in for the benchmark's dbgen).
/// Rows are a function of (seed, table, index): two generators with the same
/// seed and scale produce identical data, and dimension keys referenced by
/// lineorder always exist.
class SsbGenerator {
 public:
  explicit SsbGenerator(double scale_factor, uint64_t seed = 19920101);

  double scale_factor() const { return sf_; }
  const SsbCardinalities& cardinalities() const { return card_; }

  /// Dimension rows by key (1-based, up to the table's cardinality).
  Row CustomerRow(int64_t custkey) const;
  Row SupplierRow(int64_t suppkey) const;
  Row PartRow(int64_t partkey) const;
  /// Date rows by day index (0-based, 0 = 1992-01-01).
  Row DateRow(int64_t day_index) const;

  /// Sequential lineorder stream; one instance per scan.
  class LineorderStream {
   public:
    /// Returns false when all orders are exhausted.
    bool Next(Row* out);
    uint64_t rows_emitted() const { return rows_emitted_; }

   private:
    friend class SsbGenerator;
    LineorderStream(const SsbGenerator* gen, uint64_t first_order,
                    uint64_t order_limit);

    const SsbGenerator* gen_;
    uint64_t next_order_;
    uint64_t order_limit_;
    int line_ = 0;
    int lines_in_order_ = 0;
    // Order-level attributes shared by its lines.
    int32_t custkey_ = 0;
    int32_t orderdate_ = 0;
    int64_t commit_base_day_ = 0;
    int32_t ordtotalprice_ = 0;
    std::string orderpriority_;
    Random line_rng_{0};
    uint64_t rows_emitted_ = 0;
  };

  /// Stream over all orders, or a sub-range for parallel generation.
  LineorderStream Lineorders() const;
  LineorderStream LineorderRange(uint64_t first_order,
                                 uint64_t order_limit) const;

  /// Total days in the date dimension.
  int64_t num_dates() const { return static_cast<int64_t>(card_.dates); }

  /// datekey (yyyymmdd) for a 0-based day index and back.
  int32_t DateKeyForIndex(int64_t day_index) const;

 private:
  Random RngFor(uint32_t table, int64_t index) const;

  double sf_;
  uint64_t seed_;
  SsbCardinalities card_;
  /// Day index -> (year, month, day, yyyymmdd) precomputed calendar.
  struct CalendarDay {
    int16_t year;
    int8_t month;
    int8_t day;
    int32_t datekey;
    int16_t day_of_year;
    int8_t day_of_week;  // 0 = Monday (1992-01-01 was a Wednesday = 2)
  };
  std::vector<CalendarDay> calendar_;
};

}  // namespace ssb
}  // namespace clydesdale

#endif  // CLYDESDALE_SSB_DBGEN_H_
