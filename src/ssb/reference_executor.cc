#include "ssb/reference_executor.h"

#include <unordered_map>

#include "common/strings.h"
#include "core/aggregation.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace ssb {

namespace {

struct DimSide {
  /// pk -> auxiliary columns of qualifying rows.
  std::unordered_map<int64_t, Row> table;
  int fk_index = -1;  // position of the FK in the projected fact row
};

}  // namespace

Result<std::vector<Row>> ExecuteReference(mr::MrCluster* cluster,
                                          const core::StarSchema& star,
                                          const core::StarQuerySpec& spec) {
  // --- build dimension maps ----------------------------------------------------
  const std::vector<std::string> fact_columns = core::FactColumnsFor(spec);
  SchemaPtr fact_schema;
  {
    std::vector<int> idx;
    for (const std::string& c : fact_columns) {
      CLY_ASSIGN_OR_RETURN(int i, star.fact().schema->Require(c));
      idx.push_back(i);
    }
    fact_schema = star.fact().schema->Project(idx);
  }

  std::vector<DimSide> sides;
  sides.reserve(spec.dims.size());
  for (const core::DimJoinSpec& join : spec.dims) {
    CLY_ASSIGN_OR_RETURN(const core::DimTableInfo* dim, star.dim(join.dimension));
    CLY_ASSIGN_OR_RETURN(BoundPredicatePtr pred,
                         join.predicate->Bind(*dim->desc.schema));
    CLY_ASSIGN_OR_RETURN(int pk, dim->desc.schema->Require(join.dim_pk));
    std::vector<int> aux;
    for (const std::string& a : join.aux_columns) {
      CLY_ASSIGN_OR_RETURN(int i, dim->desc.schema->Require(a));
      aux.push_back(i);
    }

    storage::ScanOptions scan;
    CLY_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        storage::ScanTableToVector(*cluster->dfs(), dim->desc, scan));
    DimSide side;
    CLY_ASSIGN_OR_RETURN(side.fk_index, fact_schema->Require(join.fact_fk));
    for (const Row& row : rows) {
      if (!pred->Eval(row)) continue;
      side.table.emplace(row.Get(pk).AsInt64(), row.Project(aux));
    }
    sides.push_back(std::move(side));
  }

  // --- scan + probe + aggregate -------------------------------------------------
  CLY_ASSIGN_OR_RETURN(BoundPredicatePtr fact_pred,
                       spec.fact_predicate->Bind(*fact_schema));
  const core::AggLayout layout = core::AggLayout::For(spec.aggregates);
  std::vector<BoundScalarPtr> acc_exprs;  // null = the constant 1 (COUNT)
  for (int expr_index : layout.expr_index()) {
    if (expr_index < 0) {
      acc_exprs.push_back(nullptr);
      continue;
    }
    CLY_ASSIGN_OR_RETURN(
        BoundScalarPtr e,
        spec.aggregates[static_cast<size_t>(expr_index)].expr->Bind(
            *fact_schema));
    acc_exprs.push_back(std::move(e));
  }

  CLY_ASSIGN_OR_RETURN(std::vector<core::GroupSource> group_sources,
                       core::ResolveGroupSources(spec, *fact_schema));

  std::unordered_map<Row, std::vector<int64_t>, RowHasher> groups;

  storage::ScanOptions scan;
  scan.projection = fact_columns;
  CLY_ASSIGN_OR_RETURN(storage::TableDesc fact_desc,
                       cluster->GetTable(star.fact().path));
  CLY_ASSIGN_OR_RETURN(std::vector<storage::StorageSplit> splits,
                       storage::ListTableSplits(*cluster->dfs(), fact_desc));
  std::vector<const Row*> matched(sides.size());
  for (const storage::StorageSplit& split : splits) {
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::RowReader> reader,
        storage::OpenSplitRowReader(*cluster->dfs(), fact_desc, split, scan));
    Row row;
    while (true) {
      CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      if (!fact_pred->Eval(row)) continue;
      bool ok = true;
      for (size_t d = 0; d < sides.size(); ++d) {
        auto it = sides[d].table.find(row.Get(sides[d].fk_index).AsInt64());
        if (it == sides[d].table.end()) {
          ok = false;
          break;  // early-out
        }
        matched[d] = &it->second;
      }
      if (!ok) continue;

      Row group_key;
      group_key.Reserve(static_cast<int>(group_sources.size()));
      for (const core::GroupSource& src : group_sources) {
        group_key.Append(src.from_fact
                             ? row.Get(src.fact_index)
                             : matched[static_cast<size_t>(src.dim_index)]->Get(
                                   src.aux_index));
      }
      std::vector<int64_t> init(acc_exprs.size());
      for (size_t a = 0; a < acc_exprs.size(); ++a) {
        init[a] = core::AggLayout::InitValue(layout.accs()[a]);
      }
      auto [it, inserted] =
          groups.try_emplace(std::move(group_key), std::move(init));
      std::vector<int64_t> in(acc_exprs.size());
      for (size_t a = 0; a < acc_exprs.size(); ++a) {
        in[a] = acc_exprs[a] == nullptr ? 1 : acc_exprs[a]->Eval(row).AsInt64();
      }
      layout.Merge(it->second.data(), in.data());
    }
  }

  // --- materialize + order -------------------------------------------------------
  std::vector<Row> result;
  result.reserve(groups.size());
  for (auto& [key, accs] : groups) {
    Row row = key;
    for (int64_t a : accs) row.Append(Value(a));
    result.push_back(std::move(row));
  }
  CLY_RETURN_IF_ERROR(core::FinalizeAggRows(spec, &result));
  CLY_RETURN_IF_ERROR(core::SortResultRows(spec, &result));
  return result;
}

}  // namespace ssb
}  // namespace clydesdale
