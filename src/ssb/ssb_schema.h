#ifndef CLYDESDALE_SSB_SSB_SCHEMA_H_
#define CLYDESDALE_SSB_SSB_SCHEMA_H_

#include <string>

#include "schema/schema.h"

namespace clydesdale {
namespace ssb {

/// Star Schema Benchmark tables (O'Neil et al.; paper Figure 1).
/// Money columns are integer cents; dates are int32 yyyymmdd keys.
SchemaPtr LineorderSchema();
SchemaPtr CustomerSchema();
SchemaPtr SupplierSchema();
SchemaPtr PartSchema();
SchemaPtr DateSchema();

/// SSB row counts at scale factor `sf`. Lineorder is approximate (the
/// generator draws 1..7 lines per order, averaging 4); the others are exact.
struct SsbCardinalities {
  uint64_t orders;
  uint64_t customers;
  uint64_t suppliers;
  uint64_t parts;
  uint64_t dates;  // fixed at 2,556 (1992-01-01 .. 1998-12-31)
};

SsbCardinalities CardinalitiesFor(double scale_factor);

// Region / nation vocabulary (25 nations, 5 per region, TPC-H mapping).
inline constexpr int kNumNations = 25;
inline constexpr int kNumRegions = 5;
const char* NationName(int nation_index);
const char* RegionOfNation(int nation_index);
/// City c (0..9) of a nation: first 9 chars of the nation name (space padded)
/// + the digit, e.g. "UNITED KI1".
std::string CityName(int nation_index, int city_index);

}  // namespace ssb
}  // namespace clydesdale

#endif  // CLYDESDALE_SSB_SSB_SCHEMA_H_
