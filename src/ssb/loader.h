#ifndef CLYDESDALE_SSB_LOADER_H_
#define CLYDESDALE_SSB_LOADER_H_

#include <string>

#include "core/star_schema.h"
#include "mapreduce/engine.h"
#include "ssb/dbgen.h"

namespace clydesdale {
namespace ssb {

struct SsbLoadOptions {
  double scale_factor = 0.01;
  std::string root = "/ssb";
  uint64_t seed = 19920101;
  /// Rows per CIF split / RCFile row group; 0 picks a value that gives every
  /// node several splits and respects the DFS block size.
  uint64_t rows_per_split = 0;
  /// Also write the fact table in RCFile (the Hive baseline's format).
  bool with_rcfile = true;
  /// Also write the fact table as dbgen-style text (size comparisons only).
  bool with_text = false;
  /// Run ANALYZE over the loaded tables and persist the per-column
  /// statistics (row count, min/max, NDV sketch, equi-depth histogram) in a
  /// StatsCatalog under `stats_root` — the cost-model input surface
  /// (ROADMAP item 3). Off by default: loading stays write-only.
  bool analyze = false;
  std::string stats_root = "/stats";
};

/// A loaded SSB deployment.
struct SsbDataset {
  /// Fact in MultiCIF-ready CIF format + the four dimensions, with local
  /// replicas installed on every node (paper §6.2 storage setup).
  core::StarSchema star;
  /// Fact copy in RCFile for the Hive baseline (empty path when disabled).
  storage::TableDesc fact_rcfile;
  /// Fact copy in text (empty path when disabled).
  storage::TableDesc fact_text;
  SsbCardinalities cards;
  uint64_t lineorder_rows = 0;
  double scale_factor = 0;
};

/// Generates SSB data at the given scale and loads it into the cluster:
/// CIF (+ optional RCFile/text) fact copies in HDFS, dimensions as binary
/// tables in HDFS with replicas on every node's local disk.
Result<SsbDataset> LoadSsb(mr::MrCluster* cluster,
                           const SsbLoadOptions& options);

}  // namespace ssb
}  // namespace clydesdale

#endif  // CLYDESDALE_SSB_LOADER_H_
