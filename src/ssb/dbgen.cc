#include "ssb/dbgen.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"

namespace clydesdale {
namespace ssb {

namespace {

constexpr uint32_t kTableCustomer = 1;
constexpr uint32_t kTableSupplier = 2;
constexpr uint32_t kTablePart = 3;
constexpr uint32_t kTableOrder = 5;

const char* const kMonthNames[12] = {"January", "February", "March",
                                     "April",   "May",      "June",
                                     "July",    "August",   "September",
                                     "October", "November", "December"};
const char* const kMonthAbbrev[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                      "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
const char* const kWeekdays[7] = {"Monday", "Tuesday",  "Wednesday", "Thursday",
                                  "Friday", "Saturday", "Sunday"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECI", "5-LOW"};
const char* const kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};
const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "MACHINERY", "HOUSEHOLD"};
const char* const kColors[10] = {"almond", "azure",  "beige", "blush",
                                 "chiffon", "coral", "khaki", "linen",
                                 "mint",    "navy"};
const char* const kTypes[6] = {"STANDARD POLISHED TIN", "SMALL PLATED COPPER",
                               "MEDIUM BURNISHED BRASS", "ECONOMY ANODIZED STEEL",
                               "LARGE BRUSHED NICKEL", "PROMO WROUGHT PEWTER"};
const char* const kContainers[8] = {"SM CASE", "SM BOX", "MED BAG", "MED BOX",
                                    "LG CASE", "LG BOX", "WRAP JAR", "JUMBO PKG"};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

std::string PhoneFor(Random* rng, int nation_index) {
  // "NN-NNN-NNN-NNNN" with the country code tied to the nation.
  return StrCat(10 + nation_index, "-", rng->Uniform(100, 999), "-",
                rng->Uniform(100, 999), "-", rng->Uniform(1000, 9999));
}

std::string SeasonFor(int month) {
  if (month == 12 || month == 1) return "Christmas";
  if (month >= 2 && month <= 4) return "Winter";
  if (month >= 5 && month <= 7) return "Summer";
  if (month >= 8 && month <= 9) return "Fall";
  return "Holiday";
}

}  // namespace

SsbGenerator::SsbGenerator(double scale_factor, uint64_t seed)
    : sf_(scale_factor), seed_(seed), card_(CardinalitiesFor(scale_factor)) {
  CLY_CHECK(scale_factor > 0);
  // Build the 1992-1998 calendar (2,556 days; 1992 and 1996 are leap years).
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  calendar_.reserve(card_.dates);
  int16_t day_of_year = 1;
  int8_t day_of_week = 2;  // 1992-01-01 was a Wednesday.
  for (int year = 1992; year <= 1998; ++year) {
    day_of_year = 1;
    for (int month = 1; month <= 12; ++month) {
      int days = kDays[month - 1];
      if (month == 2 && IsLeapYear(year)) days = 29;
      for (int day = 1; day <= days; ++day) {
        CalendarDay cd;
        cd.year = static_cast<int16_t>(year);
        cd.month = static_cast<int8_t>(month);
        cd.day = static_cast<int8_t>(day);
        cd.datekey = year * 10000 + month * 100 + day;
        cd.day_of_year = day_of_year++;
        cd.day_of_week = day_of_week;
        day_of_week = static_cast<int8_t>((day_of_week + 1) % 7);
        calendar_.push_back(cd);
      }
    }
  }
  CLY_CHECK(calendar_.size() == card_.dates);
}

Random SsbGenerator::RngFor(uint32_t table, int64_t index) const {
  return Random(HashCombine(seed_, HashCombine(table, Mix64(
                                       static_cast<uint64_t>(index)))));
}

int32_t SsbGenerator::DateKeyForIndex(int64_t day_index) const {
  return calendar_[static_cast<size_t>(day_index)].datekey;
}

Row SsbGenerator::CustomerRow(int64_t custkey) const {
  Random rng = RngFor(kTableCustomer, custkey);
  const int nation = static_cast<int>(rng.Uniform(0, kNumNations - 1));
  const int city = static_cast<int>(rng.Uniform(0, 9));
  Row row;
  row.Reserve(8);
  row.Append(Value(static_cast<int32_t>(custkey)));
  row.Append(Value(StrCat("Customer#", Pad(StrCat(custkey), -9))));
  row.Append(Value(StrCat("Addr", rng.Uniform(100000, 999999), " St ",
                          rng.Uniform(1, 99))));
  row.Append(Value(CityName(nation, city)));
  row.Append(Value(NationName(nation)));
  row.Append(Value(RegionOfNation(nation)));
  row.Append(Value(PhoneFor(&rng, nation)));
  row.Append(Value(kSegments[rng.Uniform(0, 4)]));
  return row;
}

Row SsbGenerator::SupplierRow(int64_t suppkey) const {
  Random rng = RngFor(kTableSupplier, suppkey);
  const int nation = static_cast<int>(rng.Uniform(0, kNumNations - 1));
  const int city = static_cast<int>(rng.Uniform(0, 9));
  Row row;
  row.Reserve(7);
  row.Append(Value(static_cast<int32_t>(suppkey)));
  row.Append(Value(StrCat("Supplier#", Pad(StrCat(suppkey), -9))));
  row.Append(Value(StrCat("Addr", rng.Uniform(100000, 999999), " Ave ",
                          rng.Uniform(1, 99))));
  row.Append(Value(CityName(nation, city)));
  row.Append(Value(NationName(nation)));
  row.Append(Value(RegionOfNation(nation)));
  row.Append(Value(PhoneFor(&rng, nation)));
  return row;
}

Row SsbGenerator::PartRow(int64_t partkey) const {
  Random rng = RngFor(kTablePart, partkey);
  const int mfgr = static_cast<int>(rng.Uniform(1, 5));
  const int category = static_cast<int>(rng.Uniform(1, 5));
  const int brand = static_cast<int>(rng.Uniform(1, 40));
  Row row;
  row.Reserve(9);
  row.Append(Value(static_cast<int32_t>(partkey)));
  row.Append(Value(StrCat(kColors[rng.Uniform(0, 9)], " ",
                          kColors[rng.Uniform(0, 9)])));
  row.Append(Value(StrCat("MFGR#", mfgr)));
  row.Append(Value(StrCat("MFGR#", mfgr, category)));
  row.Append(Value(StrCat("MFGR#", mfgr, category, brand)));
  row.Append(Value(kColors[rng.Uniform(0, 9)]));
  row.Append(Value(kTypes[rng.Uniform(0, 5)]));
  row.Append(Value(static_cast<int32_t>(rng.Uniform(1, 50))));
  row.Append(Value(kContainers[rng.Uniform(0, 7)]));
  return row;
}

Row SsbGenerator::DateRow(int64_t day_index) const {
  const CalendarDay& cd = calendar_[static_cast<size_t>(day_index)];
  Row row;
  row.Reserve(17);
  row.Append(Value(cd.datekey));
  row.Append(Value(StrCat(kMonthNames[cd.month - 1], " ", int{cd.day}, ", ",
                          int{cd.year})));
  row.Append(Value(kWeekdays[cd.day_of_week]));
  row.Append(Value(kMonthNames[cd.month - 1]));
  row.Append(Value(static_cast<int32_t>(cd.year)));
  row.Append(Value(static_cast<int32_t>(cd.year * 100 + cd.month)));
  row.Append(Value(StrCat(kMonthAbbrev[cd.month - 1], int{cd.year})));
  row.Append(Value(static_cast<int32_t>(cd.day_of_week + 1)));
  row.Append(Value(static_cast<int32_t>(cd.day)));
  row.Append(Value(static_cast<int32_t>(cd.day_of_year)));
  row.Append(Value(static_cast<int32_t>(cd.month)));
  row.Append(Value(static_cast<int32_t>((cd.day_of_year - 1) / 7 + 1)));
  row.Append(Value(SeasonFor(cd.month)));
  row.Append(Value(static_cast<int32_t>(cd.day_of_week == 6 ? 1 : 0)));
  row.Append(Value(static_cast<int32_t>(
      (day_index + 1 < static_cast<int64_t>(calendar_.size()) &&
       calendar_[static_cast<size_t>(day_index + 1)].month != cd.month) ||
              day_index + 1 == static_cast<int64_t>(calendar_.size())
          ? 1
          : 0)));
  row.Append(Value(static_cast<int32_t>(
      (cd.month == 12 && cd.day == 25) || (cd.month == 1 && cd.day == 1) ? 1
                                                                         : 0)));
  row.Append(Value(static_cast<int32_t>(cd.day_of_week < 5 ? 1 : 0)));
  return row;
}

SsbGenerator::LineorderStream::LineorderStream(const SsbGenerator* gen,
                                               uint64_t first_order,
                                               uint64_t order_limit)
    : gen_(gen), next_order_(first_order), order_limit_(order_limit) {}

bool SsbGenerator::LineorderStream::Next(Row* out) {
  // The paper's orderdate range follows TPC-H: orders span 1992-01-01 to
  // 1998-08-02 (commitdate may run past it).
  static constexpr int64_t kOrderableDays = 2406;

  if (line_ >= lines_in_order_) {
    if (next_order_ > order_limit_) return false;
    const uint64_t orderkey = next_order_++;
    line_rng_ = gen_->RngFor(kTableOrder, static_cast<int64_t>(orderkey));
    lines_in_order_ = static_cast<int>(line_rng_.Uniform(1, 7));
    line_ = 0;
    custkey_ = static_cast<int32_t>(
        line_rng_.Uniform(1, static_cast<int64_t>(gen_->card_.customers)));
    const int64_t day = line_rng_.Uniform(0, kOrderableDays - 1);
    orderdate_ = gen_->DateKeyForIndex(day);
    orderpriority_ = kPriorities[line_rng_.Uniform(0, 4)];
    // Order total is drawn up front (dbgen derives it from the lines; a draw
    // keeps the stream single-pass and it is never aggregated in SSB).
    ordtotalprice_ = static_cast<int32_t>(line_rng_.Uniform(20000, 40000000));
    // Re-anchor the date index for commitdate computation below.
    commit_base_day_ = day;
  }

  const int32_t linenumber = static_cast<int32_t>(++line_);
  const int32_t partkey = static_cast<int32_t>(
      line_rng_.Uniform(1, static_cast<int64_t>(gen_->card_.parts)));
  const int32_t suppkey = static_cast<int32_t>(
      line_rng_.Uniform(1, static_cast<int64_t>(gen_->card_.suppliers)));
  const int32_t quantity = static_cast<int32_t>(line_rng_.Uniform(1, 50));
  const int32_t unit_price = static_cast<int32_t>(line_rng_.Uniform(900, 110000));
  int64_t extended = static_cast<int64_t>(quantity) * unit_price;
  extended = std::min<int64_t>(extended, 5545050);  // dbgen's MAX_LO_PRICE cap
  const int32_t discount = static_cast<int32_t>(line_rng_.Uniform(0, 10));
  const int32_t revenue =
      static_cast<int32_t>(extended * (100 - discount) / 100);
  const int32_t supplycost = static_cast<int32_t>(line_rng_.Uniform(100, 60000));
  const int32_t tax = static_cast<int32_t>(line_rng_.Uniform(0, 8));
  const int64_t commit_day =
      std::min<int64_t>(commit_base_day_ + line_rng_.Uniform(30, 90),
                        gen_->num_dates() - 1);

  out->Clear();
  out->Reserve(17);
  out->Append(Value(static_cast<int32_t>(next_order_ - 1)));
  out->Append(Value(linenumber));
  out->Append(Value(custkey_));
  out->Append(Value(partkey));
  out->Append(Value(suppkey));
  out->Append(Value(orderdate_));
  out->Append(Value(orderpriority_));
  out->Append(Value(static_cast<int32_t>(0)));
  out->Append(Value(quantity));
  out->Append(Value(static_cast<int32_t>(extended)));
  out->Append(Value(ordtotalprice_));
  out->Append(Value(discount));
  out->Append(Value(revenue));
  out->Append(Value(supplycost));
  out->Append(Value(tax));
  out->Append(Value(gen_->DateKeyForIndex(commit_day)));
  out->Append(Value(kShipModes[line_rng_.Uniform(0, 6)]));
  ++rows_emitted_;
  return true;
}

SsbGenerator::LineorderStream SsbGenerator::Lineorders() const {
  return LineorderStream(this, 1, card_.orders);
}

SsbGenerator::LineorderStream SsbGenerator::LineorderRange(
    uint64_t first_order, uint64_t order_limit) const {
  return LineorderStream(this, first_order, order_limit);
}

}  // namespace ssb
}  // namespace clydesdale
