#include "ssb/ssb_schema.h"

#include <algorithm>
#include <cmath>

namespace clydesdale {
namespace ssb {

namespace {
constexpr TypeKind kI32 = TypeKind::kInt32;
constexpr TypeKind kI64 = TypeKind::kInt64;
constexpr TypeKind kStr = TypeKind::kString;
}  // namespace

SchemaPtr LineorderSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"lo_orderkey", kI32, 4},
      {"lo_linenumber", kI32, 4},
      {"lo_custkey", kI32, 4},
      {"lo_partkey", kI32, 4},
      {"lo_suppkey", kI32, 4},
      {"lo_orderdate", kI32, 4},
      {"lo_orderpriority", kStr, 10.4},
      {"lo_shippriority", kI32, 4},
      {"lo_quantity", kI32, 4},
      {"lo_extendedprice", kI32, 4},
      {"lo_ordtotalprice", kI32, 4},
      {"lo_discount", kI32, 4},
      {"lo_revenue", kI32, 4},
      {"lo_supplycost", kI32, 4},
      {"lo_tax", kI32, 4},
      {"lo_commitdate", kI32, 4},
      {"lo_shipmode", kStr, 6.3},
  });
  return kSchema;
}

SchemaPtr CustomerSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"c_custkey", kI32, 4},
      {"c_name", kStr, 20},
      {"c_address", kStr, 17},
      {"c_city", kStr, 12},
      {"c_nation", kStr, 11.8},
      {"c_region", kStr, 8.6},
      {"c_phone", kStr, 17},
      {"c_mktsegment", kStr, 10.8},
  });
  return kSchema;
}

SchemaPtr SupplierSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"s_suppkey", kI32, 4},
      {"s_name", kStr, 20},
      {"s_address", kStr, 17},
      {"s_city", kStr, 12},
      {"s_nation", kStr, 11.8},
      {"s_region", kStr, 8.6},
      {"s_phone", kStr, 17},
  });
  return kSchema;
}

SchemaPtr PartSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"p_partkey", kI32, 4},
      {"p_name", kStr, 14},
      {"p_mfgr", kStr, 8},
      {"p_category", kStr, 9},
      {"p_brand1", kStr, 11},
      {"p_color", kStr, 11},
      {"p_type", kStr, 22},
      {"p_size", kI32, 4},
      {"p_container", kStr, 12},
  });
  return kSchema;
}

SchemaPtr DateSchema() {
  static const SchemaPtr kSchema = Schema::Make({
      {"d_datekey", kI32, 4},
      {"d_date", kStr, 20},
      {"d_dayofweek", kStr, 11},
      {"d_month", kStr, 10},
      {"d_year", kI32, 4},
      {"d_yearmonthnum", kI32, 4},
      {"d_yearmonth", kStr, 9},
      {"d_daynuminweek", kI32, 4},
      {"d_daynuminmonth", kI32, 4},
      {"d_daynuminyear", kI32, 4},
      {"d_monthnuminyear", kI32, 4},
      {"d_weeknuminyear", kI32, 4},
      {"d_sellingseason", kStr, 9},
      {"d_lastdayinweekfl", kI32, 4},
      {"d_lastdayinmonthfl", kI32, 4},
      {"d_holidayfl", kI32, 4},
      {"d_weekdayfl", kI32, 4},
  });
  return kSchema;
}

SsbCardinalities CardinalitiesFor(double sf) {
  SsbCardinalities c;
  c.orders = static_cast<uint64_t>(std::max(1.0, 1'500'000.0 * sf));
  c.customers = static_cast<uint64_t>(std::max(25.0, 30'000.0 * sf));
  c.suppliers = static_cast<uint64_t>(std::max(25.0, 2'000.0 * sf));
  // SSB spec: 200,000 * (1 + floor(log2(sf))) for sf >= 1; scaled linearly
  // (with a floor) below that for laptop-scale runs.
  if (sf >= 1.0) {
    c.parts = static_cast<uint64_t>(
        200'000.0 * (1.0 + std::floor(std::log2(sf))));
  } else {
    c.parts = static_cast<uint64_t>(std::max(200.0, 200'000.0 * sf));
  }
  // 7 full years 1992-1998 with two leap days (1992, 1996). The SSB spec
  // quotes 2,556; the real calendar has 2,557 days and we keep it exact.
  c.dates = 2557;
  return c;
}

namespace {
struct Nation {
  const char* name;
  const char* region;
};
// TPC-H nation -> region mapping, alphabetical by nation.
constexpr Nation kNations[kNumNations] = {
    {"ALGERIA", "AFRICA"},        {"ARGENTINA", "AMERICA"},
    {"BRAZIL", "AMERICA"},        {"CANADA", "AMERICA"},
    {"EGYPT", "MIDDLE EAST"},     {"ETHIOPIA", "AFRICA"},
    {"FRANCE", "EUROPE"},         {"GERMANY", "EUROPE"},
    {"INDIA", "ASIA"},            {"INDONESIA", "ASIA"},
    {"IRAN", "MIDDLE EAST"},      {"IRAQ", "MIDDLE EAST"},
    {"JAPAN", "ASIA"},            {"JORDAN", "MIDDLE EAST"},
    {"KENYA", "AFRICA"},          {"MOROCCO", "AFRICA"},
    {"MOZAMBIQUE", "AFRICA"},     {"PERU", "AMERICA"},
    {"CHINA", "ASIA"},            {"ROMANIA", "EUROPE"},
    {"SAUDI ARABIA", "MIDDLE EAST"}, {"VIETNAM", "ASIA"},
    {"RUSSIA", "EUROPE"},         {"UNITED KINGDOM", "EUROPE"},
    {"UNITED STATES", "AMERICA"},
};
}  // namespace

const char* NationName(int nation_index) {
  return kNations[nation_index % kNumNations].name;
}

const char* RegionOfNation(int nation_index) {
  return kNations[nation_index % kNumNations].region;
}

std::string CityName(int nation_index, int city_index) {
  std::string city(NationName(nation_index));
  city.resize(9, ' ');
  city.push_back(static_cast<char>('0' + (city_index % 10)));
  return city;
}

}  // namespace ssb
}  // namespace clydesdale
