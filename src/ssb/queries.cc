#include "ssb/queries.h"

#include "common/strings.h"

namespace clydesdale {
namespace ssb {

using core::AggSpec;
using core::DimJoinSpec;
using core::OrderBySpec;
using core::StarQuerySpec;

namespace {

Value S(const char* s) { return Value(std::string(s)); }
Value I(int32_t v) { return Value(v); }

DimJoinSpec DateJoin(Predicate::Ptr pred, std::vector<std::string> aux = {}) {
  return DimJoinSpec{"date", "lo_orderdate", "d_datekey", std::move(pred),
                     std::move(aux)};
}
DimJoinSpec CustomerJoin(Predicate::Ptr pred,
                         std::vector<std::string> aux = {}) {
  return DimJoinSpec{"customer", "lo_custkey", "c_custkey", std::move(pred),
                     std::move(aux)};
}
DimJoinSpec SupplierJoin(Predicate::Ptr pred,
                         std::vector<std::string> aux = {}) {
  return DimJoinSpec{"supplier", "lo_suppkey", "s_suppkey", std::move(pred),
                     std::move(aux)};
}
DimJoinSpec PartJoin(Predicate::Ptr pred, std::vector<std::string> aux = {}) {
  return DimJoinSpec{"part", "lo_partkey", "p_partkey", std::move(pred),
                     std::move(aux)};
}

/// SUM(lo_extendedprice * lo_discount) — the flight-1 "revenue".
AggSpec DiscountedRevenue() {
  return AggSpec{"revenue", Expr::Mul(Expr::Col("lo_extendedprice"),
                                      Expr::Col("lo_discount"))};
}

AggSpec SumRevenue() { return AggSpec{"revenue", Expr::Col("lo_revenue")}; }

AggSpec Profit() {
  return AggSpec{"profit", Expr::Sub(Expr::Col("lo_revenue"),
                                     Expr::Col("lo_supplycost"))};
}

StarQuerySpec Q11() {
  StarQuerySpec q;
  q.id = "Q1.1";
  q.fact_predicate = Predicate::And(
      {Predicate::Between("lo_discount", I(1), I(3)),
       Predicate::Lt("lo_quantity", I(25))});
  q.dims = {DateJoin(Predicate::Eq("d_year", I(1993)))};
  q.aggregates = {DiscountedRevenue()};
  return q;
}

StarQuerySpec Q12() {
  StarQuerySpec q;
  q.id = "Q1.2";
  q.fact_predicate = Predicate::And(
      {Predicate::Between("lo_discount", I(4), I(6)),
       Predicate::Between("lo_quantity", I(26), I(35))});
  q.dims = {DateJoin(Predicate::Eq("d_yearmonthnum", I(199401)))};
  q.aggregates = {DiscountedRevenue()};
  return q;
}

StarQuerySpec Q13() {
  StarQuerySpec q;
  q.id = "Q1.3";
  q.fact_predicate = Predicate::And(
      {Predicate::Between("lo_discount", I(5), I(7)),
       Predicate::Between("lo_quantity", I(26), I(35))});
  q.dims = {DateJoin(Predicate::And({Predicate::Eq("d_weeknuminyear", I(6)),
                                     Predicate::Eq("d_year", I(1994))}))};
  q.aggregates = {DiscountedRevenue()};
  return q;
}

StarQuerySpec Q21() {
  StarQuerySpec q;
  q.id = "Q2.1";
  q.dims = {DateJoin(Predicate::True(), {"d_year"}),
            PartJoin(Predicate::Eq("p_category", S("MFGR#12")), {"p_brand1"}),
            SupplierJoin(Predicate::Eq("s_region", S("AMERICA")))};
  q.aggregates = {SumRevenue()};
  q.group_by = {"d_year", "p_brand1"};
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

StarQuerySpec Q22() {
  StarQuerySpec q;
  q.id = "Q2.2";
  q.dims = {DateJoin(Predicate::True(), {"d_year"}),
            PartJoin(Predicate::Between("p_brand1", S("MFGR#2221"),
                                        S("MFGR#2228")),
                     {"p_brand1"}),
            SupplierJoin(Predicate::Eq("s_region", S("ASIA")))};
  q.aggregates = {SumRevenue()};
  q.group_by = {"d_year", "p_brand1"};
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

StarQuerySpec Q23() {
  StarQuerySpec q;
  q.id = "Q2.3";
  q.dims = {DateJoin(Predicate::True(), {"d_year"}),
            PartJoin(Predicate::Eq("p_brand1", S("MFGR#2239")), {"p_brand1"}),
            SupplierJoin(Predicate::Eq("s_region", S("EUROPE")))};
  q.aggregates = {SumRevenue()};
  q.group_by = {"d_year", "p_brand1"};
  q.order_by = {{"d_year", true}, {"p_brand1", true}};
  return q;
}

StarQuerySpec Q31() {
  StarQuerySpec q;
  q.id = "Q3.1";
  q.dims = {CustomerJoin(Predicate::Eq("c_region", S("ASIA")), {"c_nation"}),
            SupplierJoin(Predicate::Eq("s_region", S("ASIA")), {"s_nation"}),
            DateJoin(Predicate::Between("d_year", I(1992), I(1997)),
                     {"d_year"})};
  q.aggregates = {SumRevenue()};
  q.group_by = {"c_nation", "s_nation", "d_year"};
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

StarQuerySpec Q32() {
  StarQuerySpec q;
  q.id = "Q3.2";
  q.dims = {
      CustomerJoin(Predicate::Eq("c_nation", S("UNITED STATES")), {"c_city"}),
      SupplierJoin(Predicate::Eq("s_nation", S("UNITED STATES")), {"s_city"}),
      DateJoin(Predicate::Between("d_year", I(1992), I(1997)), {"d_year"})};
  q.aggregates = {SumRevenue()};
  q.group_by = {"c_city", "s_city", "d_year"};
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

StarQuerySpec Q33() {
  StarQuerySpec q;
  q.id = "Q3.3";
  // "UNITED KI1"/"UNITED KI5" are cities 1 and 5 of UNITED KINGDOM.
  const std::vector<Value> cities = {S("UNITED KI1"), S("UNITED KI5")};
  q.dims = {CustomerJoin(Predicate::In("c_city", cities), {"c_city"}),
            SupplierJoin(Predicate::In("s_city", cities), {"s_city"}),
            DateJoin(Predicate::Between("d_year", I(1992), I(1997)),
                     {"d_year"})};
  q.aggregates = {SumRevenue()};
  q.group_by = {"c_city", "s_city", "d_year"};
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

StarQuerySpec Q34() {
  StarQuerySpec q;
  q.id = "Q3.4";
  const std::vector<Value> cities = {S("UNITED KI1"), S("UNITED KI5")};
  q.dims = {CustomerJoin(Predicate::In("c_city", cities), {"c_city"}),
            SupplierJoin(Predicate::In("s_city", cities), {"s_city"}),
            DateJoin(Predicate::Eq("d_yearmonth", S("Dec1997")), {"d_year"})};
  q.aggregates = {SumRevenue()};
  q.group_by = {"c_city", "s_city", "d_year"};
  q.order_by = {{"d_year", true}, {"revenue", false}};
  return q;
}

StarQuerySpec Q41() {
  StarQuerySpec q;
  q.id = "Q4.1";
  q.dims = {CustomerJoin(Predicate::Eq("c_region", S("AMERICA")),
                         {"c_nation"}),
            SupplierJoin(Predicate::Eq("s_region", S("AMERICA"))),
            PartJoin(Predicate::In("p_mfgr", {S("MFGR#1"), S("MFGR#2")})),
            DateJoin(Predicate::True(), {"d_year"})};
  q.aggregates = {Profit()};
  q.group_by = {"d_year", "c_nation"};
  q.order_by = {{"d_year", true}, {"c_nation", true}};
  return q;
}

StarQuerySpec Q42() {
  StarQuerySpec q;
  q.id = "Q4.2";
  q.dims = {CustomerJoin(Predicate::Eq("c_region", S("AMERICA"))),
            SupplierJoin(Predicate::Eq("s_region", S("AMERICA")),
                         {"s_nation"}),
            PartJoin(Predicate::In("p_mfgr", {S("MFGR#1"), S("MFGR#2")}),
                     {"p_category"}),
            DateJoin(Predicate::In("d_year", {I(1997), I(1998)}), {"d_year"})};
  q.aggregates = {Profit()};
  q.group_by = {"d_year", "s_nation", "p_category"};
  q.order_by = {{"d_year", true}, {"s_nation", true}, {"p_category", true}};
  return q;
}

StarQuerySpec Q43() {
  StarQuerySpec q;
  q.id = "Q4.3";
  q.dims = {CustomerJoin(Predicate::Eq("c_region", S("AMERICA"))),
            SupplierJoin(Predicate::Eq("s_nation", S("UNITED STATES")),
                         {"s_city"}),
            PartJoin(Predicate::Eq("p_category", S("MFGR#14")), {"p_brand1"}),
            DateJoin(Predicate::In("d_year", {I(1997), I(1998)}), {"d_year"})};
  q.aggregates = {Profit()};
  q.group_by = {"d_year", "s_city", "p_brand1"};
  q.order_by = {{"d_year", true}, {"s_city", true}, {"p_brand1", true}};
  return q;
}

}  // namespace

std::vector<StarQuerySpec> AllQueries() {
  return {Q11(), Q12(), Q13(), Q21(), Q22(), Q23(), Q31(),
          Q32(), Q33(), Q34(), Q41(), Q42(), Q43()};
}

Result<StarQuerySpec> QueryById(const std::string& id) {
  for (StarQuerySpec& q : AllQueries()) {
    if (q.id == id) return std::move(q);
  }
  return Status::NotFound(StrCat("no SSB query '", id, "'"));
}

int FlightOf(const std::string& id) {
  if (id.size() >= 2 && id[0] == 'Q') return id[1] - '0';
  return 0;
}

}  // namespace ssb
}  // namespace clydesdale
