#include "ssb/loader.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "storage/stats_catalog.h"

namespace clydesdale {
namespace ssb {

namespace {

/// Writes one dimension to HDFS (binary rows) and replicates it locally.
Result<core::DimTableInfo> LoadDimension(
    mr::MrCluster* cluster, const std::string& root, const std::string& name,
    const SchemaPtr& schema, const std::string& pk, int64_t rows,
    const std::function<Row(int64_t)>& row_for) {
  core::DimTableInfo dim;
  dim.name = name;
  dim.pk = pk;
  dim.local_path = StrCat("/dimcache", root, "/", name);
  dim.desc.path = StrCat(root, "/", name);
  dim.desc.format = storage::kFormatBinaryRow;
  dim.desc.schema = schema;

  CLY_ASSIGN_OR_RETURN(std::unique_ptr<storage::TableWriter> writer,
                       storage::OpenTableWriter(cluster->dfs(), dim.desc));
  for (int64_t i = 0; i < rows; ++i) {
    CLY_RETURN_IF_ERROR(writer->Append(row_for(i)));
  }
  CLY_RETURN_IF_ERROR(writer->Close());
  dim.desc.num_rows = static_cast<uint64_t>(rows);
  // (Re)load invalidation: bump the path's catalog version so serving-mode
  // caches never probe a table built from the previous load.
  cluster->InvalidateTable(dim.desc.path);

  CLY_RETURN_IF_ERROR(core::ReplicateDimensionToAllNodes(cluster, dim));
  return dim;
}

}  // namespace

Result<SsbDataset> LoadSsb(mr::MrCluster* cluster,
                           const SsbLoadOptions& options) {
  SsbGenerator gen(options.scale_factor, options.seed);
  const SsbCardinalities& cards = gen.cardinalities();
  const std::string& root = options.root;

  SsbDataset dataset;
  dataset.cards = cards;
  dataset.scale_factor = options.scale_factor;

  // --- rows per split ---------------------------------------------------------
  // The fact table should spread over every node with several splits each so
  // that functional runs exercise scheduling; each split must also fit one
  // DFS block in every format (text rows are the widest at ~110 bytes).
  const uint64_t block_size = cluster->dfs()->block_size();
  uint64_t rows_per_split = options.rows_per_split;
  if (rows_per_split == 0) {
    const uint64_t approx_rows = cards.orders * 4;
    const uint64_t target_splits =
        static_cast<uint64_t>(cluster->num_nodes()) * 6;
    rows_per_split = std::max<uint64_t>(512, approx_rows / target_splits);
  }
  rows_per_split = std::min<uint64_t>(rows_per_split, block_size / 128);

  // --- fact table (CIF, plus optional RCFile / text copies) -------------------
  storage::TableDesc cif;
  cif.path = StrCat(root, "/lineorder");
  cif.format = storage::kFormatCif;
  cif.schema = LineorderSchema();
  cif.rows_per_split = rows_per_split;
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<storage::TableWriter> cif_writer,
                       storage::OpenTableWriter(cluster->dfs(), cif));

  std::unique_ptr<storage::TableWriter> rc_writer;
  if (options.with_rcfile) {
    dataset.fact_rcfile.path = StrCat(root, "/lineorder_rc");
    dataset.fact_rcfile.format = storage::kFormatRcFile;
    dataset.fact_rcfile.schema = LineorderSchema();
    dataset.fact_rcfile.rows_per_split = rows_per_split;
    CLY_ASSIGN_OR_RETURN(
        rc_writer,
        storage::OpenTableWriter(cluster->dfs(), dataset.fact_rcfile));
  }
  std::unique_ptr<storage::TableWriter> text_writer;
  if (options.with_text) {
    dataset.fact_text.path = StrCat(root, "/lineorder_text");
    dataset.fact_text.format = storage::kFormatText;
    dataset.fact_text.schema = LineorderSchema();
    CLY_ASSIGN_OR_RETURN(
        text_writer,
        storage::OpenTableWriter(cluster->dfs(), dataset.fact_text));
  }

  SsbGenerator::LineorderStream stream = gen.Lineorders();
  Row row;
  while (stream.Next(&row)) {
    CLY_RETURN_IF_ERROR(cif_writer->Append(row));
    if (rc_writer != nullptr) CLY_RETURN_IF_ERROR(rc_writer->Append(row));
    if (text_writer != nullptr) CLY_RETURN_IF_ERROR(text_writer->Append(row));
  }
  CLY_RETURN_IF_ERROR(cif_writer->Close());
  if (rc_writer != nullptr) CLY_RETURN_IF_ERROR(rc_writer->Close());
  if (text_writer != nullptr) CLY_RETURN_IF_ERROR(text_writer->Close());
  // Version bumps for the rewritten fact copies (reload invalidation).
  cluster->InvalidateTable(cif.path);
  if (rc_writer != nullptr) cluster->InvalidateTable(dataset.fact_rcfile.path);
  if (text_writer != nullptr) cluster->InvalidateTable(dataset.fact_text.path);
  dataset.lineorder_rows = stream.rows_emitted();
  cif.num_rows = dataset.lineorder_rows;
  dataset.fact_rcfile.num_rows = dataset.lineorder_rows;
  dataset.fact_text.num_rows = dataset.lineorder_rows;

  // --- dimensions --------------------------------------------------------------
  std::vector<core::DimTableInfo> dims;
  {
    CLY_ASSIGN_OR_RETURN(
        core::DimTableInfo dim,
        LoadDimension(cluster, root, "customer", CustomerSchema(), "c_custkey",
                      static_cast<int64_t>(cards.customers),
                      [&gen](int64_t i) { return gen.CustomerRow(i + 1); }));
    dims.push_back(std::move(dim));
  }
  {
    CLY_ASSIGN_OR_RETURN(
        core::DimTableInfo dim,
        LoadDimension(cluster, root, "supplier", SupplierSchema(), "s_suppkey",
                      static_cast<int64_t>(cards.suppliers),
                      [&gen](int64_t i) { return gen.SupplierRow(i + 1); }));
    dims.push_back(std::move(dim));
  }
  {
    CLY_ASSIGN_OR_RETURN(
        core::DimTableInfo dim,
        LoadDimension(cluster, root, "part", PartSchema(), "p_partkey",
                      static_cast<int64_t>(cards.parts),
                      [&gen](int64_t i) { return gen.PartRow(i + 1); }));
    dims.push_back(std::move(dim));
  }
  {
    CLY_ASSIGN_OR_RETURN(
        core::DimTableInfo dim,
        LoadDimension(cluster, root, "date", DateSchema(), "d_datekey",
                      static_cast<int64_t>(cards.dates),
                      [&gen](int64_t i) { return gen.DateRow(i); }));
    dims.push_back(std::move(dim));
  }

  dataset.star = core::StarSchema(std::move(cif), std::move(dims));
  CLY_LOG(Info) << "loaded SSB sf=" << options.scale_factor << ": "
                << dataset.lineorder_rows << " lineorder rows, "
                << cards.customers << " customers, " << cards.suppliers
                << " suppliers, " << cards.parts << " parts";

  // --- ANALYZE ----------------------------------------------------------------
  // Fact + every dimension through the StatsCatalog, so a freshly loaded
  // deployment already carries the per-column statistics the planner reads.
  if (options.analyze) {
    storage::StatsCatalog catalog(cluster->dfs(), options.stats_root);
    CLY_ASSIGN_OR_RETURN(storage::TableStats fact_stats,
                         catalog.Analyze(dataset.star.fact()));
    for (const auto& [name, dim] : dataset.star.dims()) {
      CLY_RETURN_IF_ERROR(catalog.Analyze(dim.desc).status());
    }
    const storage::ColumnStats* orderkey = fact_stats.Column("lo_orderkey");
    CLY_LOG(Info) << "ANALYZE persisted " << 1 + dataset.star.dims().size()
                  << " table(s) under " << options.stats_root << ": lineorder "
                  << fact_stats.num_rows << " rows"
                  << (orderkey != nullptr
                          ? StrCat(", lo_orderkey ndv~",
                                   static_cast<uint64_t>(orderkey->ndv))
                          : std::string());
  }
  return dataset;
}

}  // namespace ssb
}  // namespace clydesdale
