#ifndef CLYDESDALE_SSB_REFERENCE_EXECUTOR_H_
#define CLYDESDALE_SSB_REFERENCE_EXECUTOR_H_

#include <vector>

#include "core/star_query.h"
#include "core/star_schema.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace ssb {

/// Ground truth: a single-threaded in-memory hash-join executor, independent
/// of the MapReduce machinery. Tests compare both engines against it.
/// Result rows are group-by columns then aggregates, ordered by the query's
/// ORDER BY (with a canonical tiebreak).
Result<std::vector<Row>> ExecuteReference(mr::MrCluster* cluster,
                                          const core::StarSchema& star,
                                          const core::StarQuerySpec& spec);

}  // namespace ssb
}  // namespace clydesdale

#endif  // CLYDESDALE_SSB_REFERENCE_EXECUTOR_H_
