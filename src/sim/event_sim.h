#ifndef CLYDESDALE_SIM_EVENT_SIM_H_
#define CLYDESDALE_SIM_EVENT_SIM_H_

#include "common/status.h"
#include "sim/cluster_spec.h"
#include "sim/task_profile.h"

namespace clydesdale {
namespace sim {

/// Discrete-event, processor-sharing simulation of one stage on a cluster:
/// - each node runs at most `slots_per_node` tasks of the stage at a time;
/// - a node's HDFS scan bandwidth is shared equally among its tasks that
///   still have bytes to read (processor sharing), and likewise its local
///   disk and NIC (in and out separately);
/// - each task's CPU work runs on its own core at full speed;
/// - a task finishes when its setup, scan, local reads, CPU, and network
///   demands are all done.
/// Unpinned tasks are placed on the least-loaded node (by assigned demand).
Result<StageResult> SimulateStage(const ClusterSpec& spec,
                                  const StageProfile& stage);

/// Convenience: simulates stages back to back and sums their times.
Result<SimOutcome> SimulateStages(const ClusterSpec& spec,
                                  const std::vector<StageProfile>& stages);

}  // namespace sim
}  // namespace clydesdale

#endif  // CLYDESDALE_SIM_EVENT_SIM_H_
