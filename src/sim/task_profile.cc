#include "sim/task_profile.h"

// Data-only module; this translation unit anchors the CMake target.
