#ifndef CLYDESDALE_SIM_HADOOP_COST_MODEL_H_
#define CLYDESDALE_SIM_HADOOP_COST_MODEL_H_

#include "hive/hive_plan.h"
#include "sim/cluster_spec.h"
#include "sim/event_sim.h"
#include "sim/task_profile.h"
#include "sim/workload.h"

namespace clydesdale {
namespace sim {

/// Scale target and engine knobs for a modeled run.
struct ModelOptions {
  /// The paper evaluates SF 1000 (~6 B lineorder rows).
  double target_sf = 1000;
  /// Clydesdale ablation switches (paper §6.5); all true = full system.
  bool multithreaded = true;
  bool block_iteration = true;
  bool columnar = true;
  /// Hadoop split size (also the RCFile row-group/block size at scale).
  double split_bytes = 128.0 * 1024 * 1024;
  /// CIF split size at scale (Clydesdale picks rows_per_split itself and
  /// sizes splits larger than stock blocks). Governs task counts in the
  /// no-multithreading ablation.
  double cif_split_bytes = 512.0 * 1024 * 1024;
};

/// Predicts the cluster-scale runtime of a Clydesdale query: one MapReduce
/// job whose map tasks build per-node hash tables and scan the fact table
/// columnar, plus the reduce and client-side sort (paper §4.2, Figure 3).
/// Workload quantities come from the small-scale functional measurement,
/// scaled per DESIGN.md §4.
Result<SimOutcome> ModelClydesdale(const ClusterSpec& spec,
                                   const QueryMeasurement& m,
                                   const ModelOptions& options);

/// Predicts the cluster-scale runtime of the Hive baseline: one MR job per
/// dimension join (repartition or mapjoin), a group-by job, and an order-by
/// job, with intermediates round-tripping through HDFS (paper §6.3). For
/// mapjoin, detects the per-slot hash-copy OOM of paper §6.4.
Result<SimOutcome> ModelHive(const ClusterSpec& spec,
                             const QueryMeasurement& m,
                             hive::JoinStrategy strategy,
                             const ModelOptions& options);

/// TestDFSIO (paper Table 1): aggregate HDFS read and write bandwidth for
/// `file_mb` per node, with `files_per_node` concurrent streams.
struct DfsIoModel {
  double read_mb_per_s = 0;   // cluster aggregate
  double write_mb_per_s = 0;  // cluster aggregate
  double raw_disk_mb_per_s = 0;  // raw aggregate for comparison
};
DfsIoModel ModelTestDfsIo(const ClusterSpec& spec, double file_mb,
                          int files_per_node);

}  // namespace sim
}  // namespace clydesdale

#endif  // CLYDESDALE_SIM_HADOOP_COST_MODEL_H_
