#ifndef CLYDESDALE_SIM_WORKLOAD_H_
#define CLYDESDALE_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/star_query.h"
#include "hive/hive_plan.h"
#include "mapreduce/engine.h"
#include "ssb/loader.h"

namespace clydesdale {
namespace sim {

/// Per-dimension statistics measured from a functional run at small scale;
/// the cost model re-scales them to the target scale factor.
struct DimStat {
  std::string name;
  /// False for Date: its cardinality is fixed at every scale factor.
  bool scales_with_sf = true;
  uint64_t rows = 0;             // dimension rows at the measured SF
  uint64_t entries = 0;          // rows qualifying the query's predicate
  uint64_t hash_memory_bytes = 0;  // in-memory hash size (measured build)
  uint64_t hash_serialized_bytes = 0;  // mapjoin broadcast file size
  uint64_t replica_bytes = 0;    // full local-replica row-stream size
};

/// Everything the cost model needs about one query, measured by actually
/// executing the data paths at the loaded (small) scale factor.
struct QueryMeasurement {
  core::StarQuerySpec spec;
  double measured_sf = 0;
  uint64_t fact_rows = 0;

  // Exact storage widths (bytes/row), measured from the loaded tables.
  double cif_projected_width = 0;  // query's fact columns, binary columnar
  double cif_full_width = 0;       // all fact columns, binary columnar
  double rcfile_projected_width = 0;  // query's fact columns, RCFile text
  double rcfile_full_width = 0;

  std::vector<DimStat> dims;  // in spec order

  /// survivors_after[i] = fact rows surviving the fact predicate plus joins
  /// with dims[0..i] (Hive's intermediate sizes). The last entry equals the
  /// final join output.
  std::vector<uint64_t> survivors_after;
  /// Fact rows passing the fact predicate alone.
  uint64_t predicate_survivors = 0;
  /// Result group count (does not scale with SF).
  uint64_t groups = 0;

  /// Average encoded widths of the Hive plan's intermediate tables
  /// (output of join stage i), from the compiled plan schemas: binary and
  /// Hive's text serialization (what the paper's Hive round-tripped).
  std::vector<double> hive_stage_output_width;
  std::vector<double> hive_stage_output_text_width;
  /// Serialized (pk + aux) bytes per mapjoin hash entry, per join stage.
  std::vector<double> hash_payload_per_entry;
  /// Width of one shuffled fact record in join stage i (key + value).
  std::vector<double> hive_stage_shuffle_width;

  uint64_t JoinSurvivors() const {
    return survivors_after.empty() ? predicate_survivors
                                   : survivors_after.back();
  }
};

/// Measures `spec` against a loaded dataset: one projected fact scan with
/// incremental dimension probes (survivor counts per join prefix), per-dim
/// hash builds, and width measurements from the stored tables.
Result<QueryMeasurement> MeasureQuery(mr::MrCluster* cluster,
                                      const ssb::SsbDataset& dataset,
                                      const core::StarQuerySpec& spec);

/// Multiplier taking one dimension's quantities from `measured_sf` to
/// `target_sf`. Linear for customer/supplier, constant for date, and the
/// SSB log2 growth rule for part — which is why a single global ratio would
/// be wrong.
double DimScaleFactor(const DimStat& dim, double measured_sf,
                      double target_sf);

}  // namespace sim
}  // namespace clydesdale

#endif  // CLYDESDALE_SIM_WORKLOAD_H_
