#include "sim/event_sim.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "common/strings.h"

namespace clydesdale {
namespace sim {

namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct RunningTask {
  double setup_left = 0;
  double scan_left = 0;   // bytes
  double local_left = 0;  // bytes
  double cpu_left = 0;    // seconds
  double in_left = 0;     // bytes
  double out_left = 0;    // bytes
  double started_at = 0;
  int node = 0;

  bool InSetup() const { return setup_left > kEps; }
  bool Done() const {
    return setup_left <= kEps && scan_left <= kEps && local_left <= kEps &&
           cpu_left <= kEps && in_left <= kEps && out_left <= kEps;
  }
};

/// Current per-demand rates on one node: counts of sharers per resource.
struct NodeRates {
  int scan_sharers = 0;
  int local_sharers = 0;
  int in_sharers = 0;
  int out_sharers = 0;
};

double EstimatedDemandSeconds(const ClusterSpec& spec, const TaskProfile& t) {
  // Uncontended lower bound, used only for load-balanced placement.
  return t.setup_s +
         std::max({t.hdfs_read_bytes / spec.hdfs_scan_bw_per_node,
                   t.local_read_bytes / spec.local_disk_bw, t.cpu_s,
                   t.net_in_bytes / spec.net_bw,
                   t.net_out_bytes / spec.net_bw});
}

}  // namespace

Result<StageResult> SimulateStage(const ClusterSpec& spec,
                                  const StageProfile& stage) {
  StageResult result;
  result.name = stage.name;
  result.num_tasks = static_cast<int>(stage.tasks.size());
  if (stage.tasks.empty()) {
    result.seconds = stage.startup_s;
    return result;
  }
  const int nodes = spec.worker_nodes;
  const int slots = std::max(stage.slots_per_node, 1);

  // --- placement ---------------------------------------------------------------
  std::vector<std::deque<const TaskProfile*>> queues(
      static_cast<size_t>(nodes));
  {
    std::vector<double> load(static_cast<size_t>(nodes), 0);
    for (const TaskProfile& task : stage.tasks) {
      int node = task.node;
      if (node < 0) {
        node = 0;
        for (int n = 1; n < nodes; ++n) {
          if (load[static_cast<size_t>(n)] < load[static_cast<size_t>(node)]) {
            node = n;
          }
        }
      } else if (node >= nodes) {
        return Status::InvalidArgument(
            StrCat("task pinned to node ", node, " of ", nodes));
      }
      load[static_cast<size_t>(node)] += EstimatedDemandSeconds(spec, task);
      queues[static_cast<size_t>(node)].push_back(&task);
    }
  }

  // --- event loop ----------------------------------------------------------------
  std::vector<std::vector<RunningTask>> running(static_cast<size_t>(nodes));
  double now = 0;
  double busy_task_seconds = 0;
  int finished = 0;

  auto start_tasks = [&](int node) {
    auto& queue = queues[static_cast<size_t>(node)];
    auto& active = running[static_cast<size_t>(node)];
    while (static_cast<int>(active.size()) < slots && !queue.empty()) {
      const TaskProfile* t = queue.front();
      queue.pop_front();
      RunningTask rt;
      rt.setup_left = t->setup_s;
      rt.scan_left = t->hdfs_read_bytes;
      rt.local_left = t->local_read_bytes;
      rt.cpu_left = t->cpu_s;
      rt.in_left = t->net_in_bytes;
      rt.out_left = t->net_out_bytes;
      rt.started_at = now;
      rt.node = node;
      active.push_back(rt);
    }
  };
  for (int n = 0; n < nodes; ++n) start_tasks(n);

  const int total = static_cast<int>(stage.tasks.size());
  // Guard against infinite loops from degenerate inputs.
  const int max_events = total * 16 + 1024;
  int events = 0;

  while (finished < total) {
    if (++events > max_events) {
      return Status::Internal("event simulator did not converge");
    }
    // Retire tasks that are already complete (zero-demand tasks finish
    // instantly) and backfill their slots before computing rates; repeat
    // until the backfilled tasks are not themselves already done.
    for (int n = 0; n < nodes; ++n) {
      auto& active = running[static_cast<size_t>(n)];
      bool retired = true;
      while (retired) {
        retired = false;
        for (size_t i = 0; i < active.size();) {
          if (active[i].Done()) {
            busy_task_seconds += now - active[i].started_at;
            active.erase(active.begin() + static_cast<long>(i));
            ++finished;
            retired = true;
          } else {
            ++i;
          }
        }
        if (retired) start_tasks(n);
      }
    }
    if (finished >= total) break;

    // Compute per-node sharer counts.
    std::vector<NodeRates> rates(static_cast<size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      for (const RunningTask& rt : running[static_cast<size_t>(n)]) {
        if (rt.InSetup()) continue;
        NodeRates& r = rates[static_cast<size_t>(n)];
        if (rt.scan_left > kEps) ++r.scan_sharers;
        if (rt.local_left > kEps) ++r.local_sharers;
        if (rt.in_left > kEps) ++r.in_sharers;
        if (rt.out_left > kEps) ++r.out_sharers;
      }
    }

    // Find the earliest next demand completion.
    double dt = kInf;
    for (int n = 0; n < nodes; ++n) {
      const NodeRates& r = rates[static_cast<size_t>(n)];
      for (const RunningTask& rt : running[static_cast<size_t>(n)]) {
        if (rt.InSetup()) {
          dt = std::min(dt, rt.setup_left);
          continue;
        }
        if (rt.scan_left > kEps) {
          dt = std::min(dt, rt.scan_left * r.scan_sharers /
                                spec.hdfs_scan_bw_per_node);
        }
        if (rt.local_left > kEps) {
          dt = std::min(dt,
                        rt.local_left * r.local_sharers / spec.local_disk_bw);
        }
        if (rt.cpu_left > kEps) dt = std::min(dt, rt.cpu_left);
        if (rt.in_left > kEps) {
          dt = std::min(dt, rt.in_left * r.in_sharers / spec.net_bw);
        }
        if (rt.out_left > kEps) {
          dt = std::min(dt, rt.out_left * r.out_sharers / spec.net_bw);
        }
      }
    }
    if (dt == kInf) {
      return Status::Internal("no runnable work but tasks unfinished");
    }

    now += dt;
    // Advance all demands by dt at their current rates.
    for (int n = 0; n < nodes; ++n) {
      const NodeRates& r = rates[static_cast<size_t>(n)];
      auto& active = running[static_cast<size_t>(n)];
      for (RunningTask& rt : active) {
        if (rt.InSetup()) {
          rt.setup_left = std::max(0.0, rt.setup_left - dt);
          continue;
        }
        if (rt.scan_left > kEps && r.scan_sharers > 0) {
          rt.scan_left = std::max(
              0.0, rt.scan_left -
                       dt * spec.hdfs_scan_bw_per_node / r.scan_sharers);
        }
        if (rt.local_left > kEps && r.local_sharers > 0) {
          rt.local_left = std::max(
              0.0, rt.local_left - dt * spec.local_disk_bw / r.local_sharers);
        }
        if (rt.cpu_left > kEps) {
          rt.cpu_left = std::max(0.0, rt.cpu_left - dt);
        }
        if (rt.in_left > kEps && r.in_sharers > 0) {
          rt.in_left =
              std::max(0.0, rt.in_left - dt * spec.net_bw / r.in_sharers);
        }
        if (rt.out_left > kEps && r.out_sharers > 0) {
          rt.out_left =
              std::max(0.0, rt.out_left - dt * spec.net_bw / r.out_sharers);
        }
      }
      // Retire finished tasks and backfill slots.
      for (size_t i = 0; i < active.size();) {
        if (active[i].Done()) {
          busy_task_seconds += now - active[i].started_at;
          active.erase(active.begin() + static_cast<long>(i));
          ++finished;
        } else {
          ++i;
        }
      }
      start_tasks(n);
    }
  }

  result.seconds = stage.startup_s + now;
  result.avg_task_s = busy_task_seconds / total;
  return result;
}

Result<SimOutcome> SimulateStages(const ClusterSpec& spec,
                                  const std::vector<StageProfile>& stages) {
  SimOutcome outcome;
  for (const StageProfile& stage : stages) {
    CLY_ASSIGN_OR_RETURN(StageResult r, SimulateStage(spec, stage));
    outcome.seconds += r.seconds;
    outcome.stages.push_back(std::move(r));
  }
  return outcome;
}

}  // namespace sim
}  // namespace clydesdale
