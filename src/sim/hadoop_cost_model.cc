#include "sim/hadoop_cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace clydesdale {
namespace sim {

namespace {

/// Average encoded bytes of one shuffled (group key, sums) record.
constexpr double kGroupRecordBytes = 40.0;
/// Serialization cost per hash entry on the mapjoin master.
constexpr double kSerializeNsPerEntry = 1000.0;
/// Reduce-side cost per record for the small final aggregation.
constexpr double kFinalAggNsPerRecord = 2000.0;

/// Dimension quantities scale per SSB growth rules (part is sub-linear),
/// so each dimension gets its own multiplier.
struct ScaledDim {
  double rows = 0;
  double entries = 0;
  double replica_bytes = 0;
  double serialized_bytes = 0;
};
ScaledDim ScaleDim(const DimStat& d, double measured_sf, double target_sf) {
  const double k = DimScaleFactor(d, measured_sf, target_sf);
  return ScaledDim{static_cast<double>(d.rows) * k,
                   static_cast<double>(d.entries) * k,
                   static_cast<double>(d.replica_bytes) * k,
                   static_cast<double>(d.hash_serialized_bytes) * k};
}

int TaskCount(double bytes, double split_bytes) {
  return std::max(1, static_cast<int>(std::ceil(bytes / split_bytes)));
}

}  // namespace

Result<SimOutcome> ModelClydesdale(const ClusterSpec& spec,
                                   const QueryMeasurement& m,
                                   const ModelOptions& options) {
  const double r = options.target_sf / m.measured_sf;
  const double fact_rows = static_cast<double>(m.fact_rows) * r;
  const double width =
      options.columnar ? m.cif_projected_width : m.cif_full_width;
  const double scan_bytes = fact_rows * width;
  const double row_ns = options.block_iteration ? spec.cly_row_ns_block
                                                : spec.cly_row_ns_row_at_a_time;

  // Hash-table acquisition work per build: read the node-local replicas and
  // insert the dimension rows.
  double replica_bytes = 0;
  double build_rows = 0;
  for (const DimStat& d : m.dims) {
    const ScaledDim sd = ScaleDim(d, m.measured_sf, options.target_sf);
    replica_bytes += sd.replica_bytes;
    build_rows += sd.rows;
  }
  const double build_cpu_s = build_rows * spec.hash_build_ns_per_row * 1e-9;

  std::vector<StageProfile> stages;

  StageProfile map_stage;
  map_stage.name = "star-join map";
  map_stage.startup_s = spec.job_startup_s;
  if (options.multithreaded) {
    // One multi-threaded map task per node (MultiCIF + single-task hint);
    // the hash tables are built exactly once per node (paper §5).
    map_stage.slots_per_node = 1;
    for (int n = 0; n < spec.worker_nodes; ++n) {
      TaskProfile task;
      task.node = n;
      task.setup_s = spec.task_launch_s + build_cpu_s +
                     replica_bytes / spec.local_disk_bw;
      task.hdfs_read_bytes = scan_bytes / spec.worker_nodes;
      // Probe threads occupy every granted slot.
      task.cpu_s = (fact_rows / spec.worker_nodes) * row_ns * 1e-9 /
                   spec.map_slots;
      map_stage.tasks.push_back(task);
    }
  } else {
    // Ablation (§6.5): stock Hadoop behaviour. One single-threaded task per
    // CIF split, `map_slots` at a time per node, and every task builds its
    // own copy of the hash tables (no MTMapRunner, no sharing) — the paper's
    // "each task ... built its own copy". The dimension replicas are hot in
    // the page cache after the first read.
    map_stage.slots_per_node = spec.map_slots;
    const int total_tasks = TaskCount(fact_rows * m.cif_full_width,
                                      options.cif_split_bytes);
    for (int t = 0; t < total_tasks; ++t) {
      TaskProfile task;
      task.setup_s = spec.task_launch_s + build_cpu_s;
      task.local_read_bytes =
          t < spec.worker_nodes
              ? replica_bytes  // first task per node streams from disk
              : replica_bytes * (spec.local_disk_bw / spec.page_cache_bw);
      task.hdfs_read_bytes = scan_bytes / total_tasks;
      task.cpu_s = (fact_rows / total_tasks) * row_ns * 1e-9;
      map_stage.tasks.push_back(task);
    }
  }
  stages.push_back(std::move(map_stage));

  // Reduce + client-side sort: tiny next to the scan (paper: <10 s).
  {
    StageProfile reduce_stage;
    reduce_stage.name = "aggregate + sort";
    const double partials =
        static_cast<double>(stages[0].tasks.size()) *
        static_cast<double>(m.groups);
    TaskProfile reduce;
    reduce.setup_s = spec.task_launch_s;
    reduce.net_in_bytes = partials * kGroupRecordBytes;
    reduce.cpu_s = partials * kFinalAggNsPerRecord * 1e-9 +
                   static_cast<double>(m.groups) * 1e-6;
    reduce_stage.tasks.push_back(reduce);
    reduce_stage.slots_per_node = 1;
    stages.push_back(std::move(reduce_stage));
  }

  return SimulateStages(spec, stages);
}

Result<SimOutcome> ModelHive(const ClusterSpec& spec,
                             const QueryMeasurement& m,
                             hive::JoinStrategy strategy,
                             const ModelOptions& options) {
  const double r = options.target_sf / m.measured_sf;
  const double fact_rows = static_cast<double>(m.fact_rows) * r;
  const int reducers = spec.worker_nodes * spec.reduce_slots;
  const size_t num_joins = m.spec.dims.size();

  SimOutcome outcome;
  auto run_stages = [&](const std::vector<StageProfile>& stages) -> Status {
    CLY_ASSIGN_OR_RETURN(SimOutcome part, SimulateStages(spec, stages));
    outcome.seconds += part.seconds;
    for (StageResult& sr : part.stages) outcome.stages.push_back(std::move(sr));
    return Status::OK();
  };

  for (size_t i = 0; i < num_joins; ++i) {
    const DimStat& dim = m.dims[i];
    const ScaledDim sd = ScaleDim(dim, m.measured_sf, options.target_sf);
    // Input of this join stage: the base fact table (stage 1, RCFile) or the
    // previous stage's intermediate, which Hive serializes as text.
    const bool first = i == 0;
    const double rows_in =
        first ? fact_rows
              : static_cast<double>(m.survivors_after[i - 1]) * r;
    const double read_width = first ? m.rcfile_projected_width
                                    : m.hive_stage_output_text_width[i - 1];
    // Split count follows the *stored* size (RCFile cannot shrink splits
    // under projection; paper §6.3).
    const double stored_width =
        first ? m.rcfile_full_width : m.hive_stage_output_text_width[i - 1];
    const double rows_out = static_cast<double>(m.survivors_after[i]) * r;
    const double out_bytes = rows_out * m.hive_stage_output_text_width[i];
    const int map_tasks = TaskCount(rows_in * stored_width, options.split_bytes);
    // Rows emitted by the fact-side map: stage 1 applies the fact predicate.
    const double map_out_rows =
        first ? static_cast<double>(m.predicate_survivors) * r : rows_in;

    if (strategy == hive::JoinStrategy::kMapJoin) {
      // --- mapjoin (paper Figure 6) ------------------------------------------
      const double payload = m.hash_payload_per_entry[i];
      // The broadcast file carries Java-serialized entries; the deserialized
      // per-slot copy pays object overhead per entry (§6.3: supplier 100 MB
      // on disk, ~500 MB in memory).
      const double hash_file_bytes =
          sd.entries * (payload + spec.java_serialization_overhead);
      const double hash_memory_bytes =
          sd.entries * (spec.java_hash_entry_overhead +
                        payload * spec.java_payload_expansion);
      // Per-slot copies: the OOM of §6.4.
      const double per_node_memory =
          static_cast<double>(spec.map_slots) * hash_memory_bytes;
      if (per_node_memory > spec.UsableMemory()) {
        outcome.oom = true;
        outcome.oom_detail = StrCat(
            "stage ", i + 1, " (", dim.name, "): ", spec.map_slots,
            " slots x ",
            HumanBytes(static_cast<uint64_t>(hash_memory_bytes)),
            " in-memory hash > ",
            HumanBytes(static_cast<uint64_t>(spec.UsableMemory())),
            " usable per node");
        return outcome;  // the job dies (paper: "did not complete")
      }

      std::vector<StageProfile> stages;
      // Master build + HDFS write of the serialized table.
      {
        StageProfile build;
        build.name = StrCat("mapjoin", i + 1, " build ", dim.name);
        build.startup_s = spec.job_startup_s;
        TaskProfile master;
        master.hdfs_read_bytes = sd.replica_bytes;
        master.cpu_s = sd.rows * spec.hash_build_ns_per_row * 1e-9 +
                       sd.entries * kSerializeNsPerEntry * 1e-9;
        master.net_out_bytes = hash_file_bytes * 3;  // replication pipeline
        build.tasks.push_back(master);
        build.slots_per_node = 1;
        stages.push_back(std::move(build));
      }
      // Distributed-cache dissemination: every node pulls one copy.
      {
        StageProfile cache;
        cache.name = StrCat("mapjoin", i + 1, " dissemination");
        for (int n = 0; n < spec.worker_nodes; ++n) {
          TaskProfile pull;
          pull.node = n;
          pull.net_in_bytes = hash_file_bytes;
          cache.tasks.push_back(pull);
        }
        cache.slots_per_node = 1;
        stages.push_back(std::move(cache));
      }
      // Map-only probe over the fact-side table. Every task re-reads and
      // deserializes the hash table (no JVM reuse; paper §6.3: "this was
      // done 4,887 times").
      {
        StageProfile map_stage;
        map_stage.name = StrCat("mapjoin", i + 1, " probe");
        for (int t = 0; t < map_tasks; ++t) {
          TaskProfile task;
          task.setup_s = spec.task_launch_s + hash_file_bytes / spec.hash_load_bw;
          task.hdfs_read_bytes = rows_in * read_width / map_tasks;
          task.cpu_s = rows_in * spec.hive_map_ns_per_row * 1e-9 / map_tasks;
          task.net_out_bytes = out_bytes * 2 / map_tasks;  // 2 remote replicas
          map_stage.tasks.push_back(task);
        }
        map_stage.slots_per_node = spec.map_slots;
        stages.push_back(std::move(map_stage));
      }
      CLY_RETURN_IF_ERROR(run_stages(stages));
    } else {
      // --- repartition join (sort-merge; paper §6.1) ----------------------------
      std::vector<StageProfile> stages;
      const double shuffle_bytes =
          map_out_rows * m.hive_stage_shuffle_width[i] + sd.entries * 24.0;
      {
        StageProfile map_stage;
        map_stage.name = StrCat("repartition", i + 1, " map ", dim.name);
        map_stage.startup_s = spec.job_startup_s;
        const int dim_tasks = TaskCount(sd.replica_bytes, options.split_bytes);
        const int total_tasks = map_tasks + dim_tasks;
        for (int t = 0; t < total_tasks; ++t) {
          TaskProfile task;
          const bool is_dim = t >= map_tasks;
          if (is_dim) {
            task.hdfs_read_bytes = sd.replica_bytes / dim_tasks;
            task.cpu_s =
                sd.rows * spec.hive_map_ns_per_row * 1e-9 / dim_tasks;
          } else {
            task.hdfs_read_bytes = rows_in * read_width / map_tasks;
            task.cpu_s =
                rows_in * spec.hive_map_ns_per_row * 1e-9 / map_tasks;
            task.net_out_bytes = shuffle_bytes / map_tasks;
          }
          task.setup_s = spec.task_launch_s;
          map_stage.tasks.push_back(task);
        }
        map_stage.slots_per_node = spec.map_slots;
        stages.push_back(std::move(map_stage));
      }
      {
        StageProfile reduce_stage;
        reduce_stage.name = StrCat("repartition", i + 1, " reduce");
        const double reduce_records = map_out_rows + sd.entries;
        for (int rt = 0; rt < reducers; ++rt) {
          TaskProfile task;
          task.setup_s = spec.task_launch_s;
          task.net_in_bytes = shuffle_bytes / reducers;
          task.cpu_s =
              reduce_records * spec.hive_reduce_ns_per_row * 1e-9 / reducers;
          task.net_out_bytes = out_bytes * 2 / reducers;
          reduce_stage.tasks.push_back(task);
        }
        reduce_stage.slots_per_node = spec.reduce_slots;
        stages.push_back(std::move(reduce_stage));
      }
      CLY_RETURN_IF_ERROR(run_stages(stages));
    }
  }

  // --- group-by job (paper stage 4) --------------------------------------------
  {
    const double rows_in =
        static_cast<double>(m.survivors_after.back()) * r;
    const double width = m.hive_stage_output_text_width.back();
    const int map_tasks = TaskCount(rows_in * width, options.split_bytes);
    const double groups = static_cast<double>(m.groups);
    std::vector<StageProfile> stages;
    {
      StageProfile map_stage;
      map_stage.name = "group-by map";
      map_stage.startup_s = spec.job_startup_s;
      const double shuffle_bytes =
          std::min(rows_in, map_tasks * groups) * kGroupRecordBytes;
      for (int t = 0; t < map_tasks; ++t) {
        TaskProfile task;
        task.setup_s = spec.task_launch_s;
        task.hdfs_read_bytes = rows_in * width / map_tasks;
        task.cpu_s = rows_in * spec.hive_map_ns_per_row * 1e-9 / map_tasks;
        task.net_out_bytes = shuffle_bytes / map_tasks;
        map_stage.tasks.push_back(task);
      }
      map_stage.slots_per_node = spec.map_slots;
      stages.push_back(std::move(map_stage));
    }
    {
      StageProfile reduce_stage;
      reduce_stage.name = "group-by reduce";
      const double records = std::min(rows_in, map_tasks * groups);
      for (int rt = 0; rt < reducers; ++rt) {
        TaskProfile task;
        task.setup_s = spec.task_launch_s;
        task.net_in_bytes = records * kGroupRecordBytes / reducers;
        task.cpu_s = records * spec.hive_reduce_ns_per_row * 1e-9 / reducers;
        task.net_out_bytes = groups * kGroupRecordBytes * 2 / reducers;
        reduce_stage.tasks.push_back(task);
      }
      reduce_stage.slots_per_node = spec.reduce_slots;
      stages.push_back(std::move(reduce_stage));
    }
    CLY_RETURN_IF_ERROR(run_stages(stages));
  }

  // --- order-by job (paper stage 5: ~19 s, mostly startup) -----------------------
  {
    std::vector<StageProfile> stages;
    StageProfile order;
    order.name = "order-by";
    order.startup_s = spec.job_startup_s;
    TaskProfile map_task;
    map_task.setup_s = spec.task_launch_s;
    map_task.hdfs_read_bytes = static_cast<double>(m.groups) * kGroupRecordBytes;
    map_task.cpu_s = static_cast<double>(m.groups) * 2e-6;
    order.tasks.push_back(map_task);
    TaskProfile reduce_task;
    reduce_task.setup_s = spec.task_launch_s;
    reduce_task.net_in_bytes =
        static_cast<double>(m.groups) * kGroupRecordBytes;
    reduce_task.cpu_s = static_cast<double>(m.groups) * 2e-6;
    order.tasks.push_back(reduce_task);
    order.slots_per_node = 1;
    stages.push_back(std::move(order));
    CLY_RETURN_IF_ERROR(run_stages(stages));
  }

  return outcome;
}

DfsIoModel ModelTestDfsIo(const ClusterSpec& spec, double file_mb,
                          int files_per_node) {
  DfsIoModel model;
  model.raw_disk_mb_per_s =
      spec.disks_per_node * (spec.disk_bw / 1e6) * spec.worker_nodes;
  // Reads: every node streams its local files at the effective HDFS rate.
  model.read_mb_per_s = (spec.hdfs_scan_bw_per_node / 1e6) * spec.worker_nodes;
  // Writes: the replication pipeline sends every block to 2 remote replicas
  // over the NIC while writing locally; the NIC bounds the effective rate.
  const double write_per_node =
      std::min(spec.hdfs_scan_bw_per_node, spec.net_bw / 2.0);
  model.write_mb_per_s = (write_per_node / 1e6) * spec.worker_nodes;
  (void)file_mb;
  (void)files_per_node;
  return model;
}

}  // namespace sim
}  // namespace clydesdale
