#ifndef CLYDESDALE_SIM_TASK_PROFILE_H_
#define CLYDESDALE_SIM_TASK_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace clydesdale {
namespace sim {

/// The simulated resource demands of one task. Setup runs first; then the
/// scan, the CPU work, and the network transfer proceed in parallel (the
/// task finishes when the slowest of them does), matching how a Hadoop task
/// overlaps I/O with processing.
struct TaskProfile {
  /// Serial setup seconds (task launch, hash-table build or load).
  double setup_s = 0;
  /// Bytes streamed from HDFS through the node's shared scan bandwidth.
  double hdfs_read_bytes = 0;
  /// Bytes read from the node-local disk (setup-phase reads go in setup_s;
  /// this is for reads overlapped with work).
  double local_read_bytes = 0;
  /// CPU seconds on one core (divide by thread count before filling in for
  /// multi-threaded tasks).
  double cpu_s = 0;
  /// Bytes received over the node NIC (reduce shuffle in).
  double net_in_bytes = 0;
  /// Bytes sent over the node NIC (HDFS write pipeline, shuffle out).
  double net_out_bytes = 0;
  /// Pinned node, or -1 to let the stage scheduler place it.
  int node = -1;
};

/// One phase of a job (a map wave or a reduce wave).
struct StageProfile {
  std::string name;
  std::vector<TaskProfile> tasks;
  /// Concurrent tasks of this stage per node.
  int slots_per_node = 1;
  /// Job-level startup charged once before the stage (only on the first
  /// stage of a job).
  double startup_s = 0;
};

/// Simulated outcome of one stage.
struct StageResult {
  std::string name;
  double seconds = 0;
  /// Mean task duration (excluding queueing).
  double avg_task_s = 0;
  int num_tasks = 0;
};

/// Simulated outcome of a whole query.
struct SimOutcome {
  double seconds = 0;
  bool oom = false;
  std::string oom_detail;
  std::vector<StageResult> stages;
};

}  // namespace sim
}  // namespace clydesdale

#endif  // CLYDESDALE_SIM_TASK_PROFILE_H_
