#include "sim/cluster_spec.h"

namespace clydesdale {
namespace sim {

ClusterSpec ClusterSpec::ClusterA() {
  ClusterSpec spec;
  spec.name = "A";
  spec.worker_nodes = 8;
  spec.cores_per_node = 8;
  spec.map_slots = 6;
  spec.reduce_slots = 1;
  spec.mem_bytes = 16ULL * 1000 * 1000 * 1000;
  spec.disks_per_node = 8;
  spec.disk_bw = 70e6;
  spec.hdfs_scan_bw_per_node = 67e6;  // §6.3: 10.8 GB in 164 s
  spec.local_disk_bw = 70e6;
  return spec;
}

ClusterSpec ClusterSpec::ClusterB() {
  ClusterSpec spec;
  spec.name = "B";
  spec.worker_nodes = 40;
  spec.cores_per_node = 8;
  spec.map_slots = 6;
  spec.reduce_slots = 1;
  spec.mem_bytes = 32ULL * 1000 * 1000 * 1000;
  spec.disks_per_node = 5;
  spec.disk_bw = 70e6;
  // §6.4: Q2.1 probe read ~2.2 GB/node in 29 s -> ~75 MB/s; Xeons are a bit
  // faster than A's Opterons, and newer disks stream faster.
  spec.hdfs_scan_bw_per_node = 75e6;
  spec.local_disk_bw = 90e6;
  // Faster CPUs: §6.4 reports 16 s hash build where A needed 27 s.
  spec.hash_build_ns_per_row = 1500.0;
  spec.hive_map_ns_per_row = 14000.0;
  spec.hive_reduce_ns_per_row = 6500.0;
  spec.cly_row_ns_block = 900.0;
  spec.cly_row_ns_row_at_a_time = 1500.0;
  return spec;
}

}  // namespace sim
}  // namespace clydesdale
