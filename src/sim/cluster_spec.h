#ifndef CLYDESDALE_SIM_CLUSTER_SPEC_H_
#define CLYDESDALE_SIM_CLUSTER_SPEC_H_

#include <cstdint>
#include <string>

namespace clydesdale {
namespace sim {

/// Hardware description plus Hadoop-stack calibration constants for the
/// discrete-event cost model. The two factory instances mirror the paper's
/// evaluation clusters (§6.2); the calibration constants are derived from
/// the paper's own §6.3 breakdown of query 2.1 and are documented inline.
struct ClusterSpec {
  std::string name;

  // --- topology (paper §6.2) -------------------------------------------------
  int worker_nodes = 8;
  int cores_per_node = 8;
  int map_slots = 6;
  int reduce_slots = 1;
  uint64_t mem_bytes = 16ULL * 1000 * 1000 * 1000;
  int disks_per_node = 8;
  /// Raw single-disk streaming bandwidth (paper §6.6: 70-100 MB/s).
  double disk_bw = 70e6;
  /// 1 GbE NIC per node.
  double net_bw = 125e6;

  // --- HDFS / Hadoop effective rates -----------------------------------------
  /// Effective per-node HDFS scan bandwidth for map-side table scans. The
  /// paper measures ~67 MB/s/node on cluster A — far below the raw
  /// aggregate (§6.3, §6.6) — because of HDFS client overheads.
  double hdfs_scan_bw_per_node = 67e6;
  /// Node-local disk read rate for dimension replicas / cache files
  /// (single-stream, one spindle).
  double local_disk_bw = 70e6;
  /// Re-reads of recently-read local files (dimension replicas rebuilt by
  /// every task in the no-multithreading ablation) come from the OS page
  /// cache, not the spindle.
  double page_cache_bw = 2e9;
  /// Per-job startup latency (jobtracker scheduling, task distribution).
  double job_startup_s = 12.0;
  /// Per-map-task launch overhead (JVM fork, split localization).
  double task_launch_s = 1.0;

  // --- per-record CPU costs ---------------------------------------------------
  /// Clydesdale probe cost per fact row per thread with block iteration
  /// (B-CIF). Calibrated just below the 67 MB/s scan bottleneck for the
  /// typical 16-byte projected row (6 threads x 16 B / 67 MB/s ~ 1.4 us),
  /// so the probe stays I/O-bound — the paper's observed behaviour.
  double cly_row_ns_block = 1200.0;
  /// Without block iteration each row additionally pays the framework's
  /// per-record hand-off, pushing CPU past the scan rate for narrow
  /// projections (~1.2x overall; §6.5).
  double cly_row_ns_row_at_a_time = 2000.0;
  /// Hash-table build cost per dimension row (decode + insert).
  double hash_build_ns_per_row = 2500.0;
  /// Hive record cost on the map side: RCFile text deserialization + per-row
  /// operator overhead. §6.3: ~25 s for a ~1.2M-row split → ~20 us/row.
  double hive_map_ns_per_row = 20000.0;
  /// Hive reduce-side merge+join cost per record (sort-merge, object churn).
  double hive_reduce_ns_per_row = 9000.0;
  /// Deserialization bandwidth for a broadcast mapjoin hash table (per task).
  double hash_load_bw = 25e6;

  // --- memory model (mapjoin OOM, §6.4) ---------------------------------------
  /// Java in-memory hash entry cost: fixed per-entry object overhead plus
  /// an expansion on the payload bytes. Calibrated against §6.3 (supplier:
  /// 400k entries -> ~0.3-0.5 GB in memory) and §6.4's OOM pattern
  /// (customer at 6M entries OOMs 6 slots x ~4 GB on A's 16 GB but fits
  /// B's 32 GB).
  double java_hash_entry_overhead = 600.0;
  double java_payload_expansion = 2.0;
  /// Extra serialized bytes per entry in the broadcast file (Java
  /// serialization headers).
  double java_serialization_overhead = 100.0;
  /// Fraction of node RAM usable by map tasks.
  double memory_headroom = 0.85;

  /// Usable map-task memory per node.
  double UsableMemory() const { return memory_headroom * static_cast<double>(mem_bytes); }

  /// Cluster A: 8 workers, 2x quad-core Opteron, 16 GB, 8x250 GB disks.
  static ClusterSpec ClusterA();
  /// Cluster B: 40 workers, 2x quad-core Xeon, 32 GB, 5x500 GB disks.
  static ClusterSpec ClusterB();
};

}  // namespace sim
}  // namespace clydesdale

#endif  // CLYDESDALE_SIM_CLUSTER_SPEC_H_
