#include "sim/workload.h"

#include <algorithm>

#include "common/strings.h"
#include "core/dim_hash_table.h"
#include "storage/binary_row_format.h"
#include "storage/row_codec.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace sim {

namespace {

/// Exact bytes/row of a set of CIF columns, from the stored file lengths.
Result<double> CifWidth(mr::MrCluster* cluster, const storage::TableDesc& cif,
                        const std::vector<std::string>& columns) {
  double total = 0;
  for (const std::string& column : columns) {
    CLY_ASSIGN_OR_RETURN(hdfs::FileInfo info,
                         cluster->dfs()->Stat(
                             StrCat(cif.path, "/", column, ".col")));
    total += static_cast<double>(info.length);
  }
  return total / static_cast<double>(std::max<uint64_t>(cif.num_rows, 1));
}

/// Average RCFile (text) width of a set of columns, sampled from data.
Result<double> RcTextWidth(mr::MrCluster* cluster,
                           const storage::TableDesc& cif,
                           const std::vector<std::string>& columns,
                           int sample_rows) {
  CLY_ASSIGN_OR_RETURN(std::vector<storage::StorageSplit> splits,
                       storage::ListTableSplits(*cluster->dfs(), cif));
  if (splits.empty()) return 0.0;
  storage::ScanOptions scan;
  scan.projection = columns;
  CLY_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::RowReader> reader,
      storage::OpenSplitRowReader(*cluster->dfs(), cif, splits[0], scan));
  Row row;
  uint64_t bytes = 0;
  int rows = 0;
  while (rows < sample_rows) {
    CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
    if (!more) break;
    for (const Value& v : row.values()) {
      bytes += v.ToString().size() + 1;  // u8 length prefix per value
    }
    ++rows;
  }
  if (rows == 0) return 0.0;
  return static_cast<double>(bytes) / rows;
}

double AvgWidthOf(const Schema& schema) { return schema.AvgRowWidth(); }

/// Average width of one row under Hive-style text serialization (delimited
/// decimal rendering): what the paper's Hive wrote between stages.
double TextWidthOf(const Schema& schema) {
  double total = 0;
  for (const Field& f : schema.fields()) {
    switch (f.type) {
      case TypeKind::kInt32:
        total += 9;  // ~8 digits + delimiter
        break;
      case TypeKind::kInt64:
      case TypeKind::kDouble:
        total += 13;
        break;
      case TypeKind::kString:
        total += f.avg_width + 1;
        break;
    }
  }
  return total;
}

}  // namespace

double DimScaleFactor(const DimStat& dim, double measured_sf,
                      double target_sf) {
  if (!dim.scales_with_sf) return 1.0;
  const ssb::SsbCardinalities measured = ssb::CardinalitiesFor(measured_sf);
  const ssb::SsbCardinalities target = ssb::CardinalitiesFor(target_sf);
  auto pick = [&](const ssb::SsbCardinalities& c) -> double {
    if (dim.name == "customer") return static_cast<double>(c.customers);
    if (dim.name == "supplier") return static_cast<double>(c.suppliers);
    if (dim.name == "part") return static_cast<double>(c.parts);
    // Unknown (user-defined) dimensions scale linearly with the fact table.
    return static_cast<double>(c.orders);
  };
  return pick(target) / pick(measured);
}

Result<QueryMeasurement> MeasureQuery(mr::MrCluster* cluster,
                                      const ssb::SsbDataset& dataset,
                                      const core::StarQuerySpec& spec) {
  QueryMeasurement m;
  m.spec = spec;
  m.measured_sf = dataset.scale_factor;
  m.fact_rows = dataset.lineorder_rows;

  const core::StarSchema& star = dataset.star;
  const storage::TableDesc& cif = star.fact();
  const std::vector<std::string> fact_columns = core::FactColumnsFor(spec);
  std::vector<std::string> all_columns;
  for (const Field& f : cif.schema->fields()) all_columns.push_back(f.name);

  CLY_ASSIGN_OR_RETURN(m.cif_projected_width,
                       CifWidth(cluster, cif, fact_columns));
  CLY_ASSIGN_OR_RETURN(m.cif_full_width, CifWidth(cluster, cif, all_columns));
  CLY_ASSIGN_OR_RETURN(m.rcfile_projected_width,
                       RcTextWidth(cluster, cif, fact_columns, 2000));
  CLY_ASSIGN_OR_RETURN(m.rcfile_full_width,
                       RcTextWidth(cluster, cif, all_columns, 2000));

  // --- dimension stats (client-side builds; dims are small) -------------------
  std::vector<std::shared_ptr<const core::DimHashTable>> tables;
  std::vector<int> fk_index;
  SchemaPtr fact_schema;
  {
    std::vector<int> idx;
    for (const std::string& c : fact_columns) {
      CLY_ASSIGN_OR_RETURN(int i, cif.schema->Require(c));
      idx.push_back(i);
    }
    fact_schema = cif.schema->Project(idx);
  }
  for (const core::DimJoinSpec& join : spec.dims) {
    CLY_ASSIGN_OR_RETURN(const core::DimTableInfo* dim, star.dim(join.dimension));
    storage::ScanOptions scan;
    CLY_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        storage::ScanTableToVector(*cluster->dfs(), dim->desc, scan));
    std::vector<uint8_t> stream = storage::EncodeRowStream(rows);
    CLY_ASSIGN_OR_RETURN(
        std::shared_ptr<const core::DimHashTable> table,
        core::DimHashTable::Build(*dim->desc.schema, stream.data(),
                                  stream.size(), *join.predicate, join.dim_pk,
                                  join.aux_columns));
    DimStat stat;
    stat.name = join.dimension;
    stat.scales_with_sf = join.dimension != "date";
    stat.rows = dim->desc.num_rows;
    stat.entries = table->entries();
    stat.hash_memory_bytes = table->stats().memory_bytes;
    stat.replica_bytes = stream.size();
    // Serialized broadcast entry: pk + aux values of qualifying rows.
    {
      CLY_ASSIGN_OR_RETURN(BoundPredicatePtr pred,
                           join.predicate->Bind(*dim->desc.schema));
      CLY_ASSIGN_OR_RETURN(int pk, dim->desc.schema->Require(join.dim_pk));
      std::vector<int> aux_idx;
      for (const std::string& a : join.aux_columns) {
        CLY_ASSIGN_OR_RETURN(int i, dim->desc.schema->Require(a));
        aux_idx.push_back(i);
      }
      uint64_t bytes = 0;
      for (const Row& row : rows) {
        if (!pred->Eval(row)) continue;
        Row entry({row.Get(pk)});
        entry.Extend(row.Project(aux_idx));
        bytes += storage::EncodedRowSize(entry) + 4;
      }
      stat.hash_serialized_bytes = bytes;
    }
    m.dims.push_back(std::move(stat));

    CLY_ASSIGN_OR_RETURN(int fk, fact_schema->Require(join.fact_fk));
    fk_index.push_back(fk);
    tables.push_back(std::move(table));
  }

  // --- survivor counts per join prefix -----------------------------------------
  CLY_ASSIGN_OR_RETURN(BoundPredicatePtr fact_pred,
                       spec.fact_predicate->Bind(*fact_schema));
  m.survivors_after.assign(spec.dims.size(), 0);
  std::unordered_map<Row, int, RowHasher> groups;
  CLY_ASSIGN_OR_RETURN(std::vector<core::GroupSource> group_sources,
                       core::ResolveGroupSources(spec, *fact_schema));

  CLY_ASSIGN_OR_RETURN(std::vector<storage::StorageSplit> splits,
                       storage::ListTableSplits(*cluster->dfs(), cif));
  storage::ScanOptions scan;
  scan.projection = fact_columns;
  std::vector<const Row*> matched(tables.size());
  for (const storage::StorageSplit& split : splits) {
    CLY_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::RowReader> reader,
        storage::OpenSplitRowReader(*cluster->dfs(), cif, split, scan));
    Row row;
    while (true) {
      CLY_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      if (!fact_pred->Eval(row)) continue;
      ++m.predicate_survivors;
      bool all = true;
      for (size_t d = 0; d < tables.size(); ++d) {
        matched[d] = tables[d]->Probe(row.Get(fk_index[d]).AsInt64());
        if (matched[d] == nullptr) {
          all = false;
          break;
        }
        ++m.survivors_after[d];
      }
      if (!all) continue;
      Row group_key;
      for (const core::GroupSource& src : group_sources) {
        group_key.Append(src.from_fact
                             ? row.Get(src.fact_index)
                             : matched[static_cast<size_t>(src.dim_index)]->Get(
                                   src.aux_index));
      }
      groups.try_emplace(std::move(group_key), 1);
    }
  }
  m.groups = groups.size();

  // --- Hive plan widths ----------------------------------------------------------
  {
    core::StarSchema hive_star = star;
    *hive_star.mutable_fact() = dataset.fact_rcfile;
    CLY_ASSIGN_OR_RETURN(hive::HivePlan plan,
                         hive::CompileHivePlan(hive_star, spec, "/model"));
    for (const hive::JoinStageSpec& stage : plan.joins) {
      m.hive_stage_output_width.push_back(AvgWidthOf(*stage.output_schema));
      m.hive_stage_output_text_width.push_back(
          TextWidthOf(*stage.output_schema));
      // Shuffled record: fk key (4) + tag (4) + carried fact columns.
      double value_width = 8;
      for (const std::string& c : stage.fact_out_cols) {
        CLY_ASSIGN_OR_RETURN(int i, stage.fact_schema->Require(c));
        value_width += stage.fact_schema->field(i).avg_width;
      }
      m.hive_stage_shuffle_width.push_back(value_width);
    }
  }
  for (const DimStat& stat : m.dims) {
    m.hash_payload_per_entry.push_back(
        stat.entries == 0
            ? 16.0
            : static_cast<double>(stat.hash_serialized_bytes) / stat.entries);
  }
  return m;
}

}  // namespace sim
}  // namespace clydesdale
