#include "schema/row_batch.h"

#include "common/strings.h"

namespace clydesdale {

int64_t ColumnVector::size() const {
  switch (type_) {
    case TypeKind::kInt32:
      return static_cast<int64_t>(i32_.size());
    case TypeKind::kInt64:
      return static_cast<int64_t>(i64_.size());
    case TypeKind::kDouble:
      return static_cast<int64_t>(f64_.size());
    case TypeKind::kString:
      return static_cast<int64_t>(is_view_ ? str_views_.size() : str_.size());
  }
  return 0;
}

void ColumnVector::Clear() {
  i32_.clear();
  i64_.clear();
  f64_.clear();
  str_.clear();
  str_views_.clear();
  arena_.reset();
  run_values_.clear();
  run_starts_.clear();
  is_view_ = false;
}

void ColumnVector::Reserve(int64_t n) {
  switch (type_) {
    case TypeKind::kInt32:
      i32_.reserve(static_cast<size_t>(n));
      break;
    case TypeKind::kInt64:
      i64_.reserve(static_cast<size_t>(n));
      break;
    case TypeKind::kDouble:
      f64_.reserve(static_cast<size_t>(n));
      break;
    case TypeKind::kString:
      if (is_view_) {
        str_views_.reserve(static_cast<size_t>(n));
      } else {
        str_.reserve(static_cast<size_t>(n));
      }
      break;
  }
}

void ColumnVector::Append(const Value& v) {
  CLY_DCHECK(v.kind() == type_);
  CLY_DCHECK(!is_view_);
  switch (type_) {
    case TypeKind::kInt32:
      i32_.push_back(v.i32());
      break;
    case TypeKind::kInt64:
      i64_.push_back(v.i64());
      break;
    case TypeKind::kDouble:
      f64_.push_back(v.f64());
      break;
    case TypeKind::kString:
      str_.push_back(v.str());
      break;
  }
}

Value ColumnVector::GetValue(int64_t i) const {
  const size_t idx = static_cast<size_t>(i);
  switch (type_) {
    case TypeKind::kInt32:
      return Value(i32_[idx]);
    case TypeKind::kInt64:
      return Value(i64_[idx]);
    case TypeKind::kDouble:
      return Value(f64_[idx]);
    case TypeKind::kString:
      return Value(std::string(StringViewAt(i)));
  }
  return Value();
}

int64_t ColumnVector::KeyAt(int64_t i) const {
  const size_t idx = static_cast<size_t>(i);
  switch (type_) {
    case TypeKind::kInt32:
      return i32_[idx];
    case TypeKind::kInt64:
      return i64_[idx];
    case TypeKind::kDouble:
      return static_cast<int64_t>(f64_[idx]);
    case TypeKind::kString:
      CLY_LOG(Fatal) << "KeyAt on string column";
  }
  return 0;
}

RowBatch::RowBatch(SchemaPtr schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_->num_fields()));
  for (const Field& f : schema_->fields()) columns_.emplace_back(f.type);
}

void RowBatch::AppendRow(const Row& row) {
  CLY_DCHECK(row.size() == num_columns());
  for (int c = 0; c < num_columns(); ++c) {
    columns_[static_cast<size_t>(c)].Append(row.Get(c));
  }
  ++num_rows_;
}

Row RowBatch::GetRow(int64_t i) const {
  Row row;
  row.Reserve(num_columns());
  for (const ColumnVector& col : columns_) row.Append(col.GetValue(i));
  return row;
}

void RowBatch::Clear() {
  for (ColumnVector& col : columns_) col.Clear();
  num_rows_ = 0;
}

Status RowBatch::SealRowCount() {
  int64_t n = columns_.empty() ? 0 : columns_[0].size();
  for (const ColumnVector& col : columns_) {
    if (col.size() != n) {
      return Status::Internal(
          StrCat("ragged row batch: column sizes ", col.size(), " vs ", n));
    }
  }
  num_rows_ = n;
  return Status::OK();
}

}  // namespace clydesdale
