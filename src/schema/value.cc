#include "schema/value.h"

#include <cstdio>

namespace clydesdale {

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32:
      return "int32";
    case TypeKind::kInt64:
      return "int64";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  switch (kind_) {
    case TypeKind::kInt32:
      return scalar_.i32;
    case TypeKind::kInt64:
      return scalar_.i64;
    case TypeKind::kDouble:
      return static_cast<int64_t>(scalar_.f64);
    case TypeKind::kString:
      CLY_LOG(Fatal) << "AsInt64 on string value";
  }
  return 0;
}

double Value::AsDouble() const {
  switch (kind_) {
    case TypeKind::kInt32:
      return scalar_.i32;
    case TypeKind::kInt64:
      return static_cast<double>(scalar_.i64);
    case TypeKind::kDouble:
      return scalar_.f64;
    case TypeKind::kString:
      CLY_LOG(Fatal) << "AsDouble on string value";
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  if (kind_ == TypeKind::kString || other.kind_ == TypeKind::kString) {
    CLY_DCHECK(kind_ == TypeKind::kString && other.kind_ == TypeKind::kString);
    return str_.compare(other.str_);
  }
  if (kind_ == TypeKind::kDouble || other.kind_ == TypeKind::kDouble) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const int64_t a = AsInt64();
  const int64_t b = other.AsInt64();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (kind_) {
    case TypeKind::kInt32:
      return Mix64(static_cast<uint64_t>(scalar_.i32));
    case TypeKind::kInt64:
      return Mix64(static_cast<uint64_t>(scalar_.i64));
    case TypeKind::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(scalar_.f64));
      __builtin_memcpy(&bits, &scalar_.f64, sizeof(bits));
      return Mix64(bits);
    }
    case TypeKind::kString:
      return HashString(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  char buf[32];
  switch (kind_) {
    case TypeKind::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", scalar_.i32);
      return buf;
    case TypeKind::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(scalar_.i64));
      return buf;
    case TypeKind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.4f", scalar_.f64);
      return buf;
    case TypeKind::kString:
      return str_;
  }
  return "";
}

size_t Value::EncodedSize() const {
  switch (kind_) {
    case TypeKind::kInt32:
      return 4;
    case TypeKind::kInt64:
    case TypeKind::kDouble:
      return 8;
    case TypeKind::kString:
      return 2 + str_.size();
  }
  return 0;
}

}  // namespace clydesdale
