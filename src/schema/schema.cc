#include "schema/schema.h"

#include "common/strings.h"

namespace clydesdale {

namespace {
double DefaultWidth(TypeKind type, double declared) {
  if (declared > 0) return declared;
  switch (type) {
    case TypeKind::kInt32:
      return 4;
    case TypeKind::kInt64:
    case TypeKind::kDouble:
      return 8;
    case TypeKind::kString:
      return 12;  // Conservative default when the generator gave no hint.
  }
  return 8;
}
}  // namespace

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    fields_[i].avg_width = DefaultWidth(fields_[i].type, fields_[i].avg_width);
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::Require(const std::string& name) const {
  const int i = IndexOf(name);
  if (i < 0) {
    return Status::InvalidArgument(StrCat("no field named '", name, "'"));
  }
  return i;
}

std::shared_ptr<Schema> Schema::Project(const std::vector<int>& indexes) const {
  std::vector<Field> out;
  out.reserve(indexes.size());
  for (int i : indexes) out.push_back(field(i));
  return Schema::Make(std::move(out));
}

double Schema::AvgRowWidth() const {
  double total = 0;
  for (const Field& f : fields_) total += f.avg_width;
  return total;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(StrCat(f.name, ":", TypeKindToString(f.type)));
  }
  return StrCat("{", StrJoin(parts, ", "), "}");
}

}  // namespace clydesdale
