#include "schema/row.h"

#include "common/hash.h"

namespace clydesdale {

Row Row::Project(const std::vector<int>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (int i : indexes) out.push_back(values_[static_cast<size_t>(i)]);
  return Row(std::move(out));
}

void Row::Extend(const Row& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

int Row::Compare(const Row& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() == other.values_.size()) return 0;
  return values_.size() < other.values_.size() ? -1 : 1;
}

uint64_t Row::Hash() const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Row::ToString() const {
  std::string out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += values_[i].ToString();
  }
  return out;
}

}  // namespace clydesdale
