#ifndef CLYDESDALE_SCHEMA_ROW_BATCH_H_
#define CLYDESDALE_SCHEMA_ROW_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "schema/row.h"
#include "schema/schema.h"

namespace clydesdale {

/// A single column of values in columnar (structure-of-arrays) layout.
/// Exactly one of the typed arrays is active, selected by type().
///
/// String columns have two storage modes. The default *owned* mode keeps a
/// std::string per row. The *view* mode (late-materialized CIF scans) keeps
/// string_views into a shared immutable arena — typically the raw column
/// block bytes — so decode never copies or allocates per row. StringViewAt()
/// reads either mode; GetValue() copies out, so consumers that hold Values
/// never observe arena lifetime.
class ColumnVector {
 public:
  explicit ColumnVector(TypeKind type) : type_(type) {}

  TypeKind type() const { return type_; }
  int64_t size() const;
  void Clear();
  void Reserve(int64_t n);

  void Append(const Value& v);
  void AppendInt32(int32_t v) { i32_.push_back(v); }
  void AppendInt64(int64_t v) { i64_.push_back(v); }
  void AppendDouble(double v) { f64_.push_back(v); }
  void AppendString(std::string v) { str_.push_back(std::move(v)); }
  /// View mode only: the bytes must outlive this column (see string_arena).
  void AppendStringView(std::string_view v) {
    is_view_ = true;
    str_views_.push_back(v);
  }

  Value GetValue(int64_t i) const;

  // Direct typed access for tight loops (block probe, vectorized filters).
  const std::vector<int32_t>& i32() const { return i32_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<std::string>& str() const { return str_; }
  std::vector<int32_t>* mutable_i32() { return &i32_; }
  std::vector<int64_t>* mutable_i64() { return &i64_; }
  std::vector<double>* mutable_f64() { return &f64_; }
  std::vector<std::string>* mutable_str() { return &str_; }

  // --- String view mode (zero-copy decode) ---
  bool is_string_view() const { return is_view_; }
  const std::vector<std::string_view>& str_views() const { return str_views_; }
  /// Switches the column into view mode (callers fill views directly).
  std::vector<std::string_view>* mutable_str_views() {
    is_view_ = true;
    return &str_views_;
  }
  /// Pins the buffer the views point into; shared between batch slices.
  void set_string_arena(std::shared_ptr<const std::vector<uint8_t>> arena) {
    arena_ = std::move(arena);
  }
  const std::shared_ptr<const std::vector<uint8_t>>& string_arena() const {
    return arena_;
  }
  /// Uniform string accessor across both storage modes.
  std::string_view StringViewAt(int64_t i) const {
    const size_t idx = static_cast<size_t>(i);
    return is_view_ ? str_views_[idx] : std::string_view(str_[idx]);
  }

  /// Key column view: value at i widened to int64 (numeric columns only).
  int64_t KeyAt(int64_t i) const;

  // --- Run metadata (compressed-domain scan, CIF v3 RLE blocks) ---
  // Optional overlay on an integer column whose source block was
  // run-length encoded: run k covers rows [run_starts()[k],
  // run_starts()[k+1]) and they all equal run_values()[k]. The typed value
  // array is still fully materialized — the runs are an accelerator, not a
  // replacement — so every existing consumer stays correct; run-aware
  // consumers (the vectorized probe) use them to work per run instead of
  // per row. run_starts() has one trailing entry equal to size().
  bool has_runs() const { return !run_starts_.empty(); }
  const std::vector<int64_t>& run_values() const { return run_values_; }
  const std::vector<int32_t>& run_starts() const { return run_starts_; }
  /// Attaches run metadata; `starts` must be ascending, start at 0, and end
  /// at size(). Callers that mutate values afterwards must ClearRuns().
  void SetRuns(std::vector<int64_t> values, std::vector<int32_t> starts) {
    run_values_ = std::move(values);
    run_starts_ = std::move(starts);
  }
  void ClearRuns() {
    run_values_.clear();
    run_starts_.clear();
  }

 private:
  TypeKind type_;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<std::string_view> str_views_;
  std::shared_ptr<const std::vector<uint8_t>> arena_;
  std::vector<int64_t> run_values_;
  std::vector<int32_t> run_starts_;
  bool is_view_ = false;
};

/// A block of rows in columnar layout. This is what B-CIF readers return and
/// what the Clydesdale probe loop consumes (paper §5.3: block iteration).
class RowBatch {
 public:
  explicit RowBatch(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  const ColumnVector& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  ColumnVector* mutable_column(int i) { return &columns_[static_cast<size_t>(i)]; }

  /// Appends a full row; the row arity must match the schema.
  void AppendRow(const Row& row);

  /// Materializes row i (copies values out of the columns).
  Row GetRow(int64_t i) const;

  void Clear();

  /// Called by readers after filling columns directly; validates that all
  /// columns have equal length and records it.
  Status SealRowCount();

 private:
  SchemaPtr schema_;
  std::vector<ColumnVector> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace clydesdale

#endif  // CLYDESDALE_SCHEMA_ROW_BATCH_H_
