#include "schema/expr.h"

#include <algorithm>

#include "common/strings.h"

namespace clydesdale {

// ---------------------------------------------------------------------------
// Expr factories
// ---------------------------------------------------------------------------

Expr::Ptr Expr::Col(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->name_ = std::move(name);
  return e;
}

Expr::Ptr Expr::Lit(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

Expr::Ptr Expr::Add(Ptr a, Ptr b) {
  return MakeBinary(Kind::kAdd, std::move(a), std::move(b));
}
Expr::Ptr Expr::Sub(Ptr a, Ptr b) {
  return MakeBinary(Kind::kSub, std::move(a), std::move(b));
}
Expr::Ptr Expr::Mul(Ptr a, Ptr b) {
  return MakeBinary(Kind::kMul, std::move(a), std::move(b));
}

Expr::Ptr Expr::MakeBinary(Kind kind, Ptr a, Ptr b) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return e;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->push_back(name_);
      return;
    case Kind::kLiteral:
      return;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      return;
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return name_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kAdd:
      return StrCat("(", left_->ToString(), " + ", right_->ToString(), ")");
    case Kind::kSub:
      return StrCat("(", left_->ToString(), " - ", right_->ToString(), ")");
    case Kind::kMul:
      return StrCat("(", left_->ToString(), " * ", right_->ToString(), ")");
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Bound scalar nodes
// ---------------------------------------------------------------------------

void BoundScalar::EvalBatch(const RowBatch& batch, const int32_t* sel_idx,
                            int64_t n, int64_t* out) const {
  for (int64_t j = 0; j < n; ++j) {
    out[j] = Eval(batch.GetRow(sel_idx[j])).AsInt64();
  }
}

namespace {

class ColumnScalar final : public BoundScalar {
 public:
  explicit ColumnScalar(int index) : index_(index) {}
  Value Eval(const Row& row) const override { return row.Get(index_); }
  double EvalDouble(const Row& row) const override {
    return row.Get(index_).AsDouble();
  }

  void EvalBatch(const RowBatch& batch, const int32_t* sel_idx, int64_t n,
                 int64_t* out) const override {
    const ColumnVector& col = batch.column(index_);
    switch (col.type()) {
      case TypeKind::kInt32: {
        const auto& data = col.i32();
        for (int64_t j = 0; j < n; ++j) {
          out[j] = data[static_cast<size_t>(sel_idx[j])];
        }
        return;
      }
      case TypeKind::kInt64: {
        const auto& data = col.i64();
        for (int64_t j = 0; j < n; ++j) {
          out[j] = data[static_cast<size_t>(sel_idx[j])];
        }
        return;
      }
      case TypeKind::kDouble: {
        // Per-element truncation == Eval(row).AsInt64() for a lone column.
        const auto& data = col.f64();
        for (int64_t j = 0; j < n; ++j) {
          out[j] = static_cast<int64_t>(data[static_cast<size_t>(sel_idx[j])]);
        }
        return;
      }
      case TypeKind::kString:
        break;  // falls through to the scalar path (which reports the error)
    }
    BoundScalar::EvalBatch(batch, sel_idx, n, out);
  }

  bool IntegerTypedIn(const RowBatch& batch) const override {
    const TypeKind t = batch.column(index_).type();
    return t == TypeKind::kInt32 || t == TypeKind::kInt64;
  }

 private:
  int index_;
};

class LiteralScalar final : public BoundScalar {
 public:
  explicit LiteralScalar(Value v) : value_(std::move(v)) {}
  Value Eval(const Row&) const override { return value_; }
  double EvalDouble(const Row&) const override { return value_.AsDouble(); }

  void EvalBatch(const RowBatch&, const int32_t*, int64_t n,
                 int64_t* out) const override {
    const int64_t v = value_.AsInt64();
    for (int64_t j = 0; j < n; ++j) out[j] = v;
  }

  bool IntegerTypedIn(const RowBatch&) const override {
    return value_.kind() == TypeKind::kInt32 ||
           value_.kind() == TypeKind::kInt64;
  }

 private:
  Value value_;
};

class ArithmeticScalar final : public BoundScalar {
 public:
  ArithmeticScalar(Expr::Kind op, BoundScalarPtr l, BoundScalarPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}

  Value Eval(const Row& row) const override {
    // SSB arithmetic is integer (prices/discounts are scaled ints); compute
    // in int64 when both sides are integer, double otherwise.
    const Value a = left_->Eval(row);
    const Value b = right_->Eval(row);
    const bool integral = a.kind() != TypeKind::kDouble &&
                          b.kind() != TypeKind::kDouble &&
                          a.kind() != TypeKind::kString;
    if (integral) {
      const int64_t x = a.AsInt64();
      const int64_t y = b.AsInt64();
      switch (op_) {
        case Expr::Kind::kAdd:
          return Value(x + y);
        case Expr::Kind::kSub:
          return Value(x - y);
        case Expr::Kind::kMul:
          return Value(x * y);
        default:
          break;
      }
    }
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    switch (op_) {
      case Expr::Kind::kAdd:
        return Value(x + y);
      case Expr::Kind::kSub:
        return Value(x - y);
      case Expr::Kind::kMul:
        return Value(x * y);
      default:
        break;
    }
    return Value();
  }

  double EvalDouble(const Row& row) const override {
    const double x = left_->EvalDouble(row);
    const double y = right_->EvalDouble(row);
    switch (op_) {
      case Expr::Kind::kAdd:
        return x + y;
      case Expr::Kind::kSub:
        return x - y;
      case Expr::Kind::kMul:
        return x * y;
      default:
        return 0;
    }
  }

  void EvalBatch(const RowBatch& batch, const int32_t* sel_idx, int64_t n,
                 int64_t* out) const override {
    // Integer-only subtrees vectorize (the SSB case: scaled-int prices and
    // discounts); anything touching a double keeps the exact scalar
    // semantics of Eval, which widens to double and truncates once.
    if (!IntegerTypedIn(batch)) {
      BoundScalar::EvalBatch(batch, sel_idx, n, out);
      return;
    }
    std::vector<int64_t> lhs(static_cast<size_t>(n));
    left_->EvalBatch(batch, sel_idx, n, lhs.data());
    right_->EvalBatch(batch, sel_idx, n, out);
    switch (op_) {
      case Expr::Kind::kAdd:
        for (int64_t j = 0; j < n; ++j) out[j] = lhs[static_cast<size_t>(j)] + out[j];
        return;
      case Expr::Kind::kSub:
        for (int64_t j = 0; j < n; ++j) out[j] = lhs[static_cast<size_t>(j)] - out[j];
        return;
      case Expr::Kind::kMul:
        for (int64_t j = 0; j < n; ++j) out[j] = lhs[static_cast<size_t>(j)] * out[j];
        return;
      default:
        return;
    }
  }

  bool IntegerTypedIn(const RowBatch& batch) const override {
    return left_->IntegerTypedIn(batch) && right_->IntegerTypedIn(batch);
  }

 private:
  Expr::Kind op_;
  BoundScalarPtr left_;
  BoundScalarPtr right_;
};

}  // namespace

Result<BoundScalarPtr> Expr::Bind(const Schema& schema) const {
  switch (kind_) {
    case Kind::kColumn: {
      CLY_ASSIGN_OR_RETURN(int idx, schema.Require(name_));
      return BoundScalarPtr(std::make_shared<ColumnScalar>(idx));
    }
    case Kind::kLiteral:
      return BoundScalarPtr(std::make_shared<LiteralScalar>(literal_));
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul: {
      CLY_ASSIGN_OR_RETURN(BoundScalarPtr l, left_->Bind(schema));
      CLY_ASSIGN_OR_RETURN(BoundScalarPtr r, right_->Bind(schema));
      return BoundScalarPtr(
          std::make_shared<ArithmeticScalar>(kind_, std::move(l), std::move(r)));
    }
  }
  return Status::Internal("unreachable expr kind");
}

// ---------------------------------------------------------------------------
// Predicate factories
// ---------------------------------------------------------------------------

Predicate::Ptr Predicate::MakeCompare(Kind kind, std::string col, Value v) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = kind;
  p->name_ = std::move(col);
  p->lo_ = std::move(v);
  return p;
}

Predicate::Ptr Predicate::True() {
  static const Ptr kTruePred = std::shared_ptr<Predicate>(new Predicate());
  return kTruePred;
}

Predicate::Ptr Predicate::Eq(std::string col, Value v) {
  return MakeCompare(Kind::kEq, std::move(col), std::move(v));
}
Predicate::Ptr Predicate::Ne(std::string col, Value v) {
  return MakeCompare(Kind::kNe, std::move(col), std::move(v));
}
Predicate::Ptr Predicate::Lt(std::string col, Value v) {
  return MakeCompare(Kind::kLt, std::move(col), std::move(v));
}
Predicate::Ptr Predicate::Le(std::string col, Value v) {
  return MakeCompare(Kind::kLe, std::move(col), std::move(v));
}
Predicate::Ptr Predicate::Gt(std::string col, Value v) {
  return MakeCompare(Kind::kGt, std::move(col), std::move(v));
}
Predicate::Ptr Predicate::Ge(std::string col, Value v) {
  return MakeCompare(Kind::kGe, std::move(col), std::move(v));
}

Predicate::Ptr Predicate::Between(std::string col, Value lo, Value hi) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kBetween;
  p->name_ = std::move(col);
  p->lo_ = std::move(lo);
  p->hi_ = std::move(hi);
  return p;
}

Predicate::Ptr Predicate::In(std::string col, std::vector<Value> values) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kIn;
  p->name_ = std::move(col);
  p->set_ = std::move(values);
  return p;
}

Predicate::Ptr Predicate::And(std::vector<Ptr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->children_ = std::move(children);
  return p;
}

Predicate::Ptr Predicate::Or(std::vector<Ptr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->children_ = std::move(children);
  return p;
}

Predicate::Ptr Predicate::Not(Ptr child) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->children_ = {std::move(child)};
  return p;
}

void Predicate::CollectColumns(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const Ptr& c : children_) c->CollectColumns(out);
      return;
    default:
      out->push_back(name_);
      return;
  }
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kEq:
      return StrCat(name_, " = ", lo_.ToString());
    case Kind::kNe:
      return StrCat(name_, " != ", lo_.ToString());
    case Kind::kLt:
      return StrCat(name_, " < ", lo_.ToString());
    case Kind::kLe:
      return StrCat(name_, " <= ", lo_.ToString());
    case Kind::kGt:
      return StrCat(name_, " > ", lo_.ToString());
    case Kind::kGe:
      return StrCat(name_, " >= ", lo_.ToString());
    case Kind::kBetween:
      return StrCat(name_, " between ", lo_.ToString(), " and ",
                    hi_.ToString());
    case Kind::kIn: {
      std::vector<std::string> vs;
      for (const Value& v : set_) vs.push_back(v.ToString());
      return StrCat(name_, " in (", StrJoin(vs, ", "), ")");
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> cs;
      for (const Ptr& c : children_) cs.push_back(c->ToString());
      return StrCat("(", StrJoin(cs, kind_ == Kind::kAnd ? " and " : " or "),
                    ")");
    }
    case Kind::kNot:
      return StrCat("not (", children_[0]->ToString(), ")");
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Bound predicate nodes
// ---------------------------------------------------------------------------

void BoundPredicate::EvalBatch(const RowBatch& batch,
                               std::vector<uint8_t>* sel) const {
  const int64_t n = batch.num_rows();
  CLY_DCHECK(static_cast<int64_t>(sel->size()) == n);
  for (int64_t i = 0; i < n; ++i) {
    if ((*sel)[static_cast<size_t>(i)] == 0) continue;
    if (!Eval(batch.GetRow(i))) (*sel)[static_cast<size_t>(i)] = 0;
  }
}

namespace {

class TruePredicate final : public BoundPredicate {
 public:
  bool Eval(const Row&) const override { return true; }
  void EvalBatch(const RowBatch&, std::vector<uint8_t>*) const override {}
};

/// Generic single-column comparison; ops kEq..kBetween.
class ComparePredicate final : public BoundPredicate {
 public:
  ComparePredicate(Predicate::Kind op, int index, Value lo, Value hi)
      : op_(op), index_(index), lo_(std::move(lo)), hi_(std::move(hi)) {}

  bool Eval(const Row& row) const override {
    return Test(row.Get(index_));
  }

  void EvalBatch(const RowBatch& batch,
                 std::vector<uint8_t>* sel) const override {
    const ColumnVector& col = batch.column(index_);
    const int64_t n = batch.num_rows();
    // Tight loop for int32 columns (the common fact-table case).
    if (col.type() == TypeKind::kInt32 && lo_.kind() != TypeKind::kString) {
      const auto& data = col.i32();
      const int64_t lo = lo_.AsInt64();
      const int64_t hi = op_ == Predicate::Kind::kBetween ? hi_.AsInt64() : 0;
      for (int64_t i = 0; i < n; ++i) {
        auto& bit = (*sel)[static_cast<size_t>(i)];
        if (bit == 0) continue;
        const int64_t v = data[static_cast<size_t>(i)];
        bit = TestInt(v, lo, hi) ? 1 : 0;
      }
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      auto& bit = (*sel)[static_cast<size_t>(i)];
      if (bit == 0) continue;
      bit = Test(col.GetValue(i)) ? 1 : 0;
    }
  }

 private:
  bool TestInt(int64_t v, int64_t lo, int64_t hi) const {
    switch (op_) {
      case Predicate::Kind::kEq:
        return v == lo;
      case Predicate::Kind::kNe:
        return v != lo;
      case Predicate::Kind::kLt:
        return v < lo;
      case Predicate::Kind::kLe:
        return v <= lo;
      case Predicate::Kind::kGt:
        return v > lo;
      case Predicate::Kind::kGe:
        return v >= lo;
      case Predicate::Kind::kBetween:
        return v >= lo && v <= hi;
      default:
        return false;
    }
  }

  bool Test(const Value& v) const {
    const int c = v.Compare(lo_);
    switch (op_) {
      case Predicate::Kind::kEq:
        return c == 0;
      case Predicate::Kind::kNe:
        return c != 0;
      case Predicate::Kind::kLt:
        return c < 0;
      case Predicate::Kind::kLe:
        return c <= 0;
      case Predicate::Kind::kGt:
        return c > 0;
      case Predicate::Kind::kGe:
        return c >= 0;
      case Predicate::Kind::kBetween:
        return c >= 0 && v.Compare(hi_) <= 0;
      default:
        return false;
    }
  }

  Predicate::Kind op_;
  int index_;
  Value lo_, hi_;
};

class InPredicate final : public BoundPredicate {
 public:
  InPredicate(int index, std::vector<Value> values)
      : index_(index), values_(std::move(values)) {}

  bool Eval(const Row& row) const override {
    const Value& v = row.Get(index_);
    for (const Value& cand : values_) {
      if (v.Compare(cand) == 0) return true;
    }
    return false;
  }

 private:
  int index_;
  std::vector<Value> values_;
};

class AndPredicate final : public BoundPredicate {
 public:
  explicit AndPredicate(std::vector<BoundPredicatePtr> children)
      : children_(std::move(children)) {}

  bool Eval(const Row& row) const override {
    for (const auto& c : children_) {
      if (!c->Eval(row)) return false;
    }
    return true;
  }

  void EvalBatch(const RowBatch& batch,
                 std::vector<uint8_t>* sel) const override {
    for (const auto& c : children_) c->EvalBatch(batch, sel);
  }

 private:
  std::vector<BoundPredicatePtr> children_;
};

class OrPredicate final : public BoundPredicate {
 public:
  explicit OrPredicate(std::vector<BoundPredicatePtr> children)
      : children_(std::move(children)) {}

  bool Eval(const Row& row) const override {
    for (const auto& c : children_) {
      if (c->Eval(row)) return true;
    }
    return false;
  }

 private:
  std::vector<BoundPredicatePtr> children_;
};

class NotPredicate final : public BoundPredicate {
 public:
  explicit NotPredicate(BoundPredicatePtr child) : child_(std::move(child)) {}
  bool Eval(const Row& row) const override { return !child_->Eval(row); }

 private:
  BoundPredicatePtr child_;
};

}  // namespace

Result<BoundPredicatePtr> Predicate::Bind(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return BoundPredicatePtr(std::make_shared<TruePredicate>());
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kLe:
    case Kind::kGt:
    case Kind::kGe:
    case Kind::kBetween: {
      CLY_ASSIGN_OR_RETURN(int idx, schema.Require(name_));
      return BoundPredicatePtr(
          std::make_shared<ComparePredicate>(kind_, idx, lo_, hi_));
    }
    case Kind::kIn: {
      CLY_ASSIGN_OR_RETURN(int idx, schema.Require(name_));
      return BoundPredicatePtr(std::make_shared<InPredicate>(idx, set_));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<BoundPredicatePtr> bound;
      bound.reserve(children_.size());
      for (const Ptr& c : children_) {
        CLY_ASSIGN_OR_RETURN(BoundPredicatePtr b, c->Bind(schema));
        bound.push_back(std::move(b));
      }
      if (kind_ == Kind::kAnd) {
        return BoundPredicatePtr(
            std::make_shared<AndPredicate>(std::move(bound)));
      }
      return BoundPredicatePtr(std::make_shared<OrPredicate>(std::move(bound)));
    }
    case Kind::kNot: {
      CLY_ASSIGN_OR_RETURN(BoundPredicatePtr b, children_[0]->Bind(schema));
      return BoundPredicatePtr(std::make_shared<NotPredicate>(std::move(b)));
    }
  }
  return Status::Internal("unreachable predicate kind");
}

}  // namespace clydesdale
