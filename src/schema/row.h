#ifndef CLYDESDALE_SCHEMA_ROW_H_
#define CLYDESDALE_SCHEMA_ROW_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "schema/value.h"

namespace clydesdale {

/// A tuple of values. Rows are schema-free at runtime (the schema travels
/// separately), matching how Hadoop key/value records behave.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  int size() const { return static_cast<int>(values_.size()); }
  bool empty() const { return values_.empty(); }

  const Value& Get(int i) const { return values_[static_cast<size_t>(i)]; }
  Value& GetMutable(int i) { return values_[static_cast<size_t>(i)]; }
  void Set(int i, Value v) { values_[static_cast<size_t>(i)] = std::move(v); }
  void Append(Value v) { values_.push_back(std::move(v)); }
  void Reserve(int n) { values_.reserve(static_cast<size_t>(n)); }
  void Clear() { values_.clear(); }

  const std::vector<Value>& values() const { return values_; }

  /// New row holding the given column positions, in order (the paper's
  /// Record.project()).
  Row Project(const std::vector<int>& indexes) const;

  /// Appends all values of `other` (used when augmenting a fact row with
  /// dimension auxiliary columns after a successful probe).
  void Extend(const Row& other);

  /// Lexicographic comparison, element by element; shorter row sorts first
  /// on a tie. Rows compared together must be type-compatible per position.
  int Compare(const Row& other) const;

  bool operator==(const Row& other) const { return Compare(other) == 0; }
  bool operator!=(const Row& other) const { return Compare(other) != 0; }
  bool operator<(const Row& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  /// Pipe-separated rendering: "ASIA|1992|4245".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct RowHasher {
  size_t operator()(const Row& r) const { return r.Hash(); }
};

}  // namespace clydesdale

#endif  // CLYDESDALE_SCHEMA_ROW_H_
