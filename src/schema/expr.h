#ifndef CLYDESDALE_SCHEMA_EXPR_H_
#define CLYDESDALE_SCHEMA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/row.h"
#include "schema/row_batch.h"
#include "schema/schema.h"

namespace clydesdale {

// ---------------------------------------------------------------------------
// Unbound expressions: built with column *names*, then bound against a schema
// to produce index-based evaluators. Queries in the catalogue are expressed
// with these; engines bind them against whatever intermediate schema they
// produce.
// ---------------------------------------------------------------------------

class BoundScalar;
class BoundPredicate;

/// A scalar expression tree (column ref, literal, + - *).
class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kAdd, kSub, kMul };
  using Ptr = std::shared_ptr<const Expr>;

  static Ptr Col(std::string name);
  static Ptr Lit(Value v);
  static Ptr Add(Ptr a, Ptr b);
  static Ptr Sub(Ptr a, Ptr b);
  static Ptr Mul(Ptr a, Ptr b);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return literal_; }
  const Ptr& left() const { return left_; }
  const Ptr& right() const { return right_; }

  /// Appends every referenced column name (with duplicates).
  void CollectColumns(std::vector<std::string>* out) const;

  /// Resolves column names to indexes in `schema`.
  Result<std::shared_ptr<const BoundScalar>> Bind(const Schema& schema) const;

  std::string ToString() const;

 private:
  Expr() = default;
  static Ptr MakeBinary(Kind kind, Ptr a, Ptr b);

  Kind kind_ = Kind::kLiteral;
  std::string name_;
  Value literal_;
  Ptr left_;
  Ptr right_;
};

/// A boolean predicate tree over a row.
class Predicate {
 public:
  enum class Kind {
    kTrue,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kBetween,  // inclusive both ends
    kIn,
    kAnd,
    kOr,
    kNot,
  };
  using Ptr = std::shared_ptr<const Predicate>;

  static Ptr True();
  static Ptr Eq(std::string col, Value v);
  static Ptr Ne(std::string col, Value v);
  static Ptr Lt(std::string col, Value v);
  static Ptr Le(std::string col, Value v);
  static Ptr Gt(std::string col, Value v);
  static Ptr Ge(std::string col, Value v);
  static Ptr Between(std::string col, Value lo, Value hi);
  static Ptr In(std::string col, std::vector<Value> values);
  static Ptr And(std::vector<Ptr> children);
  static Ptr Or(std::vector<Ptr> children);
  static Ptr Not(Ptr child);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  bool IsTrue() const { return kind_ == Kind::kTrue; }
  /// Comparison operands: lo() for kEq..kGe, lo()/hi() for kBetween.
  const Value& lo() const { return lo_; }
  const Value& hi() const { return hi_; }
  /// Candidate values of a kIn predicate.
  const std::vector<Value>& in_values() const { return set_; }
  /// Children of kAnd/kOr/kNot nodes (empty for leaves). These accessors let
  /// scan layers interpret predicate trees structurally (zone-map tests,
  /// encoded-data evaluation) without re-binding against a schema.
  const std::vector<Ptr>& children() const { return children_; }

  void CollectColumns(std::vector<std::string>* out) const;

  Result<std::shared_ptr<const BoundPredicate>> Bind(
      const Schema& schema) const;

  std::string ToString() const;

 private:
  Predicate() = default;
  static Ptr MakeCompare(Kind kind, std::string col, Value v);

  Kind kind_ = Kind::kTrue;
  std::string name_;
  Value lo_, hi_;              // comparison operand(s)
  std::vector<Value> set_;     // kIn
  std::vector<Ptr> children_;  // kAnd/kOr/kNot
};

// ---------------------------------------------------------------------------
// Bound (index-resolved) evaluators.
// ---------------------------------------------------------------------------

/// Scalar evaluator; Eval never fails after a successful Bind.
class BoundScalar {
 public:
  virtual ~BoundScalar() = default;
  virtual Value Eval(const Row& row) const = 0;
  /// Numeric fast path used by aggregation (widens to double).
  virtual double EvalDouble(const Row& row) const { return Eval(row).AsDouble(); }

  /// Column-wise evaluation over a selection vector (mirrors
  /// BoundPredicate::EvalBatch): for each of the `n` selected row indexes
  /// writes the int64-widened value of batch row sel_idx[j] to out[j]. The
  /// base implementation falls back to scalar Eval per row, so every
  /// expression kind works; column refs, literals, and integer arithmetic
  /// override it with tight column loops.
  virtual void EvalBatch(const RowBatch& batch, const int32_t* sel_idx,
                         int64_t n, int64_t* out) const;

  /// True when EvalBatch over `batch` is exact: every input this expression
  /// touches is integer-typed, so per-element int64 widening matches the
  /// scalar Eval-then-truncate semantics. Mixed double arithmetic must keep
  /// the scalar path (it truncates only the final result).
  virtual bool IntegerTypedIn(const RowBatch& batch) const {
    (void)batch;
    return false;
  }
};

/// Predicate evaluator with a row path and a selective batch path.
class BoundPredicate {
 public:
  virtual ~BoundPredicate() = default;
  virtual bool Eval(const Row& row) const = 0;

  /// Filters `batch` rows: sets sel[i] &= predicate(row i). `sel` must have
  /// batch.num_rows() entries. The default loops over rows; leaf comparisons
  /// on numeric columns override this with tight column loops.
  virtual void EvalBatch(const RowBatch& batch, std::vector<uint8_t>* sel) const;
};

using BoundScalarPtr = std::shared_ptr<const BoundScalar>;
using BoundPredicatePtr = std::shared_ptr<const BoundPredicate>;

}  // namespace clydesdale

#endif  // CLYDESDALE_SCHEMA_EXPR_H_
