#ifndef CLYDESDALE_SCHEMA_VALUE_H_
#define CLYDESDALE_SCHEMA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/logging.h"

namespace clydesdale {

/// Column types supported by the engines. SSB needs exactly these four.
enum class TypeKind : uint8_t { kInt32 = 0, kInt64 = 1, kDouble = 2, kString = 3 };

const char* TypeKindToString(TypeKind kind);

/// A single typed cell. Small tagged union; strings are owned.
class Value {
 public:
  Value() : kind_(TypeKind::kInt32) { scalar_.i32 = 0; }
  explicit Value(int32_t v) : kind_(TypeKind::kInt32) { scalar_.i32 = v; }
  explicit Value(int64_t v) : kind_(TypeKind::kInt64) { scalar_.i64 = v; }
  explicit Value(double v) : kind_(TypeKind::kDouble) { scalar_.f64 = v; }
  // String constructors zero the scalar lanes so copies/moves never touch
  // uninitialized bytes.
  explicit Value(std::string v) : kind_(TypeKind::kString), str_(std::move(v)) {
    scalar_.i64 = 0;
  }
  explicit Value(const char* v) : kind_(TypeKind::kString), str_(v) {
    scalar_.i64 = 0;
  }

  TypeKind kind() const { return kind_; }

  int32_t i32() const {
    CLY_DCHECK(kind_ == TypeKind::kInt32);
    return scalar_.i32;
  }
  int64_t i64() const {
    CLY_DCHECK(kind_ == TypeKind::kInt64);
    return scalar_.i64;
  }
  double f64() const {
    CLY_DCHECK(kind_ == TypeKind::kDouble);
    return scalar_.f64;
  }
  const std::string& str() const {
    CLY_DCHECK(kind_ == TypeKind::kString);
    return str_;
  }

  /// Numeric widening view: any numeric kind as int64 (kDouble truncates).
  int64_t AsInt64() const;
  /// Numeric widening view: any numeric kind as double.
  double AsDouble() const;

  /// Total order within a kind; comparing across numeric kinds widens.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  /// Unquoted text rendering (used by the text storage format and outputs).
  std::string ToString() const;

  /// Bytes this value occupies in the binary row encoding.
  size_t EncodedSize() const;

 private:
  TypeKind kind_;
  union Scalar {
    int32_t i32;
    int64_t i64;
    double f64;
  } scalar_;
  std::string str_;
};

}  // namespace clydesdale

#endif  // CLYDESDALE_SCHEMA_VALUE_H_
