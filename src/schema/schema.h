#ifndef CLYDESDALE_SCHEMA_SCHEMA_H_
#define CLYDESDALE_SCHEMA_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "schema/value.h"

namespace clydesdale {

/// One column description.
struct Field {
  std::string name;
  TypeKind type;
  /// Average encoded width used for I/O estimates; exact for fixed-width
  /// types, a generator-supplied mean for strings.
  double avg_width = 0;
};

/// An ordered list of fields with name lookup. Immutable after construction;
/// shared via shared_ptr across readers, writers, and tasks.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1.
  int IndexOf(const std::string& name) const;

  /// Index of the named field, or InvalidArgument.
  Result<int> Require(const std::string& name) const;

  /// Schema containing just the given field indexes, in that order.
  std::shared_ptr<Schema> Project(const std::vector<int>& indexes) const;

  /// Sum of avg_width over all fields (estimated bytes per encoded row).
  double AvgRowWidth() const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace clydesdale

#endif  // CLYDESDALE_SCHEMA_SCHEMA_H_
