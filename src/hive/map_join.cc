#include "hive/map_join.h"

#include "common/stopwatch.h"
#include "common/strings.h"
#include "mapreduce/counters.h"
#include "mapreduce/input_format.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "storage/binary_row_format.h"
#include "storage/table_format.h"

namespace clydesdale {
namespace hive {

namespace {
/// Schema of the serialized hash file: pk then aux columns.
Result<SchemaPtr> HashFileSchema(const JoinStageSpec& spec) {
  std::vector<Field> fields;
  CLY_ASSIGN_OR_RETURN(int pk, spec.dim_schema->Require(spec.dim_pk));
  fields.push_back(spec.dim_schema->field(pk));
  for (const std::string& c : spec.aux_cols) {
    CLY_ASSIGN_OR_RETURN(int i, spec.dim_schema->Require(c));
    fields.push_back(spec.dim_schema->field(i));
  }
  return Schema::Make(std::move(fields));
}
}  // namespace

Result<std::string> BuildMapJoinHashFile(mr::MrCluster* cluster,
                                         const JoinStageSpec& spec,
                                         const std::string& scratch_root,
                                         uint64_t* serialized_bytes) {
  // Master-side scan of the dimension with the predicate applied.
  CLY_ASSIGN_OR_RETURN(storage::TableDesc dim_desc,
                       cluster->GetTable(spec.dim_table));
  CLY_ASSIGN_OR_RETURN(BoundPredicatePtr pred,
                       spec.dim_predicate->Bind(*dim_desc.schema));
  CLY_ASSIGN_OR_RETURN(int pk, dim_desc.schema->Require(spec.dim_pk));
  std::vector<int> aux_idx;
  for (const std::string& c : spec.aux_cols) {
    CLY_ASSIGN_OR_RETURN(int i, dim_desc.schema->Require(c));
    aux_idx.push_back(i);
  }

  storage::ScanOptions scan;
  CLY_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      storage::ScanTableToVector(*cluster->dfs(), dim_desc, scan));
  std::vector<Row> filtered;
  for (const Row& row : rows) {
    if (!pred->Eval(row)) continue;
    Row entry;
    entry.Reserve(1 + static_cast<int>(aux_idx.size()));
    entry.Append(row.Get(pk));
    for (int i : aux_idx) entry.Append(row.Get(i));
    filtered.push_back(std::move(entry));
  }

  std::vector<uint8_t> bytes = storage::EncodeRowStream(filtered);
  if (serialized_bytes != nullptr) *serialized_bytes = bytes.size();
  const std::string path = StrCat(scratch_root, "/hash_stage",
                                  spec.stage_index + 1, "_",
                                  JoinStrategyName(JoinStrategy::kMapJoin));
  if (cluster->dfs()->Exists(path)) {
    CLY_RETURN_IF_ERROR(cluster->dfs()->Delete(path));
  }
  CLY_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::DfsWriter> writer,
                       cluster->dfs()->Create(path));
  CLY_RETURN_IF_ERROR(writer->Append(bytes));
  CLY_RETURN_IF_ERROR(writer->Close());
  return path;
}

Status MapJoinMapper::Setup(mr::TaskContext* context) {
  // Every map task re-reads and deserializes the broadcast hash table from
  // the node's local disk (the distributed-cache copy) — the per-task
  // reload Clydesdale's JVM reuse avoids (paper §6.3). The span makes the
  // repeated cost directly comparable to Clydesdale's "hash-tables" spans.
  obs::Span load_span(context->trace(), "hash-load", "stage",
                      context->task_index(), context->node());
  profiled_ = context->profile_enabled();
  Stopwatch load_timer;
  const int64_t load_cpu0 = profiled_ ? obs::ThreadCpuNanos() : 0;
  // Deserializing the broadcast copy and building the table; counters fire
  // only when the load actually runs, so a cache-warm task carries none.
  auto load = [&](const std::shared_ptr<obs::MemTracker>& tracker)
      -> Result<std::shared_ptr<const core::DimHashTable>> {
    CLY_ASSIGN_OR_RETURN(std::string local_path,
                         context->CacheFilePath(hash_file_));
    CLY_ASSIGN_OR_RETURN(hdfs::BlockBuffer bytes,
                         context->local_store()->Read(local_path));
    context->AddLocalDiskBytes(bytes->size());

    CLY_ASSIGN_OR_RETURN(SchemaPtr hash_schema, HashFileSchema(spec_));
    std::vector<std::string> aux = spec_.aux_cols;
    CLY_ASSIGN_OR_RETURN(
        std::shared_ptr<const core::DimHashTable> built,
        core::DimHashTable::Build(*hash_schema, bytes->data(), bytes->size(),
                                  *Predicate::True(),
                                  hash_schema->field(0).name, aux, tracker));
    context->counters()->Add(kCounterMapJoinHashLoads, 1);
    context->counters()->Add(kCounterMapJoinHashEntries,
                             static_cast<int64_t>(built->entries()));
    context->counters()->Add(
        kCounterMapJoinHashBytes,
        static_cast<int64_t>(built->stats().memory_bytes));
    return built;
  };
  if (cache_ != nullptr) {
    // The broadcast file's contents are a pure function of (dimension table,
    // its version, the stage's filter shape), so the cache keys on those —
    // a repeated Hive query shares the table across jobs and skips the
    // per-task reload the paper charges to the baseline.
    core::DimCacheKey key;
    key.table_path = spec_.dim_table;
    key.version = context->cluster()->table_version(spec_.dim_table);
    key.filter_fingerprint = core::FilterFingerprint(
        *spec_.dim_predicate, spec_.dim_pk, spec_.aux_cols);
    bool hit = false;
    CLY_ASSIGN_OR_RETURN(table_, cache_->GetOrBuild(key, load, &hit));
    mr::AddDimCacheCounters(hit ? 1 : 0, hit ? 0 : 1, /*evictions=*/0,
                            cache_->stats().resident_bytes,
                            context->counters());
  } else {
    CLY_ASSIGN_OR_RETURN(table_, load(context->mem_tracker()));
  }
  if (profiled_) {
    hash_load_wall_ns_ = static_cast<uint64_t>(load_timer.ElapsedNanos());
    hash_load_cpu_ns_ =
        static_cast<uint64_t>(obs::ThreadCpuNanos() - load_cpu0);
  }

  CLY_ASSIGN_OR_RETURN(fact_pred_,
                       spec_.fact_predicate->Bind(*spec_.fact_schema));
  CLY_ASSIGN_OR_RETURN(fact_fk_index_,
                       spec_.fact_schema->Require(spec_.fact_fk));
  for (const std::string& c : spec_.fact_out_cols) {
    CLY_ASSIGN_OR_RETURN(int i, spec_.fact_schema->Require(c));
    fact_out_idx_.push_back(i);
  }
  return Status::OK();
}

Status MapJoinMapper::Map(const Row& key, const Row& value, mr::TaskContext*,
                          mr::OutputCollector* out) {
  (void)key;
  if (profiled_) ++probe_rows_;
  if (!fact_pred_->Eval(value)) return Status::OK();
  const Row* aux = table_->Probe(value.Get(fact_fk_index_).AsInt64());
  if (aux == nullptr) return Status::OK();
  if (profiled_) ++join_rows_;
  Row joined;
  joined.Reserve(static_cast<int>(fact_out_idx_.size()) + aux->size());
  for (int i : fact_out_idx_) joined.Append(value.Get(i));
  joined.Extend(*aux);
  Row empty_key;
  return out->Collect(empty_key, joined);
}

Status MapJoinMapper::Cleanup(mr::TaskContext* context,
                              mr::OutputCollector* out) {
  (void)out;
  if (!profiled_) return Status::OK();
  // probe ← hash-load: Hive pays the broadcast-table deserialization in
  // every task, so the load node's per-attempt wall makes the reload cost
  // the paper charges to the baseline (§6.3) directly visible.
  obs::OperatorProfile probe;
  probe.name = "probe";
  probe.kind = "probe";
  probe.rows_in = probe_rows_;
  probe.rows_out = join_rows_;
  probe.tasks = 1;
  obs::OperatorProfile load;
  load.name = "hash-load";
  load.kind = "build";
  load.rows_out =
      table_ != nullptr ? static_cast<uint64_t>(table_->entries()) : 0;
  load.wall_ns = hash_load_wall_ns_;
  load.wall_max_ns = hash_load_wall_ns_;
  load.cpu_ns = hash_load_cpu_ns_;
  load.tasks = 1;
  if (table_ != nullptr) {
    // The per-task table is both the current and the peak footprint of the
    // load operator — it lives until the mapper is destroyed.
    load.mem_current_bytes = table_->stats().memory_bytes;
    load.mem_peak_bytes = table_->stats().memory_bytes;
  }
  probe.children.push_back(std::move(load));
  context->AddProfileOperator(std::move(probe));
  return Status::OK();
}

Result<mr::JobConf> MakeMapJoinJob(const JoinStageSpec& spec,
                                   const std::string& hash_file,
                                   std::shared_ptr<core::DimTableCache> cache) {
  mr::JobConf conf;
  conf.job_name = StrCat("hive-mapjoin", spec.stage_index + 1);
  conf.num_reduce_tasks = 0;  // map-only
  conf.distributed_cache = {hash_file};

  conf.Set(mr::kConfInputTable, spec.fact_table);
  conf.SetList(mr::kConfInputProjection, spec.fact_cols);
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  const JoinStageSpec captured = spec;
  const std::string captured_hash = hash_file;
  conf.mapper_factory = [captured, captured_hash, cache] {
    return std::make_unique<MapJoinMapper>(captured, captured_hash, cache);
  };
  conf.Set(mr::kConfOutputTable, spec.output_table);
  conf.Set(mr::kConfOutputColumns, spec.output_columns_decl);
  // Hive serializes intermediate tables as delimited text (its default
  // serde) — one of the overheads the paper charges to the baseline.
  conf.Set(mr::kConfOutputFormat, storage::kFormatText);
  conf.output_format_factory = [] {
    return std::make_unique<mr::TableOutputFormat>();
  };
  return conf;
}

}  // namespace hive
}  // namespace clydesdale
