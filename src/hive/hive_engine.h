#ifndef CLYDESDALE_HIVE_HIVE_ENGINE_H_
#define CLYDESDALE_HIVE_HIVE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/clydesdale.h"
#include "hive/hive_plan.h"

namespace clydesdale {
namespace hive {

struct HiveOptions {
  JoinStrategy strategy = JoinStrategy::kRepartition;
  /// Reducers for join and group-by stages.
  int reduce_tasks = 4;
  std::string scratch_root = "/tmp/hive";
  /// Drop intermediate tables after the query finishes.
  bool cleanup_intermediates = true;
  /// Span tracing for every stage job, mirroring ClydesdaleOptions::trace —
  /// a traced Hive run and a traced Clydesdale run of the same query yield
  /// directly comparable Chrome traces.
  bool trace = false;
  /// When tracing, write per-stage trace/timeline files here.
  std::string trace_dir;
  /// Live cluster metrics + straggler detection per stage job, mirroring
  /// ClydesdaleOptions::metrics.
  bool metrics = false;
  int64_t metrics_interval_ms = 5;
  /// JSONL job-history logging per stage job (obs.history.enabled).
  bool history = false;
  /// Per-operator query profiling per stage job (obs.profile.enabled),
  /// mirroring ClydesdaleOptions::profile. Off = zero instrumentation cost.
  bool profile = false;
  /// Serving-mode cross-query dim-table cache, mirroring
  /// ClydesdaleOptions::dim_cache: mapjoin stages share built broadcast
  /// tables across queries instead of reloading them per task. Null (the
  /// default) keeps the paper's per-task reload baseline.
  std::shared_ptr<core::DimTableCache> dim_cache;
};

/// The Hive baseline (paper §6.1): compiles a star query into a chain of
/// MapReduce jobs — one join stage per dimension (repartition or mapjoin),
/// a group-by job, and an order-by job — with every intermediate result
/// round-tripped through HDFS.
class HiveEngine {
 public:
  /// `star.fact()` must point at the Hive copy of the fact table (RCFile in
  /// the paper's setup); dimensions are the same HDFS masters Clydesdale
  /// uses (Hive has no local dimension replicas).
  HiveEngine(mr::MrCluster* cluster, core::StarSchema star,
             HiveOptions options = {});

  const HiveOptions& options() const { return options_; }

  Result<core::QueryResult> Execute(const core::StarQuerySpec& spec);

 private:
  mr::MrCluster* cluster_;
  core::StarSchema star_;
  HiveOptions options_;
};

}  // namespace hive
}  // namespace clydesdale

#endif  // CLYDESDALE_HIVE_HIVE_ENGINE_H_
