#ifndef CLYDESDALE_HIVE_AGG_STAGES_H_
#define CLYDESDALE_HIVE_AGG_STAGES_H_

#include <memory>
#include <string>

#include "hive/hive_plan.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace hive {

/// Hive's group-by job (paper §6.3 stage 4): maps the joined rows to
/// (group key, aggregate inputs), combines, and sums in the reducers.
class GroupByMapper final : public mr::Mapper {
 public:
  explicit GroupByMapper(AggStageSpec spec) : spec_(std::move(spec)) {}

  Status Setup(mr::TaskContext* context) override;
  Status Map(const Row& key, const Row& value, mr::TaskContext* context,
             mr::OutputCollector* out) override;

 private:
  AggStageSpec spec_;
  std::vector<int> group_idx_;
  /// One evaluator per accumulator; null means the constant 1 (COUNT).
  std::vector<BoundScalarPtr> acc_exprs_;
};

Result<mr::JobConf> MakeGroupByJob(const AggStageSpec& spec, int reduce_tasks);

/// Hive's order-by job (stage 5): a single-reducer pass over the grouped
/// table; the actual comparator runs client-side afterwards, as in the
/// paper's sortResult step.
Result<mr::JobConf> MakeOrderByJob(const AggStageSpec& spec);

}  // namespace hive
}  // namespace clydesdale

#endif  // CLYDESDALE_HIVE_AGG_STAGES_H_
