#ifndef CLYDESDALE_HIVE_REPARTITION_JOIN_H_
#define CLYDESDALE_HIVE_REPARTITION_JOIN_H_

#include <memory>

#include "hive/hive_plan.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace hive {

/// Hive's common join (paper §6.1): mappers tag each record with its source
/// table and key it by the join column; records of both tables meet at the
/// reducer, which joins them. Both sides cross the network in the shuffle.
class RepartitionJoinMapper final : public mr::Mapper {
 public:
  explicit RepartitionJoinMapper(JoinStageSpec spec) : spec_(std::move(spec)) {}

  Status Setup(mr::TaskContext* context) override;
  Status Map(const Row& key, const Row& value, mr::TaskContext* context,
             mr::OutputCollector* out) override;
  Status Cleanup(mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  JoinStageSpec spec_;
  BoundPredicatePtr fact_pred_;
  BoundPredicatePtr dim_pred_;
  int fact_fk_index_ = -1;
  int dim_pk_index_ = -1;
  std::vector<int> fact_out_idx_;
  std::vector<int> dim_aux_idx_;
  // Per-operator profiler cells (obs.profile.enabled tasks only).
  bool profiled_ = false;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

/// Joins the tagged records of one key: at most one dimension row (primary
/// key side) against any number of fact rows.
class RepartitionJoinReducer final : public mr::Reducer {
 public:
  explicit RepartitionJoinReducer(JoinStageSpec spec) : spec_(std::move(spec)) {}

  Status Setup(mr::TaskContext* context) override;
  Status Reduce(const Row& key, const std::vector<Row>& values,
                mr::TaskContext* context, mr::OutputCollector* out) override;
  Status Cleanup(mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  JoinStageSpec spec_;
  // Per-operator profiler cells (obs.profile.enabled tasks only).
  bool profiled_ = false;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

/// Configures the MapReduce job for one repartition-join stage.
Result<mr::JobConf> MakeRepartitionJoinJob(const JoinStageSpec& spec,
                                           int reduce_tasks);

}  // namespace hive
}  // namespace clydesdale

#endif  // CLYDESDALE_HIVE_REPARTITION_JOIN_H_
