#include "hive/hive_engine.h"

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/aggregation.h"
#include "hive/agg_stages.h"
#include "hive/map_join.h"
#include "hive/repartition_join.h"
#include "mapreduce/cluster_metrics.h"
#include "mapreduce/job_trace.h"

namespace clydesdale {
namespace hive {

HiveEngine::HiveEngine(mr::MrCluster* cluster, core::StarSchema star,
                       HiveOptions options)
    : cluster_(cluster), star_(std::move(star)), options_(std::move(options)) {}

Result<core::QueryResult> HiveEngine::Execute(const core::StarQuerySpec& spec) {
  Stopwatch timer;
  auto apply_trace = [this](mr::JobConf* conf) {
    if (options_.trace) conf->SetBool(mr::kConfTraceEnabled, true);
    if (!options_.trace_dir.empty()) {
      conf->Set(mr::kConfTraceDir, options_.trace_dir);
    }
    if (options_.metrics) {
      conf->SetBool(mr::kConfMetricsEnabled, true);
      conf->SetInt(mr::kConfMetricsIntervalMs, options_.metrics_interval_ms);
    }
    if (options_.history) conf->SetBool(mr::kConfHistoryEnabled, true);
    if (options_.profile) conf->SetBool(mr::kConfProfileEnabled, true);
  };
  const std::string scratch =
      StrCat(options_.scratch_root, "/", JoinStrategyName(options_.strategy));
  CLY_ASSIGN_OR_RETURN(HivePlan plan, CompileHivePlan(star_, spec, scratch));

  core::QueryResult result;

  // --- join stages, one MapReduce job per dimension ---------------------------
  for (const JoinStageSpec& stage : plan.joins) {
    if (cluster_->dfs()->Exists(stage.output_table + "/_meta")) {
      CLY_ASSIGN_OR_RETURN(int removed,
                           cluster_->dfs()->DeleteRecursive(stage.output_table));
      (void)removed;
      cluster_->InvalidateTable(stage.output_table);
    }
    mr::JobConf conf;
    if (options_.strategy == JoinStrategy::kRepartition) {
      CLY_ASSIGN_OR_RETURN(conf,
                           MakeRepartitionJoinJob(stage, options_.reduce_tasks));
    } else {
      uint64_t hash_bytes = 0;
      CLY_ASSIGN_OR_RETURN(
          std::string hash_file,
          BuildMapJoinHashFile(cluster_, stage, StrCat(scratch, "/", spec.id),
                               &hash_bytes));
      CLY_ASSIGN_OR_RETURN(conf,
                           MakeMapJoinJob(stage, hash_file, options_.dim_cache));
    }
    conf.job_name = StrCat("hive-", spec.id, "-", conf.job_name);
    apply_trace(&conf);
    CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster_, conf));
    result.stage_reports.push_back(std::move(job.report));
  }

  // --- group-by stage ----------------------------------------------------------
  if (cluster_->dfs()->Exists(plan.agg.output_table + "/_meta")) {
    CLY_ASSIGN_OR_RETURN(int removed,
                         cluster_->dfs()->DeleteRecursive(plan.agg.output_table));
    (void)removed;
    cluster_->InvalidateTable(plan.agg.output_table);
  }
  {
    CLY_ASSIGN_OR_RETURN(mr::JobConf conf,
                         MakeGroupByJob(plan.agg, options_.reduce_tasks));
    conf.job_name = StrCat("hive-", spec.id, "-groupby");
    apply_trace(&conf);
    CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster_, conf));
    result.stage_reports.push_back(std::move(job.report));
  }

  // --- order-by stage ------------------------------------------------------------
  {
    CLY_ASSIGN_OR_RETURN(mr::JobConf conf, MakeOrderByJob(plan.agg));
    conf.job_name = StrCat("hive-", spec.id, "-orderby");
    apply_trace(&conf);
    CLY_ASSIGN_OR_RETURN(mr::JobResult job, mr::RunJob(cluster_, conf));
    result.rows = std::move(job.output_rows);
    result.stage_reports.push_back(std::move(job.report));
  }
  CLY_RETURN_IF_ERROR(core::FinalizeAggRows(spec, &result.rows));
  CLY_RETURN_IF_ERROR(core::SortResultRows(spec, &result.rows));

  // --- cleanup -------------------------------------------------------------------
  if (options_.cleanup_intermediates) {
    for (const JoinStageSpec& stage : plan.joins) {
      CLY_ASSIGN_OR_RETURN(int removed,
                           cluster_->dfs()->DeleteRecursive(stage.output_table));
      (void)removed;
      cluster_->InvalidateTable(stage.output_table);
    }
    CLY_ASSIGN_OR_RETURN(int removed,
                         cluster_->dfs()->DeleteRecursive(plan.agg.output_table));
    (void)removed;
    cluster_->InvalidateTable(plan.agg.output_table);
  }

  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace hive
}  // namespace clydesdale
