#ifndef CLYDESDALE_HIVE_MAP_JOIN_H_
#define CLYDESDALE_HIVE_MAP_JOIN_H_

#include <memory>
#include <string>

#include "core/dim_hash_table.h"
#include "core/dim_table_cache.h"
#include "hive/hive_plan.h"
#include "mapreduce/engine.h"

namespace clydesdale {
namespace hive {

// Hive mapjoin job counters.
inline constexpr const char kCounterMapJoinHashLoads[] = "HIVE_MAPJOIN_HASH_LOADS";
inline constexpr const char kCounterMapJoinHashBytes[] = "HIVE_MAPJOIN_HASH_BYTES";
inline constexpr const char kCounterMapJoinHashEntries[] = "HIVE_MAPJOIN_HASH_ENTRIES";

/// The master-side build step of Hive's mapjoin (paper Figure 6): evaluate
/// the dimension predicate on the client, serialize the qualifying (pk, aux)
/// rows to a DFS file, and hand that file to the job's distributed cache.
/// Returns the DFS path of the serialized hash table.
Result<std::string> BuildMapJoinHashFile(mr::MrCluster* cluster,
                                         const JoinStageSpec& spec,
                                         const std::string& scratch_root,
                                         uint64_t* serialized_bytes);

/// Map-side of the mapjoin: every task deserializes the broadcast hash table
/// in Setup (Hive reloads it per task — no JVM reuse; paper §6.3/§6.4) and
/// probes it while scanning its fact split. Map-only; joined rows go
/// straight to the stage's output table.
///
/// With a serving-mode `cache`, the per-task reload becomes the same
/// cross-query lookup Clydesdale's build path uses — keyed on the dimension
/// table (not the broadcast file), its catalog version, and the stage's
/// dimension filter — so repeated Hive queries skip the deserialization too.
class MapJoinMapper final : public mr::Mapper {
 public:
  MapJoinMapper(JoinStageSpec spec, std::string hash_file,
                std::shared_ptr<core::DimTableCache> cache = nullptr)
      : spec_(std::move(spec)),
        hash_file_(std::move(hash_file)),
        cache_(std::move(cache)) {}

  Status Setup(mr::TaskContext* context) override;
  Status Map(const Row& key, const Row& value, mr::TaskContext* context,
             mr::OutputCollector* out) override;
  Status Cleanup(mr::TaskContext* context, mr::OutputCollector* out) override;

 private:
  JoinStageSpec spec_;
  std::string hash_file_;
  std::shared_ptr<core::DimTableCache> cache_;
  std::shared_ptr<const core::DimHashTable> table_;
  BoundPredicatePtr fact_pred_;
  int fact_fk_index_ = -1;
  std::vector<int> fact_out_idx_;
  // Per-operator profiler cells (obs.profile.enabled tasks only).
  bool profiled_ = false;
  uint64_t probe_rows_ = 0;
  uint64_t join_rows_ = 0;
  uint64_t hash_load_wall_ns_ = 0;
  uint64_t hash_load_cpu_ns_ = 0;
};

/// Configures the map-only MapReduce job for one mapjoin stage. The hash
/// file must have been produced by BuildMapJoinHashFile first. `cache`
/// (optional) is the serving-mode cross-query dim-table cache.
Result<mr::JobConf> MakeMapJoinJob(
    const JoinStageSpec& spec, const std::string& hash_file,
    std::shared_ptr<core::DimTableCache> cache = nullptr);

}  // namespace hive
}  // namespace clydesdale

#endif  // CLYDESDALE_HIVE_MAP_JOIN_H_
