#include "hive/agg_stages.h"

#include "common/strings.h"
#include "core/aggregation.h"
#include "mapreduce/input_format.h"

namespace clydesdale {
namespace hive {

Status GroupByMapper::Setup(mr::TaskContext*) {
  for (const std::string& g : spec_.group_by) {
    CLY_ASSIGN_OR_RETURN(int i, spec_.input_schema->Require(g));
    group_idx_.push_back(i);
  }
  const core::AggLayout layout = core::AggLayout::For(spec_.aggregates);
  for (int expr_index : layout.expr_index()) {
    if (expr_index < 0) {
      acc_exprs_.push_back(nullptr);
      continue;
    }
    CLY_ASSIGN_OR_RETURN(
        BoundScalarPtr e,
        spec_.aggregates[static_cast<size_t>(expr_index)].expr->Bind(
            *spec_.input_schema));
    acc_exprs_.push_back(std::move(e));
  }
  return Status::OK();
}

Status GroupByMapper::Map(const Row& key, const Row& value, mr::TaskContext*,
                          mr::OutputCollector* out) {
  (void)key;
  Row group_key = value.Project(group_idx_);
  Row inputs;
  inputs.Reserve(static_cast<int>(acc_exprs_.size()));
  for (const BoundScalarPtr& e : acc_exprs_) {
    inputs.Append(Value(e == nullptr ? int64_t{1} : e->Eval(value).AsInt64()));
  }
  return out->Collect(group_key, inputs);
}

Result<mr::JobConf> MakeGroupByJob(const AggStageSpec& spec,
                                   int reduce_tasks) {
  mr::JobConf conf;
  conf.job_name = "hive-groupby";
  conf.num_reduce_tasks = reduce_tasks;
  conf.Set(mr::kConfInputTable, spec.input_table);
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  const AggStageSpec captured = spec;
  conf.mapper_factory = [captured] {
    return std::make_unique<GroupByMapper>(captured);
  };
  const core::AggLayout layout = core::AggLayout::For(spec.aggregates);
  conf.combiner_factory = [layout] {
    return std::make_unique<core::AggReducer>(layout, "combine");
  };
  conf.reducer_factory = [layout] {
    return std::make_unique<core::AggReducer>(layout);
  };
  conf.Set(mr::kConfOutputTable, spec.output_table);
  conf.Set(mr::kConfOutputColumns, spec.output_columns_decl);
  // Hive serializes intermediate tables as delimited text (its default
  // serde) — one of the overheads the paper charges to the baseline.
  conf.Set(mr::kConfOutputFormat, storage::kFormatText);
  conf.output_format_factory = [] {
    return std::make_unique<mr::TableOutputFormat>();
  };
  return conf;
}

namespace {
/// Passes each grouped row through as the key so the engine's sorted shuffle
/// mirrors Hive's order-by job shape.
class IdentityKeyMapper final : public mr::Mapper {
 public:
  Status Map(const Row& key, const Row& value, mr::TaskContext*,
             mr::OutputCollector* out) override {
    (void)key;
    Row empty;
    return out->Collect(value, empty);
  }
};

class IdentityReducer final : public mr::Reducer {
 public:
  Status Reduce(const Row& key, const std::vector<Row>& values,
                mr::TaskContext*, mr::OutputCollector* out) override {
    Row empty;
    for (size_t i = 0; i < values.size(); ++i) {
      CLY_RETURN_IF_ERROR(out->Collect(key, empty));
    }
    return Status::OK();
  }
};
}  // namespace

Result<mr::JobConf> MakeOrderByJob(const AggStageSpec& spec) {
  mr::JobConf conf;
  conf.job_name = "hive-orderby";
  conf.num_reduce_tasks = 1;  // total order needs a single reducer
  conf.Set(mr::kConfInputTable, spec.output_table);
  conf.input_format_factory = [] {
    return std::make_unique<mr::TableInputFormat>();
  };
  conf.mapper_factory = [] { return std::make_unique<IdentityKeyMapper>(); };
  conf.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  conf.output_format_factory = [] {
    return std::make_unique<mr::MemoryOutputFormat>();
  };
  return conf;
}

}  // namespace hive
}  // namespace clydesdale
